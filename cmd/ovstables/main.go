// Command ovstables regenerates the paper's tables and figures.
//
// Usage:
//
//	ovstables -exp tableviii -scale quick -seed 1
//	ovstables -exp all -scale test
//
// Experiments: tablevi, tablevii, tableviii, tableix, tablex, fig9, fig10,
// fig11, fig12, fig13, all. Scales: test (seconds per experiment), quick
// (the default; minutes per experiment), full (closer to the paper's
// protocol; slow).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ovs/internal/cliutil"
	"ovs/internal/experiment"
	"ovs/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: tablevi|tablevii|tableviii|tableix|tablex|fig9|fig10|fig11|fig12|fig13|routechoice|enginecross|noise|all (comma-separated)")
	scaleName := flag.String("scale", "quick", "effort: test|quick|full")
	seed := flag.Int64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	fig9Sizes := flag.String("fig9sizes", "10,50,100", "comma-separated intersection counts for fig9")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	stopProfiles, err := cliutil.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	parallel.SetWorkers(*workers)

	var sc experiment.Scale
	switch *scaleName {
	case "test":
		sc = experiment.TestScale()
	case "quick":
		sc = experiment.QuickScale()
	case "full":
		sc = experiment.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		stopProfiles()
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"tableviii", "tablevi", "tablevii", "tableix", "tablex", "fig9", "fig10", "fig11", "fig12", "fig13"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(ctx, strings.TrimSpace(id), sc, *seed, parseSizes(*fig9Sizes)); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "%s: cancelled: %v\n", id, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			}
			cancel()
			stopProfiles()
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s]\n\n", id, time.Since(start).Round(time.Second))
	}
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	return out
}

func run(ctx context.Context, id string, sc experiment.Scale, seed int64, fig9Sizes []int) error {
	switch id {
	case "tablevi":
		results, err := experiment.RunRealComparison(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderComparison("Table VI: RMSE on real datasets", results))
	case "tablevii":
		res, err := experiment.RunRunningTime(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "tableviii":
		results, err := experiment.RunSyntheticComparison(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderComparison("Table VIII: RMSE on synthetic patterns", results))
	case "tableix":
		res, err := experiment.RunAblation(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "tablex":
		cs1, err := experiment.RunCaseStudy1(ctx, sc, seed)
		if err != nil {
			return err
		}
		cs2, err := experiment.RunCaseStudy2(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println("Table X: RMSE_speed in real-world scenarios")
		fmt.Println(cs1.Render())
		fmt.Println(cs2.Render())
	case "fig9":
		res, err := experiment.RunScalability(ctx, sc, fig9Sizes, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig10":
		res, err := experiment.RunCensusConstraint(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig11":
		res, err := experiment.RunRoadWork(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig12":
		res, err := experiment.RunCaseStudy1(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println("Figure 12: " + res.Render())
	case "fig13":
		res, err := experiment.RunCaseStudy2(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println("Figure 13: " + res.Render())
	case "routechoice":
		res, err := experiment.RunRouteChoice(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "enginecross":
		res, err := experiment.RunEngineCross(ctx, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "noise":
		res, err := experiment.RunNoiseRobustness(ctx, sc, nil, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
