// Command ovsfit is the deployment loop of the OVS pipeline: train the
// volume-speed and TOD-volume mappings once for a city and save them; then,
// for each new speed observation window, load the trained chain and fit only
// the TOD generator to recover that window's demand.
//
// Usage:
//
//	ovsfit -city Hangzhou -train -model hangzhou.ovs
//	ovsfit -city Hangzhou -model hangzhou.ovs -fit observed_speed.json -o recovered_tod.json
//
// The observation file holds a (links × intervals) speed matrix — JSON
//
//	{"speed": [[13.9, 12.1, ...], ...]}
//
// or, when the path ends in .csv, the trafficio CSV form (optional t0,t1,...
// header, one row per link)
//
// Without -fit, a demonstration observation is synthesized from the city's
// ground-truth generator and the recovery is scored against it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"ovs/internal/cliutil"
	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/experiment"
	"ovs/internal/metrics"
	"ovs/internal/sim"
	"ovs/internal/tensor"
	"ovs/internal/trafficio"
)

type speedFile struct {
	Speed [][]float64 `json:"speed"`
}

type todFile struct {
	G [][]float64 `json:"g"`
}

func main() {
	cityName := flag.String("city", "Hangzhou", "city preset: Hangzhou|Porto|Manhattan|StateCollege")
	train := flag.Bool("train", false, "train the mappings and save the model")
	modelPath := flag.String("model", "model.ovs", "model parameter file")
	fitPath := flag.String("fit", "", "observed speed JSON or CSV to invert (omit for a self-test demo)")
	outPath := flag.String("o", "", "write the recovered TOD JSON here")
	scaleName := flag.String("scale", "test", "effort: test|quick|full")
	seed := flag.Int64("seed", 1, "seed")
	ckptDir := flag.String("checkpoint-dir", "", "write crash-safe training checkpoints into this directory")
	ckptEvery := flag.Int("ckpt-every", 5, "checkpoint every N epochs (with -checkpoint-dir)")
	resume := flag.Bool("resume", false, "continue from the newest valid checkpoint in -checkpoint-dir")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	stopProfiles, err := cliutil.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, cancel := cliutil.RootContext(*timeout)
	if err := run(ctx, *cityName, *train, *modelPath, *fitPath, *outPath, *scaleName, *seed, *ckptDir, *ckptEvery, *resume); err != nil {
		switch {
		case errors.Is(err, core.ErrInterrupted):
			fmt.Fprintf(os.Stderr, "interrupted: progress checkpointed in %s; rerun with -resume to continue\n", *ckptDir)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "cancelled: %v\n", err)
		default:
			fmt.Fprintln(os.Stderr, err)
		}
		cancel()
		stopProfiles()
		os.Exit(1)
	}
	cancel()
	stopProfiles()
}

// readObservation loads a (links × intervals) speed matrix from path: CSV
// (trafficio.ReadSpeedCSV) when the name ends in .csv, the {"speed": [[...]]}
// JSON document otherwise.
func readObservation(path string) (*tensor.Tensor, error) {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		var obs *tensor.Tensor
		err := cliutil.ReadFile(path, func(r io.Reader) error {
			var err error
			obs, err = trafficio.ReadSpeedCSV(r)
			return err
		})
		if err != nil {
			return nil, err
		}
		return obs, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc speedFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(doc.Speed) == 0 || len(doc.Speed[0]) == 0 {
		return nil, fmt.Errorf("%s holds an empty speed matrix", path)
	}
	t := len(doc.Speed[0])
	obs := tensor.New(len(doc.Speed), t)
	for j, row := range doc.Speed {
		if len(row) != t {
			return nil, fmt.Errorf("ragged speed matrix at link %d", j)
		}
		for tt, v := range row {
			obs.Set(v, j, tt)
		}
	}
	return obs, nil
}

func run(ctx context.Context, cityName string, train bool, modelPath, fitPath, outPath, scaleName string, seed int64, ckptDir string, ckptEvery int, resume bool) error {
	var sc experiment.Scale
	switch scaleName {
	case "test":
		sc = experiment.TestScale()
	case "quick":
		sc = experiment.QuickScale()
	case "full":
		sc = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	if resume && ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	city, err := dataset.ByName(cityName, dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed})
	if err != nil {
		return err
	}
	env, err := experiment.NewEnv(ctx, city, sc, seed)
	if err != nil {
		return err
	}
	model, err := env.BuildOVS()
	if err != nil {
		return err
	}

	if train {
		start := time.Now()
		if ckptDir != "" {
			ck, err := checkpointer(model, ckptDir, ckptEvery, resume)
			if err != nil {
				return err
			}
			if _, _, err := ck.TrainMappings(ctx, env.Samples, sc.V2SEpochs, sc.T2VEpochs); err != nil {
				return err
			}
			if err := ck.Finish(core.StageTrained); err != nil {
				return err
			}
		} else {
			if _, err := model.TrainV2SCtx(ctx, env.Samples, sc.V2SEpochs); err != nil {
				return err
			}
			if _, err := model.TrainT2VCtx(ctx, env.Samples, sc.T2VEpochs); err != nil {
				return err
			}
		}
		if err := cliutil.WriteFileAtomic(modelPath, model.Save); err != nil {
			return err
		}
		fmt.Printf("trained %s mappings in %s, saved to %s\n",
			cityName, time.Since(start).Round(time.Second), modelPath)
		return nil
	}

	// Fit mode: load trained parameters.
	if err := cliutil.ReadFile(modelPath, model.Load); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("open model (run with -train first?): %w", err)
		}
		return err
	}

	var obs *tensor.Tensor
	var truth *tensor.Tensor
	if fitPath != "" {
		obs, err = readObservation(fitPath)
		if err != nil {
			return err
		}
		if m := city.Net.NumLinks(); obs.Dim(0) != m {
			return fmt.Errorf("observation has %d links, network has %d", obs.Dim(0), m)
		}
		if obs.Dim(1) != sc.Intervals {
			return fmt.Errorf("observation has %d intervals; the model was trained for %d", obs.Dim(1), sc.Intervals)
		}
	} else {
		// Demo: synthesize a hidden observation window.
		rng := rand.New(rand.NewSource(seed + 404))
		truth = city.GroundTruthTOD(sc.Intervals, sc.GTScale, rng)
		res, err := sim.New(city.Net, env.SimCfg).RunCtx(ctx, sim.Demand{ODs: city.ODs, G: truth})
		if err != nil {
			return err
		}
		obs = res.Speed
		fmt.Println("no -fit file given: synthesized a hidden demo observation")
	}

	start := time.Now()
	var rec *tensor.Tensor
	if ckptDir != "" {
		// The checkpointer is created after model.Load so a resumed
		// checkpoint's state (which includes the loaded mapping parameters)
		// takes precedence over the model file.
		ck, cerr := checkpointer(model, ckptDir, ckptEvery, resume)
		if cerr != nil {
			return cerr
		}
		rec, _, err = ck.FitBest(ctx, obs, sc.FitEpochs, 1, nil)
		if err != nil {
			return err
		}
		if err := ck.Finish(core.StageDone); err != nil {
			return err
		}
	} else {
		rec, _, err = model.FitCtx(ctx, obs, sc.FitEpochs, nil)
		if err != nil {
			return err
		}
	}
	fmt.Printf("fitted TOD generator in %s\n", time.Since(start).Round(time.Millisecond))
	if truth != nil {
		fmt.Printf("demo recovery RMSE vs hidden truth: %.2f trips\n", metrics.RMSE(rec, truth))
	}

	if outPath != "" {
		doc := todFile{G: make([][]float64, rec.Dim(0))}
		for i := range doc.G {
			doc.G[i] = rec.Row(i).Data
		}
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		werr := cliutil.WriteFileAtomic(outPath, func(w io.Writer) error {
			_, werr := w.Write(append(enc, '\n'))
			return werr
		})
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote recovered TOD to %s\n", outPath)
	}
	return nil
}

// checkpointer builds the configured Checkpointer and resumes from the
// newest valid checkpoint when asked. Graceful stop comes from the run
// context: SIGINT and -timeout both cancel it, and the training loops
// checkpoint and exit at the next epoch boundary.
func checkpointer(model *core.Model, dir string, every int, resume bool) (*core.Checkpointer, error) {
	ck, err := core.NewCheckpointer(model, core.CkptOptions{
		Dir:   dir,
		Every: every,
	})
	if err != nil {
		return nil, err
	}
	if resume {
		from, err := ck.Resume()
		if err != nil {
			return nil, err
		}
		if from != "" {
			fmt.Printf("resuming from %s\n", from)
		} else {
			fmt.Println("no valid checkpoint found; starting fresh")
		}
	}
	return ck, nil
}
