// Command ovslint runs the repository's custom static-analysis suite
// (internal/lint) over the module's non-test packages and exits non-zero on
// any unsuppressed diagnostic.
//
// Usage:
//
//	go run ./cmd/ovslint ./...
//	go run ./cmd/ovslint ./internal/tensor ./internal/sim
//	go run ./cmd/ovslint -analyzers datamut,lockbalance ./...
//	go run ./cmd/ovslint -tests ./...
//	go run ./cmd/ovslint -json ./... > lint.json
//	go run ./cmd/ovslint -cache .ovslint-cache.json ./...
//	go run ./cmd/ovslint -list
//
// Package arguments restrict which packages are *reported*; the whole module
// is always loaded so cross-package types resolve. A diagnostic is silenced
// by an `//ovslint:ignore <analyzer> <reason>` comment on the flagged line
// or the line immediately above it.
//
// -tests additionally loads in-package _test.go files and restricts the run
// to the analyzers whose invariants hold in test code too. -cache enables
// the content-hash incremental cache: packages whose transitive sources are
// unchanged since the recorded run are neither type-checked nor re-analyzed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ovs/internal/cliutil"
	"ovs/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "print a per-package summary to stderr")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	tests := flag.Bool("tests", false, "also lint in-package _test.go files (test-safe analyzers only)")
	cacheFile := flag.String("cache", "", "path of the incremental cache file (empty disables caching)")
	workers := flag.Int("workers", 0, "analysis worker count (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	if *list {
		for _, a := range lint.All() {
			scope := "prod"
			if a.Tests {
				scope = "prod+test"
			}
			fmt.Printf("%-12s %-10s %s\n", a.Name, scope, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*analyzers, *tests)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	loader.Tests = *tests

	driver := &lint.Driver{Loader: loader, Analyzers: selected, Workers: *workers, CacheFile: *cacheFile}
	results, err := driver.RunCtx(ctx)
	if err != nil {
		fatal(err)
	}
	for _, terr := range loader.TypeErrors {
		fmt.Fprintf(os.Stderr, "ovslint: type error (best-effort linting continues): %v\n", terr)
	}

	keep := packageFilter(root, cwd, flag.Args())
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	jsonDiags := []jsonDiag{}
	total := 0
	for _, res := range results {
		if !keep(root, res.Path) {
			continue
		}
		if *verbose {
			from := "analyzed"
			if res.Cached {
				from = "cached"
			}
			fmt.Fprintf(os.Stderr, "ovslint: %s: %d diagnostic(s) (%s)\n", res.Path, len(res.Diags), from)
		}
		for _, d := range res.Diags {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			if *jsonOut {
				jsonDiags = append(jsonDiags, jsonDiag{
					File: filepath.ToSlash(rel.Pos.Filename), Line: rel.Pos.Line, Col: rel.Pos.Column,
					Analyzer: rel.Analyzer, Message: rel.Message,
				})
			} else {
				fmt.Println(rel)
			}
			total++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(jsonDiags); err != nil {
			fatal(err)
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "ovslint: %d diagnostic(s)\n", total)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers and -tests flags to the analyzer
// subset to run. In -tests mode only test-safe analyzers are eligible:
// test files legitimately compare floats, range maps, and discard errors
// from cleanup, so the other analyzers would drown signal in noise.
func selectAnalyzers(spec string, tests bool) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	if spec == "" {
		picked = lint.All()
	} else {
		for _, name := range strings.Split(spec, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", name)
			}
			picked = append(picked, a)
		}
	}
	if tests {
		var testSafe []*lint.Analyzer
		for _, a := range picked {
			if a.Tests {
				testSafe = append(testSafe, a)
			}
		}
		picked = testSafe
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return picked, nil
}

// packageFilter turns CLI patterns ("./...", "./internal/tensor", an import
// path) into a predicate over package import paths. No patterns means
// everything.
func packageFilter(root, cwd string, patterns []string) func(root, pkgPath string) bool {
	if len(patterns) == 0 {
		return func(string, string) bool { return true }
	}
	type rule struct {
		dir       string
		recursive bool
	}
	var rules []rule
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "" {
			rules = append(rules, rule{dir: cwd, recursive: recursive})
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		rules = append(rules, rule{dir: filepath.Clean(dir), recursive: recursive})
	}
	return func(root, pkgPath string) bool {
		// Reconstruct the package directory from its import path: the
		// module path maps to the root, subpackages to subdirectories.
		dir := root
		if i := strings.Index(pkgPath, "/"); i >= 0 {
			dir = filepath.Join(root, filepath.FromSlash(pkgPath[i+1:]))
		}
		for _, r := range rules {
			if dir == r.dir {
				return true
			}
			if r.recursive && strings.HasPrefix(dir+string(filepath.Separator), r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovslint:", err)
	os.Exit(1)
}
