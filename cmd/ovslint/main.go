// Command ovslint runs the repository's custom static-analysis suite
// (internal/lint) over the module's non-test packages and exits non-zero on
// any unsuppressed diagnostic.
//
// Usage:
//
//	go run ./cmd/ovslint ./...
//	go run ./cmd/ovslint ./internal/tensor ./internal/sim
//	go run ./cmd/ovslint -list
//
// Package arguments restrict which packages are *reported*; the whole module
// is always loaded so cross-package types resolve. A diagnostic is silenced
// by an `//ovslint:ignore <analyzer> <reason>` comment on the flagged line
// or the line immediately above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ovs/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "print a per-package summary to stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}
	for _, terr := range loader.TypeErrors {
		fmt.Fprintf(os.Stderr, "ovslint: type error (best-effort linting continues): %v\n", terr)
	}

	keep := packageFilter(root, cwd, flag.Args())
	total := 0
	for _, pkg := range pkgs {
		if !keep(pkg) {
			continue
		}
		diags := lint.RunPackage(pkg, lint.All())
		if *verbose {
			fmt.Fprintf(os.Stderr, "ovslint: %s: %d diagnostic(s)\n", pkg.Path, len(diags))
		}
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "ovslint: %d diagnostic(s)\n", total)
		os.Exit(1)
	}
}

// packageFilter turns CLI patterns ("./...", "./internal/tensor", an import
// path) into a predicate over loaded packages. No patterns means everything.
func packageFilter(root, cwd string, patterns []string) func(*lint.Package) bool {
	if len(patterns) == 0 {
		return func(*lint.Package) bool { return true }
	}
	type rule struct {
		dir       string
		recursive bool
	}
	var rules []rule
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "" {
			rules = append(rules, rule{dir: cwd, recursive: recursive})
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		rules = append(rules, rule{dir: filepath.Clean(dir), recursive: recursive})
	}
	return func(p *lint.Package) bool {
		for _, r := range rules {
			if p.Dir == r.dir {
				return true
			}
			if r.recursive && strings.HasPrefix(p.Dir+string(filepath.Separator), r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovslint:", err)
	os.Exit(1)
}
