// Command ovsbench runs the repository's micro-benchmarks once each and
// writes a machine-readable summary. It shells out to `go test -bench` so the
// numbers come from the standard benchmark harness (ns/op, B/op, allocs/op
// with -benchmem), then parses the text output into JSON.
//
// Usage:
//
//	ovsbench -bench 'BenchmarkFitEpoch|BenchmarkBackward' -o BENCH_7.json
//	ovsbench -benchtime 5x -o BENCH_7.json
//	ovsbench -benchtime 100ms -maxallocs 'BenchmarkMatMul=16,BenchmarkModelForward=1100'
//
// The default selection covers the allocation-sensitive hot-loop benchmarks
// plus the GEMM shape sweep, routing benchmarks, and the cold lint pass
// (BenchmarkLintRepo, the CI lint job's wall-clock); pass -bench '.' for
// everything. -maxallocs turns the run into a regression gate: it fails (and
// exits non-zero) when a named benchmark's allocs/op exceeds its limit,
// which CI uses to catch the pooled pack buffers quietly reverting to
// per-call allocation.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"ovs/internal/cliutil"
)

// Result is one benchmark line from `go test -bench -benchmem`.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file ovsbench writes: the harness invocation plus every
// parsed benchmark result, in run order.
type Report struct {
	GoTestArgs []string `json:"go_test_args"`
	GoVersion  string   `json:"go_version"`
	Results    []Result `json:"results"`
}

const defaultBench = "BenchmarkFitEpoch|BenchmarkBackward|BenchmarkModelForward|BenchmarkMatMul$|BenchmarkMatMulParallel|BenchmarkGEMM|BenchmarkLSTMForwardBackward|BenchmarkLSTMCell$|BenchmarkSimulatorMeso|BenchmarkDijkstra|BenchmarkLintRepo"

func main() {
	bench := flag.String("bench", defaultBench, "benchmark selection regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package pattern holding the benchmarks")
	outPath := flag.String("o", "BENCH_7.json", "output JSON path")
	maxAllocs := flag.String("maxallocs", "",
		"comma-separated name=limit pairs, e.g. 'BenchmarkMatMul=16'; fail when a benchmark's allocs/op exceeds its limit (names matched exactly after stripping the -GOMAXPROCS suffix)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	gates, err := parseAllocGates(*maxAllocs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, cancel := cliutil.RootContext(*timeout)
	if err := run(ctx, *bench, *benchtime, *pkg, *outPath, gates); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "cancelled: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
		cancel()
		os.Exit(1)
	}
	cancel()
}

// allocGate is one -maxallocs entry, kept in flag order so gate checking and
// its error output are deterministic.
type allocGate struct {
	name  string
	limit int64
}

func parseAllocGates(spec string) ([]allocGate, error) {
	if spec == "" {
		return nil, nil
	}
	var gates []allocGate
	for _, pair := range strings.Split(spec, ",") {
		// Cut at the LAST '=': sub-benchmark names may themselves contain
		// one ("BenchmarkFitEpoch/arena=on=1500" gates .../arena=on at 1500).
		pair = strings.TrimSpace(pair)
		i := strings.LastIndex(pair, "=")
		if i < 0 {
			return nil, fmt.Errorf("ovsbench: -maxallocs entry %q is not name=limit", pair)
		}
		name, limitStr := pair[:i], pair[i+1:]
		limit, err := strconv.ParseInt(limitStr, 10, 64)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("ovsbench: -maxallocs limit in %q must be a non-negative integer", pair)
		}
		gates = append(gates, allocGate{name: name, limit: limit})
	}
	return gates, nil
}

// trimProcsSuffix removes go test's -GOMAXPROCS decoration ("BenchmarkX-8" →
// "BenchmarkX"), so gates match across machines.
func trimProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// checkAllocGates enforces -maxallocs: every gate must match at least one
// result, and no matched result may exceed its limit.
func checkAllocGates(results []Result, gates []allocGate) error {
	var violations []string
	for _, g := range gates {
		matched := false
		for _, r := range results {
			if trimProcsSuffix(r.Name) != g.name {
				continue
			}
			matched = true
			if r.AllocsPerOp > g.limit {
				violations = append(violations, fmt.Sprintf("%s: %d allocs/op > limit %d",
					r.Name, r.AllocsPerOp, g.limit))
			}
		}
		if !matched {
			violations = append(violations, fmt.Sprintf("%s: gate matched no benchmark result", g.name))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("ovsbench: allocation gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

func run(ctx context.Context, bench, benchtime, pkg, outPath string, gates []allocGate) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, "-benchmem", pkg}
	// CommandContext kills the harness subprocess on ^C / -timeout, so a
	// cancelled benchmark run doesn't leave a stray `go test` behind.
	cmd := exec.CommandContext(ctx, "go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "ovsbench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench failed: %w", err)
	}
	if _, err := os.Stdout.Write(out.Bytes()); err != nil {
		return err
	}

	results, err := parseBenchOutput(out.Bytes())
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}
	report := Report{GoTestArgs: args, GoVersion: goVersion(), Results: results}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	err = cliutil.WriteFileAtomic(outPath, func(w io.Writer) error {
		_, werr := w.Write(append(enc, '\n'))
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ovsbench: wrote %d results to %s\n", len(results), outPath)
	// Gate after writing, so the report survives as an artifact even when the
	// allocation check fails.
	return checkAllocGates(results, gates)
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// parseBenchOutput extracts benchmark lines of the form
//
//	BenchmarkName-8   1   123456 ns/op   7890 B/op   12 allocs/op
//
// from the harness output. Unparseable fields are left zero rather than
// failing the whole run, so a benchmark without -benchmem columns still
// reports its timing.
func parseBenchOutput(raw []byte) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				//ovslint:ignore ignorederr unparseable benchmark columns intentionally stay zero (see doc comment)
				r.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				//ovslint:ignore ignorederr unparseable benchmark columns intentionally stay zero (see doc comment)
				r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				//ovslint:ignore ignorederr unparseable benchmark columns intentionally stay zero (see doc comment)
				r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
