package main

import (
	"strings"
	"testing"
)

func TestTrimProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkMatMul-8":             "BenchmarkMatMul",
		"BenchmarkMatMul":               "BenchmarkMatMul",
		"BenchmarkGEMM/MatMulTo/64-16":  "BenchmarkGEMM/MatMulTo/64",
		"BenchmarkMatMulParallel/w=1-2": "BenchmarkMatMulParallel/w=1",
		"Benchmark-notanumber":          "Benchmark-notanumber",
	}
	for in, want := range cases {
		if got := trimProcsSuffix(in); got != want {
			t.Errorf("trimProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseAllocGates(t *testing.T) {
	gates, err := parseAllocGates("BenchmarkMatMul=16, BenchmarkDijkstra=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []allocGate{{"BenchmarkMatMul", 16}, {"BenchmarkDijkstra", 2}}
	if len(gates) != len(want) {
		t.Fatalf("got %d gates, want %d", len(gates), len(want))
	}
	for i := range want {
		if gates[i] != want[i] {
			t.Errorf("gate %d = %+v, want %+v", i, gates[i], want[i])
		}
	}
	for _, bad := range []string{"BenchmarkMatMul", "BenchmarkMatMul=-1", "BenchmarkMatMul=x"} {
		if _, err := parseAllocGates(bad); err == nil {
			t.Errorf("parseAllocGates(%q) accepted an invalid spec", bad)
		}
	}
}

func TestCheckAllocGates(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkMatMul-8", AllocsPerOp: 10},
		{Name: "BenchmarkMatMulParallel/workers=1-8", AllocsPerOp: 40},
		{Name: "BenchmarkDijkstra", AllocsPerOp: 1},
	}
	// Passing gate: suffix stripped, exact match (does not also catch
	// BenchmarkMatMulParallel/...).
	if err := checkAllocGates(results, []allocGate{{"BenchmarkMatMul", 16}}); err != nil {
		t.Fatalf("gate within limit failed: %v", err)
	}
	// Exceeded limit fails and names the offender.
	err := checkAllocGates(results, []allocGate{{"BenchmarkMatMul", 4}})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkMatMul-8: 10 allocs/op > limit 4") {
		t.Fatalf("exceeded gate error = %v", err)
	}
	// A gate matching no result is an error, not a silent pass.
	err = checkAllocGates(results, []allocGate{{"BenchmarkNoSuch", 1}})
	if err == nil || !strings.Contains(err.Error(), "matched no benchmark result") {
		t.Fatalf("unmatched gate error = %v", err)
	}
}
