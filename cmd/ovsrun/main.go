// Command ovsrun runs one recovery method on one dataset end-to-end and
// prints the paper's three RMSE metrics — the smallest unit of the
// evaluation, useful for iterating on a single method or dataset.
//
// Usage:
//
//	ovsrun -city Hangzhou -method OVS -scale quick
//	ovsrun -pattern Gaussian -method LSTM -scale test
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ovs/internal/baselines"
	"ovs/internal/cliutil"
	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/experiment"
	"ovs/internal/tensor"
)

func main() {
	cityName := flag.String("city", "", "city preset: Hangzhou|Porto|Manhattan|StateCollege")
	patternName := flag.String("pattern", "", "synthetic pattern on the 3x3 grid: Random|Increasing|Decreasing|Gaussian|Poisson")
	method := flag.String("method", "OVS", "method: OVS|Gravity|Genetic|GLS|EM|NN|LSTM")
	scaleName := flag.String("scale", "test", "effort: test|quick|full")
	seed := flag.Int64("seed", 1, "seed")
	ckptDir := flag.String("checkpoint-dir", "", "write crash-safe training checkpoints into this directory (OVS only)")
	ckptEvery := flag.Int("ckpt-every", 5, "checkpoint every N epochs (with -checkpoint-dir)")
	resume := flag.Bool("resume", false, "continue from the newest valid checkpoint in -checkpoint-dir")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	ctx, cancel := cliutil.RootContext(*timeout)
	if err := run(ctx, *cityName, *patternName, *method, *scaleName, *seed, *ckptDir, *ckptEvery, *resume); err != nil {
		switch {
		case errors.Is(err, core.ErrInterrupted):
			fmt.Fprintf(os.Stderr, "interrupted: progress checkpointed in %s; rerun with -resume to continue\n", *ckptDir)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "cancelled: %v\n", err)
		default:
			fmt.Fprintln(os.Stderr, err)
		}
		cancel()
		os.Exit(1)
	}
	cancel()
}

func run(ctx context.Context, cityName, patternName, method, scaleName string, seed int64, ckptDir string, ckptEvery int, resume bool) error {
	var sc experiment.Scale
	switch scaleName {
	case "test":
		sc = experiment.TestScale()
	case "quick":
		sc = experiment.QuickScale()
	case "full":
		sc = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}

	var env *experiment.Env
	var err error
	switch {
	case cityName != "":
		city, cerr := dataset.ByName(cityName, dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed})
		if cerr != nil {
			return cerr
		}
		env, err = experiment.NewEnv(ctx, city, sc, seed)
	case patternName != "":
		var pat dataset.Pattern
		found := false
		for _, p := range dataset.AllPatterns {
			if strings.EqualFold(p.String(), patternName) {
				pat, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown pattern %q", patternName)
		}
		env, err = experiment.NewSyntheticEnv(ctx, pat, sc, seed)
	default:
		return fmt.Errorf("one of -city or -pattern is required")
	}
	if err != nil {
		return err
	}

	if resume && ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}

	start := time.Now()
	if strings.EqualFold(method, "OVS") {
		var tod *tensor.Tensor
		var elapsed time.Duration
		if ckptDir != "" {
			opts := core.CkptOptions{Dir: ckptDir, Every: ckptEvery}
			var resumedFrom string
			var oerr error
			tod, _, elapsed, resumedFrom, oerr = env.RunOVSCkpt(ctx, nil, opts, resume)
			if resumedFrom != "" {
				fmt.Printf("resumed from %s\n", resumedFrom)
			}
			if oerr != nil {
				return oerr
			}
		} else {
			var oerr error
			tod, _, elapsed, oerr = env.RunOVS(ctx, nil)
			if oerr != nil {
				return oerr
			}
		}
		fmt.Printf("OVS trained and fitted in %s\n", elapsed.Round(time.Millisecond))
		triple, eerr := env.Evaluate(ctx, tod)
		if eerr != nil {
			return eerr
		}
		fmt.Printf("RMSE: TOD %.2f  volume %.2f  speed %.2f\n", triple.TOD, triple.Volume, triple.Speed)
		return nil
	}

	var m baselines.Method
	for _, cand := range env.Methods() {
		if strings.EqualFold(cand.Name(), method) {
			m = cand
		}
	}
	if m == nil {
		return fmt.Errorf("unknown method %q", method)
	}
	tod, rerr := m.Recover(env.Context(ctx))
	if rerr != nil {
		return rerr
	}
	fmt.Printf("%s recovered in %s\n", m.Name(), time.Since(start).Round(time.Millisecond))
	triple, eerr := env.Evaluate(ctx, tod)
	if eerr != nil {
		return eerr
	}
	fmt.Printf("RMSE: TOD %.2f  volume %.2f  speed %.2f\n", triple.TOD, triple.Volume, triple.Speed)
	return nil
}
