// Command ovsrun runs one recovery method on one dataset end-to-end and
// prints the paper's three RMSE metrics — the smallest unit of the
// evaluation, useful for iterating on a single method or dataset.
//
// Usage:
//
//	ovsrun -city Hangzhou -method OVS -scale quick
//	ovsrun -pattern Gaussian -method LSTM -scale test
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ovs/internal/baselines"
	"ovs/internal/dataset"
	"ovs/internal/experiment"
)

func main() {
	cityName := flag.String("city", "", "city preset: Hangzhou|Porto|Manhattan|StateCollege")
	patternName := flag.String("pattern", "", "synthetic pattern on the 3x3 grid: Random|Increasing|Decreasing|Gaussian|Poisson")
	method := flag.String("method", "OVS", "method: OVS|Gravity|Genetic|GLS|EM|NN|LSTM")
	scaleName := flag.String("scale", "test", "effort: test|quick|full")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if err := run(*cityName, *patternName, *method, *scaleName, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(cityName, patternName, method, scaleName string, seed int64) error {
	var sc experiment.Scale
	switch scaleName {
	case "test":
		sc = experiment.TestScale()
	case "quick":
		sc = experiment.QuickScale()
	case "full":
		sc = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}

	var env *experiment.Env
	var err error
	switch {
	case cityName != "":
		city, cerr := dataset.ByName(cityName, dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed})
		if cerr != nil {
			return cerr
		}
		env, err = experiment.NewEnv(city, sc, seed)
	case patternName != "":
		var pat dataset.Pattern
		found := false
		for _, p := range dataset.AllPatterns {
			if strings.EqualFold(p.String(), patternName) {
				pat, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown pattern %q", patternName)
		}
		env, err = experiment.NewSyntheticEnv(pat, sc, seed)
	default:
		return fmt.Errorf("one of -city or -pattern is required")
	}
	if err != nil {
		return err
	}

	start := time.Now()
	if strings.EqualFold(method, "OVS") {
		tod, _, elapsed, oerr := env.RunOVS(nil)
		if oerr != nil {
			return oerr
		}
		fmt.Printf("OVS trained and fitted in %s\n", elapsed.Round(time.Millisecond))
		triple, eerr := env.Evaluate(tod)
		if eerr != nil {
			return eerr
		}
		fmt.Printf("RMSE: TOD %.2f  volume %.2f  speed %.2f\n", triple.TOD, triple.Volume, triple.Speed)
		return nil
	}

	var m baselines.Method
	for _, cand := range env.Methods() {
		if strings.EqualFold(cand.Name(), method) {
			m = cand
		}
	}
	if m == nil {
		return fmt.Errorf("unknown method %q", method)
	}
	tod, rerr := m.Recover(env.Context())
	if rerr != nil {
		return rerr
	}
	fmt.Printf("%s recovered in %s\n", m.Name(), time.Since(start).Round(time.Millisecond))
	triple, eerr := env.Evaluate(tod)
	if eerr != nil {
		return eerr
	}
	fmt.Printf("RMSE: TOD %.2f  volume %.2f  speed %.2f\n", triple.TOD, triple.Volume, triple.Speed)
	return nil
}
