// Command ovssim runs the traffic simulator on a TOD demand and prints (or
// writes) the resulting per-link volume/speed tensors as JSON.
//
// Usage:
//
//	ovssim -city Hangzhou -demand demand.json -o out.json
//	ovssim -grid 3x3 -pattern Random -scale 0.5 -intervals 8
//	ovssim -net network.json -demand demand.json -engine micro
//
// Demand files use the trafficio format: {"ods": [[o,d],...], "g": [[...]]}.
// Without -demand, a synthetic TOD is drawn from -pattern over the city's
// preset OD pairs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"ovs/internal/cliutil"
	"ovs/internal/dataset"
	"ovs/internal/roadnet"
	"ovs/internal/sim"
	"ovs/internal/trafficio"
)

func main() {
	cityName := flag.String("city", "", "city preset: Hangzhou|Porto|Manhattan|StateCollege")
	gridSpec := flag.String("grid", "", "grid network, e.g. 3x3")
	netPath := flag.String("net", "", "network JSON (trafficio format)")
	demandPath := flag.String("demand", "", "demand JSON file (optional)")
	patternName := flag.String("pattern", "Random", "synthetic pattern when no -demand given")
	scale := flag.Float64("scale", 0.5, "synthetic demand scale")
	intervals := flag.Int("intervals", 8, "number of observation intervals")
	intervalSec := flag.Float64("intervalsec", 300, "interval length in seconds")
	engine := flag.String("engine", "meso", "engine: meso|micro")
	routing := flag.String("routing", "static", "routing: static|dynamic|stochastic")
	signals := flag.Bool("signals", false, "add fixed-time signals at major intersections")
	seed := flag.Int64("seed", 1, "simulation seed")
	outPath := flag.String("o", "", "output JSON path (default stdout)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	ctx, cancel := cliutil.RootContext(*timeout)
	if err := run(ctx, *cityName, *gridSpec, *netPath, *demandPath, *patternName,
		*scale, *intervals, *intervalSec, *engine, *routing, *signals, *seed, *outPath); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "cancelled: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
		cancel()
		os.Exit(1)
	}
	cancel()
}

func run(ctx context.Context, cityName, gridSpec, netPath, demandPath, patternName string,
	scale float64, intervals int, intervalSec float64,
	engineName, routingName string, signals bool, seed int64, outPath string) error {

	var net *roadnet.Network
	var city *dataset.City
	switch {
	case cityName != "":
		c, err := dataset.ByName(cityName, dataset.CityOptions{Seed: seed})
		if err != nil {
			return err
		}
		city, net = c, c.Net
	case gridSpec != "":
		var rows, cols int
		if _, err := fmt.Sscanf(gridSpec, "%dx%d", &rows, &cols); err != nil {
			return fmt.Errorf("bad -grid %q (want RxC)", gridSpec)
		}
		net = roadnet.Grid(roadnet.GridConfig{Rows: rows, Cols: cols})
		rng := rand.New(rand.NewSource(seed))
		regions := roadnet.PerNodeRegions(net, rng)
		city = &dataset.City{
			Name: gridSpec, Net: net,
			Regions: regions,
			Kinds:   make([]dataset.RegionKind, len(regions)),
			Pairs:   roadnet.SelectODPairs(regions, 8, rng),
		}
		city.ResolveODs()
	case netPath != "":
		if err := cliutil.ReadFile(netPath, func(r io.Reader) error {
			var err error
			net, err = trafficio.ReadNetwork(r)
			return err
		}); err != nil {
			return err
		}
		if demandPath == "" {
			return fmt.Errorf("-net requires -demand (no preset OD pairs available)")
		}
	default:
		return fmt.Errorf("one of -city, -grid, or -net is required")
	}

	var eng sim.Engine
	switch strings.ToLower(engineName) {
	case "meso":
		eng = sim.Meso
	case "micro":
		eng = sim.Micro
	default:
		return fmt.Errorf("unknown engine %q", engineName)
	}
	var mode sim.RoutingMode
	switch strings.ToLower(routingName) {
	case "static":
		mode = sim.StaticRouting
	case "dynamic":
		mode = sim.DynamicRouting
	case "stochastic":
		mode = sim.StochasticRouting
	default:
		return fmt.Errorf("unknown routing %q", routingName)
	}

	var demand sim.Demand
	if demandPath != "" {
		if err := cliutil.ReadFile(demandPath, func(r io.Reader) error {
			var err error
			demand, err = trafficio.ReadDemand(r)
			return err
		}); err != nil {
			return err
		}
		intervals = demand.G.Dim(1)
	} else {
		var pat dataset.Pattern
		found := false
		for _, p := range dataset.AllPatterns {
			if strings.EqualFold(p.String(), patternName) {
				pat, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown pattern %q", patternName)
		}
		rng := rand.New(rand.NewSource(seed + 1))
		g := dataset.GenerateTOD(pat, dataset.TODConfig{
			Pairs: city.NumPairs(), Intervals: intervals,
			IntervalMinutes: intervalSec / 60, Scale: scale,
		}, rng)
		demand = sim.Demand{ODs: city.ODs, G: g}
	}

	cfg := sim.Config{
		Intervals: intervals, IntervalSec: intervalSec,
		Engine: eng, Routing: mode, Seed: seed,
	}
	if signals {
		cfg.Signals = sim.UniformSignals(net, 60, 3)
	}
	res, err := sim.New(net, cfg).RunCtx(ctx, demand)
	if err != nil {
		return err
	}

	if outPath != "" {
		return cliutil.WriteFileAtomic(outPath, func(w io.Writer) error {
			return trafficio.WriteResult(w, res)
		})
	}
	return trafficio.WriteResult(os.Stdout, res)
}
