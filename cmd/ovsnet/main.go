// Command ovsnet generates, imports, inspects, and exports road networks.
//
// Usage:
//
//	ovsnet -city Manhattan -o manhattan.json        # export a preset
//	ovsnet -grid 5x5 -stats                         # generate and inspect
//	ovsnet -osm extract.json -o net.json -stats     # import an OSM-style file
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"ovs/internal/cliutil"
	"ovs/internal/dataset"
	"ovs/internal/roadnet"
	"ovs/internal/trafficio"
)

// readNetworkFile opens path and decodes a network with parse, closing the
// file and reporting the first failure.
func readNetworkFile(path string, parse func(io.Reader) (*roadnet.Network, error)) (*roadnet.Network, error) {
	var net *roadnet.Network
	err := cliutil.ReadFile(path, func(r io.Reader) error {
		var err error
		net, err = parse(r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return net, nil
}

func main() {
	cityName := flag.String("city", "", "city preset: Hangzhou|Porto|Manhattan|StateCollege")
	gridSpec := flag.String("grid", "", "grid network, e.g. 5x5")
	osmPath := flag.String("osm", "", "import an OSM-style JSON extract")
	netPath := flag.String("net", "", "load a network JSON written by this tool")
	outPath := flag.String("o", "", "write the network JSON here")
	stats := flag.Bool("stats", true, "print network statistics")
	seed := flag.Int64("seed", 1, "generation seed")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	flag.Parse()

	// ovsnet has no long-running loops, but shares the fleet-wide ^C /
	// -timeout contract: a cancelled context aborts before the output write.
	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	net, err := load(*cityName, *gridSpec, *osmPath, *netPath, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		printStats(net)
	}
	if *outPath != "" {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "cancelled: %v\n", context.Cause(ctx))
			os.Exit(1)
		}
		err := cliutil.WriteFileAtomic(*outPath, func(w io.Writer) error {
			return trafficio.WriteNetwork(w, net)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func load(cityName, gridSpec, osmPath, netPath string, seed int64) (*roadnet.Network, error) {
	switch {
	case cityName != "":
		c, err := dataset.ByName(cityName, dataset.CityOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		return c.Net, nil
	case gridSpec != "":
		var rows, cols int
		if _, err := fmt.Sscanf(gridSpec, "%dx%d", &rows, &cols); err != nil {
			return nil, fmt.Errorf("bad -grid %q (want RxC)", gridSpec)
		}
		return roadnet.Grid(roadnet.GridConfig{Rows: rows, Cols: cols}), nil
	case osmPath != "":
		return readNetworkFile(osmPath, trafficio.ImportOSM)
	case netPath != "":
		return readNetworkFile(netPath, trafficio.ReadNetwork)
	default:
		return nil, fmt.Errorf("one of -city, -grid, -osm, -net is required")
	}
}

func printStats(net *roadnet.Network) {
	totalLen, minLen, maxLen := 0.0, math.Inf(1), 0.0
	lanes := map[int]int{}
	for _, l := range net.Links {
		totalLen += l.Length
		minLen = math.Min(minLen, l.Length)
		maxLen = math.Max(maxLen, l.Length)
		lanes[l.Lanes]++
	}
	fmt.Printf("intersections: %d\n", net.NumNodes())
	fmt.Printf("links:         %d (%d roads)\n", net.NumLinks(), net.NumLinks()/2)
	fmt.Printf("total length:  %.1f km\n", totalLen/1000)
	if net.NumLinks() > 0 {
		fmt.Printf("link length:   min %.0f m, mean %.0f m, max %.0f m\n",
			minLen, totalLen/float64(net.NumLinks()), maxLen)
	}
	fmt.Printf("lane mix:      %v\n", lanes)
	fmt.Printf("strongly connected: %v\n", net.StronglyConnected())
}
