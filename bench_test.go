// Benchmarks regenerating every table and figure of the paper's evaluation
// (at experiment.TestScale, sized so the full -bench=. sweep completes in
// minutes on one core), plus micro-benchmarks of the substrates the pipeline
// spends its time in. Every benchmark reports allocations (the training hot
// loop is pooled; see DESIGN.md §11), and cmd/ovsbench turns a sweep into
// BENCH_4.json for the perf trajectory. For paper-shaped output at a more
// faithful scale, run:
//
//	go run ./cmd/ovstables -exp all -scale quick
package ovs_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ovs"
	"ovs/internal/autodiff"
	"ovs/internal/dataset"
	"ovs/internal/experiment"
	"ovs/internal/lint"
	"ovs/internal/nn"
	"ovs/internal/parallel"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// benchScale trims TestScale slightly so every table bench iteration stays
// in the seconds-to-a-minute range.
func benchScale() experiment.Scale {
	sc := experiment.TestScale()
	sc.Samples = 5
	sc.V2SEpochs, sc.T2VEpochs, sc.FitEpochs = 7, 5, 25
	sc.ODPairs = 5
	return sc
}

// BenchmarkTableVI regenerates the real-dataset comparison (Hangzhou, Porto,
// Manhattan × 7 methods, RMSE on TOD/volume/speed).
func BenchmarkTableVI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunRealComparison(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVII regenerates the running-time table (OVS wall-clock on
// the three real datasets).
func BenchmarkTableVII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunRunningTime(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVIII regenerates the synthetic comparison (five TOD patterns
// × 7 methods on the 3×3 grid).
func BenchmarkTableVIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSyntheticComparison(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIX regenerates the ablation study (OVS and its three
// FC-ablated variants on the Random pattern).
func BenchmarkTableIX(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblation(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableX regenerates the case-study speed-fitting comparison
// (Table X columns Case 1 and Case 2).
func BenchmarkTableX(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCaseStudy1(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
		if _, err := experiment.RunCaseStudy2(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates the scalability sweep (OVS running time vs
// intersection count; the paper sweeps to 1000, the bench to 100).
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunScalability(context.Background(), benchScale(), []int{10, 50, 100}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the census-constraint experiment (recovered
// daily OD sums with and without the auxiliary loss).
func BenchmarkFigure10(b *testing.B) {
	sc := benchScale()
	sc.ODPairs = 12
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCensusConstraint(context.Background(), sc, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates the road-work robustness experiment.
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunRoadWork(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 regenerates case study 1 (Hangzhou Sunday TOD curves).
func BenchmarkFigure12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCaseStudy1(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13 regenerates case study 2 (football Saturday TOD curves).
func BenchmarkFigure13(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCaseStudy2(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteChoiceAblation runs the route-choice design-choice ablation
// (k=1 vs k=2 route splits under dynamic routing).
func BenchmarkRouteChoiceAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunRouteChoice(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCrossAblation runs the simulator-mismatch ablation
// (meso-trained chain observing micro-engine speeds).
func BenchmarkEngineCrossAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunEngineCross(context.Background(), benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkSimulatorMeso measures mesoscopic engine throughput on the 3×3
// grid with moderate demand (the inner loop of training-data generation).
func BenchmarkSimulatorMeso(b *testing.B) {
	city := dataset.SyntheticGrid(8, 1)
	g := tensor.Full(20, city.NumPairs(), 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(city.Net, sim.Config{Intervals: 6, IntervalSec: 300, Seed: int64(i)})
		if _, err := s.Run(sim.Demand{ODs: city.ODs, G: g}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMesoDynamic measures the meso engine under
// DynamicRouting, where the per-(OD, interval) route cache turns a Dijkstra
// per vehicle into a Dijkstra per OD per interval. The dijkstra/op metric is
// the cached invocation count (static precompute + one per spawned
// OD-interval).
func BenchmarkSimulatorMesoDynamic(b *testing.B) {
	city := dataset.SyntheticGrid(8, 1)
	g := tensor.Full(20, city.NumPairs(), 6)
	b.ReportAllocs()
	b.ResetTimer()
	calls := 0
	for i := 0; i < b.N; i++ {
		s := sim.New(city.Net, sim.Config{Intervals: 6, IntervalSec: 300, Seed: int64(i),
			Routing: sim.DynamicRouting})
		res, err := s.Run(sim.Demand{ODs: city.ODs, G: g})
		if err != nil {
			b.Fatal(err)
		}
		calls += res.DijkstraCalls
	}
	b.ReportMetric(float64(calls)/float64(b.N), "dijkstra/op")
}

// BenchmarkSimulatorMicro measures the IDM car-following engine on the same
// workload.
func BenchmarkSimulatorMicro(b *testing.B) {
	city := dataset.SyntheticGrid(8, 1)
	g := tensor.Full(20, city.NumPairs(), 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(city.Net, sim.Config{Intervals: 6, IntervalSec: 300, Seed: int64(i), Engine: sim.Micro})
		if _, err := s.Run(sim.Demand{ODs: city.ODs, G: g}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchModel builds the standard OVS model on the 3×3 grid for the hot-loop
// micro-benchmarks.
func benchModel(b *testing.B) *ovs.Model {
	b.Helper()
	city := dataset.SyntheticGrid(8, 1)
	pairs := make([][2]int, len(city.ODs))
	for i, od := range city.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := ovs.NewTopology(city.Net, pairs, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ovs.NewModel(topo, ovs.DefaultModelConfig())
}

// BenchmarkModelForward measures one OVS forward pass (TOD→volume→speed) on
// the 3×3 grid topology.
func BenchmarkModelForward(b *testing.B) {
	model := benchModel(b)
	g := tensor.Full(20, model.Topo.N, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = model.Forward(g)
	}
}

// BenchmarkFitEpoch measures one test-time fitting epoch (forward + backward
// through all three modules plus the optimizer step), with the tensor arena
// enabled (the default) and disabled. The arena=on/arena=off allocs/op gap is
// the headline number of the pooled training loop.
func BenchmarkFitEpoch(b *testing.B) {
	model := benchModel(b)
	_, speed := model.Forward(tensor.Full(20, model.Topo.N, 8))
	restore := tensor.PoolingEnabled()
	defer tensor.SetPooling(restore)
	for _, mode := range []struct {
		name   string
		pooled bool
	}{
		{"arena=on", true},
		{"arena=off", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			tensor.SetPooling(mode.pooled)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := model.Fit(speed, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackward measures one forward+backward sweep of the full OVS chain
// on a recycled graph — the allocation profile of the inner training loop
// without the optimizer.
func BenchmarkBackward(b *testing.B) {
	model := benchModel(b)
	_, speed := model.Forward(tensor.Full(20, model.Topo.N, 8))
	params := model.Params()
	g := autodiff.NewGraph()
	defer g.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		tod := model.TODGen.Generate(g)
		vol := model.T2V.MapVolume(g, tod, false)
		pred := model.V2S.MapSpeed(g, vol, false)
		loss := autodiff.MSE(pred, speed)
		g.Backward(loss)
		nn.ZeroGrads(params)
	}
}

// BenchmarkDijkstra measures shortest-path routing on a 20×20 grid.
func BenchmarkDijkstra(b *testing.B) {
	net := ovs.Grid(ovs.GridConfig{Rows: 20, Cols: 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.ShortestPath(0, net.NumNodes()-1, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMul measures the dense kernel at 256×256×256 through the
// packed, cache-blocked GEMM core — the headline size the perf trajectory
// tracks (BENCH_2's naive kernel vs BENCH_4's packed kernel), and the
// benchmark CI gates on allocs/op (a regression means the arena-pooled pack
// buffers stopped pooling).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 256, 256)
	y := tensor.Randn(rng, 1, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, y)
	}
}

// BenchmarkGEMM sweeps the packed blocked GEMM core across square and ragged
// shapes (64..512, including non-tile-multiples) for all four entry points.
// Each subtest reports effective GFLOPS alongside the standard metrics.
func BenchmarkGEMM(b *testing.B) {
	shapes := []struct{ m, n, k int }{
		{64, 64, 64}, {128, 128, 128}, {256, 256, 256}, {512, 512, 512},
		{512, 64, 256}, {64, 512, 128}, {256, 256, 33}, {96, 200, 72},
	}
	rng := rand.New(rand.NewSource(1))
	for _, s := range shapes {
		name := fmt.Sprintf("%dx%dx%d", s.m, s.n, s.k)
		a := tensor.Randn(rng, 1, s.m, s.k)
		bb := tensor.Randn(rng, 1, s.k, s.n)
		aT := tensor.Randn(rng, 1, s.k, s.m)
		bT := tensor.Randn(rng, 1, s.n, s.k)
		dst := tensor.New(s.m, s.n)
		flops := 2 * float64(s.m) * float64(s.n) * float64(s.k)
		run := func(variant string, fn func()) {
			b.Run(variant+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fn()
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			})
		}
		run("MatMul", func() { _ = tensor.MatMul(a, bb) })
		run("MatMulTo", func() { tensor.MatMulTo(dst, a, bb) })
		run("MatMulNTAcc", func() { tensor.MatMulNTAcc(dst, a, bT) })
		run("MatMulTNAcc", func() { tensor.MatMulTNAcc(dst, aT, bb) })
	}
}

// BenchmarkMatMulParallel measures the dense kernel at a size large enough
// for the worker pool to engage (256³ ≈ 16.8M flops, well above the per-chunk
// grain), comparing the exact-serial setting against the process default.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 256, 256)
	y := tensor.Randn(rng, 1, 256, 256)
	old := parallel.Workers()
	defer parallel.SetWorkers(old)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=default", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			parallel.SetWorkers(bc.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tensor.MatMul(x, y)
			}
		})
	}
}

// BenchmarkLSTMForwardBackward measures one LSTM training step (T=12) on a
// recycled graph.
func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLSTM(rng, "bench", 8, 32)
	x := tensor.Randn(rng, 1, 12, 8)
	target := tensor.Randn(rng, 1, 12, 32)
	g := autodiff.NewGraph()
	defer g.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		out := l.Forward(g.Const(x), true)
		loss := autodiff.MSE(out, target)
		g.Backward(loss)
	}
}

// BenchmarkLSTMCell measures the fused cell kernel in isolation: the input
// projection is precomputed (as LSTM.Forward hoists it), so each step is
// exactly one LSTMCell node — forward and hand-written fused backward — on a
// recycled graph. This is the per-step cost the fusion collapsed the ~16-node
// graph chain into.
func BenchmarkLSTMCell(b *testing.B) {
	const steps, hidden = 12, 32
	rng := rand.New(rand.NewSource(1))
	pre := tensor.Randn(rng, 1, steps, 4*hidden)
	wh := autodiff.NewParameter("bench.Wh", tensor.Randn(rng, 1, hidden, 4*hidden))
	target := tensor.Randn(rng, 1, steps, hidden)
	g := autodiff.NewGraph()
	defer g.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		preNode := g.Const(pre)
		whNode := g.Param(wh)
		outs := make([]*autodiff.Node, steps)
		var prev *autodiff.Node
		for t := 0; t < steps; t++ {
			prev = autodiff.LSTMCell(preNode, t, prev, whNode, hidden)
			outs[t] = prev
		}
		loss := autodiff.MSE(autodiff.StackRows(outs), target)
		g.Backward(loss)
	}
}

// BenchmarkLintRepo measures a full cold ovslint pass over the module — the
// CFG + dataflow suite type-checks and analyzes every package, so this is
// the CI lint job's wall-clock and the number the incremental cache is
// amortizing (a warm -cache run skips everything measured here).
func BenchmarkLintRepo(b *testing.B) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		d := &lint.Driver{Loader: loader, Analyzers: lint.All()}
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range res {
			for _, diag := range pr.Diags {
				b.Fatalf("lint diagnostic during benchmark: %s", diag)
			}
		}
	}
}
