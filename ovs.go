// Package ovs is the public facade of this repository: a from-scratch Go
// implementation of "Rebuilding City-Wide Traffic Origin Destination from
// Road Speed Data" (ICDE 2021) together with every substrate the paper's
// evaluation needs — a traffic simulator, a neural-network stack, road
// networks and synthetic datasets, six baselines, and the full experiment
// harness.
//
// The aliases below expose the stable, documented surface of the library.
// Downstream users compose them as:
//
//	city := ovs.SyntheticGrid(8, 1)
//	simulator := ovs.NewSimulator(city.Net, ovs.SimConfig{Intervals: 8, IntervalSec: 300})
//	...                                  // generate samples, observe speed
//	topo, _ := ovs.NewTopology(city.Net, pairs, 8, 1)
//	model := ovs.NewModel(topo, ovs.DefaultModelConfig())
//	recovered, _ := model.TrainFull(samples, speedObs, 30, 25, 200, nil)
//
// See examples/ for runnable end-to-end programs and internal/experiment for
// the table/figure reproduction harness behind cmd/ovstables.
package ovs

import (
	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/fd"
	"ovs/internal/metrics"
	"ovs/internal/parallel"
	"ovs/internal/roadnet"
	"ovs/internal/sim"
	"ovs/internal/tensor"
	"ovs/internal/trafficio"
)

// ---- Tensors ----

// Tensor is a dense row-major float64 tensor.
type Tensor = tensor.Tensor

// NewTensor allocates a zero tensor; FromSlice wraps existing data.
var (
	NewTensor  = tensor.New
	FromSlice  = tensor.FromSlice
	TensorRMSE = metrics.RMSE
)

// ---- Road networks ----

// Network is a directed road graph; Route a link path; Region a city
// partition cell; ODPair an ordered (origin, destination) region pair.
type (
	Network = roadnet.Network
	Route   = roadnet.Route
	Region  = roadnet.Region
	ODPair  = roadnet.ODPair
)

// Network constructors and routing helpers.
var (
	NewNetwork           = roadnet.New
	Grid                 = roadnet.Grid
	GridForIntersections = roadnet.GridForIntersections
	GenerateCity         = roadnet.City
	Partition            = roadnet.Partition
	PerNodeRegions       = roadnet.PerNodeRegions
	SelectODPairs        = roadnet.SelectODPairs
)

// GridConfig and CityConfig parameterize the network generators.
type (
	GridConfig = roadnet.GridConfig
	CityConfig = roadnet.CityConfig
)

// ---- Traffic simulation ----

// Simulator runs TOD tensors into per-link volume/speed observations; it is
// the CityFlow substitute of the paper's pipeline.
type (
	Simulator = sim.Simulator
	SimConfig = sim.Config
	SimResult = sim.Result
	Demand    = sim.Demand
	ODNodes   = sim.ODNodes
)

// Simulator constructor and engine/routing selectors.
var NewSimulator = sim.New

// Engine and routing mode constants.
const (
	EngineMeso        = sim.Meso
	EngineMicro       = sim.Micro
	StaticRouting     = sim.StaticRouting
	DynamicRouting    = sim.DynamicRouting
	StochasticRouting = sim.StochasticRouting
)

// SignalPlan adds fixed-time traffic lights to a simulation; SignalTiming is
// one intersection's cycle.
type (
	SignalPlan   = sim.SignalPlan
	SignalTiming = sim.SignalTiming
)

// UniformSignals signalizes all major intersections with a common cycle.
var UniformSignals = sim.UniformSignals

// FundamentalDiagram is a speed-density relation for the meso engine.
type FundamentalDiagram = fd.Model

// Fundamental diagram families (Greenshields is the default).
var (
	Greenshields = func() fd.Model { return fd.Greenshields{} }
	Greenberg    = func() fd.Model { return fd.Greenberg{} }
	Underwood    = func() fd.Model { return fd.Underwood{} }
	Triangular   = func() fd.Model { return fd.Triangular{} }
)

// ---- Datasets ----

// City bundles a road network with regions and OD pairs; CaseStudy packages
// the two real-world-style scenarios of §V-K.
type (
	City      = dataset.City
	CaseStudy = dataset.CaseStudy
	Pattern   = dataset.Pattern
	TODConfig = dataset.TODConfig
	Sample    = core.Sample
)

// Dataset constructors: the four Table III presets, the synthetic grid, the
// five TOD patterns, and the case-study scenarios.
var (
	Hangzhou      = dataset.Hangzhou
	Porto         = dataset.Porto
	Manhattan     = dataset.Manhattan
	StateCollege  = dataset.StateCollege
	SyntheticGrid = dataset.SyntheticGrid
	GenerateTOD   = dataset.GenerateTOD
	CaseStudy1    = dataset.CaseStudy1
	CaseStudy2    = dataset.CaseStudy2
)

// The five synthetic TOD patterns of Table VIII.
const (
	PatternRandom     = dataset.PatternRandom
	PatternIncreasing = dataset.PatternIncreasing
	PatternDecreasing = dataset.PatternDecreasing
	PatternGaussian   = dataset.PatternGaussian
	PatternPoisson    = dataset.PatternPoisson
)

// RegionKind classifies a region's land use in the city presets.
type RegionKind = dataset.RegionKind

// Region land-use kinds.
const (
	KindResidential = dataset.KindResidential
	KindCommercial  = dataset.KindCommercial
	KindGate        = dataset.KindGate
	KindStadium     = dataset.KindStadium
)

// Auxiliary data feeds (Table II).
type (
	Census       = dataset.Census
	Cameras      = dataset.Cameras
	Trajectories = dataset.Trajectories
)

// Auxiliary data constructors.
var (
	CensusFromTOD       = dataset.CensusFromTOD
	CamerasFromVolume   = dataset.CamerasFromVolume
	TrajectoriesFromTOD = dataset.TrajectoriesFromTOD
)

// ---- The OVS model ----

// Model is the paper's contribution: TOD Generation, TOD-Volume mapping
// with dynamic attention, and Volume-Speed mapping, trained per Fig. 8.
type (
	Model       = core.Model
	ModelConfig = core.Config
	Topology    = core.Topology
	AuxData     = core.AuxData
)

// Model constructors and configurations. DefaultModelConfig is sized for
// fast runs; PaperModelConfig matches Tables IV and V.
var (
	NewTopology        = core.NewTopology
	NewModel           = core.NewModel
	NewAblatedModel    = core.NewAblatedModel
	DefaultModelConfig = core.DefaultConfig
	PaperModelConfig   = core.PaperConfig
)

// ---- Parallel execution ----

// SetWorkers sets the process-wide default worker-pool size used by tensor
// kernels, module builders, the meso engine and the experiment harness
// (n <= 0 restores the GOMAXPROCS default; 1 forces exact-serial execution).
// Results are bitwise-identical at any setting. Workers reports the current
// value.
var (
	SetWorkers = parallel.SetWorkers
	Workers    = parallel.Workers
)

// ---- Serialization ----

// Network, demand, and result (de)serialization plus OSM-style import.
var (
	WriteNetwork = trafficio.WriteNetwork
	ReadNetwork  = trafficio.ReadNetwork
	WriteDemand  = trafficio.WriteDemand
	ReadDemand   = trafficio.ReadDemand
	WriteResult  = trafficio.WriteResult
	ImportOSM    = trafficio.ImportOSM
)
