module ovs

go 1.22
