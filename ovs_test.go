package ovs_test

import (
	"math/rand"
	"testing"

	"ovs"
)

// TestFacadeEndToEnd exercises the public API exactly as README's quickstart
// does, at a miniature scale: build a city, generate data, train, recover.
func TestFacadeEndToEnd(t *testing.T) {
	const (
		intervals   = 4
		intervalSec = 180
		seed        = 21
	)
	city := ovs.SyntheticGrid(4, seed)
	if city.Net.NumNodes() != 9 {
		t.Fatalf("grid nodes = %d", city.Net.NumNodes())
	}
	simulator := ovs.NewSimulator(city.Net, ovs.SimConfig{
		Intervals: intervals, IntervalSec: intervalSec, Seed: seed,
	})

	rng := rand.New(rand.NewSource(seed))
	var samples []ovs.Sample
	maxTrips := 0.0
	for i := 0; i < 4; i++ {
		g := ovs.GenerateTOD(ovs.Pattern(i%5), ovs.TODConfig{
			Pairs: city.NumPairs(), Intervals: intervals,
			IntervalMinutes: intervalSec / 60, Scale: 0.6,
		}, rng)
		res, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: g})
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, ovs.Sample{G: g, Volume: res.Volume, Speed: res.Speed})
		if g.Max() > maxTrips {
			maxTrips = g.Max()
		}
	}

	hidden := ovs.GenerateTOD(ovs.PatternGaussian, ovs.TODConfig{
		Pairs: city.NumPairs(), Intervals: intervals,
		IntervalMinutes: intervalSec / 60, Scale: 0.5,
	}, rng)
	obs, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: hidden})
	if err != nil {
		t.Fatal(err)
	}

	pairs := make([][2]int, len(city.ODs))
	for i, od := range city.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := ovs.NewTopology(city.Net, pairs, intervals, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ovs.DefaultModelConfig()
	cfg.MaxTrips = maxTrips * 1.2
	cfg.Seed = seed
	model := ovs.NewModel(topo, cfg)
	recovered, err := model.TrainFull(samples, obs.Speed, 4, 3, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Dim(0) != city.NumPairs() || recovered.Dim(1) != intervals {
		t.Fatalf("recovered shape %v", recovered.Shape())
	}
	if recovered.Min() < 0 {
		t.Fatal("negative recovered trips")
	}
	// Better than the all-MaxTrips straw man, even at miniature training.
	straw := hidden.Map(func(float64) float64 { return cfg.MaxTrips })
	if ovs.TensorRMSE(recovered, hidden) >= ovs.TensorRMSE(straw, hidden) {
		t.Fatal("recovery no better than straw man")
	}
}

// TestFacadePaperConfig spot-checks the exported configuration constructors.
func TestFacadePaperConfig(t *testing.T) {
	paper := ovs.PaperModelConfig()
	if paper.LSTMHidden != 128 || paper.LR != 0.001 {
		t.Fatalf("paper config wrong: %+v", paper)
	}
	def := ovs.DefaultModelConfig()
	if def.MaxTrips <= 0 || def.Lookback <= 0 {
		t.Fatalf("default config wrong: %+v", def)
	}
}

// TestFacadeCaseStudies checks both scenario constructors through the facade.
func TestFacadeCaseStudies(t *testing.T) {
	cs1, err := ovs.CaseStudy1(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs1.Intervals != 24 || len(cs1.Focus) != 2 {
		t.Fatalf("case 1 malformed: %d intervals, %d focus", cs1.Intervals, len(cs1.Focus))
	}
	cs2, err := ovs.CaseStudy2(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Intervals != 12 || len(cs2.Focus) != 3 {
		t.Fatalf("case 2 malformed: %d intervals, %d focus", cs2.Intervals, len(cs2.Focus))
	}
}

// TestFacadeAuxConstructors checks the auxiliary data surface.
func TestFacadeAuxConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ovs.GenerateTOD(ovs.PatternPoisson, ovs.TODConfig{Pairs: 5, Intervals: 4}, rng)
	census := ovs.CensusFromTOD(g, 0.1, rng)
	if len(census.DailySum) != 5 {
		t.Fatalf("census len %d", len(census.DailySum))
	}
	tr, err := ovs.TrajectoriesFromTOD(g, 2, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ScaleToFleet().Dim(0) != 2 {
		t.Fatal("trajectory scaling wrong")
	}
}
