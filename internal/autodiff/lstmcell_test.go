package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/tensor"
)

// unfusedLSTMRef builds the reference graph-op LSTM over a (T × in) input
// node: hoisted input projection, then the explicit per-step op chain the
// fused cell replaces. It is the oracle every fused-path test compares
// against.
func unfusedLSTMRef(g *Graph, x, wx, wh, b *Node, hidden int) *Node {
	steps := x.Value.Dim(0)
	pre := AddRowVector(MatMul(x, wx), b)
	hMat := g.Const(g.Alloc(1, hidden))
	c := g.Const(g.Alloc(hidden))
	outs := make([]*Node, steps)
	for t := 0; t < steps; t++ {
		flat := Add(Row(pre, t), Reshape(MatMul(hMat, wh), 4*hidden))
		in := Sigmoid(SliceVec(flat, 0, hidden))
		fg := Sigmoid(SliceVec(flat, hidden, 2*hidden))
		og := Sigmoid(SliceVec(flat, 2*hidden, 3*hidden))
		gg := Tanh(SliceVec(flat, 3*hidden, 4*hidden))
		c = Add(Mul(fg, c), Mul(in, gg))
		hFlat := Mul(og, Tanh(c))
		hMat = Reshape(hFlat, 1, hidden)
		outs[t] = hFlat
	}
	return StackRows(outs)
}

// fusedLSTMRef builds the same recurrence from LSTMCell nodes.
func fusedLSTMRef(x, wx, wh, b *Node, hidden int) *Node {
	steps := x.Value.Dim(0)
	pre := AddRowVector(MatMul(x, wx), b)
	outs := make([]*Node, steps)
	var prev *Node
	for t := 0; t < steps; t++ {
		prev = LSTMCell(pre, t, prev, wh, hidden)
		outs[t] = prev
	}
	return StackRows(outs)
}

// bitsEqual compares bit patterns, treating any NaN as equal to any NaN:
// x86 NaN propagation returns the first NaN source operand, and operand order
// for commutative float ops is a compiler choice, so NaN payload/sign bits
// are the one quantity the two paths legitimately may not share. Everything
// else — signed zeros, infinities, every finite value — must match exactly.
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.IsNaN(a[i]) && math.IsNaN(b[i]) {
			continue
		}
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func requireBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	if i, ok := bitsEqual(got, want); !ok {
		t.Fatalf("%s[%d]: fused %v (%#x) vs unfused %v (%#x)",
			what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
	}
}

// runLSTMBitwiseCase runs both paths from identical parameters and input and
// asserts the stacked outputs, the loss-weighted backward, and every
// parameter gradient are bitwise-identical.
func runLSTMBitwiseCase(t *testing.T, x *tensor.Tensor, wxT, whT, bT *tensor.Tensor, hidden int) {
	t.Helper()
	build := func(fused bool) (*tensor.Tensor, []*tensor.Tensor) {
		wx := NewParameter("wx", wxT.Clone())
		wh := NewParameter("wh", whT.Clone())
		bias := NewParameter("b", bT.Clone())
		g := NewGraph()
		defer g.Release()
		var out *Node
		if fused {
			out = fusedLSTMRef(g.Const(x), g.Param(wx), g.Param(wh), g.Param(bias), hidden)
		} else {
			out = unfusedLSTMRef(g, g.Const(x), g.Param(wx), g.Param(wh), g.Param(bias), hidden)
		}
		// A non-uniform seed gradient so backward symmetry can't hide bugs:
		// scale each output element by a deterministic pattern before Sum.
		weights := g.Alloc(out.Value.Dim(0), out.Value.Dim(1))
		for i := range weights.Data {
			weights.Data[i] = float64(i%7) - 3
		}
		loss := Sum(Mul(out, g.Const(weights)))
		g.Backward(loss)
		val := out.Value.Clone()
		return val, []*tensor.Tensor{wx.Grad.Clone(), wh.Grad.Clone(), bias.Grad.Clone()}
	}

	fusedVal, fusedGrads := build(true)
	refVal, refGrads := build(false)
	requireBits(t, "output", fusedVal.Data, refVal.Data)
	for i, name := range []string{"wx.Grad", "wh.Grad", "b.Grad"} {
		requireBits(t, name, fusedGrads[i].Data, refGrads[i].Data)
	}
}

func TestLSTMCellBitwiseVsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ steps, in, hidden int }{
		{1, 3, 4},
		{5, 5, 8},
		{12, 7, 16},
		{24, 4, 32},
	} {
		x := tensor.Randn(rng, 1, tc.steps, tc.in)
		wx := tensor.Randn(rng, 0.4, tc.in, 4*tc.hidden)
		wh := tensor.Randn(rng, 0.4, tc.hidden, 4*tc.hidden)
		b := tensor.Randn(rng, 0.2, 4*tc.hidden)
		runLSTMBitwiseCase(t, x, wx, wh, b, tc.hidden)
	}
}

// TestLSTMCellBitwiseSpecialValues injects ±0, NaN, and infinities into the
// input and weights: the fused kernels must propagate non-finite values (and
// signed zeros) through the exact arithmetic the graph ops perform, not
// shortcut around them.
func TestLSTMCellBitwiseSpecialValues(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const steps, in, hidden = 6, 4, 8
	x := tensor.Randn(rng, 1, steps, in)
	wx := tensor.Randn(rng, 0.4, in, 4*hidden)
	wh := tensor.Randn(rng, 0.4, hidden, 4*hidden)
	b := tensor.Randn(rng, 0.2, 4*hidden)
	x.Data[0] = math.Inf(1)
	x.Data[1] = math.Inf(-1)
	x.Data[2] = math.NaN()
	x.Data[3] = math.Copysign(0, -1)
	x.Data[in] = 0
	wx.Data[5] = math.Inf(1)
	wx.Data[6] = math.NaN()
	wh.Data[3] = math.Copysign(0, -1)
	wh.Data[4] = math.Inf(-1)
	b.Data[1] = math.NaN()
	runLSTMBitwiseCase(t, x, wx, wh, b, hidden)
}

func TestLSTMCellGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const steps, in, hidden = 5, 3, 6
	x := tensor.Randn(rng, 1, steps, in)
	target := tensor.Randn(rng, 1, steps, hidden)
	wx := randParam(rng, "wx", in, 4*hidden)
	wh := randParam(rng, "wh", hidden, 4*hidden)
	b := randParam(rng, "b", 4*hidden)
	gradCheck(t, []*Parameter{wx, wh, b}, func(g *Graph) *Node {
		out := fusedLSTMRef(g.Const(x), g.Param(wx), g.Param(wh), g.Param(b), hidden)
		return MSE(out, target)
	})
}

// TestLSTMCellChildTape exercises the fused cell on forked child tapes under
// the parallel pool, the exact topology LSTMV2S uses per link.
func TestLSTMCellChildTape(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const steps, in, hidden, links = 7, 3, 5, 9
	wx := NewParameter("wx", tensor.Randn(rng, 0.4, in, 4*hidden))
	wh := NewParameter("wh", tensor.Randn(rng, 0.4, hidden, 4*hidden))
	b := NewParameter("b", tensor.Randn(rng, 0.2, 4*hidden))
	xs := make([]*tensor.Tensor, links)
	for i := range xs {
		xs[i] = tensor.Randn(rng, 1, steps, in)
	}

	run := func(workers int) (*tensor.Tensor, *tensor.Tensor) {
		wx.ZeroGrad()
		wh.ZeroGrad()
		b.ZeroGrad()
		g := NewGraph()
		defer g.Release()
		outs := ForkJoin(g, workers, links, func(cg *Graph, i int) *Node {
			return fusedLSTMRef(cg.Const(xs[i]), cg.Param(wx), cg.Param(wh), cg.Param(b), hidden)
		})
		total := Sum(outs[0])
		for _, o := range outs[1:] {
			total = Add(total, Sum(o))
		}
		g.Backward(total)
		return wh.Grad.Clone(), wx.Grad.Clone()
	}

	whSerial, wxSerial := run(1)
	whPar, wxPar := run(4)
	requireBits(t, "wh.Grad workers=4", whPar.Data, whSerial.Data)
	requireBits(t, "wx.Grad workers=4", wxPar.Data, wxSerial.Data)
}
