package autodiff

import (
	"math/rand"
	"testing"

	"ovs/internal/tensor"
)

// rowNode builds one item's sub-computation on tape g: sigmoid(w · x). It is
// the shared forward used by the serial and forked variants below.
func rowNode(g *Graph, w *Node, x *tensor.Tensor) *Node {
	return Sigmoid(MatMul(w, g.Const(x)))
}

func TestForkJoinMatchesSerialBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rows, dim = 6, 5
	wT := tensor.Xavier(rng, dim, dim, dim, dim)
	xs := make([]*tensor.Tensor, rows)
	for i := range xs {
		xs[i] = tensor.RandUniform(rng, -1, 1, dim, dim)
	}

	run := func(workers int) (*tensor.Tensor, *tensor.Tensor) {
		p := NewParameter("w", wT.Clone())
		g := NewGraph()
		w := g.Param(p)
		var outs []*Node
		if workers == 0 { // plain serial build, no forking at all
			for i := 0; i < rows; i++ {
				outs = append(outs, rowNode(g, w, xs[i]))
			}
		} else {
			outs = ForkJoin(g, workers, rows, func(sub *Graph, i int) *Node {
				return rowNode(sub, sub.Ref(w), xs[i])
			})
		}
		loss := Mean(SumNodes(outs...))
		g.Backward(loss)
		return loss.Value.Clone(), p.Grad.Clone()
	}

	refVal, refGrad := run(0)
	for _, workers := range []int{1, 2, 4} {
		val, grad := run(workers)
		if !tensor.AllClose(val, refVal, 0) {
			t.Fatalf("workers=%d: forked forward differs from serial", workers)
		}
		if !tensor.AllClose(grad, refGrad, 0) {
			t.Fatalf("workers=%d: forked gradient differs from serial", workers)
		}
	}
}

func TestForkJoinWorkerCountInvariance(t *testing.T) {
	// The joined tape must be bitwise identical across worker counts even
	// when per-item builds mix Ref'd parent nodes with child-tape math.
	rng := rand.New(rand.NewSource(11))
	const items = 9
	base := tensor.RandUniform(rng, -1, 1, 4, 4)
	xs := make([]*tensor.Tensor, items)
	for i := range xs {
		xs[i] = tensor.RandUniform(rng, -1, 1, 4, 4)
	}
	run := func(workers int) (*tensor.Tensor, *tensor.Tensor) {
		p := NewParameter("w", base.Clone())
		g := NewGraph()
		w := g.Param(p)
		outs := ForkJoin(g, workers, items, func(sub *Graph, i int) *Node {
			// Mixed-operand op: w is still on the parent tape here; the
			// result must attach to the child.
			return Tanh(Mul(w, sub.Const(xs[i])))
		})
		loss := Mean(SumNodes(outs...))
		g.Backward(loss)
		return loss.Value.Clone(), p.Grad.Clone()
	}
	v1, g1 := run(1)
	for _, workers := range []int{2, 3, 8} {
		v, gr := run(workers)
		if !tensor.AllClose(v, v1, 0) || !tensor.AllClose(gr, g1, 0) {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
	}
}

func TestFrozenParameterGetsNoGradient(t *testing.T) {
	p := NewParameter("w", tensor.Ones(3))
	q := NewParameter("v", tensor.Ones(3))
	q.SetFrozen(true)
	g := NewGraph()
	loss := Mean(Mul(g.Param(p), g.Param(q)))
	g.Backward(loss)
	if p.Grad.Norm2() == 0 {
		t.Fatal("unfrozen parameter received no gradient")
	}
	if q.Grad.Norm2() != 0 {
		t.Fatalf("frozen parameter received gradient %v", q.Grad.Data)
	}
	q.SetFrozen(false)
	g2 := NewGraph()
	g2.Backward(Mean(Mul(g2.Param(p), g2.Param(q))))
	if q.Grad.Norm2() == 0 {
		t.Fatal("unfreezing did not restore gradient flow")
	}
}

func TestSiblingForkMixPanics(t *testing.T) {
	g := NewGraph()
	a := g.Fork()
	b := g.Fork()
	na := a.Const(tensor.Ones(2))
	nb := b.Const(tensor.Ones(2))
	defer func() {
		if recover() == nil {
			t.Fatal("mixing sibling fork tapes should panic")
		}
	}()
	Add(na, nb)
}
