// Package autodiff implements a small reverse-mode automatic differentiation
// engine over dense tensors. It is the training substrate for the OVS model
// and the learned baselines: each forward pass records operations on a tape,
// and Backward replays the tape in reverse, accumulating gradients into
// persistent Parameters.
//
// The design favors explicitness over generality: every operation has a
// hand-written backward rule that is verified against finite differences in
// the package tests. Ops allocate their outputs and gradient buffers through
// the graph (Graph.Alloc), which draws from the tensor arena and reclaims
// everything on Graph.Reset — see recycle.go.
//
// Backward rules are static functions dispatched through Node.backFn, with
// operands stored in the node itself (a, b, c, srcs, ext, x0, i0, i1) rather
// than captured in closures. A closure per op would be one heap allocation
// per tape node; the static form keeps the steady-state hot loop free of
// per-node allocations because the Node structs live in pooled slabs.
package autodiff

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"ovs/internal/tensor"
)

// Parameter is a trainable tensor with persistent gradient storage. It lives
// outside any single Graph so that optimizers can update it across many
// forward/backward passes.
type Parameter struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	frozen atomic.Bool
}

// NewParameter wraps value as a trainable parameter with zeroed gradient.
func NewParameter(name string, value *tensor.Tensor) *Parameter {
	return &Parameter{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// SetFrozen marks the parameter frozen (or unfrozen). A frozen parameter is
// recorded on the tape as a gradient-free leaf, so Backward never writes to
// its Grad tensor. Freezing the parameters of modules that are only read
// during a training phase is what makes concurrent training runs (e.g.
// parallel FitBest restarts sharing the pre-trained T2V/V2S modules) free of
// data races: a frozen parameter is immutable for the duration.
func (p *Parameter) SetFrozen(frozen bool) { p.frozen.Store(frozen) }

// Frozen reports whether the parameter is currently frozen.
func (p *Parameter) Frozen() bool { return p.frozen.Load() }

// Node is one value in the computation graph. Value is set during the
// forward pass; Grad is allocated lazily and filled during Backward.
//
// Nodes live in pooled slabs owned by their graph (see recycle.go), so the
// struct doubles as the tape record: backFn is the op's static backward rule
// and the remaining fields are its operands. Graph.Reset zeroes the whole
// struct, which drops every operand reference at once.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	graph    *Graph
	requires bool // does any parameter feed into this node?
	param    *Parameter

	// backFn accumulates into the operands' Grad; nil for leaves. It is
	// always a package-level function (never a closure), so recording an op
	// allocates nothing beyond the slab entry.
	backFn func(out *Node)
	a      *Node          // first operand
	b      *Node          // second operand
	c      *Node          // third operand (Conv1DSame bias)
	srcs   []*Node        // variadic operands (StackRows, ConcatVec)
	ext    *tensor.Tensor // auxiliary tensor (dropout mask)
	x0     float64        // scalar operand (Scale factor, MulScalarNode value)
	i0, i1 int            // integer operands (slice bounds, row index, dims)
}

// Graph is a tape of nodes in forward (topological) order.
//
// A tape is strictly single-writer: exactly one goroutine may record nodes on
// it at any moment. Concurrent graph construction goes through Fork/Join (see
// parallel.go) — each worker records onto its own child tape and the children
// are spliced back deterministically. add enforces the rule with a cheap
// tripwire that panics on detected concurrent appends.
//
// Graphs recycle: Reset returns every owned tensor to the arena and every
// node slab to the pool, so per-epoch loops reuse one graph instead of
// reallocating the whole tape (see recycle.go).
type Graph struct {
	nodes []*Node

	// parent is non-nil for a child tape created by Fork, until Join.
	parent *Graph
	// busy is the single-writer tripwire flag toggled around each append.
	busy atomic.Bool

	// owned lists the arena tensors allocated through Alloc, reclaimed on
	// Reset.
	owned []*tensor.Tensor
	// cur/curUsed/full are the node slabs backing this tape's nodes.
	cur     []Node
	curUsed int
	full    [][]Node
	// children pools consumed child tapes for reuse by the next Fork.
	children []*Graph
}

// NewGraph returns an empty tape.
func NewGraph() *Graph { return &Graph{} }

// NumNodes returns the number of recorded nodes (useful in tests and for
// instrumentation).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Graph returns the tape this node was recorded on. Layers use it to attach
// their parameter leaves to the same tape as their input.
func (n *Node) Graph() *Graph { return n.graph }

func (g *Graph) add(n *Node) *Node {
	if !g.busy.CompareAndSwap(false, true) {
		panic("autodiff: concurrent append to a single-writer graph (use Fork/Join for parallel construction)")
	}
	n.graph = g
	g.nodes = append(g.nodes, n)
	g.busy.Store(false)
	return n
}

// Param records a leaf node backed by a trainable parameter. Gradients flow
// into the parameter's persistent Grad tensor. A frozen parameter is recorded
// as a gradient-free leaf instead (its value is used, its Grad is never
// touched).
func (g *Graph) Param(p *Parameter) *Node {
	if p.Frozen() {
		return g.newNode(p.Value, false)
	}
	n := g.newNode(p.Value, true)
	n.Grad = p.Grad
	n.param = p
	return n
}

// Const records a leaf node with no gradient flow.
func (g *Graph) Const(t *tensor.Tensor) *Node {
	return g.newNode(t, false)
}

// ensureGrad allocates the node's gradient buffer on first use. It draws from
// the graph arena, so gradient buffers recycle with the tape.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		n.Grad = n.graph.AllocLike(n.Value)
	}
	return n.Grad
}

// Backward runs reverse-mode differentiation from the given scalar output
// node. It panics if out is not scalar (shape [1]) or does not belong to g.
func (g *Graph) Backward(out *Node) {
	if out.graph != g {
		panic("autodiff: Backward on node from a different graph")
	}
	if out.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: Backward requires a scalar output, got shape %v", out.Value.Shape()))
	}
	out.ensureGrad()
	out.Grad.Data[0] = 1
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		if n.backFn != nil && n.requires && n.Grad != nil {
			n.backFn(n)
		}
	}
}

// sameGraph resolves the tape a new node should be recorded on. All operands
// must share one tape, with a single exception for forked construction: an
// operand on a child tape may be mixed with operands on its parent tape, and
// the result attaches to the child (the only tape the current worker owns).
// Mixing nodes from sibling forks, or from unrelated graphs, panics.
func sameGraph(op string, nodes ...*Node) *Graph {
	g := nodes[0].graph
	for _, n := range nodes[1:] {
		h := n.graph
		if h == g {
			continue
		}
		switch {
		case h.parent == g:
			g = h // descend from the parent tape onto the forked child
		case g.parent == h:
			// g is already the forked child; keep it.
		default:
			panic("autodiff: " + op + " mixes nodes from different graphs")
		}
	}
	return g
}

// ---- Elementwise binary operations ----

func backAdd(out *Node) {
	if out.a.requires {
		tensor.AddInPlace(out.a.ensureGrad(), out.Grad)
	}
	if out.b.requires {
		tensor.AddInPlace(out.b.ensureGrad(), out.Grad)
	}
}

// Add returns a + b elementwise.
func Add(a, b *Node) *Node {
	g := sameGraph("Add", a, b)
	val := tensor.AddTo(g.AllocLike(a.Value), a.Value, b.Value)
	out := g.newNode(val, a.requires || b.requires)
	out.backFn, out.a, out.b = backAdd, a, b
	return out
}

func backSub(out *Node) {
	if out.a.requires {
		tensor.AddInPlace(out.a.ensureGrad(), out.Grad)
	}
	if out.b.requires {
		tensor.AxpyInPlace(out.b.ensureGrad(), -1, out.Grad)
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Node) *Node {
	g := sameGraph("Sub", a, b)
	val := tensor.SubTo(g.AllocLike(a.Value), a.Value, b.Value)
	out := g.newNode(val, a.requires || b.requires)
	out.backFn, out.a, out.b = backSub, a, b
	return out
}

func backMul(out *Node) {
	a, b := out.a, out.b
	if a.requires {
		ga := a.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += out.Grad.Data[i] * b.Value.Data[i]
		}
	}
	if b.requires {
		gb := b.ensureGrad()
		for i := range gb.Data {
			gb.Data[i] += out.Grad.Data[i] * a.Value.Data[i]
		}
	}
}

// Mul returns the elementwise product a * b.
func Mul(a, b *Node) *Node {
	g := sameGraph("Mul", a, b)
	val := tensor.MulTo(g.AllocLike(a.Value), a.Value, b.Value)
	out := g.newNode(val, a.requires || b.requires)
	out.backFn, out.a, out.b = backMul, a, b
	return out
}

func backScale(out *Node) {
	if out.a.requires {
		tensor.AxpyInPlace(out.a.ensureGrad(), out.x0, out.Grad)
	}
}

// Scale returns a * s for a constant scalar s.
func Scale(a *Node, s float64) *Node {
	g := a.graph
	val := tensor.ScaleTo(g.AllocLike(a.Value), a.Value, s)
	out := g.newNode(val, a.requires)
	out.backFn, out.a, out.x0 = backScale, a, s
	return out
}

// backPassthrough accumulates the output gradient into the sole operand
// unchanged. Shared by AddScalar, Ref, and any other identity-gradient op
// whose operand has the same shape as the output.
func backPassthrough(out *Node) {
	if out.a.requires {
		tensor.AddInPlace(out.a.ensureGrad(), out.Grad)
	}
}

// AddScalar returns a + s elementwise for a constant scalar s.
func AddScalar(a *Node, s float64) *Node {
	g := a.graph
	val := tensor.AddScalarTo(g.AllocLike(a.Value), a.Value, s)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backPassthrough, a
	return out
}

// ---- Linear algebra ----

func backMatMul(out *Node) {
	// dL/dA = dL/dOut · Bᵀ ; dL/dB = Aᵀ · dL/dOut — fused, no transpose
	// or product temporaries.
	if out.a.requires {
		tensor.MatMulNTAcc(out.a.ensureGrad(), out.Grad, out.b.Value)
	}
	if out.b.requires {
		tensor.MatMulTNAcc(out.b.ensureGrad(), out.a.Value, out.Grad)
	}
}

// MatMul returns the matrix product of two rank-2 nodes.
func MatMul(a, b *Node) *Node {
	g := sameGraph("MatMul", a, b)
	if a.Value.Rank() != 2 || b.Value.Rank() != 2 {
		panic(fmt.Sprintf("autodiff: MatMul requires rank-2 operands, got %v x %v", a.Value.Shape(), b.Value.Shape()))
	}
	if a.Value.Dim(1) != b.Value.Dim(0) {
		panic(fmt.Sprintf("autodiff: MatMul inner dimensions differ: %v x %v", a.Value.Shape(), b.Value.Shape()))
	}
	val := tensor.MatMulTo(g.Alloc(a.Value.Dim(0), b.Value.Dim(1)), a.Value, b.Value)
	out := g.newNode(val, a.requires || b.requires)
	out.backFn, out.a, out.b = backMatMul, a, b
	return out
}

func backAddRowVector(out *Node) {
	if out.a.requires {
		tensor.AddInPlace(out.a.ensureGrad(), out.Grad)
	}
	if out.b.requires {
		gv := out.b.ensureGrad()
		m, n := out.Grad.Dim(0), out.Grad.Dim(1)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				gv.Data[j] += out.Grad.Data[i*n+j]
			}
		}
	}
}

// AddRowVector adds a rank-1 bias node v to every row of rank-2 node a.
func AddRowVector(a, v *Node) *Node {
	g := sameGraph("AddRowVector", a, v)
	val := tensor.AddRowVectorTo(g.AllocLike(a.Value), a.Value, v.Value)
	out := g.newNode(val, a.requires || v.requires)
	out.backFn, out.a, out.b = backAddRowVector, a, v
	return out
}

func backTranspose(out *Node) {
	if out.a.requires {
		tensor.TransposeAcc(out.a.ensureGrad(), out.Grad)
	}
}

// Transpose returns the transpose of a rank-2 node.
func Transpose(a *Node) *Node {
	g := a.graph
	if a.Value.Rank() != 2 {
		panic(fmt.Sprintf("autodiff: Transpose requires rank-2, got %v", a.Value.Shape()))
	}
	val := tensor.TransposeTo(g.Alloc(a.Value.Dim(1), a.Value.Dim(0)), a.Value)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backTranspose, a
	return out
}

// ---- Activations ----

func backSigmoid(out *Node) {
	if out.a.requires {
		tensor.SigmoidBackwardAcc(out.a.ensureGrad(), out.Grad, out.Value)
	}
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Node) *Node {
	g := a.graph
	val := tensor.SigmoidTo(g.AllocLike(a.Value), a.Value)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backSigmoid, a
	return out
}

func backTanh(out *Node) {
	if out.a.requires {
		tensor.TanhBackwardAcc(out.a.ensureGrad(), out.Grad, out.Value)
	}
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(a *Node) *Node {
	g := a.graph
	val := tensor.TanhTo(g.AllocLike(a.Value), a.Value)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backTanh, a
	return out
}

func backReLU(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		for i := range ga.Data {
			if out.a.Value.Data[i] > 0 {
				ga.Data[i] += out.Grad.Data[i]
			}
		}
	}
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Node) *Node {
	g := a.graph
	val := tensor.ReLUTo(g.AllocLike(a.Value), a.Value)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backReLU, a
	return out
}

func backSqrt(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += out.Grad.Data[i] * 0.5 / out.Value.Data[i]
		}
	}
}

// Sqrt applies the square root elementwise. Inputs must be positive (the
// derivative diverges at zero); callers add an epsilon where needed.
func Sqrt(a *Node) *Node {
	g := a.graph
	val := tensor.SqrtTo(g.AllocLike(a.Value), a.Value)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backSqrt, a
	return out
}

func backSoftplus(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += out.Grad.Data[i] / (1 + math.Exp(-out.a.Value.Data[i]))
		}
	}
}

// Softplus applies log(1+e^x) elementwise — a smooth non-negativity map used
// for learnable gain parameters.
func Softplus(a *Node) *Node {
	g := a.graph
	val := tensor.SoftplusTo(g.AllocLike(a.Value), a.Value)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backSoftplus, a
	return out
}

func backMulScalarNode(out *Node) {
	a, s := out.a, out.b
	if a.requires {
		tensor.AxpyInPlace(a.ensureGrad(), out.x0, out.Grad)
	}
	if s.requires {
		gs := s.ensureGrad()
		for i := range out.Grad.Data {
			gs.Data[0] += out.Grad.Data[i] * a.Value.Data[i]
		}
	}
}

// MulScalarNode multiplies every element of a by the single-element node s.
func MulScalarNode(a, s *Node) *Node {
	g := sameGraph("MulScalarNode", a, s)
	if s.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: MulScalarNode scalar has shape %v", s.Value.Shape()))
	}
	sv := s.Value.Data[0]
	val := tensor.ScaleTo(g.AllocLike(a.Value), a.Value, sv)
	out := g.newNode(val, a.requires || s.requires)
	out.backFn, out.a, out.b, out.x0 = backMulScalarNode, a, s, sv
	return out
}

func backSoftmaxRows(out *Node) {
	if !out.a.requires {
		return
	}
	rows, cols := out.i0, out.i1
	ga := out.a.ensureGrad()
	for r := 0; r < rows; r++ {
		// dx_i = s_i * (dy_i - Σ_j dy_j s_j)
		dot := 0.0
		for j := 0; j < cols; j++ {
			dot += out.Grad.Data[r*cols+j] * out.Value.Data[r*cols+j]
		}
		for j := 0; j < cols; j++ {
			s := out.Value.Data[r*cols+j]
			ga.Data[r*cols+j] += s * (out.Grad.Data[r*cols+j] - dot)
		}
	}
}

// SoftmaxRows applies a numerically stable softmax independently to each row
// of a rank-2 node (or to the whole of a rank-1 node).
func SoftmaxRows(a *Node) *Node {
	g := a.graph
	var rows, cols int
	switch a.Value.Rank() {
	case 1:
		rows, cols = 1, a.Value.Dim(0)
	case 2:
		rows, cols = a.Value.Dim(0), a.Value.Dim(1)
	default:
		panic(fmt.Sprintf("autodiff: SoftmaxRows requires rank 1 or 2, got %v", a.Value.Shape()))
	}
	val := g.AllocLike(a.Value)
	for r := 0; r < rows; r++ {
		row := a.Value.Data[r*cols : (r+1)*cols]
		max := math.Inf(-1)
		for _, x := range row {
			if x > max {
				max = x
			}
		}
		sum := 0.0
		for j, x := range row {
			e := math.Exp(x - max)
			val.Data[r*cols+j] = e
			sum += e
		}
		for j := 0; j < cols; j++ {
			val.Data[r*cols+j] /= sum
		}
	}
	out := g.newNode(val, a.requires)
	out.backFn, out.a, out.i0, out.i1 = backSoftmaxRows, a, rows, cols
	return out
}

func backDropout(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += out.Grad.Data[i] * out.ext.Data[i]
		}
	}
}

// Dropout zeroes each element with probability p during training and scales
// the survivors by 1/(1-p) (inverted dropout). With train=false it is the
// identity.
func Dropout(a *Node, p float64, train bool, rng *rand.Rand) *Node {
	if !train || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: Dropout probability must be < 1")
	}
	g := a.graph
	mask := g.AllocLike(a.Value)
	scale := 1 / (1 - p)
	for i := range mask.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
		}
	}
	val := tensor.MulTo(g.AllocLike(a.Value), a.Value, mask)
	out := g.newNode(val, a.requires)
	out.backFn, out.a, out.ext = backDropout, a, mask
	return out
}
