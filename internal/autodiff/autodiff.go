// Package autodiff implements a small reverse-mode automatic differentiation
// engine over dense tensors. It is the training substrate for the OVS model
// and the learned baselines: each forward pass records operations on a tape,
// and Backward replays the tape in reverse, accumulating gradients into
// persistent Parameters.
//
// The design favors explicitness over generality: every operation has a
// hand-written backward rule that is verified against finite differences in
// the package tests.
package autodiff

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"ovs/internal/tensor"
)

// Parameter is a trainable tensor with persistent gradient storage. It lives
// outside any single Graph so that optimizers can update it across many
// forward/backward passes.
type Parameter struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	frozen atomic.Bool
}

// NewParameter wraps value as a trainable parameter with zeroed gradient.
func NewParameter(name string, value *tensor.Tensor) *Parameter {
	return &Parameter{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// SetFrozen marks the parameter frozen (or unfrozen). A frozen parameter is
// recorded on the tape as a gradient-free leaf, so Backward never writes to
// its Grad tensor. Freezing the parameters of modules that are only read
// during a training phase is what makes concurrent training runs (e.g.
// parallel FitBest restarts sharing the pre-trained T2V/V2S modules) free of
// data races: a frozen parameter is immutable for the duration.
func (p *Parameter) SetFrozen(frozen bool) { p.frozen.Store(frozen) }

// Frozen reports whether the parameter is currently frozen.
func (p *Parameter) Frozen() bool { return p.frozen.Load() }

// Node is one value in the computation graph. Value is set during the
// forward pass; Grad is allocated lazily and filled during Backward.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	graph    *Graph
	requires bool   // does any parameter feed into this node?
	back     func() // accumulates into parents' Grad; nil for leaves
	param    *Parameter
}

// Graph is a tape of nodes in forward (topological) order.
//
// A tape is strictly single-writer: exactly one goroutine may record nodes on
// it at any moment. Concurrent graph construction goes through Fork/Join (see
// parallel.go) — each worker records onto its own child tape and the children
// are spliced back deterministically. add enforces the rule with a cheap
// tripwire that panics on detected concurrent appends.
type Graph struct {
	nodes []*Node

	// parent is non-nil for a child tape created by Fork, until Join.
	parent *Graph
	// busy is the single-writer tripwire flag toggled around each append.
	busy atomic.Bool
}

// NewGraph returns an empty tape.
func NewGraph() *Graph { return &Graph{} }

// NumNodes returns the number of recorded nodes (useful in tests and for
// instrumentation).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Graph returns the tape this node was recorded on. Layers use it to attach
// their parameter leaves to the same tape as their input.
func (n *Node) Graph() *Graph { return n.graph }

func (g *Graph) add(n *Node) *Node {
	if !g.busy.CompareAndSwap(false, true) {
		panic("autodiff: concurrent append to a single-writer graph (use Fork/Join for parallel construction)")
	}
	n.graph = g
	g.nodes = append(g.nodes, n)
	g.busy.Store(false)
	return n
}

// Param records a leaf node backed by a trainable parameter. Gradients flow
// into the parameter's persistent Grad tensor. A frozen parameter is recorded
// as a gradient-free leaf instead (its value is used, its Grad is never
// touched).
func (g *Graph) Param(p *Parameter) *Node {
	if p.Frozen() {
		return g.add(&Node{Value: p.Value, requires: false})
	}
	return g.add(&Node{Value: p.Value, Grad: p.Grad, requires: true, param: p})
}

// Const records a leaf node with no gradient flow.
func (g *Graph) Const(t *tensor.Tensor) *Node {
	return g.add(&Node{Value: t, requires: false})
}

// ensureGrad allocates the node's gradient buffer on first use.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Shape()...)
	}
	return n.Grad
}

// Backward runs reverse-mode differentiation from the given scalar output
// node. It panics if out is not scalar (shape [1]) or does not belong to g.
func (g *Graph) Backward(out *Node) {
	if out.graph != g {
		panic("autodiff: Backward on node from a different graph")
	}
	if out.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: Backward requires a scalar output, got shape %v", out.Value.Shape()))
	}
	out.ensureGrad()
	out.Grad.Data[0] = 1
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		if n.back != nil && n.requires && n.Grad != nil {
			n.back()
		}
	}
}

// sameGraph resolves the tape a new node should be recorded on. All operands
// must share one tape, with a single exception for forked construction: an
// operand on a child tape may be mixed with operands on its parent tape, and
// the result attaches to the child (the only tape the current worker owns).
// Mixing nodes from sibling forks, or from unrelated graphs, panics.
func sameGraph(op string, nodes ...*Node) *Graph {
	g := nodes[0].graph
	for _, n := range nodes[1:] {
		h := n.graph
		if h == g {
			continue
		}
		switch {
		case h.parent == g:
			g = h // descend from the parent tape onto the forked child
		case g.parent == h:
			// g is already the forked child; keep it.
		default:
			panic("autodiff: " + op + " mixes nodes from different graphs")
		}
	}
	return g
}

// ---- Elementwise binary operations ----

// Add returns a + b elementwise.
func Add(a, b *Node) *Node {
	g := sameGraph("Add", a, b)
	out := &Node{Value: tensor.Add(a.Value, b.Value), requires: a.requires || b.requires}
	out.back = func() {
		if a.requires {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if b.requires {
			tensor.AddInPlace(b.ensureGrad(), out.Grad)
		}
	}
	return g.add(out)
}

// Sub returns a - b elementwise.
func Sub(a, b *Node) *Node {
	g := sameGraph("Sub", a, b)
	out := &Node{Value: tensor.Sub(a.Value, b.Value), requires: a.requires || b.requires}
	out.back = func() {
		if a.requires {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if b.requires {
			tensor.AxpyInPlace(b.ensureGrad(), -1, out.Grad)
		}
	}
	return g.add(out)
}

// Mul returns the elementwise product a * b.
func Mul(a, b *Node) *Node {
	g := sameGraph("Mul", a, b)
	out := &Node{Value: tensor.Mul(a.Value, b.Value), requires: a.requires || b.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += out.Grad.Data[i] * b.Value.Data[i]
			}
		}
		if b.requires {
			gb := b.ensureGrad()
			for i := range gb.Data {
				gb.Data[i] += out.Grad.Data[i] * a.Value.Data[i]
			}
		}
	}
	return g.add(out)
}

// Scale returns a * s for a constant scalar s.
func Scale(a *Node, s float64) *Node {
	out := &Node{Value: tensor.Scale(a.Value, s), requires: a.requires}
	out.back = func() {
		if a.requires {
			tensor.AxpyInPlace(a.ensureGrad(), s, out.Grad)
		}
	}
	return a.graph.add(out)
}

// AddScalar returns a + s elementwise for a constant scalar s.
func AddScalar(a *Node, s float64) *Node {
	out := &Node{Value: a.Value.Map(func(x float64) float64 { return x + s }), requires: a.requires}
	out.back = func() {
		if a.requires {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
	}
	return a.graph.add(out)
}

// ---- Linear algebra ----

// MatMul returns the matrix product of two rank-2 nodes.
func MatMul(a, b *Node) *Node {
	g := sameGraph("MatMul", a, b)
	out := &Node{Value: tensor.MatMul(a.Value, b.Value), requires: a.requires || b.requires}
	out.back = func() {
		// dL/dA = dL/dOut · Bᵀ ; dL/dB = Aᵀ · dL/dOut
		if a.requires {
			tensor.AddInPlace(a.ensureGrad(), tensor.MatMul(out.Grad, tensor.Transpose(b.Value)))
		}
		if b.requires {
			tensor.AddInPlace(b.ensureGrad(), tensor.MatMul(tensor.Transpose(a.Value), out.Grad))
		}
	}
	return g.add(out)
}

// AddRowVector adds a rank-1 bias node v to every row of rank-2 node a.
func AddRowVector(a, v *Node) *Node {
	g := sameGraph("AddRowVector", a, v)
	out := &Node{Value: tensor.AddRowVector(a.Value, v.Value), requires: a.requires || v.requires}
	out.back = func() {
		if a.requires {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if v.requires {
			gv := v.ensureGrad()
			m, n := out.Grad.Dim(0), out.Grad.Dim(1)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					gv.Data[j] += out.Grad.Data[i*n+j]
				}
			}
		}
	}
	return g.add(out)
}

// Transpose returns the transpose of a rank-2 node.
func Transpose(a *Node) *Node {
	out := &Node{Value: tensor.Transpose(a.Value), requires: a.requires}
	out.back = func() {
		if a.requires {
			tensor.AddInPlace(a.ensureGrad(), tensor.Transpose(out.Grad))
		}
	}
	return a.graph.add(out)
}

// ---- Activations ----

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Node) *Node {
	val := a.Value.Map(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				s := val.Data[i]
				ga.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	}
	return a.graph.add(out)
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(a *Node) *Node {
	val := a.Value.Map(math.Tanh)
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				th := val.Data[i]
				ga.Data[i] += out.Grad.Data[i] * (1 - th*th)
			}
		}
	}
	return a.graph.add(out)
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Node) *Node {
	val := a.Value.Map(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				if a.Value.Data[i] > 0 {
					ga.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return a.graph.add(out)
}

// Sqrt applies the square root elementwise. Inputs must be positive (the
// derivative diverges at zero); callers add an epsilon where needed.
func Sqrt(a *Node) *Node {
	val := a.Value.Map(math.Sqrt)
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += out.Grad.Data[i] * 0.5 / val.Data[i]
			}
		}
	}
	return a.graph.add(out)
}

// Softplus applies log(1+e^x) elementwise — a smooth non-negativity map used
// for learnable gain parameters.
func Softplus(a *Node) *Node {
	val := a.Value.Map(func(x float64) float64 {
		if x > 30 {
			return x // avoids overflow; log(1+e^x) ≈ x
		}
		return math.Log1p(math.Exp(x))
	})
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += out.Grad.Data[i] / (1 + math.Exp(-a.Value.Data[i]))
			}
		}
	}
	return a.graph.add(out)
}

// MulScalarNode multiplies every element of a by the single-element node s.
func MulScalarNode(a, s *Node) *Node {
	g := sameGraph("MulScalarNode", a, s)
	if s.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: MulScalarNode scalar has shape %v", s.Value.Shape()))
	}
	sv := s.Value.Data[0]
	out := &Node{Value: tensor.Scale(a.Value, sv), requires: a.requires || s.requires}
	out.back = func() {
		if a.requires {
			tensor.AxpyInPlace(a.ensureGrad(), sv, out.Grad)
		}
		if s.requires {
			gs := s.ensureGrad()
			for i := range out.Grad.Data {
				gs.Data[0] += out.Grad.Data[i] * a.Value.Data[i]
			}
		}
	}
	return g.add(out)
}

// SoftmaxRows applies a numerically stable softmax independently to each row
// of a rank-2 node (or to the whole of a rank-1 node).
func SoftmaxRows(a *Node) *Node {
	var rows, cols int
	switch a.Value.Rank() {
	case 1:
		rows, cols = 1, a.Value.Dim(0)
	case 2:
		rows, cols = a.Value.Dim(0), a.Value.Dim(1)
	default:
		panic(fmt.Sprintf("autodiff: SoftmaxRows requires rank 1 or 2, got %v", a.Value.Shape()))
	}
	val := tensor.New(a.Value.Shape()...)
	for r := 0; r < rows; r++ {
		row := a.Value.Data[r*cols : (r+1)*cols]
		max := math.Inf(-1)
		for _, x := range row {
			if x > max {
				max = x
			}
		}
		sum := 0.0
		for j, x := range row {
			e := math.Exp(x - max)
			val.Data[r*cols+j] = e
			sum += e
		}
		for j := 0; j < cols; j++ {
			val.Data[r*cols+j] /= sum
		}
	}
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if !a.requires {
			return
		}
		ga := a.ensureGrad()
		for r := 0; r < rows; r++ {
			// dx_i = s_i * (dy_i - Σ_j dy_j s_j)
			dot := 0.0
			for j := 0; j < cols; j++ {
				dot += out.Grad.Data[r*cols+j] * val.Data[r*cols+j]
			}
			for j := 0; j < cols; j++ {
				s := val.Data[r*cols+j]
				ga.Data[r*cols+j] += s * (out.Grad.Data[r*cols+j] - dot)
			}
		}
	}
	return a.graph.add(out)
}

// Dropout zeroes each element with probability p during training and scales
// the survivors by 1/(1-p) (inverted dropout). With train=false it is the
// identity.
func Dropout(a *Node, p float64, train bool, rng *rand.Rand) *Node {
	if !train || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: Dropout probability must be < 1")
	}
	mask := tensor.New(a.Value.Shape()...)
	scale := 1 / (1 - p)
	for i := range mask.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
		}
	}
	out := &Node{Value: tensor.Mul(a.Value, mask), requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += out.Grad.Data[i] * mask.Data[i]
			}
		}
	}
	return a.graph.add(out)
}
