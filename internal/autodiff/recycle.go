package autodiff

import (
	"sync"

	"ovs/internal/tensor"
)

// This file implements graph recycling: node slabs and graph-owned arena
// tensors that are reclaimed by Graph.Reset, so a training loop that reuses
// one graph per epoch reaches a steady state with near-zero allocations.
//
// Ownership rule: a tensor is owned by the graph if and only if it was
// allocated through Graph.Alloc/AllocLike (every op output, gradient buffer,
// and dropout mask). Tensors entering via Param/Const are never owned and
// therefore never returned to the arena — that makes a double-Put
// structurally impossible. No op hands a tensor view to the graph: Reshape
// copies precisely so that every owned tensor exclusively owns its backing
// array.
//
// Node slab rule: nodes live in pooled chunks of nodeChunkSize. Every node
// handed out is recorded on exactly one tape, so sweeping g.nodes at Reset
// zeroes every used slab entry; chunks in the global pool are therefore
// always fully zeroed, and a recycled chunk behaves exactly like a fresh one.

// nodeChunkSize is the number of Node structs per pooled slab. Child tapes
// created by Fork draw whole chunks too, so the value balances per-fork slab
// waste against slab churn on large tapes.
const nodeChunkSize = 256

var nodeChunks struct {
	mu   sync.Mutex
	free [][]Node
}

func getNodeChunk() []Node {
	nodeChunks.mu.Lock()
	var c []Node
	if k := len(nodeChunks.free); k > 0 {
		c = nodeChunks.free[k-1]
		nodeChunks.free[k-1] = nil
		nodeChunks.free = nodeChunks.free[:k-1]
	}
	nodeChunks.mu.Unlock()
	if c == nil {
		c = make([]Node, nodeChunkSize)
	}
	return c
}

// putNodeChunk returns a chunk whose entries are all zero (see the slab rule
// above) to the global pool.
func putNodeChunk(c []Node) {
	nodeChunks.mu.Lock()
	nodeChunks.free = append(nodeChunks.free, c)
	nodeChunks.mu.Unlock()
}

// node hands out the next slab entry of this tape. The entry is zero-valued.
func (g *Graph) node() *Node {
	if g.curUsed == len(g.cur) {
		if g.cur != nil {
			g.full = append(g.full, g.cur)
		}
		g.cur = getNodeChunk()
		g.curUsed = 0
	}
	n := &g.cur[g.curUsed]
	g.curUsed++
	return n
}

// newNode records a node with the given value on the tape and returns it.
// Callers set the static backward rule and its operand fields on the returned
// node. Any shape validation must happen before newNode so that a panicking
// op never leaves a dirty, unrecorded slab entry behind.
func (g *Graph) newNode(val *tensor.Tensor, requires bool) *Node {
	n := g.node()
	n.Value = val
	n.requires = requires
	return g.add(n)
}

// Alloc returns a zero-filled graph-owned tensor drawn from the tensor arena.
// The graph reclaims it on Reset/Release, so the caller must not retain it
// (or any view of it) beyond the graph's lifetime — Clone anything that
// escapes.
func (g *Graph) Alloc(shape ...int) *tensor.Tensor {
	t := tensor.Get(shape...)
	g.owned = append(g.owned, t)
	return t
}

// AllocLike is Alloc with t's shape.
func (g *Graph) AllocLike(t *tensor.Tensor) *tensor.Tensor {
	out := tensor.GetLike(t)
	g.owned = append(g.owned, out)
	return out
}

// Reset clears the tape for reuse: every owned tensor returns to the arena,
// every node slab entry is zeroed, and full slabs return to the global pool.
// Node pointers and owned tensors from before the Reset are invalid
// afterwards. The graph keeps its node list capacity, its current slab, and
// its pooled children, so a steady-state epoch loop performs no tape
// allocation at all.
func (g *Graph) Reset() {
	if g.parent != nil {
		panic("autodiff: Reset of a forked child graph")
	}
	if !g.busy.CompareAndSwap(false, true) {
		panic("autodiff: Reset during concurrent graph construction")
	}
	for i, n := range g.nodes {
		*n = Node{}
		g.nodes[i] = nil
	}
	g.nodes = g.nodes[:0]
	for i, t := range g.owned {
		tensor.Put(t)
		g.owned[i] = nil
	}
	g.owned = g.owned[:0]
	for i, c := range g.full {
		putNodeChunk(c)
		g.full[i] = nil
	}
	g.full = g.full[:0]
	g.curUsed = 0
	g.busy.Store(false)
}

// Release resets the graph and returns every remaining pooled resource (the
// current slab and pooled child tapes). Call it when a graph goes out of
// scope for good; the graph remains usable, it just starts cold again.
func (g *Graph) Release() {
	g.Reset()
	if g.cur != nil {
		putNodeChunk(g.cur)
		g.cur = nil
	}
	for i, c := range g.children {
		if c.cur != nil {
			putNodeChunk(c.cur)
			c.cur = nil
		}
		g.children[i] = nil
	}
	g.children = g.children[:0]
}
