package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/tensor"
)

// gradCheck verifies backprop gradients against central finite differences
// for every parameter used by build. build must construct a fresh graph from
// the shared parameters and return its scalar loss node.
func gradCheck(t *testing.T, params []*Parameter, build func(g *Graph) *Node) {
	t.Helper()
	const eps = 1e-5
	const tol = 1e-4

	for _, p := range params {
		p.ZeroGrad()
	}
	g := NewGraph()
	loss := build(g)
	g.Backward(loss)

	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := build(NewGraph()).Value.Data[0]
			p.Value.Data[i] = orig - eps
			down := build(NewGraph()).Value.Data[0]
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %q[%d]: analytic grad %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func randParam(rng *rand.Rand, name string, shape ...int) *Parameter {
	return NewParameter(name, tensor.Randn(rng, 0.5, shape...))
}

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, "a", 3, 4)
	b := randParam(rng, "b", 4, 2)
	target := tensor.Randn(rng, 1, 3, 2)
	gradCheck(t, []*Parameter{a, b}, func(g *Graph) *Node {
		return MSE(MatMul(g.Param(a), g.Param(b)), target)
	})
}

func TestGradElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, "a", 2, 3)
	b := randParam(rng, "b", 2, 3)
	target := tensor.Randn(rng, 1, 2, 3)
	gradCheck(t, []*Parameter{a, b}, func(g *Graph) *Node {
		na, nb := g.Param(a), g.Param(b)
		x := Add(Mul(na, nb), Sub(na, Scale(nb, 0.3)))
		return MSE(AddScalar(x, 0.1), target)
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name string
		act  func(*Node) *Node
	}{
		{"sigmoid", Sigmoid},
		{"tanh", Tanh},
		{"relu", ReLU},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := randParam(rng, "a", 3, 3)
			// Nudge values away from the ReLU kink where the numerical
			// derivative is undefined.
			for i := range a.Value.Data {
				if math.Abs(a.Value.Data[i]) < 1e-3 {
					a.Value.Data[i] = 0.1
				}
			}
			target := tensor.Randn(rng, 1, 3, 3)
			gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
				return MSE(tc.act(g.Param(a)), target)
			})
		})
	}
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, "a", 3, 5)
	target := tensor.Randn(rng, 1, 3, 5)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		return MSE(SoftmaxRows(g.Param(a)), target)
	})
}

func TestGradSoftmaxVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, "a", 6)
	target := tensor.Randn(rng, 1, 6)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		return MSE(SoftmaxRows(g.Param(a)), target)
	})
}

func TestGradAddRowVectorAndTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, "a", 4, 3)
	v := randParam(rng, "v", 3)
	target := tensor.Randn(rng, 1, 3, 4)
	gradCheck(t, []*Parameter{a, v}, func(g *Graph) *Node {
		return MSE(Transpose(AddRowVector(g.Param(a), g.Param(v))), target)
	})
}

func TestGradStructuralOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, "a", 3, 4)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		na := g.Param(a)
		r0, r2 := Row(na, 0), Row(na, 2)
		stacked := StackRows([]*Node{r0, r2, SliceVec(ConcatVec(r0, r2), 2, 6)})
		return Mean(Mul(stacked, stacked))
	})
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, "a", 2, 6)
	target := tensor.Randn(rng, 1, 3, 4)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		return MSE(Reshape(g.Param(a), 3, 4), target)
	})
}

func TestGradLagAttend(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alpha := randParam(rng, "alpha", 3, 8)
	p := randParam(rng, "p", 8)
	target := tensor.Randn(rng, 1, 8)
	gradCheck(t, []*Parameter{alpha, p}, func(g *Graph) *Node {
		return MSE(LagAttend(g.Param(alpha), g.Param(p)), target)
	})
}

func TestLagAttendValue(t *testing.T) {
	g := NewGraph()
	// W=2, T=3: out[t] = a[0,t]*p[t] + a[1,t]*p[t-1]
	alpha := g.Const(tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3))
	p := g.Const(tensor.FromSlice([]float64{10, 20, 30}, 3))
	out := LagAttend(alpha, p)
	want := tensor.FromSlice([]float64{
		1 * 10,
		2*20 + 5*10,
		3*30 + 6*20,
	}, 3)
	if !tensor.AllClose(out.Value, want, 1e-12) {
		t.Fatalf("LagAttend = %v, want %v", out.Value, want)
	}
}

func TestGradConv1DSame(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randParam(rng, "x", 2, 7)
	k := randParam(rng, "k", 3, 2, 3)
	b := randParam(rng, "b", 3)
	target := tensor.Randn(rng, 1, 3, 7)
	gradCheck(t, []*Parameter{x, k, b}, func(g *Graph) *Node {
		return MSE(Conv1DSame(g.Param(x), g.Param(k), g.Param(b)), target)
	})
}

func TestConv1DSameIdentityKernel(t *testing.T) {
	g := NewGraph()
	x := g.Const(tensor.FromSlice([]float64{1, 2, 3, 4, 5}, 1, 5))
	// Identity kernel [0 1 0], zero bias -> output equals input.
	k := g.Const(tensor.FromSlice([]float64{0, 1, 0}, 1, 1, 3))
	b := g.Const(tensor.New(1))
	out := Conv1DSame(x, k, b)
	if !tensor.AllClose(out.Value, x.Value, 1e-12) {
		t.Fatalf("identity conv = %v", out.Value)
	}
}

func TestConv1DSameZeroPadding(t *testing.T) {
	g := NewGraph()
	x := g.Const(tensor.FromSlice([]float64{1, 1, 1}, 1, 3))
	// Averaging kernel: edges see one zero-padded neighbor.
	k := g.Const(tensor.FromSlice([]float64{1, 1, 1}, 1, 1, 3))
	b := g.Const(tensor.New(1))
	out := Conv1DSame(x, k, b)
	want := tensor.FromSlice([]float64{2, 3, 2}, 1, 3)
	if !tensor.AllClose(out.Value, want, 1e-12) {
		t.Fatalf("padded conv = %v, want %v", out.Value, want)
	}
}

func TestGradAccumulatesAcrossUses(t *testing.T) {
	// Using the same parameter twice must sum both contributions.
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, "a", 2, 2)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		na := g.Param(a)
		return Mean(Mul(na, na))
	})
}

func TestConstHasNoGradient(t *testing.T) {
	g := NewGraph()
	c := g.Const(tensor.FromSlice([]float64{1, 2}, 2))
	p := NewParameter("p", tensor.FromSlice([]float64{3, 4}, 2))
	out := Mean(Mul(g.Param(p), c))
	g.Backward(out)
	if c.Grad != nil && c.Grad.Norm2() != 0 {
		t.Fatal("constant received gradient")
	}
	if p.Grad.Norm2() == 0 {
		t.Fatal("parameter received no gradient")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	g := NewGraph()
	p := NewParameter("p", tensor.New(2, 2))
	n := g.Param(p)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar did not panic")
		}
	}()
	g.Backward(n)
}

func TestMixedGraphPanics(t *testing.T) {
	g1, g2 := NewGraph(), NewGraph()
	a := g1.Const(tensor.New(2))
	b := g2.Const(tensor.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("mixing graphs did not panic")
		}
	}()
	Add(a, b)
}

func TestDropoutTrainEvalBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := NewGraph()
	x := g.Const(tensor.Ones(100, 100))
	eval := Dropout(x, 0.5, false, rng)
	if eval != x {
		t.Fatal("eval-mode dropout must be the identity node")
	}
	train := Dropout(x, 0.5, true, rng)
	zeros := 0
	for _, v := range train.Value.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			// kept and scaled by 1/(1-p)
		default:
			t.Fatalf("dropout produced unexpected value %v", v)
		}
	}
	frac := float64(zeros) / float64(train.Value.Size())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropout zero fraction = %v, want ~0.5", frac)
	}
}

func TestGradDropout(t *testing.T) {
	// With a fixed mask (reconstructed via the same seed) the gradient should
	// match finite differences. We instead test the simpler invariant: the
	// gradient is zero exactly where the mask zeroed the activation.
	rng := rand.New(rand.NewSource(13))
	p := NewParameter("p", tensor.Ones(10, 10))
	g := NewGraph()
	out := Dropout(g.Param(p), 0.3, true, rng)
	g.Backward(Mean(out))
	for i := range out.Value.Data {
		zeroed := out.Value.Data[i] == 0
		gradZero := p.Grad.Data[i] == 0
		if zeroed != gradZero {
			t.Fatalf("dropout grad mask mismatch at %d: value=%v grad=%v", i, out.Value.Data[i], p.Grad.Data[i])
		}
	}
}

func TestGraphNodeCountGrows(t *testing.T) {
	g := NewGraph()
	a := g.Const(tensor.New(2))
	before := g.NumNodes()
	_ = Add(a, a)
	if g.NumNodes() != before+1 {
		t.Fatalf("node count %d, want %d", g.NumNodes(), before+1)
	}
}

func TestGradSoftplus(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randParam(rng, "a", 3, 3)
	target := tensor.Randn(rng, 1, 3, 3)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		return MSE(Softplus(g.Param(a)), target)
	})
}

func TestSoftplusValues(t *testing.T) {
	g := NewGraph()
	x := g.Const(tensor.FromSlice([]float64{0, 100, -100}, 3))
	y := Softplus(x)
	if math.Abs(y.Value.Data[0]-math.Log(2)) > 1e-12 {
		t.Fatalf("softplus(0) = %v", y.Value.Data[0])
	}
	if math.Abs(y.Value.Data[1]-100) > 1e-9 {
		t.Fatalf("softplus(100) = %v", y.Value.Data[1])
	}
	if y.Value.Data[2] < 0 || y.Value.Data[2] > 1e-9 {
		t.Fatalf("softplus(-100) = %v", y.Value.Data[2])
	}
}

func TestGradMulScalarNode(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randParam(rng, "a", 4)
	s := randParam(rng, "s", 1)
	target := tensor.Randn(rng, 1, 4)
	gradCheck(t, []*Parameter{a, s}, func(g *Graph) *Node {
		return MSE(MulScalarNode(g.Param(a), g.Param(s)), target)
	})
}

func TestGradSqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := NewParameter("a", tensor.RandUniform(rng, 0.5, 4, 3, 3))
	target := tensor.Randn(rng, 1, 3, 3)
	gradCheck(t, []*Parameter{a}, func(g *Graph) *Node {
		return MSE(Sqrt(g.Param(a)), target)
	})
}

func TestSqrtValues(t *testing.T) {
	g := NewGraph()
	out := Sqrt(g.Const(tensor.FromSlice([]float64{4, 9, 0.25}, 3)))
	want := tensor.FromSlice([]float64{2, 3, 0.5}, 3)
	if !tensor.AllClose(out.Value, want, 1e-12) {
		t.Fatalf("Sqrt = %v", out.Value)
	}
}
