package autodiff

import "math/rand"

// CountingSource is a math/rand Source64 whose position in the stream can be
// checkpointed and restored. It delegates every draw to the standard
// rand.NewSource generator — so the values are bit-identical to plain
// rand.New(rand.NewSource(seed)) — while counting draws. The pair
// (seed, draws) fully determines the remaining stream: Restore reseeds and
// replays that many draws, which makes an interrupted training run's RNG
// consumption (dropout masks, reseeds) reproducible after resume.
//
// The counting works because every public draw on the wrapping rand.Rand
// advances the source a deterministic number of steps and rand.Rand itself
// keeps no hidden state across calls (the one exception, Rand.Read, caches
// partial words and must not be used with a checkpointed source).
type CountingSource struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// NewCountingSource returns a counting source seeded like rand.NewSource.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{seed: seed, src: newSource64(seed)}
}

func newSource64(seed int64) rand.Source64 {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// Every math/rand source since Go 1.8 implements Source64. A silent
		// fallback would change stream contents, so fail loudly instead.
		panic("autodiff: rand.NewSource does not implement Source64")
	}
	return src
}

// Int63 draws the next value, advancing the draw counter.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 draws the next value, advancing the draw counter.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed reseeds the source and resets the draw counter.
func (c *CountingSource) Seed(seed int64) {
	c.seed, c.draws = seed, 0
	c.src.Seed(seed)
}

// State returns the seed and the number of values drawn since seeding —
// everything a checkpoint needs to reproduce the source's position.
func (c *CountingSource) State() (seed int64, draws uint64) {
	return c.seed, c.draws
}

// Restore repositions the source exactly draws values into seed's stream by
// reseeding and replaying. The standard source advances one internal step
// per draw regardless of which method drew it, so replaying with Uint64
// reproduces any mix of Int63/Uint64 consumption.
func (c *CountingSource) Restore(seed int64, draws uint64) {
	c.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		c.src.Uint64()
	}
	c.draws = draws
}
