package autodiff

import (
	"ovs/internal/parallel"
)

// This file implements deterministic parallel graph construction.
//
// A Graph is a single-writer tape, so independent sub-computations (one per
// road link, one per route) cannot record onto it concurrently. Fork/Join
// solve this: Fork hands each worker a private child tape, Ref re-homes any
// parent-tape node the worker needs onto its child, and Join splices the
// children back into the parent in fork order. Because the splice order
// depends only on the fork indices — never on goroutine scheduling — the
// joined tape, and therefore Backward's reverse replay and every gradient
// accumulation, is identical at any worker count.
//
// Child tapes pool through the parent: Join hands a child's node slabs and
// owned tensors to the parent (they are reclaimed at the parent's Reset) and
// parks the empty child struct on g.children, where the next Fork picks it
// up. A steady-state epoch loop therefore forks without allocating.

// Fork creates a child tape of g, reusing a pooled child when one is
// available. Nodes recorded on the child may reference parent-tape nodes via
// Ref; the child is folded back with Join. Forking a child tape is not
// supported (one level keeps the ownership rule auditable).
func (g *Graph) Fork() *Graph {
	if g.parent != nil {
		panic("autodiff: Fork of an already-forked graph")
	}
	if k := len(g.children); k > 0 {
		c := g.children[k-1]
		g.children[k-1] = nil
		g.children = g.children[:k-1]
		c.parent = g
		return c
	}
	return &Graph{parent: g}
}

// Ref re-homes a parent-tape node onto child tape g via an identity node, so
// that subsequent operations attach to the tape the calling worker owns.
// Gradients flow through unchanged: the identity's backward rule accumulates
// into the parent node, and since Backward runs serially after Join, that
// accumulation never races. Ref of a node already on g is the identity.
func (g *Graph) Ref(n *Node) *Node {
	if n.graph == g {
		return n
	}
	if g.parent == nil || n.graph != g.parent {
		panic("autodiff: Ref target is not on the parent graph")
	}
	out := g.newNode(n.Value, n.requires)
	out.backFn, out.a = backPassthrough, n
	return out
}

// Join splices child tapes created by Fork back into g, in argument order.
// Every child node is re-homed onto g, so results built on a child behave
// exactly as if they had been recorded on g directly. The child's node slabs
// and owned tensors transfer to g (reclaimed at g's Reset); the emptied child
// struct is parked for reuse by the next Fork. The children must not be used
// after Join.
func (g *Graph) Join(subs ...*Graph) {
	for _, sub := range subs {
		if sub.parent != g {
			panic("autodiff: Join of a graph not forked from this parent")
		}
		for _, n := range sub.nodes {
			n.graph = g
		}
		g.nodes = append(g.nodes, sub.nodes...)
		for i := range sub.nodes {
			sub.nodes[i] = nil
		}
		sub.nodes = sub.nodes[:0]

		g.owned = append(g.owned, sub.owned...)
		for i := range sub.owned {
			sub.owned[i] = nil
		}
		sub.owned = sub.owned[:0]

		// The child's slabs hold live nodes now referenced by g.nodes; they
		// return to the global pool only after g.Reset zeroes them.
		if sub.cur != nil {
			g.full = append(g.full, sub.cur)
			sub.cur = nil
		}
		g.full = append(g.full, sub.full...)
		for i := range sub.full {
			sub.full[i] = nil
		}
		sub.full = sub.full[:0]
		sub.curUsed = 0

		sub.parent = nil
		g.children = append(g.children, sub)
	}
}

// ForkJoin builds n independent sub-graphs concurrently and splices them onto
// g in index order. build receives a private child tape and the item index;
// it must route every parent-tape node it uses through sub.Ref (or construct
// from sub.Const/sub.Param) so that all recording stays on the child.
//
// The forked structure is created for every worker count, including 1, so the
// resulting tape — and all floats derived from it — depends only on n, never
// on scheduling.
func ForkJoin(g *Graph, workers, n int, build func(sub *Graph, i int) *Node) []*Node {
	subs := make([]*Graph, n)
	for i := range subs {
		subs[i] = g.Fork()
	}
	outs := make([]*Node, n)
	parallel.ForWorkers(workers, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i] = build(subs[i], i)
		}
	})
	g.Join(subs...)
	return outs
}

// ForkJoinK is ForkJoin for builders that return several nodes per item
// (e.g. a per-route logit and gain pair).
func ForkJoinK(g *Graph, workers, n int, build func(sub *Graph, i int) []*Node) [][]*Node {
	subs := make([]*Graph, n)
	for i := range subs {
		subs[i] = g.Fork()
	}
	outs := make([][]*Node, n)
	parallel.ForWorkers(workers, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i] = build(subs[i], i)
		}
	})
	g.Join(subs...)
	return outs
}
