package autodiff

import (
	"fmt"

	"ovs/internal/tensor"
)

// Sum reduces a node to a scalar (shape [1]) by summing all elements.
func Sum(a *Node) *Node {
	out := &Node{Value: tensor.FromSlice([]float64{a.Value.Sum()}, 1), requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			g := out.Grad.Data[0]
			for i := range ga.Data {
				ga.Data[i] += g
			}
		}
	}
	return a.graph.add(out)
}

// Mean reduces a node to a scalar (shape [1]) by averaging all elements.
func Mean(a *Node) *Node {
	return Scale(Sum(a), 1/float64(a.Value.Size()))
}

// MSE returns the scalar mean squared error between pred and a constant
// target tensor. This is the main loss of Eq. 12 (up to the mean/sum
// convention, which is absorbed by the learning rate).
func MSE(pred *Node, target *tensor.Tensor) *Node {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autodiff: MSE shape mismatch %v vs %v", pred.Value.Shape(), target.Shape()))
	}
	diff := Sub(pred, pred.graph.Const(target))
	return Mean(Mul(diff, diff))
}

// Row extracts row i of a rank-2 node as a rank-1 node.
func Row(a *Node, i int) *Node {
	if a.Value.Rank() != 2 {
		panic(fmt.Sprintf("autodiff: Row requires rank-2, got %v", a.Value.Shape()))
	}
	n := a.Value.Dim(1)
	out := &Node{Value: a.Value.Row(i), requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for j := 0; j < n; j++ {
				ga.Data[i*n+j] += out.Grad.Data[j]
			}
		}
	}
	return a.graph.add(out)
}

// StackRows stacks rank-1 nodes of equal length into a rank-2 node, one row
// per input node.
func StackRows(rows []*Node) *Node {
	if len(rows) == 0 {
		panic("autodiff: StackRows requires at least one row")
	}
	g := sameGraph("StackRows", rows...)
	n := rows[0].Value.Dim(0)
	req := false
	val := tensor.New(len(rows), n)
	for i, r := range rows {
		if r.Value.Rank() != 1 || r.Value.Dim(0) != n {
			panic(fmt.Sprintf("autodiff: StackRows row %d shape %v, want [%d]", i, r.Value.Shape(), n))
		}
		copy(val.Data[i*n:(i+1)*n], r.Value.Data)
		req = req || r.requires
	}
	out := &Node{Value: val, requires: req}
	out.back = func() {
		for i, r := range rows {
			if !r.requires {
				continue
			}
			gr := r.ensureGrad()
			for j := 0; j < n; j++ {
				gr.Data[j] += out.Grad.Data[i*n+j]
			}
		}
	}
	return g.add(out)
}

// ConcatVec concatenates rank-1 nodes into one long rank-1 node.
func ConcatVec(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("autodiff: ConcatVec requires at least one part")
	}
	g := sameGraph("ConcatVec", parts...)
	total := 0
	req := false
	for _, p := range parts {
		if p.Value.Rank() != 1 {
			panic(fmt.Sprintf("autodiff: ConcatVec requires rank-1 parts, got %v", p.Value.Shape()))
		}
		total += p.Value.Dim(0)
		req = req || p.requires
	}
	val := tensor.New(total)
	off := 0
	for _, p := range parts {
		copy(val.Data[off:], p.Value.Data)
		off += p.Value.Dim(0)
	}
	out := &Node{Value: val, requires: req}
	out.back = func() {
		off := 0
		for _, p := range parts {
			n := p.Value.Dim(0)
			if p.requires {
				gp := p.ensureGrad()
				for j := 0; j < n; j++ {
					gp.Data[j] += out.Grad.Data[off+j]
				}
			}
			off += n
		}
	}
	return g.add(out)
}

// SliceVec extracts elements [lo, hi) of a rank-1 node.
func SliceVec(a *Node, lo, hi int) *Node {
	if a.Value.Rank() != 1 {
		panic(fmt.Sprintf("autodiff: SliceVec requires rank-1, got %v", a.Value.Shape()))
	}
	if lo < 0 || hi > a.Value.Dim(0) || lo >= hi {
		panic(fmt.Sprintf("autodiff: SliceVec bounds [%d,%d) invalid for length %d", lo, hi, a.Value.Dim(0)))
	}
	val := tensor.New(hi - lo)
	copy(val.Data, a.Value.Data[lo:hi])
	out := &Node{Value: val, requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for j := lo; j < hi; j++ {
				ga.Data[j] += out.Grad.Data[j-lo]
			}
		}
	}
	return a.graph.add(out)
}

// SumNodes adds any number of same-shaped nodes elementwise. It is the
// aggregation step of Eq. 7 (summing per-route embeddings into the system
// embedding).
func SumNodes(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("autodiff: SumNodes requires at least one part")
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = Add(out, p)
	}
	return out
}

// Reshape returns a view of a with a new shape. Gradients flow through
// unchanged (the backing layout is identical).
func Reshape(a *Node, shape ...int) *Node {
	out := &Node{Value: a.Value.Reshape(shape...), requires: a.requires}
	out.back = func() {
		if a.requires {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return a.graph.add(out)
}

// LagAttend computes the lag-attention contraction at the heart of the
// TOD-volume mapping (Eq. 4):
//
//	out[t] = Σ_{w=0..W-1} alpha[w, t] * p[t-w]
//
// where alpha is rank-2 (W × T) and p is rank-1 (T). Indices t-w < 0 refer
// to traffic before the horizon and contribute zero.
func LagAttend(alpha, p *Node) *Node {
	g := sameGraph("LagAttend", alpha, p)
	if alpha.Value.Rank() != 2 || p.Value.Rank() != 1 {
		panic(fmt.Sprintf("autodiff: LagAttend requires (rank-2, rank-1), got %v, %v", alpha.Value.Shape(), p.Value.Shape()))
	}
	w, tt := alpha.Value.Dim(0), alpha.Value.Dim(1)
	if p.Value.Dim(0) != tt {
		panic(fmt.Sprintf("autodiff: LagAttend time dims differ: alpha %v vs p %v", alpha.Value.Shape(), p.Value.Shape()))
	}
	val := tensor.New(tt)
	for t := 0; t < tt; t++ {
		s := 0.0
		for lag := 0; lag < w && lag <= t; lag++ {
			s += alpha.Value.Data[lag*tt+t] * p.Value.Data[t-lag]
		}
		val.Data[t] = s
	}
	out := &Node{Value: val, requires: alpha.requires || p.requires}
	out.back = func() {
		if alpha.requires {
			ga := alpha.ensureGrad()
			for t := 0; t < tt; t++ {
				for lag := 0; lag < w && lag <= t; lag++ {
					ga.Data[lag*tt+t] += out.Grad.Data[t] * p.Value.Data[t-lag]
				}
			}
		}
		if p.requires {
			gp := p.ensureGrad()
			for t := 0; t < tt; t++ {
				for lag := 0; lag < w && lag <= t; lag++ {
					gp.Data[t-lag] += out.Grad.Data[t] * alpha.Value.Data[lag*tt+t]
				}
			}
		}
	}
	return g.add(out)
}

// Conv1DSame applies a multi-channel 1-D convolution with "same" zero
// padding along the time axis. Input x is (Cin × T), kernels is
// (Cout × Cin × K) with K odd, bias is (Cout). Output is (Cout × T).
// This realizes the 1×3 convolution layers of the attention network
// (Eqs. 5-6, Table IV).
func Conv1DSame(x, kernels, bias *Node) *Node {
	g := sameGraph("Conv1DSame", x, kernels, bias)
	if x.Value.Rank() != 2 || kernels.Value.Rank() != 3 || bias.Value.Rank() != 1 {
		panic(fmt.Sprintf("autodiff: Conv1DSame shapes x=%v kernels=%v bias=%v", x.Value.Shape(), kernels.Value.Shape(), bias.Value.Shape()))
	}
	cin, tt := x.Value.Dim(0), x.Value.Dim(1)
	cout, cin2, k := kernels.Value.Dim(0), kernels.Value.Dim(1), kernels.Value.Dim(2)
	if cin != cin2 || bias.Value.Dim(0) != cout {
		panic(fmt.Sprintf("autodiff: Conv1DSame channel mismatch x=%v kernels=%v bias=%v", x.Value.Shape(), kernels.Value.Shape(), bias.Value.Shape()))
	}
	if k%2 == 0 {
		panic("autodiff: Conv1DSame requires an odd kernel width")
	}
	half := k / 2
	val := tensor.New(cout, tt)
	for co := 0; co < cout; co++ {
		for t := 0; t < tt; t++ {
			s := bias.Value.Data[co]
			for ci := 0; ci < cin; ci++ {
				for kk := 0; kk < k; kk++ {
					src := t + kk - half
					if src < 0 || src >= tt {
						continue
					}
					s += kernels.Value.Data[(co*cin+ci)*k+kk] * x.Value.Data[ci*tt+src]
				}
			}
			val.Data[co*tt+t] = s
		}
	}
	out := &Node{Value: val, requires: x.requires || kernels.requires || bias.requires}
	out.back = func() {
		for co := 0; co < cout; co++ {
			for t := 0; t < tt; t++ {
				gOut := out.Grad.Data[co*tt+t]
				if gOut == 0 {
					continue
				}
				if bias.requires {
					bias.ensureGrad().Data[co] += gOut
				}
				for ci := 0; ci < cin; ci++ {
					for kk := 0; kk < k; kk++ {
						src := t + kk - half
						if src < 0 || src >= tt {
							continue
						}
						if kernels.requires {
							kernels.ensureGrad().Data[(co*cin+ci)*k+kk] += gOut * x.Value.Data[ci*tt+src]
						}
						if x.requires {
							x.ensureGrad().Data[ci*tt+src] += gOut * kernels.Value.Data[(co*cin+ci)*k+kk]
						}
					}
				}
			}
		}
	}
	return g.add(out)
}
