package autodiff

import (
	"fmt"

	"ovs/internal/tensor"
)

func backSum(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		gr := out.Grad.Data[0]
		for i := range ga.Data {
			ga.Data[i] += gr
		}
	}
}

// Sum reduces a node to a scalar (shape [1]) by summing all elements.
func Sum(a *Node) *Node {
	g := a.graph
	val := g.Alloc(1)
	val.Data[0] = a.Value.Sum()
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backSum, a
	return out
}

// Mean reduces a node to a scalar (shape [1]) by averaging all elements.
func Mean(a *Node) *Node {
	return Scale(Sum(a), 1/float64(a.Value.Size()))
}

// MSE returns the scalar mean squared error between pred and a constant
// target tensor. This is the main loss of Eq. 12 (up to the mean/sum
// convention, which is absorbed by the learning rate).
func MSE(pred *Node, target *tensor.Tensor) *Node {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autodiff: MSE shape mismatch %v vs %v", pred.Value.Shape(), target.Shape()))
	}
	diff := Sub(pred, pred.graph.Const(target))
	return Mean(Mul(diff, diff))
}

func backRow(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		i, n := out.i0, out.Value.Dim(0)
		for j := 0; j < n; j++ {
			ga.Data[i*n+j] += out.Grad.Data[j]
		}
	}
}

// Row extracts row i of a rank-2 node as a rank-1 node.
func Row(a *Node, i int) *Node {
	if a.Value.Rank() != 2 {
		panic(fmt.Sprintf("autodiff: Row requires rank-2, got %v", a.Value.Shape()))
	}
	g := a.graph
	n := a.Value.Dim(1)
	val := g.Alloc(n)
	copy(val.Data, a.Value.Data[i*n:(i+1)*n])
	out := g.newNode(val, a.requires)
	out.backFn, out.a, out.i0 = backRow, a, i
	return out
}

func backStackRows(out *Node) {
	n := out.Value.Dim(1)
	for i, r := range out.srcs {
		if !r.requires {
			continue
		}
		gr := r.ensureGrad()
		for j := 0; j < n; j++ {
			gr.Data[j] += out.Grad.Data[i*n+j]
		}
	}
}

// StackRows stacks rank-1 nodes of equal length into a rank-2 node, one row
// per input node.
func StackRows(rows []*Node) *Node {
	if len(rows) == 0 {
		panic("autodiff: StackRows requires at least one row")
	}
	g := sameGraph("StackRows", rows...)
	n := rows[0].Value.Dim(0)
	req := false
	for i, r := range rows {
		if r.Value.Rank() != 1 || r.Value.Dim(0) != n {
			panic(fmt.Sprintf("autodiff: StackRows row %d shape %v, want [%d]", i, r.Value.Shape(), n))
		}
		req = req || r.requires
	}
	val := g.Alloc(len(rows), n)
	for i, r := range rows {
		copy(val.Data[i*n:(i+1)*n], r.Value.Data)
	}
	out := g.newNode(val, req)
	out.backFn, out.srcs = backStackRows, rows
	return out
}

func backConcatVec(out *Node) {
	off := 0
	for _, p := range out.srcs {
		n := p.Value.Dim(0)
		if p.requires {
			gp := p.ensureGrad()
			for j := 0; j < n; j++ {
				gp.Data[j] += out.Grad.Data[off+j]
			}
		}
		off += n
	}
}

// ConcatVec concatenates rank-1 nodes into one long rank-1 node.
func ConcatVec(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("autodiff: ConcatVec requires at least one part")
	}
	g := sameGraph("ConcatVec", parts...)
	total := 0
	req := false
	for _, p := range parts {
		if p.Value.Rank() != 1 {
			panic(fmt.Sprintf("autodiff: ConcatVec requires rank-1 parts, got %v", p.Value.Shape()))
		}
		total += p.Value.Dim(0)
		req = req || p.requires
	}
	val := g.Alloc(total)
	off := 0
	for _, p := range parts {
		copy(val.Data[off:], p.Value.Data)
		off += p.Value.Dim(0)
	}
	out := g.newNode(val, req)
	out.backFn, out.srcs = backConcatVec, parts
	return out
}

func backSliceVec(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		lo, hi := out.i0, out.i1
		for j := lo; j < hi; j++ {
			ga.Data[j] += out.Grad.Data[j-lo]
		}
	}
}

// SliceVec extracts elements [lo, hi) of a rank-1 node.
func SliceVec(a *Node, lo, hi int) *Node {
	if a.Value.Rank() != 1 {
		panic(fmt.Sprintf("autodiff: SliceVec requires rank-1, got %v", a.Value.Shape()))
	}
	if lo < 0 || hi > a.Value.Dim(0) || lo >= hi {
		panic(fmt.Sprintf("autodiff: SliceVec bounds [%d,%d) invalid for length %d", lo, hi, a.Value.Dim(0)))
	}
	g := a.graph
	val := g.Alloc(hi - lo)
	copy(val.Data, a.Value.Data[lo:hi])
	out := g.newNode(val, a.requires)
	out.backFn, out.a, out.i0, out.i1 = backSliceVec, a, lo, hi
	return out
}

// SumNodes adds any number of same-shaped nodes elementwise. It is the
// aggregation step of Eq. 7 (summing per-route embeddings into the system
// embedding).
func SumNodes(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("autodiff: SumNodes requires at least one part")
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = Add(out, p)
	}
	return out
}

func backReshape(out *Node) {
	if out.a.requires {
		ga := out.a.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += out.Grad.Data[i]
		}
	}
}

// Reshape returns a copy of a with a new shape of the same total size.
// Gradients flow through unchanged (the flat layout is identical). The copy —
// rather than a tensor view — keeps the output graph-owned and poolable: a
// view would alias the operand's backing array, which the arena must never
// see twice.
func Reshape(a *Node, shape ...int) *Node {
	g := a.graph
	val := g.Alloc(shape...)
	if len(val.Data) != len(a.Value.Data) {
		panic(fmt.Sprintf("autodiff: Reshape size mismatch %v -> %v", a.Value.Shape(), shape))
	}
	copy(val.Data, a.Value.Data)
	out := g.newNode(val, a.requires)
	out.backFn, out.a = backReshape, a
	return out
}

func backLagAttend(out *Node) {
	alpha, p := out.a, out.b
	w, tt := alpha.Value.Dim(0), alpha.Value.Dim(1)
	if alpha.requires {
		ga := alpha.ensureGrad()
		for t := 0; t < tt; t++ {
			for lag := 0; lag < w && lag <= t; lag++ {
				ga.Data[lag*tt+t] += out.Grad.Data[t] * p.Value.Data[t-lag]
			}
		}
	}
	if p.requires {
		gp := p.ensureGrad()
		for t := 0; t < tt; t++ {
			for lag := 0; lag < w && lag <= t; lag++ {
				gp.Data[t-lag] += out.Grad.Data[t] * alpha.Value.Data[lag*tt+t]
			}
		}
	}
}

// LagAttend computes the lag-attention contraction at the heart of the
// TOD-volume mapping (Eq. 4):
//
//	out[t] = Σ_{w=0..W-1} alpha[w, t] * p[t-w]
//
// where alpha is rank-2 (W × T) and p is rank-1 (T). Indices t-w < 0 refer
// to traffic before the horizon and contribute zero.
func LagAttend(alpha, p *Node) *Node {
	g := sameGraph("LagAttend", alpha, p)
	if alpha.Value.Rank() != 2 || p.Value.Rank() != 1 {
		panic(fmt.Sprintf("autodiff: LagAttend requires (rank-2, rank-1), got %v, %v", alpha.Value.Shape(), p.Value.Shape()))
	}
	w, tt := alpha.Value.Dim(0), alpha.Value.Dim(1)
	if p.Value.Dim(0) != tt {
		panic(fmt.Sprintf("autodiff: LagAttend time dims differ: alpha %v vs p %v", alpha.Value.Shape(), p.Value.Shape()))
	}
	val := g.Alloc(tt)
	for t := 0; t < tt; t++ {
		s := 0.0
		for lag := 0; lag < w && lag <= t; lag++ {
			s += alpha.Value.Data[lag*tt+t] * p.Value.Data[t-lag]
		}
		val.Data[t] = s
	}
	out := g.newNode(val, alpha.requires || p.requires)
	out.backFn, out.a, out.b = backLagAttend, alpha, p
	return out
}

func backConv1DSame(out *Node) {
	x, kernels, bias := out.a, out.b, out.c
	cin, tt := x.Value.Dim(0), x.Value.Dim(1)
	cout, k := kernels.Value.Dim(0), kernels.Value.Dim(2)
	half := k / 2
	for co := 0; co < cout; co++ {
		for t := 0; t < tt; t++ {
			gOut := out.Grad.Data[co*tt+t]
			//ovslint:ignore floateq exact-zero gradient skip is a sparsity fast path; any nonzero value must propagate
			if gOut == 0 {
				continue
			}
			if bias.requires {
				bias.ensureGrad().Data[co] += gOut
			}
			for ci := 0; ci < cin; ci++ {
				for kk := 0; kk < k; kk++ {
					src := t + kk - half
					if src < 0 || src >= tt {
						continue
					}
					if kernels.requires {
						kernels.ensureGrad().Data[(co*cin+ci)*k+kk] += gOut * x.Value.Data[ci*tt+src]
					}
					if x.requires {
						x.ensureGrad().Data[ci*tt+src] += gOut * kernels.Value.Data[(co*cin+ci)*k+kk]
					}
				}
			}
		}
	}
}

// Conv1DSame applies a multi-channel 1-D convolution with "same" zero
// padding along the time axis. Input x is (Cin × T), kernels is
// (Cout × Cin × K) with K odd, bias is (Cout). Output is (Cout × T).
// This realizes the 1×3 convolution layers of the attention network
// (Eqs. 5-6, Table IV).
func Conv1DSame(x, kernels, bias *Node) *Node {
	g := sameGraph("Conv1DSame", x, kernels, bias)
	if x.Value.Rank() != 2 || kernels.Value.Rank() != 3 || bias.Value.Rank() != 1 {
		panic(fmt.Sprintf("autodiff: Conv1DSame shapes x=%v kernels=%v bias=%v", x.Value.Shape(), kernels.Value.Shape(), bias.Value.Shape()))
	}
	cin, tt := x.Value.Dim(0), x.Value.Dim(1)
	cout, cin2, k := kernels.Value.Dim(0), kernels.Value.Dim(1), kernels.Value.Dim(2)
	if cin != cin2 || bias.Value.Dim(0) != cout {
		panic(fmt.Sprintf("autodiff: Conv1DSame channel mismatch x=%v kernels=%v bias=%v", x.Value.Shape(), kernels.Value.Shape(), bias.Value.Shape()))
	}
	if k%2 == 0 {
		panic("autodiff: Conv1DSame requires an odd kernel width")
	}
	half := k / 2
	val := g.Alloc(cout, tt)
	for co := 0; co < cout; co++ {
		for t := 0; t < tt; t++ {
			s := bias.Value.Data[co]
			for ci := 0; ci < cin; ci++ {
				for kk := 0; kk < k; kk++ {
					src := t + kk - half
					if src < 0 || src >= tt {
						continue
					}
					s += kernels.Value.Data[(co*cin+ci)*k+kk] * x.Value.Data[ci*tt+src]
				}
			}
			val.Data[co*tt+t] = s
		}
	}
	out := g.newNode(val, x.requires || kernels.requires || bias.requires)
	out.backFn, out.a, out.b, out.c = backConv1DSame, x, kernels, bias
	return out
}
