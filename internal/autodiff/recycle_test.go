package autodiff

import (
	"math/rand"
	"testing"

	"ovs/internal/tensor"
)

// buildLossPass records a representative mix of ops (matmul, activations,
// structural ops, a fork/join fan-out) on g and runs Backward, returning the
// scalar loss. Parameter gradients accumulate into p1/p2.
func buildLossPass(g *Graph, p1, p2 *Parameter, x *tensor.Tensor) float64 {
	in := g.Const(x)
	h := Tanh(MatMul(in, g.Param(p1)))
	rows := ForkJoin(g, 2, x.Dim(0), func(sub *Graph, i int) *Node {
		r := Row(sub.Ref(h), i)
		return Sigmoid(SliceVec(ConcatVec(r, r), 0, r.Value.Dim(0)))
	})
	s := Reshape(StackRows(rows), x.Dim(0)*p1.Value.Dim(1))
	v := MatMul(Reshape(s, 1, s.Value.Dim(0)), g.Param(p2))
	loss := Mean(Mul(v, v))
	g.Backward(loss)
	return loss.Value.Data[0]
}

func testParams(seed int64) (*Parameter, *Parameter, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	p1 := NewParameter("p1", tensor.Randn(rng, 0.5, 3, 4))
	p2 := NewParameter("p2", tensor.Randn(rng, 0.5, 5*4, 2))
	x := tensor.Randn(rng, 1, 5, 3)
	return p1, p2, x
}

// TestGraphResetReuseGradientEquality checks the recycling contract: a graph
// reused via Reset must produce bitwise-identical losses and parameter
// gradients to a freshly constructed graph, pass after pass.
func TestGraphResetReuseGradientEquality(t *testing.T) {
	p1, p2, x := testParams(7)

	// Reference: a fresh graph per pass.
	fresh := NewGraph()
	refLoss := buildLossPass(fresh, p1, p2, x)
	refG1 := p1.Grad.Clone()
	refG2 := p2.Grad.Clone()
	fresh.Release()

	// Recycled: one graph, Reset between passes.
	g := NewGraph()
	defer g.Release()
	for pass := 0; pass < 3; pass++ {
		g.Reset()
		p1.ZeroGrad()
		p2.ZeroGrad()
		loss := buildLossPass(g, p1, p2, x)
		if loss != refLoss {
			t.Fatalf("pass %d: recycled loss %v != fresh loss %v", pass, loss, refLoss)
		}
		if !tensor.AllClose(p1.Grad, refG1, 0) || !tensor.AllClose(p2.Grad, refG2, 0) {
			t.Fatalf("pass %d: recycled gradients differ from fresh graph", pass)
		}
	}
}

// TestPooledVsFreshGradients checks that toggling the tensor arena cannot
// change a single bit of the forward values or gradients.
func TestPooledVsFreshGradients(t *testing.T) {
	restore := tensor.PoolingEnabled()
	defer tensor.SetPooling(restore)

	run := func(pooled bool) (float64, *tensor.Tensor, *tensor.Tensor) {
		tensor.SetPooling(pooled)
		p1, p2, x := testParams(11)
		g := NewGraph()
		defer g.Release()
		loss := buildLossPass(g, p1, p2, x)
		return loss, p1.Grad.Clone(), p2.Grad.Clone()
	}

	lossP, g1P, g2P := run(true)
	lossF, g1F, g2F := run(false)
	if lossP != lossF {
		t.Fatalf("pooled loss %v != fresh loss %v", lossP, lossF)
	}
	if !tensor.AllClose(g1P, g1F, 0) || !tensor.AllClose(g2P, g2F, 0) {
		t.Fatal("pooled gradients differ from fresh gradients")
	}
}

// TestResetReclaimsOwnedTensors checks that Reset actually returns owned
// tensors to the arena (the second pass is served from the pool) and that
// Release leaves the graph reusable.
func TestResetReclaimsOwnedTensors(t *testing.T) {
	restore := tensor.PoolingEnabled()
	defer tensor.SetPooling(restore)
	tensor.SetPooling(true)

	p1, p2, x := testParams(13)
	g := NewGraph()
	buildLossPass(g, p1, p2, x)
	before := tensor.Default.Stats()
	g.Reset()
	after := tensor.Default.Stats()
	if after.Puts <= before.Puts {
		t.Fatal("Reset returned no tensors to the arena")
	}
	if g.NumNodes() != 0 {
		t.Fatalf("Reset left %d nodes on the tape", g.NumNodes())
	}

	// The graph keeps working after Release (it just starts cold).
	g.Release()
	p1.ZeroGrad()
	p2.ZeroGrad()
	buildLossPass(g, p1, p2, x)
	g.Release()
}

// TestForkPoolingReusesChildren checks that Join parks child tapes for the
// next Fork instead of leaking them.
func TestForkPoolingReusesChildren(t *testing.T) {
	g := NewGraph()
	defer g.Release()
	sub := g.Fork()
	sub.Const(tensor.New(1))
	g.Join(sub)
	sub2 := g.Fork()
	if sub2 != sub {
		t.Fatal("Fork did not reuse the pooled child tape")
	}
	g.Join(sub2)
}
