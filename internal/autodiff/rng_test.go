package autodiff

import (
	"math/rand"
	"testing"
)

// The counting source must be a transparent wrapper: the stream through
// rand.Rand is bit-identical to the plain standard source.
func TestCountingSourceMatchesStandardStream(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(NewCountingSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("Int63 diverges at draw %d: %d vs %d", i, x, y)
			}
		case 1:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("Float64 diverges at draw %d", i)
			}
		case 2:
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("NormFloat64 diverges at draw %d", i)
			}
		case 3:
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("Uint64 diverges at draw %d", i)
			}
		}
	}
}

// Restoring (seed, draws) must continue the stream exactly where the
// original left off, including through rand.Rand's variable-consumption
// methods like NormFloat64 (ziggurat rejection draws a data-dependent number
// of source values).
func TestCountingSourceRestoreContinuesStream(t *testing.T) {
	src := NewCountingSource(7)
	rng := rand.New(src)
	for i := 0; i < 500; i++ {
		rng.NormFloat64()
	}
	seed, draws := src.State()
	if draws < 500 {
		t.Fatalf("draw counter %d below the 500 values drawn", draws)
	}
	want := make([]float64, 100)
	for i := range want {
		want[i] = rng.NormFloat64()
	}

	restored := NewCountingSource(0)
	restored.Restore(seed, draws)
	rng2 := rand.New(restored)
	for i := range want {
		if got := rng2.NormFloat64(); got != want[i] {
			t.Fatalf("restored stream diverges at %d", i)
		}
	}
}

func TestCountingSourceSeedResetsCounter(t *testing.T) {
	src := NewCountingSource(1)
	rng := rand.New(src)
	rng.Int63()
	rng.Int63()
	if _, draws := src.State(); draws != 2 {
		t.Fatalf("draws = %d after two Int63, want 2", draws)
	}
	src.Seed(9)
	if seed, draws := src.State(); seed != 9 || draws != 0 {
		t.Fatalf("state after Seed = (%d, %d), want (9, 0)", seed, draws)
	}
	// And the reseeded stream matches a fresh standard source.
	a := rand.New(rand.NewSource(9))
	b := rand.New(src)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("reseeded stream diverges at %d", i)
		}
	}
}
