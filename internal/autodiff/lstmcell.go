package autodiff

import (
	"fmt"
	"math"

	"ovs/internal/tensor"
)

// This file implements the fused LSTM cell: one tape node per timestep in
// place of the ~16-node chain (Row/MatMul/Reshape/Add/SliceVec×4/Sigmoid×3/
// Tanh×2/Mul×3/Add) the graph-built recurrence records. The input projection
// X·Wx+b is hoisted out of the timestep loop by the caller into a single
// sequence-level GEMM (the pre operand); the cell fuses the hidden-state
// projection, the gate nonlinearities, and the state update into one forward
// kernel, and the entire step's backward into one hand-written rule.
//
// Bitwise contract. The fused cell is bitwise-identical — values and every
// gradient — to the unfused graph path
//
//	flat = Add(Row(pre, t), Reshape(MatMul(h, wh), 4H))
//	i,f,o = Sigmoid(SliceVec(flat, ...)); g = Tanh(SliceVec(flat, ...))
//	cNew  = Add(Mul(f, cPrev), Mul(i, g))
//	hNew  = Mul(o, Tanh(cNew))
//
// at any worker count, arena mode, and input — including signed zeros and
// infinities. The single carve-out is NaN payload bits: x86 NaN propagation
// returns the first NaN source operand, and operand order of commutative
// float ops is a compiler choice, so a NaN combined from two distinct NaNs
// may carry a different sign/payload per path (NaN-ness itself always
// agrees). Three mechanisms carry the guarantee:
//
//  1. Linear algebra runs the identical kernels: tensor.VecMatTo /
//     MatVecNTAcc / OuterAccFMA reproduce the naive-GEMM row, dot, and k=1
//     outer paths (assembly or math.FMA) that the (1×H)·(H×4H) products of
//     the graph path dispatch to.
//  2. Scalar expressions copy the graph kernels' association exactly — e.g.
//     the cell state is float64(f·cPrev) + float64(i·g), two individually
//     rounded products then one add, matching the two Mul stores and the Add.
//  3. The graph path materializes each backward intermediate by accumulating
//     into a freshly zeroed gradient, and 0+x flushes a negative zero to +0.
//     The fused backward inserts the same "0 +" at each point where the graph
//     allocates a fresh gradient, so even signed zeros agree.

// lstmCellExtSize returns the per-cell auxiliary buffer length: the forward
// saves [c | i | f | o | g | tanh(c)] and the backward parks the incoming
// cell-state gradient in the seventh H-slot (dcAcc), written by step t+1's
// backward before step t's runs (reverse tape order guarantees it).
func lstmCellExtSize(hidden int) int { return 7 * hidden }

// LSTMCell records one fused LSTM timestep and returns h(t) as a rank-1
// node of length hidden. pre is the hoisted input projection X·Wx+b of the
// whole sequence, shape (T × 4*hidden) with gate order [i|f|o|g]; t is the
// timestep (row of pre); prev is the LSTMCell node of step t-1, or nil at
// t=0 (zero initial state); wh is the (hidden × 4*hidden) recurrent weight
// node.
func LSTMCell(pre *Node, t int, prev *Node, wh *Node, hidden int) *Node {
	h4 := 4 * hidden
	if pre.Value.Rank() != 2 || pre.Value.Dim(1) != h4 {
		panic(fmt.Sprintf("autodiff: LSTMCell pre shape %v, want (T × %d)", pre.Value.Shape(), h4))
	}
	if t < 0 || t >= pre.Value.Dim(0) {
		panic(fmt.Sprintf("autodiff: LSTMCell step %d out of range for %d-step pre", t, pre.Value.Dim(0)))
	}
	if wh.Value.Rank() != 2 || wh.Value.Dim(0) != hidden || wh.Value.Dim(1) != h4 {
		panic(fmt.Sprintf("autodiff: LSTMCell wh shape %v, want [%d %d]", wh.Value.Shape(), hidden, h4))
	}
	var g *Graph
	if prev != nil {
		if prev.ext == nil || len(prev.ext.Data) != lstmCellExtSize(hidden) || prev.Value.Size() != hidden {
			panic("autodiff: LSTMCell prev is not an LSTMCell node of matching hidden size")
		}
		g = sameGraph("LSTMCell", pre, wh, prev)
	} else {
		g = sameGraph("LSTMCell", pre, wh)
	}

	ext := g.Alloc(lstmCellExtSize(hidden))
	cv := ext.Data[0:hidden]
	iv := ext.Data[hidden : 2*hidden]
	fv := ext.Data[2*hidden : 3*hidden]
	ov := ext.Data[3*hidden : 4*hidden]
	gv := ext.Data[4*hidden : 5*hidden]
	th := ext.Data[5*hidden : 6*hidden]

	var hPrev, cPrev []float64
	var zero *tensor.Tensor
	if prev != nil {
		hPrev = prev.Value.Data
		cPrev = prev.ext.Data[0:hidden]
	} else {
		// The initial state is a genuine zero vector, and the projection and
		// gate arithmetic run on it honestly: 0·Wh is only ±0 when Wh is
		// finite, and the unfused path computes it, so the fused one must.
		zero = tensor.Get(hidden)
		hPrev, cPrev = zero.Data, zero.Data
	}

	hw := tensor.Get(h4)
	tensor.VecMatTo(hw.Data, hPrev, wh.Value.Data, hidden, h4)
	hwd := hw.Data
	preRow := pre.Value.Data[t*h4 : (t+1)*h4]

	val := g.Alloc(hidden)
	for j := 0; j < hidden; j++ {
		zi := preRow[j] + hwd[j]
		zf := preRow[hidden+j] + hwd[hidden+j]
		zo := preRow[2*hidden+j] + hwd[2*hidden+j]
		zg := preRow[3*hidden+j] + hwd[3*hidden+j]
		ij := 1 / (1 + math.Exp(-zi))
		fj := 1 / (1 + math.Exp(-zf))
		oj := 1 / (1 + math.Exp(-zo))
		gj := math.Tanh(zg)
		// Two rounded products then one add: the exact association of the
		// graph path's Mul/Mul/Add (the conversions forbid FMA contraction).
		cj := float64(fj*cPrev[j]) + float64(ij*gj)
		tj := math.Tanh(cj)
		iv[j], fv[j], ov[j], gv[j] = ij, fj, oj, gj
		cv[j], th[j] = cj, tj
		val.Data[j] = oj * tj
	}
	tensor.Put(hw)
	if zero != nil {
		tensor.Put(zero)
	}

	req := pre.requires || wh.requires || (prev != nil && prev.requires)
	out := g.newNode(val, req)
	out.backFn, out.a, out.b, out.c = backLSTMCell, prev, pre, wh
	out.ext, out.i0, out.i1 = ext, t, hidden
	return out
}

// backLSTMCell is the fused backward rule of one LSTM step. out.Grad holds
// the total dL/dh(t): the sequence-consumer contribution (StackRows' row
// gradient) plus dgates(t+1)·Whᵀ, which step t+1's backward accumulated into
// this node before the reverse sweep reached it — the same two adds, in the
// same order, the unfused graph performs. The incoming cell-state gradient
// dL/dc(t) waits in this cell's dcAcc slot, parked there by step t+1.
//
// Every "0 +" below marks a point where the graph path materializes an
// intermediate gradient by accumulating into a freshly zeroed buffer; the add
// flushes a negative zero to +0 exactly as the unfused accumulation does.
func backLSTMCell(out *Node) {
	prev, pre, wh := out.a, out.b, out.c
	hidden, t := out.i1, out.i0
	h4 := 4 * hidden
	ext := out.ext.Data
	iv := ext[hidden : 2*hidden]
	fv := ext[2*hidden : 3*hidden]
	ov := ext[3*hidden : 4*hidden]
	gv := ext[4*hidden : 5*hidden]
	th := ext[5*hidden : 6*hidden]
	dcAcc := ext[6*hidden : 7*hidden]
	grad := out.Grad.Data

	var cPrev, hPrev, prevDc []float64
	var zero *tensor.Tensor
	if prev != nil {
		hPrev = prev.Value.Data
		cPrev = prev.ext.Data[0:hidden]
		if prev.requires {
			prevDc = prev.ext.Data[6*hidden : 7*hidden]
			// The dc(t+1) contribution below writes through this alias.
			prev.ext.NoteMutation()
		}
	} else {
		zero = tensor.Get(hidden)
		hPrev, cPrev = zero.Data, zero.Data
	}

	dg := tensor.Get(h4)
	dgd := dg.Data
	for j := 0; j < hidden; j++ {
		gj := grad[j]
		tj, oj := th[j], ov[j]
		ij, fj, ggj := iv[j], fv[j], gv[j]
		do := 0 + gj*tj  // o-gate output grad (fresh += G·tanh(c))
		dth := 0 + gj*oj // tanh(c) grad (fresh += G·o)
		// dc = parked dc(t+1) contribution, then the fused tanh-backward add.
		dc := dcAcc[j] + dth*(1-tj*tj)
		dcF := 0 + dc // the fresh Add-backward copies both Mul grads receive
		dgd[j] = 0 + (0+dcF*ggj)*ij*(1-ij)
		dgd[hidden+j] = 0 + (0+dcF*cPrev[j])*fj*(1-fj)
		dgd[2*hidden+j] = 0 + do*oj*(1-oj)
		dgd[3*hidden+j] = 0 + (0+dcF*ij)*(1-ggj*ggj)
		if prevDc != nil {
			prevDc[j] = 0 + dcF*fj // parked for step t-1's backward
		}
	}

	// dh(t-1) += dgates·Whᵀ — skipped at t=0, where the unfused path's h(0)
	// is a gradient-free Const leaf.
	if prev != nil && prev.requires {
		tensor.MatVecNTAcc(prev.ensureGrad().Data, dgd, wh.Value.Data, hidden, h4)
	}
	// dWh += h(t-1)ᵀ·dgates — at t=0 h(t-1) is the zero vector and the
	// unfused path still accumulates the ±0 products; reproduce that rather
	// than skip it.
	if wh.requires {
		tensor.OuterAccFMA(wh.ensureGrad().Data, hPrev, dgd, hidden, h4)
	}
	if pre.requires {
		prow := pre.ensureGrad().Data[t*h4 : (t+1)*h4]
		for j, v := range dgd[:h4] {
			prow[j] += v
		}
	}
	tensor.Put(dg)
	if zero != nil {
		tensor.Put(zero)
	}
}
