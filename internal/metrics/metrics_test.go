package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ovs/internal/tensor"
)

func TestRMSEZeroForIdentical(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if got := RMSE(x, x.Clone()); got != 0 {
		t.Fatalf("RMSE of identical = %v", got)
	}
}

func TestRMSEHandComputed(t *testing.T) {
	// N=2, T=2. Differences: t0: (1, -1) -> sqrt(1) = 1 ; t1: (2, 2) -> 2.
	pred := tensor.FromSlice([]float64{
		1, 2,
		1, 2,
	}, 2, 2)
	truth := tensor.FromSlice([]float64{
		0, 0,
		2, 0,
	}, 2, 2)
	want := (1.0 + 2.0) / 2
	if got := RMSE(pred, truth); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}

func TestRMSEPerIntervalConvention(t *testing.T) {
	// The paper's metric differs from a flat RMSE when per-interval errors
	// vary: mean of sqrt vs sqrt of mean. Verify we implement mean-of-sqrt.
	pred := tensor.FromSlice([]float64{3, 0}, 1, 2)
	truth := tensor.New(1, 2)
	// per-interval RMSEs: 3 and 0 → paper metric 1.5; flat RMSE would be
	// sqrt(9/2) ≈ 2.12.
	if got := RMSE(pred, truth); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("RMSE = %v, want 1.5 (per-interval convention)", got)
	}
}

func TestRMSEPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	RMSE(tensor.New(2, 2), tensor.New(2, 3))
}

func TestMAE(t *testing.T) {
	a := tensor.FromSlice([]float64{1, -1, 3}, 3)
	b := tensor.FromSlice([]float64{0, 1, 1}, 3)
	if got := MAE(a, b); math.Abs(got-(1.0+2.0+2.0)/3) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(5, 10); got != 0.5 {
		t.Fatalf("Improvement = %v, want 0.5", got)
	}
	if got := Improvement(10, 0); !math.IsNaN(got) {
		t.Fatalf("Improvement with zero baseline = %v, want NaN", got)
	}
	if Improvement(12, 10) >= 0 {
		t.Fatal("worse method should have negative improvement")
	}
}

func TestQuickRMSEProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, tt := 1+r.Intn(5), 1+r.Intn(5)
		a := tensor.Randn(r, 1, n, tt)
		b := tensor.Randn(r, 1, n, tt)
		// Symmetry and non-negativity.
		ab, ba := RMSE(a, b), RMSE(b, a)
		if math.Abs(ab-ba) > 1e-12 || ab < 0 {
			return false
		}
		// Identity of indiscernibles.
		return RMSE(a, a.Clone()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRMSEScaleEquivariance(t *testing.T) {
	// RMSE(ka, kb) = |k| RMSE(a, b).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		a := tensor.Randn(rng, 1, 3, 4)
		b := tensor.Randn(rng, 1, 3, 4)
		k := rng.Float64()*4 - 2
		lhs := RMSE(tensor.Scale(a, k), tensor.Scale(b, k))
		rhs := math.Abs(k) * RMSE(a, b)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("scale equivariance violated: %v vs %v", lhs, rhs)
		}
	}
}
