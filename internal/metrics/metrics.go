// Package metrics implements the evaluation metrics of §V-G: per-interval
// RMSE averaged over time, computed identically for TOD, volume and speed
// tensors laid out as (entities × T).
package metrics

import (
	"fmt"
	"math"

	"ovs/internal/tensor"
)

// RMSE computes the paper's metric
//
//	(1/T) Σ_t sqrt( (1/N) Σ_i (x[i,t] - y[i,t])² )
//
// for two (N × T) tensors. Note the square root is taken per interval before
// averaging over time, exactly as in §V-G.
func RMSE(pred, truth *tensor.Tensor) float64 {
	if !pred.SameShape(truth) {
		panic(fmt.Sprintf("metrics: RMSE shape mismatch %v vs %v", pred.Shape(), truth.Shape()))
	}
	if pred.Rank() != 2 {
		panic(fmt.Sprintf("metrics: RMSE requires rank-2 tensors, got %v", pred.Shape()))
	}
	n, t := pred.Dim(0), pred.Dim(1)
	total := 0.0
	for tt := 0; tt < t; tt++ {
		sq := 0.0
		for i := 0; i < n; i++ {
			d := pred.At(i, tt) - truth.At(i, tt)
			sq += d * d
		}
		total += math.Sqrt(sq / float64(n))
	}
	return total / float64(t)
}

// MAE computes the mean absolute error over all cells, a secondary
// diagnostic used in tests and ablation reporting.
func MAE(pred, truth *tensor.Tensor) float64 {
	if !pred.SameShape(truth) {
		panic(fmt.Sprintf("metrics: MAE shape mismatch %v vs %v", pred.Shape(), truth.Shape()))
	}
	s := 0.0
	for i := range pred.Data {
		s += math.Abs(pred.Data[i] - truth.Data[i])
	}
	return s / float64(len(pred.Data))
}

// Triple bundles the three paper metrics for one method on one dataset
// (one cell group of Tables VI/VIII/IX).
type Triple struct {
	TOD, Volume, Speed float64
}

// Improvement returns the relative improvement of a over b (positive when a
// is lower/better), as reported in the "Improve" rows of Tables VI and VIII.
// A zero baseline makes the ratio undefined, so it returns NaN — reporting 0
// there would misprint "no improvement" when a degenerate baseline reaches
// exactly zero error; table renderers print such cells as "—".
func Improvement(a, b float64) float64 {
	//ovslint:ignore floateq exact-zero baseline is the documented NaN sentinel for an undefined ratio
	if b == 0 {
		return math.NaN()
	}
	return (b - a) / b
}
