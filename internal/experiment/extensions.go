package experiment

import (
	"context"
	"fmt"

	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/metrics"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// Extension experiments beyond the paper's evaluation section, covering the
// design choices DESIGN.md calls out and the paper's stated future work.

// RouteChoiceResult compares single-route OVS (the paper's simplification)
// against the k-shortest route-split extension when the underlying traffic
// actually spreads over routes (dynamic routing in the simulator) — the
// "better modeling the relation between routes and TOD" the conclusion
// names as future work.
type RouteChoiceResult struct {
	// RMSE triples for k=1 and k=2 OVS variants.
	K1, K2 metrics.Triple
}

// RunRouteChoice builds an environment whose ground-truth traffic uses
// dynamic (congestion-aware) routing, then recovers TOD with k=1 and k=2
// route splits.
func RunRouteChoice(ctx context.Context, sc Scale, seed int64) (*RouteChoiceResult, error) {
	city := dataset.SyntheticGrid(sc.ODPairs, seed+3)
	env, err := NewEnv(ctx, city, sc, seed)
	if err != nil {
		return nil, err
	}
	// Re-simulate everything under dynamic routing so multiple routes per OD
	// genuinely carry traffic.
	dynCfg := env.SimCfg
	dynCfg.Routing = sim.DynamicRouting
	env.SimCfg = dynCfg
	dynamicSim := sim.New(city.Net, dynCfg)
	raw, err := dataset.GenerateCtx(ctx, dynamicSim, city, dataset.GenerateOptions{
		Count: sc.Samples,
		TOD: dataset.TODConfig{
			Intervals:       sc.Intervals,
			IntervalMinutes: sc.IntervalSec / 60,
			Scale:           sc.TODScale,
		},
		ScaleJitter: [2]float64{0.5, 1.5},
		Seed:        seed + 1,
	})
	if err != nil {
		return nil, err
	}
	env.Samples = env.Samples[:0]
	for _, s := range raw {
		env.Samples = append(env.Samples, core.Sample{G: s.G, Volume: s.Volume, Speed: s.Speed})
	}
	gtRes, err := dynamicSim.RunCtx(ctx, sim.Demand{ODs: city.ODs, G: env.GT.G})
	if err != nil {
		return nil, err
	}
	env.GT = core.Sample{G: env.GT.G, Volume: gtRes.Volume, Speed: gtRes.Speed}

	out := &RouteChoiceResult{}
	for _, k := range []int{1, 2} {
		rec, err := env.runOVSWithRoutes(ctx, k)
		if err != nil {
			return nil, fmt.Errorf("experiment: route choice k=%d: %w", k, err)
		}
		triple, err := env.Evaluate(ctx, rec)
		if err != nil {
			return nil, err
		}
		if k == 1 {
			out.K1 = triple
		} else {
			out.K2 = triple
		}
	}
	return out, nil
}

// runOVSWithRoutes trains and fits an OVS model with k route slots per OD.
func (e *Env) runOVSWithRoutes(ctx context.Context, k int) (*tensor.Tensor, error) {
	pairs := make([][2]int, len(e.City.ODs))
	for i, od := range e.City.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := core.NewTopology(e.City.Net, pairs, e.SimCfg.Intervals, k)
	if err != nil {
		return nil, err
	}
	cfg := e.modelConfig()
	cfg.RoutesPerOD = k
	m := core.NewModel(topo, cfg)
	return m.TrainFullCtx(ctx, e.Samples, e.GT.Speed, e.Scale.V2SEpochs, e.Scale.T2VEpochs, e.Scale.FitEpochs, nil)
}

// Render prints the route-choice comparison.
func (r *RouteChoiceResult) Render() string {
	rows := [][]string{
		{"Variant", "TOD", "vol", "speed"},
		{"OVS k=1 (paper)", fmt.Sprintf("%.2f", r.K1.TOD), fmt.Sprintf("%.2f", r.K1.Volume), fmt.Sprintf("%.2f", r.K1.Speed)},
		{"OVS k=2 routes", fmt.Sprintf("%.2f", r.K2.TOD), fmt.Sprintf("%.2f", r.K2.Volume), fmt.Sprintf("%.2f", r.K2.Speed)},
	}
	return "Extension: route-choice split under dynamic routing\n" + renderTable(rows)
}

// EngineCrossResult measures robustness to the simulator family: the chain
// is trained on mesoscopic data but the observation comes from the
// microscopic IDM engine (or vice versa), probing whether OVS depends on
// simulator internals or only on the congestion phenomenology.
type EngineCrossResult struct {
	// MesoMeso is the in-domain control; MesoMicro trains on meso and
	// observes micro.
	MesoMeso, MesoMicro metrics.Triple
}

// RunEngineCross runs the cross-engine experiment on the synthetic grid.
func RunEngineCross(ctx context.Context, sc Scale, seed int64) (*EngineCrossResult, error) {
	env, err := NewSyntheticEnv(ctx, dataset.PatternGaussian, sc, seed)
	if err != nil {
		return nil, err
	}
	out := &EngineCrossResult{}

	// Control: meso-trained, meso-observed (the standard pipeline).
	rec, _, _, err := env.RunOVS(ctx, nil)
	if err != nil {
		return nil, err
	}
	triple, err := env.Evaluate(ctx, rec)
	if err != nil {
		return nil, err
	}
	out.MesoMeso = triple

	// Cross: observe the same hidden TOD through the micro engine.
	microCfg := env.SimCfg
	microCfg.Engine = sim.Micro
	microRes, err := sim.New(env.City.Net, microCfg).RunCtx(ctx, sim.Demand{ODs: env.City.ODs, G: env.GT.G})
	if err != nil {
		return nil, err
	}
	crossEnv := *env
	crossEnv.GT = core.Sample{G: env.GT.G, Volume: microRes.Volume, Speed: microRes.Speed}
	rec2, _, _, err := crossEnv.RunOVS(ctx, nil)
	if err != nil {
		return nil, err
	}
	// Score the recovery against the micro-engine observation world.
	crossSim := sim.New(env.City.Net, microCfg)
	recRes, err := crossSim.RunCtx(ctx, sim.Demand{ODs: env.City.ODs, G: rec2})
	if err != nil {
		return nil, err
	}
	out.MesoMicro = metrics.Triple{
		TOD:    metrics.RMSE(rec2, env.GT.G),
		Volume: metrics.RMSE(recRes.Volume, microRes.Volume),
		Speed:  metrics.RMSE(recRes.Speed, microRes.Speed),
	}
	return out, nil
}

// Render prints the cross-engine comparison.
func (r *EngineCrossResult) Render() string {
	rows := [][]string{
		{"Train → Observe", "TOD", "vol", "speed"},
		{"meso → meso", fmt.Sprintf("%.2f", r.MesoMeso.TOD), fmt.Sprintf("%.2f", r.MesoMeso.Volume), fmt.Sprintf("%.2f", r.MesoMeso.Speed)},
		{"meso → micro", fmt.Sprintf("%.2f", r.MesoMicro.TOD), fmt.Sprintf("%.2f", r.MesoMicro.Volume), fmt.Sprintf("%.2f", r.MesoMicro.Speed)},
	}
	return "Extension: cross-engine robustness (simulator mismatch)\n" + renderTable(rows)
}
