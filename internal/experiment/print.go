package experiment

import (
	"fmt"
	"strings"
)

// renderTable renders rows of cells as an aligned ASCII table with a header
// separator, the output format of every experiment in this harness.
func renderTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for c := 0; c < cols; c++ {
			cell := ""
			if c < len(r) {
				cell = r[c]
			}
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// sparkline renders a numeric series as a compact unicode bar chart, used to
// print the case-study TOD curves (Figures 12-13) in a terminal.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
