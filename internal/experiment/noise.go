package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"ovs/internal/dataset"
	"ovs/internal/metrics"
)

// NoiseRow is one observation-noise level's recovery quality.
type NoiseRow struct {
	// NoiseStd is the Gaussian noise added to every observed speed (m/s).
	NoiseStd float64
	// TOD is the recovered-TOD RMSE at this noise level.
	TOD float64
}

// NoiseResult is an extension experiment: map-service speed feeds carry
// sensor error, so how quickly does recovery quality degrade with Gaussian
// observation noise? The chain is trained once on clean generated data; only
// the fitted observation is corrupted.
type NoiseResult struct {
	Rows []NoiseRow
}

// RunNoiseRobustness sweeps observation noise on the Gaussian-pattern grid
// environment.
func RunNoiseRobustness(ctx context.Context, sc Scale, levels []float64, seed int64) (*NoiseResult, error) {
	if len(levels) == 0 {
		levels = []float64{0, 0.25, 0.5, 1.0, 2.0}
	}
	env, err := NewSyntheticEnv(ctx, dataset.PatternGaussian, sc, seed)
	if err != nil {
		return nil, err
	}
	model, err := env.BuildOVS()
	if err != nil {
		return nil, err
	}
	if _, err := model.TrainV2SCtx(ctx, env.Samples, sc.V2SEpochs); err != nil {
		return nil, err
	}
	if _, err := model.TrainT2VCtx(ctx, env.Samples, sc.T2VEpochs); err != nil {
		return nil, err
	}

	out := &NoiseResult{}
	rng := rand.New(rand.NewSource(seed + 51))
	for _, std := range levels {
		obs := env.GT.Speed.Clone()
		if std > 0 {
			for i := range obs.Data {
				obs.Data[i] += rng.NormFloat64() * std
				if obs.Data[i] < 0.1 {
					obs.Data[i] = 0.1
				}
			}
		}
		model.TODGen.Reseed(rand.New(rand.NewSource(seed + 52)))
		rec, _, err := model.FitCtx(ctx, obs, sc.FitEpochs, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, NoiseRow{NoiseStd: std, TOD: metrics.RMSE(rec, env.GT.G)})
	}
	return out, nil
}

// Render prints the noise sweep.
func (n *NoiseResult) Render() string {
	rows := [][]string{{"Speed noise σ (m/s)", "RMSE_TOD"}}
	for _, r := range n.Rows {
		rows = append(rows, []string{fmt.Sprintf("%.2f", r.NoiseStd), fmt.Sprintf("%.2f", r.TOD)})
	}
	return "Extension: recovery vs speed-observation noise\n" + renderTable(rows)
}

// Degradation returns the ratio of the noisiest to the cleanest TOD RMSE —
// a single robustness figure for tests and summaries.
func (n *NoiseResult) Degradation() float64 {
	//ovslint:ignore floateq exact-zero RMSE guards the undefined degradation ratio denominator
	if len(n.Rows) < 2 || n.Rows[0].TOD == 0 {
		return 1
	}
	return n.Rows[len(n.Rows)-1].TOD / n.Rows[0].TOD
}
