package experiment

import (
	"context"
	"strings"
	"testing"

	"ovs/internal/dataset"
	"ovs/internal/metrics"
)

// microScale cuts every knob to the bone so the full harness can be
// exercised in seconds. Orderings are NOT asserted at this scale — only
// structure, determinism and plumbing.
func microScale() Scale {
	return Scale{
		Samples:   4,
		V2SEpochs: 5, T2VEpochs: 4, FitEpochs: 15,
		ODPairs:  4,
		TODScale: 0.8, GTScale: 0.6,
		Intervals: 4, IntervalSec: 180,
		GravityCandidates: 3,
		GeneticPopulation: 4, GeneticGenerations: 2,
		GLSTrainEpochs: 8, GLSFitEpochs: 15,
		EMIterations: 3,
		NNEpochs:     10,
		LSTMEpochs:   8,
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable([][]string{
		{"Method", "TOD"},
		{"OVS", "7.83"},
		{"LSTM", "28.51"},
	})
	if !strings.Contains(out, "OVS") || !strings.Contains(out, "28.51") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if renderTable(nil) != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	flat := sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
	if sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
}

func TestNewEnvStructureAndDeterminism(t *testing.T) {
	sc := microScale()
	city := dataset.SyntheticGrid(sc.ODPairs, 7)
	env, err := NewEnv(context.Background(), city, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Samples) != sc.Samples {
		t.Fatalf("samples = %d", len(env.Samples))
	}
	if env.GT.Speed.Dim(0) != city.Net.NumLinks() || env.GT.Speed.Dim(1) != sc.Intervals {
		t.Fatalf("GT speed shape %v", env.GT.Speed.Shape())
	}
	if env.MaxTrips() <= 0 {
		t.Fatal("MaxTrips must be positive")
	}
	city2 := dataset.SyntheticGrid(sc.ODPairs, 7)
	env2, err := NewEnv(context.Background(), city2, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range env.Samples {
		if env.Samples[i].Speed.Data[0] != env2.Samples[i].Speed.Data[0] {
			t.Fatal("env generation not deterministic")
		}
	}
}

func TestNewSyntheticEnvUsesPattern(t *testing.T) {
	sc := microScale()
	envInc, err := NewSyntheticEnv(context.Background(), dataset.PatternIncreasing, sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	g := envInc.GT.G
	// Column means must increase for the Increasing pattern.
	first, last := 0.0, 0.0
	for i := 0; i < g.Dim(0); i++ {
		first += g.At(i, 0)
		last += g.At(i, g.Dim(1)-1)
	}
	if last <= first {
		t.Fatalf("Increasing GT does not increase: %v -> %v", first, last)
	}
}

func TestRunComparisonStructure(t *testing.T) {
	sc := microScale()
	env, err := NewSyntheticEnv(context.Background(), dataset.PatternGaussian, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunComparison(context.Background(), env, "Gaussian")
	if err != nil {
		t.Fatal(err)
	}
	wantMethods := map[string]bool{"Gravity": true, "Genetic": true, "GLS": true, "EM": true, "NN": true, "LSTM": true, "OVS": true}
	if len(res.Rows) != len(wantMethods) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(wantMethods))
	}
	for _, r := range res.Rows {
		if !wantMethods[r.Method] {
			t.Fatalf("unexpected method %q", r.Method)
		}
		if r.Metrics.TOD <= 0 || r.Metrics.Volume < 0 || r.Metrics.Speed < 0 {
			t.Fatalf("%s: non-positive metrics %+v", r.Method, r.Metrics)
		}
	}
	if _, ok := res.OVSRow(); !ok {
		t.Fatal("OVS row missing")
	}
	if res.BestBaseline(func(tr metrics.Triple) float64 { return tr.TOD }) <= 0 {
		t.Fatal("best baseline TOD must be positive")
	}
	rendered := RenderComparison("Table (test)", []*ComparisonResult{res})
	for m := range wantMethods {
		if !strings.Contains(rendered, m) {
			t.Fatalf("render missing %q:\n%s", m, rendered)
		}
	}
	if !strings.Contains(rendered, "Improve") {
		t.Fatal("render missing Improve row")
	}
}

func TestRunAblationStructure(t *testing.T) {
	res, err := RunAblation(context.Background(), microScale(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("ablation rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0].Variant.String() != "OVS" {
		t.Fatalf("first row %q, want OVS", res.Rows[0].Variant)
	}
	out := res.Render()
	for _, label := range []string{"OVS - TOD", "OVS - TOD2V", "OVS - V2S"} {
		if !strings.Contains(out, label) {
			t.Fatalf("ablation render missing %q", label)
		}
	}
}

func TestRunScalabilityStructure(t *testing.T) {
	sc := microScale()
	res, err := RunScalability(context.Background(), sc, []int{9, 16}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Intersections >= res.Rows[1].Intersections {
		t.Fatal("sizes not increasing")
	}
	for _, r := range res.Rows {
		if r.Elapsed <= 0 {
			t.Fatalf("non-positive elapsed for %s", r.Dataset)
		}
	}
	if !strings.Contains(res.Render(), "Figure 9") {
		t.Fatal("render missing title")
	}
}

func TestRunCensusConstraintStructure(t *testing.T) {
	sc := microScale()
	sc.ODPairs = 12 // need several residential origins
	res, err := RunCensusConstraint(context.Background(), sc, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	for _, r := range res.Reports {
		if r.Target != 100 {
			t.Fatalf("target = %v, want 100", r.Target)
		}
		if r.SumPlain <= 0 || r.SumWithAux <= 0 {
			t.Fatalf("degenerate sums: %+v", r)
		}
	}
	if !strings.Contains(res.Render(), "census") {
		t.Fatal("render missing census")
	}
}

func TestRunRoadWorkStructure(t *testing.T) {
	res, err := RunRoadWork(context.Background(), microScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.OVSDivergence < 0 || res.LSTMDivergence < 0 {
		t.Fatalf("negative divergence: %+v", res)
	}
	if res.OVSDivergence == 0 {
		t.Fatal("OVS divergence exactly zero is suspicious (identical fits?)")
	}
	if !strings.Contains(res.Render(), "road-work") {
		t.Fatal("render missing title")
	}
}

func TestRunCaseStudy2Structure(t *testing.T) {
	sc := microScale()
	res, err := RunCaseStudy2(context.Background(), sc, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpeedRMSE) != 7 {
		t.Fatalf("methods = %d, want 7", len(res.SpeedRMSE))
	}
	for _, label := range []string{"O1->Stadium", "O2->Stadium", "O3->Stadium"} {
		if len(res.Recovered[label]) != res.Hours[len(res.Hours)-1]-res.Hours[0]+1 {
			t.Fatalf("series length mismatch for %q", label)
		}
		if _, err := res.PeakHour(label); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := res.PeakHour("nope"); err == nil {
		t.Fatal("unknown label did not error")
	}
	out := res.Render()
	if !strings.Contains(out, "RMSE_speed") || !strings.Contains(out, "O1->Stadium") {
		t.Fatalf("case study render incomplete:\n%s", out)
	}
}

func TestScalePresets(t *testing.T) {
	for _, sc := range []Scale{TestScale(), QuickScale(), FullScale()} {
		if sc.Samples <= 0 || sc.Intervals <= 0 || sc.FitEpochs <= 0 {
			t.Fatalf("invalid scale preset: %+v", sc)
		}
	}
	if FullScale().Samples <= QuickScale().Samples {
		t.Fatal("FullScale should be larger than QuickScale")
	}
}

func TestRunRouteChoiceStructure(t *testing.T) {
	res, err := RunRouteChoice(context.Background(), microScale(), 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []struct {
		name string
		v    float64
	}{
		{"k1 TOD", res.K1.TOD}, {"k2 TOD", res.K2.TOD},
		{"k1 speed", res.K1.Speed}, {"k2 speed", res.K2.Speed},
	} {
		if tr.v <= 0 {
			t.Fatalf("%s = %v, want > 0", tr.name, tr.v)
		}
	}
	if !strings.Contains(res.Render(), "route-choice") {
		t.Fatal("render missing title")
	}
}

func TestRunEngineCrossStructure(t *testing.T) {
	res, err := RunEngineCross(context.Background(), microScale(), 29)
	if err != nil {
		t.Fatal(err)
	}
	if res.MesoMeso.TOD <= 0 || res.MesoMicro.TOD <= 0 {
		t.Fatalf("degenerate cross-engine result: %+v", res)
	}
	if !strings.Contains(res.Render(), "cross-engine") {
		t.Fatal("render missing title")
	}
}

func TestCaseScaleFallback(t *testing.T) {
	sc := Scale{GTScale: 0.7}
	if caseScale(sc) != 0.7 {
		t.Fatalf("caseScale fallback = %v", caseScale(sc))
	}
	sc.CaseDemandScale = 2.5
	if caseScale(sc) != 2.5 {
		t.Fatalf("caseScale = %v", caseScale(sc))
	}
}

func TestRunNoiseRobustnessStructure(t *testing.T) {
	res, err := RunNoiseRobustness(context.Background(), microScale(), []float64{0, 1.5}, 37)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].NoiseStd != 0 || res.Rows[1].NoiseStd != 1.5 {
		t.Fatalf("levels wrong: %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r.TOD <= 0 {
			t.Fatalf("degenerate RMSE at σ=%v", r.NoiseStd)
		}
	}
	if res.Degradation() <= 0 {
		t.Fatal("degradation must be positive")
	}
	if !strings.Contains(res.Render(), "noise") {
		t.Fatal("render missing title")
	}
}

func TestRunSeededComparisonStructure(t *testing.T) {
	res, err := RunSeededComparison(context.Background(), dataset.PatternGaussian, microScale(), []int64{41, 43})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.TOD.Mean <= 0 || r.TOD.Std < 0 {
			t.Fatalf("%s: degenerate stat %+v", r.Method, r.TOD)
		}
	}
	if res.Best() == "" {
		t.Fatal("no best method")
	}
	if !strings.Contains(res.Render(), "±") {
		t.Fatal("render missing ± notation")
	}
}

func TestMeanStd(t *testing.T) {
	s := meanStd([]float64{2, 4, 6})
	if s.Mean != 4 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Std < 1.6 || s.Std > 1.7 { // population std of {2,4,6} = 1.633
		t.Fatalf("std = %v", s.Std)
	}
	if z := meanStd(nil); z.Mean != 0 || z.Std != 0 {
		t.Fatal("empty meanStd not zero")
	}
}
