package experiment

import (
	"context"
	"fmt"
	"time"

	"ovs/internal/dataset"
	"ovs/internal/roadnet"
)

// TimingRow records OVS wall-clock time on one dataset.
type TimingRow struct {
	Dataset       string
	Intersections int
	Links         int
	Elapsed       time.Duration
}

// TimingResult reproduces Table VII (running time on the three real
// datasets) or Figure 9 (running time vs intersections on synthetic grids).
type TimingResult struct {
	Title string
	Rows  []TimingRow
}

// RunRunningTime reproduces Table VII: OVS train+fit wall-clock on the three
// real presets.
func RunRunningTime(ctx context.Context, sc Scale, seed int64) (*TimingResult, error) {
	out := &TimingResult{Title: "Table VII: OVS running time (real datasets)"}
	for i, name := range dataset.RealCityNames {
		city, err := dataset.ByName(name, dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(ctx, city, sc, seed+10*int64(i))
		if err != nil {
			return nil, err
		}
		_, _, elapsed, err := env.RunOVS(ctx, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, TimingRow{
			Dataset:       name,
			Intersections: city.Net.NumNodes(),
			Links:         city.Net.NumLinks(),
			Elapsed:       elapsed,
		})
	}
	return out, nil
}

// RunScalability reproduces Figure 9: OVS running time on synthetic grids of
// the given intersection counts (the paper sweeps 10, 50, 100, 500, 1000).
// The observed scaling should be approximately linear in the network size.
func RunScalability(ctx context.Context, sc Scale, sizes []int, seed int64) (*TimingResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 50, 100}
	}
	out := &TimingResult{Title: "Figure 9: OVS running time vs #intersections"}
	for i, n := range sizes {
		net := roadnet.GridForIntersections(n)
		rng := newRand(seed + int64(i))
		regions := roadnet.Partition(net, 3, 3, rng)
		city := &dataset.City{
			Name:    fmt.Sprintf("grid-%d", n),
			Net:     net,
			Regions: regions,
			Pairs:   roadnet.SelectODPairs(regions, sc.ODPairs, rng),
		}
		city.Kinds = make([]dataset.RegionKind, len(regions))
		city.ResolveODs()
		env, err := NewEnv(ctx, city, sc, seed+20*int64(i))
		if err != nil {
			return nil, err
		}
		_, _, elapsed, err := env.RunOVS(ctx, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, TimingRow{
			Dataset:       city.Name,
			Intersections: net.NumNodes(),
			Links:         net.NumLinks(),
			Elapsed:       elapsed,
		})
	}
	return out, nil
}

// Render prints the timing table with a per-link time column that makes the
// (approximately linear) scaling visible.
func (tr *TimingResult) Render() string {
	rows := [][]string{{"Dataset", "Intersections", "Links", "Time (s)", "ms/link"}}
	for _, r := range tr.Rows {
		perLink := float64(r.Elapsed.Milliseconds()) / float64(r.Links)
		rows = append(rows, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.Intersections),
			fmt.Sprintf("%d", r.Links),
			fmt.Sprintf("%.2f", r.Elapsed.Seconds()),
			fmt.Sprintf("%.1f", perLink),
		})
	}
	return tr.Title + "\n" + renderTable(rows)
}
