// Package experiment orchestrates the paper's full evaluation: performance
// comparisons (Tables VI and VIII), ablations (Table IX), running time
// (Table VII, Figure 9), auxiliary-data constraints (Figure 10), road-work
// robustness (Figure 11), and the two case studies (Table X, Figures 12-13).
// Every experiment is deterministic for a fixed seed and renders an ASCII
// table mirroring the paper's layout.
package experiment

// Scale bundles the effort knobs of every experiment so the same harness can
// run as a seconds-scale smoke test or a minutes-scale full reproduction.
type Scale struct {
	// Samples is the number of generated training triples (Fig. 7).
	Samples int
	// OVS training epochs per stage (Fig. 8).
	V2SEpochs, T2VEpochs, FitEpochs int
	// ODPairs caps the OD pair count per city (0 = city default).
	ODPairs int
	// TODScale scales generated training demand; GTScale scales the hidden
	// ground-truth demand.
	TODScale, GTScale float64
	// CaseDemandScale scales the case-study scenario demand (Figures 12-13
	// need visibly congested peaks; falls back to GTScale when zero).
	CaseDemandScale float64
	// Intervals is T; IntervalSec its length in simulated seconds.
	Intervals   int
	IntervalSec float64
	// Baseline effort.
	GravityCandidates  int
	GeneticPopulation  int
	GeneticGenerations int
	GLSTrainEpochs     int
	GLSFitEpochs       int
	EMIterations       int
	NNEpochs           int
	LSTMEpochs         int
}

// TestScale returns the smallest useful configuration; unit tests use it.
// Demand scales are chosen so the simulated networks actually congest —
// without speed variation the inverse problem has no signal.
func TestScale() Scale {
	return Scale{
		Samples:   8,
		V2SEpochs: 15, T2VEpochs: 12, FitEpochs: 80,
		ODPairs:  6,
		TODScale: 1.0, GTScale: 0.7,
		CaseDemandScale: 2.5,
		Intervals:       6, IntervalSec: 300,
		GravityCandidates: 5,
		GeneticPopulation: 6, GeneticGenerations: 3,
		GLSTrainEpochs: 20, GLSFitEpochs: 40,
		EMIterations: 6,
		NNEpochs:     25,
		LSTMEpochs:   20,
	}
}

// QuickScale returns the default benchmark configuration: large enough for
// the paper's qualitative ordering to emerge, small enough to run all
// experiments in minutes on a laptop.
func QuickScale() Scale {
	return Scale{
		Samples:   12,
		V2SEpochs: 50, T2VEpochs: 40, FitEpochs: 300,
		ODPairs:  10,
		TODScale: 0.9, GTScale: 0.55,
		CaseDemandScale: 3.0,
		Intervals:       8, IntervalSec: 300,
		GravityCandidates: 7,
		GeneticPopulation: 10, GeneticGenerations: 6,
		GLSTrainEpochs: 40, GLSFitEpochs: 80,
		EMIterations: 10,
		NNEpochs:     50,
		LSTMEpochs:   35,
	}
}

// FullScale approaches the paper's protocol (10-minute intervals over two
// hours, larger training sets). Expect multi-hour runtimes with paper-sized
// epoch counts; this configuration still caps epochs well below the paper's
// 10000 because the harness exists to reproduce orderings, not wall-clock.
func FullScale() Scale {
	s := QuickScale()
	s.Samples = 30
	s.V2SEpochs, s.T2VEpochs, s.FitEpochs = 40, 40, 400
	s.ODPairs = 16
	s.Intervals = 12
	s.IntervalSec = 600
	s.TODScale, s.GTScale = 1.0, 0.7
	s.CaseDemandScale = 3.5
	s.GeneticPopulation, s.GeneticGenerations = 16, 12
	s.GLSTrainEpochs, s.GLSFitEpochs = 80, 200
	s.EMIterations = 20
	s.NNEpochs, s.LSTMEpochs = 100, 80
	return s
}
