package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// CaseStudyResult bundles one case study's outputs: the per-method speed
// fitting errors (one column of Table X) and the OVS-recovered TOD series of
// the scenario's focus ODs (the curves of Figures 12/13).
type CaseStudyResult struct {
	Name string
	// SpeedRMSE maps method name to RMSE_speed of its recovery (Table X).
	SpeedRMSE map[string]float64
	// Recovered maps focus labels to the OVS-recovered TOD time series.
	Recovered map[string][]float64
	// GroundTruth maps focus labels to the scenario's true series.
	GroundTruth map[string][]float64
	// Hours labels the intervals with wall-clock hours.
	Hours []int
	// Elapsed is the OVS wall-clock time.
	Elapsed time.Duration
}

// runCaseStudy executes the shared protocol: simulate the scenario TOD to
// obtain the "observed" speed feed, train everything on generated data, fit
// all methods, and collect the focus series from the OVS recovery.
func runCaseStudy(ctx context.Context, cs *dataset.CaseStudy, sc Scale, seed int64) (*CaseStudyResult, error) {
	// Case studies fix their own horizon.
	sc.Intervals = cs.Intervals

	simCfg := sim.Config{Intervals: cs.Intervals, IntervalSec: sc.IntervalSec, Seed: seed}
	simulator := sim.New(cs.City.Net, simCfg)

	// Observed speed: the scenario TOD pushed through the simulator (our
	// stand-in for the Gaode/Google Maps feed).
	obsRes, err := simulator.RunCtx(ctx, sim.Demand{ODs: cs.City.ODs, G: cs.G})
	if err != nil {
		return nil, fmt.Errorf("experiment: case study observation: %w", err)
	}

	raw, err := dataset.GenerateCtx(ctx, simulator, cs.City, dataset.GenerateOptions{
		Count: sc.Samples,
		TOD: dataset.TODConfig{
			Intervals:       cs.Intervals,
			IntervalMinutes: sc.IntervalSec / 60,
			Scale:           sc.TODScale,
		},
		ScaleJitter: [2]float64{0.3, 2.0},
		Seed:        seed + 1,
	})
	if err != nil {
		return nil, err
	}
	samples := make([]core.Sample, len(raw))
	for i, s := range raw {
		samples[i] = core.Sample{G: s.G, Volume: s.Volume, Speed: s.Speed}
	}

	env := &Env{
		City:    cs.City,
		SimCfg:  simCfg,
		Samples: samples,
		GT:      core.Sample{G: cs.G, Volume: obsRes.Volume, Speed: obsRes.Speed},
		Scale:   sc,
		Seed:    seed,
	}

	out := &CaseStudyResult{
		Name:        cs.Name,
		SpeedRMSE:   map[string]float64{},
		Recovered:   map[string][]float64{},
		GroundTruth: map[string][]float64{},
	}
	for t := 0; t < cs.Intervals; t++ {
		out.Hours = append(out.Hours, cs.HourOf(t))
	}

	// Baselines: score speed fit only (the paper lacks TOD ground truth for
	// the real feeds, Table X reports RMSE_speed).
	bctx := env.Context(ctx)
	for _, m := range env.Methods() {
		rec, err := m.Recover(bctx)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", m.Name(), cs.Name, err)
		}
		triple, err := env.Evaluate(ctx, rec)
		if err != nil {
			return nil, err
		}
		out.SpeedRMSE[m.Name()] = triple.Speed
	}

	// Day-long scenarios (case 1) cannot disambiguate opposite-direction ODs
	// from speed alone; the paper's Hangzhou case has taxi-GPS data, so the
	// §IV-E trajectory auxiliary loss applies there: a noisy fleet-scaled
	// view of the focus ODs plus a few others.
	var aux *core.AuxData
	if cs.Intervals >= 24 {
		rng := newRand(seed + 61)
		var trajIdx []int
		for _, idx := range cs.Focus {
			trajIdx = append(trajIdx, idx)
		}
		sort.Ints(trajIdx)
		for i := 0; i < 3 && i < cs.City.NumPairs(); i++ {
			trajIdx = append(trajIdx, i)
		}
		trajG := tensor.New(len(trajIdx), cs.Intervals)
		for r, i := range trajIdx {
			for t := 0; t < cs.Intervals; t++ {
				trajG.Set(cs.G.At(i, t)*(1+0.25*rng.NormFloat64()), r, t)
			}
		}
		aux = &core.AuxData{TrajODIdx: trajIdx, TrajG: trajG, TrajWeight: 8}
	}

	rec, _, elapsed, err := env.RunOVS(ctx, aux)
	if err != nil {
		return nil, err
	}
	out.Elapsed = elapsed
	triple, err := env.Evaluate(ctx, rec)
	if err != nil {
		return nil, err
	}
	out.SpeedRMSE["OVS"] = triple.Speed

	for label, idx := range cs.Focus {
		out.Recovered[label] = rec.Row(idx).Data
		out.GroundTruth[label] = cs.G.Row(idx).Data
	}
	return out, nil
}

func caseScale(sc Scale) float64 {
	if sc.CaseDemandScale > 0 {
		return sc.CaseDemandScale
	}
	return sc.GTScale
}

// RunCaseStudy1 reproduces Figure 12 and Table X column "Case 1".
func RunCaseStudy1(ctx context.Context, sc Scale, seed int64) (*CaseStudyResult, error) {
	cs, err := dataset.CaseStudy1(caseScale(sc), seed)
	if err != nil {
		return nil, err
	}
	return runCaseStudy(ctx, cs, sc, seed)
}

// RunCaseStudy2 reproduces Figure 13 and Table X column "Case 2".
func RunCaseStudy2(ctx context.Context, sc Scale, seed int64) (*CaseStudyResult, error) {
	cs, err := dataset.CaseStudy2(caseScale(sc), seed)
	if err != nil {
		return nil, err
	}
	return runCaseStudy(ctx, cs, sc, seed)
}

// PeakHour returns the wall-clock hour at which the recovered series for the
// given focus label peaks.
func (c *CaseStudyResult) PeakHour(label string) (int, error) {
	series, ok := c.Recovered[label]
	if !ok {
		return 0, fmt.Errorf("experiment: unknown focus label %q", label)
	}
	best := 0
	for i, v := range series {
		if v > series[best] {
			best = i
		}
	}
	return c.Hours[best], nil
}

// Render prints the Table X column and the focus-series sparklines.
func (c *CaseStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Name)
	rows := [][]string{{"Method", "RMSE_speed"}}
	methods := make([]string, 0, len(c.SpeedRMSE))
	for m := range c.SpeedRMSE {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		rows = append(rows, []string{m, fmt.Sprintf("%.2f", c.SpeedRMSE[m])})
	}
	b.WriteString(renderTable(rows))
	labels := make([]string, 0, len(c.Recovered))
	for l := range c.Recovered {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "%-14s truth:     %s\n", l, sparkline(c.GroundTruth[l]))
		fmt.Fprintf(&b, "%-14s recovered: %s\n", l, sparkline(c.Recovered[l]))
	}
	if len(c.Hours) > 0 {
		fmt.Fprintf(&b, "hours: %d..%d\n", c.Hours[0], c.Hours[len(c.Hours)-1])
	}
	return b.String()
}
