package experiment

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"ovs/internal/dataset"
	"ovs/internal/metrics"
	"ovs/internal/parallel"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// MethodResult is one row of a comparison table.
type MethodResult struct {
	Method  string
	Metrics metrics.Triple
	Elapsed time.Duration
}

// ComparisonResult is one dataset column group of Tables VI/VIII: all
// methods evaluated on one environment.
type ComparisonResult struct {
	Dataset string
	Rows    []MethodResult
}

// BestBaseline returns the lowest baseline value for the metric selector.
func (c *ComparisonResult) BestBaseline(sel func(metrics.Triple) float64) float64 {
	best := 0.0
	first := true
	for _, r := range c.Rows {
		if r.Method == "OVS" {
			continue
		}
		v := sel(r.Metrics)
		if first || v < best {
			best, first = v, false
		}
	}
	return best
}

// OVSRow returns the OVS row, if present.
func (c *ComparisonResult) OVSRow() (MethodResult, bool) {
	for _, r := range c.Rows {
		if r.Method == "OVS" {
			return r, true
		}
	}
	return MethodResult{}, false
}

// RunComparison evaluates the six baselines plus OVS on an environment. The
// methods are independent — each draws randomness only from the environment
// seed — so they run concurrently (bounded by the process-wide worker
// default); the row order is fixed by the method list, not by completion.
// Once ctx is cancelled no new method starts, in-flight methods abort at
// their own safe points, and the cancellation cause is returned.
func RunComparison(ctx context.Context, env *Env, name string) (*ComparisonResult, error) {
	methods := env.Methods()
	rows := make([]MethodResult, len(methods)+1)
	errs := make([]error, len(methods)+1)
	fns := make([]func(), 0, len(methods)+1)
	for i, m := range methods {
		i, m := i, m
		fns = append(fns, func() {
			start := time.Now() //ovslint:ignore globalrand wall-clock timing is reported in tables but never feeds fitted results
			rec, err := m.Recover(env.Context(ctx))
			if err != nil {
				errs[i] = fmt.Errorf("experiment: %s on %s: %w", m.Name(), name, err)
				return
			}
			triple, err := env.Evaluate(ctx, rec)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = MethodResult{Method: m.Name(), Metrics: triple, Elapsed: time.Since(start)}
		})
	}
	fns = append(fns, func() {
		i := len(methods)
		rec, _, elapsed, err := env.RunOVS(ctx, nil)
		if err != nil {
			errs[i] = err
			return
		}
		triple, err := env.Evaluate(ctx, rec)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = MethodResult{Method: "OVS", Metrics: triple, Elapsed: elapsed}
	})
	if err := parallel.RunCtx(ctx, 0, fns...); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &ComparisonResult{Dataset: name, Rows: rows}, nil
}

// RunRealComparison reproduces Table VI: all methods on the Hangzhou, Porto
// and Manhattan presets. Each city cell derives its randomness from the root
// seed by index, so cells are independent and run concurrently with
// reproducible results.
func RunRealComparison(ctx context.Context, sc Scale, seed int64) ([]*ComparisonResult, error) {
	out := make([]*ComparisonResult, len(dataset.RealCityNames))
	errs := make([]error, len(dataset.RealCityNames))
	fns := make([]func(), 0, len(dataset.RealCityNames))
	for i, name := range dataset.RealCityNames {
		i, name := i, name
		fns = append(fns, func() {
			city, err := dataset.ByName(name, dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed + int64(i)})
			if err != nil {
				errs[i] = err
				return
			}
			env, err := NewEnv(ctx, city, sc, seed+10*int64(i))
			if err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = RunComparison(ctx, env, name)
		})
	}
	if err := parallel.RunCtx(ctx, 0, fns...); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunSyntheticComparison reproduces Table VIII: all methods on the 3×3 grid
// across the five TOD patterns, one concurrent cell per pattern (seeded by
// pattern index, so results match the serial order at any worker count).
func RunSyntheticComparison(ctx context.Context, sc Scale, seed int64) ([]*ComparisonResult, error) {
	out := make([]*ComparisonResult, len(dataset.AllPatterns))
	errs := make([]error, len(dataset.AllPatterns))
	fns := make([]func(), 0, len(dataset.AllPatterns))
	for i, p := range dataset.AllPatterns {
		i, p := i, p
		fns = append(fns, func() {
			env, err := NewSyntheticEnv(ctx, p, sc, seed+100*int64(i))
			if err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = RunComparison(ctx, env, p.String())
		})
	}
	if err := parallel.RunCtx(ctx, 0, fns...); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenderComparison renders comparison results in the paper's table layout
// (methods × datasets, three metrics per dataset, plus the Improve row).
func RenderComparison(title string, results []*ComparisonResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	header := []string{"Method"}
	for _, r := range results {
		header = append(header, r.Dataset+" TOD", "vol", "speed")
	}
	rowsByMethod := map[string][]string{}
	var order []string
	for _, res := range results {
		for _, row := range res.Rows {
			if _, ok := rowsByMethod[row.Method]; !ok {
				order = append(order, row.Method)
				rowsByMethod[row.Method] = []string{row.Method}
			}
		}
	}
	for _, res := range results {
		byMethod := map[string]MethodResult{}
		for _, row := range res.Rows {
			byMethod[row.Method] = row
		}
		for _, m := range order {
			row, ok := byMethod[m]
			if !ok {
				rowsByMethod[m] = append(rowsByMethod[m], "-", "-", "-")
				continue
			}
			rowsByMethod[m] = append(rowsByMethod[m],
				fmt.Sprintf("%.2f", row.Metrics.TOD),
				fmt.Sprintf("%.2f", row.Metrics.Volume),
				fmt.Sprintf("%.2f", row.Metrics.Speed))
		}
	}
	table := [][]string{header}
	for _, m := range order {
		table = append(table, rowsByMethod[m])
	}
	// Improve row: OVS vs best baseline per metric.
	improve := []string{"Improve"}
	for _, res := range results {
		ovs, ok := res.OVSRow()
		if !ok {
			improve = append(improve, "-", "-", "-")
			continue
		}
		for _, sel := range []func(metrics.Triple) float64{
			func(t metrics.Triple) float64 { return t.TOD },
			func(t metrics.Triple) float64 { return t.Volume },
			func(t metrics.Triple) float64 { return t.Speed },
		} {
			best := res.BestBaseline(sel)
			imp := metrics.Improvement(sel(ovs.Metrics), best)
			if math.IsNaN(imp) {
				// Undefined ratio (zero baseline): render an em dash rather
				// than a misleading 0.0%.
				improve = append(improve, "—")
			} else {
				improve = append(improve, fmt.Sprintf("%.1f%%", 100*imp))
			}
		}
	}
	table = append(table, improve)
	b.WriteString(renderTable(table))
	return b.String()
}
