package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ovs/internal/dataset"
	"ovs/internal/metrics"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// MethodResult is one row of a comparison table.
type MethodResult struct {
	Method  string
	Metrics metrics.Triple
	Elapsed time.Duration
}

// ComparisonResult is one dataset column group of Tables VI/VIII: all
// methods evaluated on one environment.
type ComparisonResult struct {
	Dataset string
	Rows    []MethodResult
}

// BestBaseline returns the lowest baseline value for the metric selector.
func (c *ComparisonResult) BestBaseline(sel func(metrics.Triple) float64) float64 {
	best := 0.0
	first := true
	for _, r := range c.Rows {
		if r.Method == "OVS" {
			continue
		}
		v := sel(r.Metrics)
		if first || v < best {
			best, first = v, false
		}
	}
	return best
}

// OVSRow returns the OVS row, if present.
func (c *ComparisonResult) OVSRow() (MethodResult, bool) {
	for _, r := range c.Rows {
		if r.Method == "OVS" {
			return r, true
		}
	}
	return MethodResult{}, false
}

// RunComparison evaluates the six baselines plus OVS on an environment.
func RunComparison(env *Env, name string) (*ComparisonResult, error) {
	out := &ComparisonResult{Dataset: name}
	ctx := env.Context()
	for _, m := range env.Methods() {
		start := time.Now()
		rec, err := m.Recover(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", m.Name(), name, err)
		}
		triple, err := env.Evaluate(rec)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, MethodResult{Method: m.Name(), Metrics: triple, Elapsed: time.Since(start)})
	}
	rec, _, elapsed, err := env.RunOVS(nil)
	if err != nil {
		return nil, err
	}
	triple, err := env.Evaluate(rec)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, MethodResult{Method: "OVS", Metrics: triple, Elapsed: elapsed})
	return out, nil
}

// RunRealComparison reproduces Table VI: all methods on the Hangzhou, Porto
// and Manhattan presets.
func RunRealComparison(sc Scale, seed int64) ([]*ComparisonResult, error) {
	var out []*ComparisonResult
	for i, name := range dataset.RealCityNames {
		city, err := dataset.ByName(name, dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(city, sc, seed+10*int64(i))
		if err != nil {
			return nil, err
		}
		res, err := RunComparison(env, name)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RunSyntheticComparison reproduces Table VIII: all methods on the 3×3 grid
// across the five TOD patterns.
func RunSyntheticComparison(sc Scale, seed int64) ([]*ComparisonResult, error) {
	var out []*ComparisonResult
	for i, p := range dataset.AllPatterns {
		env, err := NewSyntheticEnv(p, sc, seed+100*int64(i))
		if err != nil {
			return nil, err
		}
		res, err := RunComparison(env, p.String())
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderComparison renders comparison results in the paper's table layout
// (methods × datasets, three metrics per dataset, plus the Improve row).
func RenderComparison(title string, results []*ComparisonResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	header := []string{"Method"}
	for _, r := range results {
		header = append(header, r.Dataset+" TOD", "vol", "speed")
	}
	rowsByMethod := map[string][]string{}
	var order []string
	for _, res := range results {
		for _, row := range res.Rows {
			if _, ok := rowsByMethod[row.Method]; !ok {
				order = append(order, row.Method)
				rowsByMethod[row.Method] = []string{row.Method}
			}
		}
	}
	for _, res := range results {
		byMethod := map[string]MethodResult{}
		for _, row := range res.Rows {
			byMethod[row.Method] = row
		}
		for _, m := range order {
			row, ok := byMethod[m]
			if !ok {
				rowsByMethod[m] = append(rowsByMethod[m], "-", "-", "-")
				continue
			}
			rowsByMethod[m] = append(rowsByMethod[m],
				fmt.Sprintf("%.2f", row.Metrics.TOD),
				fmt.Sprintf("%.2f", row.Metrics.Volume),
				fmt.Sprintf("%.2f", row.Metrics.Speed))
		}
	}
	table := [][]string{header}
	for _, m := range order {
		table = append(table, rowsByMethod[m])
	}
	// Improve row: OVS vs best baseline per metric.
	improve := []string{"Improve"}
	for _, res := range results {
		ovs, ok := res.OVSRow()
		if !ok {
			improve = append(improve, "-", "-", "-")
			continue
		}
		for _, sel := range []func(metrics.Triple) float64{
			func(t metrics.Triple) float64 { return t.TOD },
			func(t metrics.Triple) float64 { return t.Volume },
			func(t metrics.Triple) float64 { return t.Speed },
		} {
			best := res.BestBaseline(sel)
			improve = append(improve, fmt.Sprintf("%.1f%%", 100*metrics.Improvement(sel(ovs.Metrics), best)))
		}
	}
	table = append(table, improve)
	b.WriteString(renderTable(table))
	return b.String()
}
