package experiment

import (
	"context"
	"fmt"
	"time"

	"ovs/internal/baselines"
	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/metrics"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// Env is one fully prepared evaluation environment: a city, its simulator,
// the generated training samples, and the hidden ground truth.
type Env struct {
	City    *dataset.City
	SimCfg  sim.Config
	Samples []core.Sample
	GT      core.Sample // hidden ground truth (G, Volume, Speed)
	Scale   Scale
	Seed    int64
}

// NewEnv generates the training data and ground truth for a city following
// the Fig. 7 protocol. Data generation runs many simulations, so ctx is
// threaded through to cancel mid-build.
func NewEnv(ctx context.Context, city *dataset.City, sc Scale, seed int64) (*Env, error) {
	simCfg := sim.Config{Intervals: sc.Intervals, IntervalSec: sc.IntervalSec, Seed: seed}
	simulator := sim.New(city.Net, simCfg)
	raw, err := dataset.GenerateCtx(ctx, simulator, city, dataset.GenerateOptions{
		Count: sc.Samples,
		TOD: dataset.TODConfig{
			Intervals:       sc.Intervals,
			IntervalMinutes: sc.IntervalSec / 60,
			Scale:           sc.TODScale,
		},
		// Span light to moderately heavy congestion so the learned mappings
		// cover whatever regime the hidden observation sits in.
		ScaleJitter: [2]float64{0.5, 1.5},
		Seed:        seed + 1,
	})
	if err != nil {
		return nil, err
	}
	samples := make([]core.Sample, len(raw))
	for i, s := range raw {
		samples[i] = core.Sample{G: s.G, Volume: s.Volume, Speed: s.Speed}
	}
	gt, err := dataset.GroundTruthCtx(ctx, simulator, city, sc.GTScale, seed+2)
	if err != nil {
		return nil, err
	}
	return &Env{
		City:    city,
		SimCfg:  simCfg,
		Samples: samples,
		GT:      core.Sample{G: gt.G, Volume: gt.Volume, Speed: gt.Speed},
		Scale:   sc,
		Seed:    seed,
	}, nil
}

// NewSyntheticEnv prepares an environment on the 3×3 grid whose hidden
// ground truth follows one specific pattern (Table VIII's columns).
func NewSyntheticEnv(ctx context.Context, p dataset.Pattern, sc Scale, seed int64) (*Env, error) {
	city := dataset.SyntheticGrid(sc.ODPairs, seed+3)
	env, err := NewEnv(ctx, city, sc, seed)
	if err != nil {
		return nil, err
	}
	// Replace the ground truth with a draw from the requested pattern.
	rng := newRand(seed + 4)
	g := dataset.GenerateTOD(p, dataset.TODConfig{
		Pairs:           city.NumPairs(),
		Intervals:       sc.Intervals,
		IntervalMinutes: sc.IntervalSec / 60,
		Scale:           sc.GTScale,
	}, rng)
	res, err := sim.New(city.Net, env.SimCfg).RunCtx(ctx, sim.Demand{ODs: city.ODs, G: g})
	if err != nil {
		return nil, err
	}
	env.GT = core.Sample{G: g, Volume: res.Volume, Speed: res.Speed}
	return env, nil
}

// MaxTrips returns the TOD scale bound used by all recovery methods.
func (e *Env) MaxTrips() float64 {
	m := e.GT.G.Max()
	for _, s := range e.Samples {
		if s.G.Max() > m {
			m = s.G.Max()
		}
	}
	return m * 1.2
}

// Simulate runs a TOD tensor through the environment's simulator, observing
// ctx at interval boundaries.
func (e *Env) Simulate(ctx context.Context, g *tensor.Tensor) (*sim.Result, error) {
	return sim.New(e.City.Net, e.SimCfg).RunCtx(ctx, sim.Demand{ODs: e.City.ODs, G: g})
}

// Context assembles the baselines.Context view of the environment. The
// returned view's Simulate closure carries ctx, so baseline recoveries that
// simulate are cancellable too.
func (e *Env) Context(ctx context.Context) *baselines.Context {
	return &baselines.Context{
		Net:      e.City.Net,
		Regions:  e.City.Regions,
		Pairs:    e.City.Pairs,
		T:        e.SimCfg.Intervals,
		Samples:  e.Samples,
		SpeedObs: e.GT.Speed,
		Simulate: func(g *tensor.Tensor) (*tensor.Tensor, error) {
			res, err := e.Simulate(ctx, g)
			if err != nil {
				return nil, err
			}
			return res.Speed, nil
		},
		MaxTrips: e.MaxTrips(),
		Seed:     e.Seed,
	}
}

// Evaluate computes the paper's three RMSE metrics for a recovered TOD: the
// tensor itself against ground truth, then volume and speed by feeding the
// recovery back through the simulator (§V-G).
func (e *Env) Evaluate(ctx context.Context, rec *tensor.Tensor) (metrics.Triple, error) {
	res, err := e.Simulate(ctx, rec)
	if err != nil {
		return metrics.Triple{}, err
	}
	return metrics.Triple{
		TOD:    metrics.RMSE(rec, e.GT.G),
		Volume: metrics.RMSE(res.Volume, e.GT.Volume),
		Speed:  metrics.RMSE(res.Speed, e.GT.Speed),
	}, nil
}

// BuildOVS constructs an OVS model for the environment (MaxTrips calibrated
// to the data) without training it.
func (e *Env) BuildOVS() (*core.Model, error) {
	return e.buildOVSModel(core.AblateNone)
}

// modelConfig calibrates the model configuration to the environment's data:
// MaxTrips from the demand range, InitTripLevel from the mean demand, and
// VolumeNorm from the occupancy range.
func (e *Env) modelConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxTrips = e.MaxTrips()
	meanG := 0.0
	maxVol := 0.0
	for _, s := range e.Samples {
		meanG += s.G.Mean()
		if s.Volume.Max() > maxVol {
			maxVol = s.Volume.Max()
		}
	}
	meanG /= float64(len(e.Samples))
	cfg.InitTripLevel = meanG / cfg.MaxTrips
	if maxVol > 0 {
		cfg.VolumeNorm = maxVol / 4
	}
	cfg.Seed = e.Seed + 5
	return cfg
}

func (e *Env) buildOVSModel(ab core.Ablation) (*core.Model, error) {
	pairs := make([][2]int, len(e.City.ODs))
	for i, od := range e.City.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := core.NewTopology(e.City.Net, pairs, e.SimCfg.Intervals, 1)
	if err != nil {
		return nil, err
	}
	cfg := e.modelConfig()
	if ab == core.AblateNone {
		return core.NewModel(topo, cfg), nil
	}
	return core.NewAblatedModel(topo, cfg, ab), nil
}

// RunOVS trains the full pipeline and fits the environment's observation,
// returning the recovered TOD, the trained model, and the wall-clock time.
// Cancellation is observed at the pipeline's epoch/restart boundaries.
func (e *Env) RunOVS(ctx context.Context, aux *core.AuxData) (*tensor.Tensor, *core.Model, time.Duration, error) {
	return e.runOVSVariant(ctx, core.AblateNone, aux)
}

func (e *Env) runOVSVariant(ctx context.Context, ab core.Ablation, aux *core.AuxData) (*tensor.Tensor, *core.Model, time.Duration, error) {
	m, err := e.buildOVSModel(ab)
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now() //ovslint:ignore globalrand wall-clock timing is reported in tables but never feeds fitted results
	rec, err := m.TrainFullCtx(ctx, e.Samples, e.GT.Speed, e.Scale.V2SEpochs, e.Scale.T2VEpochs, e.Scale.FitEpochs, aux)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("experiment: OVS (%v): %w", ab, err)
	}
	return rec, m, time.Since(start), nil
}

// RunOVSCkpt is RunOVS with fault-tolerant checkpointing: the pipeline
// snapshots its state into opts.Dir as it goes and, when resume is set,
// continues from the newest valid checkpoint instead of starting over. It
// returns the path of the checkpoint resumed from ("" when starting fresh).
// An opts.Stop interrupt — or ctx cancellation, which takes the identical
// path — surfaces as core.ErrInterrupted after a final checkpoint is
// written.
func (e *Env) RunOVSCkpt(ctx context.Context, aux *core.AuxData, opts core.CkptOptions, resume bool) (*tensor.Tensor, *core.Model, time.Duration, string, error) {
	m, err := e.BuildOVS()
	if err != nil {
		return nil, nil, 0, "", err
	}
	c, err := core.NewCheckpointer(m, opts)
	if err != nil {
		return nil, nil, 0, "", err
	}
	resumedFrom := ""
	if resume {
		resumedFrom, err = c.Resume()
		if err != nil {
			return nil, nil, 0, "", err
		}
	}
	start := time.Now() //ovslint:ignore globalrand wall-clock timing is reported but never feeds fitted results
	res, err := c.TrainFull(ctx, e.Samples, e.GT.Speed, e.Scale.V2SEpochs, e.Scale.T2VEpochs, e.Scale.FitEpochs, aux)
	if err != nil {
		return nil, nil, 0, resumedFrom, fmt.Errorf("experiment: OVS: %w", err)
	}
	return res.TOD, m, time.Since(start), resumedFrom, nil
}

// Methods returns the six baselines configured at the environment's scale.
func (e *Env) Methods() []baselines.Method {
	sc := e.Scale
	return []baselines.Method{
		&baselines.Gravity{Candidates: sc.GravityCandidates},
		&baselines.Genetic{Population: sc.GeneticPopulation, Generations: sc.GeneticGenerations},
		&baselines.GLS{TrainEpochs: sc.GLSTrainEpochs, FitEpochs: sc.GLSFitEpochs},
		&baselines.EM{Iterations: sc.EMIterations},
		&baselines.NN{Epochs: sc.NNEpochs},
		&baselines.LSTM{Epochs: sc.LSTMEpochs},
	}
}
