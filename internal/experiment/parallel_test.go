package experiment

import (
	"context"
	"runtime"
	"testing"

	"ovs/internal/parallel"
)

// TestSyntheticComparisonWorkerEquivalence checks the top of the stack: a
// whole Table VIII run must produce identical metrics for Workers ∈ {1, 2,
// GOMAXPROCS}. Every cell derives its randomness from the root seed by
// pattern index, so concurrency must not leak into any number.
func TestSyntheticComparisonWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison sweep is too slow for -short")
	}
	sc := microScale()
	sc.Samples = 3
	sc.FitEpochs = 8

	old := parallel.Workers()
	defer parallel.SetWorkers(old)

	run := func(workers int) []*ComparisonResult {
		parallel.SetWorkers(workers)
		res, err := RunSyntheticComparison(context.Background(), sc, 31)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Dataset != ref[i].Dataset {
				t.Fatalf("workers=%d: dataset[%d] = %q, want %q", w, i, got[i].Dataset, ref[i].Dataset)
			}
			for j, row := range ref[i].Rows {
				g := got[i].Rows[j]
				// Elapsed is wall-clock and legitimately differs; the metrics
				// must be bitwise-identical.
				if g.Method != row.Method || g.Metrics != row.Metrics {
					t.Fatalf("workers=%d: %s/%s = %+v, want %+v",
						w, ref[i].Dataset, row.Method, g.Metrics, row.Metrics)
				}
			}
		}
	}
}
