package experiment

import (
	"context"
	"fmt"
	"math"

	"ovs/internal/core"
	"ovs/internal/dataset"
)

// CensusRegionReport compares the recovered daily OD sums for one focus OD
// with and without the census auxiliary loss (one panel of Figure 10).
type CensusRegionReport struct {
	Label      string
	Target     float64 // desired full-horizon sum (normalized to ~100)
	SumPlain   float64 // recovered sum, no auxiliary loss
	SumWithAux float64 // recovered sum, census loss enabled
}

// CensusResult reproduces Figure 10 / RQ2: on the Manhattan preset, two ODs
// out of two similar-population residential regions should recover similar
// (and target-matching) daily totals only when census data constrains the
// solution.
type CensusResult struct {
	Reports []CensusRegionReport
}

// RunCensusConstraint runs OVS twice on the Manhattan environment — with and
// without a census auxiliary loss derived from the ground truth — and
// reports the recovered daily sums of two focus ODs from similar-population
// residential regions.
func RunCensusConstraint(ctx context.Context, sc Scale, seed int64) (*CensusResult, error) {
	city := dataset.Manhattan(dataset.CityOptions{ODPairs: sc.ODPairs, Seed: seed})
	env, err := NewEnv(ctx, city, sc, seed)
	if err != nil {
		return nil, err
	}
	// Focus ODs: the two whose origin regions are residential with the most
	// similar populations.
	i1, i2 := pickSimilarResidentialODs(city)
	if i1 < 0 || i2 < 0 {
		return nil, fmt.Errorf("experiment: no residential OD pair candidates in Manhattan preset")
	}

	// Census from ground truth (exact sums; Figure 10 normalizes to 100).
	census := make([]float64, city.NumPairs())
	for i := range census {
		census[i] = env.GT.G.Row(i).Sum()
	}

	// The census term needs weight and fit length to actually pin the daily
	// sums on the large Manhattan instance.
	censusEnv := *env
	censusEnv.Scale.FitEpochs = env.Scale.FitEpochs * 2
	recPlain, _, _, err := env.RunOVS(ctx, nil)
	if err != nil {
		return nil, err
	}
	recAux, _, _, err := censusEnv.RunOVS(ctx, &core.AuxData{CensusSum: census, CensusWeight: 200})
	if err != nil {
		return nil, err
	}

	out := &CensusResult{}
	for _, focus := range []struct {
		idx   int
		label string
	}{{i1, "Region 1 OD"}, {i2, "Region 2 OD"}} {
		// Normalize each OD so its census target reads 100 (as in Fig. 10).
		norm := 100.0 / math.Max(census[focus.idx], 1e-9)
		out.Reports = append(out.Reports, CensusRegionReport{
			Label:      focus.label,
			Target:     100,
			SumPlain:   recPlain.Row(focus.idx).Sum() * norm,
			SumWithAux: recAux.Row(focus.idx).Sum() * norm,
		})
	}
	return out, nil
}

// pickSimilarResidentialODs finds two OD pairs whose origins are distinct
// residential regions with the closest populations.
func pickSimilarResidentialODs(city *dataset.City) (int, int) {
	type cand struct {
		od     int
		origin int
	}
	var cands []cand
	seen := map[int]bool{}
	for i, p := range city.Pairs {
		if city.Kinds[p.Origin] == dataset.KindResidential && !seen[p.Origin] {
			cands = append(cands, cand{od: i, origin: p.Origin})
			seen[p.Origin] = true
		}
	}
	if len(cands) < 2 {
		return -1, -1
	}
	bestA, bestB := -1, -1
	bestDiff := math.Inf(1)
	for a := 0; a < len(cands); a++ {
		for b := a + 1; b < len(cands); b++ {
			d := math.Abs(city.Regions[cands[a].origin].Population - city.Regions[cands[b].origin].Population)
			if d < bestDiff {
				bestDiff = d
				bestA, bestB = cands[a].od, cands[b].od
			}
		}
	}
	return bestA, bestB
}

// Render prints the Figure 10 comparison.
func (c *CensusResult) Render() string {
	rows := [][]string{{"Focus", "Target sum", "Recovered (no census)", "Recovered (with census)"}}
	for _, r := range c.Reports {
		rows = append(rows, []string{
			r.Label,
			fmt.Sprintf("%.0f", r.Target),
			fmt.Sprintf("%.1f", r.SumPlain),
			fmt.Sprintf("%.1f", r.SumWithAux),
		})
	}
	return "Figure 10: census constraint on recovered daily OD sums\n" + renderTable(rows)
}
