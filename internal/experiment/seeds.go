package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ovs/internal/dataset"
)

// SeededStat is a mean ± standard deviation over seeds.
type SeededStat struct {
	Mean, Std float64
}

func (s SeededStat) String() string { return fmt.Sprintf("%.2f±%.2f", s.Mean, s.Std) }

// SeededRow aggregates one method's TOD RMSE across seeds.
type SeededRow struct {
	Method string
	TOD    SeededStat
}

// SeededComparison is a multi-seed version of the pattern comparison: the
// single-seed tables can flatter or punish a method by luck; this reports
// mean ± std over independent environments.
type SeededComparison struct {
	Dataset string
	Rows    []SeededRow
}

// RunSeededComparison runs the full method comparison on one synthetic
// pattern across `seeds` independent environments and aggregates TOD RMSE.
func RunSeededComparison(ctx context.Context, p dataset.Pattern, sc Scale, seeds []int64) (*SeededComparison, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	perMethod := map[string][]float64{}
	var order []string
	for _, seed := range seeds {
		env, err := NewSyntheticEnv(ctx, p, sc, seed)
		if err != nil {
			return nil, err
		}
		res, err := RunComparison(ctx, env, p.String())
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if _, seen := perMethod[row.Method]; !seen {
				order = append(order, row.Method)
			}
			perMethod[row.Method] = append(perMethod[row.Method], row.Metrics.TOD)
		}
	}
	out := &SeededComparison{Dataset: p.String()}
	for _, m := range order {
		out.Rows = append(out.Rows, SeededRow{Method: m, TOD: meanStd(perMethod[m])})
	}
	return out, nil
}

func meanStd(xs []float64) SeededStat {
	if len(xs) == 0 {
		return SeededStat{}
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - mean
		varSum += d * d
	}
	return SeededStat{Mean: mean, Std: math.Sqrt(varSum / float64(len(xs)))}
}

// Render prints the seeded comparison.
func (s *SeededComparison) Render() string {
	rows := [][]string{{"Method", "TOD RMSE (mean±std)"}}
	for _, r := range s.Rows {
		rows = append(rows, []string{r.Method, r.TOD.String()})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Seed-averaged comparison: %s pattern\n", s.Dataset)
	b.WriteString(renderTable(rows))
	return b.String()
}

// Best returns the method with the lowest mean TOD RMSE.
func (s *SeededComparison) Best() string {
	best, bestVal := "", math.Inf(1)
	for _, r := range s.Rows {
		if r.TOD.Mean < bestVal {
			best, bestVal = r.Method, r.TOD.Mean
		}
	}
	return best
}
