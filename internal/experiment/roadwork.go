package experiment

import (
	"context"
	"fmt"

	"ovs/internal/baselines"
	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/metrics"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// RoadWorkResult reproduces Figure 11 / RQ3: the same hidden TOD is
// simulated through a regular simulator and through one whose volume-speed
// mapping is perturbed on some links (road work). A robust method recovers
// nearly the same TOD from both observations; a speed-pattern-matching
// method (the LSTM baseline) shifts.
type RoadWorkResult struct {
	// Divergence between the two recovered TODs, per method (lower = more
	// robust to the road-work factor).
	OVSDivergence  float64
	LSTMDivergence float64
	// Fit errors against ground truth, per scenario, as context.
	OVSRegular, OVSRoadWork   float64
	LSTMRegular, LSTMRoadWork float64
}

// RunRoadWork runs the two-simulator protocol: a random fifth of links get
// a 0.55× speed factor in the road-work simulator.
func RunRoadWork(ctx context.Context, sc Scale, seed int64) (*RoadWorkResult, error) {
	env, err := NewSyntheticEnv(ctx, dataset.PatternGaussian, sc, seed)
	if err != nil {
		return nil, err
	}
	// Road-work scenario: a fifth of the links drop to 55% speed (lane
	// closures), the regime of the paper's "some roads are under
	// maintenance". Perturbing much more than this stops being "some roads"
	// and becomes a different city, where no speed-only method can separate
	// environment from demand.
	rng := newRand(seed + 31)
	work := map[int]float64{}
	for j := 0; j < env.City.Net.NumLinks(); j++ {
		if rng.Float64() < 0.2 {
			work[j] = 0.55
		}
	}
	workCfg := env.SimCfg
	workCfg.RoadWork = work
	res2, err := sim.New(env.City.Net, workCfg).RunCtx(ctx, sim.Demand{ODs: env.City.ODs, G: env.GT.G})
	if err != nil {
		return nil, err
	}
	speedRegular := env.GT.Speed
	speedRoadWork := res2.Speed

	// OVS: train once on the regular environment, then fit each observation
	// with a fresh TOD generator. The fit uses the robust (pseudo-Huber)
	// speed loss: links whose physics changed are outliers with respect to
	// the trained chain and must not dominate the recovered demand.
	model, err := env.BuildOVS()
	if err != nil {
		return nil, err
	}
	model.Cfg.RobustDelta = 0.3
	if _, err := model.TrainV2SCtx(ctx, env.Samples, sc.V2SEpochs); err != nil {
		return nil, err
	}
	if _, err := model.TrainT2VCtx(ctx, env.Samples, sc.T2VEpochs); err != nil {
		return nil, err
	}
	fitFresh := func(obs *tensor.Tensor, reseed int64) (*tensor.Tensor, error) {
		// A truly fresh fit needs fresh generator weights, not just fresh
		// Gaussian seeds: after a previous fit the layer weights are adapted
		// to the old seeds, and new seeds through old weights start the
		// optimization saturated.
		model.TODGen = core.NewTODGenerator(model.Topo, model.Cfg, newRand(reseed))
		// Detect environment-changed links from the observation itself: a
		// link whose fastest observed interval is far below its speed limit
		// has changed physics (road work caps speed even when empty) and is
		// excluded from the fit. Demand is recovered from the rest.
		weights := make([]float64, env.City.Net.NumLinks())
		for j := range weights {
			maxObs := 0.0
			for t := 0; t < obs.Dim(1); t++ {
				if v := obs.At(j, t); v > maxObs {
					maxObs = v
				}
			}
			if maxObs >= 0.75*env.City.Net.Links[j].SpeedLimit {
				weights[j] = 1
			}
		}
		rec, _, err := model.FitCtx(ctx, obs, sc.FitEpochs, &core.AuxData{LinkWeights: weights})
		return rec, err
	}
	ovs1, err := fitFresh(speedRegular, seed+41)
	if err != nil {
		return nil, err
	}
	ovs2, err := fitFresh(speedRoadWork, seed+42)
	if err != nil {
		return nil, err
	}

	// LSTM baseline: trained on the regular samples (training is
	// deterministic per seed, so both calls learn identical weights) and
	// applied to each observation.
	lstm := &baselines.LSTM{Epochs: sc.LSTMEpochs}
	bc1 := env.Context(ctx)
	bc1.SpeedObs = speedRegular
	l1, err := lstm.Recover(bc1)
	if err != nil {
		return nil, err
	}
	bc2 := env.Context(ctx)
	bc2.SpeedObs = speedRoadWork
	l2, err := lstm.Recover(bc2)
	if err != nil {
		return nil, err
	}

	return &RoadWorkResult{
		OVSDivergence:  metrics.RMSE(ovs1, ovs2),
		LSTMDivergence: metrics.RMSE(l1, l2),
		OVSRegular:     metrics.RMSE(ovs1, env.GT.G),
		OVSRoadWork:    metrics.RMSE(ovs2, env.GT.G),
		LSTMRegular:    metrics.RMSE(l1, env.GT.G),
		LSTMRoadWork:   metrics.RMSE(l2, env.GT.G),
	}, nil
}

// Render prints the Figure 11 comparison.
func (r *RoadWorkResult) Render() string {
	rows := [][]string{
		{"Method", "TOD divergence (regular vs road work)", "RMSE regular", "RMSE road work"},
		{"OVS", fmt.Sprintf("%.2f", r.OVSDivergence), fmt.Sprintf("%.2f", r.OVSRegular), fmt.Sprintf("%.2f", r.OVSRoadWork)},
		{"LSTM", fmt.Sprintf("%.2f", r.LSTMDivergence), fmt.Sprintf("%.2f", r.LSTMRegular), fmt.Sprintf("%.2f", r.LSTMRoadWork)},
	}
	return "Figure 11: road-work robustness of recovered TOD\n" + renderTable(rows)
}
