package experiment

import (
	"context"
	"fmt"

	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/metrics"
)

// AblationRow is one row of Table IX.
type AblationRow struct {
	Variant core.Ablation
	Metrics metrics.Triple
}

// AblationResult reproduces Table IX: OVS and its three FC-ablated variants
// evaluated on the Random synthetic pattern.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation trains all four variants on one shared synthetic environment.
func RunAblation(ctx context.Context, sc Scale, seed int64) (*AblationResult, error) {
	env, err := NewSyntheticEnv(ctx, dataset.PatternRandom, sc, seed)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{}
	for _, ab := range []core.Ablation{core.AblateNone, core.AblateTODGen, core.AblateT2V, core.AblateV2S} {
		rec, _, _, err := env.runOVSVariant(ctx, ab, nil)
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation %v: %w", ab, err)
		}
		triple, err := env.Evaluate(ctx, rec)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{Variant: ab, Metrics: triple})
	}
	return out, nil
}

// Render prints Table IX.
func (a *AblationResult) Render() string {
	rows := [][]string{{"Method", "TOD", "vol", "speed"}}
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Variant.String(),
			fmt.Sprintf("%.2f", r.Metrics.TOD),
			fmt.Sprintf("%.2f", r.Metrics.Volume),
			fmt.Sprintf("%.2f", r.Metrics.Speed),
		})
	}
	return "Table IX: ablation study (Random pattern)\n" + renderTable(rows)
}
