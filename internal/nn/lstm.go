package nn

import (
	"math/rand"
	"sync/atomic"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// LSTM is a single-layer long short-term memory network processing a
// sequence laid out as a rank-2 tensor (T × in) and emitting the hidden
// state sequence (T × hidden). The paper's Volume-Speed mapping stacks two
// of these followed by fully connected layers (Table IV), with weights
// shared across all road links.
type LSTM struct {
	// Wx maps the input, Wh the previous hidden state, into the concatenated
	// gate pre-activations [i | f | o | g], each of width hidden.
	Wx, Wh, B *autodiff.Parameter
	hidden    int
}

// fusedLSTMOff disables the fused-cell path when set (the zero value keeps
// fusion on). The graph-op path stays available both as the oracle the
// equivalence tests compare against and as an escape hatch; the two paths
// produce bitwise-identical values and gradients (see autodiff.LSTMCell).
var fusedLSTMOff atomic.Bool

// SetFusedLSTM switches every LSTM in the process between the fused-cell
// forward (the default) and the unfused graph-op forward.
func SetFusedLSTM(on bool) { fusedLSTMOff.Store(!on) }

// FusedLSTMEnabled reports whether LSTM forwards use the fused cell.
func FusedLSTMEnabled() bool { return !fusedLSTMOff.Load() }

// NewLSTM constructs an LSTM with the given input and hidden sizes. The
// forget-gate bias is initialized to 1, the standard trick to preserve
// gradient flow early in training.
func NewLSTM(rng *rand.Rand, name string, in, hidden int) *LSTM {
	b := tensor.New(4 * hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data[i] = 1 // forget gate bias
	}
	l := &LSTM{
		Wx:     autodiff.NewParameter(name+".Wx", tensor.Xavier(rng, in, 4*hidden, in, 4*hidden)),
		Wh:     autodiff.NewParameter(name+".Wh", tensor.Xavier(rng, hidden, 4*hidden, hidden, 4*hidden)),
		B:      autodiff.NewParameter(name+".b", b),
		hidden: hidden,
	}
	// Both weight matrices are B-side GEMM operands that change only at
	// optimizer steps: prime candidates for the persistent pack cache.
	l.Wx.Value.MarkPackable()
	l.Wh.Value.MarkPackable()
	return l
}

// Hidden returns the hidden-state width.
func (l *LSTM) Hidden() int { return l.hidden }

// Forward runs the LSTM over the full sequence. x is (T × in); the result is
// (T × hidden), one row per timestep.
//
// The input projection for all timesteps is hoisted into one sequence-level
// GEMM, X·Wx + b, before the recurrence; the timestep loop then either
// records one fused autodiff.LSTMCell node per step (default) or the
// explicit graph-op chain the cell replaces.
func (l *LSTM) Forward(x *autodiff.Node, _ bool) *autodiff.Node {
	g := x.Graph()
	steps := x.Value.Dim(0)
	wx, wh, b := g.Param(l.Wx), g.Param(l.Wh), g.Param(l.B)
	pre := autodiff.AddRowVector(autodiff.MatMul(x, wx), b) // (T × 4*hidden)
	outs := make([]*autodiff.Node, steps)

	if FusedLSTMEnabled() {
		var prev *autodiff.Node
		for step := 0; step < steps; step++ {
			prev = autodiff.LSTMCell(pre, step, prev, wh, l.hidden)
			outs[step] = prev
		}
		return autodiff.StackRows(outs)
	}

	h := g.Const(g.Alloc(1, l.hidden))
	c := g.Const(g.Alloc(l.hidden))
	for step := 0; step < steps; step++ {
		flat := autodiff.Add(
			autodiff.Row(pre, step),
			autodiff.Reshape(autodiff.MatMul(h, wh), 4*l.hidden),
		)
		in := autodiff.Sigmoid(autodiff.SliceVec(flat, 0, l.hidden))
		fg := autodiff.Sigmoid(autodiff.SliceVec(flat, l.hidden, 2*l.hidden))
		og := autodiff.Sigmoid(autodiff.SliceVec(flat, 2*l.hidden, 3*l.hidden))
		gg := autodiff.Tanh(autodiff.SliceVec(flat, 3*l.hidden, 4*l.hidden))

		c = autodiff.Add(autodiff.Mul(fg, c), autodiff.Mul(in, gg))
		hFlat := autodiff.Mul(og, autodiff.Tanh(c))

		outs[step] = hFlat
		h = autodiff.Reshape(hFlat, 1, l.hidden)
	}
	return autodiff.StackRows(outs)
}

// Params returns the LSTM's trainable parameters.
func (l *LSTM) Params() []*autodiff.Parameter {
	return []*autodiff.Parameter{l.Wx, l.Wh, l.B}
}
