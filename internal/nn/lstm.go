package nn

import (
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// LSTM is a single-layer long short-term memory network processing a
// sequence laid out as a rank-2 tensor (T × in) and emitting the hidden
// state sequence (T × hidden). The paper's Volume-Speed mapping stacks two
// of these followed by fully connected layers (Table IV), with weights
// shared across all road links.
type LSTM struct {
	// Wx maps the input, Wh the previous hidden state, into the concatenated
	// gate pre-activations [i | f | o | g], each of width hidden.
	Wx, Wh, B *autodiff.Parameter
	hidden    int
}

// NewLSTM constructs an LSTM with the given input and hidden sizes. The
// forget-gate bias is initialized to 1, the standard trick to preserve
// gradient flow early in training.
func NewLSTM(rng *rand.Rand, name string, in, hidden int) *LSTM {
	b := tensor.New(4 * hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data[i] = 1 // forget gate bias
	}
	return &LSTM{
		Wx:     autodiff.NewParameter(name+".Wx", tensor.Xavier(rng, in, 4*hidden, in, 4*hidden)),
		Wh:     autodiff.NewParameter(name+".Wh", tensor.Xavier(rng, hidden, 4*hidden, hidden, 4*hidden)),
		B:      autodiff.NewParameter(name+".b", b),
		hidden: hidden,
	}
}

// Hidden returns the hidden-state width.
func (l *LSTM) Hidden() int { return l.hidden }

// Forward runs the LSTM over the full sequence. x is (T × in); the result is
// (T × hidden), one row per timestep.
func (l *LSTM) Forward(x *autodiff.Node, _ bool) *autodiff.Node {
	g := x.Graph()
	t := x.Value.Dim(0)
	h := g.Const(g.Alloc(1, l.hidden))
	c := g.Const(g.Alloc(1, l.hidden))
	wx, wh, b := g.Param(l.Wx), g.Param(l.Wh), g.Param(l.B)

	outs := make([]*autodiff.Node, t)
	for step := 0; step < t; step++ {
		xt := autodiff.Reshape(autodiff.Row(x, step), 1, x.Value.Dim(1))
		pre := autodiff.AddRowVector(
			autodiff.Add(autodiff.MatMul(xt, wx), autodiff.MatMul(h, wh)),
			b,
		) // (1 × 4*hidden)
		flat := autodiff.Reshape(pre, 4*l.hidden)
		in := autodiff.Sigmoid(autodiff.SliceVec(flat, 0, l.hidden))
		fg := autodiff.Sigmoid(autodiff.SliceVec(flat, l.hidden, 2*l.hidden))
		og := autodiff.Sigmoid(autodiff.SliceVec(flat, 2*l.hidden, 3*l.hidden))
		gg := autodiff.Tanh(autodiff.SliceVec(flat, 3*l.hidden, 4*l.hidden))

		cFlat := autodiff.Reshape(c, l.hidden)
		cNew := autodiff.Add(autodiff.Mul(fg, cFlat), autodiff.Mul(in, gg))
		hNew := autodiff.Mul(og, autodiff.Tanh(cNew))

		outs[step] = hNew
		h = autodiff.Reshape(hNew, 1, l.hidden)
		c = autodiff.Reshape(cNew, 1, l.hidden)
	}
	return autodiff.StackRows(outs)
}

// Params returns the LSTM's trainable parameters.
func (l *LSTM) Params() []*autodiff.Parameter {
	return []*autodiff.Parameter{l.Wx, l.Wh, l.B}
}
