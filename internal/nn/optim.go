package nn

import (
	"math"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients intact; callers typically
	// follow it with ZeroGrads.
	Step(params []*autodiff.Parameter)
}

// ZeroGrads clears the gradients of all given parameters.
func ZeroGrads(params []*autodiff.Parameter) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGrads scales gradients so their global L2 norm does not exceed max.
// It returns the pre-clip norm. Gradient clipping keeps the test-time
// TOD-generator fitting stable when the speed loss surface is steep.
func ClipGrads(params []*autodiff.Parameter, max float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*autodiff.Parameter]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*autodiff.Parameter]*tensor.Tensor)}
}

// Step applies one SGD update.
func (s *SGD) Step(params []*autodiff.Parameter) {
	for _, p := range params {
		if s.Momentum == 0 {
			tensor.AxpyInPlace(p.Value, -s.LR, p.Grad)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		for i := range v.Data {
			v.Data[i] = s.Momentum*v.Data[i] - s.LR*p.Grad.Data[i]
			p.Value.Data[i] += v.Data[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains with
// learning rate 0.001 (Table V), Adam's default.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step int
	m    map[*autodiff.Parameter]*tensor.Tensor
	v    map[*autodiff.Parameter]*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*autodiff.Parameter]*tensor.Tensor),
		v: make(map[*autodiff.Parameter]*tensor.Tensor),
	}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*autodiff.Parameter) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}
