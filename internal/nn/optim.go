package nn

import (
	"math"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients intact; callers typically
	// follow it with ZeroGrads.
	Step(params []*autodiff.Parameter)
}

// ZeroGrads clears the gradients of all given parameters.
func ZeroGrads(params []*autodiff.Parameter) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGrads scales gradients so their global L2 norm does not exceed max.
// It returns the pre-clip norm. Gradient clipping keeps the test-time
// TOD-generator fitting stable when the speed loss surface is steep.
// Frozen parameters take no part: they receive no gradient, contribute
// nothing to the norm, and are never scaled.
func ClipGrads(params []*autodiff.Parameter, max float64) float64 {
	total := 0.0
	for _, p := range params {
		if p.Frozen() {
			continue
		}
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			if p.Frozen() {
				continue
			}
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// sameParams reports whether the cached slot list still matches the
// parameter list passed to Step, pointer for pointer.
func sameParams(cached, params []*autodiff.Parameter) bool {
	if len(cached) != len(params) {
		return false
	}
	for i := range cached {
		if cached[i] != params[i] {
			return false
		}
	}
	return true
}

// SGD is plain stochastic gradient descent with optional momentum. Optimizer
// state lives in slices parallel to the parameter list (slot indexing,
// resolved once on the first Step), not in per-parameter maps, so the
// per-step cost is a plain slice walk. Frozen parameters are skipped.
type SGD struct {
	LR       float64
	Momentum float64

	params   []*autodiff.Parameter
	velocity []*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// rebind aligns the velocity slots with a new parameter list, carrying over
// the state of parameters present in the old list.
func (s *SGD) rebind(params []*autodiff.Parameter) {
	old := make(map[*autodiff.Parameter]*tensor.Tensor, len(s.params))
	for i, p := range s.params {
		old[p] = s.velocity[i]
	}
	s.params = append([]*autodiff.Parameter(nil), params...)
	s.velocity = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if v, ok := old[p]; ok {
			s.velocity[i] = v
		}
	}
}

// Step applies one SGD update. Frozen parameters are left untouched (their
// velocity, if any, is preserved but not applied or decayed).
func (s *SGD) Step(params []*autodiff.Parameter) {
	if !sameParams(s.params, params) {
		s.rebind(params)
	}
	for i, p := range params {
		if p.Frozen() {
			continue
		}
		//ovslint:ignore floateq Momentum==0 is a configuration sentinel meaning plain SGD, not a computed value
		if s.Momentum == 0 {
			tensor.AxpyInPlace(p.Value, -s.LR, p.Grad)
			continue
		}
		v := s.velocity[i]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[i] = v
		}
		tensor.SGDMomentumStepInPlace(p.Value, p.Grad, v, s.LR, s.Momentum)
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains with
// learning rate 0.001 (Table V), Adam's default. Moment state lives in slot
// slices parallel to the parameter list (see SGD); the per-element update is
// the fused tensor.AdamStepInPlace kernel. Frozen parameters are skipped
// entirely: no update, no moment decay.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step   int
	params []*autodiff.Parameter
	m, v   []*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// rebind aligns the moment slots with a new parameter list, carrying over
// the state of parameters present in the old list.
func (a *Adam) rebind(params []*autodiff.Parameter) {
	type moments struct{ m, v *tensor.Tensor }
	old := make(map[*autodiff.Parameter]moments, len(a.params))
	for i, p := range a.params {
		old[p] = moments{a.m[i], a.v[i]}
	}
	a.params = append([]*autodiff.Parameter(nil), params...)
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if st, ok := old[p]; ok {
			a.m[i] = st.m
			a.v[i] = st.v
		}
	}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*autodiff.Parameter) {
	if !sameParams(a.params, params) {
		a.rebind(params)
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		if p.Frozen() {
			continue
		}
		m := a.m[i]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			a.m[i] = m
			a.v[i] = tensor.New(p.Value.Shape()...)
		}
		tensor.AdamStepInPlace(p.Value, p.Grad, m, a.v[i], a.LR, a.Beta1, a.Beta2, a.Eps, bc1, bc2)
	}
}
