package nn

import (
	"fmt"
	"math"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients intact; callers typically
	// follow it with ZeroGrads.
	Step(params []*autodiff.Parameter)
}

// OptimizerState is the serializable snapshot of an optimizer's slot-slice
// state: the step counter, the hyperparameters, and the per-parameter moment
// tensors keyed by parameter name. A checkpointed training run restored with
// ImportState continues bitwise-identically to one that never stopped.
type OptimizerState struct {
	Kind     string      `json:"kind"` // "adam" | "sgd"
	Step     int         `json:"step,omitempty"`
	LR       float64     `json:"lr"`
	Beta1    float64     `json:"beta1,omitempty"`
	Beta2    float64     `json:"beta2,omitempty"`
	Eps      float64     `json:"eps,omitempty"`
	Momentum float64     `json:"momentum,omitempty"`
	Slots    []SlotState `json:"slots,omitempty"`
}

// SlotState is one parameter's optimizer slot: M is Adam's first moment (or
// SGD's velocity), V is Adam's second moment.
type SlotState struct {
	Name string    `json:"name"`
	M    []float64 `json:"m,omitempty"`
	V    []float64 `json:"v,omitempty"`
}

// StatefulOptimizer is an optimizer whose full state can be exported into a
// checkpoint and restored later.
type StatefulOptimizer interface {
	Optimizer
	// ExportState snapshots the optimizer against its current slot binding.
	// Slot data is copied, so the snapshot is stable while training continues.
	ExportState() OptimizerState
	// ImportState replaces the optimizer's state with st, rebinding the slots
	// to params. Every stored slot must name a parameter in params with a
	// matching element count; validation happens before any state is applied.
	ImportState(st OptimizerState, params []*autodiff.Parameter) error
}

// slotIndex maps parameter names to positions, erroring on duplicates so a
// corrupt checkpoint cannot silently bind two slots to one parameter.
func slotIndex(params []*autodiff.Parameter) (map[string]int, error) {
	idx := make(map[string]int, len(params))
	for i, p := range params {
		if _, dup := idx[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		idx[p.Name] = i
	}
	return idx, nil
}

// validateSlots checks every slot against the parameter index before any
// import mutates optimizer state.
func validateSlots(kind string, slots []SlotState, params []*autodiff.Parameter, idx map[string]int, wantV bool) error {
	seen := make(map[string]bool, len(slots))
	for _, s := range slots {
		if seen[s.Name] {
			return fmt.Errorf("nn: %s state holds duplicate slot %q", kind, s.Name)
		}
		seen[s.Name] = true
		i, ok := idx[s.Name]
		if !ok {
			return fmt.Errorf("nn: %s state holds slot for unknown parameter %q", kind, s.Name)
		}
		n := len(params[i].Value.Data)
		if len(s.M) != n {
			return fmt.Errorf("nn: %s slot %q has %d values, parameter has %d", kind, s.Name, len(s.M), n)
		}
		if wantV && len(s.V) != n {
			return fmt.Errorf("nn: %s slot %q second moment has %d values, parameter has %d", kind, s.Name, len(s.V), n)
		}
		if !wantV && len(s.V) != 0 {
			return fmt.Errorf("nn: %s slot %q carries a second moment", kind, s.Name)
		}
	}
	return nil
}

// ZeroGrads clears the gradients of all given parameters.
func ZeroGrads(params []*autodiff.Parameter) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGrads scales gradients so their global L2 norm does not exceed max.
// It returns the pre-clip norm. Gradient clipping keeps the test-time
// TOD-generator fitting stable when the speed loss surface is steep.
// Frozen parameters take no part: they receive no gradient, contribute
// nothing to the norm, and are never scaled.
func ClipGrads(params []*autodiff.Parameter, max float64) float64 {
	total := 0.0
	for _, p := range params {
		if p.Frozen() {
			continue
		}
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			if p.Frozen() {
				continue
			}
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// sameParams reports whether the cached slot list still matches the
// parameter list passed to Step, pointer for pointer.
func sameParams(cached, params []*autodiff.Parameter) bool {
	if len(cached) != len(params) {
		return false
	}
	for i := range cached {
		if cached[i] != params[i] {
			return false
		}
	}
	return true
}

// SGD is plain stochastic gradient descent with optional momentum. Optimizer
// state lives in slices parallel to the parameter list (slot indexing,
// resolved once on the first Step), not in per-parameter maps, so the
// per-step cost is a plain slice walk. Frozen parameters are skipped.
type SGD struct {
	LR       float64
	Momentum float64

	params   []*autodiff.Parameter
	velocity []*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// rebind aligns the velocity slots with a new parameter list, carrying over
// the state of parameters present in the old list.
func (s *SGD) rebind(params []*autodiff.Parameter) {
	old := make(map[*autodiff.Parameter]*tensor.Tensor, len(s.params))
	for i, p := range s.params {
		old[p] = s.velocity[i]
	}
	s.params = append([]*autodiff.Parameter(nil), params...)
	s.velocity = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if v, ok := old[p]; ok {
			s.velocity[i] = v
		}
	}
}

// Step applies one SGD update. Frozen parameters are left untouched (their
// velocity, if any, is preserved but not applied or decayed).
func (s *SGD) Step(params []*autodiff.Parameter) {
	if !sameParams(s.params, params) {
		s.rebind(params)
	}
	for i, p := range params {
		if p.Frozen() {
			continue
		}
		//ovslint:ignore floateq Momentum==0 is a configuration sentinel meaning plain SGD, not a computed value
		if s.Momentum == 0 {
			tensor.AxpyInPlace(p.Value, -s.LR, p.Grad)
			continue
		}
		v := s.velocity[i]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[i] = v
		}
		tensor.SGDMomentumStepInPlace(p.Value, p.Grad, v, s.LR, s.Momentum)
	}
}

// ExportState snapshots the velocity slots keyed by parameter name.
func (s *SGD) ExportState() OptimizerState {
	st := OptimizerState{Kind: "sgd", LR: s.LR, Momentum: s.Momentum}
	for i, p := range s.params {
		if s.velocity[i] == nil {
			continue
		}
		st.Slots = append(st.Slots, SlotState{
			Name: p.Name,
			M:    append([]float64(nil), s.velocity[i].Data...),
		})
	}
	return st
}

// ImportState restores a snapshot produced by ExportState, rebinding the
// velocity slots to params.
func (s *SGD) ImportState(st OptimizerState, params []*autodiff.Parameter) error {
	if st.Kind != "sgd" {
		return fmt.Errorf("nn: SGD cannot import %q state", st.Kind)
	}
	idx, err := slotIndex(params)
	if err != nil {
		return err
	}
	if err := validateSlots("sgd", st.Slots, params, idx, false); err != nil {
		return err
	}
	s.LR = st.LR
	s.Momentum = st.Momentum
	s.params = append([]*autodiff.Parameter(nil), params...)
	s.velocity = make([]*tensor.Tensor, len(params))
	for _, slot := range st.Slots {
		i := idx[slot.Name]
		v := tensor.New(params[i].Value.Shape()...)
		copy(v.Data, slot.M)
		s.velocity[i] = v
	}
	return nil
}

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains with
// learning rate 0.001 (Table V), Adam's default. Moment state lives in slot
// slices parallel to the parameter list (see SGD); the per-element update is
// the fused tensor.AdamStepInPlace kernel. Frozen parameters are skipped
// entirely: no update, no moment decay.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step   int
	params []*autodiff.Parameter
	m, v   []*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// rebind aligns the moment slots with a new parameter list, carrying over
// the state of parameters present in the old list.
func (a *Adam) rebind(params []*autodiff.Parameter) {
	type moments struct{ m, v *tensor.Tensor }
	old := make(map[*autodiff.Parameter]moments, len(a.params))
	for i, p := range a.params {
		old[p] = moments{a.m[i], a.v[i]}
	}
	a.params = append([]*autodiff.Parameter(nil), params...)
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if st, ok := old[p]; ok {
			a.m[i] = st.m
			a.v[i] = st.v
		}
	}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*autodiff.Parameter) {
	if !sameParams(a.params, params) {
		a.rebind(params)
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		if p.Frozen() {
			continue
		}
		m := a.m[i]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			a.m[i] = m
			a.v[i] = tensor.New(p.Value.Shape()...)
		}
		tensor.AdamStepInPlace(p.Value, p.Grad, m, a.v[i], a.LR, a.Beta1, a.Beta2, a.Eps, bc1, bc2)
	}
}

// ExportState snapshots the step counter and moment slots keyed by parameter
// name.
func (a *Adam) ExportState() OptimizerState {
	st := OptimizerState{Kind: "adam", Step: a.step, LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps}
	for i, p := range a.params {
		if a.m[i] == nil {
			continue
		}
		st.Slots = append(st.Slots, SlotState{
			Name: p.Name,
			M:    append([]float64(nil), a.m[i].Data...),
			V:    append([]float64(nil), a.v[i].Data...),
		})
	}
	return st
}

// ImportState restores a snapshot produced by ExportState, rebinding the
// moment slots to params. The step counter is restored too, so bias
// correction continues exactly where the exported run left off.
func (a *Adam) ImportState(st OptimizerState, params []*autodiff.Parameter) error {
	if st.Kind != "adam" {
		return fmt.Errorf("nn: Adam cannot import %q state", st.Kind)
	}
	idx, err := slotIndex(params)
	if err != nil {
		return err
	}
	if err := validateSlots("adam", st.Slots, params, idx, true); err != nil {
		return err
	}
	a.LR, a.Beta1, a.Beta2, a.Eps = st.LR, st.Beta1, st.Beta2, st.Eps
	a.step = st.Step
	a.params = append([]*autodiff.Parameter(nil), params...)
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for _, slot := range st.Slots {
		i := idx[slot.Name]
		m := tensor.New(params[i].Value.Shape()...)
		copy(m.Data, slot.M)
		v := tensor.New(params[i].Value.Shape()...)
		copy(v.Data, slot.V)
		a.m[i], a.v[i] = m, v
	}
	return nil
}
