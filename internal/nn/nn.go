// Package nn builds neural-network layers and optimizers on top of the
// autodiff engine. It provides exactly the building blocks Table IV of the
// paper requires — fully connected layers, 1×3 convolutions, LSTMs, dropout —
// plus SGD/Adam optimizers and parameter serialization.
package nn

import (
	"fmt"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// Activation names an elementwise nonlinearity applied after a layer.
type Activation int

const (
	// ActNone applies no nonlinearity.
	ActNone Activation = iota
	// ActSigmoid applies the logistic function.
	ActSigmoid
	// ActTanh applies the hyperbolic tangent.
	ActTanh
	// ActReLU applies max(0, x).
	ActReLU
)

// Apply applies the activation to a node.
func (a Activation) Apply(x *autodiff.Node) *autodiff.Node {
	switch a {
	case ActNone:
		return x
	case ActSigmoid:
		return autodiff.Sigmoid(x)
	case ActTanh:
		return autodiff.Tanh(x)
	case ActReLU:
		return autodiff.ReLU(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	case ActReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Layer is a differentiable transformation with trainable parameters.
// Forward records the layer's computation on the graph that produced x.
type Layer interface {
	Forward(x *autodiff.Node, train bool) *autodiff.Node
	Params() []*autodiff.Parameter
}

// Dense is a fully connected layer y = act(x·W + b) operating on rank-2
// inputs (batch × in) and producing (batch × out).
type Dense struct {
	W, B *autodiff.Parameter
	Act  Activation
}

// NewDense constructs a Dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, name string, in, out int, act Activation) *Dense {
	d := &Dense{
		W:   autodiff.NewParameter(name+".W", tensor.Xavier(rng, in, out, in, out)),
		B:   autodiff.NewParameter(name+".b", tensor.New(out)),
		Act: act,
	}
	// W is the B-side operand of the layer's GEMM and mutates only at
	// optimizer steps, so its packed panels are worth caching.
	d.W.Value.MarkPackable()
	return d
}

// Forward applies the layer. x must be rank-2 with x.Dim(1) == in.
func (d *Dense) Forward(x *autodiff.Node, _ bool) *autodiff.Node {
	g := x.Graph()
	z := autodiff.AddRowVector(autodiff.MatMul(x, g.Param(d.W)), g.Param(d.B))
	return d.Act.Apply(z)
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*autodiff.Parameter { return []*autodiff.Parameter{d.W, d.B} }

// Clone returns a deep copy of the layer with independent parameters and
// gradients.
func (d *Dense) Clone() *Dense {
	c := &Dense{
		W:   autodiff.NewParameter(d.W.Name, d.W.Value.Clone()),
		B:   autodiff.NewParameter(d.B.Name, d.B.Value.Clone()),
		Act: d.Act,
	}
	c.W.Value.MarkPackable()
	return c
}

// In returns the input width of the layer.
func (d *Dense) In() int { return d.W.Value.Dim(0) }

// Out returns the output width of the layer.
func (d *Dense) Out() int { return d.W.Value.Dim(1) }

// Conv1D is a multi-channel 1-D convolution with "same" padding along the
// time axis: input (Cin × T) → output (Cout × T).
type Conv1D struct {
	Kernels, B *autodiff.Parameter
	Act        Activation
}

// NewConv1D constructs a Conv1D layer with kernel width k (odd).
func NewConv1D(rng *rand.Rand, name string, cin, cout, k int, act Activation) *Conv1D {
	return &Conv1D{
		Kernels: autodiff.NewParameter(name+".K", tensor.Xavier(rng, cin*k, cout*k, cout, cin, k)),
		B:       autodiff.NewParameter(name+".b", tensor.New(cout)),
		Act:     act,
	}
}

// Forward applies the convolution.
func (c *Conv1D) Forward(x *autodiff.Node, _ bool) *autodiff.Node {
	g := x.Graph()
	return c.Act.Apply(autodiff.Conv1DSame(x, g.Param(c.Kernels), g.Param(c.B)))
}

// Params returns the layer's trainable parameters.
func (c *Conv1D) Params() []*autodiff.Parameter { return []*autodiff.Parameter{c.Kernels, c.B} }

// DropoutLayer applies inverted dropout during training.
type DropoutLayer struct {
	P   float64
	Rng *rand.Rand
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *DropoutLayer { return &DropoutLayer{P: p, Rng: rng} }

// Forward applies dropout when train is true; identity otherwise.
func (d *DropoutLayer) Forward(x *autodiff.Node, train bool) *autodiff.Node {
	return autodiff.Dropout(x, d.P, train, d.Rng)
}

// Params returns nil; dropout has no trainable state.
func (d *DropoutLayer) Params() []*autodiff.Parameter { return nil }

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward threads x through every layer in order.
func (s *Sequential) Forward(x *autodiff.Node, train bool) *autodiff.Node {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*autodiff.Parameter {
	var ps []*autodiff.Parameter
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// MLP builds a sigmoid multi-layer perceptron with the given layer widths,
// matching the FC stacks of Table IV (e.g. widths = [in, 16, 16, out]).
func MLP(rng *rand.Rand, name string, widths []int, hidden, final Activation) *Sequential {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i < len(widths)-1; i++ {
		act := hidden
		if i == len(widths)-2 {
			act = final
		}
		layers = append(layers, NewDense(rng, fmt.Sprintf("%s.fc%d", name, i), widths[i], widths[i+1], act))
	}
	return NewSequential(layers...)
}
