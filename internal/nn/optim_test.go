package nn

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

func optimParams(seed int64) []*autodiff.Parameter {
	rng := rand.New(rand.NewSource(seed))
	ps := []*autodiff.Parameter{
		autodiff.NewParameter("w1", tensor.Randn(rng, 1, 3, 4)),
		autodiff.NewParameter("w2", tensor.Randn(rng, 1, 5)),
	}
	for _, p := range ps {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
	}
	return ps
}

// TestOptimizersSkipFrozenParams is the regression test for the frozen-
// parameter audit: neither SGD (plain and momentum) nor Adam may touch a
// frozen parameter's value — or decay its state — even when a stale gradient
// is present.
func TestOptimizersSkipFrozenParams(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", NewSGD(0.1, 0)},
		{"sgd-momentum", NewSGD(0.1, 0.9)},
		{"adam", NewAdam(0.1)},
	} {
		params := optimParams(3)
		params[1].SetFrozen(true)
		frozenBefore := params[1].Value.Clone()
		liveBefore := params[0].Value.Clone()

		tc.opt.Step(params)
		if !tensor.AllClose(params[1].Value, frozenBefore, 0) {
			t.Fatalf("%s: frozen parameter was updated", tc.name)
		}
		if tensor.AllClose(params[0].Value, liveBefore, 0) {
			t.Fatalf("%s: live parameter was not updated", tc.name)
		}

		// Unfreezing resumes updates.
		params[1].SetFrozen(false)
		tc.opt.Step(params)
		if tensor.AllClose(params[1].Value, frozenBefore, 0) {
			t.Fatalf("%s: unfrozen parameter still not updated", tc.name)
		}
	}
}

// TestClipGradsExcludesFrozen checks that frozen parameters neither inflate
// the global norm nor get scaled.
func TestClipGradsExcludesFrozen(t *testing.T) {
	params := optimParams(5)
	params[1].SetFrozen(true)
	for i := range params[1].Grad.Data {
		params[1].Grad.Data[i] = 1e6 // would dominate the norm if counted
	}
	frozenGrad := params[1].Grad.Clone()

	want := 0.0
	for _, g := range params[0].Grad.Data {
		want += g * g
	}
	want = math.Sqrt(want)

	norm := ClipGrads(params, want/2)
	if norm != want {
		t.Fatalf("ClipGrads norm %v, want %v (frozen grads excluded)", norm, want)
	}
	if !tensor.AllClose(params[1].Grad, frozenGrad, 0) {
		t.Fatal("ClipGrads scaled a frozen parameter's gradient")
	}
	got := 0.0
	for _, g := range params[0].Grad.Data {
		got += g * g
	}
	if math.Abs(math.Sqrt(got)-want/2) > 1e-12 {
		t.Fatalf("post-clip norm %v, want %v", math.Sqrt(got), want/2)
	}
}

// refAdam is the pre-slot, map-based Adam kept as a reference implementation:
// the slot-indexed optimizer must match it bitwise.
type refAdam struct {
	lr, beta1, beta2, eps float64
	step                  int
	m, v                  map[*autodiff.Parameter]*tensor.Tensor
}

func (a *refAdam) Step(params []*autodiff.Parameter) {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for _, p := range params {
		if p.Frozen() {
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.beta1*m.Data[i] + (1-a.beta1)*g
			v.Data[i] = a.beta2*v.Data[i] + (1-a.beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.Value.Data[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
	}
}

// TestAdamSlotMatchesReference runs the slot-indexed Adam and the reference
// map-based Adam over several steps with fresh gradients each step; values
// must stay bitwise-identical throughout.
func TestAdamSlotMatchesReference(t *testing.T) {
	slot := optimParams(7)
	ref := optimParams(7)

	opt := NewAdam(0.01)
	refOpt := &refAdam{
		lr: 0.01, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: map[*autodiff.Parameter]*tensor.Tensor{},
		v: map[*autodiff.Parameter]*tensor.Tensor{},
	}

	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 5; step++ {
		for k := range slot {
			for i := range slot[k].Grad.Data {
				g := rng.NormFloat64()
				slot[k].Grad.Data[i] = g
				ref[k].Grad.Data[i] = g
			}
		}
		opt.Step(slot)
		refOpt.Step(ref)
		for k := range slot {
			if !tensor.AllClose(slot[k].Value, ref[k].Value, 0) {
				t.Fatalf("step %d: slot Adam diverges from reference on param %d", step, k)
			}
		}
	}
}

// TestOptimizerRebindPreservesState checks that passing a reordered (or
// shrunk) parameter list keeps each parameter's moment state: the update
// sequence must match an optimizer that saw a stable ordering.
func TestOptimizerRebindPreservesState(t *testing.T) {
	stable := optimParams(11)
	reorder := optimParams(11)

	optStable := NewAdam(0.01)
	optReorder := NewAdam(0.01)

	rng := rand.New(rand.NewSource(13))
	setGrads := func(ps []*autodiff.Parameter, seed []float64) {
		idx := 0
		for _, p := range ps {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = seed[idx]
				idx++
			}
		}
	}
	total := 0
	for _, p := range stable {
		total += len(p.Grad.Data)
	}
	for step := 0; step < 4; step++ {
		seed := make([]float64, total)
		for i := range seed {
			seed[i] = rng.NormFloat64()
		}
		setGrads(stable, seed)
		setGrads(reorder, seed)
		optStable.Step(stable)
		if step%2 == 0 {
			optReorder.Step(reorder)
		} else {
			// Reversed list: rebind must carry the moments over by identity.
			optReorder.Step([]*autodiff.Parameter{reorder[1], reorder[0]})
		}
		for k := range stable {
			if !tensor.AllClose(stable[k].Value, reorder[k].Value, 0) {
				t.Fatalf("step %d: rebind lost optimizer state on param %d", step, k)
			}
		}
	}
}

// refreshGrads redraws deterministic gradients so successive steps differ.
func refreshGrads(ps []*autodiff.Parameter, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range ps {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
	}
}

// An optimizer whose state is exported after k steps and imported into a
// fresh instance must continue bitwise-identically to one that never
// stopped — the property checkpoint resume is built on.
func TestAdamExportImportContinuesIdentically(t *testing.T) {
	cont := optimParams(11)
	res := optimParams(11)
	a1 := NewAdam(0.01)
	a2 := NewAdam(0.01)
	for step := 0; step < 3; step++ {
		refreshGrads(cont, int64(100+step))
		refreshGrads(res, int64(100+step))
		a1.Step(cont)
		a2.Step(res)
	}
	st := a2.ExportState()
	if st.Kind != "adam" || st.Step != 3 || len(st.Slots) != 2 {
		t.Fatalf("export = kind %q step %d slots %d", st.Kind, st.Step, len(st.Slots))
	}
	a3 := NewAdam(0.5) // wrong LR on purpose: import must restore the exported one
	if err := a3.ImportState(st, res); err != nil {
		t.Fatal(err)
	}
	for step := 3; step < 6; step++ {
		refreshGrads(cont, int64(100+step))
		refreshGrads(res, int64(100+step))
		a1.Step(cont)
		a3.Step(res)
	}
	for i := range cont {
		for j, v := range cont[i].Value.Data {
			if res[i].Value.Data[j] != v {
				t.Fatalf("resumed Adam diverges on %q[%d]: %v vs %v",
					cont[i].Name, j, res[i].Value.Data[j], v)
			}
		}
	}
}

func TestSGDExportImportContinuesIdentically(t *testing.T) {
	cont := optimParams(12)
	res := optimParams(12)
	s1 := NewSGD(0.05, 0.9)
	s2 := NewSGD(0.05, 0.9)
	for step := 0; step < 3; step++ {
		refreshGrads(cont, int64(200+step))
		refreshGrads(res, int64(200+step))
		s1.Step(cont)
		s2.Step(res)
	}
	st := s2.ExportState()
	if st.Kind != "sgd" || len(st.Slots) != 2 {
		t.Fatalf("export = kind %q slots %d", st.Kind, len(st.Slots))
	}
	s3 := NewSGD(1, 0) // wrong hyperparameters on purpose
	if err := s3.ImportState(st, res); err != nil {
		t.Fatal(err)
	}
	for step := 3; step < 6; step++ {
		refreshGrads(cont, int64(200+step))
		refreshGrads(res, int64(200+step))
		s1.Step(cont)
		s3.Step(res)
	}
	for i := range cont {
		for j, v := range cont[i].Value.Data {
			if res[i].Value.Data[j] != v {
				t.Fatalf("resumed SGD diverges on %q[%d]", cont[i].Name, j)
			}
		}
	}
}

func TestOptimizerImportRejectsCorruptState(t *testing.T) {
	ps := optimParams(13)
	a := NewAdam(0.01)
	a.Step(ps)
	good := a.ExportState()

	cases := map[string]OptimizerState{
		"wrong kind":   {Kind: "sgd", LR: 0.01},
		"unknown slot": {Kind: "adam", LR: 0.01, Slots: []SlotState{{Name: "nope", M: []float64{1}, V: []float64{1}}}},
		"short moment": {Kind: "adam", LR: 0.01, Slots: []SlotState{{Name: "w2", M: []float64{1}, V: []float64{1}}}},
		"duplicate slot": {Kind: "adam", LR: 0.01, Slots: []SlotState{
			good.Slots[0], good.Slots[0],
		}},
	}
	for name, st := range cases {
		fresh := NewAdam(0.01)
		if err := fresh.ImportState(st, ps); err == nil {
			t.Fatalf("%s: corrupt optimizer state accepted", name)
		}
	}
	// SGD must reject a slot that carries a second moment.
	s := NewSGD(0.1, 0.9)
	bad := OptimizerState{Kind: "sgd", LR: 0.1, Slots: []SlotState{
		{Name: "w2", M: make([]float64, 5), V: make([]float64, 5)},
	}}
	if err := s.ImportState(bad, ps); err == nil {
		t.Fatal("sgd slot with a second moment accepted")
	}
}
