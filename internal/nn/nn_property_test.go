package nn

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// TestDenseIsAffine verifies Dense with no activation is exactly affine:
// f(αx + βy) = αf(x) + βf(y) − (α+β−1)·b-term, checked via superposition of
// differences which cancels the bias.
func TestDenseIsAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, "d", 4, 3, ActNone)
	forward := func(x *tensor.Tensor) *tensor.Tensor {
		g := autodiff.NewGraph()
		return d.Forward(g.Const(x), false).Value
	}
	for trial := 0; trial < 30; trial++ {
		x := tensor.Randn(rng, 1, 2, 4)
		y := tensor.Randn(rng, 1, 2, 4)
		// f(x) + f(y) - f((x+y)/2)*2 should be ~0 for affine f... actually:
		// f(x) - f(y) must equal W(x - y): compare f(x)-f(y) with
		// f(x-y+z)-f(z) for a third point z (bias cancels in both).
		z := tensor.Randn(rng, 1, 2, 4)
		lhs := tensor.Sub(forward(x), forward(y))
		xyz := tensor.Add(tensor.Sub(x, y), z)
		rhs := tensor.Sub(forward(xyz), forward(z))
		if !tensor.AllClose(lhs, rhs, 1e-9) {
			t.Fatalf("Dense(ActNone) not affine at trial %d", trial)
		}
	}
}

// TestLSTMCausalityProperty: changing the input at time t must not change
// outputs before t, for random inputs and random change points.
func TestLSTMCausalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(rng, "l", 3, 5)
	const T = 7
	for trial := 0; trial < 20; trial++ {
		x := tensor.Randn(rng, 1, T, 3)
		tc := 1 + rng.Intn(T-1)
		y1 := func() *tensor.Tensor {
			g := autodiff.NewGraph()
			return l.Forward(g.Const(x), false).Value
		}()
		x2 := x.Clone()
		x2.Set(x2.At(tc, 0)+5, tc, 0)
		g := autodiff.NewGraph()
		y2 := l.Forward(g.Const(x2), false).Value
		for step := 0; step < tc; step++ {
			if !tensor.AllClose(y1.Row(step), y2.Row(step), 1e-12) {
				t.Fatalf("trial %d: output at %d changed by future input at %d", trial, step, tc)
			}
		}
		// And the change must propagate forward (LSTM is not degenerate).
		if tensor.AllClose(y1.Row(tc), y2.Row(tc), 1e-12) {
			t.Fatalf("trial %d: input change at %d had no effect", trial, tc)
		}
	}
}

// TestLSTMOutputBounded: tanh(cell)·sigmoid(gate) keeps every hidden value
// in (−1, 1) regardless of input magnitude.
func TestLSTMOutputBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(rng, "l", 2, 4)
	x := tensor.Scale(tensor.Randn(rng, 1, 10, 2), 100) // huge inputs
	g := autodiff.NewGraph()
	y := l.Forward(g.Const(x), false).Value
	for _, v := range y.Data {
		if math.Abs(v) >= 1 {
			t.Fatalf("LSTM output %v out of (-1,1)", v)
		}
	}
}

// TestAdamBeatsSGDOnIllConditioned: on an ill-conditioned quadratic, Adam's
// per-coordinate scaling should reach the optimum faster than plain SGD at
// the largest stable SGD learning rate.
func TestAdamBeatsSGDOnIllConditioned(t *testing.T) {
	// Loss: 0.5·(100 x² + y²); gradient (100x, y).
	grad := func(p *autodiff.Parameter) {
		p.Grad.Data[0] = 100 * p.Value.Data[0]
		p.Grad.Data[1] = p.Value.Data[1]
	}
	run := func(opt Optimizer) float64 {
		p := autodiff.NewParameter("p", tensor.FromSlice([]float64{1, 1}, 2))
		for i := 0; i < 120; i++ {
			grad(p)
			opt.Step([]*autodiff.Parameter{p})
			p.ZeroGrad()
		}
		return 50*p.Value.Data[0]*p.Value.Data[0] + 0.5*p.Value.Data[1]*p.Value.Data[1]
	}
	sgd := run(NewSGD(0.015, 0)) // ~largest stable LR for curvature 100
	adam := run(NewAdam(0.1))
	if adam >= sgd {
		t.Fatalf("Adam (%v) did not beat SGD (%v) on ill-conditioned quadratic", adam, sgd)
	}
}

// TestDropoutPreservesExpectation: inverted dropout keeps E[output] ≈ input.
func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(rng, 0.4)
	x := tensor.Ones(1, 10000)
	g := autodiff.NewGraph()
	y := d.Forward(g.Const(x), true)
	if mean := y.Value.Mean(); math.Abs(mean-1) > 0.05 {
		t.Fatalf("dropout mean = %v, want ≈1", mean)
	}
}

// TestConv1DTranslationCovariance: shifting the input in time shifts the
// output (away from the zero-padded edges).
func TestConv1DTranslationCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv1D(rng, "c", 1, 2, 3, ActNone)
	const T = 12
	x := tensor.New(1, T)
	x.Set(1, 0, 4)
	x.Set(2, 0, 5)
	g := autodiff.NewGraph()
	y1 := c.Forward(g.Const(x), false).Value
	// Shift by 2.
	x2 := tensor.New(1, T)
	x2.Set(1, 0, 6)
	x2.Set(2, 0, 7)
	g2 := autodiff.NewGraph()
	y2 := c.Forward(g2.Const(x2), false).Value
	for ch := 0; ch < 2; ch++ {
		for tt := 2; tt < T-4; tt++ {
			if math.Abs(y1.At(ch, tt)-y2.At(ch, tt+2)) > 1e-9 {
				t.Fatalf("conv not translation covariant at ch=%d t=%d", ch, tt)
			}
		}
	}
}
