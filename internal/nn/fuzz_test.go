package nn

import (
	"bytes"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// FuzzLoadParams drives the parameter loader with arbitrary documents. The
// loader must never panic — corrupt JSON, shape/length mismatches, negative
// dimensions and duplicate names all have to surface as errors — and a
// failed load must leave the target parameters untouched (no half-applied
// state from a partially valid stream).
func FuzzLoadParams(f *testing.F) {
	// A valid stream for the fuzz target's parameter set.
	f.Add([]byte(`[{"name":"w","shape":[2,3],"data":[1,2,3,4,5,6]},{"name":"b","shape":[3],"data":[0,0,0]}]`))
	// Length disagrees with shape.
	f.Add([]byte(`[{"name":"w","shape":[2,3],"data":[1,2]},{"name":"b","shape":[3],"data":[0,0,0]}]`))
	// Negative dimension.
	f.Add([]byte(`[{"name":"w","shape":[-2,-3],"data":[1,2,3,4,5,6]},{"name":"b","shape":[3],"data":[0,0,0]}]`))
	// Huge dimensions whose product overflows int64.
	f.Add([]byte(`[{"name":"w","shape":[4611686018427387904,4],"data":[]},{"name":"b","shape":[3],"data":[0,0,0]}]`))
	// Duplicate names (last record would silently win in a naive loader).
	f.Add([]byte(`[{"name":"w","shape":[2,3],"data":[1,2,3,4,5,6]},{"name":"w","shape":[2,3],"data":[9,9,9,9,9,9]},{"name":"b","shape":[3],"data":[0,0,0]}]`))
	// Truncated document and non-array JSON.
	f.Add([]byte(`[{"name":"w","shape":[2,3],"data":[1,2,3`))
	f.Add([]byte(`{"name":"w"}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		params := []*autodiff.Parameter{
			autodiff.NewParameter("w", tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)),
			autodiff.NewParameter("b", tensor.FromSlice([]float64{7, 8, 9}, 3)),
		}
		before := make([][]float64, len(params))
		for i, p := range params {
			before[i] = append([]float64(nil), p.Value.Data...)
		}
		if err := LoadParams(bytes.NewReader(data), params); err != nil {
			// A failed load must be all-or-nothing: no parameter may have
			// changed.
			for i, p := range params {
				for j, v := range p.Value.Data {
					if v != before[i][j] {
						t.Fatalf("failed load mutated parameter %q", p.Name)
					}
				}
			}
		}
	})
}
