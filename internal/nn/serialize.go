package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// paramRecord is the on-disk form of one parameter.
type paramRecord struct {
	Name  string    `json:"name"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// SaveParams writes the parameters as a JSON array. Parameter names must be
// unique; they key the values back on load.
func SaveParams(w io.Writer, params []*autodiff.Parameter) error {
	seen := make(map[string]bool, len(params))
	records := make([]paramRecord, 0, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		records = append(records, paramRecord{Name: p.Name, Shape: p.Value.Shape(), Data: p.Value.Data})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// LoadParams reads a JSON array written by SaveParams and copies values into
// matching parameters by name. Every target parameter must be present in the
// stream with a matching shape.
func LoadParams(r io.Reader, params []*autodiff.Parameter) error {
	var records []paramRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	byName := make(map[string]paramRecord, len(records))
	for _, rec := range records {
		byName[rec.Name] = rec
	}
	for _, p := range params {
		rec, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: parameter %q missing from stream", p.Name)
		}
		stored := tensor.FromSlice(rec.Data, rec.Shape...)
		if !stored.SameShape(p.Value) {
			return fmt.Errorf("nn: parameter %q shape %v does not match stored %v", p.Name, p.Value.Shape(), rec.Shape)
		}
		copy(p.Value.Data, stored.Data)
	}
	return nil
}
