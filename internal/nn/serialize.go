package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"ovs/internal/autodiff"
)

// ParamState is the serializable snapshot of one parameter tensor. It is the
// on-disk form used by SaveParams/LoadParams and the in-memory form embedded
// into training checkpoints (internal/ckpt).
type ParamState struct {
	Name  string    `json:"name"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// CaptureParams snapshots the parameters into serializable records. The data
// slices are copied, so the snapshot stays stable while training continues.
// Parameter names must be unique; they key the values back on restore.
func CaptureParams(params []*autodiff.Parameter) ([]ParamState, error) {
	seen := make(map[string]bool, len(params))
	records := make([]ParamState, 0, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		records = append(records, ParamState{
			Name:  p.Name,
			Shape: p.Value.Shape(),
			Data:  append([]float64(nil), p.Value.Data...),
		})
	}
	return records, nil
}

// RestoreParams copies captured values back into matching parameters by
// name. Every target parameter must be present exactly once with a matching
// shape and a data length consistent with that shape. All records are
// validated before any parameter is written, so a corrupt or hand-edited
// stream can never half-overwrite a model: either every parameter is
// restored or none is.
func RestoreParams(params []*autodiff.Parameter, records []ParamState) error {
	byName := make(map[string]ParamState, len(records))
	for _, rec := range records {
		if _, dup := byName[rec.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter %q in stream", rec.Name)
		}
		byName[rec.Name] = rec
	}
	// Validation pass: no writes until every record checks out.
	for _, p := range params {
		rec, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: parameter %q missing from stream", p.Name)
		}
		if !shapesEqual(rec.Shape, p.Value.Shape()) {
			return fmt.Errorf("nn: parameter %q shape %v does not match stored %v", p.Name, p.Value.Shape(), rec.Shape)
		}
		if len(rec.Data) != len(p.Value.Data) {
			return fmt.Errorf("nn: parameter %q has %d values for shape %v (want %d)",
				p.Name, len(rec.Data), rec.Shape, len(p.Value.Data))
		}
	}
	for _, p := range params {
		copy(p.Value.Data, byName[p.Name].Data)
		// Restoring overwrites the weight in place; the pack cache must see
		// the version move.
		p.Value.NoteMutation()
	}
	return nil
}

// shapesEqual compares two shape vectors element-wise. Comparing against the
// live parameter's shape (always positive dimensions) implicitly rejects
// negative or zero dimensions in the stored record without ever constructing
// a tensor from untrusted data.
func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SaveParams writes the parameters as a JSON array. Parameter names must be
// unique; they key the values back on load.
func SaveParams(w io.Writer, params []*autodiff.Parameter) error {
	records, err := CaptureParams(params)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// LoadParams reads a JSON array written by SaveParams and copies values into
// matching parameters by name. Every target parameter must be present in the
// stream exactly once with a matching shape; malformed input of any kind —
// bad JSON, duplicate names, shape/length mismatches, negative dimensions —
// returns an error and leaves the parameters untouched.
func LoadParams(r io.Reader, params []*autodiff.Parameter) error {
	var records []ParamState
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	return RestoreParams(params, records)
}
