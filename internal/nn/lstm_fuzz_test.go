package nn

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// FuzzLSTMCell cross-checks the fused LSTM cell against the unfused graph-op
// path over random sequence/input/hidden sizes with special values (signed
// zeros, infinities, NaN, extreme magnitudes) planted at fuzzer-chosen
// positions. Outputs and all three parameter gradients must agree bitwise —
// NaN payload bits excepted, since x86 NaN propagation follows instruction
// operand order, which the compiler owns (see autodiff.LSTMCell).
func FuzzLSTMCell(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(4), int64(1), []byte{})
	f.Add(uint8(1), uint8(1), uint8(1), int64(2), []byte{0xFF, 0x00, 0x02})
	f.Add(uint8(12), uint8(5), uint8(9), int64(3), []byte{1, 2, 3, 4, 5, 6})
	f.Add(uint8(7), uint8(4), uint8(16), int64(4), []byte{0, 0, 2, 1, 3, 0, 2, 7, 1, 3, 1, 3})
	f.Fuzz(func(t *testing.T, stepsRaw, inRaw, hiddenRaw uint8, seed int64, special []byte) {
		steps := int(stepsRaw)%16 + 1
		in := int(inRaw)%8 + 1
		hidden := int(hiddenRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		l := NewLSTM(rng, "fuzz", in, hidden)
		x := tensor.Randn(rng, 1, steps, in)
		seedWeights := tensor.Randn(rng, 1, steps, hidden)

		specials := []float64{
			math.Inf(1), math.Inf(-1), math.NaN(), math.Copysign(0, -1),
			0, 1e308, -1e308, 5e-324,
		}
		targets := [][]float64{x.Data, l.Wx.Value.Data, l.Wh.Value.Data, l.B.Value.Data}
		for i := 0; i+2 < len(special); i += 3 {
			dst := targets[int(special[i])%len(targets)]
			dst[int(special[i+1])%len(dst)] = specials[int(special[i+2])%len(specials)]
		}

		run := func(fused bool) (*tensor.Tensor, [][]float64) {
			SetFusedLSTM(fused)
			defer SetFusedLSTM(true)
			for _, p := range l.Params() {
				p.ZeroGrad()
			}
			g := autodiff.NewGraph()
			defer g.Release()
			out := l.Forward(g.Const(x), false)
			loss := autodiff.Sum(autodiff.Mul(out, g.Const(seedWeights)))
			g.Backward(loss)
			grads := make([][]float64, 0, 3)
			for _, p := range l.Params() {
				grads = append(grads, append([]float64(nil), p.Grad.Data...))
			}
			return out.Value.Clone(), grads
		}

		fusedOut, fusedGrads := run(true)
		refOut, refGrads := run(false)

		check := func(what string, got, want []float64) {
			t.Helper()
			for i := range got {
				if math.IsNaN(got[i]) && math.IsNaN(want[i]) {
					continue
				}
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("T=%d in=%d hidden=%d: %s[%d] fused %v (%#x) vs unfused %v (%#x)",
						steps, in, hidden, what, i,
						got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
				}
			}
		}
		check("output", fusedOut.Data, refOut.Data)
		for i, p := range l.Params() {
			check(p.Name+".Grad", fusedGrads[i], refGrads[i])
		}
	})
}
