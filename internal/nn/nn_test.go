package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

func TestDenseShapesAndForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, "d", 3, 5, ActNone)
	if d.In() != 3 || d.Out() != 5 {
		t.Fatalf("In/Out = %d/%d", d.In(), d.Out())
	}
	g := autodiff.NewGraph()
	x := g.Const(tensor.Ones(4, 3))
	y := d.Forward(x, false)
	if y.Value.Dim(0) != 4 || y.Value.Dim(1) != 5 {
		t.Fatalf("output shape %v", y.Value.Shape())
	}
	// With zero bias, identical rows in must give identical rows out.
	for j := 0; j < 5; j++ {
		if y.Value.At(0, j) != y.Value.At(3, j) {
			t.Fatal("identical input rows produced different outputs")
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mlp := MLP(rng, "xor", []int{2, 8, 1}, ActTanh, ActSigmoid)
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	y := tensor.FromSlice([]float64{0, 1, 1, 0}, 4, 1)
	opt := NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 800; epoch++ {
		g := autodiff.NewGraph()
		out := mlp.Forward(g.Const(x), true)
		l := autodiff.MSE(out, y)
		loss = l.Value.Data[0]
		g.Backward(l)
		opt.Step(mlp.Params())
		ZeroGrads(mlp.Params())
	}
	if loss > 0.02 {
		t.Fatalf("XOR did not converge: loss=%v", loss)
	}
	g := autodiff.NewGraph()
	out := mlp.Forward(g.Const(x), false)
	for i := 0; i < 4; i++ {
		pred := out.Value.At(i, 0) > 0.5
		want := y.At(i, 0) > 0.5
		if pred != want {
			t.Fatalf("XOR row %d misclassified: %v", i, out.Value)
		}
	}
}

func TestConv1DLayerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv1D(rng, "c", 2, 4, 3, ActReLU)
	g := autodiff.NewGraph()
	x := g.Const(tensor.Randn(rng, 1, 2, 9))
	y := c.Forward(x, false)
	if y.Value.Dim(0) != 4 || y.Value.Dim(1) != 9 {
		t.Fatalf("conv output shape %v, want [4 9]", y.Value.Shape())
	}
	for _, v := range y.Value.Data {
		if v < 0 {
			t.Fatal("ReLU output contains negatives")
		}
	}
}

func TestLSTMShapesAndStatefulness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(rng, "l", 2, 6)
	if l.Hidden() != 6 {
		t.Fatalf("Hidden = %d", l.Hidden())
	}
	g := autodiff.NewGraph()
	x := tensor.New(5, 2)
	x.Set(1, 2, 0) // single spike at t=2
	y := l.Forward(g.Const(x), false)
	if y.Value.Dim(0) != 5 || y.Value.Dim(1) != 6 {
		t.Fatalf("LSTM output shape %v, want [5 6]", y.Value.Shape())
	}
	// Zero input before the spike: identical state evolution at t=0,1, so
	// outputs there must be equal; the spike must change t=2 onward.
	r0, r1, r2 := y.Value.Row(0), y.Value.Row(1), y.Value.Row(2)
	if tensor.AllClose(r1, r2, 1e-9) {
		t.Fatal("spike at t=2 did not affect output")
	}
	_ = r0
	// Causality: truncating future input must not change past outputs.
	g2 := autodiff.NewGraph()
	xShort := tensor.New(3, 2)
	xShort.Set(1, 2, 0)
	yShort := l.Forward(g2.Const(xShort), false)
	for step := 0; step < 3; step++ {
		if !tensor.AllClose(yShort.Value.Row(step), y.Value.Row(step), 1e-12) {
			t.Fatalf("LSTM is not causal at step %d", step)
		}
	}
}

func TestLSTMLearnsRunningMean(t *testing.T) {
	// Task: output at time t should approximate the mean of inputs up to t —
	// requires integrating state, which a stateless map cannot do.
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(rng, "l", 1, 8)
	head := NewDense(rng, "head", 8, 1, ActNone)
	params := append(l.Params(), head.Params()...)
	opt := NewAdam(0.01)

	const T = 6
	sample := func(rng *rand.Rand) (*tensor.Tensor, *tensor.Tensor) {
		x := tensor.New(T, 1)
		y := tensor.New(T, 1)
		sum := 0.0
		for i := 0; i < T; i++ {
			v := rng.Float64()
			sum += v
			x.Set(v, i, 0)
			y.Set(sum/float64(i+1), i, 0)
		}
		return x, y
	}
	var loss float64
	for epoch := 0; epoch < 300; epoch++ {
		x, y := sample(rng)
		g := autodiff.NewGraph()
		out := head.Forward(l.Forward(g.Const(x), true), true)
		lnode := autodiff.MSE(out, y)
		loss = lnode.Value.Data[0]
		g.Backward(lnode)
		opt.Step(params)
		ZeroGrads(params)
	}
	if loss > 0.01 {
		t.Fatalf("LSTM did not learn running mean: loss=%v", loss)
	}
}

func TestSGDMomentumDiffersFromPlain(t *testing.T) {
	p1 := autodiff.NewParameter("p1", tensor.FromSlice([]float64{1}, 1))
	p2 := autodiff.NewParameter("p2", tensor.FromSlice([]float64{1}, 1))
	plain := NewSGD(0.1, 0)
	mom := NewSGD(0.1, 0.9)
	for i := 0; i < 3; i++ {
		p1.Grad.Data[0] = 1
		p2.Grad.Data[0] = 1
		plain.Step([]*autodiff.Parameter{p1})
		mom.Step([]*autodiff.Parameter{p2})
	}
	if p1.Value.Data[0] <= p2.Value.Data[0] {
		t.Fatalf("momentum should have moved farther: plain=%v momentum=%v", p1.Value.Data[0], p2.Value.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := autodiff.NewParameter("p", tensor.FromSlice([]float64{5, -3}, 2))
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		// grad of 0.5*||p||^2 is p
		copy(p.Grad.Data, p.Value.Data)
		opt.Step([]*autodiff.Parameter{p})
		p.ZeroGrad()
	}
	if p.Value.Norm2() > 1e-2 {
		t.Fatalf("Adam failed to minimize quadratic: %v", p.Value)
	}
}

func TestClipGrads(t *testing.T) {
	p := autodiff.NewParameter("p", tensor.New(2))
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGrads([]*autodiff.Parameter{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	if math.Abs(p.Grad.Norm2()-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", p.Grad.Norm2())
	}
	// Below the threshold nothing changes.
	ClipGrads([]*autodiff.Parameter{p}, 10)
	if math.Abs(p.Grad.Norm2()-1) > 1e-12 {
		t.Fatal("clip below threshold modified gradients")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mlp := MLP(rng, "m", []int{3, 4, 2}, ActSigmoid, ActNone)
	var buf bytes.Buffer
	if err := SaveParams(&buf, mlp.Params()); err != nil {
		t.Fatal(err)
	}
	// Fresh network with different weights.
	mlp2 := MLP(rand.New(rand.NewSource(99)), "m", []int{3, 4, 2}, ActSigmoid, ActNone)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), mlp2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range mlp.Params() {
		if !tensor.AllClose(p.Value, mlp2.Params()[i].Value, 0) {
			t.Fatalf("param %q differs after round trip", p.Name)
		}
	}
}

func TestLoadParamsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mlp := MLP(rng, "m", []int{2, 2}, ActNone, ActNone)
	var buf bytes.Buffer
	if err := SaveParams(&buf, mlp.Params()); err != nil {
		t.Fatal(err)
	}
	// Missing parameter.
	other := MLP(rng, "other", []int{2, 2}, ActNone, ActNone)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("expected error for missing parameter name")
	}
	// Shape mismatch.
	bigger := MLP(rng, "m", []int{3, 2}, ActNone, ActNone)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), bigger.Params()); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestSaveParamsRejectsDuplicates(t *testing.T) {
	p := autodiff.NewParameter("dup", tensor.New(1))
	q := autodiff.NewParameter("dup", tensor.New(1))
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*autodiff.Parameter{p, q}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestActivationString(t *testing.T) {
	for act, want := range map[Activation]string{
		ActNone: "none", ActSigmoid: "sigmoid", ActTanh: "tanh", ActReLU: "relu",
	} {
		if act.String() != want {
			t.Fatalf("String(%d) = %q", act, act.String())
		}
	}
}

func TestSequentialParamsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSequential(
		NewDense(rng, "a", 2, 3, ActSigmoid),
		NewDropout(rng, 0.3),
		NewDense(rng, "b", 3, 1, ActNone),
	)
	if len(s.Params()) != 4 { // two Dense layers x (W, b)
		t.Fatalf("Params count = %d, want 4", len(s.Params()))
	}
}
