package nn

import (
	"bytes"
	"strings"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

func twoParams() []*autodiff.Parameter {
	a := autodiff.NewParameter("a", tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	b := autodiff.NewParameter("b", tensor.FromSlice([]float64{5, 6}, 2))
	return []*autodiff.Parameter{a, b}
}

// loadErr runs LoadParams over a raw document and returns the error; any
// panic fails the test, because corrupt input must never crash the process.
func loadErr(t *testing.T, doc string) error {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("LoadParams panicked on corrupt input: %v", r)
		}
	}()
	return LoadParams(strings.NewReader(doc), twoParams())
}

func TestLoadParamsRejectsLengthMismatch(t *testing.T) {
	// Data length disagrees with the declared shape: 3 values for a 2x2.
	doc := `[{"name":"a","shape":[2,2],"data":[1,2,3]},{"name":"b","shape":[2],"data":[5,6]}]`
	if err := loadErr(t, doc); err == nil {
		t.Fatal("length/shape mismatch accepted")
	}
}

func TestLoadParamsRejectsNegativeDimension(t *testing.T) {
	doc := `[{"name":"a","shape":[-2,-2],"data":[1,2,3,4]},{"name":"b","shape":[2],"data":[5,6]}]`
	if err := loadErr(t, doc); err == nil {
		t.Fatal("negative dimensions accepted")
	}
}

func TestLoadParamsRejectsDuplicateNames(t *testing.T) {
	// SaveParams rejects duplicates on write; a hand-edited or corrupt file
	// must not sneak them past the load path either.
	doc := `[{"name":"a","shape":[2,2],"data":[1,2,3,4]},` +
		`{"name":"a","shape":[2,2],"data":[9,9,9,9]},` +
		`{"name":"b","shape":[2],"data":[5,6]}]`
	if err := loadErr(t, doc); err == nil {
		t.Fatal("duplicate parameter names accepted on load")
	}
}

func TestLoadParamsRejectsTruncatedJSON(t *testing.T) {
	doc := `[{"name":"a","shape":[2,2],"data":[1,2,3`
	if err := loadErr(t, doc); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestLoadParamsFailureLeavesParamsUntouched(t *testing.T) {
	params := twoParams()
	before := append([]float64(nil), params[0].Value.Data...)
	// "a" is valid here; "b" has a bad length. Nothing may be written.
	doc := `[{"name":"a","shape":[2,2],"data":[7,7,7,7]},{"name":"b","shape":[2],"data":[5]}]`
	if err := LoadParams(strings.NewReader(doc), params); err == nil {
		t.Fatal("corrupt stream accepted")
	}
	for i, v := range params[0].Value.Data {
		if v != before[i] {
			t.Fatalf("parameter %q half-overwritten at %d: %v", params[0].Name, i, params[0].Value.Data)
		}
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	src := twoParams()
	states, err := CaptureParams(src)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the source after capture must not change the snapshot.
	src[0].Value.Data[0] = 99
	dst := twoParams()
	for _, p := range dst {
		p.Value.Zero()
	}
	if err := RestoreParams(dst, states); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	for i, v := range dst[0].Value.Data {
		if v != want[i] {
			t.Fatalf("restored a = %v, want %v", dst[0].Value.Data, want)
		}
	}
}

func TestCaptureParamsRejectsDuplicates(t *testing.T) {
	p := autodiff.NewParameter("dup", tensor.New(2))
	q := autodiff.NewParameter("dup", tensor.New(2))
	if _, err := CaptureParams([]*autodiff.Parameter{p, q}); err == nil {
		t.Fatal("duplicate parameter names accepted by CaptureParams")
	}
}

func TestSaveLoadStillRoundTrips(t *testing.T) {
	src := twoParams()
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := twoParams()
	for _, p := range dst {
		p.Value.Zero()
	}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		for j, v := range src[i].Value.Data {
			if dst[i].Value.Data[j] != v {
				t.Fatalf("param %q differs after round trip", src[i].Name)
			}
		}
	}
}
