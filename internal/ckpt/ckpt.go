// Package ckpt is the fault-tolerant checkpoint subsystem for long training
// and fitting runs. A checkpoint is a single file holding everything needed
// to continue a run bitwise-identically after a crash or preemption: model
// parameters, optimizer slot state, the training RNG position, epoch
// counters, loss history, and — for multi-restart fitting — the completed
// restarts' generator states.
//
// Crash safety rests on three mechanisms:
//
//   - every file is written atomically (temp file + fsync + rename + dir
//     fsync, via cliutil.WriteFileAtomic), so a crash mid-write leaves the
//     previous checkpoint intact rather than a truncated file;
//   - the payload is wrapped in a versioned envelope carrying its exact
//     length and a CRC32 checksum, so truncation or bit rot of a completed
//     file is detected on read instead of deserializing garbage;
//   - Latest scans newest-first and silently skips invalid files, falling
//     back to the newest checkpoint that verifies — a partially written or
//     corrupted newest checkpoint costs at most one checkpoint interval of
//     progress, never the run.
//
// A Writer numbers checkpoints monotonically and prunes all but the newest
// K after each write, bounding disk use on long runs.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ovs/internal/cliutil"
	"ovs/internal/nn"
)

// Version is the current checkpoint format version. Read rejects files
// written by other versions.
const Version = 1

// Ext is the checkpoint file extension.
const Ext = ".ovsckpt"

// DefaultKeep is the retention depth used when a Writer is created with
// keep <= 0.
const DefaultKeep = 3

// magic identifies a checkpoint envelope; the trailing byte is the envelope
// (not payload) version, bumped only if the header layout itself changes.
var magic = [8]byte{'O', 'V', 'S', 'C', 'K', 'P', 'T', 1}

// headerSize is magic(8) + payload length(8, little-endian) + CRC32(4).
const headerSize = 20

// ErrNoCheckpoint is returned by Latest when the directory holds no valid
// checkpoint (including when it does not exist yet).
var ErrNoCheckpoint = errors.New("ckpt: no valid checkpoint")

// TensorState is one raw tensor snapshot: the tensors a TOD generator's
// StateTensors contract exposes carry no names, only a fixed order, so the
// record is positional.
type TensorState struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// Restart records one completed restart of a multi-restart fit: the
// generator's final state tensors and the restart's loss history. The fit's
// winner selection is a pure function of these, so restoring them lets a
// resumed FitBest skip straight to the unfinished restarts.
type Restart struct {
	Index int           `json:"index"`
	State []TensorState `json:"state"`
	Hist  []float64     `json:"hist"`
}

// Snapshot is the complete serialized training state at one point in a run.
// The invariant a snapshot encodes: all stages before Stage are complete
// (their loss curves live in PrevLoss), and Stage itself has completed Epoch
// epochs (restart-granular stages use Restarts instead of Epoch).
type Snapshot struct {
	Version int    `json:"version"`
	Stage   string `json:"stage"`
	Epoch   int    `json:"epoch"`

	// Loss is the current stage's per-epoch loss history up to Epoch.
	Loss []float64 `json:"loss,omitempty"`
	// PrevLoss holds the completed stages' full loss histories.
	PrevLoss map[string][]float64 `json:"prev_loss,omitempty"`

	// Params snapshots every model parameter (all modules).
	Params []nn.ParamState `json:"params"`
	// Opt is the current stage's optimizer slot state, when the stage is
	// epoch-granular.
	Opt *nn.OptimizerState `json:"opt,omitempty"`
	// GenState snapshots the TOD generator's StateTensors — parameters plus
	// the Gaussian seeds, which are not part of Params. For restart-granular
	// fit stages this is the generator's entry state; for epoch-granular
	// stages, its current state.
	GenState []TensorState `json:"gen_state,omitempty"`
	// Restarts lists the completed restarts of a restart-granular fit stage.
	Restarts []Restart `json:"restarts,omitempty"`

	// RNGSeed and RNGDraws pin the training RNG stream's position (see
	// autodiff.CountingSource).
	RNGSeed  int64  `json:"rng_seed"`
	RNGDraws uint64 `json:"rng_draws"`
}

// Encode writes the snapshot's envelope and payload to w.
func Encode(w io.Writer, snap *Snapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Decode parses and verifies a checkpoint envelope: magic, exact payload
// length, CRC32, and format version. Any mismatch — truncation, trailing
// garbage, bit rot, foreign files — is an error, never a partial snapshot.
func Decode(raw []byte) (*Snapshot, error) {
	if len(raw) < headerSize {
		return nil, fmt.Errorf("ckpt: %d bytes is shorter than the %d-byte header", len(raw), headerSize)
	}
	for i, b := range magic {
		if raw[i] != b {
			return nil, errors.New("ckpt: bad magic (not a checkpoint file)")
		}
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	if uint64(len(raw)-headerSize) != n {
		return nil, fmt.Errorf("ckpt: payload is %d bytes, header declares %d (truncated or corrupt)",
			len(raw)-headerSize, n)
	}
	payload := raw[headerSize:]
	want := binary.LittleEndian.Uint32(raw[16:20])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (%08x != %08x)", got, want)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("ckpt: decode payload: %w", err)
	}
	if snap.Version != Version {
		return nil, fmt.Errorf("ckpt: format version %d, this build reads %d", snap.Version, Version)
	}
	if snap.Stage == "" {
		return nil, errors.New("ckpt: snapshot has no stage")
	}
	return &snap, nil
}

// Read loads and verifies one checkpoint file.
func Read(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// seqOf parses the sequence number out of a checkpoint file name
// ("ckpt-0000000042.ovsckpt"); ok is false for foreign names.
func seqOf(name string) (seq uint64, ok bool) {
	if filepath.Ext(name) != Ext {
		return 0, false
	}
	base := name[:len(name)-len(Ext)]
	const prefix = "ckpt-"
	if len(base) <= len(prefix) || base[:len(prefix)] != prefix {
		return 0, false
	}
	for _, ch := range base[len(prefix):] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(ch-'0')
	}
	return seq, true
}

// list returns the checkpoint sequence numbers present in dir, ascending.
func list(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := seqOf(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Path returns the file path of checkpoint seq in dir.
func Path(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%010d%s", seq, Ext))
}

// Latest returns the newest valid checkpoint in dir, skipping corrupt or
// partial files. It returns ErrNoCheckpoint when the directory is missing,
// empty, or holds only invalid checkpoints.
func Latest(dir string) (*Snapshot, string, error) {
	seqs, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", ErrNoCheckpoint
		}
		return nil, "", err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := Path(dir, seqs[i])
		snap, rerr := Read(path)
		if rerr != nil {
			// Corrupt or partial: fall back to the next-newest. The file is
			// left in place for post-mortems; retention will age it out.
			continue
		}
		return snap, path, nil
	}
	return nil, "", ErrNoCheckpoint
}

// Writer writes numbered checkpoints into a directory with keep-last-K
// retention. It is not safe for concurrent use; callers serialize writes
// (training loops checkpoint from one goroutine, or under a mutex).
type Writer struct {
	dir  string
	keep int
	seq  uint64
}

// NewWriter creates dir if needed and returns a writer that continues after
// the highest existing sequence number, so resumed runs never overwrite the
// checkpoints they resumed from. keep <= 0 selects DefaultKeep.
func NewWriter(dir string, keep int) (*Writer, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	seqs, err := list(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(0)
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	return &Writer{dir: dir, keep: keep, seq: next}, nil
}

// Write persists snap atomically as the next numbered checkpoint, then
// prunes all but the newest keep checkpoints. It returns the written path.
func (w *Writer) Write(snap *Snapshot) (string, error) {
	snap.Version = Version
	path := Path(w.dir, w.seq)
	err := cliutil.WriteFileAtomic(path, func(out io.Writer) error {
		return Encode(out, snap)
	})
	if err != nil {
		return "", err
	}
	w.seq++
	return path, w.prune()
}

// prune removes every checkpoint older than the newest keep.
func (w *Writer) prune() error {
	seqs, err := list(w.dir)
	if err != nil {
		return err
	}
	if len(seqs) <= w.keep {
		return nil
	}
	for _, seq := range seqs[:len(seqs)-w.keep] {
		if err := os.Remove(Path(w.dir, seq)); err != nil {
			return err
		}
	}
	return nil
}
