package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ovs/internal/nn"
)

func sampleSnapshot(epoch int) *Snapshot {
	return &Snapshot{
		Stage: "v2s",
		Epoch: epoch,
		Loss:  []float64{3.5, 2.25, 1.125}[:min(epoch, 3)],
		Params: []nn.ParamState{
			{Name: "w", Shape: []int{2, 3}, Data: []float64{1, 2, 3, 4, 5, 6}},
			{Name: "b", Shape: []int{3}, Data: []float64{0.5, -0.5, 0}},
		},
		Opt: &nn.OptimizerState{
			Kind: "adam", Step: epoch, LR: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
			Slots: []nn.SlotState{{Name: "w", M: make([]float64, 6), V: make([]float64, 6)}},
		},
		GenState: []TensorState{{Shape: []int{2, 2}, Data: []float64{1, 0, 0, 1}}},
		RNGSeed:  42,
		RNGDraws: uint64(epoch) * 17,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := sampleSnapshot(3)
	snap.Version = Version
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	snap := sampleSnapshot(2)
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	extended := append(append([]byte(nil), valid...), 'x')
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'

	cases := map[string][]byte{
		"empty":            nil,
		"short header":     valid[:headerSize-1],
		"bit flip":         flipped,
		"trailing garbage": extended,
		"bad magic":        badMagic,
	}
	for name, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	snap := sampleSnapshot(1)
	snap.Version = Version // Encode overrides nothing; set explicitly
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf.Bytes()); err != nil {
		t.Fatalf("valid version rejected: %v", err)
	}

	snap.Version = Version + 1
	buf.Reset()
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf.Bytes()); err == nil {
		t.Fatal("Decode accepted a future format version")
	}
}

func TestWriterWritesAndLatestReads(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 2; epoch++ {
		if _, err := w.Write(sampleSnapshot(epoch)); err != nil {
			t.Fatalf("Write epoch %d: %v", epoch, err)
		}
	}
	snap, path, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if snap.Epoch != 2 {
		t.Fatalf("Latest returned epoch %d, want 2", snap.Epoch)
	}
	if path != Path(dir, 1) {
		t.Fatalf("Latest path %q, want %q", path, Path(dir, 1))
	}
}

func TestLatestEmptyAndMissingDir(t *testing.T) {
	if _, _, err := Latest(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := Latest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLatestSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(sampleSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	p2, err := w.Write(sampleSnapshot(2))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint in place (simulated bit rot).
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, _, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest with corrupt newest: %v", err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("Latest fell back to epoch %d, want 1", snap.Epoch)
	}
}

// TestLatestNeverAcceptsTruncation is the crash-injection test: a checkpoint
// truncated at EVERY byte offset — simulating a non-atomic write dying at any
// point — must never be returned by Latest. With an older valid checkpoint
// present, Latest must fall back to it at every offset.
func TestLatestNeverAcceptsTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(sampleSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	p2, err := w.Write(sampleSnapshot(2))
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(p2, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(p2); err == nil {
			t.Fatalf("Read accepted a checkpoint truncated to %d/%d bytes", cut, len(full))
		}
		snap, _, err := Latest(dir)
		if err != nil {
			t.Fatalf("truncation at %d: Latest failed instead of falling back: %v", cut, err)
		}
		if snap.Epoch != 1 {
			t.Fatalf("truncation at %d: Latest returned epoch %d, want fallback epoch 1", cut, snap.Epoch)
		}
	}
}

func TestWriterRetention(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 5; epoch++ {
		if _, err := w.Write(sampleSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := list(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("retained seqs = %v, want [3 4]", seqs)
	}
	snap, _, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 5 {
		t.Fatalf("Latest after pruning returned epoch %d, want 5", snap.Epoch)
	}
}

func TestWriterContinuesSequenceAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	w1, err := NewWriter(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Write(sampleSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Write(sampleSnapshot(2)); err != nil {
		t.Fatal(err)
	}

	// A new writer (a resumed process) must not overwrite existing files.
	w2, err := NewWriter(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w2.Write(sampleSnapshot(3))
	if err != nil {
		t.Fatal(err)
	}
	if p != Path(dir, 2) {
		t.Fatalf("resumed writer wrote %q, want %q", p, Path(dir, 2))
	}
	snap, _, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 3 {
		t.Fatalf("Latest returned epoch %d, want 3", snap.Epoch)
	}
}

func TestLatestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "ckpt-abc.ovsckpt", "ckpt-.ovsckpt", "model.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(sampleSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(dir); err != nil {
		t.Fatalf("Latest with foreign files alongside a valid checkpoint: %v", err)
	}
}
