// Package fd implements the speed-density fundamental diagrams of traffic
// flow theory ([24], [25] in the paper's bibliography). The mesoscopic
// simulator consults one of these models every step to convert a link's
// density into its current speed; exposing several calibrated forms lets
// experiments probe how sensitive TOD recovery is to the substrate's
// volume-speed physics (the "irregular volume-speed mappings" of RQ3 are a
// per-link rescaling of whichever diagram is active).
package fd

import (
	"fmt"
	"math"
)

// Model maps normalized density to a speed fraction.
type Model interface {
	// SpeedFraction returns v/vf for density ratio k/kj ∈ [0, 1]. It must be
	// 1 at 0, non-increasing, and 0 (or near 0) at 1.
	SpeedFraction(densityRatio float64) float64
	Name() string
}

// clamp01 bounds a density ratio into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Greenshields is the classical linear speed-density relation
// v = vf (1 − k/kj) — the default model, and the one the package-level
// tests of the simulator assume.
type Greenshields struct{}

// SpeedFraction implements Model.
func (Greenshields) SpeedFraction(r float64) float64 { return 1 - clamp01(r) }

// Name implements Model.
func (Greenshields) Name() string { return "greenshields" }

// Greenberg is the logarithmic relation v = v0 ln(kj/k), normalized so the
// fraction is 1 at the free-density knee. Undefined at k→0, so the fraction
// is capped at 1.
type Greenberg struct {
	// Knee is the density ratio below which speed is free-flow (default 0.08).
	Knee float64
}

// SpeedFraction implements Model.
func (g Greenberg) SpeedFraction(r float64) float64 {
	knee := g.Knee
	if knee <= 0 || knee >= 1 {
		knee = 0.08
	}
	r = clamp01(r)
	if r <= knee {
		return 1
	}
	// ln(1/r) scaled to hit 1 at the knee and 0 at r=1.
	return math.Log(1/r) / math.Log(1/knee)
}

// Name implements Model.
func (Greenberg) Name() string { return "greenberg" }

// Underwood is the exponential relation v = vf exp(−k/k0). The fraction
// never reaches zero; the simulator's MinSpeed floor applies regardless.
type Underwood struct {
	// K0 is the characteristic density ratio (default 0.33).
	K0 float64
}

// SpeedFraction implements Model.
func (u Underwood) SpeedFraction(r float64) float64 {
	k0 := u.K0
	if k0 <= 0 {
		k0 = 0.33
	}
	return math.Exp(-clamp01(r) / k0)
}

// Name implements Model.
func (Underwood) Name() string { return "underwood" }

// Triangular is Newell's piecewise-linear diagram: free-flow speed up to a
// critical density, then a hyperbolic congested branch whose flow falls
// linearly to zero at jam density.
type Triangular struct {
	// Critical is the density ratio at capacity (default 0.25).
	Critical float64
}

// SpeedFraction implements Model.
func (t Triangular) SpeedFraction(r float64) float64 {
	kc := t.Critical
	if kc <= 0 || kc >= 1 {
		kc = 0.25
	}
	r = clamp01(r)
	if r <= kc {
		return 1
	}
	if r >= 1 {
		return 0
	}
	// Congested branch: flow q ∝ (1 − r)/(1 − kc); v = q/r normalized so the
	// fraction is continuous (=1) at r = kc.
	return kc * (1 - r) / (r * (1 - kc))
}

// Name implements Model.
func (Triangular) Name() string { return "triangular" }

// ByName returns a model with default parameters.
func ByName(name string) (Model, error) {
	switch name {
	case "", "greenshields":
		return Greenshields{}, nil
	case "greenberg":
		return Greenberg{}, nil
	case "underwood":
		return Underwood{}, nil
	case "triangular":
		return Triangular{}, nil
	default:
		return nil, fmt.Errorf("fd: unknown fundamental diagram %q", name)
	}
}

// All returns one instance of every model, for sweeps.
func All() []Model {
	return []Model{Greenshields{}, Greenberg{}, Underwood{}, Triangular{}}
}

// BPR is the Bureau of Public Roads volume-delay function
// t = t0 (1 + α (q/c)^β), the standard static-assignment travel-time model;
// provided for the GLS/assignment-style baselines and for validation against
// the dynamic engines.
func BPR(freeFlowTime, flow, capacity, alpha, beta float64) float64 {
	if alpha <= 0 {
		alpha = 0.15
	}
	if beta <= 0 {
		beta = 4
	}
	if capacity <= 0 {
		return freeFlowTime
	}
	return freeFlowTime * (1 + alpha*math.Pow(flow/capacity, beta))
}
