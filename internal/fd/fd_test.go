package fd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelsBoundaryConditions(t *testing.T) {
	for _, m := range All() {
		if got := m.SpeedFraction(0); math.Abs(got-1) > 1e-9 {
			t.Fatalf("%s: fraction at k=0 is %v, want 1", m.Name(), got)
		}
		if got := m.SpeedFraction(1); got > 0.05 {
			t.Fatalf("%s: fraction at jam is %v, want ≈0", m.Name(), got)
		}
		// Out-of-range inputs are clamped, not extrapolated.
		if got := m.SpeedFraction(-3); math.Abs(got-1) > 1e-9 {
			t.Fatalf("%s: negative density fraction %v", m.Name(), got)
		}
		if got := m.SpeedFraction(7); got > 0.05 {
			t.Fatalf("%s: beyond-jam fraction %v", m.Name(), got)
		}
	}
}

func TestModelsMonotoneNonIncreasing(t *testing.T) {
	for _, m := range All() {
		prev := math.Inf(1)
		for r := 0.0; r <= 1.0001; r += 0.01 {
			v := m.SpeedFraction(r)
			if v > prev+1e-9 {
				t.Fatalf("%s: fraction increased at r=%v (%v > %v)", m.Name(), r, v, prev)
			}
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("%s: fraction %v out of [0,1] at r=%v", m.Name(), v, r)
			}
			prev = v
		}
	}
}

func TestGreenshieldsExactlyLinear(t *testing.T) {
	g := Greenshields{}
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := g.SpeedFraction(r); math.Abs(got-(1-r)) > 1e-12 {
			t.Fatalf("greenshields(%v) = %v", r, got)
		}
	}
}

func TestTriangularContinuityAtCritical(t *testing.T) {
	tr := Triangular{Critical: 0.3}
	below := tr.SpeedFraction(0.3 - 1e-9)
	above := tr.SpeedFraction(0.3 + 1e-9)
	if math.Abs(below-above) > 1e-6 {
		t.Fatalf("triangular discontinuous at critical: %v vs %v", below, above)
	}
}

func TestGreenbergKneeIsFreeFlow(t *testing.T) {
	g := Greenberg{Knee: 0.1}
	if g.SpeedFraction(0.05) != 1 {
		t.Fatal("below-knee density must be free flow")
	}
	if g.SpeedFraction(0.5) >= 1 {
		t.Fatal("above-knee density must slow down")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "greenshields", "greenberg", "underwood", "triangular"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("warp-drive"); err == nil {
		t.Fatal("unknown model did not error")
	}
}

func TestBPR(t *testing.T) {
	// Zero flow: free-flow time.
	if got := BPR(100, 0, 10, 0, 0); got != 100 {
		t.Fatalf("BPR at zero flow = %v", got)
	}
	// At capacity with defaults: t0 (1 + 0.15) = 115.
	if got := BPR(100, 10, 10, 0, 0); math.Abs(got-115) > 1e-9 {
		t.Fatalf("BPR at capacity = %v, want 115", got)
	}
	// Monotone in flow.
	if BPR(100, 20, 10, 0, 0) <= BPR(100, 10, 10, 0, 0) {
		t.Fatal("BPR not increasing in flow")
	}
	// Degenerate capacity falls back to free-flow.
	if got := BPR(100, 5, 0, 0, 0); got != 100 {
		t.Fatalf("BPR with zero capacity = %v", got)
	}
}

func TestQuickAllModelsBounded(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		for _, m := range All() {
			v := m.SpeedFraction(raw)
			if math.IsNaN(v) || v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
