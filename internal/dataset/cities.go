package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ovs/internal/roadnet"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// RegionKind classifies a region's land use, driving the structure of the
// synthetic "taxi-derived" ground-truth TOD (the substitute for the paper's
// proprietary trajectory datasets).
type RegionKind int

const (
	// KindResidential regions originate morning traffic and absorb evening.
	KindResidential RegionKind = iota
	// KindCommercial regions absorb daytime traffic.
	KindCommercial
	// KindGate regions sit at highway exits (the football case study's O1/O3).
	KindGate
	// KindStadium marks the event destination of case study 2.
	KindStadium
)

// City bundles a road network with its regions, selected OD pairs, and the
// node anchoring needed to feed the simulator.
type City struct {
	Name    string
	Net     *roadnet.Network
	Regions []roadnet.Region
	Kinds   []RegionKind // indexed by region ID
	Pairs   []roadnet.ODPair
	ODs     []sim.ODNodes // Pairs resolved to anchor nodes
}

// NumPairs returns N_od.
func (c *City) NumPairs() int { return len(c.Pairs) }

// ResolveODs (re)anchors the city's region pairs to network nodes. Call it
// after externally modifying Pairs or Regions.
func (c *City) ResolveODs() { c.resolveODs() }

// resolveODs anchors region pairs to network nodes.
func (c *City) resolveODs() {
	c.ODs = make([]sim.ODNodes, len(c.Pairs))
	for i, p := range c.Pairs {
		c.ODs[i] = sim.ODNodes{Origin: c.Regions[p.Origin].Anchor, Dest: c.Regions[p.Dest].Anchor}
	}
}

// classifyRegions assigns land-use kinds: regions nearest the network
// centroid become commercial, the rest residential.
func classifyRegions(regions []roadnet.Region) []RegionKind {
	kinds := make([]RegionKind, len(regions))
	cx, cy := 0.0, 0.0
	for _, r := range regions {
		cx += r.CX
		cy += r.CY
	}
	cx /= float64(len(regions))
	cy /= float64(len(regions))
	// Distance-ranked: closest third commercial.
	type rd struct {
		id int
		d  float64
	}
	dists := make([]rd, len(regions))
	for i, r := range regions {
		dists[i] = rd{id: r.ID, d: math.Hypot(r.CX-cx, r.CY-cy)}
	}
	for i := range dists {
		for j := i + 1; j < len(dists); j++ {
			if dists[j].d < dists[i].d {
				dists[i], dists[j] = dists[j], dists[i]
			}
		}
	}
	commercial := len(regions) / 3
	if commercial == 0 {
		commercial = 1
	}
	for rank, e := range dists {
		if rank < commercial {
			kinds[e.id] = KindCommercial
		} else {
			kinds[e.id] = KindResidential
		}
	}
	return kinds
}

// CityOptions tunes preset construction.
type CityOptions struct {
	// ODPairs caps the number of OD pairs (0 = a per-city default chosen to
	// keep experiment runtimes reasonable).
	ODPairs int
	// Seed fixes all random structure.
	Seed int64
}

// Hangzhou builds the big-commercial-city preset at Table III scale
// (46 intersections, 63 roads).
func Hangzhou(opt CityOptions) *City {
	return buildCity("Hangzhou", roadnet.CityConfig{
		TargetIntersections: 46, TargetRoads: 63, Seed: opt.Seed + 101,
	}, 3, 3, defaultPairs(opt.ODPairs, 16), opt.Seed)
}

// Porto builds the mid-size preset (70 intersections, 100 roads).
func Porto(opt CityOptions) *City {
	return buildCity("Porto", roadnet.CityConfig{
		TargetIntersections: 70, TargetRoads: 100, Seed: opt.Seed + 202,
	}, 3, 3, defaultPairs(opt.ODPairs, 16), opt.Seed)
}

// Manhattan builds the dense-grid preset. A 10×10 grid yields exactly 100
// intersections and 180 roads, matching Table III.
func Manhattan(opt CityOptions) *City {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 10, Cols: 10})
	rng := rand.New(rand.NewSource(opt.Seed + 303))
	regions := roadnet.Partition(net, 3, 3, rng)
	c := &City{
		Name:    "Manhattan",
		Net:     net,
		Regions: regions,
		Kinds:   classifyRegions(regions),
		Pairs:   roadnet.SelectODPairs(regions, defaultPairs(opt.ODPairs, 20), rng),
	}
	c.resolveODs()
	return c
}

// StateCollege builds the college-town preset (14 intersections, 16 roads)
// with two highway gates and a stadium region, the substrate of case study 2.
func StateCollege(opt CityOptions) *City {
	net := roadnet.City(roadnet.CityConfig{
		TargetIntersections: 12, TargetRoads: 14, HighwayGates: 2, Seed: opt.Seed + 404,
	})
	rng := rand.New(rand.NewSource(opt.Seed + 405))
	regions := roadnet.Partition(net, 3, 3, rng)
	kinds := classifyRegions(regions)
	// Gate regions: those containing the two highway gate nodes (the last
	// two nodes added by the generator).
	gateA, gateB := net.NumNodes()-2, net.NumNodes()-1
	stadiumSet := false
	for i, r := range regions {
		for _, nd := range r.Nodes {
			if nd == gateA || nd == gateB {
				kinds[i] = KindGate
			}
		}
	}
	// Stadium: the commercial region closest to the centroid.
	for i := range regions {
		if kinds[i] == KindCommercial && !stadiumSet {
			kinds[i] = KindStadium
			stadiumSet = true
		}
	}
	if !stadiumSet {
		kinds[0] = KindStadium
	}
	c := &City{
		Name:    "StateCollege",
		Net:     net,
		Regions: regions,
		Kinds:   kinds,
		Pairs:   roadnet.SelectODPairs(regions, defaultPairs(opt.ODPairs, 12), rng),
	}
	c.resolveODs()
	return c
}

// ByName returns the preset with the given name.
func ByName(name string, opt CityOptions) (*City, error) {
	switch name {
	case "Hangzhou":
		return Hangzhou(opt), nil
	case "Porto":
		return Porto(opt), nil
	case "Manhattan":
		return Manhattan(opt), nil
	case "StateCollege":
		return StateCollege(opt), nil
	default:
		return nil, fmt.Errorf("dataset: unknown city %q", name)
	}
}

// RealCityNames lists the Table VI datasets.
var RealCityNames = []string{"Hangzhou", "Porto", "Manhattan"}

func defaultPairs(requested, fallback int) int {
	if requested > 0 {
		return requested
	}
	return fallback
}

func buildCity(name string, cfg roadnet.CityConfig, rows, cols, pairs int, seed int64) *City {
	net := roadnet.City(cfg)
	rng := rand.New(rand.NewSource(seed + 17))
	regions := roadnet.Partition(net, rows, cols, rng)
	c := &City{
		Name:    name,
		Net:     net,
		Regions: regions,
		Kinds:   classifyRegions(regions),
		Pairs:   roadnet.SelectODPairs(regions, pairs, rng),
	}
	c.resolveODs()
	return c
}

// SyntheticGrid builds the 3×3-intersection synthetic environment of
// Table VIII, with every intersection its own region.
func SyntheticGrid(pairs int, seed int64) *City {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 3})
	rng := rand.New(rand.NewSource(seed))
	regions := roadnet.PerNodeRegions(net, rng)
	c := &City{
		Name:    "Synthetic3x3",
		Net:     net,
		Regions: regions,
		Kinds:   classifyRegions(regions),
		Pairs:   roadnet.SelectODPairs(regions, pairs, rng),
	}
	c.resolveODs()
	return c
}

// GroundTruthTOD synthesizes the city's "real" TOD tensor — the stand-in for
// the scaled taxi-trajectory TOD of the paper's protocol. Trip counts follow
// a gravity-style base load modulated by land-use-dependent temporal
// profiles: residential→commercial flows peak in the morning, the reverse in
// the evening; gates feed steady inbound traffic. scale shrinks counts for
// fast experiments.
func (c *City) GroundTruthTOD(intervals int, scale float64, rng *rand.Rand) *tensor.Tensor {
	if scale <= 0 {
		scale = 1
	}
	g := tensor.New(len(c.Pairs), intervals)
	maxPop := 0.0
	for _, r := range c.Regions {
		if r.Population > maxPop {
			maxPop = r.Population
		}
	}
	for i, p := range c.Pairs {
		o, d := c.Regions[p.Origin], c.Regions[p.Dest]
		dist := roadnet.RegionDistance(o, d) + 200
		base := 40 * (o.Population / maxPop) * (d.Population / maxPop) * (500 * 500 / (dist * dist))
		if base < 1 {
			base = 1
		}
		// Real ODs deviate substantially from any gravity form (special
		// generators, employment asymmetries): a log-normal per-OD factor
		// breaks the otherwise circular advantage a gravity-model baseline
		// would have against gravity-generated ground truth.
		base *= math.Exp(0.6 * rng.NormFloat64())
		for t := 0; t < intervals; t++ {
			frac := float64(t) / float64(intervals) // 0..1 through the horizon
			profile := 1.0
			switch {
			case c.Kinds[p.Origin] == KindResidential && c.Kinds[p.Dest] == KindCommercial:
				profile = 1 + 1.5*bump(frac, 0.25, 0.12) + 0.5*bump(frac, 0.75, 0.15)
			case c.Kinds[p.Origin] == KindCommercial && c.Kinds[p.Dest] == KindResidential:
				profile = 1 + 1.5*bump(frac, 0.8, 0.12)
			case c.Kinds[p.Origin] == KindGate:
				profile = 1.4
			}
			v := base * profile * (1 + 0.15*rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			g.Set(v, i, t)
		}
	}
	// Normalize the overall magnitude into the training patterns' range:
	// mean cell ≈ 50·scale trips per interval (10 veh/min × 5 min at
	// scale 1), so the hidden demand sits inside the regime the learned
	// mappings were trained on.
	mean := g.Mean()
	if mean > 0 {
		factor := 50 * scale / mean
		for i := range g.Data {
			g.Data[i] *= factor
		}
	}
	return g
}

// bump is a Gaussian bump centered at c with width w, used to shape the
// morning/evening peaks of the ground-truth profiles.
func bump(x, c, w float64) float64 {
	d := (x - c) / w
	return math.Exp(-0.5 * d * d)
}
