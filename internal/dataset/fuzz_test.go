package dataset

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzGenerateTOD checks the synthetic TOD generator's contract over
// arbitrary patterns and configurations: the result is always exactly
// (Pairs × Intervals) with finite, non-negative trip counts.
func FuzzGenerateTOD(f *testing.F) {
	f.Add(0, 4, 6, 10.0, 1.0, int64(1))
	f.Add(4, 1, 1, 0.0, 0.0, int64(7))
	f.Add(-3, 9, 2, -5.0, 0.25, int64(42))
	f.Fuzz(func(t *testing.T, pat, pairs, intervals int, minutes, scale float64, seed int64) {
		p := AllPatterns[abs(pat)%len(AllPatterns)]
		cfg := TODConfig{
			Pairs:           abs(pairs)%16 + 1,
			Intervals:       abs(intervals)%16 + 1,
			IntervalMinutes: clampFinite(minutes, 60),
			Scale:           clampFinite(scale, 4),
		}
		g := GenerateTOD(p, cfg, rand.New(rand.NewSource(seed)))
		if g.Dim(0) != cfg.Pairs || g.Dim(1) != cfg.Intervals {
			t.Fatalf("GenerateTOD(%v) shape %v, want (%d,%d)", p, g.Shape(), cfg.Pairs, cfg.Intervals)
		}
		for i, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("GenerateTOD(%v) Data[%d] = %v; want finite non-negative", p, i, v)
			}
		}
	})
}

// FuzzSyntheticGrid checks the synthetic city loader: for any pair budget
// and seed, the city's OD pairs index valid regions, its anchors are valid
// nodes, and its ground-truth TOD is finite and non-negative.
func FuzzSyntheticGrid(f *testing.F) {
	f.Add(6, int64(1), 8)
	f.Add(1, int64(99), 1)
	f.Add(50, int64(-3), 3)
	f.Fuzz(func(t *testing.T, pairs int, seed int64, intervals int) {
		city := SyntheticGrid(abs(pairs)%64+1, seed)
		if len(city.ODs) != len(city.Pairs) {
			t.Fatalf("%d resolved ODs for %d pairs", len(city.ODs), len(city.Pairs))
		}
		n := city.Net.NumNodes()
		for i, p := range city.Pairs {
			if p.Origin < 0 || p.Origin >= len(city.Regions) || p.Dest < 0 || p.Dest >= len(city.Regions) {
				t.Fatalf("pair %d regions (%d,%d) out of range for %d regions", i, p.Origin, p.Dest, len(city.Regions))
			}
			od := city.ODs[i]
			if od.Origin < 0 || od.Origin >= n || od.Dest < 0 || od.Dest >= n {
				t.Fatalf("pair %d anchors (%d,%d) out of range for %d nodes", i, od.Origin, od.Dest, n)
			}
		}
		iv := abs(intervals)%12 + 1
		g := city.GroundTruthTOD(iv, 1, rand.New(rand.NewSource(seed)))
		if g.Dim(0) != city.NumPairs() || g.Dim(1) != iv {
			t.Fatalf("ground truth shape %v, want (%d,%d)", g.Shape(), city.NumPairs(), iv)
		}
		for i, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("ground truth Data[%d] = %v; want finite non-negative", i, v)
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return 0
		}
		return -x
	}
	return x
}

// clampFinite folds an arbitrary fuzzed float into [0, limit] so the
// generator's defaulting of non-positive values is still exercised.
func clampFinite(v, limit float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(math.Abs(v), limit)
}
