package dataset

import (
	"context"
	"fmt"
	"math/rand"

	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// Sample is one generated training triple of the Fig. 7 protocol: a TOD
// tensor and the volume/speed tensors the simulator produced from it.
type Sample struct {
	G      *tensor.Tensor // (N_od × T)
	Volume *tensor.Tensor // (M × T)
	Speed  *tensor.Tensor // (M × T)
}

// GenerateOptions controls training-data generation.
type GenerateOptions struct {
	// Count is the number of samples. Patterns cycle so each of the five
	// contributes 20%.
	Count int
	// TOD generation parameters.
	TOD TODConfig
	// ScaleJitter, when both bounds are positive, multiplies each sample's
	// demand scale by a uniform draw from [lo, hi]. Spanning light to heavy
	// congestion in the training set is essential when the observation's
	// regime is unknown.
	ScaleJitter [2]float64
	// Seed drives both TOD sampling and per-sample simulator seeds.
	Seed int64
}

// Generate runs the training-stage data generation of Fig. 7: it draws TOD
// tensors from the five patterns over the city's OD pairs and simulates each
// to obtain volume and speed. The simulator must be configured with the same
// interval count as opts.TOD.Intervals.
func Generate(s *sim.Simulator, city *City, opts GenerateOptions) ([]Sample, error) {
	return GenerateCtx(context.Background(), s, city, opts)
}

// GenerateCtx is Generate with cooperative cancellation: ctx is observed
// between samples and at the simulator's interval boundaries, so a cancelled
// call returns the context's cancellation cause without a partial sample.
func GenerateCtx(ctx context.Context, s *sim.Simulator, city *City, opts GenerateOptions) ([]Sample, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("dataset: Generate needs Count > 0")
	}
	opts.TOD.Pairs = city.NumPairs()
	if opts.TOD.Intervals <= 0 {
		opts.TOD.Intervals = s.Cfg.Intervals
	}
	if opts.TOD.Intervals != s.Cfg.Intervals {
		return nil, fmt.Errorf("dataset: TOD intervals %d != simulator intervals %d", opts.TOD.Intervals, s.Cfg.Intervals)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	samples := make([]Sample, 0, opts.Count)
	baseScale := opts.TOD.Scale
	if baseScale <= 0 {
		baseScale = 1
	}
	for i := 0; i < opts.Count; i++ {
		cfg := opts.TOD
		if lo, hi := opts.ScaleJitter[0], opts.ScaleJitter[1]; lo > 0 && hi >= lo {
			cfg.Scale = baseScale * (lo + rng.Float64()*(hi-lo))
		}
		g := MixedTOD(i, cfg, rng)
		runner := sim.New(s.Net, s.Cfg)
		runner.Cfg.Seed = opts.Seed + int64(i)*7919
		res, err := runner.RunCtx(ctx, sim.Demand{ODs: city.ODs, G: g})
		if err != nil {
			return nil, fmt.Errorf("dataset: sample %d simulation: %w", i, err)
		}
		samples = append(samples, Sample{G: g, Volume: res.Volume, Speed: res.Speed})
	}
	return samples, nil
}

// GroundTruth simulates the city's ground-truth TOD to produce the hidden
// test observation (Fig. 7's testing stage): groundtruth volume and speed.
func GroundTruth(s *sim.Simulator, city *City, scale float64, seed int64) (Sample, error) {
	return GroundTruthCtx(context.Background(), s, city, scale, seed)
}

// GroundTruthCtx is GroundTruth with cooperative cancellation at the
// simulator's interval boundaries.
func GroundTruthCtx(ctx context.Context, s *sim.Simulator, city *City, scale float64, seed int64) (Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	g := city.GroundTruthTOD(s.Cfg.Intervals, scale, rng)
	runner := sim.New(s.Net, s.Cfg)
	runner.Cfg.Seed = seed + 1
	res, err := runner.RunCtx(ctx, sim.Demand{ODs: city.ODs, G: g})
	if err != nil {
		return Sample{}, fmt.Errorf("dataset: ground truth simulation: %w", err)
	}
	return Sample{G: g, Volume: res.Volume, Speed: res.Speed}, nil
}
