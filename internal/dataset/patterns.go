// Package dataset provides every data artifact the paper's evaluation
// consumes: the five synthetic TOD patterns of Table VIII, city presets at
// the scale of Table III with "taxi-derived" ground-truth TOD tensors, the
// auxiliary census/camera/trajectory feeds of Table II, the Fig. 7
// training-data generation loop, and the two case-study scenarios.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ovs/internal/tensor"
)

// Pattern names one of the five synthetic TOD generation patterns used for
// both the synthetic comparison (Table VIII) and the training-stage TOD
// sampling (each pattern contributing 20% of generated tensors).
type Pattern int

const (
	// PatternRandom draws each cell uniformly from 1-20 vehicles/min.
	PatternRandom Pattern = iota
	// PatternIncreasing starts at 5 vehicles/min and adds 2 per interval.
	PatternIncreasing
	// PatternDecreasing starts at 20 vehicles/min and subtracts 2 per interval.
	PatternDecreasing
	// PatternGaussian draws cells from N(10, 4) vehicles/min.
	PatternGaussian
	// PatternPoisson draws cells from Poisson(λ=3) vehicles/min.
	PatternPoisson
)

// AllPatterns lists the five patterns in paper order.
var AllPatterns = []Pattern{PatternRandom, PatternIncreasing, PatternDecreasing, PatternGaussian, PatternPoisson}

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternRandom:
		return "Random"
	case PatternIncreasing:
		return "Increasing"
	case PatternDecreasing:
		return "Decreasing"
	case PatternGaussian:
		return "Gaussian"
	case PatternPoisson:
		return "Poisson"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// TODConfig controls synthetic TOD generation.
type TODConfig struct {
	// Pairs is N_od, the number of OD pairs (rows).
	Pairs int
	// Intervals is T (columns).
	Intervals int
	// IntervalMinutes converts vehicles/min rates to per-interval counts
	// (the paper uses 10-minute intervals).
	IntervalMinutes float64
	// Scale multiplies all counts; experiments use Scale < 1 to shrink
	// simulated load while preserving pattern shape.
	Scale float64
}

func (c TODConfig) withDefaults() TODConfig {
	if c.IntervalMinutes <= 0 {
		c.IntervalMinutes = 10
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// GenerateTOD draws a TOD tensor (Pairs × Intervals) following the pattern.
// All rates are in vehicles/min before conversion to per-interval counts.
func GenerateTOD(p Pattern, cfg TODConfig, rng *rand.Rand) *tensor.Tensor {
	cfg = cfg.withDefaults()
	if cfg.Pairs <= 0 || cfg.Intervals <= 0 {
		panic(fmt.Sprintf("dataset: GenerateTOD needs positive dims, got %d×%d", cfg.Pairs, cfg.Intervals))
	}
	g := tensor.New(cfg.Pairs, cfg.Intervals)
	perMin := cfg.IntervalMinutes * cfg.Scale
	for i := 0; i < cfg.Pairs; i++ {
		for t := 0; t < cfg.Intervals; t++ {
			var rate float64
			switch p {
			case PatternRandom:
				rate = 1 + rng.Float64()*19
			case PatternIncreasing:
				rate = 5 + 2*float64(t) + rng.NormFloat64()
			case PatternDecreasing:
				rate = 20 - 2*float64(t) + rng.NormFloat64()
			case PatternGaussian:
				rate = 10 + rng.NormFloat64()*2 // variance 4
			case PatternPoisson:
				rate = float64(poisson(rng, 3))
			default:
				panic(fmt.Sprintf("dataset: unknown pattern %d", p))
			}
			if rate < 0 {
				rate = 0
			}
			g.Set(rate*perMin, i, t)
		}
	}
	return g
}

// poisson samples a Poisson(λ) variate by Knuth's method (λ is small here).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MixedTOD draws one TOD tensor with the pattern chosen uniformly from the
// five patterns — the paper's training stage generates TOD tensors "with
// every 20% of TOD tensors have a specific pattern".
func MixedTOD(sampleIdx int, cfg TODConfig, rng *rand.Rand) *tensor.Tensor {
	p := AllPatterns[sampleIdx%len(AllPatterns)]
	return GenerateTOD(p, cfg, rng)
}
