package dataset

import (
	"fmt"
	"math/rand"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// CaseStudy packages a real-world-style scenario: a city, a ground-truth TOD
// tensor with an interpretable temporal story, and named focus OD pairs whose
// recovered series the paper plots (Figures 12 and 13).
//
// The paper drives these from Gaode/Google Maps speed feeds; here the speed
// observation is produced by simulating the scenario TOD, which preserves
// the recovery task exactly (the model still sees only speed).
type CaseStudy struct {
	Name      string
	City      *City
	G         *tensor.Tensor // ground-truth TOD (N_od × T)
	Intervals int
	StartHour int            // wall-clock hour of interval 0
	Focus     map[string]int // named OD pair indices, e.g. "A->B"
}

// HourOf returns the wall-clock hour label of interval t.
func (cs *CaseStudy) HourOf(t int) int { return (cs.StartHour + t) % 24 }

// ensurePair returns the index of (origin, dest) in the city's pair list,
// appending the pair (and re-anchoring) if absent.
func ensurePair(c *City, origin, dest int) int {
	for i, p := range c.Pairs {
		if p.Origin == origin && p.Dest == dest {
			return i
		}
	}
	c.Pairs = append(c.Pairs, roadnet.ODPair{Origin: origin, Dest: dest})
	c.resolveODs()
	return len(c.Pairs) - 1
}

// firstRegionOfKind returns the lowest-ID region of the given kind, or -1.
func firstRegionOfKind(c *City, kind RegionKind) int {
	for i, k := range c.Kinds {
		if k == kind {
			return i
		}
	}
	return -1
}

func nthRegionOfKind(c *City, kind RegionKind, n int) int {
	seen := 0
	for i, k := range c.Kinds {
		if k == kind {
			if seen == n {
				return i
			}
			seen++
		}
	}
	return -1
}

// CaseStudy1 builds the Hangzhou Sunday scenario of Fig. 12: 24 hourly
// intervals; trips residential A → commercial B peak around 10 am and 6 pm
// (shopping), while B → A peaks from 8 pm to 1 am (late return home).
// scale shrinks trip counts for fast simulation.
func CaseStudy1(scale float64, seed int64) (*CaseStudy, error) {
	city := Hangzhou(CityOptions{Seed: seed})
	a := firstRegionOfKind(city, KindResidential)
	b := firstRegionOfKind(city, KindCommercial)
	if a < 0 || b < 0 {
		return nil, fmt.Errorf("dataset: Hangzhou preset lacks residential/commercial regions")
	}
	ab := ensurePair(city, a, b)
	ba := ensurePair(city, b, a)

	if scale <= 0 {
		scale = 1
	}
	const T = 24
	rng := rand.New(rand.NewSource(seed + 9))
	g := backgroundTOD(city, T, scale*0.4, rng)
	for t := 0; t < T; t++ {
		h := float64(t) // StartHour = 0
		// A->B: shopping peaks at 10:00 and 18:00. Amplitudes are sized so
		// the peaks visibly congest the larger Hangzhou-scale network.
		ab10 := 90 * bump(h, 10, 1.5)
		ab18 := 72 * bump(h, 18, 1.5)
		g.Set((6+ab10+ab18)*scale*(1+0.1*rng.NormFloat64()), ab, t)
		// B->A: going home 20:00 .. 01:00 (wraps past midnight).
		back := 84*bump(h, 21.5, 2.0) + 84*bump(h+24, 21.5, 2.0)
		g.Set((5+back)*scale*(1+0.1*rng.NormFloat64()), ba, t)
	}
	clampNonNegative(g)
	return &CaseStudy{
		Name:      "Hangzhou Sunday (Case 1)",
		City:      city,
		G:         g,
		Intervals: T,
		StartHour: 0,
		Focus:     map[string]int{"A->B": ab, "B->A": ba},
	}, nil
}

// CaseStudy2 builds the football Saturday scenario of Fig. 13 on the State
// College preset: 12 hourly intervals from 6 am; the game starts at noon and
// trips toward the stadium peak around 9 am. O1 and O3 are highway-gate
// origins (out-of-town fans) and carry much more traffic than the local
// residential O2.
func CaseStudy2(scale float64, seed int64) (*CaseStudy, error) {
	city := StateCollege(CityOptions{Seed: seed})
	stadium := firstRegionOfKind(city, KindStadium)
	o1 := nthRegionOfKind(city, KindGate, 0)
	o3 := nthRegionOfKind(city, KindGate, 1)
	o2 := firstRegionOfKind(city, KindResidential)
	if stadium < 0 || o1 < 0 || o2 < 0 {
		return nil, fmt.Errorf("dataset: StateCollege preset lacks stadium/gate/residential regions")
	}
	if o3 < 0 {
		o3 = o1 // degenerate fallback; the preset normally has two gates
	}
	i1 := ensurePair(city, o1, stadium)
	i2 := ensurePair(city, o2, stadium)
	i3 := ensurePair(city, o3, stadium)

	if scale <= 0 {
		scale = 1
	}
	const T = 12 // 6:00 .. 18:00
	rng := rand.New(rand.NewSource(seed + 10))
	g := backgroundTOD(city, T, scale*0.3, rng)
	for t := 0; t < T; t++ {
		h := float64(t + 6)
		surge := bump(h, 9, 1.2) // arrive ~2h before the noon kickoff
		g.Set((2+60*surge)*scale*(1+0.1*rng.NormFloat64()), i1, t)
		g.Set((2+18*surge)*scale*(1+0.1*rng.NormFloat64()), i2, t)
		g.Set((2+55*surge)*scale*(1+0.1*rng.NormFloat64()), i3, t)
	}
	clampNonNegative(g)
	return &CaseStudy{
		Name:      "Football Saturday (Case 2)",
		City:      city,
		G:         g,
		Intervals: T,
		StartHour: 6,
		Focus:     map[string]int{"O1->Stadium": i1, "O2->Stadium": i2, "O3->Stadium": i3},
	}, nil
}

// backgroundTOD fills all pairs with light ambient traffic.
func backgroundTOD(city *City, intervals int, scale float64, rng *rand.Rand) *tensor.Tensor {
	if scale <= 0 {
		scale = 0.1
	}
	g := tensor.New(len(city.Pairs), intervals)
	for i := range city.Pairs {
		for t := 0; t < intervals; t++ {
			v := (2 + 2*rng.Float64()) * scale
			g.Set(v, i, t)
		}
	}
	return g
}

func clampNonNegative(g *tensor.Tensor) {
	g.NoteMutation()
	for i, v := range g.Data {
		if v < 0 {
			g.Data[i] = 0
		}
	}
}
