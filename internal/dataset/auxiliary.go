package dataset

import (
	"fmt"
	"math/rand"

	"ovs/internal/tensor"
)

// Auxiliary data (Table II): sparse or static side-channels that constrain
// the recovered solution. Each type maps onto one of the three levels of the
// generation chain (TOD, volume, speed) and is synthesized from ground truth
// with noise — exactly how the paper uses LEHD/camera/trajectory data to
// build auxiliary losses (§IV-E).

// Census is LEHD-like data: a noisy view of each OD pair's total daily trip
// count Σ_t g[i,t]. It constrains the TOD level.
type Census struct {
	// DailySum[i] approximates the horizon-total trips of OD pair i.
	DailySum []float64
}

// CensusFromTOD derives census data from a ground-truth TOD tensor with
// multiplicative noise of the given relative level.
func CensusFromTOD(g *tensor.Tensor, noise float64, rng *rand.Rand) *Census {
	n := g.Dim(0)
	out := &Census{DailySum: make([]float64, n)}
	for i := 0; i < n; i++ {
		sum := g.Row(i).Sum()
		out.DailySum[i] = sum * (1 + noise*rng.NormFloat64())
		if out.DailySum[i] < 0 {
			out.DailySum[i] = 0
		}
	}
	return out
}

// Cameras is surveillance-camera data: per-interval volume counts for a
// sparse subset of links. It constrains the volume level.
type Cameras struct {
	// Links lists the observed link IDs.
	Links []int
	// Volume is (len(Links) × T), rows aligned with Links.
	Volume *tensor.Tensor
}

// CamerasFromVolume samples numCams distinct links from a full volume tensor
// (M × T), adding Gaussian noise of the given absolute level.
func CamerasFromVolume(vol *tensor.Tensor, numCams int, noise float64, rng *rand.Rand) (*Cameras, error) {
	m, t := vol.Dim(0), vol.Dim(1)
	if numCams <= 0 || numCams > m {
		return nil, fmt.Errorf("dataset: numCams %d out of range (M=%d)", numCams, m)
	}
	perm := rng.Perm(m)[:numCams]
	out := &Cameras{Links: perm, Volume: tensor.New(numCams, t)}
	for r, j := range perm {
		for tt := 0; tt < t; tt++ {
			v := vol.At(j, tt) + noise*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			out.Volume.Set(v, r, tt)
		}
	}
	return out, nil
}

// Trajectories is taxi-GPS-like data: for a subset of OD pairs, the TOD time
// series of the observed vehicle fraction. It constrains the TOD level
// dynamically (Table II's "taxi trajectory" cell).
type Trajectories struct {
	// ODIdx lists the observed OD pair indices.
	ODIdx []int
	// G is (len(ODIdx) × T): observed (scaled-down) trip counts.
	G *tensor.Tensor
	// Fraction is the fleet penetration rate (taxis / all vehicles).
	Fraction float64
}

// TrajectoriesFromTOD samples numPairs OD rows at the given penetration
// fraction with Poisson-like observation noise.
func TrajectoriesFromTOD(g *tensor.Tensor, numPairs int, fraction float64, rng *rand.Rand) (*Trajectories, error) {
	n, t := g.Dim(0), g.Dim(1)
	if numPairs <= 0 || numPairs > n {
		return nil, fmt.Errorf("dataset: numPairs %d out of range (N=%d)", numPairs, n)
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: fraction %v out of (0,1]", fraction)
	}
	perm := rng.Perm(n)[:numPairs]
	out := &Trajectories{ODIdx: perm, G: tensor.New(numPairs, t), Fraction: fraction}
	for r, i := range perm {
		for tt := 0; tt < t; tt++ {
			mean := g.At(i, tt) * fraction
			obs := float64(poisson(rng, mean+1e-9))
			out.G.Set(obs, r, tt)
		}
	}
	return out, nil
}

// ScaleToFleet converts observed trajectory counts back to whole-fleet
// estimates (the paper scales taxi TOD by #all vehicles / #taxis).
func (tr *Trajectories) ScaleToFleet() *tensor.Tensor {
	return tensor.Scale(tr.G, 1/tr.Fraction)
}
