package dataset

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/sim"
)

func TestPatternNamesAndCount(t *testing.T) {
	if len(AllPatterns) != 5 {
		t.Fatalf("patterns = %d, want 5", len(AllPatterns))
	}
	names := map[string]bool{}
	for _, p := range AllPatterns {
		names[p.String()] = true
	}
	for _, want := range []string{"Random", "Increasing", "Decreasing", "Gaussian", "Poisson"} {
		if !names[want] {
			t.Fatalf("missing pattern %q", want)
		}
	}
}

func TestGenerateTODShapesAndNonNegativity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range AllPatterns {
		g := GenerateTOD(p, TODConfig{Pairs: 6, Intervals: 12}, rng)
		if g.Dim(0) != 6 || g.Dim(1) != 12 {
			t.Fatalf("%v: shape %v", p, g.Shape())
		}
		for _, v := range g.Data {
			if v < 0 {
				t.Fatalf("%v produced negative count", p)
			}
		}
	}
}

func TestRandomPatternRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GenerateTOD(PatternRandom, TODConfig{Pairs: 20, Intervals: 12}, rng)
	// Rates 1..20 veh/min over 10-minute intervals → counts in [10, 200].
	if g.Min() < 10 || g.Max() > 200 {
		t.Fatalf("random counts out of [10,200]: min=%v max=%v", g.Min(), g.Max())
	}
}

func TestIncreasingDecreasingTrends(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inc := GenerateTOD(PatternIncreasing, TODConfig{Pairs: 50, Intervals: 12}, rng)
	dec := GenerateTOD(PatternDecreasing, TODConfig{Pairs: 50, Intervals: 12}, rng)
	// Column means must trend in the right direction.
	colMean := func(g interface{ At(...int) float64 }, t, rows int) float64 {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += g.At(i, t)
		}
		return s / float64(rows)
	}
	if colMean(inc, 11, 50) <= colMean(inc, 0, 50) {
		t.Fatal("increasing pattern does not increase")
	}
	if colMean(dec, 11, 50) >= colMean(dec, 0, 50) {
		t.Fatal("decreasing pattern does not decrease")
	}
}

func TestGaussianPatternMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GenerateTOD(PatternGaussian, TODConfig{Pairs: 100, Intervals: 20}, rng)
	mean := g.Mean() / 10 // back to veh/min
	if math.Abs(mean-10) > 0.5 {
		t.Fatalf("gaussian mean %v veh/min, want ≈10", mean)
	}
}

func TestPoissonHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("poisson mean = %v, want ≈3", mean)
	}
}

func TestScaleShrinksCounts(t *testing.T) {
	rng1 := rand.New(rand.NewSource(6))
	rng2 := rand.New(rand.NewSource(6))
	full := GenerateTOD(PatternRandom, TODConfig{Pairs: 4, Intervals: 6}, rng1)
	half := GenerateTOD(PatternRandom, TODConfig{Pairs: 4, Intervals: 6, Scale: 0.5}, rng2)
	for i := range full.Data {
		if math.Abs(half.Data[i]-0.5*full.Data[i]) > 1e-9 {
			t.Fatal("Scale is not a pure multiplier")
		}
	}
}

func TestMixedTODCyclesPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := TODConfig{Pairs: 3, Intervals: 4}
	// Sample 0 and 5 use the same pattern slot (Random).
	_ = MixedTOD(0, cfg, rng)
	_ = MixedTOD(5, cfg, rng)
	// Just exercise all slots without panicking.
	for i := 0; i < 10; i++ {
		g := MixedTOD(i, cfg, rng)
		if g.Dim(0) != 3 || g.Dim(1) != 4 {
			t.Fatalf("MixedTOD %d shape %v", i, g.Shape())
		}
	}
}

func TestCityPresetsScale(t *testing.T) {
	cases := []struct {
		city    *City
		nodesLo int
		nodesHi int
		roadsLo int
		roadsHi int
	}{
		{Hangzhou(CityOptions{Seed: 1}), 40, 55, 50, 85},
		{Porto(CityOptions{Seed: 1}), 60, 85, 85, 140},
		{Manhattan(CityOptions{Seed: 1}), 100, 100, 180, 180},
		{StateCollege(CityOptions{Seed: 1}), 12, 18, 12, 22},
	}
	for _, tc := range cases {
		nodes := tc.city.Net.NumNodes()
		roads := tc.city.Net.NumLinks() / 2
		if nodes < tc.nodesLo || nodes > tc.nodesHi {
			t.Fatalf("%s: %d intersections, want [%d,%d]", tc.city.Name, nodes, tc.nodesLo, tc.nodesHi)
		}
		if roads < tc.roadsLo || roads > tc.roadsHi {
			t.Fatalf("%s: %d roads, want [%d,%d]", tc.city.Name, roads, tc.roadsLo, tc.roadsHi)
		}
		if !tc.city.Net.StronglyConnected() {
			t.Fatalf("%s not strongly connected", tc.city.Name)
		}
		if len(tc.city.Pairs) == 0 || len(tc.city.Pairs) != len(tc.city.ODs) {
			t.Fatalf("%s: pairs/ODs mismatch", tc.city.Name)
		}
		if len(tc.city.Kinds) != len(tc.city.Regions) {
			t.Fatalf("%s: kinds not aligned with regions", tc.city.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range append(RealCityNames, "StateCollege") {
		c, err := ByName(name, CityOptions{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if c.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, c.Name)
		}
	}
	if _, err := ByName("Atlantis", CityOptions{}); err == nil {
		t.Fatal("unknown city did not error")
	}
}

func TestClassifyRegionsMix(t *testing.T) {
	c := Manhattan(CityOptions{Seed: 3})
	res, com := 0, 0
	for _, k := range c.Kinds {
		switch k {
		case KindResidential:
			res++
		case KindCommercial:
			com++
		}
	}
	if res == 0 || com == 0 {
		t.Fatalf("classification degenerate: %d residential, %d commercial", res, com)
	}
}

func TestGroundTruthTODStructure(t *testing.T) {
	c := Hangzhou(CityOptions{Seed: 4})
	rng := rand.New(rand.NewSource(5))
	g := c.GroundTruthTOD(12, 1.0, rng)
	if g.Dim(0) != c.NumPairs() || g.Dim(1) != 12 {
		t.Fatalf("shape %v", g.Shape())
	}
	if g.Min() < 0 {
		t.Fatal("negative trips")
	}
	if g.Sum() == 0 {
		t.Fatal("empty ground truth")
	}
	// Deterministic per seed.
	g2 := c.GroundTruthTOD(12, 1.0, rand.New(rand.NewSource(5)))
	for i := range g.Data {
		if g.Data[i] != g2.Data[i] {
			t.Fatal("ground truth not deterministic")
		}
	}
}

func TestCensusFromTOD(t *testing.T) {
	c := SyntheticGrid(6, 6)
	rng := rand.New(rand.NewSource(7))
	g := c.GroundTruthTOD(8, 1, rng)
	census := CensusFromTOD(g, 0, rng)
	for i := range census.DailySum {
		if math.Abs(census.DailySum[i]-g.Row(i).Sum()) > 1e-9 {
			t.Fatal("noise-free census must equal row sums")
		}
	}
	noisy := CensusFromTOD(g, 0.2, rng)
	diff := 0.0
	for i := range noisy.DailySum {
		diff += math.Abs(noisy.DailySum[i] - g.Row(i).Sum())
		if noisy.DailySum[i] < 0 {
			t.Fatal("negative census value")
		}
	}
	if diff == 0 {
		t.Fatal("noisy census identical to truth")
	}
}

func TestCamerasFromVolume(t *testing.T) {
	c := SyntheticGrid(6, 8)
	s := sim.New(c.Net, sim.Config{Intervals: 4, IntervalSec: 120, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	g := GenerateTOD(PatternRandom, TODConfig{Pairs: c.NumPairs(), Intervals: 4, Scale: 0.1}, rng)
	res, err := s.Run(sim.Demand{ODs: c.ODs, G: g})
	if err != nil {
		t.Fatal(err)
	}
	cams, err := CamerasFromVolume(res.Volume, 5, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cams.Links) != 5 || cams.Volume.Dim(0) != 5 || cams.Volume.Dim(1) != 4 {
		t.Fatalf("camera shapes wrong: %v links, vol %v", len(cams.Links), cams.Volume.Shape())
	}
	seen := map[int]bool{}
	for _, l := range cams.Links {
		if seen[l] {
			t.Fatal("duplicate camera link")
		}
		seen[l] = true
	}
	if _, err := CamerasFromVolume(res.Volume, 0, 0, rng); err == nil {
		t.Fatal("numCams=0 did not error")
	}
	if _, err := CamerasFromVolume(res.Volume, 10_000, 0, rng); err == nil {
		t.Fatal("numCams>M did not error")
	}
}

func TestTrajectoriesFromTOD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := GenerateTOD(PatternGaussian, TODConfig{Pairs: 10, Intervals: 6}, rng)
	tr, err := TrajectoriesFromTOD(g, 4, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ODIdx) != 4 || tr.G.Dim(0) != 4 || tr.G.Dim(1) != 6 {
		t.Fatal("trajectory shapes wrong")
	}
	scaled := tr.ScaleToFleet()
	// Scaled means should be near the underlying rows on average.
	var obs, truth float64
	for r, i := range tr.ODIdx {
		obs += scaled.Row(r).Sum()
		truth += g.Row(i).Sum()
	}
	if obs == 0 {
		t.Fatal("no trajectory observations at 10% penetration")
	}
	ratio := obs / truth
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("fleet scaling ratio = %v, want ≈1", ratio)
	}
	if _, err := TrajectoriesFromTOD(g, 0, 0.1, rng); err == nil {
		t.Fatal("numPairs=0 did not error")
	}
	if _, err := TrajectoriesFromTOD(g, 2, 0, rng); err == nil {
		t.Fatal("fraction=0 did not error")
	}
}

func TestGenerateTrainingData(t *testing.T) {
	c := SyntheticGrid(6, 11)
	s := sim.New(c.Net, sim.Config{Intervals: 4, IntervalSec: 120, Seed: 0})
	samples, err := Generate(s, c, GenerateOptions{
		Count: 5,
		TOD:   TODConfig{Intervals: 4, Scale: 0.05},
		Seed:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	m := c.Net.NumLinks()
	for i, smp := range samples {
		if smp.G.Dim(0) != c.NumPairs() || smp.G.Dim(1) != 4 {
			t.Fatalf("sample %d TOD shape %v", i, smp.G.Shape())
		}
		if smp.Volume.Dim(0) != m || smp.Speed.Dim(0) != m {
			t.Fatalf("sample %d link dims wrong", i)
		}
		if smp.Speed.Min() <= 0 {
			t.Fatalf("sample %d has non-positive speed", i)
		}
	}
	// Determinism.
	again, err := Generate(s, c, GenerateOptions{Count: 5, TOD: TODConfig{Intervals: 4, Scale: 0.05}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		for j := range samples[i].Speed.Data {
			if samples[i].Speed.Data[j] != again[i].Speed.Data[j] {
				t.Fatal("Generate not deterministic")
			}
		}
	}
}

func TestGroundTruthSimulation(t *testing.T) {
	c := SyntheticGrid(6, 13)
	s := sim.New(c.Net, sim.Config{Intervals: 4, IntervalSec: 120, Seed: 0})
	gt, err := GroundTruth(s, c, 0.05, 14)
	if err != nil {
		t.Fatal(err)
	}
	if gt.G == nil || gt.Volume == nil || gt.Speed == nil {
		t.Fatal("incomplete ground truth")
	}
}

func TestCaseStudy1Shape(t *testing.T) {
	cs, err := CaseStudy1(0.2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Intervals != 24 || cs.G.Dim(1) != 24 {
		t.Fatalf("case 1 intervals = %d", cs.Intervals)
	}
	ab, ok1 := cs.Focus["A->B"]
	ba, ok2 := cs.Focus["B->A"]
	if !ok1 || !ok2 {
		t.Fatal("case 1 focus pairs missing")
	}
	// A->B peaks near 10:00 and is low at 3:00.
	rowAB := cs.G.Row(ab)
	if rowAB.At(10) <= rowAB.At(3) {
		t.Fatalf("A->B 10am (%v) not above 3am (%v)", rowAB.At(10), rowAB.At(3))
	}
	if rowAB.At(18) <= rowAB.At(3) {
		t.Fatal("A->B 6pm peak missing")
	}
	// B->A peaks late evening.
	rowBA := cs.G.Row(ba)
	if rowBA.At(21) <= rowBA.At(10) {
		t.Fatalf("B->A 9pm (%v) not above 10am (%v)", rowBA.At(21), rowBA.At(10))
	}
	if cs.HourOf(0) != 0 || cs.HourOf(25) != 1 {
		t.Fatal("HourOf wrong")
	}
}

func TestCaseStudy2Shape(t *testing.T) {
	cs, err := CaseStudy2(0.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Intervals != 12 {
		t.Fatalf("case 2 intervals = %d", cs.Intervals)
	}
	i1 := cs.Focus["O1->Stadium"]
	i2 := cs.Focus["O2->Stadium"]
	i3 := cs.Focus["O3->Stadium"]
	// Peak at 9am = interval 3 (start 6am).
	peakIdx := 3
	if cs.HourOf(peakIdx) != 9 {
		t.Fatalf("interval 3 is hour %d, want 9", cs.HourOf(peakIdx))
	}
	for name, idx := range cs.Focus {
		row := cs.G.Row(idx)
		if row.At(peakIdx) <= row.At(11) {
			t.Fatalf("%s: 9am (%v) not above 5pm (%v)", name, row.At(peakIdx), row.At(11))
		}
	}
	// Highway gates O1/O3 outdraw local O2.
	if cs.G.Row(i1).Sum() <= cs.G.Row(i2).Sum() || cs.G.Row(i3).Sum() <= cs.G.Row(i2).Sum() {
		t.Fatal("gate origins do not dominate local origin")
	}
	_ = i1
	_ = i3
}

func TestGenerateScaleJitter(t *testing.T) {
	c := SyntheticGrid(4, 31)
	s := sim.New(c.Net, sim.Config{Intervals: 3, IntervalSec: 120, Seed: 0})
	fixed, err := Generate(s, c, GenerateOptions{
		Count: 10, TOD: TODConfig{Intervals: 3, Scale: 0.5}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := Generate(s, c, GenerateOptions{
		Count: 10, TOD: TODConfig{Intervals: 3, Scale: 0.5},
		ScaleJitter: [2]float64{0.2, 2.0}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Jitter must actually change per-sample demand magnitudes.
	changed := 0
	for i := range fixed {
		if math.Abs(fixed[i].G.Sum()-jittered[i].G.Sum()) > 1e-9 {
			changed++
		}
	}
	if changed < 7 {
		t.Fatalf("scale jitter changed only %d of 10 samples", changed)
	}
	// Same-pattern sample pairs (i, i+5) isolate the scale factor from the
	// pattern mix: jittered pairs must span a wider ratio than fixed pairs
	// (whose ratio only reflects pattern noise).
	maxPairRatio := func(samples []Sample) float64 {
		worst := 1.0
		for i := 0; i < 5; i++ {
			a, b := samples[i].G.Sum(), samples[i+5].G.Sum()
			r := a / b
			if r < 1 {
				r = 1 / r
			}
			if r > worst {
				worst = r
			}
		}
		return worst
	}
	if maxPairRatio(jittered) <= maxPairRatio(fixed) {
		t.Fatalf("jittered same-pattern ratio %v not wider than fixed %v",
			maxPairRatio(jittered), maxPairRatio(fixed))
	}
}
