// Package core implements OVS (Origin-destination-Volume-Speed), the
// paper's contribution: a modular model of the TOD → volume → speed
// generation chain that can be fitted to city-wide speed observations to
// recover the temporal origin-destination tensor.
//
// The three modules mirror §IV:
//
//   - TOD Generation (Eqs. 1-2): Gaussian seeds through two sigmoid FC
//     layers produce the TOD tensor.
//   - TOD-Volume Mapping (Eqs. 3-8): an OD→route split followed by a dynamic
//     2-D attention network (1×3 convolutions over route trip-count series,
//     aggregation into a system embedding, FC+softmax over lag windows) that
//     turns route trip counts into link volumes.
//   - Volume-Speed Mapping (Eqs. 9-11): shared LSTM→LSTM→FC layers mapping
//     each link's volume series (plus static link features) to speed.
//
// Training follows Fig. 8: stage 1 fits Volume-Speed on generated
// (volume, speed) pairs; stage 2 freezes it and fits TOD-Volume through the
// speed loss; at test time both are frozen and only TOD Generation is
// optimized against the observed speed tensor (plus optional auxiliary
// losses, §IV-E).
package core

// Config collects the model hyperparameters. Zero values select defaults
// scaled down for fast experiments; PaperConfig returns the values from
// Tables IV and V.
type Config struct {
	// Hidden is the FC width of the TOD generator and OD-route submodules
	// (paper: 16).
	Hidden int
	// LSTMHidden is the hidden width of the two Volume-Speed LSTMs
	// (paper: 128; default 24 keeps CI runs fast).
	LSTMHidden int
	// V2SFC is the FC width between the LSTMs and the speed head (paper: 32).
	V2SFC int
	// ConvChannels is the channel count of the two attention convolutions.
	ConvChannels int
	// Lookback is the attention window W: how many past intervals a link's
	// volume may attend to (the paper's "number of time frames to look back"
	// hyperparameter).
	Lookback int
	// MaxPos caps the per-route link-position buckets for the positional
	// component of the attention.
	MaxPos int
	// RoutesPerOD is k in the k-shortest-route split (1 = the paper's
	// simplification that each OD uses a single route).
	RoutesPerOD int
	// MaxTrips scales the sigmoid output of the TOD generator to trip
	// counts. Set it to (slightly above) the largest per-interval count the
	// training patterns can produce.
	MaxTrips float64
	// VolumeNorm normalizes volumes before the Volume-Speed LSTM.
	VolumeNorm float64
	// DropoutRate is applied inside TOD-Volume training (paper: 0.3).
	DropoutRate float64
	// LR is the Adam learning rate (paper: 0.001).
	LR float64
	// VolumeLossWeight adds direct volume supervision to stage-2 training.
	// The paper trains stage 2 through the speed loss alone; a small volume
	// term greatly accelerates the short training schedules used in tests
	// and is set to 0 by PaperConfig.
	VolumeLossWeight float64
	// GradClip bounds the global gradient norm (0 disables).
	GradClip float64
	// FitRestarts repeats the test-time fit from fresh generator seeds and
	// keeps the lowest-loss recovery (mitigates the multiple-solutions
	// issue; 1 = single fit).
	FitRestarts int
	// InitTripLevel sets the TOD generator's initial output as a fraction of
	// MaxTrips (0 = 0.5, the sigmoid midpoint). Calibrating it to the mean
	// of the generated training demand starts the test-time fit at a
	// sensible prior.
	InitTripLevel float64
	// RobustDelta, when positive, replaces the fit's squared speed error
	// with a pseudo-Huber loss of that scale (m/s). Residuals beyond the
	// scale grow linearly instead of quadratically, so links whose
	// volume-speed behavior changed after training (road work, accidents —
	// the RQ3 scenario) cannot dominate the recovered demand. 0 keeps MSE.
	RobustDelta float64
	// SmoothWeight penalizes successive-interval differences of the
	// recovered TOD during fitting (normalized units). Travel demand varies
	// smoothly in time; the penalty discards the wildly oscillating members
	// of the solution set that match speed equally well (§I's multiple-
	// solutions issue). 0 disables.
	SmoothWeight float64
	// Seed drives weight initialization and the generator's Gaussian seeds.
	Seed int64
	// Workers bounds the goroutines used by parallel graph construction and
	// multi-restart fitting: 0 uses the process-wide default (see
	// internal/parallel, runtime.GOMAXPROCS at startup), 1 forces exact
	// serial execution. Results are identical at every setting; see the
	// determinism contract in internal/parallel.
	Workers int
}

// DefaultConfig returns a configuration sized for second-scale experiment
// runs (used by tests and the scaled-down benchmark harness).
func DefaultConfig() Config {
	return Config{
		Hidden:           16,
		LSTMHidden:       24,
		V2SFC:            16,
		ConvChannels:     4,
		Lookback:         6,
		MaxPos:           6,
		RoutesPerOD:      1,
		MaxTrips:         250,
		VolumeNorm:       50,
		DropoutRate:      0.0,
		LR:               0.01,
		VolumeLossWeight: 3.0,
		GradClip:         5,
		FitRestarts:      1,
		SmoothWeight:     2.0,
		Seed:             1,
	}
}

// PaperConfig returns the architecture and optimizer values of Tables IV
// and V: FC(16) stacks, LSTM(128)×2 + FC(32), learning rate 0.001, dropout
// 0.3, and speed-only stage-2 supervision.
func PaperConfig() Config {
	c := DefaultConfig()
	c.LSTMHidden = 128
	c.V2SFC = 32
	c.LR = 0.001
	c.DropoutRate = 0.3
	c.VolumeLossWeight = 0
	return c
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
	if c.LSTMHidden <= 0 {
		c.LSTMHidden = d.LSTMHidden
	}
	if c.V2SFC <= 0 {
		c.V2SFC = d.V2SFC
	}
	if c.ConvChannels <= 0 {
		c.ConvChannels = d.ConvChannels
	}
	if c.Lookback <= 0 {
		c.Lookback = d.Lookback
	}
	if c.MaxPos <= 0 {
		c.MaxPos = d.MaxPos
	}
	if c.RoutesPerOD <= 0 {
		c.RoutesPerOD = d.RoutesPerOD
	}
	if c.MaxTrips <= 0 {
		c.MaxTrips = d.MaxTrips
	}
	if c.VolumeNorm <= 0 {
		c.VolumeNorm = d.VolumeNorm
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.GradClip < 0 {
		c.GradClip = 0
	}
	if c.FitRestarts <= 0 {
		c.FitRestarts = 1
	}
	if c.Workers < 0 {
		c.Workers = 1
	}
	return c
}
