package core

import (
	"fmt"
	"io"

	"ovs/internal/nn"
)

// Save writes all trainable parameters of the model (all three modules) as
// JSON. The TOD generator's Gaussian seeds are not saved; a loaded model is
// meant to be re-fitted to a new observation, which is exactly the paper's
// deployment story (train the mappings once per city, fit the generator per
// observation window).
func (m *Model) Save(w io.Writer) error {
	if err := nn.SaveParams(w, m.Params()); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// Load restores parameters saved by Save into this model. The model must
// have been constructed over an identical topology and configuration;
// mismatched shapes are rejected.
func (m *Model) Load(r io.Reader) error {
	if err := nn.LoadParams(r, m.Params()); err != nil {
		return fmt.Errorf("core: load model: %w", err)
	}
	return nil
}
