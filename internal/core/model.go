package core

import (
	"fmt"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// Sample is one (TOD, volume, speed) training triple from the generation
// stage of Fig. 7. Shapes: G is (N_od × T); Volume and Speed are (M × T).
type Sample struct {
	G      *tensor.Tensor
	Volume *tensor.Tensor
	Speed  *tensor.Tensor
}

// Topology is the precomputed routing structure the TOD-Volume mapping
// operates on: the routes of every OD pair and, for every link, the list of
// (route, position) incidences — "OD i contains link l_j" in the paper's
// terminology, enriched with how far along the route the link sits.
type Topology struct {
	Net    *roadnet.Network
	T      int             // intervals
	N      int             // OD pairs
	M      int             // links
	Routes []roadnet.Route // all routes, grouped by OD: OD i owns Routes[i*K:(i+1)*K]
	K      int             // routes per OD

	// linkRoutes[j] lists incidences of link j.
	linkRoutes [][]incidence

	// Static per-link features for the Volume-Speed module, (M × 4):
	// normalized length, lanes, speed limit, capacity.
	linkFeatures *tensor.Tensor
	speedLimits  []float64
}

// incidence records that a route passes over a link at a given position.
type incidence struct {
	route int // global route index
	pos   int // 0-based position of the link within the route
}

// NewTopology computes k-shortest routes for each OD node pair and indexes
// link incidences. pairs holds (origin node, destination node) per OD.
func NewTopology(net *roadnet.Network, pairs [][2]int, t, k int) (*Topology, error) {
	if t <= 0 {
		return nil, fmt.Errorf("core: topology requires T > 0")
	}
	if k <= 0 {
		k = 1
	}
	topo := &Topology{
		Net: net, T: t, N: len(pairs), M: net.NumLinks(), K: k,
	}
	topo.Routes = make([]roadnet.Route, 0, len(pairs)*k)
	for i, p := range pairs {
		routes, err := net.KShortestPaths(p[0], p[1], k, nil)
		if err != nil {
			return nil, fmt.Errorf("core: routes for OD %d (%d→%d): %w", i, p[0], p[1], err)
		}
		// Pad by repeating the best route so every OD owns exactly k slots.
		for len(routes) < k {
			routes = append(routes, routes[0])
		}
		topo.Routes = append(topo.Routes, routes[:k]...)
	}
	topo.linkRoutes = make([][]incidence, topo.M)
	for r, route := range topo.Routes {
		for pos, linkID := range route {
			topo.linkRoutes[linkID] = append(topo.linkRoutes[linkID], incidence{route: r, pos: pos})
		}
	}
	topo.buildLinkFeatures()
	return topo, nil
}

func (tp *Topology) buildLinkFeatures() {
	tp.linkFeatures = tensor.New(tp.M, 4)
	tp.speedLimits = make([]float64, tp.M)
	var maxLen, maxLanes, maxSpeed, maxCap float64
	for _, l := range tp.Net.Links {
		maxLen = maxf(maxLen, l.Length)
		maxLanes = maxf(maxLanes, float64(l.Lanes))
		maxSpeed = maxf(maxSpeed, l.SpeedLimit)
		maxCap = maxf(maxCap, l.Capacity)
	}
	for j, l := range tp.Net.Links {
		tp.linkFeatures.Set(l.Length/maxLen, j, 0)
		tp.linkFeatures.Set(float64(l.Lanes)/maxLanes, j, 1)
		tp.linkFeatures.Set(l.SpeedLimit/maxSpeed, j, 2)
		tp.linkFeatures.Set(l.Capacity/maxCap, j, 3)
		tp.speedLimits[j] = l.SpeedLimit
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RoutesOfOD returns the route slots of OD i.
func (tp *Topology) RoutesOfOD(i int) []roadnet.Route {
	return tp.Routes[i*tp.K : (i+1)*tp.K]
}

// Model is the full OVS stack.
type Model struct {
	Cfg  Config
	Topo *Topology

	TODGen TODGenModule
	T2V    T2VModule
	V2S    V2SModule

	rng *rand.Rand
	// rngSrc is the counting source behind rng; checkpoints record its
	// (seed, draws) position so a resumed run replays the exact stream.
	rngSrc *autodiff.CountingSource
}

// TODGenModule generates the TOD tensor (N × T) from internal seeds.
// Reseed redraws the Gaussian seeds, giving test-time fitting a fresh
// starting point (used by multi-restart fitting). StateTensors exposes the
// tensors that fully determine the generator's output, in a fixed order
// shared across instances of the same concrete type — FitBest copies them
// to snapshot and restore the winning restart.
type TODGenModule interface {
	Generate(g *autodiff.Graph) *autodiff.Node
	Params() []*autodiff.Parameter
	Reseed(rng *rand.Rand)
	StateTensors() []*tensor.Tensor
}

// CloneableTODGen is the optional capability FitBest uses to run restarts
// concurrently: CloneTODGen returns a deep, independent copy of the
// generator whose StateTensors align index-for-index with the original's.
type CloneableTODGen interface {
	TODGenModule
	CloneTODGen() TODGenModule
}

// T2VModule maps a TOD tensor node (N × T) to link volumes (M × T).
type T2VModule interface {
	MapVolume(g *autodiff.Graph, tod *autodiff.Node, train bool) *autodiff.Node
	Params() []*autodiff.Parameter
}

// V2SModule maps link volumes (M × T) to link speeds (M × T).
type V2SModule interface {
	MapSpeed(g *autodiff.Graph, vol *autodiff.Node, train bool) *autodiff.Node
	Params() []*autodiff.Parameter
}

// NewModel builds an OVS model over the given topology with the standard
// three modules. Use the With* setters (or construct Model directly) to swap
// modules for the Table IX ablations.
func NewModel(topo *Topology, cfg Config) *Model {
	cfg = cfg.withDefaults()
	// The counting source is stream-transparent (bit-identical to a plain
	// rand.NewSource(cfg.Seed)), so seeded behavior is unchanged; it exists so
	// checkpoints can record and restore the RNG position.
	src := autodiff.NewCountingSource(cfg.Seed)
	rng := rand.New(src)
	return &Model{
		Cfg:    cfg,
		Topo:   topo,
		TODGen: NewTODGenerator(topo, cfg, rng),
		T2V:    NewAttentionT2V(topo, cfg, rng),
		V2S:    NewLSTMV2S(topo, cfg, rng),
		rng:    rng,
		rngSrc: src,
	}
}

// PredictVolume runs the TOD-Volume mapping on a concrete TOD tensor.
func (m *Model) PredictVolume(tod *tensor.Tensor) *tensor.Tensor {
	g := autodiff.NewGraph()
	defer g.Release()
	out := m.T2V.MapVolume(g, g.Const(tod), false)
	return out.Value.Clone()
}

// PredictSpeed runs the Volume-Speed mapping on a concrete volume tensor.
func (m *Model) PredictSpeed(vol *tensor.Tensor) *tensor.Tensor {
	g := autodiff.NewGraph()
	defer g.Release()
	out := m.V2S.MapSpeed(g, g.Const(vol), false)
	return out.Value.Clone()
}

// Forward runs TOD → volume → speed on a concrete TOD tensor.
func (m *Model) Forward(tod *tensor.Tensor) (vol, speed *tensor.Tensor) {
	g := autodiff.NewGraph()
	defer g.Release()
	vNode := m.T2V.MapVolume(g, g.Const(tod), false)
	sNode := m.V2S.MapSpeed(g, vNode, false)
	return vNode.Value.Clone(), sNode.Value.Clone()
}

// GenerateTOD evaluates the TOD generator's current output.
func (m *Model) GenerateTOD() *tensor.Tensor {
	g := autodiff.NewGraph()
	defer g.Release()
	return m.TODGen.Generate(g).Value.Clone()
}

// Params returns all trainable parameters across the three modules.
func (m *Model) Params() []*autodiff.Parameter {
	var ps []*autodiff.Parameter
	ps = append(ps, m.TODGen.Params()...)
	ps = append(ps, m.T2V.Params()...)
	ps = append(ps, m.V2S.Params()...)
	return ps
}
