package core

import (
	"math/rand"
	"runtime"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// fitObs builds a deterministic synthetic speed observation for a model by
// pushing a fixed TOD through its (untrained) forward chain.
func fitObs(m *Model, level float64) *tensor.Tensor {
	tod := tensor.Full(level, m.Topo.N, m.Topo.T)
	_, speed := m.Forward(tod)
	return speed
}

// TestFitBestRestoresWinner is the regression test for the stale-best-state
// bug: after FitBest with several restarts, the model's generator must hold
// the winning restart's state, so GenerateTOD (and Save) agree exactly with
// the returned recovery.
func TestFitBestRestoresWinner(t *testing.T) {
	topo := testTopo(t, 4, 1)
	cfg := DefaultConfig()
	cfg.MaxTrips = 50
	cfg.Seed = 11
	m := NewModel(topo, cfg)
	obs := fitObs(m, 12)

	rec, hist, err := m.FitBest(obs, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history length %d, want 2", len(hist))
	}
	if !tensor.AllClose(rec, m.GenerateTOD(), 0) {
		t.Fatal("m.GenerateTOD() does not match the TOD returned by FitBest")
	}
}

// cannedGen is a TODGenModule whose output is a canned tensor; Reseed
// switches to the next canned state. It does not implement CloneableTODGen,
// so it exercises FitBest's serial snapshot/restore fallback.
type cannedGen struct {
	cur    *tensor.Tensor
	states []*tensor.Tensor
	next   int
	dummy  *autodiff.Parameter
}

func (c *cannedGen) Generate(g *autodiff.Graph) *autodiff.Node { return g.Const(c.cur) }
func (c *cannedGen) Params() []*autodiff.Parameter             { return []*autodiff.Parameter{c.dummy} }
func (c *cannedGen) StateTensors() []*tensor.Tensor            { return []*tensor.Tensor{c.cur} }
func (c *cannedGen) Reseed(*rand.Rand) {
	copy(c.cur.Data, c.states[c.next%len(c.states)].Data)
	c.next++
}

// TestFitBestSelectsPureSpeedLoss pins the winner criterion: the restart
// with the lower re-evaluated speed loss must win even when the smoothness
// regularizer makes its *total* training loss far higher.
func TestFitBestSelectsPureSpeedLoss(t *testing.T) {
	topo := testTopo(t, 4, 1)
	cfg := DefaultConfig()
	cfg.MaxTrips = 50
	// Heavy smoothing: the oscillating (but speed-exact) state has a much
	// larger total loss than the flat (but speed-wrong) one.
	cfg.SmoothWeight = 1000
	cfg.Seed = 13
	m := NewModel(topo, cfg)

	// State A oscillates between 0 and 40 trips; it defines the observation,
	// so its speed loss is exactly 0 while its smooth penalty is maximal.
	a := tensor.New(topo.N, topo.T)
	for i := range a.Data {
		if i%2 == 0 {
			a.Data[i] = 40
		}
	}
	_, obs := m.Forward(a)
	// State B is perfectly smooth but does not match the observation.
	b := tensor.Full(20, topo.N, topo.T)

	m.TODGen = &cannedGen{
		cur:    a.Clone(),
		states: []*tensor.Tensor{b},
		dummy:  autodiff.NewParameter("canned.dummy", tensor.New(1)),
	}
	rec, _, err := m.FitBest(obs, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(rec, a, 0) {
		t.Fatal("FitBest did not select the restart with the lowest pure speed loss")
	}
	if !tensor.AllClose(m.GenerateTOD(), a, 0) {
		t.Fatal("winning state was not restored into the generator")
	}
}

// TestModuleWorkerEquivalence checks that MapVolume, MapSpeed and the full
// test-time fit produce bitwise-identical results for Workers ∈ {1, 2,
// GOMAXPROCS}.
func TestModuleWorkerEquivalence(t *testing.T) {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	topo := testTopo(t, 4, 2)
	tod := tensor.Full(15, topo.N, topo.T)

	build := func(workers int) *Model {
		cfg := DefaultConfig()
		cfg.MaxTrips = 60
		cfg.RoutesPerOD = 2
		cfg.Seed = 17
		cfg.Workers = workers
		return NewModel(topo, cfg)
	}

	ref := build(1)
	refVol := ref.PredictVolume(tod)
	refSpeed := ref.PredictSpeed(refVol)
	obs := fitObs(ref, 10)
	refRec, refHist, err := ref.Fit(obs, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range counts[1:] {
		m := build(w)
		if !tensor.AllClose(m.PredictVolume(tod), refVol, 0) {
			t.Fatalf("workers=%d: MapVolume differs from workers=1", w)
		}
		if !tensor.AllClose(m.PredictSpeed(refVol), refSpeed, 0) {
			t.Fatalf("workers=%d: MapSpeed differs from workers=1", w)
		}
		rec, hist, err := m.Fit(obs, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(rec, refRec, 0) {
			t.Fatalf("workers=%d: fitted TOD differs from workers=1", w)
		}
		for e := range refHist {
			if hist[e] != refHist[e] {
				t.Fatalf("workers=%d: loss history diverges at epoch %d: %v vs %v", w, e, hist[e], refHist[e])
			}
		}
	}
}

// TestFitBestWorkerEquivalence checks that concurrent restarts recover the
// same TOD as serial ones: the restart seeds are drawn serially up front, so
// the worker count must not leak into the result.
func TestFitBestWorkerEquivalence(t *testing.T) {
	topo := testTopo(t, 4, 1)
	run := func(workers int) *tensor.Tensor {
		cfg := DefaultConfig()
		cfg.MaxTrips = 50
		cfg.Seed = 23
		cfg.Workers = workers
		m := NewModel(topo, cfg)
		obs := fitObs(m, 12)
		rec, _, err := m.FitBest(obs, 2, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if !tensor.AllClose(run(w), ref, 0) {
			t.Fatalf("workers=%d: FitBest recovery differs from workers=1", w)
		}
	}
}
