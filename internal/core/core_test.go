package core

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// testTopo builds a small 2x3 grid topology with a handful of OD pairs.
func testTopo(t *testing.T, intervals, k int) *Topology {
	t.Helper()
	net := roadnet.Grid(roadnet.GridConfig{Rows: 2, Cols: 3})
	pairs := [][2]int{{0, 5}, {5, 0}, {2, 3}, {3, 2}}
	topo, err := NewTopology(net, pairs, intervals, k)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyStructure(t *testing.T) {
	topo := testTopo(t, 6, 1)
	if topo.N != 4 || topo.T != 6 || topo.K != 1 {
		t.Fatalf("topology dims N=%d T=%d K=%d", topo.N, topo.T, topo.K)
	}
	if topo.M != topo.Net.NumLinks() {
		t.Fatalf("M=%d != links %d", topo.M, topo.Net.NumLinks())
	}
	if len(topo.Routes) != 4 {
		t.Fatalf("routes = %d, want 4", len(topo.Routes))
	}
	// Every route must be valid for its OD.
	pairs := [][2]int{{0, 5}, {5, 0}, {2, 3}, {3, 2}}
	for i, r := range topo.Routes {
		if !r.Valid(topo.Net, pairs[i][0], pairs[i][1]) {
			t.Fatalf("route %d invalid", i)
		}
	}
	// Incidences must be consistent: link j's incidences reference routes
	// that actually contain j at that position.
	for j, incs := range topo.linkRoutes {
		for _, inc := range incs {
			if topo.Routes[inc.route][inc.pos] != j {
				t.Fatalf("incidence mismatch at link %d", j)
			}
		}
	}
}

func TestTopologyKRoutes(t *testing.T) {
	topo := testTopo(t, 4, 2)
	if len(topo.Routes) != 8 {
		t.Fatalf("routes = %d, want 8 (4 ODs × 2)", len(topo.Routes))
	}
	for i := 0; i < 4; i++ {
		rs := topo.RoutesOfOD(i)
		if len(rs) != 2 {
			t.Fatalf("OD %d has %d route slots", i, len(rs))
		}
	}
}

func TestTopologyLinkFeaturesNormalized(t *testing.T) {
	topo := testTopo(t, 4, 1)
	for j := 0; j < topo.M; j++ {
		for f := 0; f < 4; f++ {
			v := topo.linkFeatures.At(j, f)
			if v <= 0 || v > 1 {
				t.Fatalf("feature (%d,%d) = %v out of (0,1]", j, f, v)
			}
		}
	}
}

func TestTODGeneratorOutput(t *testing.T) {
	topo := testTopo(t, 6, 1)
	cfg := DefaultConfig()
	cfg.MaxTrips = 100
	m := NewModel(topo, cfg)
	tod := m.GenerateTOD()
	if tod.Dim(0) != 4 || tod.Dim(1) != 6 {
		t.Fatalf("TOD shape %v", tod.Shape())
	}
	if tod.Min() < 0 || tod.Max() > 100 {
		t.Fatalf("TOD out of [0, MaxTrips]: min=%v max=%v", tod.Min(), tod.Max())
	}
	// Deterministic given the same seed.
	m2 := NewModel(topo, cfg)
	if !tensor.AllClose(tod, m2.GenerateTOD(), 0) {
		t.Fatal("TOD generation not deterministic per seed")
	}
}

func TestTODGeneratorReseedChangesOutput(t *testing.T) {
	topo := testTopo(t, 6, 1)
	m := NewModel(topo, DefaultConfig())
	before := m.GenerateTOD()
	m.TODGen.(*TODGenerator).Reseed(rand.New(rand.NewSource(99)))
	after := m.GenerateTOD()
	if tensor.AllClose(before, after, 1e-12) {
		t.Fatal("reseed did not change generator output")
	}
}

func TestAttentionT2VShapesAndMassPreservation(t *testing.T) {
	topo := testTopo(t, 6, 1)
	m := NewModel(topo, DefaultConfig())
	tod := tensor.Full(10, 4, 6)
	vol := m.PredictVolume(tod)
	if vol.Dim(0) != topo.M || vol.Dim(1) != 6 {
		t.Fatalf("volume shape %v", vol.Shape())
	}
	// Attention is a softmax over lags: each (route, link) contributes a
	// lag-smoothed copy of its trip series, so per-link volume cannot exceed
	// the sum of the incident routes' peak counts.
	for j := 0; j < topo.M; j++ {
		bound := float64(len(topo.linkRoutes[j])) * 10.0
		for tt := 0; tt < 6; tt++ {
			if vol.At(j, tt) > bound+1e-9 {
				t.Fatalf("volume (%d,%d) = %v exceeds mass bound %v", j, tt, vol.At(j, tt), bound)
			}
			if vol.At(j, tt) < 0 {
				t.Fatalf("negative volume at (%d,%d)", j, tt)
			}
		}
	}
	// Links with no incident route must be exactly zero.
	for j := 0; j < topo.M; j++ {
		if len(topo.linkRoutes[j]) == 0 && vol.Row(j).Norm2() != 0 {
			t.Fatalf("unused link %d has non-zero volume", j)
		}
	}
}

func TestAttentionT2VRespondsToDemand(t *testing.T) {
	topo := testTopo(t, 6, 1)
	m := NewModel(topo, DefaultConfig())
	low := m.PredictVolume(tensor.Full(1, 4, 6))
	high := m.PredictVolume(tensor.Full(100, 4, 6))
	if high.Sum() <= low.Sum() {
		t.Fatal("volume not increasing in demand")
	}
	if high.Sum() < 50*low.Sum() {
		t.Fatalf("volume response too weak: low=%v high=%v", low.Sum(), high.Sum())
	}
}

func TestV2SShapesAndSpeedLimits(t *testing.T) {
	topo := testTopo(t, 6, 1)
	m := NewModel(topo, DefaultConfig())
	vol := tensor.Full(20, topo.M, 6)
	speed := m.PredictSpeed(vol)
	if speed.Dim(0) != topo.M || speed.Dim(1) != 6 {
		t.Fatalf("speed shape %v", speed.Shape())
	}
	for j := 0; j < topo.M; j++ {
		limit := topo.Net.Links[j].SpeedLimit
		for tt := 0; tt < 6; tt++ {
			v := speed.At(j, tt)
			if v < 0 || v > limit {
				t.Fatalf("speed (%d,%d) = %v outside [0, %v]", j, tt, v, limit)
			}
		}
	}
}

func TestRouteSplitConservesTrips(t *testing.T) {
	topo := testTopo(t, 6, 2)
	m := NewModel(topo, DefaultConfig())
	a := m.T2V.(*AttentionT2V)
	g := autodiff.NewGraph()
	tod := tensor.Full(10, 4, 6)
	// Inspect the split directly: softmax rows sum to 1, so route counts for
	// one OD sum to its TOD row.
	split := autodiff.SoftmaxRows(g.Param(a.splitLogits))
	for i := 0; i < topo.N; i++ {
		s := 0.0
		for k := 0; k < topo.K; k++ {
			s += split.Value.At(i, k)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("route split row %d sums to %v", i, s)
		}
	}
	// End to end volumes stay bounded by the same mass argument as K=1.
	vol := m.PredictVolume(tod)
	if vol.Min() < 0 {
		t.Fatal("negative volume with K=2")
	}
}

func TestV2STrainingConverges(t *testing.T) {
	topo := testTopo(t, 6, 1)
	cfg := DefaultConfig()
	m := NewModel(topo, cfg)
	// Synthetic monotone task: speed = limit * 1/(1+q/50).
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for s := 0; s < 4; s++ {
		vol := tensor.New(topo.M, 6)
		speed := tensor.New(topo.M, 6)
		for j := 0; j < topo.M; j++ {
			limit := topo.Net.Links[j].SpeedLimit
			for tt := 0; tt < 6; tt++ {
				q := rng.Float64() * 100
				vol.Set(q, j, tt)
				speed.Set(limit/(1+q/50), j, tt)
			}
		}
		samples = append(samples, Sample{Volume: vol, Speed: speed})
	}
	hist, err := m.TrainV2S(samples, 25)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0]*0.5 {
		t.Fatalf("V2S loss did not halve: %v -> %v", hist[0], hist[len(hist)-1])
	}
	// The learned map must be congestion-monotone on average: heavy volume
	// gives slower prediction than light volume.
	light := m.PredictSpeed(tensor.Full(2, topo.M, 6))
	heavy := m.PredictSpeed(tensor.Full(95, topo.M, 6))
	if heavy.Mean() >= light.Mean() {
		t.Fatalf("learned V2S not congestion-monotone: light=%v heavy=%v", light.Mean(), heavy.Mean())
	}
}

func TestTrainErrorsWithoutSamples(t *testing.T) {
	topo := testTopo(t, 4, 1)
	m := NewModel(topo, DefaultConfig())
	if _, err := m.TrainV2S(nil, 1); err == nil {
		t.Fatal("TrainV2S with no samples did not error")
	}
	if _, err := m.TrainT2V(nil, 1); err == nil {
		t.Fatal("TrainT2V with no samples did not error")
	}
}

func TestFitValidatesShape(t *testing.T) {
	topo := testTopo(t, 4, 1)
	m := NewModel(topo, DefaultConfig())
	if _, _, err := m.Fit(tensor.New(3, 3), 1, nil); err == nil {
		t.Fatal("Fit with wrong observation shape did not error")
	}
}

func TestFitReducesSpeedLoss(t *testing.T) {
	topo := testTopo(t, 6, 1)
	cfg := DefaultConfig()
	cfg.MaxTrips = 50
	m := NewModel(topo, cfg)
	// Target: the speed the untrained chain produces for some hidden TOD.
	hidden := tensor.Full(30, 4, 6)
	_, speedObs := m.Forward(hidden)
	_, hist, err := m.Fit(speedObs, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("fit loss did not decrease: %v -> %v", hist[0], hist[len(hist)-1])
	}
}

func TestAuxCensusPullsDailySums(t *testing.T) {
	topo := testTopo(t, 6, 1)
	cfg := DefaultConfig()
	cfg.MaxTrips = 50
	m := NewModel(topo, cfg)
	// Observation from a hidden TOD; census gives exact daily sums.
	hidden := tensor.Full(20, 4, 6)
	_, speedObs := m.Forward(hidden)
	census := make([]float64, 4)
	for i := range census {
		census[i] = hidden.Row(i).Sum() // 120
	}
	aux := &AuxData{CensusSum: census, CensusWeight: 20}
	recAux, _, err := m.Fit(speedObs, 60, aux)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(topo, cfg)
	recPlain, _, err := m2.Fit(speedObs, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	devAux, devPlain := 0.0, 0.0
	for i := 0; i < 4; i++ {
		devAux += math.Abs(recAux.Row(i).Sum() - census[i])
		devPlain += math.Abs(recPlain.Row(i).Sum() - census[i])
	}
	if devAux >= devPlain {
		t.Fatalf("census constraint did not pull daily sums: aux dev %v vs plain %v", devAux, devPlain)
	}
}

func TestAuxLossValidation(t *testing.T) {
	topo := testTopo(t, 4, 1)
	m := NewModel(topo, DefaultConfig())
	hidden := tensor.Full(10, 4, 4)
	_, speedObs := m.Forward(hidden)
	defer func() {
		if recover() == nil {
			t.Fatal("census length mismatch did not panic")
		}
	}()
	//ovslint:ignore ignorederr the call is expected to panic before returning; results are unreachable
	_, _, _ = m.Fit(speedObs, 1, &AuxData{CensusSum: []float64{1, 2}, CensusWeight: 1})
}

func TestAblationVariants(t *testing.T) {
	topo := testTopo(t, 4, 1)
	cfg := DefaultConfig()
	for _, ab := range []Ablation{AblateNone, AblateTODGen, AblateT2V, AblateV2S} {
		m := NewAblatedModel(topo, cfg, ab)
		tod := m.GenerateTOD()
		if tod.Dim(0) != 4 || tod.Dim(1) != 4 {
			t.Fatalf("%v: TOD shape %v", ab, tod.Shape())
		}
		vol, speed := m.Forward(tod)
		if vol.Dim(0) != topo.M || speed.Dim(0) != topo.M {
			t.Fatalf("%v: output link dims wrong", ab)
		}
		if len(m.Params()) == 0 {
			t.Fatalf("%v: no parameters", ab)
		}
	}
	names := map[Ablation]string{
		AblateNone: "OVS", AblateTODGen: "OVS - TOD", AblateT2V: "OVS - TOD2V", AblateV2S: "OVS - V2S",
	}
	for ab, want := range names {
		if ab.String() != want {
			t.Fatalf("String(%d) = %q", ab, ab.String())
		}
	}
}

func TestPaperConfigValues(t *testing.T) {
	c := PaperConfig()
	if c.LSTMHidden != 128 || c.V2SFC != 32 || c.LR != 0.001 || c.DropoutRate != 0.3 {
		t.Fatalf("PaperConfig does not match Tables IV/V: %+v", c)
	}
	if c.VolumeLossWeight != 0 {
		t.Fatal("PaperConfig must use speed-only stage-2 supervision")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.Hidden != 16 || d.Lookback <= 0 || d.MaxTrips <= 0 {
		t.Fatalf("withDefaults incomplete: %+v", d)
	}
}
