package core

import (
	"math/rand"
	"runtime"
	"testing"

	"ovs/internal/tensor"
)

// poolingSamples builds a small deterministic V2S/T2V training set.
func poolingSamples(topo *Topology, n int) []Sample {
	rng := rand.New(rand.NewSource(41))
	samples := make([]Sample, 0, n)
	for s := 0; s < n; s++ {
		g := tensor.New(topo.N, topo.T)
		for i := range g.Data {
			g.Data[i] = rng.Float64() * 40
		}
		vol := tensor.New(topo.M, topo.T)
		speed := tensor.New(topo.M, topo.T)
		for j := 0; j < topo.M; j++ {
			limit := topo.Net.Links[j].SpeedLimit
			for tt := 0; tt < topo.T; tt++ {
				q := rng.Float64() * 100
				vol.Set(q, j, tt)
				speed.Set(limit/(1+q/50), j, tt)
			}
		}
		samples = append(samples, Sample{G: g, Volume: vol, Speed: speed})
	}
	return samples
}

// TestTrainFullPoolingEquivalence is the tentpole determinism guarantee for
// the arena: the full train-then-fit pipeline must produce bitwise-identical
// recoveries with tensor pooling enabled and disabled, at every worker count.
// Pooled buffers are zeroed on reuse, so a pooled run is indistinguishable
// from a fresh-allocation run.
func TestTrainFullPoolingEquivalence(t *testing.T) {
	restore := tensor.PoolingEnabled()
	defer tensor.SetPooling(restore)

	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 3)

	run := func(workers int, pooled bool) *tensor.Tensor {
		tensor.SetPooling(pooled)
		cfg := DefaultConfig()
		cfg.MaxTrips = 50
		cfg.Seed = 29
		cfg.Workers = workers
		m := NewModel(topo, cfg)
		obs := fitObs(m, 12)
		rec, err := m.TrainFull(samples, obs, 2, 2, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}

	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		pooled := run(w, true)
		fresh := run(w, false)
		if !tensor.AllClose(pooled, fresh, 0) {
			t.Fatalf("workers=%d: TrainFull recovery differs between pooled and fresh allocation", w)
		}
	}
}

// TestFitBestPoolingEquivalence checks the multi-restart fit — whose
// concurrent restarts each recycle a private graph against the shared arena —
// recovers a bitwise-identical TOD with pooling on and off at every worker
// count.
func TestFitBestPoolingEquivalence(t *testing.T) {
	restore := tensor.PoolingEnabled()
	defer tensor.SetPooling(restore)

	topo := testTopo(t, 4, 1)

	run := func(workers int, pooled bool) *tensor.Tensor {
		tensor.SetPooling(pooled)
		cfg := DefaultConfig()
		cfg.MaxTrips = 50
		cfg.Seed = 31
		cfg.Workers = workers
		m := NewModel(topo, cfg)
		obs := fitObs(m, 12)
		rec, _, err := m.FitBest(obs, 2, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}

	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		pooled := run(w, true)
		fresh := run(w, false)
		if !tensor.AllClose(pooled, fresh, 0) {
			t.Fatalf("workers=%d: FitBest recovery differs between pooled and fresh allocation", w)
		}
	}
}
