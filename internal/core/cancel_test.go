package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"ovs/internal/tensor"
)

// ctxCancelAfter returns a context plus a CkptOptions.Stop that cancels it on
// the (n+1)-th poll while itself always reporting false. stopRequested
// evaluates Stop() before ctx.Err(), so the cancellation is visible in the
// very same poll — ctx cancellation lands at exactly the epoch boundary where
// the legacy Stop path would have fired, which is the precondition for the
// bitwise checkpoint-equivalence assertions below.
func ctxCancelAfter(n int) (context.Context, func() bool) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	count := 0
	stop := func() bool {
		mu.Lock()
		defer mu.Unlock()
		count++
		if count > n {
			cancel()
		}
		return false
	}
	return ctx, stop
}

// ctxInterruptedTrainFull is interruptedTrainFull's ctx twin: every attempt
// runs under a context that gets cancelled mid-flight, the run must exit via
// ErrInterrupted (checkpoint written), and a fresh context resumes it.
func ctxInterruptedTrainFull(t *testing.T, topo *Topology, cfg Config, samples []Sample, dir string) (*TrainResult, int) {
	t.Helper()
	for attempt := 0; attempt < 60; attempt++ {
		m := NewModel(topo, cfg)
		obs := fitObs(m, 12)
		ctx, trigger := ctxCancelAfter(1 + 2*attempt)
		c, err := NewCheckpointer(m, CkptOptions{Dir: dir, Every: 1, Stop: trigger})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Resume(); err != nil {
			t.Fatalf("attempt %d: resume: %v", attempt, err)
		}
		res, err := c.TrainFull(ctx, samples, obs, 3, 3, 2, nil)
		if err == nil {
			return res, attempt
		}
		// A checkpointed run must surface cancellation as the resumable
		// ErrInterrupted, never as a bare context error.
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("attempt %d: %v, want ErrInterrupted", attempt, err)
		}
	}
	t.Fatal("pipeline never completed within the attempt budget")
	return nil, 0
}

// TestCtxCancelEquivalence is the tentpole guarantee of the cancellable
// runtime: a checkpointed run cancelled via its context at any epoch and then
// resumed produces bitwise-identical parameters, RNG position, and loss
// history to a run that was never cancelled — the ctx path must be
// indistinguishable from the legacy Stop-poll interrupt path at the same
// boundary. Checked at several worker counts with arena pooling on and off.
func TestCtxCancelEquivalence(t *testing.T) {
	restorePool := tensor.PoolingEnabled()
	defer tensor.SetPooling(restorePool)

	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)

	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, pooled := range []bool{true, false} {
			tensor.SetPooling(pooled)
			label := "ctx " + labelOf(workers, pooled)
			cfg := ckptTestConfig(workers, 1)
			ref, refDir := referenceTrainFull(t, topo, cfg, samples)
			gotDir := t.TempDir()
			got, attempts := ctxInterruptedTrainFull(t, topo, cfg, samples, gotDir)
			if attempts == 0 {
				t.Fatalf("%s: the run was never cancelled; the test exercises nothing", label)
			}
			requireSameResult(t, label, ref, got)
			requireSameFinalSnapshot(t, label, refDir, gotDir)
		}
	}
}

// TestCtxCancelEquivalenceRestarts repeats the ctx-cancel equivalence check
// with a multi-restart fit, exercising cancellation of the restart-granular
// checkpoint path on both the bounded and concurrent schedules (where
// restarts unstarted at cancellation are recorded as skipped and re-run on
// resume).
func TestCtxCancelEquivalenceRestarts(t *testing.T) {
	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)

	for _, workers := range []int{1, 2} {
		cfg := ckptTestConfig(workers, 3)
		label := "ctx restarts " + labelOf(workers, tensor.PoolingEnabled())
		ref, refDir := referenceTrainFull(t, topo, cfg, samples)
		gotDir := t.TempDir()
		got, attempts := ctxInterruptedTrainFull(t, topo, cfg, samples, gotDir)
		if attempts == 0 {
			t.Fatalf("%s: the run was never cancelled", label)
		}
		requireSameResult(t, label, ref, got)
		requireSameFinalSnapshot(t, label, refDir, gotDir)
	}
}

// TestTrainCtxReturnsCancelCause covers the non-checkpointed entry points:
// with no hook to convert cancellation into ErrInterrupted, a cancelled stage
// returns the partial history with the context's cancellation cause, and the
// completed prefix is bitwise-identical to an uncancelled run's.
func TestTrainCtxReturnsCancelCause(t *testing.T) {
	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)
	cfg := ckptTestConfig(1, 1)

	full, err := NewModel(topo, cfg).TrainV2SCtx(context.Background(), samples, 3)
	if err != nil {
		t.Fatal(err)
	}

	sentinel := errors.New("deadline budget spent")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(sentinel)

	m := NewModel(topo, cfg)
	hist, err := m.TrainV2SCtx(ctx, samples, 3)
	if !errors.Is(err, sentinel) {
		t.Fatalf("TrainV2SCtx err = %v, want the cancel cause", err)
	}
	// Cancellation is observed at epoch boundaries only: exactly one epoch
	// ran, and it matches the uncancelled run's first epoch bit for bit.
	if len(hist) != 1 {
		t.Fatalf("cancelled TrainV2SCtx ran %d epochs, want 1", len(hist))
	}
	if hist[0] != full[0] {
		t.Fatalf("cancelled prefix %v diverges from uncancelled epoch %v", hist[0], full[0])
	}

	obs := fitObs(m, 12)
	if _, _, err := m.FitCtx(ctx, obs, 3, nil); !errors.Is(err, sentinel) {
		t.Fatalf("FitCtx err = %v, want the cancel cause", err)
	}
}
