package core

import (
	"bytes"
	"testing"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	topo := testTopo(t, 4, 1)
	cfg := DefaultConfig()
	m1 := NewModel(topo, cfg)
	tod := tensor.Full(15, 4, 4)
	vol1, speed1 := m1.Forward(tod)

	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A model with different weights must change its prediction after Load.
	cfg2 := cfg
	cfg2.Seed = 999
	m2 := NewModel(topo, cfg2)
	vol2, _ := m2.Forward(tod)
	if tensor.AllClose(vol1, vol2, 1e-12) {
		t.Fatal("differently seeded models agreed before load (degenerate test)")
	}
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	vol3, speed3 := m2.Forward(tod)
	if !tensor.AllClose(vol1, vol3, 1e-12) || !tensor.AllClose(speed1, speed3, 1e-12) {
		t.Fatal("loaded model does not reproduce saved model's predictions")
	}
}

func TestModelLoadRejectsMismatchedTopology(t *testing.T) {
	topo4 := testTopo(t, 4, 1)
	topo6 := testTopo(t, 6, 1)
	m1 := NewModel(topo4, DefaultConfig())
	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(topo6, DefaultConfig())
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("load across mismatched topology did not error")
	}
}

func TestSmoothPenaltyValue(t *testing.T) {
	topo := testTopo(t, 4, 1)
	cfg := DefaultConfig()
	cfg.MaxTrips = 10
	cfg.SmoothWeight = 1
	m := NewModel(topo, cfg)
	// A constant TOD has zero smooth penalty; a sawtooth a large one.
	g := autodiff.NewGraph()
	flat := m.smoothPenalty(g, g.Const(tensor.Full(5, 4, 4)))
	if got := flat.Value.Data[0]; got != 0 {
		t.Fatalf("constant TOD smooth penalty = %v, want 0", got)
	}
	saw := tensor.New(4, 4)
	for i := 0; i < 4; i++ {
		for tt := 0; tt < 4; tt++ {
			if (tt % 2) == 0 {
				saw.Set(10, i, tt)
			}
		}
	}
	g2 := autodiff.NewGraph()
	spiky := m.smoothPenalty(g2, g2.Const(saw))
	// Differences are ±10 on MaxTrips 10 → squared normalized diff = 1.
	if got := spiky.Value.Data[0]; got < 0.9 || got > 1.1 {
		t.Fatalf("sawtooth smooth penalty = %v, want ≈1", got)
	}
}

func TestRobustFitLossBehaviour(t *testing.T) {
	topo := testTopo(t, 4, 1)
	cfgMSE := DefaultConfig()
	cfgHub := DefaultConfig()
	cfgHub.RobustDelta = 1
	mMSE := NewModel(topo, cfgMSE)
	mHub := NewModel(topo, cfgHub)

	obs := tensor.Full(10, topo.M, 4)
	pred := tensor.Full(10, topo.M, 4)
	pred.Set(30, 0, 0) // one 20 m/s outlier residual

	lossOf := func(m *Model) float64 {
		g := autodiff.NewGraph()
		return m.fitLoss(g, g.Const(pred), obs, nil).Value.Data[0]
	}
	mse := lossOf(mMSE)
	hub := lossOf(mHub)
	// MSE of one r=20 outlier over M*T cells: 400/(M*T). Pseudo-Huber with
	// δ=1 ≈ |r|·δ = 20/(M*T): an order of magnitude smaller.
	if hub >= mse/5 {
		t.Fatalf("pseudo-Huber %v not substantially below MSE %v for an outlier", hub, mse)
	}
	// For small residuals the two losses agree (quadratic regime).
	small := tensor.Full(10.2, topo.M, 4)
	gm := autodiff.NewGraph()
	gh := autodiff.NewGraph()
	mseSmall := mMSE.fitLoss(gm, gm.Const(small), obs, nil).Value.Data[0]
	hubSmall := mHub.fitLoss(gh, gh.Const(small), obs, nil).Value.Data[0]
	if hubSmall < mseSmall*0.4 || hubSmall > mseSmall*1.1 {
		t.Fatalf("losses diverge in the quadratic regime: mse %v hub %v", mseSmall, hubSmall)
	}
}

func TestAttentionProfile(t *testing.T) {
	topo := testTopo(t, 6, 1)
	m := NewModel(topo, DefaultConfig())
	tod := tensor.Full(20, 4, 6)
	prof, err := m.AttentionProfile(tod, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	if prof.Dim(0) != cfg.Lookback || prof.Dim(1) != 6 {
		t.Fatalf("profile shape %v, want [%d 6]", prof.Shape(), cfg.Lookback)
	}
	// Columns are softmax distributions over lags.
	for tt := 0; tt < 6; tt++ {
		sum := 0.0
		for w := 0; w < cfg.Lookback; w++ {
			v := prof.At(w, tt)
			if v < 0 || v > 1 {
				t.Fatalf("attention (%d,%d) = %v out of [0,1]", w, tt, v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("column %d sums to %v", tt, sum)
		}
	}
	// The lag-0 prior must show through an untrained model.
	if prof.At(0, 3) <= prof.At(cfg.Lookback-1, 3) {
		t.Fatal("lag-0 prior not visible in untrained attention")
	}
	// Errors.
	if _, err := m.AttentionProfile(tod, 99, 0); err == nil {
		t.Fatal("bad OD accepted")
	}
	if _, err := m.AttentionProfile(tod, 0, 99); err == nil {
		t.Fatal("bad position accepted")
	}
	if _, err := m.AttentionProfile(tensor.New(2, 2), 0, 0); err == nil {
		t.Fatal("bad TOD shape accepted")
	}
	ablated := NewAblatedModel(topo, DefaultConfig(), AblateT2V)
	if _, err := ablated.AttentionProfile(tod, 0, 0); err == nil {
		t.Fatal("FC-ablated model has no attention but returned a profile")
	}
}

func TestFitLossLinkWeights(t *testing.T) {
	topo := testTopo(t, 4, 1)
	m := NewModel(topo, DefaultConfig())
	obs := tensor.Full(10, topo.M, 4)
	pred := tensor.Full(10, topo.M, 4)
	pred.Set(30, 0, 0) // outlier on link 0

	weights := make([]float64, topo.M)
	for j := range weights {
		weights[j] = 1
	}
	g1 := autodiff.NewGraph()
	full := m.fitLoss(g1, g1.Const(pred), obs, weights).Value.Data[0]
	weights[0] = 0 // exclude the outlier link
	g2 := autodiff.NewGraph()
	masked := m.fitLoss(g2, g2.Const(pred), obs, weights).Value.Data[0]
	if masked != 0 {
		t.Fatalf("masked loss = %v, want 0 (only error was on the masked link)", masked)
	}
	if full <= 0 {
		t.Fatalf("unmasked loss = %v, want > 0", full)
	}
	// Length mismatch must panic loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length link weights did not panic")
		}
	}()
	g3 := autodiff.NewGraph()
	m.fitLoss(g3, g3.Const(pred), obs, []float64{1, 2})
}
