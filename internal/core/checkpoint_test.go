package core

import (
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"ovs/internal/ckpt"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// ckptTestConfig is the shared model configuration of the resume tests:
// dropout is on so the training stages consume the checkpointed RNG stream.
func ckptTestConfig(workers int, restarts int) Config {
	cfg := DefaultConfig()
	cfg.MaxTrips = 50
	cfg.Seed = 29
	cfg.Workers = workers
	cfg.DropoutRate = 0.2
	cfg.FitRestarts = restarts
	return cfg
}

// stopAfter returns a goroutine-safe Stop that fires from the (n+1)-th poll.
func stopAfter(n int) func() bool {
	var mu sync.Mutex
	count := 0
	return func() bool {
		mu.Lock()
		defer mu.Unlock()
		count++
		return count > n
	}
}

// referenceTrainFull runs the pipeline uninterrupted under a checkpointer.
func referenceTrainFull(t *testing.T, topo *Topology, cfg Config, samples []Sample) (*TrainResult, string) {
	t.Helper()
	dir := t.TempDir()
	m := NewModel(topo, cfg)
	obs := fitObs(m, 12)
	c, err := NewCheckpointer(m, CkptOptions{Dir: dir, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TrainFull(context.Background(), samples, obs, 3, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, dir
}

// interruptedTrainFull kills and resumes the pipeline until it completes,
// with an ever-growing poll budget so every attempt both interrupts somewhere
// and makes progress. It returns the final result and the attempt count.
func interruptedTrainFull(t *testing.T, topo *Topology, cfg Config, samples []Sample, dir string) (*TrainResult, int) {
	t.Helper()
	for attempt := 0; attempt < 60; attempt++ {
		m := NewModel(topo, cfg)
		obs := fitObs(m, 12)
		c, err := NewCheckpointer(m, CkptOptions{Dir: dir, Every: 1, Stop: stopAfter(1 + 2*attempt)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Resume(); err != nil {
			t.Fatalf("attempt %d: resume: %v", attempt, err)
		}
		res, err := c.TrainFull(context.Background(), samples, obs, 3, 3, 2, nil)
		if err == nil {
			return res, attempt
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	t.Fatal("pipeline never completed within the attempt budget")
	return nil, 0
}

func requireSameResult(t *testing.T, label string, want, got *TrainResult) {
	t.Helper()
	if !tensor.AllClose(want.TOD, got.TOD, 0) {
		t.Fatalf("%s: recovered TOD differs between uninterrupted and resumed runs", label)
	}
	if !reflect.DeepEqual(want.V2SHist, got.V2SHist) {
		t.Fatalf("%s: V2S loss history differs:\n%v\n%v", label, want.V2SHist, got.V2SHist)
	}
	if !reflect.DeepEqual(want.T2VHist, got.T2VHist) {
		t.Fatalf("%s: T2V loss history differs:\n%v\n%v", label, want.T2VHist, got.T2VHist)
	}
	if !reflect.DeepEqual(want.FitHist, got.FitHist) {
		t.Fatalf("%s: fit loss history differs:\n%v\n%v", label, want.FitHist, got.FitHist)
	}
}

// requireSameFinalSnapshot compares the terminal checkpoints of two runs:
// parameters and RNG position must be bitwise identical.
func requireSameFinalSnapshot(t *testing.T, label, refDir, gotDir string) {
	t.Helper()
	ref, _, err := ckpt.Latest(refDir)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ckpt.Latest(gotDir)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stage != StageDone || got.Stage != StageDone {
		t.Fatalf("%s: terminal stages %q / %q, want both %q", label, ref.Stage, got.Stage, StageDone)
	}
	if !reflect.DeepEqual(ref.Params, got.Params) {
		t.Fatalf("%s: final parameters differ between uninterrupted and resumed runs", label)
	}
	if !reflect.DeepEqual(ref.GenState, got.GenState) {
		t.Fatalf("%s: final generator state differs", label)
	}
	if ref.RNGSeed != got.RNGSeed || ref.RNGDraws != got.RNGDraws {
		t.Fatalf("%s: RNG position (%d,%d) vs (%d,%d)", label, ref.RNGSeed, ref.RNGDraws, got.RNGSeed, got.RNGDraws)
	}
}

// TestResumeEquivalence is the headline guarantee of the checkpoint
// subsystem: a run killed at any epoch and resumed produces bitwise-identical
// parameters, optimizer state, and loss history to a run that never stopped —
// at several worker counts and with arena pooling on and off. FitRestarts=1
// exercises the epoch-granular fit stage.
func TestResumeEquivalence(t *testing.T) {
	restorePool := tensor.PoolingEnabled()
	defer tensor.SetPooling(restorePool)

	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)

	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, pooled := range []bool{true, false} {
			tensor.SetPooling(pooled)
			label := labelOf(workers, pooled)
			cfg := ckptTestConfig(workers, 1)
			ref, refDir := referenceTrainFull(t, topo, cfg, samples)
			gotDir := t.TempDir()
			got, attempts := interruptedTrainFull(t, topo, cfg, samples, gotDir)
			if attempts == 0 {
				t.Fatalf("%s: the run never got interrupted; the test exercises nothing", label)
			}
			requireSameResult(t, label, ref, got)
			requireSameFinalSnapshot(t, label, refDir, gotDir)
		}
	}
}

// TestResumeEquivalenceRestarts repeats the headline check with a
// multi-restart fit, exercising the restart-granular checkpoint path on both
// the concurrent and (via Workers=1 with cloning still active) bounded
// schedules.
func TestResumeEquivalenceRestarts(t *testing.T) {
	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)

	for _, workers := range []int{1, 2} {
		cfg := ckptTestConfig(workers, 3)
		label := labelOf(workers, tensor.PoolingEnabled())
		ref, refDir := referenceTrainFull(t, topo, cfg, samples)
		gotDir := t.TempDir()
		got, attempts := interruptedTrainFull(t, topo, cfg, samples, gotDir)
		if attempts == 0 {
			t.Fatalf("%s: the run never got interrupted", label)
		}
		requireSameResult(t, label, ref, got)
		requireSameFinalSnapshot(t, label, refDir, gotDir)
	}
}

func labelOf(workers int, pooled bool) string {
	l := "workers=" + string(rune('0'+workers))
	if pooled {
		return l + " pooled"
	}
	return l + " fresh"
}

// TestResumeSurvivesCorruptNewestCheckpoint kills a run, corrupts the newest
// checkpoint on disk (simulating a crash that slipped past the atomic-write
// protocol, e.g. torn storage), and resumes: Latest must fall back to the
// previous valid checkpoint and the final result must still match the
// uninterrupted run exactly.
func TestResumeSurvivesCorruptNewestCheckpoint(t *testing.T) {
	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)
	cfg := ckptTestConfig(1, 1)

	ref, _ := referenceTrainFull(t, topo, cfg, samples)

	dir := t.TempDir()
	m := NewModel(topo, cfg)
	obs := fitObs(m, 12)
	c, err := NewCheckpointer(m, CkptOptions{Dir: dir, Every: 1, Stop: stopAfter(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainFull(context.Background(), samples, obs, 3, 3, 2, nil); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected interrupt, got %v", err)
	}
	// Truncate the newest checkpoint mid-file.
	_, newest, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, _ := interruptedTrainFull(t, topo, cfg, samples, dir)
	requireSameResult(t, "corrupt-fallback", ref, got)
}

// TestTrainedTerminalResume covers the ovsfit -train workflow: train the two
// mappings, mark the run "trained", and resume into a fresh model — both
// stages must be skipped, the recorded loss curves returned, and the restored
// parameters bitwise identical to the first run's.
func TestTrainedTerminalResume(t *testing.T) {
	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)
	cfg := ckptTestConfig(1, 1)
	dir := t.TempDir()

	m1 := NewModel(topo, cfg)
	c1, err := NewCheckpointer(m1, CkptOptions{Dir: dir, Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	v2s1, t2v1, err := c1.TrainMappings(context.Background(), samples, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Finish(StageTrained); err != nil {
		t.Fatal(err)
	}
	want, err := nn.CaptureParams(m1.Params())
	if err != nil {
		t.Fatal(err)
	}

	m2 := NewModel(topo, cfg)
	c2, err := NewCheckpointer(m2, CkptOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	path, err := c2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("Resume found no checkpoint")
	}
	v2s2, t2v2, err := c2.TrainMappings(context.Background(), samples, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v2s1, v2s2) || !reflect.DeepEqual(t2v1, t2v2) {
		t.Fatal("resumed terminal run did not return the recorded loss curves")
	}
	got, err := nn.CaptureParams(m2.Params())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("restored parameters differ from the trained run")
	}
}

// TestResumeEmptyDirStartsFresh ensures a checkpoint directory with no valid
// checkpoint is not an error — the run simply starts from scratch.
func TestResumeEmptyDirStartsFresh(t *testing.T) {
	topo := testTopo(t, 4, 1)
	m := NewModel(topo, ckptTestConfig(1, 1))
	c, err := NewCheckpointer(m, CkptOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if path != "" {
		t.Fatalf("Resume reported %q for an empty directory", path)
	}
}

// TestStageMismatchRejected: a checkpoint taken mid single-start fit cannot
// resume a multi-restart fit (the configuration changed between runs).
func TestStageMismatchRejected(t *testing.T) {
	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 2)
	cfg := ckptTestConfig(1, 1)
	dir := t.TempDir()

	m := NewModel(topo, cfg)
	obs := fitObs(m, 12)
	c, err := NewCheckpointer(m, CkptOptions{Dir: dir, Every: 1, Stop: stopAfter(7)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainFull(context.Background(), samples, obs, 3, 3, 2, nil); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected interrupt in the fit stage, got %v", err)
	}
	snap, _, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stage != StageFit {
		t.Skipf("interrupt landed in stage %q, not the fit stage", snap.Stage)
	}

	m2 := NewModel(topo, cfg)
	c2, err := NewCheckpointer(m2, CkptOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Resume(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.FitBest(context.Background(), fitObs(m2, 12), 2, 3, nil); err == nil {
		t.Fatal("resuming a fit checkpoint into a multi-restart fit did not error")
	}
}
