package core

import (
	"runtime"
	"testing"

	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// TestTrainFullFusedEquivalence is the end-to-end guarantee of the fused
// LSTM cell: the complete train-then-fit pipeline recovers a bitwise-
// identical TOD with the fused cell and with the unfused graph-op oracle, at
// Workers ∈ {1, 2, GOMAXPROCS} and with arena pooling on and off.
func TestTrainFullFusedEquivalence(t *testing.T) {
	restorePool := tensor.PoolingEnabled()
	defer tensor.SetPooling(restorePool)
	defer nn.SetFusedLSTM(true)

	topo := testTopo(t, 4, 1)
	samples := poolingSamples(topo, 3)

	run := func(fused, pooled bool, workers int) *tensor.Tensor {
		nn.SetFusedLSTM(fused)
		tensor.SetPooling(pooled)
		cfg := DefaultConfig()
		cfg.MaxTrips = 50
		cfg.Seed = 31
		cfg.Workers = workers
		m := NewModel(topo, cfg)
		obs := fitObs(m, 12)
		rec, err := m.TrainFull(samples, obs, 2, 2, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}

	ref := run(false, true, 1)
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, pooled := range []bool{true, false} {
			if got := run(true, pooled, w); !tensor.AllClose(got, ref, 0) {
				t.Fatalf("fused workers=%d pooled=%v: recovered TOD differs from the unfused oracle", w, pooled)
			}
		}
	}
}

// TestFitBestFusedEquivalence covers the restart machinery: FitBest must
// pick the same winner, with bitwise-identical recovery, on both LSTM paths.
func TestFitBestFusedEquivalence(t *testing.T) {
	defer nn.SetFusedLSTM(true)
	topo := testTopo(t, 4, 1)

	run := func(fused bool) *tensor.Tensor {
		nn.SetFusedLSTM(fused)
		cfg := DefaultConfig()
		cfg.MaxTrips = 50
		cfg.Seed = 37
		cfg.Workers = 2
		m := NewModel(topo, cfg)
		obs := fitObs(m, 11)
		rec, _, err := m.FitBest(obs, 2, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}

	if !tensor.AllClose(run(true), run(false), 0) {
		t.Fatal("FitBest recovery differs between fused and unfused LSTM paths")
	}
}

// TestResumePackCacheEquivalence is the pack-cache invalidation regression
// test: with every product forced through the blocked path (so the cache
// serves all weight panels), a run that is killed and resumed — which
// restores parameters in place over cached pack sources — must reproduce the
// uninterrupted run exactly. A missed invalidation anywhere in the restore
// path would feed stale panels to the first post-resume epoch and diverge.
func TestResumePackCacheEquivalence(t *testing.T) {
	oldThresh := tensor.SetGEMMBlockedThreshold(1)
	defer tensor.SetGEMMBlockedThreshold(oldThresh)
	tensor.FlushPackCache()
	defer tensor.FlushPackCache()

	topo := testTopo(t, 4, 1)
	cfg := ckptTestConfig(2, 1)
	samples := poolingSamples(topo, 3)

	ref, _ := referenceTrainFull(t, topo, cfg, samples)
	dir := t.TempDir()
	got, _ := interruptedTrainFull(t, topo, cfg, samples, dir)
	requireSameResult(t, "pack cache resume", ref, got)

	if st := tensor.PackCacheStatsSnapshot(); st.Hits == 0 {
		t.Fatal("pack cache never hit: the test no longer exercises cached packs")
	}
}
