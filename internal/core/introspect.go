package core

import (
	"fmt"

	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

// AttentionProfile exposes the learned dynamic attention of the TOD-Volume
// mapping (Eq. 8) for analysis — the RQ4 angle of explaining what the model
// learned. For the given OD's first route and a link position along it, it
// returns the (Lookback × T) lag-attention matrix evaluated at the given TOD
// tensor: entry (w, t) is how much the link's volume at interval t attends
// to that route's trips w intervals earlier.
func (m *Model) AttentionProfile(tod *tensor.Tensor, od, pos int) (*tensor.Tensor, error) {
	att, ok := m.T2V.(*AttentionT2V)
	if !ok {
		return nil, fmt.Errorf("core: attention profile requires the standard TOD-Volume module")
	}
	if od < 0 || od >= m.Topo.N {
		return nil, fmt.Errorf("core: OD index %d out of range", od)
	}
	route := m.Topo.RoutesOfOD(od)[0]
	if pos < 0 || pos >= len(route) {
		return nil, fmt.Errorf("core: position %d out of range for a %d-link route", pos, len(route))
	}
	if tod.Rank() != 2 || tod.Dim(0) != m.Topo.N || tod.Dim(1) != m.Topo.T {
		return nil, fmt.Errorf("core: TOD shape %v, want [%d %d]", tod.Shape(), m.Topo.N, m.Topo.T)
	}
	return att.lagAttention(tod, od*m.Topo.K, pos), nil
}

// lagAttention recomputes the softmax lag attention for one (route, pos).
func (a *AttentionT2V) lagAttention(tod *tensor.Tensor, routeIdx, pos int) *tensor.Tensor {
	g := autodiff.NewGraph()
	topo := a.topo
	// Recompute embeddings exactly as MapVolume does (inference mode).
	routeRows := make([]*autodiff.Node, topo.N*topo.K)
	todNode := g.Const(tod)
	if topo.K == 1 {
		for i := 0; i < topo.N; i++ {
			routeRows[i] = autodiff.Row(todNode, i)
		}
	} else {
		split := autodiff.SoftmaxRows(g.Param(a.splitLogits))
		for i := 0; i < topo.N; i++ {
			gi := autodiff.Row(todNode, i)
			fr := autodiff.Row(split, i)
			for k := 0; k < topo.K; k++ {
				frac := autodiff.Reshape(autodiff.SliceVec(fr, k, k+1), 1, 1)
				giMat := autodiff.Reshape(gi, 1, topo.T)
				routeRows[i*topo.K+k] = autodiff.Reshape(autodiff.MatMul(frac, giMat), topo.T)
			}
		}
	}
	norm := 1.0 / a.cfg.MaxTrips
	embeds := make([]*autodiff.Node, len(routeRows))
	for r, p := range routeRows {
		x := autodiff.Reshape(autodiff.Scale(p, norm), 1, topo.T)
		h := a.conv1.Forward(x, false)
		embeds[r] = a.conv2.Forward(h, false)
	}
	system := autodiff.Scale(autodiff.SumNodes(embeds...), 1/float64(len(embeds)))

	u := autodiff.Add(embeds[routeIdx], system)
	logits := autodiff.MatMul(g.Param(a.attW), u)
	logits = addColVector(logits, g.Param(a.attB))
	if pos >= a.cfg.MaxPos {
		pos = a.cfg.MaxPos - 1
	}
	logits = addColVector(logits, autodiff.Row(g.Param(a.posEmb), pos))
	return softmaxCols(logits).Value.Clone()
}
