package core

import (
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// Ablation modules for Table IX: each OVS module can be replaced by plain
// fully connected layers ("OVS - TOD", "OVS - TOD2V", "OVS - V2S").

// FCTODGen replaces the structured TOD generator with a single FC layer
// over the Gaussian seeds.
type FCTODGen struct {
	Z        *tensor.Tensor
	L        *nn.Dense
	MaxTrips float64
}

// NewFCTODGen builds the ablated generator.
func NewFCTODGen(topo *Topology, cfg Config, rng *rand.Rand) *FCTODGen {
	return &FCTODGen{
		Z:        tensor.Randn(rng, 1, topo.N, topo.T),
		L:        nn.NewDense(rng, "fctodgen.l", topo.T, topo.T, nn.ActSigmoid),
		MaxTrips: cfg.MaxTrips,
	}
}

// Generate emits the TOD tensor (N × T).
func (f *FCTODGen) Generate(g *autodiff.Graph) *autodiff.Node {
	return autodiff.Scale(f.L.Forward(g.Const(f.Z), false), f.MaxTrips)
}

// Params returns the trainable parameters.
func (f *FCTODGen) Params() []*autodiff.Parameter { return f.L.Params() }

// Reseed redraws the Gaussian seeds.
func (f *FCTODGen) Reseed(rng *rand.Rand) {
	f.Z.NoteMutation()
	for i := range f.Z.Data {
		f.Z.Data[i] = rng.NormFloat64()
	}
}

// StateTensors returns the seeds and layer parameters that determine the
// generator's output.
func (f *FCTODGen) StateTensors() []*tensor.Tensor {
	return []*tensor.Tensor{f.Z, f.L.W.Value, f.L.B.Value}
}

// CloneTODGen returns a deep, independent copy for concurrent fit restarts.
func (f *FCTODGen) CloneTODGen() TODGenModule {
	return &FCTODGen{Z: f.Z.Clone(), L: f.L.Clone(), MaxTrips: f.MaxTrips}
}

// FCT2V replaces the attention TOD-volume mapping with per-interval fully
// connected layers: at each time step, volumes are an FC function of that
// step's OD counts, discarding temporal delay structure entirely.
type FCT2V struct {
	topo   *Topology
	l1, l2 *nn.Dense
	norm   float64
	scale  float64
}

// NewFCT2V builds the ablated mapping.
func NewFCT2V(topo *Topology, cfg Config, rng *rand.Rand) *FCT2V {
	return &FCT2V{
		topo:  topo,
		l1:    nn.NewDense(rng, "fct2v.l1", topo.N, cfg.Hidden*4, nn.ActReLU),
		l2:    nn.NewDense(rng, "fct2v.l2", cfg.Hidden*4, topo.M, nn.ActReLU),
		norm:  1.0 / cfg.MaxTrips,
		scale: cfg.MaxTrips,
	}
}

// MapVolume converts TOD (N × T) to volumes (M × T) per time step.
func (f *FCT2V) MapVolume(g *autodiff.Graph, tod *autodiff.Node, train bool) *autodiff.Node {
	x := autodiff.Transpose(autodiff.Scale(tod, f.norm)) // (T × N)
	h := f.l1.Forward(x, train)
	out := f.l2.Forward(h, train) // (T × M)
	return autodiff.Scale(autodiff.Transpose(out), f.scale)
}

// Params returns the trainable parameters.
func (f *FCT2V) Params() []*autodiff.Parameter { return append(f.l1.Params(), f.l2.Params()...) }

// FCV2S replaces the shared LSTM volume-speed mapping with per-interval
// fully connected layers across links.
type FCV2S struct {
	topo   *Topology
	l1, l2 *nn.Dense
	norm   float64
}

// NewFCV2S builds the ablated mapping.
func NewFCV2S(topo *Topology, cfg Config, rng *rand.Rand) *FCV2S {
	return &FCV2S{
		topo: topo,
		l1:   nn.NewDense(rng, "fcv2s.l1", topo.M, cfg.Hidden*4, nn.ActReLU),
		l2:   nn.NewDense(rng, "fcv2s.l2", cfg.Hidden*4, topo.M, nn.ActSigmoid),
		norm: 1.0 / cfg.VolumeNorm,
	}
}

// MapSpeed converts volumes (M × T) to speeds (M × T).
func (f *FCV2S) MapSpeed(g *autodiff.Graph, vol *autodiff.Node, train bool) *autodiff.Node {
	x := autodiff.Transpose(autodiff.Scale(vol, f.norm)) // (T × M)
	h := f.l1.Forward(x, train)
	out := autodiff.Transpose(f.l2.Forward(h, train)) // (M × T) in (0,1)
	// Scale each link's factor by its speed limit.
	rows := make([]*autodiff.Node, f.topo.M)
	for j := 0; j < f.topo.M; j++ {
		rows[j] = autodiff.Scale(autodiff.Row(out, j), f.topo.speedLimits[j])
	}
	return autodiff.StackRows(rows)
}

// Params returns the trainable parameters.
func (f *FCV2S) Params() []*autodiff.Parameter { return append(f.l1.Params(), f.l2.Params()...) }

// Ablation names the Table IX variants.
type Ablation int

const (
	// AblateNone is full OVS.
	AblateNone Ablation = iota
	// AblateTODGen replaces TOD Generation with FC ("OVS - TOD").
	AblateTODGen
	// AblateT2V replaces TOD-Volume Mapping with FC ("OVS - TOD2V").
	AblateT2V
	// AblateV2S replaces Volume-Speed Mapping with FC ("OVS - V2S").
	AblateV2S
)

// String returns the paper's row label.
func (a Ablation) String() string {
	switch a {
	case AblateNone:
		return "OVS"
	case AblateTODGen:
		return "OVS - TOD"
	case AblateT2V:
		return "OVS - TOD2V"
	case AblateV2S:
		return "OVS - V2S"
	default:
		return "Ablation(?)"
	}
}

// NewAblatedModel builds an OVS model with one module swapped for its FC
// replacement.
func NewAblatedModel(topo *Topology, cfg Config, which Ablation) *Model {
	m := NewModel(topo, cfg)
	rng := rand.New(rand.NewSource(cfg.withDefaults().Seed + int64(which)*31))
	switch which {
	case AblateTODGen:
		m.TODGen = NewFCTODGen(topo, cfg.withDefaults(), rng)
	case AblateT2V:
		m.T2V = NewFCT2V(topo, cfg.withDefaults(), rng)
	case AblateV2S:
		m.V2S = NewFCV2S(topo, cfg.withDefaults(), rng)
	}
	return m
}
