package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/nn"
	"ovs/internal/parallel"
	"ovs/internal/tensor"
)

// stageHook is called after every completed epoch of a resumable training
// stage with the number of epochs done so far, the loss history, and the live
// optimizer. Returning an error aborts the stage; the error (typically
// ErrInterrupted) propagates to the caller with the partial history.
type stageHook func(done int, hist []float64, opt nn.StatefulOptimizer) error

// TrainV2S runs stage 1 of the Fig. 8 pipeline: fit the Volume-Speed
// mapping on generated (volume, speed) pairs. It returns the per-epoch mean
// loss curve.
func (m *Model) TrainV2S(samples []Sample, epochs int) ([]float64, error) {
	return m.TrainV2SCtx(context.Background(), samples, epochs)
}

// TrainV2SCtx is TrainV2S with cooperative cancellation: ctx is observed
// only at epoch boundaries, so the epochs completed before a cancelled
// return are bitwise-identical to an uncancelled run's prefix. A cancelled
// call returns the partial history with the context's cancellation cause.
func (m *Model) TrainV2SCtx(ctx context.Context, samples []Sample, epochs int) ([]float64, error) {
	return m.trainV2S(ctx, samples, epochs, 0, nil, nn.NewAdam(m.Cfg.LR), nil)
}

// trainV2S is the resumable core of TrainV2S: it continues from start
// completed epochs with the given optimizer and accumulated history.
// Cancellation is observed after the per-epoch hook, so a checkpointing hook
// gets to convert it into a durable checkpoint + ErrInterrupted first.
func (m *Model) trainV2S(ctx context.Context, samples []Sample, epochs, start int, hist []float64, opt *nn.Adam, hook stageHook) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: TrainV2S requires samples")
	}
	params := m.V2S.Params()
	history := hist
	// One recycled graph serves every sample of every epoch: Reset returns
	// the previous tape's tensors to the arena before each forward pass.
	g := autodiff.NewGraph()
	defer g.Release()
	for e := start; e < epochs; e++ {
		total := 0.0
		for _, s := range samples {
			g.Reset()
			pred := m.V2S.MapSpeed(g, g.Const(s.Volume), true)
			loss := autodiff.MSE(pred, s.Speed)
			total += loss.Value.Data[0]
			g.Backward(loss)
			if m.Cfg.GradClip > 0 {
				nn.ClipGrads(params, m.Cfg.GradClip)
			}
			opt.Step(params)
			nn.ZeroGrads(params)
		}
		history = append(history, total/float64(len(samples)))
		if hook != nil {
			if err := hook(e+1, history, opt); err != nil {
				return history, err
			}
		}
		if ctx.Err() != nil {
			return history, context.Cause(ctx)
		}
	}
	return history, nil
}

// TrainT2V runs stage 2: freeze Volume-Speed, fit TOD-Volume by passing
// generated TOD through both mappings and comparing against the generated
// speed (plus optional direct volume supervision weighted by
// Cfg.VolumeLossWeight; the paper's protocol corresponds to weight 0).
func (m *Model) TrainT2V(samples []Sample, epochs int) ([]float64, error) {
	return m.TrainT2VCtx(context.Background(), samples, epochs)
}

// TrainT2VCtx is TrainT2V with cooperative cancellation at epoch boundaries
// (see TrainV2SCtx).
func (m *Model) TrainT2VCtx(ctx context.Context, samples []Sample, epochs int) ([]float64, error) {
	return m.trainT2V(ctx, samples, epochs, 0, nil, nn.NewAdam(m.Cfg.LR), nil)
}

// trainT2V is the resumable core of TrainT2V (see trainV2S).
func (m *Model) trainT2V(ctx context.Context, samples []Sample, epochs, start int, hist []float64, opt *nn.Adam, hook stageHook) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: TrainT2V requires samples")
	}
	// Volume-Speed is frozen for the whole stage: its parameters are read
	// concurrently by parallel graph construction and must not accumulate
	// gradients.
	restore := freezeParams(m.V2S.Params())
	defer restore()
	params := m.T2V.Params()
	history := hist
	volNorm := 1.0 / m.Cfg.VolumeNorm
	g := autodiff.NewGraph()
	defer g.Release()
	for e := start; e < epochs; e++ {
		total := 0.0
		for _, s := range samples {
			g.Reset()
			vol := m.T2V.MapVolume(g, g.Const(s.G), true)
			// Volume-Speed runs in frozen inference mode: its parameters are
			// simply absent from the optimized set.
			speed := m.V2S.MapSpeed(g, vol, false)
			loss := autodiff.MSE(speed, s.Speed)
			if m.Cfg.VolumeLossWeight > 0 {
				volLoss := autodiff.MSE(autodiff.Scale(vol, volNorm), tensor.ScaleTo(g.AllocLike(s.Volume), s.Volume, volNorm))
				loss = autodiff.Add(loss, autodiff.Scale(volLoss, m.Cfg.VolumeLossWeight))
			}
			total += loss.Value.Data[0]
			g.Backward(loss)
			if m.Cfg.GradClip > 0 {
				nn.ClipGrads(params, m.Cfg.GradClip)
			}
			opt.Step(params)
			nn.ZeroGrads(params)
		}
		history = append(history, total/float64(len(samples)))
		if hook != nil {
			if err := hook(e+1, history, opt); err != nil {
				return history, err
			}
		}
		if ctx.Err() != nil {
			return history, context.Cause(ctx)
		}
	}
	return history, nil
}

// AuxData bundles the auxiliary observations of §IV-E / Table II. Nil
// slices/tensors disable the corresponding term. Weights are the w_g, w_q
// of Eq. 13.
type AuxData struct {
	// CensusSum[i] is the LEHD-like horizon-total trip count of OD i.
	CensusSum    []float64
	CensusWeight float64

	// CameraLinks and CameraVolume give observed volumes on a sparse set of
	// links; CameraVolume is (len(CameraLinks) × T).
	CameraLinks  []int
	CameraVolume *tensor.Tensor
	CameraWeight float64

	// TrajODIdx and TrajG give fleet-scaled TOD observations on a sparse set
	// of OD pairs; TrajG is (len(TrajODIdx) × T).
	TrajODIdx  []int
	TrajG      *tensor.Tensor
	TrajWeight float64

	// LinkWeights, when non-nil (length M), weights each link's contribution
	// to the main speed loss. Setting a link to 0 excludes it — the RQ3
	// mechanism for links whose physics changed after training (road work):
	// such links are detectable from data because their maximum observed
	// speed sits far below the speed limit even in empty intervals.
	LinkWeights []float64
}

// Fit runs the test stage: freeze TOD-Volume and Volume-Speed, optimize the
// TOD generator so the end-to-end speed matches the observation (Eq. 12),
// plus any auxiliary losses (Eq. 13). It returns the recovered TOD tensor
// and the loss history.
func (m *Model) Fit(speedObs *tensor.Tensor, epochs int, aux *AuxData) (*tensor.Tensor, []float64, error) {
	return m.FitCtx(context.Background(), speedObs, epochs, aux)
}

// FitCtx is Fit with cooperative cancellation at epoch boundaries (see
// TrainV2SCtx).
func (m *Model) FitCtx(ctx context.Context, speedObs *tensor.Tensor, epochs int, aux *AuxData) (*tensor.Tensor, []float64, error) {
	restore := freezeParams(append(m.T2V.Params(), m.V2S.Params()...))
	defer restore()
	history, err := m.fitGen(ctx, m.TODGen, speedObs, epochs, aux)
	if err != nil {
		return nil, nil, err
	}
	return m.GenerateTOD(), history, nil
}

// fitGen optimizes one TOD generator against the observation. The frozen
// TOD-Volume and Volume-Speed modules are only read, so multiple fitGen
// calls on distinct generators may run concurrently (FitBest restarts);
// callers must freeze those modules' parameters first.
func (m *Model) fitGen(ctx context.Context, gen TODGenModule, speedObs *tensor.Tensor, epochs int, aux *AuxData) ([]float64, error) {
	return m.fitGenFrom(ctx, gen, speedObs, epochs, 0, nil, nn.NewAdam(m.Cfg.LR), aux, nil)
}

// fitGenFrom is the resumable core of fitGen (see trainV2S).
func (m *Model) fitGenFrom(ctx context.Context, gen TODGenModule, speedObs *tensor.Tensor, epochs, start int, hist []float64, opt *nn.Adam, aux *AuxData, hook stageHook) ([]float64, error) {
	if speedObs.Rank() != 2 || speedObs.Dim(0) != m.Topo.M || speedObs.Dim(1) != m.Topo.T {
		return nil, fmt.Errorf("core: Fit observation shape %v, want [%d %d]", speedObs.Shape(), m.Topo.M, m.Topo.T)
	}
	params := gen.Params()
	history := hist
	g := autodiff.NewGraph()
	defer g.Release()
	for e := start; e < epochs; e++ {
		g.Reset()
		tod := gen.Generate(g)
		vol := m.T2V.MapVolume(g, tod, false)
		speed := m.V2S.MapSpeed(g, vol, false)
		var linkWeights []float64
		if aux != nil {
			linkWeights = aux.LinkWeights
		}
		loss := m.fitLoss(g, speed, speedObs, linkWeights)
		if m.Cfg.SmoothWeight > 0 {
			loss = autodiff.Add(loss, autodiff.Scale(m.smoothPenalty(g, tod), m.Cfg.SmoothWeight))
		}
		if aux != nil {
			loss = autodiff.Add(loss, m.auxLoss(g, tod, vol, aux))
		}
		history = append(history, loss.Value.Data[0])
		g.Backward(loss)
		if m.Cfg.GradClip > 0 {
			nn.ClipGrads(params, m.Cfg.GradClip)
		}
		opt.Step(params)
		nn.ZeroGrads(params)
		if hook != nil {
			if err := hook(e+1, history, opt); err != nil {
				return history, err
			}
		}
		if ctx.Err() != nil {
			return history, context.Cause(ctx)
		}
	}
	return history, nil
}

// freezeParams freezes every parameter that is not already frozen and
// returns a closure restoring the previous state. Nested freezes compose:
// the inner restore only unfreezes what the inner call froze.
func freezeParams(ps []*autodiff.Parameter) (restore func()) {
	var frozen []*autodiff.Parameter
	for _, p := range ps {
		if !p.Frozen() {
			p.SetFrozen(true)
			frozen = append(frozen, p)
		}
	}
	return func() {
		for _, p := range frozen {
			p.SetFrozen(false)
		}
	}
}

// fitLoss is the main observation term of the test-time fit: plain MSE by
// default, or a pseudo-Huber loss — δ²(√(1+(r/δ)²) − 1) — when RobustDelta
// is set, which bounds the influence of links whose physics changed after
// training (RQ3).
func (m *Model) fitLoss(g *autodiff.Graph, speed *autodiff.Node, speedObs *tensor.Tensor, linkWeights []float64) *autodiff.Node {
	var weights *tensor.Tensor
	if linkWeights != nil {
		if len(linkWeights) != m.Topo.M {
			panic(fmt.Sprintf("core: %d link weights for %d links", len(linkWeights), m.Topo.M))
		}
		weights = g.Alloc(m.Topo.M, m.Topo.T)
		for j, w := range linkWeights {
			for t := 0; t < m.Topo.T; t++ {
				weights.Set(w, j, t)
			}
		}
	}
	delta := m.Cfg.RobustDelta
	diff := autodiff.Sub(speed, g.Const(speedObs))
	var cell *autodiff.Node
	if delta <= 0 {
		cell = autodiff.Mul(diff, diff)
	} else {
		scaled := autodiff.Scale(diff, 1/delta)
		inner := autodiff.AddScalar(autodiff.Mul(scaled, scaled), 1)
		cell = autodiff.Scale(autodiff.AddScalar(autodiff.Sqrt(inner), -1), delta*delta)
	}
	if weights != nil {
		cell = autodiff.Mul(cell, g.Const(weights))
	}
	return autodiff.Mean(cell)
}

// smoothPenalty returns the mean squared successive-interval difference of
// the TOD tensor in MaxTrips-normalized units.
func (m *Model) smoothPenalty(g *autodiff.Graph, tod *autodiff.Node) *autodiff.Node {
	t := m.Topo.T
	if t < 2 {
		return g.Const(g.Alloc(1))
	}
	// Difference matrix D (T × T-1): (tod·D)[i,k] = tod[i,k+1] - tod[i,k].
	d := g.Alloc(t, t-1)
	for k := 0; k < t-1; k++ {
		d.Set(-1, k, k)
		d.Set(1, k+1, k)
	}
	diff := autodiff.MatMul(autodiff.Scale(tod, 1/m.Cfg.MaxTrips), g.Const(d))
	return autodiff.Mean(autodiff.Mul(diff, diff))
}

// auxLoss assembles the auxiliary terms of Eq. 13 on the current graph.
func (m *Model) auxLoss(g *autodiff.Graph, tod, vol *autodiff.Node, aux *AuxData) *autodiff.Node {
	zero := g.Const(g.Alloc(1))
	total := zero

	// Census (TOD level, static): || Σ_t g_i - census_i ||² per OD,
	// normalized by MaxTrips² so weights are unit-comparable.
	if len(aux.CensusSum) > 0 && aux.CensusWeight > 0 {
		if len(aux.CensusSum) != m.Topo.N {
			panic(fmt.Sprintf("core: census length %d != N=%d", len(aux.CensusSum), m.Topo.N))
		}
		// Row sums of the TOD node: tod · 1_T.
		onesT := g.Alloc(m.Topo.T, 1)
		onesT.Fill(1)
		sums := autodiff.MatMul(tod, g.Const(onesT)) // (N × 1)
		norm := 1.0 / (m.Cfg.MaxTrips * float64(m.Topo.T))
		target := g.Alloc(m.Topo.N, 1)
		for i, c := range aux.CensusSum {
			target.Data[i] = c * norm
		}
		diff := autodiff.Sub(autodiff.Scale(sums, norm), g.Const(target))
		total = autodiff.Add(total, autodiff.Scale(autodiff.Mean(autodiff.Mul(diff, diff)), aux.CensusWeight))
	}

	// Cameras (volume level, dynamic): MSE on observed link rows.
	if len(aux.CameraLinks) > 0 && aux.CameraWeight > 0 {
		rows := make([]*autodiff.Node, len(aux.CameraLinks))
		for r, j := range aux.CameraLinks {
			rows[r] = autodiff.Row(vol, j)
		}
		pred := autodiff.Scale(autodiff.StackRows(rows), 1/m.Cfg.VolumeNorm)
		obs := tensor.ScaleTo(g.AllocLike(aux.CameraVolume), aux.CameraVolume, 1/m.Cfg.VolumeNorm)
		total = autodiff.Add(total, autodiff.Scale(autodiff.MSE(pred, obs), aux.CameraWeight))
	}

	// Trajectories (TOD level, dynamic): MSE on observed OD rows.
	if len(aux.TrajODIdx) > 0 && aux.TrajWeight > 0 {
		rows := make([]*autodiff.Node, len(aux.TrajODIdx))
		for r, i := range aux.TrajODIdx {
			rows[r] = autodiff.Row(tod, i)
		}
		pred := autodiff.Scale(autodiff.StackRows(rows), 1/m.Cfg.MaxTrips)
		obs := tensor.ScaleTo(g.AllocLike(aux.TrajG), aux.TrajG, 1/m.Cfg.MaxTrips)
		total = autodiff.Add(total, autodiff.Scale(autodiff.MSE(pred, obs), aux.TrajWeight))
	}
	return total
}

// speedScore re-evaluates the pure speed-observation loss of a fitted
// generator on a fresh graph — no smoothness or auxiliary terms. FitBest
// compares restarts on this score: the final training loss mixes the
// regularizers and is a single noisy last-epoch value, so it can prefer a
// restart whose actual speed match is worse.
func (m *Model) speedScore(gen TODGenModule, speedObs *tensor.Tensor, aux *AuxData) float64 {
	g := autodiff.NewGraph()
	defer g.Release()
	tod := gen.Generate(g)
	vol := m.T2V.MapVolume(g, tod, false)
	speed := m.V2S.MapSpeed(g, vol, false)
	var linkWeights []float64
	if aux != nil {
		linkWeights = aux.LinkWeights
	}
	return m.fitLoss(g, speed, speedObs, linkWeights).Value.Data[0]
}

// FitBest runs the test-time fit from `restarts` independent TOD-generator
// starts and keeps the best recovery. Each restart begins from the
// generator's entry state with freshly drawn Gaussian seeds — the seeds for
// all restarts are drawn serially from a single root-derived rng, so the
// start set is identical at any worker count — and the restarts run
// concurrently (bounded by Cfg.Workers) when the generator supports cloning.
//
// The winner is the restart with the lowest re-evaluated pure speed loss
// (see speedScore), ties broken by the lowest restart index. Its generator
// state is installed into m.TODGen before returning, so m.GenerateTOD() and
// Model.Save afterwards agree exactly with the returned tensor.
func (m *Model) FitBest(speedObs *tensor.Tensor, epochs, restarts int, aux *AuxData) (*tensor.Tensor, []float64, error) {
	return m.fitBest(context.Background(), speedObs, epochs, restarts, aux, nil)
}

// FitBestCtx is FitBest with cooperative cancellation at restart and epoch
// boundaries: once ctx is cancelled no new restart starts, in-flight
// restarts abort at their next epoch boundary, and the call returns the
// context's cancellation cause with the generator's entry state intact.
func (m *Model) FitBestCtx(ctx context.Context, speedObs *tensor.Tensor, epochs, restarts int, aux *AuxData) (*tensor.Tensor, []float64, error) {
	return m.fitBest(ctx, speedObs, epochs, restarts, aux, nil)
}

// restartRecord is one completed restart's outcome: the generator's final
// state tensors and the restart's loss history.
type restartRecord struct {
	state []*tensor.Tensor
	hist  []float64
}

// restartCtl lets a checkpointing caller observe and steer a multi-restart
// fit. Restarts listed in restored skip fitting and reuse the recorded
// outcome; onDone reports each freshly completed restart (called from worker
// goroutines — implementations synchronize internally); stop, polled before
// and during each restart, requests a restart-granular interrupt. All fields
// are optional.
type restartCtl struct {
	restored map[int]restartRecord
	onDone   func(r int, state []*tensor.Tensor, hist []float64) error
	stop     func() bool
}

func (c *restartCtl) stopped() bool {
	return c != nil && c.stop != nil && c.stop()
}

// restartHook aborts a restart's fit between epochs once stop fires. The
// partial restart is discarded — resume refits it from its entry state — so
// nothing is recorded here.
func (c *restartCtl) restartHook() stageHook {
	if c == nil || c.stop == nil {
		return nil
	}
	return func(done int, hist []float64, opt nn.StatefulOptimizer) error {
		if c.stop() {
			return ErrInterrupted
		}
		return nil
	}
}

// fitBest is the controllable core of FitBest. With a nil ctl it behaves
// exactly like the public method; a checkpointing caller passes a ctl to
// restore completed restarts, record new ones, and interrupt cleanly (the
// interrupt surfaces as ErrInterrupted with the model's entry state intact).
// Cancellation via ctx is restart-granular like a ctl stop: with a ctl it
// surfaces as ErrInterrupted (the checkpointed, resumable form), without one
// as the context's cancellation cause.
func (m *Model) fitBest(ctx context.Context, speedObs *tensor.Tensor, epochs, restarts int, aux *AuxData, ctl *restartCtl) (*tensor.Tensor, []float64, error) {
	if restarts <= 1 {
		return m.FitCtx(ctx, speedObs, epochs, aux)
	}
	restore := freezeParams(append(m.T2V.Params(), m.V2S.Params()...))
	defer restore()
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 997))

	if cl, ok := m.TODGen.(CloneableTODGen); ok {
		// Concurrent path: every restart fits its own deep copy; the shared
		// T2V/V2S modules are frozen, hence read-only and race-free. The
		// reseeds for all restarts are drawn serially here, so the start set —
		// and any checkpointed subset of it — is identical at any worker
		// count.
		gens := make([]TODGenModule, restarts)
		for r := range gens {
			gens[r] = cl.CloneTODGen()
			if r > 0 {
				gens[r].Reseed(rng)
			}
		}
		hists := make([][]float64, restarts)
		errs := make([]error, restarts)
		skipped := make([]bool, restarts)
		fns := make([]func(), restarts)
		for r := range fns {
			r := r
			fns[r] = func() {
				if ctl != nil {
					if rec, ok := ctl.restored[r]; ok {
						copyStateTensors(gens[r].StateTensors(), rec.state)
						hists[r] = rec.hist
						return
					}
				}
				if ctl.stopped() || ctx.Err() != nil {
					skipped[r] = true
					return
				}
				hists[r], errs[r] = m.fitGenFrom(ctx, gens[r], speedObs, epochs, 0, nil, nn.NewAdam(m.Cfg.LR), aux, ctl.restartHook())
				if errs[r] != nil {
					if errors.Is(errs[r], ErrInterrupted) || ctx.Err() != nil {
						skipped[r], errs[r] = true, nil
					}
					return
				}
				if ctl != nil && ctl.onDone != nil {
					errs[r] = ctl.onDone(r, gens[r].StateTensors(), hists[r])
				}
			}
		}
		// RunCtx stops launching restarts once ctx is cancelled; restarts the
		// pool never started are equivalent to skipped ones below.
		runErr := parallel.RunCtx(ctx, m.Cfg.Workers, fns...)
		interrupted := runErr != nil
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		for _, s := range skipped {
			if s {
				interrupted = true
			}
		}
		if interrupted {
			if ctl != nil {
				// Checkpointed caller: surface the resumable sentinel — the
				// completed restarts are already on disk via ctl.onDone.
				return nil, nil, ErrInterrupted
			}
			return nil, nil, context.Cause(ctx)
		}
		best, bestScore := -1, math.Inf(1)
		for r := range gens {
			if score := m.speedScore(gens[r], speedObs, aux); best < 0 || score < bestScore {
				best, bestScore = r, score
			}
		}
		copyStateTensors(m.TODGen.StateTensors(), gens[best].StateTensors())
		return m.GenerateTOD(), hists[best], nil
	}

	// Serial fallback for generators without cloning: snapshot the entry
	// state, fit in place per restart, and restore the winner at the end.
	// Reseed always runs — also for restored or interrupted restarts — so the
	// reseed stream stays aligned with an uninterrupted run.
	entry := cloneTensors(m.TODGen.StateTensors())
	var bestState []*tensor.Tensor
	var bestHist []float64
	best, bestScore := -1, math.Inf(1)
	for r := 0; r < restarts; r++ {
		copyStateTensors(m.TODGen.StateTensors(), entry)
		if r > 0 {
			m.TODGen.Reseed(rng)
		}
		var hist []float64
		if rec, ok := restoredOf(ctl, r); ok {
			copyStateTensors(m.TODGen.StateTensors(), rec.state)
			hist = rec.hist
		} else {
			if ctl.stopped() || ctx.Err() != nil {
				copyStateTensors(m.TODGen.StateTensors(), entry)
				if ctl != nil {
					return nil, nil, ErrInterrupted
				}
				return nil, nil, context.Cause(ctx)
			}
			var err error
			hist, err = m.fitGenFrom(ctx, m.TODGen, speedObs, epochs, 0, nil, nn.NewAdam(m.Cfg.LR), aux, ctl.restartHook())
			if err != nil {
				if errors.Is(err, ErrInterrupted) || ctx.Err() != nil {
					copyStateTensors(m.TODGen.StateTensors(), entry)
				}
				return nil, nil, err
			}
			if ctl != nil && ctl.onDone != nil {
				if derr := ctl.onDone(r, m.TODGen.StateTensors(), hist); derr != nil {
					return nil, nil, derr
				}
			}
		}
		if score := m.speedScore(m.TODGen, speedObs, aux); best < 0 || score < bestScore {
			best, bestScore = r, score
			bestState = cloneTensors(m.TODGen.StateTensors())
			bestHist = hist
		}
	}
	copyStateTensors(m.TODGen.StateTensors(), bestState)
	return m.GenerateTOD(), bestHist, nil
}

// restoredOf looks up a restored restart record on an optional ctl.
func restoredOf(ctl *restartCtl, r int) (restartRecord, bool) {
	if ctl == nil {
		return restartRecord{}, false
	}
	rec, ok := ctl.restored[r]
	return rec, ok
}

// cloneTensors deep-copies a state-tensor list.
func cloneTensors(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// copyStateTensors copies src's contents into dst element-wise. The lists
// must come from StateTensors of generators of the same concrete type.
func copyStateTensors(dst, src []*tensor.Tensor) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("core: state tensor count mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		// CopyDataFrom, not a bare copy: dst may be a live weight whose
		// packed panels are cached, and the overwrite must invalidate them.
		dst[i].CopyDataFrom(src[i])
	}
}

// TrainFull is a convenience wrapper running the complete Fig. 8 pipeline:
// stage-1 Volume-Speed training, stage-2 TOD-Volume training, then the
// test-time fit against the observed speed (with optional restarts). It
// returns the recovered TOD.
func (m *Model) TrainFull(samples []Sample, speedObs *tensor.Tensor, v2sEpochs, t2vEpochs, fitEpochs int, aux *AuxData) (*tensor.Tensor, error) {
	return m.TrainFullCtx(context.Background(), samples, speedObs, v2sEpochs, t2vEpochs, fitEpochs, aux)
}

// TrainFullCtx is TrainFull with cooperative cancellation: each stage
// observes ctx at its epoch (or restart) boundaries, and a cancelled call
// returns the context's cancellation cause.
func (m *Model) TrainFullCtx(ctx context.Context, samples []Sample, speedObs *tensor.Tensor, v2sEpochs, t2vEpochs, fitEpochs int, aux *AuxData) (*tensor.Tensor, error) {
	if _, err := m.TrainV2SCtx(ctx, samples, v2sEpochs); err != nil {
		return nil, err
	}
	if _, err := m.TrainT2VCtx(ctx, samples, t2vEpochs); err != nil {
		return nil, err
	}
	tod, _, err := m.FitBestCtx(ctx, speedObs, fitEpochs, m.Cfg.FitRestarts, aux)
	return tod, err
}
