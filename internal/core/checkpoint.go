package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ovs/internal/autodiff"
	"ovs/internal/ckpt"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// ErrInterrupted is returned by checkpointed training entry points when
// CkptOptions.Stop fires or the run's context is cancelled. A checkpoint has
// been written by the time it surfaces; rerunning with resume continues
// where the run stopped.
var ErrInterrupted = errors.New("core: run interrupted; checkpoint written")

// Pipeline stage names recorded in checkpoints. A snapshot in stage S with
// epoch k means: every earlier stage is complete (its loss curve lives in
// PrevLoss) and S itself has completed k epochs. The two terminal stages mark
// a finished pipeline: "trained" after the mapping stages (ovsfit -train),
// "done" after the full train-and-fit pipeline.
const (
	StageV2S         = "v2s"
	StageT2V         = "t2v"
	StageTrained     = "trained"
	StageFit         = "fit"          // single-start fit, epoch-granular
	StageFitRestarts = "fit-restarts" // multi-restart fit, restart-granular
	StageDone        = "done"
)

// stageRank orders the stages for resume-skip decisions. StageFit and
// StageFitRestarts share a rank: they are the same pipeline position under
// different configurations, and a checkpoint from one cannot resume the
// other.
var stageRank = map[string]int{
	StageV2S: 0, StageT2V: 1, StageTrained: 2,
	StageFit: 3, StageFitRestarts: 3, StageDone: 4,
}

// CkptOptions configures fault-tolerant checkpointing for the training
// pipeline.
type CkptOptions struct {
	// Dir is the checkpoint directory. Required.
	Dir string
	// Every checkpoints each stage after every N completed epochs. <= 0
	// checkpoints only at stage boundaries and on interrupt. Multi-restart
	// fitting checkpoints per completed restart regardless.
	Every int
	// Keep is the retention depth; <= 0 selects the package default.
	Keep int
	// Stop is polled between epochs and restarts; once it reports true, a
	// final checkpoint is written and the run returns ErrInterrupted. It must
	// be safe to call from multiple goroutines. Context cancellation takes
	// the exact same path: Stop firing and ctx cancellation are observed at
	// the same boundaries and write identical checkpoints.
	Stop func() bool
}

// Checkpointer wraps a Model with checkpointed, resumable variants of the
// training pipeline. The headline guarantee: a run interrupted at any epoch
// (or restart) and resumed from its checkpoint produces bitwise-identical
// parameters, optimizer state, and loss history to a run that never stopped,
// at any worker count and with arena pooling on or off.
type Checkpointer struct {
	m    *Model
	opts CkptOptions
	w    *ckpt.Writer

	// mu guards w and prev: multi-restart fitting reports completions from
	// worker goroutines.
	mu   sync.Mutex
	prev map[string][]float64

	// resume is the snapshot being resumed from; stages consume or skip it
	// as the pipeline advances past them.
	resume *ckpt.Snapshot
}

// NewCheckpointer creates the checkpoint directory if needed and returns a
// checkpointer whose sequence numbers continue after any existing
// checkpoints. It does not restore anything; call Resume to continue from
// the newest valid checkpoint.
func NewCheckpointer(m *Model, opts CkptOptions) (*Checkpointer, error) {
	w, err := ckpt.NewWriter(opts.Dir, opts.Keep)
	if err != nil {
		return nil, err
	}
	return &Checkpointer{m: m, opts: opts, w: w, prev: make(map[string][]float64)}, nil
}

// Resume loads the newest valid checkpoint (skipping corrupt or partial
// files) and restores the model's parameters, generator state, and RNG
// position to it. It returns the checkpoint path, or "" when the directory
// holds no valid checkpoint — which is not an error: the run simply starts
// fresh. Call before any training entry point.
func (c *Checkpointer) Resume() (string, error) {
	snap, path, err := ckpt.Latest(c.opts.Dir)
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	if err := c.restoreSnapshot(snap); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	c.resume = snap
	for stage, hist := range snap.PrevLoss {
		c.prev[stage] = append([]float64(nil), hist...)
	}
	return path, nil
}

// restoreSnapshot installs a snapshot's state into the model: parameters
// first (all-or-nothing), then the generator state tensors, then the RNG
// position. The snapshot must come from a model with identical topology and
// configuration; mismatches are rejected before anything is written.
func (c *Checkpointer) restoreSnapshot(snap *ckpt.Snapshot) error {
	if _, ok := stageRank[snap.Stage]; !ok {
		return fmt.Errorf("core: checkpoint has unknown stage %q", snap.Stage)
	}
	live := c.m.TODGen.StateTensors()
	gen, err := restoreTensorStates(snap.GenState, live)
	if err != nil {
		return fmt.Errorf("core: checkpoint generator state: %w", err)
	}
	if err := nn.RestoreParams(c.m.Params(), snap.Params); err != nil {
		return fmt.Errorf("core: checkpoint parameters: %w", err)
	}
	copyStateTensors(live, gen)
	c.m.rngSrc.Restore(snap.RNGSeed, snap.RNGDraws)
	return nil
}

// TrainMappings runs the two mapping stages (TrainV2S then TrainT2V) with
// periodic checkpoints, resuming either stage mid-flight when a snapshot is
// pending. It returns both loss curves.
func (c *Checkpointer) TrainMappings(ctx context.Context, samples []Sample, v2sEpochs, t2vEpochs int) ([]float64, []float64, error) {
	v2s, err := c.runEpochStage(ctx, StageV2S, v2sEpochs, func(start int, hist []float64, opt *nn.Adam, hook stageHook) ([]float64, error) {
		return c.m.trainV2S(ctx, samples, v2sEpochs, start, hist, opt, hook)
	}, c.m.V2S.Params())
	if err != nil {
		return v2s, nil, err
	}
	t2v, err := c.runEpochStage(ctx, StageT2V, t2vEpochs, func(start int, hist []float64, opt *nn.Adam, hook stageHook) ([]float64, error) {
		return c.m.trainT2V(ctx, samples, t2vEpochs, start, hist, opt, hook)
	}, c.m.T2V.Params())
	return v2s, t2v, err
}

// FitBest is the checkpointed Model.FitBest: single-start fits checkpoint
// per epoch, multi-restart fits per completed restart (a restart interrupted
// mid-fit is discarded and refitted on resume from its recorded entry
// state, so the outcome is unchanged).
func (c *Checkpointer) FitBest(ctx context.Context, speedObs *tensor.Tensor, epochs, restarts int, aux *AuxData) (*tensor.Tensor, []float64, error) {
	if restarts <= 1 {
		restore := freezeParams(append(c.m.T2V.Params(), c.m.V2S.Params()...))
		defer restore()
		hist, err := c.runEpochStage(ctx, StageFit, epochs, func(start int, h []float64, opt *nn.Adam, hook stageHook) ([]float64, error) {
			return c.m.fitGenFrom(ctx, c.m.TODGen, speedObs, epochs, start, h, opt, aux, hook)
		}, c.m.TODGen.Params())
		if err != nil {
			return nil, hist, err
		}
		return c.m.GenerateTOD(), hist, nil
	}

	snap, skipHist, skip, err := c.stageEntry(StageFitRestarts)
	if err != nil {
		return nil, nil, err
	}
	if skip {
		// The fit completed in a previous run; the restored parameters and
		// generator state already hold the winning restart.
		return c.m.GenerateTOD(), skipHist, nil
	}
	// The live generator holds the fit's entry state (on resume it was
	// restored from the snapshot's recorded entry state, so restarts redrawn
	// from the deterministic reseed stream start identically).
	entry := cloneTensors(c.m.TODGen.StateTensors())
	restored := make(map[int]restartRecord)
	var recs []ckpt.Restart
	if snap != nil {
		for _, rr := range snap.Restarts {
			state, rerr := restoreTensorStates(rr.State, c.m.TODGen.StateTensors())
			if rerr != nil {
				return nil, nil, fmt.Errorf("core: checkpoint restart %d: %w", rr.Index, rerr)
			}
			restored[rr.Index] = restartRecord{state: state, hist: append([]float64(nil), rr.Hist...)}
		}
		recs = append(recs, snap.Restarts...)
	}
	var recMu sync.Mutex
	ctl := &restartCtl{
		restored: restored,
		stop:     func() bool { return c.stopRequested(ctx) },
		onDone: func(r int, state []*tensor.Tensor, hist []float64) error {
			recMu.Lock()
			defer recMu.Unlock()
			recs = append(recs, ckpt.Restart{
				Index: r,
				State: tensorStates(state),
				Hist:  append([]float64(nil), hist...),
			})
			return c.write(StageFitRestarts, 0, nil, nil, recs, entry)
		},
	}
	tod, hist, err := c.m.fitBest(ctx, speedObs, epochs, restarts, aux, ctl)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.prev[StageFitRestarts] = hist
	c.mu.Unlock()
	return tod, hist, nil
}

// TrainResult bundles the outputs of the checkpointed full pipeline.
type TrainResult struct {
	TOD     *tensor.Tensor
	V2SHist []float64
	T2VHist []float64
	FitHist []float64
}

// TrainFull is the checkpointed Model.TrainFull: both mapping stages, the
// (multi-restart) fit, and a terminal "done" checkpoint capturing the final
// state. Resuming a completed run reproduces the same result without
// retraining.
func (c *Checkpointer) TrainFull(ctx context.Context, samples []Sample, speedObs *tensor.Tensor, v2sEpochs, t2vEpochs, fitEpochs int, aux *AuxData) (*TrainResult, error) {
	v2s, t2v, err := c.TrainMappings(ctx, samples, v2sEpochs, t2vEpochs)
	if err != nil {
		return nil, err
	}
	tod, fit, err := c.FitBest(ctx, speedObs, fitEpochs, c.m.Cfg.FitRestarts, aux)
	if err != nil {
		return nil, err
	}
	if err := c.Finish(StageDone); err != nil {
		return nil, err
	}
	return &TrainResult{TOD: tod, V2SHist: v2s, T2VHist: t2v, FitHist: fit}, nil
}

// Finish writes a terminal checkpoint (StageTrained or StageDone) capturing
// the completed pipeline's final state.
func (c *Checkpointer) Finish(stage string) error {
	if stageRank[stage] == 0 {
		return fmt.Errorf("core: %q is not a terminal stage", stage)
	}
	c.resume = nil
	return c.write(stage, 0, nil, nil, nil, nil)
}

// stageEntry resolves how a stage starts against the pending resume
// snapshot: skip it entirely (a later stage's snapshot proves it completed;
// its loss curve is returned), continue it mid-flight (the snapshot is
// consumed and returned), or start fresh.
func (c *Checkpointer) stageEntry(stage string) (snap *ckpt.Snapshot, skipHist []float64, skip bool, err error) {
	r := c.resume
	if r == nil {
		return nil, nil, false, nil
	}
	sr := stageRank[stage]
	rr := stageRank[r.Stage]
	if rr > sr {
		// A later stage checkpointed, so this one completed; its state is
		// already restored and its curve recorded.
		return nil, c.prev[stage], true, nil
	}
	if rr < sr {
		// The snapshot is from an earlier terminal stage (e.g. "trained"
		// feeding a fit-only run): its state carries over, the stage itself
		// starts fresh.
		c.resume = nil
		return nil, nil, false, nil
	}
	if r.Stage != stage {
		return nil, nil, false, fmt.Errorf("core: checkpoint is mid %q, cannot resume a %q stage (configuration changed between runs?)", r.Stage, stage)
	}
	c.resume = nil
	return r, nil, false, nil
}

// runEpochStage runs one epoch-granular stage through the resume/checkpoint
// machinery: resolve the entry point, rebuild the optimizer (importing its
// checkpointed slot state bound to the stage's parameters), run with the
// periodic hook, and record the completed curve.
func (c *Checkpointer) runEpochStage(ctx context.Context, stage string, epochs int, run func(start int, hist []float64, opt *nn.Adam, hook stageHook) ([]float64, error), params []*autodiff.Parameter) ([]float64, error) {
	snap, skipHist, skip, err := c.stageEntry(stage)
	if err != nil {
		return nil, err
	}
	if skip {
		return skipHist, nil
	}
	start := 0
	var hist []float64
	opt := nn.NewAdam(c.m.Cfg.LR)
	if snap != nil {
		start = snap.Epoch
		hist = append(hist, snap.Loss...)
		if snap.Opt != nil {
			if err := opt.ImportState(*snap.Opt, params); err != nil {
				return nil, fmt.Errorf("core: resume %s optimizer: %w", stage, err)
			}
		}
	}
	h, err := run(start, hist, opt, c.epochHook(ctx, stage, epochs))
	if err != nil {
		return h, err
	}
	c.mu.Lock()
	c.prev[stage] = h
	c.mu.Unlock()
	return h, nil
}

// epochHook returns the per-epoch callback for one stage: it checkpoints on
// the configured cadence, at the stage boundary, and on interrupt — in the
// interrupt case converting the stop request (or ctx cancellation, which is
// deliberately indistinguishable here) into ErrInterrupted after the
// checkpoint is safely on disk. Because the hook runs before the training
// core's own ctx check, a cancelled checkpointed run always exits through
// this path with its final checkpoint written.
func (c *Checkpointer) epochHook(ctx context.Context, stage string, epochs int) stageHook {
	return func(done int, hist []float64, opt nn.StatefulOptimizer) error {
		stopped := c.stopRequested(ctx)
		boundary := done == epochs
		periodic := c.opts.Every > 0 && done%c.opts.Every == 0
		if !stopped && !boundary && !periodic {
			return nil
		}
		if err := c.write(stage, done, hist, opt, nil, nil); err != nil {
			return err
		}
		if stopped {
			return ErrInterrupted
		}
		return nil
	}
}

// stopRequested polls the configured interrupt signal and the run's context.
// Both feed the same checkpoint-then-ErrInterrupted sequence, which is what
// makes a ctx-cancelled run's final checkpoint bitwise-identical to a
// Stop-interrupted one at the same boundary.
func (c *Checkpointer) stopRequested(ctx context.Context) bool {
	return (c.opts.Stop != nil && c.opts.Stop()) || ctx.Err() != nil
}

// write captures the model's current state into a snapshot and persists it.
// genState overrides the recorded generator state (restart-granular fits
// record the fit's entry state, not the live mid-restart state); nil records
// the live state.
func (c *Checkpointer) write(stage string, epoch int, loss []float64, opt nn.StatefulOptimizer, restarts []ckpt.Restart, genState []*tensor.Tensor) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	params, err := nn.CaptureParams(c.m.Params())
	if err != nil {
		return err
	}
	snap := &ckpt.Snapshot{
		Stage:  stage,
		Epoch:  epoch,
		Loss:   append([]float64(nil), loss...),
		Params: params,
	}
	if len(c.prev) > 0 {
		snap.PrevLoss = make(map[string][]float64, len(c.prev))
		for k, v := range c.prev {
			snap.PrevLoss[k] = append([]float64(nil), v...)
		}
	}
	if opt != nil {
		st := opt.ExportState()
		snap.Opt = &st
	}
	if genState == nil {
		genState = c.m.TODGen.StateTensors()
	}
	snap.GenState = tensorStates(genState)
	snap.Restarts = restarts
	snap.RNGSeed, snap.RNGDraws = c.m.rngSrc.State()
	_, err = c.w.Write(snap)
	return err
}

// tensorStates deep-copies live tensors into checkpoint records.
func tensorStates(ts []*tensor.Tensor) []ckpt.TensorState {
	out := make([]ckpt.TensorState, len(ts))
	for i, t := range ts {
		out[i] = ckpt.TensorState{
			Shape: append([]int(nil), t.Shape()...),
			Data:  append([]float64(nil), t.Data...),
		}
	}
	return out
}

// restoreTensorStates validates checkpoint tensor records against the live
// tensors they describe (count, shape, and length must all match) and
// materializes them. Nothing live is modified.
func restoreTensorStates(recs []ckpt.TensorState, like []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(recs) != len(like) {
		return nil, fmt.Errorf("core: %d state tensors recorded, model has %d", len(recs), len(like))
	}
	out := make([]*tensor.Tensor, len(recs))
	for i, rec := range recs {
		shape := like[i].Shape()
		if len(rec.Shape) != len(shape) {
			return nil, fmt.Errorf("core: state tensor %d has rank %d, model has %d", i, len(rec.Shape), len(shape))
		}
		for d, n := range shape {
			if rec.Shape[d] != n {
				return nil, fmt.Errorf("core: state tensor %d has shape %v, model has %v", i, rec.Shape, shape)
			}
		}
		if len(rec.Data) != len(like[i].Data) {
			return nil, fmt.Errorf("core: state tensor %d has %d values, model has %d", i, len(rec.Data), len(like[i].Data))
		}
		t := like[i].Clone()
		copy(t.Data, rec.Data)
		out[i] = t
	}
	return out, nil
}
