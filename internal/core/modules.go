package core

import (
	"math"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// ---- TOD Generation (Eqs. 1-2) ----

// TODGenerator maps fixed Gaussian seeds through two sigmoid FC layers to a
// TOD tensor, then scales the (0,1) outputs to trip counts. Only this module
// is optimized during test-time fitting.
type TODGenerator struct {
	Z        *tensor.Tensor // fixed Gaussian seeds (N × T)
	L1, L2   *nn.Dense
	MaxTrips float64
}

// NewTODGenerator draws the Gaussian seeds and initializes the two layers
// (FC(Hidden) → FC(T), both sigmoid, per Table IV). When cfg.InitTripLevel
// is set, the output bias is shifted so the initial generated TOD sits at
// that fraction of MaxTrips instead of the sigmoid midpoint.
func NewTODGenerator(topo *Topology, cfg Config, rng *rand.Rand) *TODGenerator {
	l2 := nn.NewDense(rng, "todgen.l2", cfg.Hidden, topo.T, nn.ActSigmoid)
	if lvl := cfg.InitTripLevel; lvl > 0 && lvl < 1 {
		// sigmoid(b) = lvl at the mean pre-activation; the first layer's
		// sigmoid outputs average ~0.5, so subtract the expected weight sum.
		bias := math.Log(lvl / (1 - lvl))
		for j := 0; j < topo.T; j++ {
			wsum := 0.0
			for h := 0; h < cfg.Hidden; h++ {
				wsum += l2.W.Value.At(h, j)
			}
			l2.B.Value.Data[j] = bias - 0.5*wsum
		}
		l2.B.Value.NoteMutation()
	}
	return &TODGenerator{
		Z:        tensor.Randn(rng, 1, topo.N, topo.T),
		L1:       nn.NewDense(rng, "todgen.l1", topo.T, cfg.Hidden, nn.ActSigmoid),
		L2:       l2,
		MaxTrips: cfg.MaxTrips,
	}
}

// Generate emits the TOD tensor node (N × T) in trip counts.
func (tg *TODGenerator) Generate(g *autodiff.Graph) *autodiff.Node {
	h := tg.L1.Forward(g.Const(tg.Z), false)
	out := tg.L2.Forward(h, false)
	return autodiff.Scale(out, tg.MaxTrips)
}

// Params returns the generator's trainable parameters.
func (tg *TODGenerator) Params() []*autodiff.Parameter {
	return append(tg.L1.Params(), tg.L2.Params()...)
}

// Reseed replaces the Gaussian seeds, giving a fresh fitting start without
// rebuilding the module (used when fitting multiple observations).
func (tg *TODGenerator) Reseed(rng *rand.Rand) {
	tg.Z.NoteMutation()
	for i := range tg.Z.Data {
		tg.Z.Data[i] = rng.NormFloat64()
	}
}

// StateTensors returns the tensors that fully determine the generator's
// output: the Gaussian seeds and both layers' weights and biases, in a fixed
// order shared with clones of this generator.
func (tg *TODGenerator) StateTensors() []*tensor.Tensor {
	return []*tensor.Tensor{tg.Z, tg.L1.W.Value, tg.L1.B.Value, tg.L2.W.Value, tg.L2.B.Value}
}

// CloneTODGen returns a deep copy with independent seeds and parameters, so
// multiple fit restarts can train concurrently.
func (tg *TODGenerator) CloneTODGen() TODGenModule {
	return &TODGenerator{Z: tg.Z.Clone(), L1: tg.L1.Clone(), L2: tg.L2.Clone(), MaxTrips: tg.MaxTrips}
}

// moduleWorkers returns the worker count for parallel graph construction
// inside a module forward pass. Dropout draws its masks from a single shared
// rng in recording order, so training passes with active dropout are forced
// serial — the draw order, and therefore every mask, must match Workers=1.
func moduleWorkers(cfg Config, train bool) int {
	if train && cfg.DropoutRate > 0 {
		return 1
	}
	return cfg.Workers
}

// ---- TOD-Volume Mapping (Eqs. 3-8) ----

// AttentionT2V implements the OD→route split and the dynamic attention
// network. Route trip-count series are embedded by two 1×3 convolutions
// (Eqs. 5-6), summed into a system embedding (Eq. 7), and an FC+softmax head
// produces per-(route, link-position) lag attentions (Eq. 8) that convert
// route trip counts into link volumes (Eq. 4).
type AttentionT2V struct {
	topo *Topology
	cfg  Config

	// Route split: per-OD logits over its K route slots (trip-conserving
	// softmax split; identity when K = 1).
	splitLogits *autodiff.Parameter

	conv1, conv2 *nn.Conv1D
	attW         *autodiff.Parameter // (Lookback × ConvChannels)
	attB         *autodiff.Parameter // (Lookback)
	posEmb       *autodiff.Parameter // (MaxPos × Lookback), positional lag bias

	// Dynamic gain head: occupancy-volume is trip counts times dwell time,
	// which grows with congestion. gainW/gainB read the (congestion-aware)
	// route embedding into a softplus gain per time step; posGain scales it
	// per link position along the route.
	gainW   *autodiff.Parameter // (1 × ConvChannels)
	gainB   *autodiff.Parameter // (1)
	posGain *autodiff.Parameter // (MaxPos)

	drop *nn.DropoutLayer
}

// NewAttentionT2V builds the attention mapping for a topology.
func NewAttentionT2V(topo *Topology, cfg Config, rng *rand.Rand) *AttentionT2V {
	// softplus(-2.5) ≈ 0.08: initial dwell fraction of a free-flowing link
	// within one interval. softplus(0.5413) ≈ 1: neutral positional scale.
	gainB := tensor.Full(-2.5, 1)
	posGain := tensor.Full(0.5413, cfg.MaxPos)
	// Lag prior: most trips reach their links within the departure interval,
	// so attention starts concentrated at lag 0 and decays with lag. The
	// training patterns are temporally smooth, which makes the lag profile
	// weakly identified — without this prior it settles at an arbitrary
	// delay and the test-time fit shifts recovered demand in time.
	attB := tensor.New(cfg.Lookback)
	for w := 0; w < cfg.Lookback; w++ {
		attB.Data[w] = -1.5 * float64(w)
	}
	posEmb := tensor.Randn(rng, 0.05, cfg.MaxPos, cfg.Lookback)
	return &AttentionT2V{
		topo:        topo,
		cfg:         cfg,
		splitLogits: autodiff.NewParameter("t2v.split", tensor.New(topo.N, topo.K)),
		conv1:       nn.NewConv1D(rng, "t2v.conv1", 1, cfg.ConvChannels, 3, nn.ActReLU),
		conv2:       nn.NewConv1D(rng, "t2v.conv2", cfg.ConvChannels, cfg.ConvChannels, 3, nn.ActReLU),
		attW:        autodiff.NewParameter("t2v.attW", tensor.Randn(rng, 0.1, cfg.Lookback, cfg.ConvChannels)),
		attB:        autodiff.NewParameter("t2v.attB", attB),
		posEmb:      autodiff.NewParameter("t2v.pos", posEmb),
		gainW:       autodiff.NewParameter("t2v.gainW", tensor.Xavier(rng, cfg.ConvChannels, 1, 1, cfg.ConvChannels)),
		gainB:       autodiff.NewParameter("t2v.gainB", gainB),
		posGain:     autodiff.NewParameter("t2v.posGain", posGain),
		drop:        nn.NewDropout(rng, cfg.DropoutRate),
	}
}

// MapVolume converts a TOD node (N × T) to link volumes (M × T).
func (a *AttentionT2V) MapVolume(g *autodiff.Graph, tod *autodiff.Node, train bool) *autodiff.Node {
	topo := a.topo
	// 1. OD → route trip counts (Eq. 3): a softmax split over each OD's K
	// route slots conserves total trips across routes.
	routeRows := make([]*autodiff.Node, topo.N*topo.K)
	if topo.K == 1 {
		for i := 0; i < topo.N; i++ {
			routeRows[i] = autodiff.Row(tod, i)
		}
	} else {
		split := autodiff.SoftmaxRows(g.Param(a.splitLogits)) // (N × K)
		for i := 0; i < topo.N; i++ {
			gi := autodiff.Row(tod, i)
			fr := autodiff.Row(split, i) // (K)
			for k := 0; k < topo.K; k++ {
				frac := autodiff.SliceVec(fr, k, k+1)     // (1)
				fracMat := autodiff.Reshape(frac, 1, 1)   // (1×1)
				giMat := autodiff.Reshape(gi, 1, topo.T)  // (1×T)
				scaled := autodiff.MatMul(fracMat, giMat) // (1×T)
				routeRows[i*topo.K+k] = autodiff.Reshape(scaled, topo.T)
			}
		}
	}

	// 2. Per-route embeddings (Eqs. 5-6) and system embedding (Eq. 7). Each
	// route's conv stack is an independent sub-graph, built on a forked child
	// tape and spliced back in route order (see autodiff.ForkJoin for the
	// determinism argument).
	workers := moduleWorkers(a.cfg, train)
	norm := 1.0 / a.cfg.MaxTrips
	embeds := autodiff.ForkJoin(g, workers, len(routeRows), func(sub *autodiff.Graph, r int) *autodiff.Node {
		x := autodiff.Reshape(autodiff.Scale(sub.Ref(routeRows[r]), norm), 1, topo.T)
		h := a.conv1.Forward(x, train)
		h = a.drop.Forward(h, train)
		return a.conv2.Forward(h, train) // (C × T)
	})
	system := autodiff.SumNodes(embeds...)
	// Average so the system embedding scale is route-count invariant.
	system = autodiff.Scale(system, 1/float64(len(embeds)))

	// 3. Attention per (route, position) and volume assembly (Eqs. 4, 8).
	attW := g.Param(a.attW)
	attB := g.Param(a.attB)
	posEmb := g.Param(a.posEmb)

	gainW := g.Param(a.gainW)
	// Hoisted out of the per-route builds: single-operand ops record onto
	// their operand's tape, so shared nodes must be built on the parent once.
	gainBVec := autodiff.Reshape(g.Param(a.gainB), 1)
	posGain := g.Param(a.posGain)

	// Pre-compute each route's lag logits (Lookback × T) and dynamic gain
	// series (T): the gain reads the congestion-aware embedding and converts
	// the trip-count attention output into occupancy.
	routeHeads := autodiff.ForkJoinK(g, workers, len(routeRows), func(sub *autodiff.Graph, r int) []*autodiff.Node {
		u := autodiff.Add(sub.Ref(embeds[r]), sub.Ref(system))                     // (C × T)
		logits := autodiff.MatMul(sub.Ref(attW), u)                                // (W × T)
		logits = addColVector(logits, sub.Ref(attB))                               // + b per lag row
		pre := addColVector(autodiff.MatMul(sub.Ref(gainW), u), sub.Ref(gainBVec)) // (1 × T)
		gain := autodiff.Softplus(autodiff.Reshape(pre, topo.T))
		return []*autodiff.Node{logits, gain}
	})

	zeroRow := g.Const(g.Alloc(topo.T))
	volRows := autodiff.ForkJoin(g, workers, topo.M, func(sub *autodiff.Graph, j int) *autodiff.Node {
		incs := topo.linkRoutes[j]
		if len(incs) == 0 {
			return zeroRow // parent-tape node; nothing recorded on the child
		}
		posEmbRef := sub.Ref(posEmb)
		posGainRef := sub.Ref(posGain)
		var parts []*autodiff.Node
		for _, inc := range incs {
			pos := inc.pos
			if pos >= a.cfg.MaxPos {
				pos = a.cfg.MaxPos - 1
			}
			pe := autodiff.Row(posEmbRef, pos) // (W)
			logits := addColVector(sub.Ref(routeHeads[inc.route][0]), pe)
			alpha := softmaxCols(logits) // softmax over lags per time step
			contrib := autodiff.Mul(
				autodiff.LagAttend(alpha, sub.Ref(routeRows[inc.route])),
				sub.Ref(routeHeads[inc.route][1]),
			)
			scale := autodiff.Softplus(autodiff.SliceVec(posGainRef, pos, pos+1))
			parts = append(parts, autodiff.MulScalarNode(contrib, scale))
		}
		return autodiff.SumNodes(parts...)
	})
	return autodiff.StackRows(volRows)
}

// Params returns the mapping's trainable parameters.
func (a *AttentionT2V) Params() []*autodiff.Parameter {
	ps := []*autodiff.Parameter{a.splitLogits, a.attW, a.attB, a.posEmb, a.gainW, a.gainB, a.posGain}
	ps = append(ps, a.conv1.Params()...)
	ps = append(ps, a.conv2.Params()...)
	return ps
}

// addColVector adds vector v (length rows) to every column of a (rows×cols).
func addColVector(a, v *autodiff.Node) *autodiff.Node {
	return autodiff.Transpose(autodiff.AddRowVector(autodiff.Transpose(a), v))
}

// softmaxCols applies softmax along each column of a rank-2 node.
func softmaxCols(a *autodiff.Node) *autodiff.Node {
	return autodiff.Transpose(autodiff.SoftmaxRows(autodiff.Transpose(a)))
}

// ---- Volume-Speed Mapping (Eqs. 9-11) ----

// LSTMV2S maps each link's volume series to its speed series with two
// shared LSTMs and two FC layers. Static link features (length, lanes,
// speed limit, capacity) accompany the volume at every timestep so the
// shared weights can specialize per link; the head predicts a (0,1) factor
// multiplied by the link's speed limit.
type LSTMV2S struct {
	topo *Topology
	cfg  Config

	lstm1, lstm2 *nn.LSTM
	fc1, fc2     *nn.Dense
	drop         *nn.DropoutLayer
}

// NewLSTMV2S builds the shared volume→speed stack.
func NewLSTMV2S(topo *Topology, cfg Config, rng *rand.Rand) *LSTMV2S {
	const staticFeatures = 4
	return &LSTMV2S{
		topo:  topo,
		cfg:   cfg,
		lstm1: nn.NewLSTM(rng, "v2s.lstm1", 1+staticFeatures, cfg.LSTMHidden),
		lstm2: nn.NewLSTM(rng, "v2s.lstm2", cfg.LSTMHidden, cfg.LSTMHidden),
		fc1:   nn.NewDense(rng, "v2s.fc1", cfg.LSTMHidden, cfg.V2SFC, nn.ActSigmoid),
		fc2:   nn.NewDense(rng, "v2s.fc2", cfg.V2SFC, 1, nn.ActSigmoid),
		drop:  nn.NewDropout(rng, cfg.DropoutRate),
	}
}

// MapSpeed converts link volumes (M × T) to speeds (M × T) in m/s. The
// per-link LSTM applications share weights but are otherwise independent, so
// each link's sub-graph is built on a forked child tape and spliced back in
// link order — the dominant parallel win of the forward pass.
func (v *LSTMV2S) MapSpeed(g *autodiff.Graph, vol *autodiff.Node, train bool) *autodiff.Node {
	topo := v.topo
	workers := moduleWorkers(v.cfg, train)
	rows := autodiff.ForkJoin(g, workers, topo.M, func(sub *autodiff.Graph, j int) *autodiff.Node {
		volRef := sub.Ref(vol)
		q := autodiff.Scale(autodiff.Row(volRef, j), 1/v.cfg.VolumeNorm) // (T)
		// Assemble (T × 5): volume plus broadcast static features.
		featRows := []*autodiff.Node{q}
		for f := 0; f < 4; f++ {
			ft := sub.Alloc(topo.T)
			ft.Fill(v.topo.linkFeatures.At(j, f))
			featRows = append(featRows, sub.Const(ft))
		}
		x := autodiff.Transpose(autodiff.StackRows(featRows)) // (T × 5)
		h := v.lstm1.Forward(x, train)
		h = v.drop.Forward(h, train)
		h = v.lstm2.Forward(h, train)
		h = v.fc1.Forward(h, train)
		out := v.fc2.Forward(h, train) // (T × 1), sigmoid in (0,1)
		return autodiff.Scale(autodiff.Reshape(out, topo.T), topo.speedLimits[j])
	})
	return autodiff.StackRows(rows)
}

// Params returns the mapping's trainable parameters.
func (v *LSTMV2S) Params() []*autodiff.Parameter {
	var ps []*autodiff.Parameter
	ps = append(ps, v.lstm1.Params()...)
	ps = append(ps, v.lstm2.Params()...)
	ps = append(ps, v.fc1.Params()...)
	ps = append(ps, v.fc2.Params()...)
	return ps
}
