package baselines

import (
	"fmt"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// LSTM implements the sequence baseline [35]: the city speed observation is
// treated as a T-step sequence of M-dimensional vectors, passed through two
// LSTM layers and a fully connected head that emits each interval's TOD
// column. Trained on the generated samples, applied to the observation.
type LSTM struct {
	// Hidden width of both LSTM layers (default 32).
	Hidden int
	// Epochs over the sample set (default 60).
	Epochs int
	// LR is the Adam learning rate.
	LR float64
}

// Name returns the paper's method label.
func (m *LSTM) Name() string { return "LSTM" }

// Recover trains the sequence model and applies it to the observation.
func (m *LSTM) Recover(ctx *Context) (*tensor.Tensor, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if len(ctx.Samples) == 0 {
		return nil, fmt.Errorf("baselines: LSTM requires training samples")
	}
	hidden := m.Hidden
	if hidden <= 0 {
		hidden = 32
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	lr := m.LR
	if lr <= 0 {
		lr = 0.01
	}
	n, mm := ctx.N(), ctx.M()
	_, speedNorm := sampleNorms(ctx.Samples)

	rng := rand.New(rand.NewSource(ctx.Seed + 17))
	l1 := nn.NewLSTM(rng, "lstmbase.l1", mm, hidden)
	l2 := nn.NewLSTM(rng, "lstmbase.l2", hidden, hidden)
	head := nn.NewDense(rng, "lstmbase.head", hidden, n, nn.ActSigmoid)
	params := append(append(l1.Params(), l2.Params()...), head.Params()...)

	forward := func(g *autodiff.Graph, speed *tensor.Tensor, train bool) *autodiff.Node {
		in := tensor.Scale(tensor.Transpose(speed), 1/speedNorm) // (T × M)
		h := l1.Forward(g.Const(in), train)
		h = l2.Forward(h, train)
		return head.Forward(h, train) // (T × N) in (0,1)
	}

	opt := nn.NewAdam(lr)
	for e := 0; e < epochs; e++ {
		for _, s := range ctx.Samples {
			g := autodiff.NewGraph()
			out := forward(g, s.Speed, true)
			target := tensor.Scale(tensor.Transpose(s.G), 1/ctx.MaxTrips)
			loss := autodiff.MSE(out, target)
			g.Backward(loss)
			nn.ClipGrads(params, 5)
			opt.Step(params)
			nn.ZeroGrads(params)
		}
	}
	g := autodiff.NewGraph()
	out := forward(g, ctx.SpeedObs, false)
	return tensor.Scale(tensor.Transpose(out.Value), ctx.MaxTrips), nil
}
