package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"ovs/internal/tensor"
)

// Genetic implements the evolutionary search baseline [32]: a population of
// TOD tensors is evolved to match the speed observation; fitness is the
// (negated) simulated speed RMSE. Selection keeps the elite, offspring come
// from uniform crossover plus Gaussian mutation.
type Genetic struct {
	// Population size (default 12).
	Population int
	// Generations to evolve (default 10).
	Generations int
	// Elite fraction carried over unchanged (default 0.25).
	Elite float64
	// MutationStd is the per-cell Gaussian mutation scale relative to
	// MaxTrips (default 0.1).
	MutationStd float64
}

// Name returns the paper's method label.
func (ga *Genetic) Name() string { return "Genetic" }

type scored struct {
	g     *tensor.Tensor
	score float64
}

// Recover evolves TOD candidates against the observation.
func (ga *Genetic) Recover(ctx *Context) (*tensor.Tensor, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.Simulate == nil {
		return nil, fmt.Errorf("baselines: Genetic requires a Simulate closure")
	}
	pop := ga.Population
	if pop <= 0 {
		pop = 12
	}
	gens := ga.Generations
	if gens <= 0 {
		gens = 10
	}
	elite := ga.Elite
	if elite <= 0 || elite >= 1 {
		elite = 0.25
	}
	mut := ga.MutationStd
	if mut <= 0 {
		mut = 0.1
	}
	rng := rand.New(rand.NewSource(ctx.Seed + 77))

	evaluate := func(g *tensor.Tensor) (float64, error) {
		speed, err := ctx.Simulate(g)
		if err != nil {
			return 0, err
		}
		return speedRMSE(speed, ctx.SpeedObs), nil
	}

	// Initialize uniformly in [0, MaxTrips/2]: random mid-scale demand.
	population := make([]scored, pop)
	for p := range population {
		g := tensor.RandUniform(rng, 0, ctx.MaxTrips/2, ctx.N(), ctx.T)
		score, err := evaluate(g)
		if err != nil {
			return nil, fmt.Errorf("baselines: Genetic init: %w", err)
		}
		population[p] = scored{g: g, score: score}
	}

	nElite := int(float64(pop) * elite)
	if nElite < 1 {
		nElite = 1
	}
	for gen := 0; gen < gens; gen++ {
		sort.Slice(population, func(a, b int) bool { return population[a].score < population[b].score })
		next := make([]scored, 0, pop)
		next = append(next, population[:nElite]...)
		for len(next) < pop {
			a := population[rng.Intn(nElite)]
			b := population[rng.Intn(pop/2+1)]
			child := crossoverMutate(a.g, b.g, mut*ctx.MaxTrips, ctx.MaxTrips, rng)
			score, err := evaluate(child)
			if err != nil {
				return nil, fmt.Errorf("baselines: Genetic generation %d: %w", gen, err)
			}
			next = append(next, scored{g: child, score: score})
		}
		population = next
	}
	sort.Slice(population, func(a, b int) bool { return population[a].score < population[b].score })
	return population[0].g, nil
}

// crossoverMutate performs uniform crossover followed by clipped Gaussian
// mutation.
func crossoverMutate(a, b *tensor.Tensor, std, maxTrips float64, rng *rand.Rand) *tensor.Tensor {
	child := a.Clone()
	for i := range child.Data {
		if rng.Float64() < 0.5 {
			child.Data[i] = b.Data[i]
		}
		if rng.Float64() < 0.2 {
			child.Data[i] += rng.NormFloat64() * std
		}
		if child.Data[i] < 0 {
			child.Data[i] = 0
		}
		if child.Data[i] > maxTrips {
			child.Data[i] = maxTrips
		}
	}
	return child
}
