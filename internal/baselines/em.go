package baselines

import (
	"fmt"

	"ovs/internal/tensor"
)

// EM implements the expectation-maximization baseline [19], [33] under a
// linear-Gaussian model of the speed generation:
//
//	g_t ~ N(μ, τ² I)          (TOD prior, per interval)
//	v_t = B g_t + ε,  ε ~ N(0, σ² I)
//
// B is estimated from the generated samples by ridge regression; the E-step
// computes the Gaussian posterior mean of each interval's TOD given the
// observed speed, and the M-step re-estimates the prior mean from the
// posteriors. Iterating maximizes the likelihood of the observed speeds.
type EM struct {
	// Iterations of EM (default 15).
	Iterations int
	// Lambda is the ridge regularizer for B.
	Lambda float64
}

// Name returns the paper's method label.
func (m *EM) Name() string { return "EM" }

// Recover runs the EM loop.
func (m *EM) Recover(ctx *Context) (*tensor.Tensor, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if len(ctx.Samples) == 0 {
		return nil, fmt.Errorf("baselines: EM requires training samples")
	}
	iters := m.Iterations
	if iters <= 0 {
		iters = 15
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 1e-2
	}
	n, mm, t := ctx.N(), ctx.M(), ctx.T

	// Estimate B: speed columns regressed on TOD columns.
	rows := len(ctx.Samples) * t
	x := tensor.New(rows, n)
	y := tensor.New(rows, mm)
	r := 0
	for _, s := range ctx.Samples {
		for tt := 0; tt < t; tt++ {
			for i := 0; i < n; i++ {
				x.Set(s.G.At(i, tt), r, i)
			}
			for j := 0; j < mm; j++ {
				y.Set(s.Speed.At(j, tt), r, j)
			}
			r++
		}
	}
	w, err := tensor.Ridge(x, y, lambda) // (N × M)
	if err != nil {
		return nil, fmt.Errorf("baselines: EM regression: %w", err)
	}
	b := tensor.Transpose(w) // (M × N): v = B g

	// Residual variance σ² and prior (μ, τ²) from the samples.
	pred := tensor.MatMul(x, w)
	sigma2 := tensor.MSE(pred, y)
	if sigma2 < 1e-6 {
		sigma2 = 1e-6
	}
	mu := tensor.New(n)
	tau2 := 0.0
	for _, s := range ctx.Samples {
		for i := 0; i < n; i++ {
			mu.Data[i] += s.G.Row(i).Mean()
		}
	}
	for i := range mu.Data {
		mu.Data[i] /= float64(len(ctx.Samples))
	}
	for _, s := range ctx.Samples {
		for i := 0; i < n; i++ {
			for tt := 0; tt < t; tt++ {
				d := s.G.At(i, tt) - mu.Data[i]
				tau2 += d * d
			}
		}
	}
	tau2 /= float64(len(ctx.Samples) * n * t)
	if tau2 < 1e-6 {
		tau2 = 1e-6
	}

	// Precompute S = τ² B Bᵀ + σ² I (M × M), reused in every E-step solve.
	bbT := tensor.MatMul(b, tensor.Transpose(b))
	s := tensor.Scale(bbT, tau2)
	for j := 0; j < mm; j++ {
		s.Data[j*mm+j] += sigma2
	}

	g := tensor.New(n, t)
	for iter := 0; iter < iters; iter++ {
		// E-step: posterior mean per interval.
		bmu := tensor.MatVec(b, mu) // (M)
		for tt := 0; tt < t; tt++ {
			resid := tensor.New(mm)
			for j := 0; j < mm; j++ {
				resid.Data[j] = ctx.SpeedObs.At(j, tt) - bmu.Data[j]
			}
			z, err := tensor.Solve(s, resid)
			if err != nil {
				return nil, fmt.Errorf("baselines: EM solve interval %d: %w", tt, err)
			}
			// m_t = μ + τ² Bᵀ z
			corr := tensor.MatVec(tensor.Transpose(b), z)
			for i := 0; i < n; i++ {
				v := mu.Data[i] + tau2*corr.Data[i]
				if v < 0 {
					v = 0
				}
				if v > ctx.MaxTrips {
					v = ctx.MaxTrips
				}
				g.Set(v, i, tt)
			}
		}
		// M-step: update the prior mean from the posterior means.
		for i := 0; i < n; i++ {
			mu.Data[i] = g.Row(i).Mean()
		}
	}
	return g, nil
}
