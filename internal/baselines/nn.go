package baselines

import (
	"fmt"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// NN implements the direct-regression baseline [34] as the paper describes
// it: a network of two fully connected layers that predicts the TOD tensor
// from the speed tensor. The whole (M × T) speed observation is flattened
// into one input vector and mapped to the flattened (N × T) TOD — one
// training example per generated sample.
type NN struct {
	// Hidden width (default 64).
	Hidden int
	// Epochs over the sample set (default 80).
	Epochs int
	// LR is the Adam learning rate.
	LR float64
}

// Name returns the paper's method label.
func (m *NN) Name() string { return "NN" }

// Recover trains speed→TOD regression and applies it to the observation.
func (m *NN) Recover(ctx *Context) (*tensor.Tensor, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if len(ctx.Samples) == 0 {
		return nil, fmt.Errorf("baselines: NN requires training samples")
	}
	hidden := m.Hidden
	if hidden <= 0 {
		hidden = 64
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 80
	}
	lr := m.LR
	if lr <= 0 {
		lr = 0.01
	}
	n, mm, t := ctx.N(), ctx.M(), ctx.T
	_, speedNorm := sampleNorms(ctx.Samples)

	rng := rand.New(rand.NewSource(ctx.Seed + 13))
	net := nn.MLP(rng, "nnbase", []int{mm * t, hidden, n * t}, nn.ActSigmoid, nn.ActSigmoid)
	opt := nn.NewAdam(lr)
	flatten := func(speed *tensor.Tensor) *tensor.Tensor {
		return tensor.Scale(speed, 1/speedNorm).Reshape(1, mm*t)
	}
	for e := 0; e < epochs; e++ {
		for _, s := range ctx.Samples {
			g := autodiff.NewGraph()
			out := net.Forward(g.Const(flatten(s.Speed)), true)
			target := tensor.Scale(s.G, 1/ctx.MaxTrips).Reshape(1, n*t)
			loss := autodiff.MSE(out, target)
			g.Backward(loss)
			opt.Step(net.Params())
			nn.ZeroGrads(net.Params())
		}
	}
	g := autodiff.NewGraph()
	out := net.Forward(g.Const(flatten(ctx.SpeedObs)), false)
	return tensor.Scale(out.Value.Clone().Reshape(n, t), ctx.MaxTrips), nil
}
