package baselines

import (
	"fmt"
	"math/rand"

	"ovs/internal/autodiff"
	"ovs/internal/nn"
	"ovs/internal/tensor"
)

// GLS implements the generalized-least-squares baseline [3]-[6]: a linear
// assignment matrix A maps TOD to link volume (estimated by ridge-regularized
// least squares on the generated samples), and a small neural network is
// stacked behind it to predict speed from volume. Recovery then optimizes a
// TOD tensor through the frozen chain to match the observed speed.
type GLS struct {
	// Lambda is the ridge regularizer for the assignment matrix.
	Lambda float64
	// Hidden is the width of the volume→speed network.
	Hidden int
	// TrainEpochs trains the volume→speed network; FitEpochs optimizes the
	// recovered TOD.
	TrainEpochs, FitEpochs int
	// LR is the Adam learning rate.
	LR float64
}

// Name returns the paper's method label.
func (m *GLS) Name() string { return "GLS" }

func (m *GLS) defaults() GLS {
	d := *m
	if d.Lambda <= 0 {
		d.Lambda = 1e-2
	}
	if d.Hidden <= 0 {
		d.Hidden = 32
	}
	if d.TrainEpochs <= 0 {
		d.TrainEpochs = 60
	}
	if d.FitEpochs <= 0 {
		d.FitEpochs = 120
	}
	if d.LR <= 0 {
		d.LR = 0.02
	}
	return d
}

// Recover estimates A, trains the speed net, and inverts the chain.
func (m *GLS) Recover(ctx *Context) (*tensor.Tensor, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if len(ctx.Samples) == 0 {
		return nil, fmt.Errorf("baselines: GLS requires training samples")
	}
	cfg := m.defaults()
	n, mm, t := ctx.N(), ctx.M(), ctx.T

	// 1. Assignment matrix by ridge least squares on per-interval columns.
	rows := len(ctx.Samples) * t
	x := tensor.New(rows, n)
	y := tensor.New(rows, mm)
	r := 0
	for _, s := range ctx.Samples {
		for tt := 0; tt < t; tt++ {
			for i := 0; i < n; i++ {
				x.Set(s.G.At(i, tt), r, i)
			}
			for j := 0; j < mm; j++ {
				y.Set(s.Volume.At(j, tt), r, j)
			}
			r++
		}
	}
	assign, err := tensor.Ridge(x, y, cfg.Lambda) // (N × M)
	if err != nil {
		return nil, fmt.Errorf("baselines: GLS assignment: %w", err)
	}

	// 2. Volume→speed network on per-interval columns.
	rng := rand.New(rand.NewSource(ctx.Seed + 11))
	volNorm, speedNorm := sampleNorms(ctx.Samples)
	net := nn.MLP(rng, "gls.v2s", []int{mm, cfg.Hidden, mm}, nn.ActReLU, nn.ActSigmoid)
	opt := nn.NewAdam(cfg.LR)
	for e := 0; e < cfg.TrainEpochs; e++ {
		for _, s := range ctx.Samples {
			g := autodiff.NewGraph()
			in := tensor.Scale(tensor.Transpose(s.Volume), 1/volNorm) // (T × M)
			target := tensor.Scale(tensor.Transpose(s.Speed), 1/speedNorm)
			out := net.Forward(g.Const(in), true)
			loss := autodiff.MSE(out, target)
			g.Backward(loss)
			opt.Step(net.Params())
			nn.ZeroGrads(net.Params())
		}
	}

	// 3. Recover TOD by gradient descent through the frozen chain.
	gParam := autodiff.NewParameter("gls.G", tensor.RandUniform(rng, 0, ctx.MaxTrips/4, n, t))
	fitOpt := nn.NewAdam(cfg.LR * 2)
	obs := tensor.Scale(ctx.SpeedObs, 1/speedNorm)
	assignT := tensor.Transpose(assign) // (M × N)
	for e := 0; e < cfg.FitEpochs; e++ {
		g := autodiff.NewGraph()
		gn := g.Param(gParam)
		vol := autodiff.MatMul(g.Const(assignT), gn) // (M × T)
		volIn := autodiff.Transpose(autodiff.Scale(vol, 1/volNorm))
		speed := net.Forward(volIn, false) // (T × M)
		loss := autodiff.MSE(autodiff.Transpose(speed), obs)
		g.Backward(loss)
		fitOpt.Step([]*autodiff.Parameter{gParam})
		gParam.ZeroGrad()
		clampInPlace(gParam.Value, 0, ctx.MaxTrips)
	}
	return gParam.Value.Clone(), nil
}
