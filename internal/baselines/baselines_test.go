package baselines

import (
	"math/rand"
	"testing"

	"ovs/internal/core"
	"ovs/internal/dataset"
	"ovs/internal/metrics"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// buildContext assembles a small synthetic context shared by the tests: a
// 3×3 grid, 6 OD pairs, simulator-generated samples, and a ground-truth
// observation.
func buildContext(t *testing.T) (*Context, *tensor.Tensor) {
	t.Helper()
	city := dataset.SyntheticGrid(6, 21)
	simulator := sim.New(city.Net, sim.Config{Intervals: 6, IntervalSec: 300, Seed: 3})
	raw, err := dataset.Generate(simulator, city, dataset.GenerateOptions{
		Count: 8,
		TOD:   dataset.TODConfig{Intervals: 6, IntervalMinutes: 5, Scale: 0.6},
		Seed:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]core.Sample, len(raw))
	maxTrips := 0.0
	for i, s := range raw {
		samples[i] = core.Sample{G: s.G, Volume: s.Volume, Speed: s.Speed}
		if s.G.Max() > maxTrips {
			maxTrips = s.G.Max()
		}
	}
	gt, err := dataset.GroundTruth(simulator, city, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{
		Net:      city.Net,
		Regions:  city.Regions,
		Pairs:    city.Pairs,
		T:        6,
		Samples:  samples,
		SpeedObs: gt.Speed,
		Simulate: func(g *tensor.Tensor) (*tensor.Tensor, error) {
			res, err := sim.New(city.Net, simulator.Cfg).Run(sim.Demand{ODs: city.ODs, G: g})
			if err != nil {
				return nil, err
			}
			return res.Speed, nil
		},
		MaxTrips: maxTrips * 1.2,
		Seed:     6,
	}
	return ctx, gt.G
}

func checkRecovery(t *testing.T, method Method, ctx *Context, gtG *tensor.Tensor, maxRMSEFactor float64) *tensor.Tensor {
	t.Helper()
	rec, err := method.Recover(ctx)
	if err != nil {
		t.Fatalf("%s: %v", method.Name(), err)
	}
	if rec.Dim(0) != ctx.N() || rec.Dim(1) != ctx.T {
		t.Fatalf("%s: recovered shape %v", method.Name(), rec.Shape())
	}
	if rec.Min() < 0 {
		t.Fatalf("%s: negative trip counts", method.Name())
	}
	// Sanity ceiling: better than the all-MaxTrips straw man by some margin.
	straw := gtG.Map(func(float64) float64 { return ctx.MaxTrips })
	rmse := metrics.RMSE(rec, gtG)
	strawRMSE := metrics.RMSE(straw, gtG)
	if rmse > strawRMSE*maxRMSEFactor {
		t.Fatalf("%s: RMSE %v worse than %vx straw man (%v)", method.Name(), rmse, maxRMSEFactor, strawRMSE)
	}
	return rec
}

func TestGravityRecover(t *testing.T) {
	ctx, gtG := buildContext(t)
	rec := checkRecovery(t, &Gravity{Candidates: 6}, ctx, gtG, 0.9)
	// Gravity is static: every interval column must be identical.
	for i := 0; i < ctx.N(); i++ {
		first := rec.At(i, 0)
		for tt := 1; tt < ctx.T; tt++ {
			if rec.At(i, tt) != first {
				t.Fatal("gravity TOD must be constant over time")
			}
		}
	}
}

func TestGravityRequiresSimulator(t *testing.T) {
	ctx, _ := buildContext(t)
	ctx.Simulate = nil
	if _, err := (&Gravity{}).Recover(ctx); err == nil {
		t.Fatal("gravity without simulator did not error")
	}
}

func TestGeneticRecoverImproves(t *testing.T) {
	ctx, gtG := buildContext(t)
	rec := checkRecovery(t, &Genetic{Population: 8, Generations: 4}, ctx, gtG, 0.9)
	// The evolved candidate must beat a random tensor on speed fitness.
	recSpeed, err := ctx.Simulate(rec)
	if err != nil {
		t.Fatal(err)
	}
	randG := tensor.RandUniform(randSource(1), 0, ctx.MaxTrips, ctx.N(), ctx.T)
	randSpeed, err := ctx.Simulate(randG)
	if err != nil {
		t.Fatal(err)
	}
	if speedRMSE(recSpeed, ctx.SpeedObs) > speedRMSE(randSpeed, ctx.SpeedObs) {
		t.Fatal("genetic search did not beat a random candidate on fitness")
	}
}

func TestGLSRecover(t *testing.T) {
	ctx, gtG := buildContext(t)
	checkRecovery(t, &GLS{TrainEpochs: 30, FitEpochs: 60}, ctx, gtG, 0.8)
}

func TestEMRecover(t *testing.T) {
	ctx, gtG := buildContext(t)
	checkRecovery(t, &EM{Iterations: 8}, ctx, gtG, 0.8)
}

func TestNNRecover(t *testing.T) {
	ctx, gtG := buildContext(t)
	checkRecovery(t, &NN{Epochs: 40}, ctx, gtG, 0.8)
}

func TestLSTMRecover(t *testing.T) {
	ctx, gtG := buildContext(t)
	checkRecovery(t, &LSTM{Epochs: 30}, ctx, gtG, 0.8)
}

func TestLearnedMethodsNeedSamples(t *testing.T) {
	ctx, _ := buildContext(t)
	ctx.Samples = nil
	for _, m := range []Method{&GLS{}, &EM{}, &NN{}, &LSTM{}} {
		if _, err := m.Recover(ctx); err == nil {
			t.Fatalf("%s without samples did not error", m.Name())
		}
	}
}

func TestContextValidate(t *testing.T) {
	ctx, _ := buildContext(t)
	if err := ctx.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *ctx
	bad.SpeedObs = tensor.New(2, 2)
	if err := bad.Validate(); err == nil {
		t.Fatal("bad observation shape validated")
	}
	bad2 := *ctx
	bad2.MaxTrips = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero MaxTrips validated")
	}
}

func TestMethodNames(t *testing.T) {
	want := map[Method]string{
		&Gravity{}: "Gravity",
		&Genetic{}: "Genetic",
		&GLS{}:     "GLS",
		&EM{}:      "EM",
		&NN{}:      "NN",
		&LSTM{}:    "LSTM",
	}
	for m, name := range want {
		if m.Name() != name {
			t.Fatalf("Name = %q, want %q", m.Name(), name)
		}
	}
}

// randSource is a tiny helper returning a deterministic rand.Rand.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
