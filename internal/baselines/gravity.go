package baselines

import (
	"fmt"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// Gravity implements the census-driven baseline [7], [8]: the trip count
// from region i to j is k·p_i·p_j/d_ij², constant across time intervals. The
// scale k is tuned by grid search against the observed speed (each candidate
// is simulated and scored by speed RMSE), as described in §V-F.
type Gravity struct {
	// Candidates is the number of grid-search points for k (log-spaced).
	Candidates int
}

// Name returns the paper's method label.
func (gr *Gravity) Name() string { return "Gravity" }

// Recover builds the gravity TOD and grid-searches k.
func (gr *Gravity) Recover(ctx *Context) (*tensor.Tensor, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.Simulate == nil {
		return nil, fmt.Errorf("baselines: Gravity requires a Simulate closure")
	}
	candidates := gr.Candidates
	if candidates <= 0 {
		candidates = 8
	}
	// Unit-k shape: s_i = p_o·p_d/d², normalized so its max cell is 1.
	shape := make([]float64, ctx.N())
	maxShape := 0.0
	for i, p := range ctx.Pairs {
		o, d := ctx.Regions[p.Origin], ctx.Regions[p.Dest]
		dist := roadnet.RegionDistance(o, d)
		if dist < 1 {
			dist = 1
		}
		shape[i] = o.Population * d.Population / (dist * dist)
		if shape[i] > maxShape {
			maxShape = shape[i]
		}
	}
	//ovslint:ignore floateq exact zero detects all-zero degenerate populations; any nonzero maximum is usable
	if maxShape == 0 {
		return nil, fmt.Errorf("baselines: Gravity degenerate populations")
	}
	for i := range shape {
		shape[i] /= maxShape
	}

	build := func(k float64) *tensor.Tensor {
		g := tensor.New(ctx.N(), ctx.T)
		for i := range shape {
			v := k * shape[i]
			for t := 0; t < ctx.T; t++ {
				g.Set(v, i, t)
			}
		}
		return g
	}

	// Log-spaced k from MaxTrips/64 up to MaxTrips (per-cell peak counts).
	bestK, bestScore := 0.0, 0.0
	first := true
	k := ctx.MaxTrips / 64
	for c := 0; c < candidates; c++ {
		g := build(k)
		speed, err := ctx.Simulate(g)
		if err != nil {
			return nil, fmt.Errorf("baselines: Gravity candidate %d: %w", c, err)
		}
		score := speedRMSE(speed, ctx.SpeedObs)
		if first || score < bestScore {
			bestK, bestScore, first = k, score, false
		}
		k *= 2
	}
	return build(bestK), nil
}
