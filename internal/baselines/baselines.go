// Package baselines implements the six compared methods of §V-F: Gravity,
// Genetic, GLS, EM, NN, and LSTM. Every method consumes the same Context —
// the generated training triples, the observed speed tensor, and (for the
// search-based methods) a simulator closure — and produces a recovered TOD
// tensor, making the Tables VI/VIII comparison a uniform loop.
package baselines

import (
	"fmt"
	"math"

	"ovs/internal/core"
	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// Context bundles everything a recovery method may consume.
type Context struct {
	// Net is the road network.
	Net *roadnet.Network
	// Regions and Pairs define the OD space; Regions carry the populations
	// the Gravity baseline needs.
	Regions []roadnet.Region
	Pairs   []roadnet.ODPair
	// T is the interval count; N and M are derived.
	T int
	// Samples are generated (TOD, volume, speed) triples for the learned
	// methods (Fig. 7 training stage).
	Samples []core.Sample
	// SpeedObs is the observed (M × T) speed tensor to invert.
	SpeedObs *tensor.Tensor
	// Simulate runs a TOD tensor through the traffic simulator, for the
	// search-based methods (Gravity's grid search, Genetic's fitness).
	Simulate func(g *tensor.Tensor) (speed *tensor.Tensor, err error)
	// MaxTrips bounds per-cell trip counts for search initialization.
	MaxTrips float64
	// Seed fixes stochastic behavior.
	Seed int64
}

// N returns the OD pair count.
func (c *Context) N() int { return len(c.Pairs) }

// M returns the link count.
func (c *Context) M() int { return c.Net.NumLinks() }

// Validate checks the context is complete enough for any method.
func (c *Context) Validate() error {
	if c.Net == nil || len(c.Pairs) == 0 || c.T <= 0 {
		return fmt.Errorf("baselines: incomplete context (net/pairs/T)")
	}
	if c.SpeedObs == nil || c.SpeedObs.Rank() != 2 || c.SpeedObs.Dim(0) != c.M() || c.SpeedObs.Dim(1) != c.T {
		return fmt.Errorf("baselines: speed observation must be (%d × %d)", c.M(), c.T)
	}
	if c.MaxTrips <= 0 {
		return fmt.Errorf("baselines: MaxTrips must be positive")
	}
	return nil
}

// Method recovers a TOD tensor (N × T) from the context.
type Method interface {
	Name() string
	Recover(ctx *Context) (*tensor.Tensor, error)
}

// speedRMSE is the fitness used by search methods: the paper's per-interval
// RMSE between a candidate's simulated speed and the observation.
func speedRMSE(pred, obs *tensor.Tensor) float64 {
	m, t := obs.Dim(0), obs.Dim(1)
	total := 0.0
	for tt := 0; tt < t; tt++ {
		sq := 0.0
		for j := 0; j < m; j++ {
			d := pred.At(j, tt) - obs.At(j, tt)
			sq += d * d
		}
		total += math.Sqrt(sq / float64(m))
	}
	return total / float64(t)
}

// sampleNorms returns normalization scales for volumes and speeds across the
// training samples (never zero).
func sampleNorms(samples []core.Sample) (volNorm, speedNorm float64) {
	for _, s := range samples {
		volNorm = math.Max(volNorm, s.Volume.Max())
		speedNorm = math.Max(speedNorm, s.Speed.Max())
	}
	if volNorm <= 0 {
		volNorm = 1
	}
	if speedNorm <= 0 {
		speedNorm = 1
	}
	return volNorm, speedNorm
}

// clampInPlace bounds every element of x to [lo, hi].
func clampInPlace(x *tensor.Tensor, lo, hi float64) {
	x.NoteMutation()
	for i, v := range x.Data {
		if v < lo {
			x.Data[i] = lo
		} else if v > hi {
			x.Data[i] = hi
		}
	}
}
