package trafficio

import (
	"bytes"
	"testing"
)

// FuzzImportOSM drives the OSM importer with arbitrary documents. Accepted
// inputs must produce a structurally valid network: every link endpoint in
// range and positive geometry.
func FuzzImportOSM(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"id":1,"lat":30.0,"lon":120.0},{"id":2,"lat":30.001,"lon":120.0}],` +
		`"ways":[{"nodes":[1,2],"lanes":2,"maxspeed_kmh":60}]}`))
	f.Add([]byte(`{"nodes":[],"ways":[]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := ImportOSM(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := net.NumNodes()
		for _, l := range net.Links {
			if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
				t.Fatalf("link %d endpoints (%d,%d) out of range for %d nodes", l.ID, l.From, l.To, n)
			}
			if l.Lanes < 1 || l.SpeedLimit <= 0 {
				t.Fatalf("link %d has degenerate geometry: lanes=%d speed=%v", l.ID, l.Lanes, l.SpeedLimit)
			}
		}
	})
}

// FuzzReadNetwork checks that any accepted network JSON survives a
// write/read round trip with identical node and link counts.
func FuzzReadNetwork(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"id":0,"x":0,"y":0},{"id":1,"x":100,"y":0}],` +
		`"links":[{"from":0,"to":1,"length":100,"lanes":1,"speed_limit":13.9}]}`))
	f.Add([]byte(`{"nodes":[],"links":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, net); err != nil {
			t.Fatalf("accepted network fails to serialize: %v", err)
		}
		again, err := ReadNetwork(&buf)
		if err != nil {
			t.Fatalf("serialized network fails to parse: %v", err)
		}
		if again.NumNodes() != net.NumNodes() || again.NumLinks() != net.NumLinks() {
			t.Fatalf("round trip changed size: %d/%d nodes, %d/%d links",
				net.NumNodes(), again.NumNodes(), net.NumLinks(), again.NumLinks())
		}
	})
}

// FuzzReadDemand checks the demand reader's shape contract: an accepted
// demand always has one G row per OD pair and a positive interval count.
func FuzzReadDemand(f *testing.F) {
	f.Add([]byte(`{"ods":[[0,1]],"g":[[1.5,2.5]]}`))
	f.Add([]byte(`{"ods":[],"g":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDemand(bytes.NewReader(data))
		if err != nil {
			return
		}
		if d.G.Dim(0) != len(d.ODs) || d.G.Dim(1) < 1 {
			t.Fatalf("accepted demand has shape %v for %d OD pairs", d.G.Shape(), len(d.ODs))
		}
	})
}

// FuzzReadSpeedCSV checks that any accepted CSV speed matrix is rectangular,
// finite, and bitwise stable under a write/read round trip.
func FuzzReadSpeedCSV(f *testing.F) {
	f.Add([]byte("t0,t1\n13.9,12.1\n0,55.5\n"))
	f.Add([]byte("1,2\n3,4\n"))
	f.Add([]byte(",,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		speed, err := ReadSpeedCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSpeedCSV(&buf, speed); err != nil {
			t.Fatalf("accepted matrix fails to serialize: %v", err)
		}
		again, err := ReadSpeedCSV(&buf)
		if err != nil {
			t.Fatalf("serialized matrix fails to parse: %v", err)
		}
		if !again.SameShape(speed) {
			t.Fatalf("round trip changed shape %v -> %v", speed.Shape(), again.Shape())
		}
		for i := range speed.Data {
			if speed.Data[i] != again.Data[i] {
				t.Fatalf("round trip changed Data[%d]: %v -> %v", i, speed.Data[i], again.Data[i])
			}
		}
	})
}
