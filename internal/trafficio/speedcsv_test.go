package trafficio

import (
	"bytes"
	"strings"
	"testing"

	"ovs/internal/tensor"
)

func TestSpeedCSVRoundTrip(t *testing.T) {
	speed := tensor.FromSlice([]float64{13.9, 12.125, 0, 55.5, 1e-3, 7}, 2, 3)
	var buf bytes.Buffer
	if err := WriteSpeedCSV(&buf, speed); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpeedCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(speed) {
		t.Fatalf("shape %v after round trip, want %v", got.Shape(), speed.Shape())
	}
	for i, v := range got.Data {
		if v != speed.Data[i] {
			t.Fatalf("Data[%d] = %v after round trip, want %v", i, v, speed.Data[i])
		}
	}
}

func TestReadSpeedCSVHeaderless(t *testing.T) {
	got, err := ReadSpeedCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 2 || got.Dim(1) != 2 || got.At(1, 0) != 3 {
		t.Fatalf("got %v %v", got.Shape(), got.Data)
	}
}

func TestReadSpeedCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"headerOnly": "t0,t1\n",
		"ragged":     "t0,t1\n1,2\n3\n",
		"nonNumber":  "t0\nabc\n",
		"infinite":   "t0,t1\n1,+Inf\n",
	}
	for name, src := range cases {
		if _, err := ReadSpeedCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestWriteSpeedCSVRejectsNonMatrix(t *testing.T) {
	if err := WriteSpeedCSV(&bytes.Buffer{}, tensor.New(2, 2, 2)); err == nil {
		t.Fatal("expected rank error, got none")
	}
}
