package trafficio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ovs/internal/roadnet"
)

// OSMDoc is a minimal OpenStreetMap-style export: nodes with lat/lon and
// ways referencing node IDs. The paper collects its road networks from
// OpenStreetMap; this importer lets a user bring a real extract (converted
// to this JSON by any OSM tool) into the pipeline.
type OSMDoc struct {
	Nodes []OSMNode `json:"nodes"`
	Ways  []OSMWay  `json:"ways"`
}

// OSMNode is one OSM node.
type OSMNode struct {
	ID  int64   `json:"id"`
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// OSMWay is one OSM way (an ordered chain of node references).
type OSMWay struct {
	Nodes []int64 `json:"nodes"`
	// Oneway marks directed ways; bidirectional otherwise.
	Oneway bool `json:"oneway,omitempty"`
	// Lanes per direction (default 1).
	Lanes int `json:"lanes,omitempty"`
	// MaxSpeedKmh is the speed limit (default 50).
	MaxSpeedKmh float64 `json:"maxspeed_kmh,omitempty"`
}

// earthRadiusM is the mean Earth radius used by the equirectangular
// projection.
const earthRadiusM = 6_371_000

// ImportOSM converts an OSM-style document into a road network. Coordinates
// are projected with a local equirectangular projection around the extract's
// centroid; way segments become links between consecutive nodes.
func ImportOSM(r io.Reader) (*roadnet.Network, error) {
	var doc OSMDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trafficio: decode OSM: %w", err)
	}
	if len(doc.Nodes) == 0 {
		return nil, fmt.Errorf("trafficio: OSM extract has no nodes")
	}
	// Projection origin: centroid.
	var lat0, lon0 float64
	for _, n := range doc.Nodes {
		lat0 += n.Lat
		lon0 += n.Lon
	}
	lat0 /= float64(len(doc.Nodes))
	lon0 /= float64(len(doc.Nodes))
	cosLat := math.Cos(lat0 * math.Pi / 180)

	net := roadnet.New()
	idMap := make(map[int64]int, len(doc.Nodes))
	for _, n := range doc.Nodes {
		if _, dup := idMap[n.ID]; dup {
			return nil, fmt.Errorf("trafficio: duplicate OSM node id %d", n.ID)
		}
		x := (n.Lon - lon0) * math.Pi / 180 * earthRadiusM * cosLat
		y := (n.Lat - lat0) * math.Pi / 180 * earthRadiusM
		idMap[n.ID] = net.AddNode(x, y)
	}
	for wi, way := range doc.Ways {
		if len(way.Nodes) < 2 {
			return nil, fmt.Errorf("trafficio: way %d has fewer than 2 nodes", wi)
		}
		lanes := way.Lanes
		if lanes <= 0 {
			lanes = 1
		}
		speed := way.MaxSpeedKmh / 3.6
		if speed <= 0 {
			speed = 50.0 / 3.6
		}
		for i := 1; i < len(way.Nodes); i++ {
			a, ok1 := idMap[way.Nodes[i-1]]
			b, ok2 := idMap[way.Nodes[i]]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("trafficio: way %d references unknown node", wi)
			}
			length := net.Distance(a, b)
			if length <= 0 {
				return nil, fmt.Errorf("trafficio: way %d has coincident nodes %d-%d", wi, way.Nodes[i-1], way.Nodes[i])
			}
			if way.Oneway {
				net.AddLink(a, b, length, lanes, speed, 0)
			} else {
				net.AddRoad(a, b, length, lanes, speed, 0)
			}
		}
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("trafficio: imported network invalid: %w", err)
	}
	return net, nil
}
