package trafficio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ovs/internal/roadnet"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

func TestNetworkRoundTrip(t *testing.T) {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 2})
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != net.NumNodes() || got.NumLinks() != net.NumLinks() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			got.NumNodes(), got.NumLinks(), net.NumNodes(), net.NumLinks())
	}
	for i := range net.Links {
		if net.Links[i] != got.Links[i] {
			t.Fatalf("link %d differs after round trip", i)
		}
	}
	for i := range net.Nodes {
		if net.Nodes[i] != got.Nodes[i] {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
}

func TestReadNetworkRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"nodes":[{"id":5,"x":0,"y":0}],"links":[]}`, // sparse IDs
		`{"nodes":[{"id":0,"x":0,"y":0},{"id":1,"x":1,"y":0}],"links":[{"from":0,"to":9,"length":1,"lanes":1,"speed_limit":1}]}`,  // bad endpoint
		`{"nodes":[{"id":0,"x":0,"y":0},{"id":1,"x":1,"y":0}],"links":[{"from":0,"to":1,"length":-1,"lanes":1,"speed_limit":1}]}`, // bad length
	}
	for i, c := range cases {
		if _, err := ReadNetwork(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted invalid input", i)
		}
	}
}

func TestDemandRoundTrip(t *testing.T) {
	g := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	d := sim.Demand{ODs: []sim.ODNodes{{Origin: 0, Dest: 5}, {Origin: 3, Dest: 1}}, G: g}
	var buf bytes.Buffer
	if err := WriteDemand(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDemand(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ODs) != 2 || got.ODs[1].Origin != 3 {
		t.Fatalf("ODs wrong after round trip: %+v", got.ODs)
	}
	if !tensor.AllClose(got.G, g, 0) {
		t.Fatalf("G wrong after round trip: %v", got.G)
	}
}

func TestReadDemandRejectsMismatch(t *testing.T) {
	cases := []string{
		`{"ods":[],"g":[]}`,
		`{"ods":[[0,1]],"g":[[1,2],[3,4]]}`,
		`{"ods":[[0,1],[1,0]],"g":[[1,2],[3]]}`,
		`{"ods":[[0,1]],"g":[[]]}`,
	}
	for i, c := range cases {
		if _, err := ReadDemand(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted invalid demand", i)
		}
	}
}

func TestWriteResult(t *testing.T) {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 2, Cols: 2})
	s := sim.New(net, sim.Config{Intervals: 2, IntervalSec: 120, Seed: 1})
	res, err := s.Run(sim.Demand{
		ODs: []sim.ODNodes{{Origin: 0, Dest: 3}},
		G:   tensor.Full(3, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{`"volume"`, `"entries"`, `"speed"`, `"spawned"`} {
		if !strings.Contains(out, key) {
			t.Fatalf("result JSON missing %s", key)
		}
	}
}

func TestImportOSM(t *testing.T) {
	doc := `{
		"nodes": [
			{"id": 100, "lat": 40.0000, "lon": -77.0000},
			{"id": 200, "lat": 40.0010, "lon": -77.0000},
			{"id": 300, "lat": 40.0010, "lon": -77.0010}
		],
		"ways": [
			{"nodes": [100, 200], "lanes": 2, "maxspeed_kmh": 60},
			{"nodes": [200, 300], "oneway": true}
		]
	}`
	net, err := ImportOSM(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 3 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	// First way bidirectional (2 links), second oneway (1 link).
	if net.NumLinks() != 3 {
		t.Fatalf("links = %d, want 3", net.NumLinks())
	}
	// 0.001° of latitude ≈ 111 m.
	if l := net.Links[0].Length; math.Abs(l-111) > 3 {
		t.Fatalf("link length = %v m, want ≈111", l)
	}
	if net.Links[0].Lanes != 2 || math.Abs(net.Links[0].SpeedLimit-60.0/3.6) > 1e-9 {
		t.Fatalf("way attributes not applied: %+v", net.Links[0])
	}
	// Defaults on the second way: 1 lane, 50 km/h.
	last := net.Links[2]
	if last.Lanes != 1 || math.Abs(last.SpeedLimit-50.0/3.6) > 1e-9 {
		t.Fatalf("defaults not applied: %+v", last)
	}
}

func TestImportOSMErrors(t *testing.T) {
	cases := []string{
		`{"nodes":[],"ways":[]}`,
		`{"nodes":[{"id":1,"lat":0,"lon":0},{"id":1,"lat":1,"lon":1}],"ways":[]}`,                // dup id
		`{"nodes":[{"id":1,"lat":0,"lon":0}],"ways":[{"nodes":[1]}]}`,                            // short way
		`{"nodes":[{"id":1,"lat":0,"lon":0}],"ways":[{"nodes":[1,2]}]}`,                          // unknown ref
		`{"nodes":[{"id":1,"lat":0,"lon":0},{"id":2,"lat":0,"lon":0}],"ways":[{"nodes":[1,2]}]}`, // coincident
	}
	for i, c := range cases {
		if _, err := ImportOSM(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted invalid OSM", i)
		}
	}
}
