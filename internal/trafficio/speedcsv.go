package trafficio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ovs/internal/tensor"
)

// WriteSpeedCSV writes a (links × intervals) speed matrix as CSV: a header
// row t0,t1,... followed by one row per link. This is the exchange format
// for bringing real per-link speed observations (the paper's input data)
// into ovsfit without hand-building JSON.
func WriteSpeedCSV(w io.Writer, speed *tensor.Tensor) error {
	if speed.Rank() != 2 {
		return fmt.Errorf("trafficio: speed matrix must be rank-2, got rank %d", speed.Rank())
	}
	m, t := speed.Dim(0), speed.Dim(1)
	cw := csv.NewWriter(w)
	header := make([]string, t)
	for i := range header {
		header[i] = "t" + strconv.Itoa(i)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, t)
	for j := 0; j < m; j++ {
		for tt := 0; tt < t; tt++ {
			row[tt] = strconv.FormatFloat(speed.At(j, tt), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSpeedCSV parses a CSV speed matrix written by WriteSpeedCSV. The
// header row is optional: when every field of the first record parses as a
// number, the first record is data. All rows must have the same width and
// every value must be a finite number.
func ReadSpeedCSV(r io.Reader) (*tensor.Tensor, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // widths are validated below for a better error
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trafficio: read speed CSV: %w", err)
	}
	if len(records) > 0 && !numericRecord(records[0]) {
		records = records[1:] // header
	}
	if len(records) == 0 || len(records[0]) == 0 {
		return nil, fmt.Errorf("trafficio: speed CSV has no data rows")
	}
	t := len(records[0])
	speed := tensor.New(len(records), t)
	for j, rec := range records {
		if len(rec) != t {
			return nil, fmt.Errorf("trafficio: speed CSV row %d has %d fields, want %d", j, len(rec), t)
		}
		for tt, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("trafficio: speed CSV row %d field %d: %w", j, tt, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("trafficio: speed CSV row %d field %d: non-finite value %v", j, tt, v)
			}
			speed.Set(v, j, tt)
		}
	}
	return speed, nil
}

// numericRecord reports whether every field of the record parses as a
// finite float, i.e. the record is data rather than a header.
func numericRecord(rec []string) bool {
	if len(rec) == 0 {
		return false
	}
	for _, field := range rec {
		v, err := strconv.ParseFloat(field, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
