// Package trafficio serializes the repository's traffic artifacts — road
// networks, demand tensors, and simulation results — as stable JSON
// documents, and imports networks from a minimal OSM-style node/way format.
// The cmd tools build on it; downstream users can round-trip a city through
// files and version control.
package trafficio

import (
	"encoding/json"
	"fmt"
	"io"

	"ovs/internal/roadnet"
	"ovs/internal/sim"
	"ovs/internal/tensor"
)

// NetworkDoc is the on-disk form of a road network.
type NetworkDoc struct {
	Nodes []NodeDoc `json:"nodes"`
	Links []LinkDoc `json:"links"`
}

// NodeDoc is one intersection.
type NodeDoc struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// LinkDoc is one directed link.
type LinkDoc struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Length     float64 `json:"length"`
	Lanes      int     `json:"lanes"`
	SpeedLimit float64 `json:"speed_limit"`
	Capacity   float64 `json:"capacity,omitempty"`
}

// WriteNetwork serializes a network.
func WriteNetwork(w io.Writer, net *roadnet.Network) error {
	doc := NetworkDoc{
		Nodes: make([]NodeDoc, 0, net.NumNodes()),
		Links: make([]LinkDoc, 0, net.NumLinks()),
	}
	for _, n := range net.Nodes {
		doc.Nodes = append(doc.Nodes, NodeDoc{ID: n.ID, X: n.X, Y: n.Y})
	}
	for _, l := range net.Links {
		doc.Links = append(doc.Links, LinkDoc{
			From: l.From, To: l.To, Length: l.Length,
			Lanes: l.Lanes, SpeedLimit: l.SpeedLimit, Capacity: l.Capacity,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadNetwork deserializes a network written by WriteNetwork. Node IDs must
// be dense 0..n-1 in order (the format WriteNetwork produces).
func ReadNetwork(r io.Reader) (*roadnet.Network, error) {
	var doc NetworkDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trafficio: decode network: %w", err)
	}
	net := roadnet.New()
	for i, n := range doc.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("trafficio: node IDs must be dense and ordered; got %d at index %d", n.ID, i)
		}
		net.AddNode(n.X, n.Y)
	}
	for i, l := range doc.Links {
		if l.From < 0 || l.From >= net.NumNodes() || l.To < 0 || l.To >= net.NumNodes() {
			return nil, fmt.Errorf("trafficio: link %d endpoints out of range", i)
		}
		if l.From == l.To || l.Length <= 0 || l.Lanes <= 0 || l.SpeedLimit <= 0 {
			return nil, fmt.Errorf("trafficio: link %d has invalid attributes", i)
		}
		net.AddLink(l.From, l.To, l.Length, l.Lanes, l.SpeedLimit, l.Capacity)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("trafficio: %w", err)
	}
	return net, nil
}

// DemandDoc is the on-disk form of a simulator demand.
type DemandDoc struct {
	ODs [][2]int    `json:"ods"`
	G   [][]float64 `json:"g"`
}

// WriteDemand serializes a demand.
func WriteDemand(w io.Writer, d sim.Demand) error {
	doc := DemandDoc{ODs: make([][2]int, len(d.ODs)), G: make([][]float64, d.G.Dim(0))}
	for i, od := range d.ODs {
		doc.ODs[i] = [2]int{od.Origin, od.Dest}
	}
	for i := range doc.G {
		doc.G[i] = d.G.Row(i).Data
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadDemand deserializes a demand written by WriteDemand.
func ReadDemand(r io.Reader) (sim.Demand, error) {
	var doc DemandDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return sim.Demand{}, fmt.Errorf("trafficio: decode demand: %w", err)
	}
	if len(doc.ODs) == 0 || len(doc.G) != len(doc.ODs) {
		return sim.Demand{}, fmt.Errorf("trafficio: demand must have matching ods and g rows")
	}
	t := len(doc.G[0])
	if t == 0 {
		return sim.Demand{}, fmt.Errorf("trafficio: demand has no intervals")
	}
	g := tensor.New(len(doc.ODs), t)
	ods := make([]sim.ODNodes, len(doc.ODs))
	for i, od := range doc.ODs {
		ods[i] = sim.ODNodes{Origin: od[0], Dest: od[1]}
		if len(doc.G[i]) != t {
			return sim.Demand{}, fmt.Errorf("trafficio: demand row %d has %d intervals, want %d", i, len(doc.G[i]), t)
		}
		for tt, v := range doc.G[i] {
			g.Set(v, i, tt)
		}
	}
	return sim.Demand{ODs: ods, G: g}, nil
}

// ResultDoc is the on-disk form of simulator outputs.
type ResultDoc struct {
	Links         int         `json:"links"`
	Intervals     int         `json:"intervals"`
	Volume        [][]float64 `json:"volume"`
	Entries       [][]float64 `json:"entries"`
	Speed         [][]float64 `json:"speed"`
	Spawned       int         `json:"spawned"`
	Completed     int         `json:"completed"`
	MeanTravelSec float64     `json:"mean_travel_sec"`
}

// WriteResult serializes a simulation result.
func WriteResult(w io.Writer, res *sim.Result) error {
	doc := ResultDoc{
		Links:         res.Volume.Dim(0),
		Intervals:     res.Volume.Dim(1),
		Volume:        rows(res.Volume),
		Entries:       rows(res.Entries),
		Speed:         rows(res.Speed),
		Spawned:       res.Spawned,
		Completed:     res.Completed,
		MeanTravelSec: res.MeanTravelSec(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func rows(t *tensor.Tensor) [][]float64 {
	out := make([][]float64, t.Dim(0))
	for i := range out {
		out[i] = t.Row(i).Data
	}
	return out
}
