package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 97, 1024} {
			for _, grain := range []int{0, 1, 7, 64, 5000} {
				hits := make([]int32, n)
				ForWorkers(workers, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForChunkBoundariesIndependentOfWorkers(t *testing.T) {
	// The chunk set must depend only on (n, grain): record the chunks seen
	// at several worker counts and compare.
	n, grain := 103, 10
	collect := func(workers int) map[[2]int]bool {
		set := make(map[[2]int]bool)
		ch := make(chan [2]int, 64)
		done := make(chan struct{})
		go func() {
			for c := range ch {
				set[c] = true
			}
			close(done)
		}()
		ForWorkers(workers, n, grain, func(lo, hi int) { ch <- [2]int{lo, hi} })
		close(ch)
		<-done
		return set
	}
	serial := collect(1)
	// Serial fallback is one chunk [0, n); parallel runs split by grain. The
	// guarantee is not identical chunking but identical results under the
	// contract, so check the parallel chunking tiles [0, n) on grain
	// boundaries.
	if len(serial) != 1 {
		t.Fatalf("serial fallback should be one chunk, got %d", len(serial))
	}
	par := collect(4)
	want := (n + grain - 1) / grain
	if len(par) != want {
		t.Fatalf("parallel chunks = %d, want %d", len(par), want)
	}
	for c := range par {
		if c[0]%grain != 0 || (c[1] != c[0]+grain && c[1] != n) {
			t.Fatalf("chunk %v not on grain boundary", c)
		}
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		var count atomic.Int64
		fns := make([]func(), 17)
		for i := range fns {
			fns[i] = func() { count.Add(1) }
		}
		Run(workers, fns...)
		if count.Load() != 17 {
			t.Fatalf("workers=%d: ran %d of 17 tasks", workers, count.Load())
		}
	}
}

func TestRunPreservesIndexedResults(t *testing.T) {
	out := make([]int, 50)
	fns := make([]func(), len(out))
	for i := range fns {
		i := i
		fns[i] = func() { out[i] = i * i }
	}
	Run(4, fns...)
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestSetWorkersAndResolve(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if Resolve(0) != 3 {
		t.Fatalf("Resolve(0) = %d, want 3", Resolve(0))
	}
	if Resolve(7) != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", Resolve(7))
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetWorkers(0) should reset to GOMAXPROCS, got %d", Workers())
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	// An outer fan-out whose tasks themselves run parallel loops must
	// complete: the pool spawns helpers instead of waiting on fixed
	// capacity.
	var total atomic.Int64
	ForWorkers(4, 8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ForWorkers(4, 1000, 10, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 8000 {
		t.Fatalf("nested total = %d, want 8000", total.Load())
	}
}
