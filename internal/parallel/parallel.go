// Package parallel provides the deterministic worker-pool primitives behind
// every concurrent path in this repository: row-range loops for the tensor
// kernels and the simulator's per-link updates, and coarse task fan-out for
// the experiment harness and multi-restart fitting.
//
// Determinism is the design constraint, not an afterthought. For splits
// [0, n) into contiguous chunks whose boundaries depend only on (n, grain) —
// never on the worker count or on goroutine scheduling — and each chunk is
// processed serially by exactly one goroutine. A chunk function that writes
// only to its own index range and keeps any reduction inside a single index
// therefore produces bitwise-identical results at every worker count,
// including the exact serial fallback Workers = 1.
//
// The pool is a bounded-width spawning pool rather than a set of persistent
// goroutines: each invocation runs on the calling goroutine plus at most
// workers-1 short-lived helpers. The caller always participates, so nested
// use (an experiment cell fanning out into parallel tensor kernels) can
// never deadlock on pool capacity, and an inner loop simply runs serially
// when its own chunk count does not warrant helpers.
//
// The Ctx variants (ForCtx, ForWorkersCtx, RunCtx) add cooperative
// cancellation on top of the same chunking: cancellation is observed only at
// chunk boundaries, in-flight chunks always finish, and all helpers are
// joined before returning, so a cancelled loop leaves no goroutines behind
// and an uncancelled one is bitwise-identical to its plain counterpart.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a caller passes
// workers = 0. It starts at runtime.GOMAXPROCS(0).
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers returns the process-wide default worker count.
func Workers() int { return int(defaultWorkers.Load()) }

// SetWorkers sets the process-wide default worker count. n <= 0 resets it
// to runtime.GOMAXPROCS(0); n = 1 forces every default-sized loop serial.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a per-config worker count to an effective one: 0 (unset)
// becomes the process default, anything else is used as given (minimum 1).
func Resolve(workers int) int {
	if workers <= 0 {
		return Workers()
	}
	return workers
}

// For runs fn over [0, n) in contiguous chunks of up to grain indices using
// the default worker count. See ForWorkers for the determinism contract.
func For(n, grain int, fn func(lo, hi int)) { ForWorkers(0, n, grain, fn) }

// ForWorkers runs fn over [0, n) in contiguous chunks of up to grain
// indices, using at most `workers` goroutines (0 = process default, 1 =
// exact serial execution on the calling goroutine).
//
// Contract: fn(lo, hi) must compute each index independently of the chunk
// boundaries — writes go only to the chunk's own output range and
// reductions stay within one index. Under that contract the result is
// bitwise-identical for every worker count.
func ForWorkers(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers = Resolve(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Run executes the given functions, at most `workers` concurrently (0 =
// process default, 1 = serial in slice order). It is the coarse-grain
// fan-out used for independent experiment cells and fit restarts; each
// function must carry its own random state (derived from the root seed by
// index) so results do not depend on the worker count.
func Run(workers int, fns ...func()) {
	ForWorkers(workers, len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}

// ForCtx is For with cooperative cancellation: it runs fn over [0, n) in
// contiguous chunks using the default worker count, draining at chunk
// boundaries once ctx is cancelled. See ForWorkersCtx.
func ForCtx(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	return ForWorkersCtx(ctx, 0, n, grain, fn)
}

// ForWorkersCtx is ForWorkers with cooperative cancellation. Cancellation is
// observed only at chunk boundaries: each worker checks ctx before claiming
// its next chunk, a chunk that has started always runs to completion, and
// every helper goroutine is joined before the call returns — a cancelled
// call therefore leaves no workers behind and no chunk half-done. Chunk
// boundaries still depend only on (n, grain), so a call that completes
// without observing cancellation is bitwise-identical to ForWorkers.
//
// The return value is nil when all chunks ran, or the context's cancellation
// cause once cancellation was observed. Which chunks ran before a cancelled
// call stopped is scheduling-dependent; callers must treat the output as
// abandoned when an error is returned.
func ForWorkersCtx(ctx context.Context, workers, n, grain int, fn func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers = Resolve(workers)
	if workers > chunks {
		workers = chunks
	}
	done := ctx.Done()
	var cancelled atomic.Bool
	var next atomic.Int64
	work := func() {
		for {
			select {
			case <-done:
				cancelled.Store(true)
				return
			default:
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers - 1)
		for w := 1; w < workers; w++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
	}
	if cancelled.Load() {
		return context.Cause(ctx)
	}
	return nil
}

// RunCtx is Run with cooperative cancellation: functions that have started
// run to completion, no new function starts once ctx is cancelled, and the
// call returns the cancellation cause after all in-flight functions have
// been joined (nil if every function ran).
func RunCtx(ctx context.Context, workers int, fns ...func()) error {
	return ForWorkersCtx(ctx, workers, len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
