// Package parallel provides the deterministic worker-pool primitives behind
// every concurrent path in this repository: row-range loops for the tensor
// kernels and the simulator's per-link updates, and coarse task fan-out for
// the experiment harness and multi-restart fitting.
//
// Determinism is the design constraint, not an afterthought. For splits
// [0, n) into contiguous chunks whose boundaries depend only on (n, grain) —
// never on the worker count or on goroutine scheduling — and each chunk is
// processed serially by exactly one goroutine. A chunk function that writes
// only to its own index range and keeps any reduction inside a single index
// therefore produces bitwise-identical results at every worker count,
// including the exact serial fallback Workers = 1.
//
// The pool is a bounded-width spawning pool rather than a set of persistent
// goroutines: each invocation runs on the calling goroutine plus at most
// workers-1 short-lived helpers. The caller always participates, so nested
// use (an experiment cell fanning out into parallel tensor kernels) can
// never deadlock on pool capacity, and an inner loop simply runs serially
// when its own chunk count does not warrant helpers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a caller passes
// workers = 0. It starts at runtime.GOMAXPROCS(0).
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers returns the process-wide default worker count.
func Workers() int { return int(defaultWorkers.Load()) }

// SetWorkers sets the process-wide default worker count. n <= 0 resets it
// to runtime.GOMAXPROCS(0); n = 1 forces every default-sized loop serial.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a per-config worker count to an effective one: 0 (unset)
// becomes the process default, anything else is used as given (minimum 1).
func Resolve(workers int) int {
	if workers <= 0 {
		return Workers()
	}
	return workers
}

// For runs fn over [0, n) in contiguous chunks of up to grain indices using
// the default worker count. See ForWorkers for the determinism contract.
func For(n, grain int, fn func(lo, hi int)) { ForWorkers(0, n, grain, fn) }

// ForWorkers runs fn over [0, n) in contiguous chunks of up to grain
// indices, using at most `workers` goroutines (0 = process default, 1 =
// exact serial execution on the calling goroutine).
//
// Contract: fn(lo, hi) must compute each index independently of the chunk
// boundaries — writes go only to the chunk's own output range and
// reductions stay within one index. Under that contract the result is
// bitwise-identical for every worker count.
func ForWorkers(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers = Resolve(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Run executes the given functions, at most `workers` concurrently (0 =
// process default, 1 = serial in slice order). It is the coarse-grain
// fan-out used for independent experiment cells and fit restarts; each
// function must carry its own random state (derived from the root seed by
// index) so results do not depend on the worker count.
func Run(workers int, fns ...func()) {
	ForWorkers(workers, len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
