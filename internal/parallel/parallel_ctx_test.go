package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCtxUncancelledMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 97} {
			hits := make([]int32, n)
			if err := ForWorkersCtx(context.Background(), workers, n, 7, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForCtxAlreadyCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForCtx(ctx, 100, 1, func(lo, hi int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("body ran under an already-cancelled context")
	}
}

func TestForCtxReturnsCause(t *testing.T) {
	sentinel := errors.New("stop: budget exhausted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(sentinel)
	if err := ForCtx(ctx, 10, 1, func(lo, hi int) {}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the cancel cause", err)
	}
}

func TestForCtxCancelStopsAtChunkBoundary(t *testing.T) {
	// Cancel from inside chunk k: the in-flight chunk always completes (the
	// body is never torn mid-chunk) and no chunk starts after every worker
	// has observed the cancellation. With workers=1 the very next chunk
	// claim sees the cancelled context, so exactly k+1 chunks run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var chunks atomic.Int64
	err := ForWorkersCtx(ctx, 1, 100, 10, func(lo, hi int) {
		if chunks.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := chunks.Load(); got != 3 {
		t.Fatalf("ran %d chunks after cancel at chunk 3, want exactly 3", got)
	}
}

func TestForCtxCancelledCompletesInFlightChunks(t *testing.T) {
	// Parallel workers: after cancellation every chunk that started still
	// runs to completion, and the visited set stays exactly-once — a
	// cancelled loop never double-runs or tears a chunk.
	n := 1000
	hits := make([]int32, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	err := ForWorkersCtx(ctx, 4, n, 10, func(lo, hi int) {
		if started.Add(1) == 5 {
			cancel()
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, h := range hits {
		if h > 1 {
			t.Fatalf("index %d visited %d times after cancellation", i, h)
		}
	}
}

func TestForCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForWorkersCtx(ctx, 8, 1000, 1, func(lo, hi int) {
			if lo == 0 {
				cancel()
			}
		})
		// nil is possible if every chunk was claimed before any worker saw
		// the cancellation; anything else must be the cancellation itself.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
		cancel()
	}
	// The pool joins its spawned workers before returning, so the count must
	// settle back to the baseline (allow scheduler slack with retries).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled ForWorkersCtx runs", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunCtxSkipsUnstartedAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	fns := make([]func(), 50)
	for i := range fns {
		i := i
		fns[i] = func() {
			if i == 0 {
				cancel()
			}
			ran.Add(1)
		}
	}
	err := RunCtx(ctx, 1, fns...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("serial RunCtx ran %d fns after cancel in the first, want 1", got)
	}
}

func TestRunCtxUncancelledRunsAll(t *testing.T) {
	var count atomic.Int64
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { count.Add(1) }
	}
	if err := RunCtx(context.Background(), 4, fns...); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 17 {
		t.Fatalf("ran %d of 17 tasks", count.Load())
	}
}
