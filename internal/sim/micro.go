package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// IDM car-following parameters (Treiber et al.), the standard microscopic
// model. CityFlow uses a comparable per-vehicle car-following scheme.
const (
	idmMaxAccel   = 2.0 // m/s², maximum acceleration
	idmComfBrake  = 3.0 // m/s², comfortable deceleration
	idmMinGap     = 2.0 // m, standstill minimum gap
	idmHeadway    = 1.2 // s, desired time headway
	idmVehicleLen = 5.0 // m, physical vehicle length
	idmAccelExpo  = 4.0 // acceleration exponent
)

// microVehicle carries full kinematic state.
type microVehicle struct {
	route     roadnet.Route
	idx       int
	pos       float64 // front-bumper position from link start, meters
	speed     float64 // m/s
	spawnStep int
}

// runMicro executes the IDM car-following engine. Each link is treated as a
// single ordered lane (no overtaking); intersections transfer the leading
// vehicle when the receiving link has headway space. Like runMeso, ctx is
// observed only at interval boundaries.
func (s *Simulator) runMicro(ctx context.Context, d Demand) (*Result, error) {
	cfg := s.Cfg
	net := s.Net
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Micro route choice evaluates candidates at free-flow times (the engine
	// does not maintain per-link aggregate speeds).
	chooser, err := newRouteChooser(net, cfg, d.ODs)
	if err != nil {
		return nil, err
	}
	spawns := buildSpawns(d, cfg, rng)
	vehicles := make([]microVehicle, 0, len(spawns))

	m := net.NumLinks()
	stepsPerInterval := int(cfg.IntervalSec / cfg.StepSec)
	totalSteps := cfg.Intervals * stepsPerInterval

	// occupants[j] is ordered front-to-back: [0] is farthest along the link.
	occupants := make([][]int, m)
	freeSpeed := make([]float64, m)
	// Effective per-link storage: lanes multiply how many vehicles fit, which
	// the single-lane abstraction folds into a shorter effective spacing.
	laneFactor := make([]float64, m)
	for j := range net.Links {
		l := &net.Links[j]
		freeSpeed[j] = s.effectiveSpeedLimit(l)
		laneFactor[j] = float64(l.Lanes)
	}

	res := &Result{
		Volume:  tensor.New(m, cfg.Intervals),
		Entries: tensor.New(m, cfg.Intervals),
		Speed:   tensor.New(m, cfg.Intervals),
	}
	speedSum := tensor.New(m, cfg.Intervals)
	weightSum := tensor.New(m, cfg.Intervals)

	entryQueue := make(map[int][]int)

	// spaceAt returns the gap (m) available at the entrance of link j.
	spaceAt := func(j int) float64 {
		if len(occupants[j]) == 0 {
			return net.Links[j].Length
		}
		last := occupants[j][len(occupants[j])-1]
		// Lanes let several vehicles share an entrance region; approximate by
		// dividing the rear vehicle's blocking length across lanes.
		return vehicles[last].pos - (idmVehicleLen+idmMinGap)/laneFactor[j]
	}

	enter := func(vi, step, interval int, initialSpeed float64) {
		veh := &vehicles[vi]
		veh.idx = 0
		veh.pos = 0
		veh.speed = initialSpeed
		first := veh.route[0]
		occupants[first] = append(occupants[first], vi)
		res.Entries.Add2(1, first, interval)
	}

	nextSpawn := 0
	for step := 0; step < totalSteps; step++ {
		interval := step / stepsPerInterval

		// Interval boundary: cancellation safe point, then refresh the dynamic
		// route cache. The micro engine evaluates candidates at free-flow
		// speeds (it keeps no per-link aggregate speed), so only the cache
		// invalidation matters.
		if step%stepsPerInterval == 0 {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("sim: cancelled at interval %d: %w", interval, context.Cause(ctx))
			}
			chooser.beginInterval(freeSpeed)
		}

		// 1. IDM acceleration update, link by link, leader to follower.
		for j := 0; j < m; j++ {
			occ := occupants[j]
			length := net.Links[j].Length
			for k, vi := range occ {
				veh := &vehicles[vi]
				v0 := freeSpeed[j]
				var gap, dv float64
				if k == 0 {
					// Leader: look ahead into the next link.
					gap = length - veh.pos + lookaheadGap(net, vehicles, occupants, veh)
					dv = 0
				} else {
					lead := &vehicles[occ[k-1]]
					gap = lead.pos - veh.pos - idmVehicleLen/laneFactor[j]
					dv = veh.speed - lead.speed
				}
				if gap < 0.1 {
					gap = 0.1
				}
				sStar := idmMinGap + veh.speed*idmHeadway + veh.speed*dv/(2*math.Sqrt(idmMaxAccel*idmComfBrake))
				if sStar < idmMinGap {
					sStar = idmMinGap
				}
				acc := idmMaxAccel * (1 - math.Pow(veh.speed/v0, idmAccelExpo) - (sStar/gap)*(sStar/gap))
				veh.speed += acc * cfg.StepSec
				if veh.speed < 0 {
					veh.speed = 0
				}
				if veh.speed > v0 {
					veh.speed = v0
				}
			}
		}

		// 2. Position update and transfers.
		for j := 0; j < m; j++ {
			length := net.Links[j].Length
			occ := occupants[j]
			for _, vi := range occ {
				veh := &vehicles[vi]
				veh.pos += veh.speed * cfg.StepSec
			}
			// Transfer/complete leading vehicles that crossed the link end.
			// A red signal holds the leader at the stop line.
			red := cfg.Signals != nil && !cfg.Signals.Green(net, j, float64(step)*cfg.StepSec)
			for len(occupants[j]) > 0 {
				vi := occupants[j][0]
				veh := &vehicles[vi]
				if veh.pos < length {
					break
				}
				if red {
					veh.pos = length
					veh.speed = 0
					break
				}
				if veh.idx == len(veh.route)-1 {
					occupants[j] = occupants[j][1:]
					res.Completed++
					res.TotalTravelSec += float64(step-veh.spawnStep) * cfg.StepSec
					continue
				}
				next := veh.route[veh.idx+1]
				if spaceAt(next) < (idmVehicleLen+idmMinGap)/laneFactor[next] {
					// Blocked at the junction: hold at the stop line.
					veh.pos = length
					veh.speed = 0
					break
				}
				occupants[j] = occupants[j][1:]
				veh.idx++
				veh.pos -= length
				if veh.pos > net.Links[next].Length {
					veh.pos = net.Links[next].Length
				}
				occupants[next] = append(occupants[next], vi)
				res.Entries.Add2(1, next, interval)
			}
		}

		// 3. Entries: retry queued vehicles, then spawn this step's events.
		origins := make([]int, 0, len(entryQueue))
		for origin := range entryQueue {
			origins = append(origins, origin)
		}
		sort.Ints(origins)
		for _, origin := range origins {
			queue := entryQueue[origin]
			for len(queue) > 0 {
				vi := queue[0]
				first := vehicles[vi].route[0]
				if spaceAt(first) < (idmVehicleLen+idmMinGap)/laneFactor[first] {
					break
				}
				queue = queue[1:]
				enter(vi, step, interval, math.Min(freeSpeed[first], 8))
			}
			if len(queue) == 0 {
				delete(entryQueue, origin)
			} else {
				entryQueue[origin] = queue
			}
		}
		for nextSpawn < len(spawns) && spawns[nextSpawn].step <= step {
			ev := spawns[nextSpawn]
			nextSpawn++
			route, err := chooser.choose(ev.od, freeSpeed, rng)
			if err != nil {
				return nil, err
			}
			vehicles = append(vehicles, microVehicle{route: route, spawnStep: step})
			vi := len(vehicles) - 1
			first := route[0]
			if spaceAt(first) < (idmVehicleLen+idmMinGap)/laneFactor[first] {
				entryQueue[net.Links[first].From] = append(entryQueue[net.Links[first].From], vi)
				continue
			}
			enter(vi, step, interval, math.Min(freeSpeed[first], 8))
		}

		// 4. Occupancy and speed observations: mean vehicle speed per link.
		for j := 0; j < m; j++ {
			n := len(occupants[j])
			res.Volume.Add2(float64(n), j, interval)
			if n > 0 {
				sum := 0.0
				for _, vi := range occupants[j] {
					sum += vehicles[vi].speed
				}
				speedSum.Add2(sum, j, interval)
				weightSum.Add2(float64(n), j, interval)
			}
		}
	}

	res.Volume = tensor.Scale(res.Volume, 1/float64(stepsPerInterval))

	for j := 0; j < m; j++ {
		for t := 0; t < cfg.Intervals; t++ {
			if w := weightSum.At(j, t); w > 0 {
				res.Speed.Set(speedSum.At(j, t)/w, j, t)
			} else {
				res.Speed.Set(freeSpeed[j], j, t)
			}
		}
	}
	res.Spawned = len(vehicles)
	res.DijkstraCalls = chooser.calls
	return res, nil
}

// lookaheadGap estimates free space beyond the current link's end for the
// leading vehicle: distance to the rear of the last vehicle on the next link
// of its route, or a large open-road gap when the next link is clear (or the
// vehicle is finishing its trip).
func lookaheadGap(net *roadnet.Network, vehicles []microVehicle, occupants [][]int, veh *microVehicle) float64 {
	if veh.idx == len(veh.route)-1 {
		return 1e4 // destination ahead: open road
	}
	next := veh.route[veh.idx+1]
	occ := occupants[next]
	if len(occ) == 0 {
		return 1e4
	}
	rear := &vehicles[occ[len(occ)-1]]
	gap := rear.pos - idmVehicleLen
	if gap < 0 {
		gap = 0
	}
	return gap
}
