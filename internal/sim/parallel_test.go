package sim

import (
	"runtime"
	"testing"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// TestMesoWorkerEquivalence checks that the meso engine produces identical
// results for Workers ∈ {1, 2, GOMAXPROCS}: the parallel phases partition
// strictly by link, so the trajectory of every vehicle — and every recorded
// observation — must be bitwise unchanged.
func TestMesoWorkerEquivalence(t *testing.T) {
	// An 8×9 grid has >128 links, so the per-link phases actually split into
	// multiple chunks (linkGrain) and run concurrently for workers > 1.
	net := roadnet.Grid(roadnet.GridConfig{Rows: 8, Cols: 9})
	n := net.NumNodes()
	ods := []ODNodes{{Origin: 0, Dest: n - 1}, {Origin: n - 1, Dest: 0}, {Origin: 8, Dest: n - 9}}
	d := Demand{ODs: ods, G: tensor.Full(4, 3, 3)}

	run := func(workers int) *Result {
		s := New(net, Config{Intervals: 3, IntervalSec: 180, Seed: 7, Workers: workers})
		res, err := s.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.Spawned != ref.Spawned || got.Completed != ref.Completed {
			t.Fatalf("workers=%d: vehicle counts differ (%d/%d vs %d/%d)",
				w, got.Spawned, got.Completed, ref.Spawned, ref.Completed)
		}
		if !tensor.AllClose(got.Volume, ref.Volume, 0) {
			t.Fatalf("workers=%d: volume differs from workers=1", w)
		}
		if !tensor.AllClose(got.Speed, ref.Speed, 0) {
			t.Fatalf("workers=%d: speed differs from workers=1", w)
		}
		if !tensor.AllClose(got.Entries, ref.Entries, 0) {
			t.Fatalf("workers=%d: entries differ from workers=1", w)
		}
		if got.TotalTravelSec != ref.TotalTravelSec {
			t.Fatalf("workers=%d: travel time differs from workers=1", w)
		}
	}
}
