package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// lineNet builds a simple 3-node, 2-link one-way corridor A->B->C.
func lineNet() *roadnet.Network {
	net := roadnet.New()
	a := net.AddNode(0, 0)
	b := net.AddNode(500, 0)
	c := net.AddNode(1000, 0)
	net.AddLink(a, b, 500, 2, 12.5, 0)
	net.AddLink(b, c, 500, 2, 12.5, 0)
	return net
}

func gridNet() *roadnet.Network {
	return roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 3})
}

func constDemand(n, t int, rate float64, ods []ODNodes) Demand {
	g := tensor.Full(rate, n, t)
	return Demand{ODs: ods, G: g}
}

func TestDemandValidate(t *testing.T) {
	net := lineNet()
	good := constDemand(1, 4, 2, []ODNodes{{Origin: 0, Dest: 2}})
	if err := good.Validate(net, 4); err != nil {
		t.Fatal(err)
	}
	bad := []Demand{
		{ODs: []ODNodes{{0, 2}}, G: tensor.New(2, 4)},      // row mismatch
		{ODs: []ODNodes{{0, 2}}, G: tensor.New(1, 3)},      // col mismatch
		{ODs: []ODNodes{{0, 0}}, G: tensor.New(1, 4)},      // origin==dest
		{ODs: []ODNodes{{0, 99}}, G: tensor.New(1, 4)},     // out of range
		{ODs: []ODNodes{{0, 2}}, G: tensor.Full(-1, 1, 4)}, // negative
	}
	for i, d := range bad {
		if err := d.Validate(net, 4); err == nil {
			t.Fatalf("bad demand %d validated", i)
		}
	}
}

func TestMesoConservation(t *testing.T) {
	net := lineNet()
	s := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 1})
	d := constDemand(1, 4, 3, []ODNodes{{Origin: 0, Dest: 2}})
	res, err := s.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned == 0 {
		t.Fatal("no vehicles spawned")
	}
	if res.Completed > res.Spawned {
		t.Fatalf("completed %d > spawned %d", res.Completed, res.Spawned)
	}
	// Light demand on an uncongested corridor: everyone should finish.
	if res.Completed < res.Spawned*9/10 {
		t.Fatalf("only %d of %d completed on empty corridor", res.Completed, res.Spawned)
	}
	// Expected spawn count = sum of G (integer rates → exact).
	if res.Spawned != int(d.G.Sum()) {
		t.Fatalf("spawned %d, want %v", res.Spawned, d.G.Sum())
	}
}

func TestMesoEntriesCountThroughFlow(t *testing.T) {
	net := lineNet()
	s := New(net, Config{Intervals: 2, IntervalSec: 600, Seed: 2})
	d := constDemand(1, 2, 5, []ODNodes{{Origin: 0, Dest: 2}})
	res, err := s.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	// All 10 vehicles enter link 0; nearly all reach link 1 in-horizon.
	ent0 := res.Entries.At(0, 0) + res.Entries.At(0, 1)
	ent1 := res.Entries.At(1, 0) + res.Entries.At(1, 1)
	if ent0 != 10 {
		t.Fatalf("link 0 entries = %v, want 10", ent0)
	}
	// Vehicles spawning in the final seconds may not reach link 1 in-horizon.
	if ent1 < 7 || ent1 > 10 {
		t.Fatalf("link 1 entries = %v, want ~10", ent1)
	}
}

func TestMesoOccupancySemantics(t *testing.T) {
	// One vehicle crossing a 500 m link at 12.5 m/s occupies it for 40 s of a
	// 600 s interval: mean occupancy ≈ 40/600 ≈ 0.067 vehicle.
	net := lineNet()
	s := New(net, Config{Intervals: 1, IntervalSec: 600, Seed: 3})
	res, err := s.Run(constDemand(1, 1, 1, []ODNodes{{Origin: 0, Dest: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	occ := res.Volume.At(0, 0)
	if occ < 0.03 || occ > 0.15 {
		t.Fatalf("single-vehicle occupancy = %v, want ≈0.067", occ)
	}
	// Occupancy must rise with demand and is bounded by link storage.
	heavy, err := New(net, Config{Intervals: 1, IntervalSec: 600, Seed: 3}).
		Run(constDemand(1, 1, 800, []ODNodes{{Origin: 0, Dest: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Volume.At(0, 0) <= occ {
		t.Fatal("occupancy not increasing with demand")
	}
	maxVeh := 500.0 * 2 * 0.14 // length × lanes × jam density
	if heavy.Volume.At(0, 0) > maxVeh+1 {
		t.Fatalf("occupancy %v exceeds storage %v", heavy.Volume.At(0, 0), maxVeh)
	}
}

func TestVolumeSpeedMonotoneAcrossDemand(t *testing.T) {
	// The motivation for occupancy-as-volume: sweeping demand from light to
	// jammed, occupancy must increase monotonically while speed decreases —
	// the invertible branch structure the OVS chain relies on.
	net := lineNet()
	prevOcc, prevSpeed := -1.0, 1e9
	for _, rate := range []float64{5, 50, 200, 800} {
		s := New(net, Config{Intervals: 2, IntervalSec: 600, Seed: 4})
		res, err := s.Run(constDemand(1, 2, rate, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		occ := res.Volume.Row(0).Mean()
		speed := res.Speed.Row(0).Mean()
		if occ < prevOcc {
			t.Fatalf("occupancy not monotone at rate %v: %v < %v", rate, occ, prevOcc)
		}
		if speed > prevSpeed+1e-9 {
			t.Fatalf("speed not monotone at rate %v: %v > %v", rate, speed, prevSpeed)
		}
		prevOcc, prevSpeed = occ, speed
	}
}

func TestMesoSpeedBounds(t *testing.T) {
	net := gridNet()
	regions := roadnet.PerNodeRegions(net, nil)
	rng := rand.New(rand.NewSource(3))
	pairs := roadnet.SelectODPairs(regions, 20, rng)
	ods := make([]ODNodes, len(pairs))
	for i, p := range pairs {
		ods[i] = ODNodes{Origin: regions[p.Origin].Anchor, Dest: regions[p.Dest].Anchor}
	}
	cfg := Config{Intervals: 6, IntervalSec: 300, Seed: 4}
	s := New(net, cfg)
	res, err := s.Run(constDemand(len(ods), 6, 8, ods))
	if err != nil {
		t.Fatal(err)
	}
	full := cfg.withDefaults()
	for j := 0; j < net.NumLinks(); j++ {
		limit := net.Links[j].SpeedLimit
		for tt := 0; tt < 6; tt++ {
			v := res.Speed.At(j, tt)
			if v > limit+1e-9 {
				t.Fatalf("speed %v exceeds limit %v on link %d", v, limit, j)
			}
			if v < full.MinSpeed-1e-9 {
				t.Fatalf("speed %v below floor on link %d", v, j)
			}
		}
	}
}

func TestMesoDeterminism(t *testing.T) {
	net := gridNet()
	ods := []ODNodes{{Origin: 0, Dest: 8}, {Origin: 2, Dest: 6}, {Origin: 4, Dest: 0}}
	run := func() *Result {
		s := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 42})
		res, err := s.Run(constDemand(3, 4, 6.5, ods))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !tensor.AllClose(a.Volume, b.Volume, 0) || !tensor.AllClose(a.Speed, b.Speed, 0) {
		t.Fatal("simulation not deterministic for fixed seed")
	}
	if a.Spawned != b.Spawned || a.Completed != b.Completed {
		t.Fatal("counters not deterministic")
	}
	// Different seed must change departure times (and almost surely outputs).
	s2 := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 43})
	c, err := s2.Run(constDemand(3, 4, 6.5, ods))
	if err != nil {
		t.Fatal(err)
	}
	if tensor.AllClose(a.Volume, c.Volume, 0) {
		t.Fatal("different seeds produced identical volumes (suspicious)")
	}
}

func TestMesoCongestionSlowsTraffic(t *testing.T) {
	// Same corridor, light vs heavy demand: heavy demand must reduce the
	// observed speed on the first link — the core non-linearity the paper's
	// volume-speed module learns.
	net := lineNet()
	run := func(rate float64) *Result {
		s := New(net, Config{Intervals: 4, IntervalSec: 600, Seed: 5})
		res, err := s.Run(constDemand(1, 4, rate, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Heavy: 1500 trips per 600 s interval = 2.5 veh/s arrival against a
	// 1 veh/s discharge capacity — the queue must spill into low speeds.
	light := run(2)
	heavy := run(1500)
	lightSpeed := light.Speed.Row(0).Mean()
	heavySpeed := heavy.Speed.Row(0).Mean()
	if heavySpeed >= lightSpeed {
		t.Fatalf("congestion did not slow traffic: light=%v heavy=%v", lightSpeed, heavySpeed)
	}
	if heavySpeed > 0.7*lightSpeed {
		t.Fatalf("heavy congestion barely slowed traffic: light=%v heavy=%v", lightSpeed, heavySpeed)
	}
}

func TestMesoSpillbackDelaysUpstream(t *testing.T) {
	// Cross traffic on a shared middle link must delay the other flow
	// (the "competing traffic delays each other" phenomenon).
	net := gridNet()
	// Flow A: 0->8 via shortest; Flow B: 2->6. Both cross the center.
	odA := []ODNodes{{Origin: 0, Dest: 8}}
	both := []ODNodes{{Origin: 0, Dest: 8}, {Origin: 2, Dest: 6}}
	runMean := func(ods []ODNodes, rates []float64) float64 {
		g := tensor.New(len(ods), 6)
		for i, r := range rates {
			for tt := 0; tt < 6; tt++ {
				g.Set(r, i, tt)
			}
		}
		s := New(net, Config{Intervals: 6, IntervalSec: 600, Seed: 6})
		res, err := s.Run(Demand{ODs: ods, G: g})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanTravelSec()
	}
	alone := runMean(odA, []float64{30})
	crowded := runMean(both, []float64{30, 60})
	if crowded <= alone {
		t.Fatalf("cross traffic did not delay flow A: alone=%v crowded=%v", alone, crowded)
	}
}

func TestRoadWorkSlowsLink(t *testing.T) {
	net := lineNet()
	base := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 7})
	work := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 7, RoadWork: map[int]float64{0: 0.3}})
	d := constDemand(1, 3, 5, []ODNodes{{Origin: 0, Dest: 2}})
	rb, err := base.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := work.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Speed.Row(0).Mean() >= rb.Speed.Row(0).Mean()*0.5 {
		t.Fatalf("road work (0.3x) had too little effect: base=%v work=%v",
			rb.Speed.Row(0).Mean(), rw.Speed.Row(0).Mean())
	}
	// Unaffected link keeps its free speed character when empty-ish.
	if rw.Speed.Row(1).Mean() < rb.Speed.Row(1).Mean()*0.5 {
		t.Fatal("road work leaked onto unaffected link")
	}
}

func TestDynamicRoutingAvoidsCongestion(t *testing.T) {
	// Two equal-length routes 0->8 in the grid. Static routing sends all
	// OD traffic down one shortest path; dynamic routing spreads when the
	// first choice congests, raising volume on more links.
	net := gridNet()
	d := constDemand(1, 6, 80, []ODNodes{{Origin: 0, Dest: 8}})
	static := New(net, Config{Intervals: 6, IntervalSec: 600, Seed: 8})
	dynamic := New(net, Config{Intervals: 6, IntervalSec: 600, Seed: 8, Routing: DynamicRouting})
	rs, err := static.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dynamic.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	usedLinks := func(res *Result) int {
		n := 0
		for j := 0; j < net.NumLinks(); j++ {
			if res.Volume.Row(j).Sum() > 0 {
				n++
			}
		}
		return n
	}
	if usedLinks(rd) <= usedLinks(rs) {
		t.Fatalf("dynamic routing used %d links, static %d; expected more spreading",
			usedLinks(rd), usedLinks(rs))
	}
}

func TestMicroBasicRun(t *testing.T) {
	net := lineNet()
	s := New(net, Config{Intervals: 3, IntervalSec: 300, Seed: 9, Engine: Micro})
	res, err := s.Run(constDemand(1, 3, 3, []ODNodes{{Origin: 0, Dest: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 9 {
		t.Fatalf("spawned = %d, want 9", res.Spawned)
	}
	if res.Completed < 8 {
		t.Fatalf("completed = %d of 9 on an empty corridor", res.Completed)
	}
	// Free-flow corridor: observed speeds should be near the limit.
	if res.Speed.Row(0).Mean() < 0.5*net.Links[0].SpeedLimit {
		t.Fatalf("micro free-flow speed too low: %v", res.Speed.Row(0).Mean())
	}
}

func TestMicroCongestionSlowsTraffic(t *testing.T) {
	net := lineNet()
	run := func(rate float64) float64 {
		s := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 10, Engine: Micro})
		res, err := s.Run(constDemand(1, 3, rate, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Speed.Row(0).Mean()
	}
	light, heavy := run(2), run(120)
	if heavy >= light {
		t.Fatalf("micro congestion did not slow traffic: light=%v heavy=%v", light, heavy)
	}
}

func TestMicroDeterminism(t *testing.T) {
	net := lineNet()
	run := func() *Result {
		s := New(net, Config{Intervals: 2, IntervalSec: 300, Seed: 11, Engine: Micro})
		res, err := s.Run(constDemand(1, 2, 4, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !tensor.AllClose(a.Speed, b.Speed, 0) || !tensor.AllClose(a.Volume, b.Volume, 0) {
		t.Fatal("micro engine not deterministic")
	}
}

func TestEnginesQualitativelyAgree(t *testing.T) {
	// Meso and micro should agree on the qualitative congestion ordering of
	// scenarios even though absolute speeds differ.
	net := lineNet()
	meanSpeed := func(engine Engine, rate float64) float64 {
		s := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 12, Engine: engine})
		res, err := s.Run(constDemand(1, 3, rate, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Speed.Row(0).Mean()
	}
	for _, engine := range []Engine{Meso, Micro} {
		if meanSpeed(engine, 150) >= meanSpeed(engine, 3) {
			t.Fatalf("engine %d: heavy not slower than light", engine)
		}
	}
}

func TestFractionalDemandExpectation(t *testing.T) {
	// G = 0.5 per interval: across many seeds the spawn count should
	// approximate half the cells.
	net := lineNet()
	total := 0
	const runs = 60
	for seed := 0; seed < runs; seed++ {
		s := New(net, Config{Intervals: 4, IntervalSec: 60, Seed: int64(seed)})
		res, err := s.Run(constDemand(1, 4, 0.5, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Spawned
	}
	mean := float64(total) / runs // expectation 2.0
	if mean < 1.5 || mean > 2.5 {
		t.Fatalf("stochastic rounding mean = %v, want ≈2.0", mean)
	}
}

func TestQuickVolumeNonNegativeAndBounded(t *testing.T) {
	net := lineNet()
	f := func(seed int64, rate uint8) bool {
		r := float64(rate%20) + 1
		s := New(net, Config{Intervals: 2, IntervalSec: 120, Seed: seed})
		res, err := s.Run(constDemand(1, 2, r, []ODNodes{{Origin: 0, Dest: 2}}))
		if err != nil {
			return false
		}
		// Occupancy is non-negative and bounded by link storage; entries are
		// bounded by the spawned count.
		for _, v := range res.Volume.Data {
			if v < 0 || v > 500*2*0.14+1 {
				return false
			}
		}
		for _, v := range res.Entries.Data {
			if v < 0 || v > float64(res.Spawned) {
				return false
			}
		}
		return res.Completed <= res.Spawned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownEngine(t *testing.T) {
	net := lineNet()
	s := New(net, Config{Intervals: 1, IntervalSec: 60})
	s.Cfg.Engine = Engine(99)
	if _, err := s.Run(constDemand(1, 1, 1, []ODNodes{{Origin: 0, Dest: 2}})); err == nil {
		t.Fatal("unknown engine did not error")
	}
}

func TestMeanTravelSec(t *testing.T) {
	r := &Result{}
	if r.MeanTravelSec() != 0 {
		t.Fatal("MeanTravelSec on empty result should be 0")
	}
	r.Completed = 4
	r.TotalTravelSec = 100
	if r.MeanTravelSec() != 25 {
		t.Fatalf("MeanTravelSec = %v, want 25", r.MeanTravelSec())
	}
}
