package sim

import (
	"math"
	"math/rand"

	"ovs/internal/roadnet"
)

// routeChooser centralizes per-vehicle route selection for all routing
// modes, so the meso and micro engines share one implementation.
type routeChooser struct {
	net    *roadnet.Network
	cfg    Config
	ods    []ODNodes
	static []roadnet.Route   // best free-flow route per OD
	sets   [][]roadnet.Route // k candidates per OD (stochastic mode)
}

// newRouteChooser precomputes the structures the configured mode needs.
func newRouteChooser(net *roadnet.Network, cfg Config, ods []ODNodes) (*routeChooser, error) {
	rc := &routeChooser{net: net, cfg: cfg, ods: ods}
	rc.static = make([]roadnet.Route, len(ods))
	for i, od := range ods {
		r, _, err := net.ShortestPath(od.Origin, od.Dest, nil, nil)
		if err != nil {
			return nil, err
		}
		rc.static[i] = r
	}
	if cfg.Routing == StochasticRouting {
		rc.sets = make([][]roadnet.Route, len(ods))
		for i, od := range ods {
			routes, err := net.KShortestPaths(od.Origin, od.Dest, cfg.RouteChoiceK, nil)
			if err != nil {
				return nil, err
			}
			rc.sets[i] = routes
		}
	}
	return rc, nil
}

// choose picks a route for one vehicle of OD i. curSpeed gives the link
// speeds at spawn time (used by dynamic and stochastic modes); rng drives
// the stochastic draw.
func (rc *routeChooser) choose(i int, curSpeed []float64, rng *rand.Rand) roadnet.Route {
	switch rc.cfg.Routing {
	case DynamicRouting:
		route, _, err := rc.net.ShortestPath(rc.ods[i].Origin, rc.ods[i].Dest,
			func(id int) float64 { return rc.net.Links[id].Length / curSpeed[id] }, nil)
		if err != nil {
			return rc.static[i]
		}
		return route
	case StochasticRouting:
		return rc.logitChoice(rc.sets[i], curSpeed, rng)
	default:
		return rc.static[i]
	}
}

// logitChoice samples a route with probability ∝ exp(−θ·t/t_best) under the
// current travel times (a C-logit-style stochastic route choice).
func (rc *routeChooser) logitChoice(routes []roadnet.Route, curSpeed []float64, rng *rand.Rand) roadnet.Route {
	if len(routes) == 1 {
		return routes[0]
	}
	times := make([]float64, len(routes))
	best := math.Inf(1)
	for k, r := range routes {
		t := r.TravelTime(func(id int) float64 { return rc.net.Links[id].Length / curSpeed[id] })
		times[k] = t
		if t < best {
			best = t
		}
	}
	if best <= 0 {
		return routes[0]
	}
	weights := make([]float64, len(routes))
	total := 0.0
	for k, t := range times {
		w := math.Exp(-rc.cfg.LogitTheta * (t/best - 1))
		weights[k] = w
		total += w
	}
	u := rng.Float64() * total
	for k, w := range weights {
		u -= w
		if u <= 0 {
			return routes[k]
		}
	}
	return routes[len(routes)-1]
}
