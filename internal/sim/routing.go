package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ovs/internal/roadnet"
)

// routeChooser centralizes per-vehicle route selection for all routing
// modes, so the meso and micro engines share one implementation.
//
// DynamicRouting evaluates routes against the link speeds observed at the
// start of the current interval (the paper's 10-minute observation
// granularity), which makes the chosen route a pure function of
// (OD, interval). The chooser exploits that: the first vehicle of an OD in
// an interval runs Dijkstra, every later vehicle reuses the cached route.
// The engines call beginInterval at each interval boundary to snapshot the
// speeds and invalidate the cache.
type routeChooser struct {
	net    *roadnet.Network
	cfg    Config
	ods    []ODNodes
	static []roadnet.Route   // best free-flow route per OD
	sets   [][]roadnet.Route // k candidates per OD (stochastic mode)

	// Dynamic-mode state.
	snapSpeed []float64 // interval-start speed snapshot
	weight    func(linkID int) float64
	cached    []roadnet.Route // per-OD route for the current interval
	calls     int             // shortest-path computations issued
	err       error           // sticky first routing error
}

// newRouteChooser precomputes the structures the configured mode needs.
func newRouteChooser(net *roadnet.Network, cfg Config, ods []ODNodes) (*routeChooser, error) {
	rc := &routeChooser{net: net, cfg: cfg, ods: ods}
	rc.static = make([]roadnet.Route, len(ods))
	for i, od := range ods {
		rc.calls++
		r, _, err := net.ShortestPath(od.Origin, od.Dest, nil, nil)
		if err != nil {
			return nil, err
		}
		rc.static[i] = r
	}
	switch cfg.Routing {
	case StochasticRouting:
		rc.sets = make([][]roadnet.Route, len(ods))
		for i, od := range ods {
			rc.calls++
			routes, err := net.KShortestPaths(od.Origin, od.Dest, cfg.RouteChoiceK, nil)
			if err != nil {
				return nil, err
			}
			rc.sets[i] = routes
		}
	case DynamicRouting:
		rc.snapSpeed = make([]float64, net.NumLinks())
		rc.cached = make([]roadnet.Route, len(ods))
		rc.weight = func(id int) float64 {
			return rc.net.Links[id].Length / rc.snapSpeed[id]
		}
	}
	return rc, nil
}

// beginInterval snapshots the current link speeds and invalidates the
// dynamic route cache. Engines call it at every interval boundary.
func (rc *routeChooser) beginInterval(curSpeed []float64) {
	if rc.cfg.Routing != DynamicRouting {
		return
	}
	copy(rc.snapSpeed, curSpeed)
	for i := range rc.cached {
		rc.cached[i] = nil
	}
}

// choose picks a route for one vehicle of OD i. curSpeed gives the link
// speeds at spawn time (used by the stochastic mode; the dynamic mode reads
// the interval-start snapshot instead); rng drives the stochastic draw.
//
// A Dijkstra failure in dynamic mode is returned to the caller — and cached,
// so every vehicle of the run reports the same first error — rather than
// silently degrading to the static route.
func (rc *routeChooser) choose(i int, curSpeed []float64, rng *rand.Rand) (roadnet.Route, error) {
	switch rc.cfg.Routing {
	case DynamicRouting:
		if rc.err != nil {
			return nil, rc.err
		}
		if r := rc.cached[i]; r != nil {
			return r, nil
		}
		rc.calls++
		route, _, err := rc.net.ShortestPath(rc.ods[i].Origin, rc.ods[i].Dest, rc.weight, nil)
		if err != nil {
			rc.err = fmt.Errorf("sim: dynamic route for OD %d (%d->%d): %w",
				i, rc.ods[i].Origin, rc.ods[i].Dest, err)
			return nil, rc.err
		}
		if !rc.cfg.disableRouteCache {
			rc.cached[i] = route
		}
		return route, nil
	case StochasticRouting:
		return rc.logitChoice(rc.sets[i], curSpeed, rng), nil
	default:
		return rc.static[i], nil
	}
}

// logitChoice samples a route with probability ∝ exp(−θ·t/t_best) under the
// current travel times (a C-logit-style stochastic route choice).
func (rc *routeChooser) logitChoice(routes []roadnet.Route, curSpeed []float64, rng *rand.Rand) roadnet.Route {
	if len(routes) == 1 {
		return routes[0]
	}
	times := make([]float64, len(routes))
	best := math.Inf(1)
	for k, r := range routes {
		t := r.TravelTime(func(id int) float64 { return rc.net.Links[id].Length / curSpeed[id] })
		times[k] = t
		if t < best {
			best = t
		}
	}
	if best <= 0 {
		return routes[0]
	}
	weights := make([]float64, len(routes))
	total := 0.0
	for k, t := range times {
		w := math.Exp(-rc.cfg.LogitTheta * (t/best - 1))
		weights[k] = w
		total += w
	}
	u := rng.Float64() * total
	for k, w := range weights {
		u -= w
		if u <= 0 {
			return routes[k]
		}
	}
	return routes[len(routes)-1]
}
