package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ovs/internal/parallel"
	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// linkGrain is the number of links per parallel chunk in the per-link update
// phases. Small networks fall into a single chunk and run serially inline;
// step 3 (transfers/spillback) and step 4 (spawns) couple links and always
// stay serial.
const linkGrain = 128

// mesoVehicle is a vehicle in the mesoscopic engine. Vehicles on a link all
// move at the link's current fundamental-diagram speed.
type mesoVehicle struct {
	route     roadnet.Route
	idx       int     // position in route
	pos       float64 // meters from link start
	spawnStep int
	inNetwork bool
}

// runMeso executes the fundamental-diagram queue engine. Cancellation is
// observed only at interval boundaries, before the boundary's route-cache
// refresh, so the steps completed before a cancelled return form a whole
// number of intervals.
func (s *Simulator) runMeso(ctx context.Context, d Demand) (*Result, error) {
	cfg := s.Cfg
	net := s.Net
	rng := rand.New(rand.NewSource(cfg.Seed))

	chooser, err := newRouteChooser(net, cfg, d.ODs)
	if err != nil {
		return nil, err
	}

	spawns := buildSpawns(d, cfg, rng)
	vehicles := make([]mesoVehicle, 0, len(spawns))

	m := net.NumLinks()
	stepsPerInterval := int(cfg.IntervalSec / cfg.StepSec)
	totalSteps := cfg.Intervals * stepsPerInterval

	// Per-link state.
	occupants := make([][]int, m) // FIFO: [0] is closest to link end
	maxVeh := make([]float64, m)
	freeSpeed := make([]float64, m)
	capPerStep := make([]float64, m)
	credit := make([]float64, m)
	curSpeed := make([]float64, m)
	for j := range net.Links {
		l := &net.Links[j]
		maxVeh[j] = math.Max(1, l.Length*float64(l.Lanes)*cfg.JamDensity)
		freeSpeed[j] = s.effectiveSpeedLimit(l)
		capPerStep[j] = s.effectiveCapacity(l) * cfg.StepSec
		curSpeed[j] = freeSpeed[j]
	}

	res := &Result{
		Volume:  tensor.New(m, cfg.Intervals),
		Entries: tensor.New(m, cfg.Intervals),
		Speed:   tensor.New(m, cfg.Intervals),
	}
	// Accumulators for occupancy-weighted speed.
	speedSum := tensor.New(m, cfg.Intervals)  // Σ speed·occupancy per step
	weightSum := tensor.New(m, cfg.Intervals) // Σ occupancy per step
	// The worker closures below write these accumulators through raw Data
	// offsets (rows partition by link, so workers never collide); one bump
	// here covers them all — bumping per worker would race on the version.
	res.Volume.NoteMutation()
	res.Speed.NoteMutation()
	speedSum.NoteMutation()
	weightSum.NoteMutation()

	// Entry queues: vehicles waiting at their origin for space on the first
	// link, FIFO per origin link.
	entryQueue := make(map[int][]int)

	nextSpawn := 0
	for step := 0; step < totalSteps; step++ {
		interval := step / stepsPerInterval

		// Interval boundary is the engine's cancellation safe point: every
		// completed step stays whole and the abort lands between intervals.
		if step%stepsPerInterval == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("sim: cancelled at interval %d: %w", interval, context.Cause(ctx))
		}

		// 1+2. Update link speeds from density via the fundamental diagram,
		// then advance vehicles. Both touch only link-local state (curSpeed[j]
		// and the vehicles occupying link j — a vehicle sits on exactly one
		// link), so links are partitioned across workers; per-link work is
		// unchanged and results are identical at any worker count.
		parallel.ForWorkers(cfg.Workers, m, linkGrain, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				k := float64(len(occupants[j])) / maxVeh[j]
				v := freeSpeed[j] * cfg.Diagram.SpeedFraction(k)
				if v < cfg.MinSpeed {
					v = cfg.MinSpeed
				}
				curSpeed[j] = v
				adv := v * cfg.StepSec
				length := net.Links[j].Length
				for _, vi := range occupants[j] {
					veh := &vehicles[vi]
					veh.pos += adv
					if veh.pos > length {
						veh.pos = length
					}
				}
			}
		})

		// Interval boundary: snapshot the just-updated speeds for dynamic
		// route choice and invalidate the per-OD route cache.
		if step%stepsPerInterval == 0 {
			chooser.beginInterval(curSpeed)
		}

		// 3. Transfers at link ends, capacity- and space-limited; a red
		// signal blocks the approach entirely.
		for j := 0; j < m; j++ {
			if cfg.Signals != nil && !cfg.Signals.Green(net, j, float64(step)*cfg.StepSec) {
				continue
			}
			credit[j] += capPerStep[j]
			if credit[j] > capPerStep[j]*5 {
				credit[j] = capPerStep[j] * 5 // bounded burst
			}
			length := net.Links[j].Length
			for len(occupants[j]) > 0 {
				vi := occupants[j][0]
				veh := &vehicles[vi]
				if veh.pos < length || credit[j] < 1 {
					break
				}
				if veh.idx == len(veh.route)-1 {
					// Trip complete.
					occupants[j] = occupants[j][1:]
					credit[j]--
					veh.inNetwork = false
					res.Completed++
					res.TotalTravelSec += float64(step-veh.spawnStep) * cfg.StepSec
					continue
				}
				next := veh.route[veh.idx+1]
				if float64(len(occupants[next])) >= maxVeh[next] {
					break // spillback: receiving link full
				}
				occupants[j] = occupants[j][1:]
				credit[j]--
				veh.idx++
				veh.pos = 0
				occupants[next] = append(occupants[next], vi)
				res.Entries.Add2(1, next, interval)
			}
		}

		// 4. Spawn departures due at this step (and retry queued entries).
		// Iterate origins in sorted order: map iteration order must not leak
		// into simulation results (determinism).
		origins := make([]int, 0, len(entryQueue))
		for origin := range entryQueue {
			origins = append(origins, origin)
		}
		sort.Ints(origins)
		for _, origin := range origins {
			queue := entryQueue[origin]
			for len(queue) > 0 {
				vi := queue[0]
				first := vehicles[vi].route[0]
				if float64(len(occupants[first])) >= maxVeh[first] {
					break
				}
				queue = queue[1:]
				s.enterNetwork(&vehicles[vi], vi, step, interval, occupants, res)
			}
			if len(queue) == 0 {
				delete(entryQueue, origin)
			} else {
				entryQueue[origin] = queue
			}
		}
		for nextSpawn < len(spawns) && spawns[nextSpawn].step <= step {
			ev := spawns[nextSpawn]
			nextSpawn++
			route, err := chooser.choose(ev.od, curSpeed, rng)
			if err != nil {
				return nil, err
			}
			vehicles = append(vehicles, mesoVehicle{route: route, spawnStep: step})
			vi := len(vehicles) - 1
			first := route[0]
			if float64(len(occupants[first])) >= maxVeh[first] {
				entryQueue[net.Links[first].From] = append(entryQueue[net.Links[first].From], vi)
				continue
			}
			s.enterNetwork(&vehicles[vi], vi, step, interval, occupants, res)
		}

		// 5. Record occupancy and speed observations (row j of each
		// accumulator belongs to link j alone, so links partition cleanly).
		// Indexing is fused: one flat offset per link instead of three
		// bounds-checked multi-index lookups.
		parallel.ForWorkers(cfg.Workers, m, linkGrain, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				occ := float64(len(occupants[j]))
				cell := j*cfg.Intervals + interval
				res.Volume.Data[cell] += occ
				if occ > 0 {
					speedSum.Data[cell] += curSpeed[j] * occ
					weightSum.Data[cell] += occ
				}
			}
		})
	}

	// Occupancy: mean vehicles present per step within each interval
	// (scaled in place — the accumulator tensor is reused as the result).
	tensor.ScaleInPlace(res.Volume, 1/float64(stepsPerInterval))

	// Finalize speeds: occupancy-weighted mean, free-flow when unobserved.
	// One fused per-link pass, partitioned like the per-step phases.
	parallel.ForWorkers(cfg.Workers, m, linkGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := res.Speed.Data[j*cfg.Intervals : (j+1)*cfg.Intervals]
			wRow := weightSum.Data[j*cfg.Intervals : (j+1)*cfg.Intervals]
			sRow := speedSum.Data[j*cfg.Intervals : (j+1)*cfg.Intervals]
			for t := range row {
				if wRow[t] > 0 {
					row[t] = sRow[t] / wRow[t]
				} else {
					row[t] = freeSpeed[j]
				}
			}
		}
	})
	res.Spawned = len(vehicles)
	res.DijkstraCalls = chooser.calls
	return res, nil
}

// enterNetwork places a vehicle on the first link of its route.
func (s *Simulator) enterNetwork(veh *mesoVehicle, vi, step, interval int, occupants [][]int, res *Result) {
	veh.inNetwork = true
	veh.idx = 0
	veh.pos = 0
	first := veh.route[0]
	occupants[first] = append(occupants[first], vi)
	res.Entries.Add2(1, first, interval)
}
