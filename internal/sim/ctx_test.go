package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ovs/internal/tensor"
)

// TestRunCtxUncancelledMatchesRun: threading a live context must not perturb
// the simulation — bitwise-identical tensors to the ctx-free path.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	for _, engine := range []Engine{Meso, Micro} {
		net := lineNet()
		d := constDemand(1, 4, 3, []ODNodes{{Origin: 0, Dest: 2}})
		ref, err := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 1, Engine: engine}).Run(d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 1, Engine: engine}).
			RunCtx(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(ref.Volume, got.Volume, 0) || !tensor.AllClose(ref.Speed, got.Speed, 0) {
			t.Fatalf("engine %v: RunCtx(Background) differs from Run", engine)
		}
	}
}

// TestRunCtxCancelledStopsAtInterval: a pre-cancelled context aborts both
// engines at the first interval boundary with the cancellation cause wrapped
// in the error.
func TestRunCtxCancelledStopsAtInterval(t *testing.T) {
	for _, engine := range []Engine{Meso, Micro} {
		sentinel := errors.New("deadline budget spent")
		net := lineNet()
		d := constDemand(1, 4, 3, []ODNodes{{Origin: 0, Dest: 2}})
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(sentinel)
		_, err := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 1, Engine: engine}).RunCtx(ctx, d)
		if err == nil {
			t.Fatalf("engine %v: cancelled RunCtx returned nil error", engine)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("engine %v: err = %v, want wrapped cancel cause", engine, err)
		}
		if !strings.Contains(err.Error(), "cancelled at interval") {
			t.Fatalf("engine %v: err %q does not name the interval boundary", engine, err)
		}
	}
}

// TestRunCtxValidatesBeforeCtx: invalid demand reports the validation error
// even under a cancelled context — validation is cheap and its error is the
// more actionable one.
func TestRunCtxValidatesBeforeCtx(t *testing.T) {
	net := lineNet()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bad := Demand{ODs: []ODNodes{{0, 0}}, G: tensor.New(1, 4)}
	_, err := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 1}).RunCtx(ctx, bad)
	if err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a validation error", err)
	}
}
