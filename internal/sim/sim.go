// Package sim implements the traffic simulator that stands in for CityFlow
// in the paper's pipeline (Fig. 7/8): it consumes a temporal
// origin-destination (TOD) tensor, moves individual vehicles along their
// routes, and emits per-link per-interval volume and speed tensors.
//
// Two engines are provided behind one interface:
//
//   - Meso: a mesoscopic engine where each link's current speed follows a
//     Greenshields fundamental diagram of its density, with capacity-limited
//     exit queues and spillback blocking. Fast enough for the paper's
//     training-data generation loops.
//   - Micro: a microscopic engine with IDM car-following per vehicle,
//     closest in spirit to CityFlow's single-vehicle simulation.
//
// Both engines reproduce the property the paper's experiments rest on: the
// TOD→volume→speed map is non-linear and congestion-coupled, so competing
// flows delay each other.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"ovs/internal/fd"
	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// Engine selects the simulation model.
type Engine int

const (
	// Meso uses the fundamental-diagram queue engine.
	Meso Engine = iota
	// Micro uses IDM car-following.
	Micro
)

// RoutingMode selects how vehicles choose routes.
type RoutingMode int

const (
	// StaticRouting precomputes the free-flow shortest route per OD pair —
	// the paper's simplification that one OD maps to one route.
	StaticRouting RoutingMode = iota
	// DynamicRouting recomputes the fastest route using the link speeds
	// observed at the start of the current interval ("people choose the
	// shortest or fastest route based on real-time traffic conditions",
	// observed at the paper's 10-minute granularity). Routes are therefore a
	// pure function of (OD, interval): the engines compute Dijkstra once per
	// OD per interval and share the route among that interval's spawns.
	DynamicRouting
	// StochasticRouting samples each vehicle's route from a logit model over
	// the OD's k shortest routes, weighted by current travel times — the
	// route-choice behavior the paper's conclusion names as future work.
	StochasticRouting
)

// Config controls a simulation run.
type Config struct {
	// Intervals is T, the number of observation intervals.
	Intervals int
	// IntervalSec is the interval length (the paper uses 10 minutes).
	IntervalSec float64
	// StepSec is the integration step. Defaults to 1s (Meso) / 0.5s (Micro).
	StepSec float64
	// Engine selects Meso or Micro.
	Engine Engine
	// Routing selects static or dynamic route choice.
	Routing RoutingMode
	// Seed drives all stochastic choices (departure times, rounding).
	Seed int64
	// RoadWork maps link IDs to a speed multiplier in (0, 1], modelling the
	// RQ3 scenario where some links have an irregular volume-speed mapping
	// (maintenance, accidents). Capacity is scaled by the same factor.
	RoadWork map[int]float64
	// JamDensity is the per-lane jam density in vehicles/meter. Defaults to
	// 0.14 (≈7 m effective vehicle length).
	JamDensity float64
	// MinSpeed floors the congested speed so the simulation cannot stall at
	// exactly zero. Defaults to 0.8 m/s.
	MinSpeed float64
	// Diagram selects the speed-density fundamental diagram of the meso
	// engine (nil = Greenshields).
	Diagram fd.Model
	// RouteChoiceK is the number of candidate routes per OD for
	// StochasticRouting (default 3).
	RouteChoiceK int
	// LogitTheta is the logit sensitivity for StochasticRouting: utility is
	// −θ · travelTime/shortestTime (default 4; higher = greedier).
	LogitTheta float64
	// Signals, when non-nil, adds fixed-time traffic lights: a link whose
	// downstream intersection shows red for its approach cannot discharge.
	Signals *SignalPlan
	// Workers bounds the goroutines used for per-link state updates: 0 uses
	// the process-wide default (see internal/parallel), 1 forces serial
	// execution. Results are identical at every setting.
	Workers int

	// disableRouteCache turns off the per-(OD, interval) dynamic route cache
	// so every vehicle recomputes Dijkstra from the same interval-start
	// speed snapshot. Results are identical either way — the cache only
	// memoizes — which the in-package equivalence test verifies; it is
	// unexported because it exists for that test and for benchmarking.
	disableRouteCache bool
}

func (c Config) withDefaults() Config {
	if c.Intervals <= 0 {
		c.Intervals = 12
	}
	if c.IntervalSec <= 0 {
		c.IntervalSec = 600
	}
	if c.StepSec <= 0 {
		if c.Engine == Micro {
			c.StepSec = 0.5
		} else {
			c.StepSec = 1.0
		}
	}
	if c.JamDensity <= 0 {
		c.JamDensity = 0.14
	}
	if c.MinSpeed <= 0 {
		c.MinSpeed = 0.8
	}
	if c.Diagram == nil {
		c.Diagram = fd.Greenshields{}
	}
	if c.RouteChoiceK <= 0 {
		c.RouteChoiceK = 3
	}
	if c.LogitTheta <= 0 {
		c.LogitTheta = 4
	}
	return c
}

// ODNodes is an OD pair resolved to network nodes (region anchors).
type ODNodes struct {
	Origin, Dest int
}

// Demand is the simulator input: one route endpoint pair per OD index and
// the TOD tensor G with shape (N_od × T) holding trip counts per interval.
type Demand struct {
	ODs []ODNodes
	G   *tensor.Tensor
}

// Validate checks that the demand matches the network and config.
func (d Demand) Validate(net *roadnet.Network, t int) error {
	if d.G == nil || d.G.Rank() != 2 {
		return fmt.Errorf("sim: demand G must be rank-2 (N_od × T)")
	}
	if d.G.Dim(0) != len(d.ODs) {
		return fmt.Errorf("sim: demand G has %d rows but %d OD pairs", d.G.Dim(0), len(d.ODs))
	}
	if d.G.Dim(1) != t {
		return fmt.Errorf("sim: demand G has %d columns but config expects %d intervals", d.G.Dim(1), t)
	}
	for i, od := range d.ODs {
		if od.Origin < 0 || od.Origin >= net.NumNodes() || od.Dest < 0 || od.Dest >= net.NumNodes() {
			return fmt.Errorf("sim: OD %d endpoints (%d,%d) out of node range", i, od.Origin, od.Dest)
		}
		if od.Origin == od.Dest {
			return fmt.Errorf("sim: OD %d has origin == dest (%d)", i, od.Origin)
		}
	}
	for _, v := range d.G.Data {
		if v < 0 {
			return fmt.Errorf("sim: demand G contains negative trip counts")
		}
	}
	return nil
}

// Result holds the simulator outputs.
type Result struct {
	// Volume[j,t] is the mean number of vehicles present on link j during
	// interval t (occupancy). Occupancy is the "volume" quantity of the
	// TOD→volume→speed chain: unlike through-flow, it is monotone with the
	// congestion level, so the volume-speed relation stays invertible on
	// both sides of the fundamental diagram's capacity point.
	Volume *tensor.Tensor
	// Entries[j,t] counts vehicles entering link j during interval t
	// (through-flow), the quantity a loop detector or camera gate counts.
	Entries *tensor.Tensor
	// Speed[j,t] is the occupancy-weighted mean speed (m/s) on link j during
	// interval t; free-flow (after road work scaling) when the link is empty.
	Speed *tensor.Tensor
	// Spawned counts vehicles that entered the network.
	Spawned int
	// DijkstraCalls counts single-source shortest-path computations issued by
	// route choice: the static per-OD precompute plus, under DynamicRouting,
	// one call per (OD, interval) actually spawned (or per vehicle when the
	// route cache is disabled).
	DijkstraCalls int
	// Completed counts vehicles that reached their destination in-horizon.
	Completed int
	// TotalTravelSec sums travel time over completed vehicles.
	TotalTravelSec float64
}

// MeanTravelSec returns the mean travel time of completed trips (0 if none).
func (r *Result) MeanTravelSec() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.TotalTravelSec / float64(r.Completed)
}

// Simulator binds a network to a configuration.
type Simulator struct {
	Net *roadnet.Network
	Cfg Config
}

// New constructs a simulator, applying config defaults.
func New(net *roadnet.Network, cfg Config) *Simulator {
	return &Simulator{Net: net, Cfg: cfg.withDefaults()}
}

// Run simulates the demand and returns volume/speed observations. The run is
// deterministic for a fixed (network, config, demand) triple.
func (s *Simulator) Run(d Demand) (*Result, error) {
	return s.RunCtx(context.Background(), d)
}

// RunCtx is Run with cooperative cancellation. The engines observe ctx only
// at interval boundaries — the simulator's safe points — so a run that
// completes without being cancelled is bitwise-identical to Run. A cancelled
// run returns the context's cancellation cause and a nil Result.
func (s *Simulator) RunCtx(ctx context.Context, d Demand) (*Result, error) {
	if err := d.Validate(s.Net, s.Cfg.Intervals); err != nil {
		return nil, err
	}
	switch s.Cfg.Engine {
	case Meso:
		return s.runMeso(ctx, d)
	case Micro:
		return s.runMicro(ctx, d)
	default:
		return nil, fmt.Errorf("sim: unknown engine %d", s.Cfg.Engine)
	}
}

// effectiveSpeedLimit applies any road-work factor to the link's free speed.
func (s *Simulator) effectiveSpeedLimit(l *roadnet.Link) float64 {
	v := l.SpeedLimit
	if f, ok := s.Cfg.RoadWork[l.ID]; ok {
		v *= f
	}
	return v
}

// effectiveCapacity applies any road-work factor to the link's capacity.
func (s *Simulator) effectiveCapacity(l *roadnet.Link) float64 {
	c := l.Capacity
	if f, ok := s.Cfg.RoadWork[l.ID]; ok {
		c *= f
	}
	return c
}

// spawnEvent is one vehicle's planned departure.
type spawnEvent struct {
	step int // departure step index
	od   int // OD pair index
	seq  int // tie-break for deterministic ordering
}

// buildSpawns expands the TOD tensor into departure events. Fractional trip
// counts are rounded stochastically so that expectation matches exactly.
func buildSpawns(d Demand, cfg Config, rng *rand.Rand) []spawnEvent {
	stepsPerInterval := int(cfg.IntervalSec / cfg.StepSec)
	var events []spawnEvent
	seq := 0
	for i := 0; i < d.G.Dim(0); i++ {
		for t := 0; t < d.G.Dim(1); t++ {
			g := d.G.At(i, t)
			n := int(g)
			if rng.Float64() < g-float64(n) {
				n++
			}
			for v := 0; v < n; v++ {
				step := t*stepsPerInterval + rng.Intn(stepsPerInterval)
				events = append(events, spawnEvent{step: step, od: i, seq: seq})
				seq++
			}
		}
	}
	// Deterministic order: by step, then insertion sequence.
	sort.Slice(events, func(a, b int) bool {
		if events[a].step != events[b].step {
			return events[a].step < events[b].step
		}
		return events[a].seq < events[b].seq
	})
	return events
}
