package sim

import (
	"strings"
	"testing"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// dynamicGridDemand builds a multi-OD demand on the 3×3 grid heavy enough
// that many vehicles of each OD spawn per interval — the regime the
// per-(OD, interval) route cache is designed for.
func dynamicGridDemand(net *roadnet.Network, intervals int, rate float64) Demand {
	ods := []ODNodes{
		{Origin: 0, Dest: 8},
		{Origin: 2, Dest: 6},
		{Origin: 6, Dest: 2},
		{Origin: 8, Dest: 0},
	}
	return Demand{ODs: ods, G: tensor.Full(rate, len(ods), intervals)}
}

// TestDynamicRouteCacheEquivalence verifies the cache is a pure memoization:
// with DynamicRouting evaluating routes against the interval-start speed
// snapshot, a cached run and a per-vehicle-recompute run must produce
// bitwise-identical observation tensors, while the cached run issues far
// fewer shortest-path computations.
func TestDynamicRouteCacheEquivalence(t *testing.T) {
	net := gridNet()
	const intervals = 4
	d := dynamicGridDemand(net, intervals, 15)
	base := Config{Intervals: intervals, IntervalSec: 300, Seed: 9, Routing: DynamicRouting}

	for _, engine := range []Engine{Meso, Micro} {
		cfgCached := base
		cfgCached.Engine = engine
		cached, err := New(net, cfgCached).Run(d)
		if err != nil {
			t.Fatal(err)
		}
		cfgUncached := cfgCached
		cfgUncached.disableRouteCache = true
		uncached, err := New(net, cfgUncached).Run(d)
		if err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2]*tensor.Tensor{
			"Volume":  {cached.Volume, uncached.Volume},
			"Entries": {cached.Entries, uncached.Entries},
			"Speed":   {cached.Speed, uncached.Speed},
		} {
			if !tensor.AllClose(pair[0], pair[1], 0) {
				t.Fatalf("engine=%v: cached and uncached runs differ in %s", engine, name)
			}
		}
		if cached.Spawned != uncached.Spawned || cached.Completed != uncached.Completed {
			t.Fatalf("engine=%v: cached/uncached spawn or completion counts differ", engine)
		}
		// The acceptance bar: ≥5× fewer Dijkstra invocations with the cache.
		if cached.DijkstraCalls*5 > uncached.DijkstraCalls {
			t.Fatalf("engine=%v: cache saved too little: %d cached vs %d uncached Dijkstra calls",
				engine, cached.DijkstraCalls, uncached.DijkstraCalls)
		}
		// The cached run is bounded by static precompute + one call per
		// (OD, interval).
		maxCalls := len(d.ODs) * (1 + intervals)
		if cached.DijkstraCalls > maxCalls {
			t.Fatalf("engine=%v: cached run made %d Dijkstra calls, want ≤ %d",
				engine, cached.DijkstraCalls, maxCalls)
		}
	}
}

// TestDynamicRoutingDiffersFromStatic guards against the cache degenerating
// into static routing: under congestion the interval-start speeds shift, so
// at least some dynamic route choices must diverge from free-flow routes.
func TestDynamicRoutingDiffersFromStatic(t *testing.T) {
	net := gridNet()
	const intervals = 4
	d := dynamicGridDemand(net, intervals, 40) // heavy: congestion builds
	static, err := New(net, Config{Intervals: intervals, IntervalSec: 300, Seed: 9}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := New(net, Config{Intervals: intervals, IntervalSec: 300, Seed: 9,
		Routing: DynamicRouting}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.AllClose(static.Entries, dynamic.Entries, 0) {
		t.Fatal("dynamic routing produced exactly the static entry pattern under congestion")
	}
}

// TestDynamicRouteErrorSurfaced pins the bugfix: a Dijkstra failure in
// dynamic mode must reach the caller (and stick, so every vehicle reports
// the same first error) instead of being silently masked by the static
// route. The failure is manufactured by pointing an OD at an unreachable
// node, which only the dynamic query sees.
func TestDynamicRouteErrorSurfaced(t *testing.T) {
	net := lineNet() // one-way corridor 0→1→2: node 0 is unreachable
	rc := &routeChooser{
		net:       net,
		cfg:       Config{Routing: DynamicRouting}.withDefaults(),
		ods:       []ODNodes{{Origin: 2, Dest: 0}},
		static:    []roadnet.Route{{0, 1}}, // pretend a static fallback exists
		snapSpeed: []float64{12.5, 12.5},
		cached:    make([]roadnet.Route, 1),
	}
	rc.weight = func(id int) float64 { return net.Links[id].Length / rc.snapSpeed[id] }

	route, err := rc.choose(0, rc.snapSpeed, nil)
	if err == nil {
		t.Fatal("choose returned no error for an unreachable destination")
	}
	if route != nil {
		t.Fatal("choose fell back to a route despite the routing error")
	}
	if !strings.Contains(err.Error(), "OD 0") {
		t.Fatalf("error %q does not identify the OD pair", err)
	}
	// The error is cached: later vehicles see the same failure, and no
	// further shortest-path work is attempted.
	callsAfterFirst := rc.calls
	again, err2 := rc.choose(0, rc.snapSpeed, nil)
	if err2 == nil || again != nil {
		t.Fatal("second choose did not resurface the cached error")
	}
	if err2.Error() != err.Error() {
		t.Fatalf("second error %q differs from first %q", err2, err)
	}
	if rc.calls != callsAfterFirst {
		t.Fatal("second choose re-ran Dijkstra after a cached error")
	}
}

// TestBeginIntervalSnapshotsSpeeds verifies the dynamic chooser routes by
// the interval-start snapshot, not by the live speeds passed to choose.
func TestBeginIntervalSnapshotsSpeeds(t *testing.T) {
	// Two parallel routes 0→2: direct slow link 2 vs fast detour 0,1.
	net := roadnet.New()
	a := net.AddNode(0, 0)
	b := net.AddNode(500, 100)
	c := net.AddNode(1000, 0)
	l0 := net.AddLink(a, b, 600, 1, 25, 0)
	net.AddLink(b, c, 600, 1, 25, 0)
	l2 := net.AddLink(a, c, 1000, 1, 25, 0)

	cfg := Config{Routing: DynamicRouting}.withDefaults()
	rc, err := newRouteChooser(net, cfg, []ODNodes{{Origin: a, Dest: c}})
	if err != nil {
		t.Fatal(err)
	}
	speeds := make([]float64, net.NumLinks())
	for i := range speeds {
		speeds[i] = 25
	}
	speeds[l0] = 1 // detour congested at snapshot time
	rc.beginInterval(speeds)

	// Live speeds now favor the detour again, but the snapshot must win. If
	// beginInterval retained (rather than copied) the caller's slice, this
	// mutation would leak into the weight function and flip the choice.
	speeds[l0] = 25
	speeds[l2] = 1
	route, err := rc.choose(0, speeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 || route[0] != l2 {
		t.Fatalf("route = %v, want the direct link %d per the snapshot", route, l2)
	}
}
