package sim

import (
	"math"

	"ovs/internal/roadnet"
)

// SignalPlan holds fixed-time traffic-light timings per signalized
// intersection. CityFlow simulates signal-controlled intersections; this is
// the equivalent control layer for both engines here. Approaches are binned
// into two phases by geometry: north-south versus east-west, the standard
// two-phase fixed-time plan.
type SignalPlan struct {
	// Timings maps node ID → plan. Unsignalized nodes are absent and always
	// "green".
	Timings map[int]SignalTiming
}

// SignalTiming is one intersection's fixed-time plan.
type SignalTiming struct {
	// CycleSec is the full cycle length.
	CycleSec float64
	// GreenNSSec is how much of the cycle the north-south phase is green;
	// the east-west phase gets the remainder.
	GreenNSSec float64
	// OffsetSec shifts the cycle start (for green waves).
	OffsetSec float64
}

// NewSignalPlan returns an empty plan.
func NewSignalPlan() *SignalPlan {
	return &SignalPlan{Timings: make(map[int]SignalTiming)}
}

// UniformSignals signalizes every intersection with at least minApproaches
// incoming links, using the same cycle and a 50/50 split. Offsets stagger by
// node ID so adjacent intersections are not synchronized.
func UniformSignals(net *roadnet.Network, cycleSec float64, minApproaches int) *SignalPlan {
	if cycleSec <= 0 {
		cycleSec = 60
	}
	if minApproaches <= 0 {
		minApproaches = 3
	}
	plan := NewSignalPlan()
	for v := 0; v < net.NumNodes(); v++ {
		if len(net.In(v)) < minApproaches {
			continue
		}
		plan.Timings[v] = SignalTiming{
			CycleSec:   cycleSec,
			GreenNSSec: cycleSec / 2,
			OffsetSec:  float64(v%4) * cycleSec / 4,
		}
	}
	return plan
}

// Green reports whether link j's approach to its downstream intersection
// shows green at simulation time t (seconds).
func (p *SignalPlan) Green(net *roadnet.Network, linkID int, t float64) bool {
	if p == nil {
		return true
	}
	l := &net.Links[linkID]
	timing, ok := p.Timings[l.To]
	if !ok {
		return true
	}
	if timing.CycleSec <= 0 {
		return true
	}
	phase := math.Mod(t-timing.OffsetSec, timing.CycleSec)
	if phase < 0 {
		phase += timing.CycleSec
	}
	if isNorthSouth(net, l) {
		return phase < timing.GreenNSSec
	}
	return phase >= timing.GreenNSSec
}

// isNorthSouth classifies an approach by its geometric heading.
func isNorthSouth(net *roadnet.Network, l *roadnet.Link) bool {
	from := net.Nodes[l.From]
	to := net.Nodes[l.To]
	return math.Abs(to.Y-from.Y) >= math.Abs(to.X-from.X)
}

// NumSignalized returns the number of signal-controlled intersections.
func (p *SignalPlan) NumSignalized() int {
	if p == nil {
		return 0
	}
	return len(p.Timings)
}
