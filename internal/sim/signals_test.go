package sim

import (
	"testing"

	"ovs/internal/fd"
	"ovs/internal/roadnet"
)

func TestUniformSignalsSelection(t *testing.T) {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 3})
	plan := UniformSignals(net, 60, 3)
	// In a 3×3 grid only the center (4 approaches) and the four edge-middle
	// nodes (3 approaches) qualify at minApproaches=3.
	if plan.NumSignalized() != 5 {
		t.Fatalf("signalized = %d, want 5", plan.NumSignalized())
	}
	if _, ok := plan.Timings[4]; !ok {
		t.Fatal("center intersection not signalized")
	}
	if _, ok := plan.Timings[0]; ok {
		t.Fatal("corner intersection signalized (only 2 approaches)")
	}
}

func TestGreenPhasesAlternate(t *testing.T) {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 3})
	plan := NewSignalPlan()
	plan.Timings[4] = SignalTiming{CycleSec: 60, GreenNSSec: 30}
	// Find one NS approach and one EW approach into node 4.
	var ns, ew = -1, -1
	for _, id := range net.In(4) {
		if isNorthSouth(net, &net.Links[id]) {
			ns = id
		} else {
			ew = id
		}
	}
	if ns < 0 || ew < 0 {
		t.Fatal("grid center lacks NS or EW approaches")
	}
	for _, tc := range []struct {
		t              float64
		nsGreen, ewGrn bool
	}{
		{0, true, false},
		{29, true, false},
		{30, false, true},
		{59, false, true},
		{60, true, false}, // wraps
	} {
		if got := plan.Green(net, ns, tc.t); got != tc.nsGreen {
			t.Fatalf("NS green at t=%v: %v, want %v", tc.t, got, tc.nsGreen)
		}
		if got := plan.Green(net, ew, tc.t); got != tc.ewGrn {
			t.Fatalf("EW green at t=%v: %v, want %v", tc.t, got, tc.ewGrn)
		}
	}
	// NS and EW are never green together, never red together.
	for tt := 0.0; tt < 120; tt += 1 {
		a, b := plan.Green(net, ns, tt), plan.Green(net, ew, tt)
		if a == b {
			t.Fatalf("phases overlap at t=%v: ns=%v ew=%v", tt, a, b)
		}
	}
}

func TestUnsignalizedAlwaysGreen(t *testing.T) {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 2, Cols: 2})
	plan := NewSignalPlan()
	for j := range net.Links {
		for tt := 0.0; tt < 100; tt += 10 {
			if !plan.Green(net, j, tt) {
				t.Fatal("unsignalized approach showed red")
			}
		}
	}
	var nilPlan *SignalPlan
	if !nilPlan.Green(net, 0, 0) {
		t.Fatal("nil plan must be green")
	}
	if nilPlan.NumSignalized() != 0 {
		t.Fatal("nil plan signalized count != 0")
	}
}

func TestSignalsDelayTraffic(t *testing.T) {
	// A signalized corridor must have longer travel times than a free one.
	net := roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 3})
	d := constDemand(1, 4, 20, []ODNodes{{Origin: 0, Dest: 8}})
	free, err := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 5}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	signaled, err := New(net, Config{
		Intervals: 4, IntervalSec: 300, Seed: 5,
		Signals: UniformSignals(net, 60, 3),
	}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if signaled.MeanTravelSec() <= free.MeanTravelSec() {
		t.Fatalf("signals did not delay: free %v vs signaled %v",
			free.MeanTravelSec(), signaled.MeanTravelSec())
	}
	if signaled.Completed == 0 {
		t.Fatal("no vehicle completed under signals (deadlock?)")
	}
}

func TestSignalsDelayTrafficMicro(t *testing.T) {
	net := roadnet.Grid(roadnet.GridConfig{Rows: 3, Cols: 3})
	d := constDemand(1, 3, 10, []ODNodes{{Origin: 0, Dest: 8}})
	free, err := New(net, Config{Intervals: 3, IntervalSec: 300, Seed: 6, Engine: Micro}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	signaled, err := New(net, Config{
		Intervals: 3, IntervalSec: 300, Seed: 6, Engine: Micro,
		Signals: UniformSignals(net, 60, 3),
	}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if signaled.MeanTravelSec() <= free.MeanTravelSec() {
		t.Fatalf("micro signals did not delay: free %v vs signaled %v",
			free.MeanTravelSec(), signaled.MeanTravelSec())
	}
}

func TestFundamentalDiagramSelection(t *testing.T) {
	// Underwood decays gently at low density versus Greenshields' linear
	// drop, so under identical moderate demand the Underwood run should
	// observe (weakly) different speeds — proving the diagram is live.
	net := lineNet()
	d := constDemand(1, 3, 400, []ODNodes{{Origin: 0, Dest: 2}})
	gs, err := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 7}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 7, Diagram: fd.Underwood{}}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range gs.Speed.Data {
		diff += abs64(gs.Speed.Data[i] - uw.Speed.Data[i])
	}
	if diff == 0 {
		t.Fatal("changing the fundamental diagram changed nothing")
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
