package sim

import (
	"runtime"
	"testing"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// TestMesoPoolingEquivalence checks that the tensor arena's pooling mode
// cannot leak into simulation results: the meso engine must produce bitwise-
// identical volume, speed, and entry tensors with pooling enabled and
// disabled, at every worker count.
func TestMesoPoolingEquivalence(t *testing.T) {
	restore := tensor.PoolingEnabled()
	defer tensor.SetPooling(restore)

	net := roadnet.Grid(roadnet.GridConfig{Rows: 6, Cols: 7})
	n := net.NumNodes()
	ods := []ODNodes{{Origin: 0, Dest: n - 1}, {Origin: n - 1, Dest: 0}, {Origin: 6, Dest: n - 7}}
	d := Demand{ODs: ods, G: tensor.Full(4, 3, 3)}

	run := func(workers int, pooled bool) *Result {
		tensor.SetPooling(pooled)
		s := New(net, Config{Intervals: 3, IntervalSec: 180, Seed: 19, Workers: workers})
		res, err := s.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		pooled := run(w, true)
		fresh := run(w, false)
		if pooled.Spawned != fresh.Spawned || pooled.Completed != fresh.Completed {
			t.Fatalf("workers=%d: vehicle counts differ between pooled and fresh allocation", w)
		}
		if !tensor.AllClose(pooled.Volume, fresh.Volume, 0) {
			t.Fatalf("workers=%d: volume differs between pooled and fresh allocation", w)
		}
		if !tensor.AllClose(pooled.Speed, fresh.Speed, 0) {
			t.Fatalf("workers=%d: speed differs between pooled and fresh allocation", w)
		}
		if !tensor.AllClose(pooled.Entries, fresh.Entries, 0) {
			t.Fatalf("workers=%d: entries differ between pooled and fresh allocation", w)
		}
	}
}
