package sim

import (
	"math"
	"testing"

	"ovs/internal/roadnet"
	"ovs/internal/tensor"
)

// TestEntryQueueEventuallyDrains floods a short link far beyond storage and
// verifies that queued vehicles still enter once space frees, and that the
// simulator neither loses nor duplicates vehicles.
func TestEntryQueueEventuallyDrains(t *testing.T) {
	net := roadnet.New()
	a := net.AddNode(0, 0)
	b := net.AddNode(200, 0)
	c := net.AddNode(1200, 0)
	net.AddLink(a, b, 200, 1, 10, 0) // storage ≈ 200×0.14 = 28 vehicles
	net.AddLink(b, c, 1000, 2, 15, 0)
	s := New(net, Config{Intervals: 6, IntervalSec: 600, Seed: 1})
	// 900 vehicles demanded in the first interval: 1.5 veh/s arrival against
	// a 0.5 veh/s discharge — the 28-vehicle link must fill and queue.
	g := tensor.New(1, 6)
	g.Set(900, 0, 0)
	res, err := s.Run(Demand{ODs: []ODNodes{{Origin: a, Dest: c}}, G: g})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 900 {
		t.Fatalf("spawned = %d, want 900", res.Spawned)
	}
	// In full jam the link serves at speed×density ≈ 0.11 veh/s (capacity
	// drop), so only part of the demand gets in before the horizon ends —
	// but what enters must be drip-fed, conserved, and mostly completed.
	entered := res.Entries.Row(0).Sum()
	if entered > 900 {
		t.Fatalf("first-link entries = %v > spawned 900 (duplication)", entered)
	}
	if entered < 300 {
		t.Fatalf("first-link entries = %v, jam throughput too low", entered)
	}
	// Entries must spill into later intervals (the entry-queue effect).
	if res.Entries.At(0, 0) >= entered {
		t.Fatal("all entries happened in the first interval despite the queue")
	}
	// Completions lag entries by at most the vehicles still on the road.
	if float64(res.Completed) > entered {
		t.Fatalf("completed %d > entered %v", res.Completed, entered)
	}
	if float64(res.Completed) < entered-60 {
		t.Fatalf("completed %d lags entries %v by more than on-road storage", res.Completed, entered)
	}
}

// TestRoadWorkReducesCapacityToo verifies the road-work factor scales
// capacity, not just speed: a work zone must pass fewer vehicles.
func TestRoadWorkReducesCapacityToo(t *testing.T) {
	net := lineNet()
	d := constDemand(1, 3, 900, []ODNodes{{Origin: 0, Dest: 2}})
	base, err := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 2}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	work, err := New(net, Config{Intervals: 3, IntervalSec: 600, Seed: 2, RoadWork: map[int]float64{0: 0.4}}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if work.Completed >= base.Completed {
		t.Fatalf("work zone completed %d >= base %d", work.Completed, base.Completed)
	}
}

// TestMicroJunctionBlocking verifies the micro engine holds leaders at the
// stop line when the receiving link is packed, rather than teleporting.
func TestMicroJunctionBlocking(t *testing.T) {
	net := roadnet.New()
	a := net.AddNode(0, 0)
	b := net.AddNode(400, 0)
	c := net.AddNode(500, 0) // very short receiving link
	d := net.AddNode(1500, 0)
	net.AddLink(a, b, 400, 1, 14, 0)
	net.AddLink(b, c, 100, 1, 14, 0) // bottleneck: fits ~14 vehicles
	net.AddLink(c, d, 1000, 1, 3, 0) // slow exit keeps the bottleneck full
	g := tensor.New(1, 4)
	g.Set(120, 0, 0)
	s := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 3, Engine: Micro})
	res, err := s.Run(Demand{ODs: []ODNodes{{Origin: a, Dest: d}}, G: g})
	if err != nil {
		t.Fatal(err)
	}
	// Upstream speed must collapse versus free flow while the bottleneck
	// holds vehicles back.
	if res.Speed.At(0, 1) > 0.6*net.Links[0].SpeedLimit {
		t.Fatalf("upstream speed %v did not collapse behind the bottleneck", res.Speed.At(0, 1))
	}
	if res.Completed > res.Spawned {
		t.Fatal("vehicle duplication at junction")
	}
}

// TestOccupancyBoundedByStorageProperty checks, across engines and demands,
// that occupancy never exceeds the link's physical storage.
func TestOccupancyBoundedByStorageProperty(t *testing.T) {
	net := lineNet()
	for _, engine := range []Engine{Meso, Micro} {
		for _, rate := range []float64{10, 300, 1200} {
			s := New(net, Config{Intervals: 2, IntervalSec: 300, Seed: 4, Engine: engine})
			res, err := s.Run(constDemand(1, 2, rate, []ODNodes{{Origin: 0, Dest: 2}}))
			if err != nil {
				t.Fatal(err)
			}
			for j := range net.Links {
				storage := net.Links[j].Length * float64(net.Links[j].Lanes) * 0.14
				for tt := 0; tt < 2; tt++ {
					// Micro's single-lane abstraction can slightly exceed the
					// density-based storage figure; allow 2x headroom.
					if res.Volume.At(j, tt) > 2*storage+1 {
						t.Fatalf("engine %d rate %v: occupancy %v far exceeds storage %v",
							engine, rate, res.Volume.At(j, tt), storage)
					}
				}
			}
		}
	}
}

// TestSpeedObservationMatchesGreenshields cross-checks the meso engine's
// reported speed against the fundamental diagram it integrates: for a steady
// state, v ≈ vf(1 - occ/storage).
func TestSpeedObservationMatchesGreenshields(t *testing.T) {
	net := lineNet()
	s := New(net, Config{Intervals: 4, IntervalSec: 600, Seed: 5})
	res, err := s.Run(constDemand(1, 4, 400, []ODNodes{{Origin: 0, Dest: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	l := net.Links[0]
	storage := l.Length * float64(l.Lanes) * 0.14
	// Use a mid-horizon interval where the state is quasi-steady.
	occ := res.Volume.At(0, 2)
	speed := res.Speed.At(0, 2)
	predicted := l.SpeedLimit * (1 - occ/storage)
	if predicted < 0.8 {
		predicted = 0.8
	}
	if math.Abs(speed-predicted) > 0.25*l.SpeedLimit {
		t.Fatalf("observed speed %v far from Greenshields prediction %v (occ %v)", speed, predicted, occ)
	}
}

// TestDeterminismAcrossEntriesAndOccupancy extends the determinism check to
// the Entries tensor.
func TestDeterminismAcrossEntriesAndOccupancy(t *testing.T) {
	net := gridNet()
	ods := []ODNodes{{Origin: 0, Dest: 8}, {Origin: 6, Dest: 2}}
	run := func() *Result {
		s := New(net, Config{Intervals: 3, IntervalSec: 300, Seed: 77})
		res, err := s.Run(constDemand(2, 3, 7.3, ods))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !tensor.AllClose(a.Entries, b.Entries, 0) {
		t.Fatal("Entries not deterministic")
	}
	if !tensor.AllClose(a.Volume, b.Volume, 0) {
		t.Fatal("Volume not deterministic")
	}
}

// TestStochasticRoutingSpreadsTraffic verifies the logit route choice uses
// multiple routes for an OD with near-tied alternatives.
func TestStochasticRoutingSpreadsTraffic(t *testing.T) {
	net := gridNet()
	d := constDemand(1, 4, 40, []ODNodes{{Origin: 0, Dest: 8}})
	static, err := New(net, Config{Intervals: 4, IntervalSec: 300, Seed: 8}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	stoch, err := New(net, Config{
		Intervals: 4, IntervalSec: 300, Seed: 8,
		Routing: StochasticRouting, RouteChoiceK: 3, LogitTheta: 2,
	}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	used := func(res *Result) int {
		n := 0
		for j := 0; j < net.NumLinks(); j++ {
			if res.Entries.Row(j).Sum() > 0 {
				n++
			}
		}
		return n
	}
	if used(stoch) <= used(static) {
		t.Fatalf("stochastic routing used %d links, static %d", used(stoch), used(static))
	}
	// Determinism still holds for a fixed seed.
	stoch2, err := New(net, Config{
		Intervals: 4, IntervalSec: 300, Seed: 8,
		Routing: StochasticRouting, RouteChoiceK: 3, LogitTheta: 2,
	}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(stoch.Entries, stoch2.Entries, 0) {
		t.Fatal("stochastic routing not deterministic per seed")
	}
}

// TestLogitThetaGreediness: with very high theta the logit choice collapses
// to the shortest route, matching static routing.
func TestLogitThetaGreediness(t *testing.T) {
	net := gridNet()
	d := constDemand(1, 3, 20, []ODNodes{{Origin: 0, Dest: 8}})
	static, err := New(net, Config{Intervals: 3, IntervalSec: 300, Seed: 9}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := New(net, Config{
		Intervals: 3, IntervalSec: 300, Seed: 9,
		Routing: StochasticRouting, RouteChoiceK: 3, LogitTheta: 500,
	}).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	// In a symmetric grid the k-shortest alternatives tie exactly, so even a
	// greedy logit can pick among ties; compare total entries instead of
	// per-link equality.
	if static.Spawned != greedy.Spawned {
		t.Fatalf("spawn counts differ: %d vs %d", static.Spawned, greedy.Spawned)
	}
}
