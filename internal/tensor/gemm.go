package tensor

import (
	"math"

	"ovs/internal/parallel"
)

// This file implements the packed, cache-blocked GEMM core behind every
// matrix-product entry point (MatMul, MatMulTo, MatMulNTAcc, MatMulTNAcc).
// The design is the classic BLIS/gemmlowp decomposition, restated for a pure
// Go kernel:
//
//   - The operands are addressed through gemmView (a base slice plus logical
//     row/column strides), so transposition is absorbed into packing index
//     arithmetic — the inner loops never branch on a transpose flag.
//   - B is packed into column micro-panels of width gemmNR and A into row
//     micro-panels of height gemmMR, both laid out so the micro-kernel walks
//     them with unit stride. Panels are sized to the cache blocking
//     parameters (gemmKC, gemmNC, gemmMC) and drawn from the tensor arena, so
//     a steady-state GEMM allocates nothing.
//   - The micro-kernel holds a gemmMR×gemmNR accumulator tile in registers
//     and advances along the packed K panel with one fused multiply-add per
//     cell per step (math.FMA — a single correctly-rounded hardware
//     instruction on amd64/arm64, with an exact softfloat fallback
//     elsewhere, so results are identical across machines).
//
// Determinism and bitwise equivalence. Every output element C[i,j] receives
// exactly the sequence
//
//	s = 0; s = fma(A[i,0], B[0,j], s); s = fma(A[i,1], B[1,j], s); ...
//
// in ascending k order, followed by a single store (overwrite) or a single
// dst[i,j] += s (accumulate). K-panel boundaries only decide when the
// running value parks between register residencies — in dst for overwrite,
// in a zeroed scratch accumulator for accumulate — they never reorder or
// reassociate the adds. The accumulate form must keep the k-sum separate
// from dst: the autodiff Fork/Ref/Join path materializes a child gradient
// (the bare k-sum) and adds it to the parent's, and gradient accumulation is
// only worker-count-invariant if the direct path performs the same
// "sum-then-one-add". The naive reference kernels below perform the
// identical per-element sequence, so the blocked path is bitwise-equal to
// the reference, and — because the parallel decomposition partitions
// disjoint output row blocks whose boundaries depend only on the shape —
// bitwise-identical at every worker count.

const (
	// gemmMR × gemmNR is the register tile: 32 independent FMA accumulator
	// chains (8 vector accumulators of 4 lanes on amd64), enough to saturate
	// two FMA pipes at 4-5 cycle latency. The amd64 micro-kernel holds the
	// tile in 8 ymm registers; each K step is one B-vector load plus 8
	// broadcast+FMA pairs.
	gemmMR = 8
	gemmNR = 4
	// gemmKC is the K-panel depth: one packed A micro-panel (gemmMR×gemmKC)
	// plus one packed B micro-panel (gemmKC×gemmNR) stay resident in L1
	// while the micro-kernel runs (16 KiB + 8 KiB).
	gemmKC = 256
	// gemmNC bounds the packed B panel (gemmKC×gemmNC ≤ 512 KiB, L2-sized).
	gemmNC = 256
	// gemmMC is the output row-block height: one parallel chunk packs and
	// consumes an A panel of gemmMC×gemmKC ≤ 64 KiB. It is also the unit of
	// the deterministic 2D decomposition: chunk boundaries depend only on m.
	gemmMC = 32
)

// gemmBlockedMin is the m·n·k threshold below which gemm runs the serial
// naive kernels: packing two operands cannot pay for itself on tiny
// products, and the training graph is dominated by small matmuls. It is a
// variable (not a const) so the equivalence tests can force every shape
// through the blocked path. Both paths compute the identical per-element FMA
// sequence, so the dispatch never affects results, only speed.
var gemmBlockedMin = parMinWork

// SetGEMMBlockedThreshold sets the m·n·k scalar-op count at which products
// switch from the naive kernels to the packed blocked core, returning the
// previous value. Both paths are bitwise-identical, so this is purely a
// tuning (and testing) knob — tests in other packages use a threshold of 1
// to force every product, however small, through the blocked path and the
// pack cache. Not safe to call concurrently with running products.
func SetGEMMBlockedThreshold(v int) int {
	old := gemmBlockedMin
	gemmBlockedMin = v
	return old
}

// gemmView addresses a logical matrix inside a flat slice: element (i, j)
// lives at data[i*rs + j*cs]. A transposed operand is expressed by swapping
// the strides, which confines transposition to packing arithmetic.
type gemmView struct {
	data   []float64
	rs, cs int
}

// gemm computes dst (+)= A·B where A and B are logical m×k and k×n views and
// dst is the row-major m×n output with leading dimension ldc. acc selects
// accumulate (dst +=) over overwrite (dst =). The accumulate form computes
// the product into a zeroed arena scratch block and folds it into dst with a
// single add per element, preserving the "sum-then-one-add" association the
// determinism argument above requires. bsrc, when non-nil, is the packable
// tensor backing the B view; the blocked path then serves B panels from the
// persistent pack cache (see packcache.go) instead of repacking.
func gemm(dst []float64, ldc int, a, b gemmView, m, n, k int, acc bool, bsrc *Tensor) {
	if m*n*k < gemmBlockedMin {
		gemmNaive(dst, ldc, a, b, m, n, k, acc)
		return
	}
	if acc {
		scratch := Get(m * n) // Get zero-fills
		gemmBlocked(scratch.Data, n, a, b, m, n, k, bsrc)
		sd := scratch.Data
		if ldc == n {
			parallel.For(m*n, parMinWork, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] += sd[i]
				}
			})
		} else {
			for i := 0; i < m; i++ {
				crow := dst[i*ldc : i*ldc+n]
				srow := sd[i*n : (i+1)*n]
				for j := range crow {
					crow[j] += srow[j]
				}
			}
		}
		Put(scratch)
		return
	}
	gemmBlocked(dst, ldc, a, b, m, n, k, bsrc)
}

// packSource returns b when it is eligible for B-panel caching — marked
// packable by its owner — and nil otherwise. Entry points call it to decide
// whether to thread the tensor identity down to the blocked path.
func packSource(b *Tensor) *Tensor {
	if b != nil && b.packable {
		return b
	}
	return nil
}

// gemmBlocked overwrites dst = A·B via the packed cache-blocked path. When
// bsrc is non-nil the B micro-panels come from the persistent pack cache (a
// hit skips every packB call; a miss packs the whole matrix once); the cached
// bytes are identical to a fresh pack, so the dispatch cannot affect results.
func gemmBlocked(dst []float64, ldc int, a, b gemmView, m, n, k int, bsrc *Tensor) {
	var cached *packEntry
	if bsrc != nil {
		cached = acquirePack(bsrc, b, k, n)
	}
	mBlocks := (m + gemmMC - 1) / gemmMC
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		ncPad := (nc + gemmNR - 1) / gemmNR * gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			// The first K panel starts its accumulators at zero; every later
			// panel resumes from the value parked in dst.
			load := pc > 0
			var bbuf *Tensor
			var bp []float64
			if cached != nil {
				bp = cached.buf.Data[jc*k+pc*ncPad:]
			} else {
				bbuf = Get(kc * ncPad)
				packB(bbuf.Data, b, pc, jc, kc, nc)
				bp = bbuf.Data
			}
			parallel.For(mBlocks, 1, func(lo, hi int) {
				abuf := Get(gemmMC * kc)
				for blk := lo; blk < hi; blk++ {
					i0 := blk * gemmMC
					mc := min(gemmMC, m-i0)
					packA(abuf.Data, a, i0, pc, mc, kc)
					gemmMacro(dst, ldc, abuf.Data, bp, i0, jc, mc, nc, kc, load)
				}
				Put(abuf)
			})
			if bbuf != nil {
				Put(bbuf)
			}
		}
	}
	if cached != nil {
		releasePack(cached)
	}
}

// packB lays the B block (rows [pc, pc+kc), columns [jc, jc+nc)) into
// micro-panels of gemmNR columns: panel jj/gemmNR holds kc rows of gemmNR
// consecutive column values. Entries beyond nc exist in the layout but are
// never read (the edge micro-kernel bounds its column loop), so they are not
// cleared.
func packB(dst []float64, b gemmView, pc, jc, kc, nc int) {
	for jj := 0; jj < nc; jj += gemmNR {
		nr := min(gemmNR, nc-jj)
		out := dst[(jj/gemmNR)*kc*gemmNR:]
		if nr == gemmNR && b.cs == 1 {
			// Contiguous rows: copy four columns per K step directly.
			for p := 0; p < kc; p++ {
				src := b.data[(pc+p)*b.rs+jc+jj:]
				o := out[p*gemmNR : p*gemmNR+4]
				o[0], o[1], o[2], o[3] = src[0], src[1], src[2], src[3]
			}
		} else {
			for p := 0; p < kc; p++ {
				base := (pc+p)*b.rs + (jc+jj)*b.cs
				for c := 0; c < nr; c++ {
					out[p*gemmNR+c] = b.data[base+c*b.cs]
				}
			}
		}
	}
}

// packA lays the A block (rows [i0, i0+mc), columns [pc, pc+kc)) into
// micro-panels of gemmMR rows: panel ii/gemmMR holds, for each of kc K
// steps, gemmMR consecutive row values. Entries beyond mc are never read.
func packA(dst []float64, a gemmView, i0, pc, mc, kc int) {
	for ii := 0; ii < mc; ii += gemmMR {
		mr := min(gemmMR, mc-ii)
		out := dst[(ii/gemmMR)*kc*gemmMR:]
		if mr == gemmMR && a.cs == 1 {
			r0 := a.data[(i0+ii)*a.rs+pc:]
			r1 := a.data[(i0+ii+1)*a.rs+pc:]
			r2 := a.data[(i0+ii+2)*a.rs+pc:]
			r3 := a.data[(i0+ii+3)*a.rs+pc:]
			r4 := a.data[(i0+ii+4)*a.rs+pc:]
			r5 := a.data[(i0+ii+5)*a.rs+pc:]
			r6 := a.data[(i0+ii+6)*a.rs+pc:]
			r7 := a.data[(i0+ii+7)*a.rs+pc:]
			for p := 0; p < kc; p++ {
				o := out[p*gemmMR : p*gemmMR+8]
				o[0], o[1], o[2], o[3] = r0[p], r1[p], r2[p], r3[p]
				o[4], o[5], o[6], o[7] = r4[p], r5[p], r6[p], r7[p]
			}
		} else {
			for r := 0; r < mr; r++ {
				base := (i0+ii+r)*a.rs + pc*a.cs
				for p := 0; p < kc; p++ {
					out[p*gemmMR+r] = a.data[base+p*a.cs]
				}
			}
		}
	}
}

// gemmMacro runs the micro-kernel over one packed A block × packed B panel,
// covering output rows [i0, i0+mc) and columns [jc, jc+nc).
func gemmMacro(dst []float64, ldc int, ap, bp []float64, i0, jc, mc, nc, kc int, load bool) {
	for jj := 0; jj < nc; jj += gemmNR {
		nr := min(gemmNR, nc-jj)
		bpanel := bp[(jj/gemmNR)*kc*gemmNR:]
		for ii := 0; ii < mc; ii += gemmMR {
			mr := min(gemmMR, mc-ii)
			apanel := ap[(ii/gemmMR)*kc*gemmMR:]
			ctile := dst[(i0+ii)*ldc+jc+jj:]
			switch {
			case mr == gemmMR && nr == gemmNR && gemmHasAsm:
				gemmMicroAsm(&ctile[0], ldc, &apanel[0], &bpanel[0], kc, load)
			case mr == gemmMR && nr == gemmNR:
				gemmMicroGo(ctile, ldc, apanel, bpanel, kc, load)
			default:
				gemmMicroEdge(ctile, ldc, apanel, bpanel, kc, mr, nr, load)
			}
		}
	}
}

// gemmMicroGo is the portable full-tile inner kernel: the 8×4 accumulator
// tile processed as two 4×4 halves so each half's 16 FMA chains plus operand
// temporaries stay register-resident. Both halves read the same packed B
// panel and the gemmMR-strided A panel, so the per-element FMA sequence is
// identical to the amd64 vector kernel (VFMADD231PD lanes are the same
// correctly-rounded IEEE operation as math.FMA).
func gemmMicroGo(c []float64, ldc int, ap, bp []float64, kc int, load bool) {
	gemmMicroGo4(c, ldc, ap, bp, kc, load)
	gemmMicroGo4(c[4*ldc:], ldc, ap[4:], bp, kc, load)
}

// gemmMicroGo4 advances a 4×4 accumulator tile one K step at a time. The A
// panel rows live at ap[p*gemmMR+r] (ap is pre-offset for the upper/lower
// half); load selects whether the tile starts from dst (accumulate / later K
// panel) or zero.
func gemmMicroGo4(c []float64, ldc int, ap, bp []float64, kc int, load bool) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	if load {
		r0 := c[0*ldc : 0*ldc+4]
		r1 := c[1*ldc : 1*ldc+4]
		r2 := c[2*ldc : 2*ldc+4]
		r3 := c[3*ldc : 3*ldc+4]
		c00, c01, c02, c03 = r0[0], r0[1], r0[2], r0[3]
		c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
		c20, c21, c22, c23 = r2[0], r2[1], r2[2], r2[3]
		c30, c31, c32, c33 = r3[0], r3[1], r3[2], r3[3]
	}
	for p := 0; p < kc; p++ {
		av := ap[p*gemmMR : p*gemmMR+4]
		bv := bp[p*gemmNR : p*gemmNR+4]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		c20 = math.FMA(a2, b0, c20)
		c21 = math.FMA(a2, b1, c21)
		c22 = math.FMA(a2, b2, c22)
		c23 = math.FMA(a2, b3, c23)
		c30 = math.FMA(a3, b0, c30)
		c31 = math.FMA(a3, b1, c31)
		c32 = math.FMA(a3, b2, c32)
		c33 = math.FMA(a3, b3, c33)
	}
	r0 := c[0*ldc : 0*ldc+4]
	r1 := c[1*ldc : 1*ldc+4]
	r2 := c[2*ldc : 2*ldc+4]
	r3 := c[3*ldc : 3*ldc+4]
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// gemmMicroEdge handles partial tiles at the right/bottom fringe. It reads
// only the mr valid rows and nr valid columns of the packed panels, so the
// unwritten padding lanes of the packing layout are never consumed.
func gemmMicroEdge(c []float64, ldc int, ap, bp []float64, kc, mr, nr int, load bool) {
	for r := 0; r < mr; r++ {
		crow := c[r*ldc : r*ldc+nr]
		for j := 0; j < nr; j++ {
			var s float64
			if load {
				s = crow[j]
			}
			for p := 0; p < kc; p++ {
				s = math.FMA(ap[p*gemmMR+r], bp[p*gemmNR+j], s)
			}
			crow[j] = s
		}
	}
}

// gemmNaive is the retained reference kernel: the plain triple loop with the
// canonical per-element FMA sequence. It is both the small-size fast path
// (packing cannot pay for itself under gemmBlockedMin) and the oracle the
// equivalence tests compare the blocked path against. The three stride
// patterns the entry points produce get cache-aware loop orders; the generic
// fallback covers any other view.
func gemmNaive(dst []float64, ldc int, a, b gemmView, m, n, k int, acc bool) {
	if gemmHasAsm && n > 0 && k > 0 {
		gemmNaiveAsm(dst, ldc, a, b, m, n, k, acc)
		return
	}
	switch {
	case !acc && a.cs == 1 && b.cs == 1:
		gemmNaiveNN(dst, ldc, a, b, m, n, k)
	case a.cs == 1 && b.rs == 1:
		gemmNaiveNT(dst, ldc, a, b, m, n, k, acc)
	default:
		gemmNaiveGeneric(dst, ldc, a, b, m, n, k, acc)
	}
}

// gemmNaiveAsm runs the small-size path through the FMA assembly helpers.
// math.FMA compiled below GOAMD64=v3 pays a feature-dispatch branch on every
// call, which dominates the tiny matmuls the training graph is made of; the
// helpers issue the FMA instructions directly. The per-element chains are
// identical to the portable kernels, so this is a speed-only dispatch.
func gemmNaiveAsm(dst []float64, ldc int, a, b gemmView, m, n, k int, acc bool) {
	if b.cs == 1 {
		// Unit-stride output columns (MatMulTo's NN and MatMulTNAcc's TN
		// orientations): the row kernel computes a full output row per call,
		// vector lanes across columns, streaming B rows contiguously.
		if !acc {
			for i := 0; i < m; i++ {
				gemmRowFMAAsm(&dst[i*ldc], &a.data[i*a.rs], a.cs, &b.data[0], b.rs, k, n)
			}
			return
		}
		// Accumulate: the bare k-sum lands in a scratch row, then one add per
		// element (the sum-then-one-add association, as everywhere).
		scratch := Get(n)
		row := scratch.Data
		for i := 0; i < m; i++ {
			gemmRowFMAAsm(&row[0], &a.data[i*a.rs], a.cs, &b.data[0], b.rs, k, n)
			crow := dst[i*ldc : i*ldc+n]
			for j, s := range row[:n] {
				crow[j] += s
			}
		}
		Put(scratch)
		return
	}
	// Strided output columns (MatMulNTAcc's NT orientation): one strided
	// FMA-chain dot per element, both runs unit-stride in the NT case. Four
	// adjacent output columns run interleaved — independent chains, each with
	// the exact per-element sequence of the single-dot kernel — to keep the
	// FMA pipeline full.
	var s4 [4]float64
	for i := 0; i < m; i++ {
		crow := dst[i*ldc : i*ldc+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			gemmDot4FMAAsm(&s4[0], &a.data[i*a.rs], a.cs, &b.data[j*b.cs], b.rs, b.cs, k)
			if acc {
				crow[j] += s4[0]
				crow[j+1] += s4[1]
				crow[j+2] += s4[2]
				crow[j+3] += s4[3]
			} else {
				crow[j] = s4[0]
				crow[j+1] = s4[1]
				crow[j+2] = s4[2]
				crow[j+3] = s4[3]
			}
		}
		for ; j < n; j++ {
			s := gemmDotFMAAsm(&a.data[i*a.rs], a.cs, &b.data[j*b.cs], b.rs, k)
			if acc {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}

// gemmNaiveNN: both operands row-major, overwrite only (MatMulTo). The ikj
// order streams contiguous B rows; per element the k-ascending FMA sequence
// is preserved because each k step applies exactly one FMA to each output
// cell, starting from the zeroed row. The accumulate form cannot use ikj
// (folding k steps directly into dst would break the sum-then-one-add
// association), so acc products route through the dot-product kernels.
func gemmNaiveNN(dst []float64, ldc int, a, b gemmView, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a.data[i*a.rs : i*a.rs+k]
		crow := dst[i*ldc : i*ldc+n]
		for j := range crow {
			crow[j] = 0
		}
		for p, av := range arow {
			brow := b.data[p*b.rs : p*b.rs+n]
			for j, bv := range brow {
				crow[j] = math.FMA(av, bv, crow[j])
			}
		}
	}
}

// gemmNaiveNT: B is a transposed view with contiguous logical columns
// (MatMulNTAcc). Each output cell is a dot product of two contiguous runs.
func gemmNaiveNT(dst []float64, ldc int, a, b gemmView, m, n, k int, acc bool) {
	for i := 0; i < m; i++ {
		arow := a.data[i*a.rs : i*a.rs+k]
		crow := dst[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bcol := b.data[j*b.cs : j*b.cs+k]
			var s float64
			for p, av := range arow {
				s = math.FMA(av, bcol[p], s)
			}
			if acc {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}

// gemmNaiveGeneric covers arbitrary strides (MatMulTNAcc reaches here: A is
// a transposed view, B row-major).
func gemmNaiveGeneric(dst []float64, ldc int, a, b gemmView, m, n, k int, acc bool) {
	for i := 0; i < m; i++ {
		crow := dst[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s = math.FMA(a.data[i*a.rs+p*a.cs], b.data[p*b.rs+j*b.cs], s)
			}
			if acc {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}
