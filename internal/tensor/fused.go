package tensor

import (
	"fmt"
	"math"

	"ovs/internal/parallel"
)

// This file holds the fused and destination-passing kernels of the
// zero-allocation training path. The *To kernels write into a caller-provided
// output (typically an arena tensor), the *Acc kernels accumulate a backward
// rule directly into a gradient without materializing intermediates, and the
// *InPlace kernels fuse optimizer updates. Every kernel partitions work over
// output indices with the per-index computation fixed, so results are
// bitwise-identical at any worker count (see ops.go).
//
// Each kernel checks its size against the parallel grain before constructing
// the parallel.For closure: a closure passed to another function escapes to
// the heap, so small inputs — the common case in the training hot loop — take
// a branch to an explicit serial loop instead and allocate nothing.

// AddTo computes dst = a + b elementwise and returns dst. dst may alias a or
// b. Shapes must match.
func AddTo(dst, a, b *Tensor) *Tensor {
	assertSameShape("AddTo", a, b)
	assertSameShape("AddTo", dst, a)
	if n := len(dst.Data); n <= parMinWork {
		addToRange(dst, a, b, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { addToRange(dst, a, b, lo, hi) })
	}
	return dst
}

func addToRange(dst, a, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubTo computes dst = a - b elementwise and returns dst. dst may alias a or
// b. Shapes must match.
func SubTo(dst, a, b *Tensor) *Tensor {
	assertSameShape("SubTo", a, b)
	assertSameShape("SubTo", dst, a)
	if n := len(dst.Data); n <= parMinWork {
		subToRange(dst, a, b, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { subToRange(dst, a, b, lo, hi) })
	}
	return dst
}

func subToRange(dst, a, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulTo computes the elementwise product dst = a * b and returns dst. dst may
// alias a or b. Shapes must match.
func MulTo(dst, a, b *Tensor) *Tensor {
	assertSameShape("MulTo", a, b)
	assertSameShape("MulTo", dst, a)
	if n := len(dst.Data); n <= parMinWork {
		mulToRange(dst, a, b, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { mulToRange(dst, a, b, lo, hi) })
	}
	return dst
}

func mulToRange(dst, a, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// ScaleTo computes dst = a * s elementwise and returns dst. dst may alias a.
func ScaleTo(dst, a *Tensor, s float64) *Tensor {
	assertSameShape("ScaleTo", dst, a)
	if n := len(dst.Data); n <= parMinWork {
		scaleToRange(dst, a, s, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { scaleToRange(dst, a, s, lo, hi) })
	}
	return dst
}

func scaleToRange(dst, a *Tensor, s float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] * s
	}
}

// AddScalarTo computes dst = a + s elementwise and returns dst. dst may
// alias a.
func AddScalarTo(dst, a *Tensor, s float64) *Tensor {
	assertSameShape("AddScalarTo", dst, a)
	if n := len(dst.Data); n <= parMinWork {
		addScalarToRange(dst, a, s, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { addScalarToRange(dst, a, s, lo, hi) })
	}
	return dst
}

func addScalarToRange(dst, a *Tensor, s float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] + s
	}
}

// AxpyTo computes the fused add-scale dst = a + alpha*b and returns dst. dst
// may alias a or b. Shapes must match.
func AxpyTo(dst, a *Tensor, alpha float64, b *Tensor) *Tensor {
	assertSameShape("AxpyTo", a, b)
	assertSameShape("AxpyTo", dst, a)
	if n := len(dst.Data); n <= parMinWork {
		axpyToRange(dst, a, alpha, b, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { axpyToRange(dst, a, alpha, b, lo, hi) })
	}
	return dst
}

func axpyToRange(dst, a *Tensor, alpha float64, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] + alpha*b.Data[i]
	}
}

// ScaleInPlace multiplies every element of t by s and returns t.
func ScaleInPlace(t *Tensor, s float64) *Tensor {
	ScaleTo(t, t, s)
	t.NoteMutation()
	return t
}

// MatMulTo computes the matrix product dst = a · b for rank-2 operands
// (m×k)·(k×n)→(m×n) and returns dst. dst must not alias a or b; its prior
// contents are overwritten. It routes through the packed, cache-blocked GEMM
// core (see gemm.go).
func MatMulTo(dst, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTo requires rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTo inner dimensions differ: %v x %v", a.shape, b.shape))
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTo output shape %v, want [%d %d]", dst.shape, m, n))
	}
	gemm(dst.Data, n, gemmView{a.Data, k, 1}, gemmView{b.Data, n, 1}, m, n, k, false, packSource(b))
	return dst
}

// MatMulNTAcc accumulates dst += a · bᵀ where a is (m×k), b is (n×k), and dst
// is (m×n). It fuses the dL/dA = dL/dOut · Bᵀ backward rule of MatMul,
// avoiding the transpose and product temporaries; the GEMM core absorbs the
// transpose into B's packing strides.
func MatMulNTAcc(dst, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulNTAcc requires rank-2 operands, got %v += %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulNTAcc shape mismatch %v += %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	gemm(dst.Data, n, gemmView{a.Data, k, 1}, gemmView{b.Data, 1, k}, m, n, k, true, packSource(b))
	return dst
}

// MatMulTNAcc accumulates dst += aᵀ · b where a is (m×k), b is (m×n), and dst
// is (k×n). It fuses the dL/dB = Aᵀ · dL/dOut backward rule of MatMul; the
// GEMM core absorbs the transpose into A's packing strides.
func MatMulTNAcc(dst, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTNAcc shape mismatch %v += %vᵀ x %v", dst.shape, a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	m2, n := b.shape[0], b.shape[1]
	if m != m2 || dst.shape[0] != k || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTNAcc shape mismatch %v += %vᵀ x %v", dst.shape, a.shape, b.shape))
	}
	gemm(dst.Data, n, gemmView{a.Data, 1, k}, gemmView{b.Data, n, 1}, k, n, m, true, packSource(b))
	return dst
}

// TransposeTo computes dst = aᵀ for a rank-2 tensor and returns dst. dst must
// not alias a.
func TransposeTo(dst, a *Tensor) *Tensor {
	if a.Rank() != 2 || dst.Rank() != 2 || dst.shape[0] != a.shape[1] || dst.shape[1] != a.shape[0] {
		panic(fmt.Sprintf("tensor: TransposeTo shape mismatch %v = %vᵀ", dst.shape, a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if grain := elemGrain(n); m <= grain {
		transposeToRange(dst, a, m, n, 0, m)
	} else {
		parallel.For(m, grain, func(lo, hi int) { transposeToRange(dst, a, m, n, lo, hi) })
	}
	return dst
}

func transposeToRange(dst, a *Tensor, m, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			dst.Data[j*m+i] = a.Data[i*n+j]
		}
	}
}

// TransposeAcc accumulates dst += aᵀ for rank-2 tensors. It fuses the
// Transpose backward rule. dst must not alias a.
func TransposeAcc(dst, a *Tensor) *Tensor {
	if a.Rank() != 2 || dst.Rank() != 2 || dst.shape[0] != a.shape[1] || dst.shape[1] != a.shape[0] {
		panic(fmt.Sprintf("tensor: TransposeAcc shape mismatch %v += %vᵀ", dst.shape, a.shape))
	}
	m, n := dst.shape[0], dst.shape[1]
	if grain := elemGrain(n); m <= grain {
		transposeAccRange(dst, a, m, n, 0, m)
	} else {
		parallel.For(m, grain, func(lo, hi int) { transposeAccRange(dst, a, m, n, lo, hi) })
	}
	return dst
}

func transposeAccRange(dst, a *Tensor, m, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] += a.Data[j*m+i]
		}
	}
}

// AddRowVectorTo computes dst = a + v broadcast over rows, where a and dst
// are (m×n) and v is (n). dst may alias a.
func AddRowVectorTo(dst, a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVectorTo shape mismatch %v + %v", a.shape, v.shape))
	}
	assertSameShape("AddRowVectorTo", dst, a)
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.Data[i*n+j] = a.Data[i*n+j] + v.Data[j]
		}
	}
	return dst
}

// SigmoidTo computes dst = 1/(1+e^-a) elementwise and returns dst. dst may
// alias a.
func SigmoidTo(dst, a *Tensor) *Tensor {
	assertSameShape("SigmoidTo", dst, a)
	for i, x := range a.Data {
		dst.Data[i] = 1 / (1 + math.Exp(-x))
	}
	return dst
}

// SigmoidBackwardAcc accumulates dst += grad * val * (1-val), the fused
// sigmoid backward rule, where val holds the forward sigmoid outputs.
func SigmoidBackwardAcc(dst, grad, val *Tensor) *Tensor {
	assertSameShape("SigmoidBackwardAcc", grad, val)
	assertSameShape("SigmoidBackwardAcc", dst, grad)
	for i := range dst.Data {
		s := val.Data[i]
		dst.Data[i] += grad.Data[i] * s * (1 - s)
	}
	return dst
}

// TanhTo computes dst = tanh(a) elementwise and returns dst. dst may alias a.
func TanhTo(dst, a *Tensor) *Tensor {
	assertSameShape("TanhTo", dst, a)
	for i, x := range a.Data {
		dst.Data[i] = math.Tanh(x)
	}
	return dst
}

// TanhBackwardAcc accumulates dst += grad * (1 - val²), the fused tanh
// backward rule, where val holds the forward tanh outputs.
func TanhBackwardAcc(dst, grad, val *Tensor) *Tensor {
	assertSameShape("TanhBackwardAcc", grad, val)
	assertSameShape("TanhBackwardAcc", dst, grad)
	for i := range dst.Data {
		th := val.Data[i]
		dst.Data[i] += grad.Data[i] * (1 - th*th)
	}
	return dst
}

// ReLUTo computes dst = max(0, a) elementwise and returns dst. dst may
// alias a.
func ReLUTo(dst, a *Tensor) *Tensor {
	assertSameShape("ReLUTo", dst, a)
	for i, x := range a.Data {
		if x > 0 {
			dst.Data[i] = x
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// SqrtTo computes dst = √a elementwise and returns dst. dst may alias a.
func SqrtTo(dst, a *Tensor) *Tensor {
	assertSameShape("SqrtTo", dst, a)
	for i, x := range a.Data {
		dst.Data[i] = math.Sqrt(x)
	}
	return dst
}

// SoftplusTo computes dst = log(1+e^a) elementwise (with the same overflow
// guard as the autodiff op) and returns dst. dst may alias a.
func SoftplusTo(dst, a *Tensor) *Tensor {
	assertSameShape("SoftplusTo", dst, a)
	for i, x := range a.Data {
		if x > 30 {
			dst.Data[i] = x // avoids overflow; log(1+e^x) ≈ x
		} else {
			dst.Data[i] = math.Log1p(math.Exp(x))
		}
	}
	return dst
}

// AdamStepInPlace applies one fused Adam update to value from grad, using m
// and v as the persistent first/second moment buffers. bc1 and bc2 are the
// bias-correction terms 1-β₁ᵗ and 1-β₂ᵗ for the current step t. The update
// order per element matches the reference loop exactly, so results are
// bitwise-identical to the unfused optimizer.
func AdamStepInPlace(value, grad, m, v *Tensor, lr, beta1, beta2, eps, bc1, bc2 float64) {
	assertSameShape("AdamStepInPlace", value, grad)
	assertSameShape("AdamStepInPlace", value, m)
	assertSameShape("AdamStepInPlace", value, v)
	n := len(value.Data)
	if grain := elemGrain(8); n <= grain {
		adamStepRange(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2, 0, n)
	} else {
		parallel.For(n, grain, func(lo, hi int) {
			adamStepRange(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2, lo, hi)
		})
	}
	value.NoteMutation()
}

func adamStepRange(value, grad, m, v *Tensor, lr, beta1, beta2, eps, bc1, bc2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := grad.Data[i]
		m.Data[i] = beta1*m.Data[i] + (1-beta1)*g
		v.Data[i] = beta2*v.Data[i] + (1-beta2)*g*g
		mHat := m.Data[i] / bc1
		vHat := v.Data[i] / bc2
		value.Data[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
	}
}

// SGDMomentumStepInPlace applies one fused momentum-SGD update to value from
// grad, using vel as the persistent velocity buffer:
// vel = momentum*vel - lr*grad; value += vel.
func SGDMomentumStepInPlace(value, grad, vel *Tensor, lr, momentum float64) {
	assertSameShape("SGDMomentumStepInPlace", value, grad)
	assertSameShape("SGDMomentumStepInPlace", value, vel)
	n := len(value.Data)
	if grain := elemGrain(4); n <= grain {
		sgdMomentumStepRange(value, grad, vel, lr, momentum, 0, n)
	} else {
		parallel.For(n, grain, func(lo, hi int) {
			sgdMomentumStepRange(value, grad, vel, lr, momentum, lo, hi)
		})
	}
	value.NoteMutation()
}

func sgdMomentumStepRange(value, grad, vel *Tensor, lr, momentum float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		vel.Data[i] = momentum*vel.Data[i] - lr*grad.Data[i]
		value.Data[i] += vel.Data[i]
	}
}
