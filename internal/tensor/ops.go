package tensor

import (
	"fmt"
	"math"

	"ovs/internal/parallel"
)

// parMinWork is the minimum number of scalar operations a parallel chunk
// should carry. Loops smaller than one chunk run serially inline (the
// parallel.For chunk count is 1), so small tensors pay no goroutine
// overhead. Partitioning is always over output indices/rows with the
// per-index computation unchanged, which keeps every parallel kernel
// bitwise-identical to its serial form at any worker count.
const parMinWork = 1 << 16

// elemGrain returns the chunk size for an elementwise loop of the given
// per-index cost (in scalar ops).
func elemGrain(perIndex int) int {
	if perIndex < 1 {
		perIndex = 1
	}
	g := parMinWork / perIndex
	if g < 1 {
		g = 1
	}
	return g
}

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.shape...)
	parallel.For(len(a.Data), parMinWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	return out
}

// Sub returns a - b elementwise. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.shape...)
	parallel.For(len(a.Data), parMinWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	return out
}

// Mul returns the elementwise (Hadamard) product a * b. Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.shape...)
	parallel.For(len(a.Data), parMinWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	parallel.For(len(a.Data), parMinWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * s
		}
	})
	return out
}

// AddInPlace accumulates b into a (a += b) and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	assertSameShape("AddInPlace", a, b)
	parallel.For(len(a.Data), parMinWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] += b.Data[i]
		}
	})
	return a
}

// AxpyInPlace computes a += alpha*b and returns a.
func AxpyInPlace(a *Tensor, alpha float64, b *Tensor) *Tensor {
	assertSameShape("AxpyInPlace", a, b)
	parallel.For(len(a.Data), parMinWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] += alpha * b.Data[i]
		}
	})
	return a
}

// MatMul returns the matrix product of two rank-2 tensors: (m×k)·(k×n)→(m×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	// Partitioned over output rows: each row's ikj accumulation order is
	// unchanged, so the parallel product is bitwise-identical to serial.
	parallel.For(m, elemGrain(k*n), func(lo, hi int) {
		// ikj loop order keeps the inner loop streaming over contiguous rows of b.
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

// MatVec returns the matrix-vector product of a (m×k) and v (k) as a rank-1
// tensor of length m.
func MatVec(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires (rank-2, rank-1), got %v, %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if k != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec dimensions differ: %v x %v", a.shape, v.shape))
	}
	out := New(m)
	parallel.For(m, elemGrain(k), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*k : (i+1)*k]
			s := 0.0
			for j, rv := range row {
				s += rv * v.Data[j]
			}
			out.Data[i] = s
		}
	})
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	// Partitioned over input rows: row i fills column i of the output, so
	// chunks write disjoint cells.
	parallel.For(m, elemGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				out.Data[j*m+i] = a.Data[i*n+j]
			}
		}
	})
	return out
}

// AddRowVector adds vector v (length n) to every row of a (m×n).
func AddRowVector(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + v.Data[j]
		}
	}
	return out
}

// Sum returns the sum over all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean over all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// SumRows returns, for a rank-2 tensor (m×n), a length-n vector holding the
// sum over rows (i.e., column sums).
func SumRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumRows requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j] += a.Data[i*n+j]
		}
	}
	return out
}

// SumCols returns, for a rank-2 tensor (m×n), a length-m vector holding the
// sum over columns (i.e., row sums).
func SumCols(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumCols requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.Data[i*n+j]
		}
		out.Data[i] = s
	}
	return out
}

// Row returns a copy of row i of a rank-2 tensor as a rank-1 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Row requires rank-2, got %v", t.shape))
	}
	n := t.shape[1]
	out := New(n)
	copy(out.Data, t.Data[i*n:(i+1)*n])
	return out
}

// SetRow copies vector v into row i of a rank-2 tensor.
func (t *Tensor) SetRow(i int, v *Tensor) {
	if t.Rank() != 2 || v.Rank() != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: SetRow shape mismatch %v row <- %v", t.shape, v.shape))
	}
	copy(t.Data[i*t.shape[1]:(i+1)*t.shape[1]], v.Data)
}

// Softmax returns the softmax of a rank-1 tensor, computed stably.
func Softmax(v *Tensor) *Tensor {
	if v.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Softmax requires rank-1, got %v", v.shape))
	}
	out := New(v.shape...)
	max := v.Max()
	sum := 0.0
	for i, x := range v.Data {
		e := math.Exp(x - max)
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// Dot returns the inner product of two rank-1 tensors of equal length.
func Dot(a, b *Tensor) float64 {
	assertSameShape("Dot", a, b)
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor's elements.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MSE returns the mean squared error between two tensors of equal shape.
func MSE(a, b *Tensor) float64 {
	assertSameShape("MSE", a, b)
	s := 0.0
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return s / float64(len(a.Data))
}

// AllClose reports whether all corresponding elements of a and b differ by at
// most tol. It returns false on shape mismatch rather than panicking, so it
// can be used inside property tests.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
