package tensor

import (
	"fmt"
	"math"

	"ovs/internal/parallel"
)

// parMinWork is the minimum number of scalar operations a parallel chunk
// should carry. Loops smaller than one chunk run serially inline (the
// parallel.For chunk count is 1), so small tensors pay no goroutine
// overhead. Partitioning is always over output indices/rows with the
// per-index computation unchanged, which keeps every parallel kernel
// bitwise-identical to its serial form at any worker count.
const parMinWork = 1 << 16

// elemGrain returns the chunk size for an elementwise loop of the given
// per-index cost (in scalar ops).
func elemGrain(perIndex int) int {
	if perIndex < 1 {
		perIndex = 1
	}
	g := parMinWork / perIndex
	if g < 1 {
		g = 1
	}
	return g
}

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	return AddTo(New(a.shape...), a, b)
}

// Sub returns a - b elementwise. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	return SubTo(New(a.shape...), a, b)
}

// Mul returns the elementwise (Hadamard) product a * b. Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	return MulTo(New(a.shape...), a, b)
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	return ScaleTo(New(a.shape...), a, s)
}

// AddInPlace accumulates b into a (a += b) and returns a. Like the fused
// kernels, it branches to a plain serial loop below the parallel grain so
// small tensors never construct the parallel.For closure.
func AddInPlace(a, b *Tensor) *Tensor {
	assertSameShape("AddInPlace", a, b)
	if n := len(a.Data); n <= parMinWork {
		addInPlaceRange(a, b, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { addInPlaceRange(a, b, lo, hi) })
	}
	a.NoteMutation()
	return a
}

func addInPlaceRange(a, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		a.Data[i] += b.Data[i]
	}
}

// AxpyInPlace computes a += alpha*b and returns a.
func AxpyInPlace(a *Tensor, alpha float64, b *Tensor) *Tensor {
	assertSameShape("AxpyInPlace", a, b)
	if n := len(a.Data); n <= parMinWork {
		axpyInPlaceRange(a, alpha, b, 0, n)
	} else {
		parallel.For(n, parMinWork, func(lo, hi int) { axpyInPlaceRange(a, alpha, b, lo, hi) })
	}
	a.NoteMutation()
	return a
}

func axpyInPlaceRange(a *Tensor, alpha float64, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		a.Data[i] += alpha * b.Data[i]
	}
}

// MatMul returns the matrix product of two rank-2 tensors: (m×k)·(k×n)→(m×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v x %v", a.shape, b.shape))
	}
	// MatMulTo runs the packed blocked GEMM core, which partitions disjoint
	// output row blocks with a fixed per-element accumulation order, so the
	// parallel product is bitwise-identical to serial (see gemm.go).
	return MatMulTo(New(m, n), a, b)
}

// MatVec returns the matrix-vector product of a (m×k) and v (k) as a rank-1
// tensor of length m.
func MatVec(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires (rank-2, rank-1), got %v, %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if k != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec dimensions differ: %v x %v", a.shape, v.shape))
	}
	out := New(m)
	if grain := elemGrain(k); m <= grain {
		matVecRange(out, a, v, k, 0, m)
	} else {
		parallel.For(m, grain, func(lo, hi int) { matVecRange(out, a, v, k, lo, hi) })
	}
	return out
}

func matVecRange(out, a, v *Tensor, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.Data[i*k : (i+1)*k]
		s := 0.0
		for j, rv := range row {
			s += rv * v.Data[j]
		}
		out.Data[i] = s
	}
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	// TransposeTo partitions over input rows: row i fills column i of the
	// output, so chunks write disjoint cells.
	return TransposeTo(New(n, m), a)
}

// AddRowVector adds vector v (length n) to every row of a (m×n).
func AddRowVector(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + v.Data[j]
		}
	}
	return out
}

// Sum returns the sum over all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean over all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// SumRows returns, for a rank-2 tensor (m×n), a length-n vector holding the
// sum over rows (i.e., column sums).
func SumRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumRows requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j] += a.Data[i*n+j]
		}
	}
	return out
}

// SumCols returns, for a rank-2 tensor (m×n), a length-m vector holding the
// sum over columns (i.e., row sums).
func SumCols(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumCols requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.Data[i*n+j]
		}
		out.Data[i] = s
	}
	return out
}

// Row returns a copy of row i of a rank-2 tensor as a rank-1 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Row requires rank-2, got %v", t.shape))
	}
	n := t.shape[1]
	out := New(n)
	copy(out.Data, t.Data[i*n:(i+1)*n])
	return out
}

// SetRow copies vector v into row i of a rank-2 tensor.
func (t *Tensor) SetRow(i int, v *Tensor) {
	if t.Rank() != 2 || v.Rank() != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: SetRow shape mismatch %v row <- %v", t.shape, v.shape))
	}
	copy(t.Data[i*t.shape[1]:(i+1)*t.shape[1]], v.Data)
}

// Softmax returns the softmax of a rank-1 tensor, computed stably.
func Softmax(v *Tensor) *Tensor {
	if v.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Softmax requires rank-1, got %v", v.shape))
	}
	out := New(v.shape...)
	max := v.Max()
	sum := 0.0
	for i, x := range v.Data {
		e := math.Exp(x - max)
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// Dot returns the inner product of two rank-1 tensors of equal length.
func Dot(a, b *Tensor) float64 {
	assertSameShape("Dot", a, b)
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor's elements.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MSE returns the mean squared error between two tensors of equal shape.
func MSE(a, b *Tensor) float64 {
	assertSameShape("MSE", a, b)
	s := 0.0
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return s / float64(len(a.Data))
}

// AllClose reports whether all corresponding elements of a and b differ by at
// most tol. It returns false on shape mismatch rather than panicking, so it
// can be used inside property tests.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
