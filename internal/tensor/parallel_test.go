package tensor

import (
	"math/rand"
	"runtime"
	"testing"

	"ovs/internal/parallel"
)

// workerCounts are the settings every kernel is checked at; 1 is the exact
// serial fallback, the rest exercise real concurrency.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// withWorkers runs fn under each process-default worker count and hands it
// the result tensors to compare.
func withWorkers(t *testing.T, fn func() *Tensor) {
	t.Helper()
	old := parallel.Workers()
	defer parallel.SetWorkers(old)
	parallel.SetWorkers(1)
	ref := fn()
	for _, w := range workerCounts()[1:] {
		parallel.SetWorkers(w)
		got := fn()
		if !AllClose(got, ref, 0) {
			t.Fatalf("workers=%d: result differs bitwise from workers=1", w)
		}
	}
}

func TestMatMulParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 50×60 · 60×70: large enough for several chunks at small grain, odd
	// sizes to exercise the tail chunk.
	a := RandUniform(rng, -1, 1, 50, 60)
	b := RandUniform(rng, -1, 1, 60, 70)
	withWorkers(t, func() *Tensor { return MatMul(a, b) })
}

func TestMatVecParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// 5000 rows at ~37 flops each spans several chunks of elemGrain(37).
	a := RandUniform(rng, -1, 1, 5000, 37)
	v := RandUniform(rng, -1, 1, 37)
	withWorkers(t, func() *Tensor { return MatVec(a, v) })
}

func TestTransposeParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 2000 rows of width 97 spans several chunks of elemGrain(97).
	a := RandUniform(rng, -1, 1, 2000, 97)
	withWorkers(t, func() *Tensor { return Transpose(a) })
}

func TestElementwiseParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Above parMinWork elements so the loops actually chunk.
	n := 1<<17 + 13
	a := RandUniform(rng, -1, 1, n)
	b := RandUniform(rng, -1, 1, n)
	withWorkers(t, func() *Tensor { return Add(a, b) })
	withWorkers(t, func() *Tensor { return Sub(a, b) })
	withWorkers(t, func() *Tensor { return Mul(a, b) })
	withWorkers(t, func() *Tensor { return Scale(a, 1.7) })
	withWorkers(t, func() *Tensor { return AddInPlace(a.Clone(), b) })
	withWorkers(t, func() *Tensor { return AxpyInPlace(a.Clone(), -0.3, b) })
}
