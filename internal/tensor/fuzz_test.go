package tensor

import "testing"

// FuzzIndexMath checks the shape/At/Set index arithmetic: for any rank-3
// shape, At must panic exactly when an index is out of range, and accept
// exactly the in-range indices with row-major addressing.
func FuzzIndexMath(f *testing.F) {
	f.Add(2, 3, 4, 1, 2, 3)
	f.Add(1, 1, 1, 0, 0, 0)
	f.Add(5, 2, 7, -1, 0, 6)
	f.Fuzz(func(t *testing.T, d0, d1, d2, i, j, k int) {
		d0, d1, d2 = clampDim(d0), clampDim(d1), clampDim(d2)
		i, j, k = clampIdx(i), clampIdx(j), clampIdx(k)
		tr := New(d0, d1, d2)
		if tr.Size() != d0*d1*d2 {
			t.Fatalf("Size() = %d for shape (%d,%d,%d)", tr.Size(), d0, d1, d2)
		}
		for n := range tr.Data {
			tr.Data[n] = float64(n)
		}
		inRange := i >= 0 && i < d0 && j >= 0 && j < d1 && k >= 0 && k < d2
		v, panicked := atRecover(tr, i, j, k)
		if panicked != !inRange {
			t.Fatalf("At(%d,%d,%d) on shape (%d,%d,%d): panicked=%v, want %v",
				i, j, k, d0, d1, d2, panicked, !inRange)
		}
		if inRange {
			if want := float64((i*d1+j)*d2 + k); v != want {
				t.Fatalf("At(%d,%d,%d) = %v, want row-major %v", i, j, k, v, want)
			}
		}
	})
}

// FuzzReshape checks that Reshape accepts exactly the element-preserving
// shapes, shares backing data, and keeps row-major order.
func FuzzReshape(f *testing.F) {
	f.Add(2, 6, 3, 4)
	f.Add(1, 1, 1, 1)
	f.Add(3, 4, 6, 2)
	f.Fuzz(func(t *testing.T, d0, d1, r0, r1 int) {
		d0, d1, r0, r1 = clampDim(d0), clampDim(d1), clampDim(r0), clampDim(r1)
		tr := New(d0, d1)
		for n := range tr.Data {
			tr.Data[n] = float64(n)
		}
		rs, panicked := reshapeRecover(tr, r0, r1)
		if compatible := r0*r1 == d0*d1; panicked == compatible {
			t.Fatalf("Reshape (%d,%d)->(%d,%d): panicked=%v, want %v",
				d0, d1, r0, r1, panicked, !compatible)
		}
		if panicked {
			return
		}
		if got, want := rs.At(r0-1, r1-1), float64(d0*d1-1); got != want {
			t.Fatalf("last element after reshape = %v, want %v", got, want)
		}
		// A reshape is a view: same backing array.
		rs.Data[0] = -1
		if tr.Data[0] != -1 {
			t.Fatal("Reshape no longer shares backing data")
		}
	})
}

// clampDim folds an arbitrary fuzzed int into a small positive dimension so
// shapes stay allocatable while still exercising the index arithmetic.
func clampDim(d int) int {
	if d < 0 {
		d = -d
	}
	return d%8 + 1
}

// clampIdx keeps fuzzed indices near the valid range, including negatives,
// so both sides of every bound get probed.
func clampIdx(i int) int {
	const span = 10
	return i%span - 1 // in [-span, span-2]
}

func atRecover(tr *Tensor, idx ...int) (v float64, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return tr.At(idx...), false
}

func reshapeRecover(tr *Tensor, shape ...int) (rs *Tensor, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return tr.Reshape(shape...), false
}
