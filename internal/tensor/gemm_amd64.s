// AVX2+FMA3 micro-kernel for the packed GEMM core (see gemm.go). The 8×4
// accumulator tile lives in Y0-Y7 (one ymm of 4 column lanes per row); each
// K step loads one packed B vector and issues 8 broadcast+FMA pairs.
// VFMADD231PD lanes compute the same correctly-rounded IEEE fused
// multiply-add as math.FMA, so this kernel is bitwise-identical to the
// portable Go kernels.

//go:build amd64

#include "textflag.h"

// func gemmMicroAsm(c *float64, ldc int, ap, bp *float64, kc int, load bool)
TEXT ·gemmMicroAsm(SB), NOSPLIT, $0-41
	MOVQ    c+0(FP), DI
	MOVQ    ldc+8(FP), SI
	MOVQ    ap+16(FP), AX
	MOVQ    bp+24(FP), BX
	MOVQ    kc+32(FP), CX
	SHLQ    $3, SI            // ldc in bytes
	MOVBLZX load+40(FP), DX
	TESTL   DX, DX
	JZ      zero

	// Accumulators resume from the values parked in dst.
	MOVQ    DI, R9
	VMOVUPD (R9), Y0
	ADDQ    SI, R9
	VMOVUPD (R9), Y1
	ADDQ    SI, R9
	VMOVUPD (R9), Y2
	ADDQ    SI, R9
	VMOVUPD (R9), Y3
	ADDQ    SI, R9
	VMOVUPD (R9), Y4
	ADDQ    SI, R9
	VMOVUPD (R9), Y5
	ADDQ    SI, R9
	VMOVUPD (R9), Y6
	ADDQ    SI, R9
	VMOVUPD (R9), Y7
	JMP     loop

zero:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop:
	VMOVUPD      (BX), Y8      // B[p, 0:4]
	VBROADCASTSD (AX), Y9      // A[row 0, p]
	VFMADD231PD  Y8, Y9, Y0
	VBROADCASTSD 8(AX), Y9
	VFMADD231PD  Y8, Y9, Y1
	VBROADCASTSD 16(AX), Y9
	VFMADD231PD  Y8, Y9, Y2
	VBROADCASTSD 24(AX), Y9
	VFMADD231PD  Y8, Y9, Y3
	VBROADCASTSD 32(AX), Y9
	VFMADD231PD  Y8, Y9, Y4
	VBROADCASTSD 40(AX), Y9
	VFMADD231PD  Y8, Y9, Y5
	VBROADCASTSD 48(AX), Y9
	VFMADD231PD  Y8, Y9, Y6
	VBROADCASTSD 56(AX), Y9
	VFMADD231PD  Y8, Y9, Y7
	ADDQ         $64, AX       // next packed A step (gemmMR doubles)
	ADDQ         $32, BX       // next packed B step (gemmNR doubles)
	DECQ         CX
	JNZ          loop

	MOVQ    DI, R9
	VMOVUPD Y0, (R9)
	ADDQ    SI, R9
	VMOVUPD Y1, (R9)
	ADDQ    SI, R9
	VMOVUPD Y2, (R9)
	ADDQ    SI, R9
	VMOVUPD Y3, (R9)
	ADDQ    SI, R9
	VMOVUPD Y4, (R9)
	ADDQ    SI, R9
	VMOVUPD Y5, (R9)
	ADDQ    SI, R9
	VMOVUPD Y6, (R9)
	ADDQ    SI, R9
	VMOVUPD Y7, (R9)
	VZEROUPPER
	RET

// func gemmCPUID(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·gemmCPUID(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func gemmXGETBV() (eax, edx uint32)
TEXT ·gemmXGETBV(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmRowFMAAsm(dst, a *float64, as int, b *float64, bs int, k, n int)
//
// dst[j] = fma-chain over p ascending of a[p*as]*b[p*bs+j], from zero, for
// j in [0, n). Lanes run across output columns, so every element keeps its
// own scalar ascending-k chain; VFMADD231PD/SD are the same correctly-rounded
// operation as math.FMA. Strides arrive in elements and are scaled to bytes.
TEXT ·gemmRowFMAAsm(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ as+16(FP), AX
	MOVQ b+24(FP), BX
	MOVQ bs+32(FP), DX
	MOVQ k+40(FP), CX
	MOVQ n+48(FP), R8
	SHLQ $3, AX               // a stride in bytes
	SHLQ $3, DX               // b row stride in bytes

chunk16:
	CMPQ   R8, $16
	JLT    chunk4
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   SI, R9             // a cursor
	MOVQ   BX, R10            // b cursor at this column offset
	MOVQ   CX, R11
	TESTQ  R11, R11
	JZ     store16

loop16:
	VBROADCASTSD (R9), Y4
	VFMADD231PD  (R10), Y4, Y0
	VFMADD231PD  32(R10), Y4, Y1
	VFMADD231PD  64(R10), Y4, Y2
	VFMADD231PD  96(R10), Y4, Y3
	ADDQ         AX, R9
	ADDQ         DX, R10
	DECQ         R11
	JNZ          loop16

store16:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, BX
	SUBQ    $16, R8
	JMP     chunk16

chunk4:
	CMPQ   R8, $4
	JLT    scalar
	VXORPD Y0, Y0, Y0
	MOVQ   SI, R9
	MOVQ   BX, R10
	MOVQ   CX, R11
	TESTQ  R11, R11
	JZ     store4

loop4:
	VBROADCASTSD (R9), Y4
	VFMADD231PD  (R10), Y4, Y0
	ADDQ         AX, R9
	ADDQ         DX, R10
	DECQ         R11
	JNZ          loop4

store4:
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, BX
	SUBQ    $4, R8
	JMP     chunk4

scalar:
	TESTQ  R8, R8
	JZ     rowdone
	VXORPD X0, X0, X0
	MOVQ   SI, R9
	MOVQ   BX, R10
	MOVQ   CX, R11
	TESTQ  R11, R11
	JZ     store1

loop1:
	VMOVSD      (R9), X4
	VMOVSD      (R10), X5
	VFMADD231SD X5, X4, X0
	ADDQ        AX, R9
	ADDQ        DX, R10
	DECQ        R11
	JNZ         loop1

store1:
	VMOVSD X0, (DI)
	ADDQ   $8, DI
	ADDQ   $8, BX
	DECQ   R8
	JMP    scalar

rowdone:
	VZEROUPPER
	RET

// func gemmDotFMAAsm(a *float64, as int, b *float64, bs int, k int) float64
//
// The strided scalar FMA chain: s = 0; s = fma(a[p*as], b[p*bs], s) for p
// ascending. Used per output element when B's columns are not unit-stride.
TEXT ·gemmDotFMAAsm(SB), NOSPLIT, $0-48
	MOVQ   a+0(FP), SI
	MOVQ   as+8(FP), AX
	MOVQ   b+16(FP), BX
	MOVQ   bs+24(FP), DX
	MOVQ   k+32(FP), CX
	SHLQ   $3, AX
	SHLQ   $3, DX
	VXORPD X0, X0, X0
	TESTQ  CX, CX
	JZ     dotdone

dotloop:
	VMOVSD      (SI), X1
	VMOVSD      (BX), X2
	VFMADD231SD X2, X1, X0
	ADDQ        AX, SI
	ADDQ        DX, BX
	DECQ        CX
	JNZ         dotloop

dotdone:
	VMOVSD X0, ret+40(FP)
	RET

// func gemmDot4FMAAsm(dst, a *float64, as int, b *float64, bs, brs int, k int)
//
// Four strided scalar FMA-chain dot products at once: for i in [0, 4),
// dst[i] = fma-chain over p ascending of a[p*as]*b[i*brs+p*bs], from zero.
// Each chain runs in its own xmm accumulator — the per-chain instruction
// sequence (and so the result) is exactly gemmDotFMAAsm's; interleaving four
// independent chains merely fills the FMA pipeline, which a lone
// serially-dependent chain leaves three-quarters idle.
TEXT ·gemmDot4FMAAsm(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ as+16(FP), AX
	MOVQ b+24(FP), BX
	MOVQ bs+32(FP), DX
	MOVQ brs+40(FP), R8
	MOVQ k+48(FP), CX
	SHLQ $3, AX               // a stride in bytes
	SHLQ $3, DX               // b within-chain stride in bytes
	SHLQ $3, R8               // b chain-to-chain stride in bytes
	MOVQ BX, R9               // chain 0 cursor
	LEAQ (BX)(R8*1), R10      // chain 1 cursor
	LEAQ (R10)(R8*1), R11     // chain 2 cursor
	LEAQ (R11)(R8*1), R12     // chain 3 cursor
	VXORPD X0, X0, X0
	VXORPD X1, X1, X1
	VXORPD X2, X2, X2
	VXORPD X3, X3, X3
	TESTQ  CX, CX
	JZ     dot4done

dot4loop:
	VMOVSD      (SI), X4
	VMOVSD      (R9), X5
	VFMADD231SD X5, X4, X0
	VMOVSD      (R10), X6
	VFMADD231SD X6, X4, X1
	VMOVSD      (R11), X7
	VFMADD231SD X7, X4, X2
	VMOVSD      (R12), X8
	VFMADD231SD X8, X4, X3
	ADDQ        AX, SI
	ADDQ        DX, R9
	ADDQ        DX, R10
	ADDQ        DX, R11
	ADDQ        DX, R12
	DECQ        CX
	JNZ         dot4loop

dot4done:
	VMOVSD X0, (DI)
	VMOVSD X1, 8(DI)
	VMOVSD X2, 16(DI)
	VMOVSD X3, 24(DI)
	RET
