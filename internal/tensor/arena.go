package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the size-bucketed tensor arena behind the training hot
// loop. The autodiff graph allocates every intermediate value and gradient
// tensor through an Arena and returns them on Graph.Reset, so an epoch loop
// that recycles its graph reaches a steady state with near-zero tensor
// allocations.
//
// Determinism rule: a buffer handed out by Get is always fully zeroed first,
// so a pooled tensor is indistinguishable from a fresh New tensor. Every
// kernel therefore produces bitwise-identical results whether its operands
// came from the pool or from the garbage collector, at any worker count.

// numClasses bounds the power-of-two size classes. Class c holds buffers
// whose capacity is at least 1<<c floats; 48 classes cover any tensor this
// repository can represent.
const numClasses = 48

// ArenaStats is a snapshot of an arena's traffic counters.
type ArenaStats struct {
	// Hits counts Get calls served from a free list.
	Hits uint64
	// Misses counts Get calls that had to allocate fresh memory.
	Misses uint64
	// Puts counts buffers accepted back into the pool.
	Puts uint64
	// Discards counts Put calls dropped because pooling was disabled or the
	// buffer was unusable.
	Discards uint64
}

// Arena is a concurrency-safe, size-bucketed free list of tensors. The zero
// value is not usable; construct arenas with NewArena. Buffers are bucketed
// by the largest power-of-two capacity they can guarantee, so a Get for n
// elements is served by any buffer whose class covers n.
type Arena struct {
	enabled                      atomic.Bool
	hits, misses, puts, discards atomic.Uint64

	buckets [numClasses]arenaBucket
}

type arenaBucket struct {
	mu   sync.Mutex
	free []*Tensor
}

// NewArena returns an empty arena with pooling enabled.
func NewArena() *Arena {
	a := &Arena{}
	a.enabled.Store(true)
	return a
}

// ceilClass returns the smallest class whose buffers hold n floats.
func ceilClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// floorClass returns the largest class a buffer of the given capacity can
// serve, or -1 when the capacity is zero.
func floorClass(capacity int) int {
	if capacity <= 0 {
		return -1
	}
	return bits.Len(uint(capacity)) - 1
}

// Get returns a zero-filled tensor of the given shape, reusing pooled memory
// when available. It is safe for concurrent use.
func (a *Arena) Get(shape ...int) *Tensor { return a.get(shape) }

// GetLike returns a zero-filled tensor with t's shape, reusing pooled memory
// when available.
func (a *Arena) GetLike(t *Tensor) *Tensor { return a.get(t.shape) }

// minRankCap is the minimum capacity of the shape and stride slices of a
// pooled tensor. Buffers cycle through shapes of different rank as they are
// reused; reserving room for the highest rank in the repository (rank 3, plus
// slack) keeps reinit allocation-free no matter how ranks churn.
const minRankCap = 4

func arenaShape(shape []int) []int {
	c := len(shape)
	if c < minRankCap {
		c = minRankCap
	}
	out := make([]int, len(shape), c)
	copy(out, shape)
	return out
}

func arenaStrides(shape []int) []int {
	c := len(shape)
	if c < minRankCap {
		c = minRankCap
	}
	out := make([]int, len(shape), c)
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		out[i] = s
		s *= shape[i]
	}
	return out
}

func (a *Arena) get(shape []int) *Tensor {
	n := checkShape(shape)
	if !a.enabled.Load() {
		return &Tensor{
			shape:   append([]int(nil), shape...),
			strides: computeStrides(shape),
			Data:    make([]float64, n),
		}
	}
	c := ceilClass(n)
	if c >= numClasses {
		a.misses.Add(1)
		return &Tensor{
			shape:   append([]int(nil), shape...),
			strides: computeStrides(shape),
			Data:    make([]float64, n),
		}
	}
	b := &a.buckets[c]
	b.mu.Lock()
	var t *Tensor
	if k := len(b.free); k > 0 {
		t = b.free[k-1]
		b.free[k-1] = nil
		b.free = b.free[:k-1]
	}
	b.mu.Unlock()
	if t == nil {
		a.misses.Add(1)
		return &Tensor{
			shape:   arenaShape(shape),
			strides: arenaStrides(shape),
			Data:    make([]float64, n, 1<<c),
		}
	}
	a.hits.Add(1)
	t.reinit(shape, n)
	return t
}

// reinit rebinds a pooled tensor to a new shape and zeroes its data. The
// shape and stride slices are reused in place when their capacity allows
// (always, for tensors born in the pool — see minRankCap), so a steady-state
// Get performs no allocation at all.
func (t *Tensor) reinit(shape []int, n int) {
	// A recycled buffer must never serve stale packed panels: drop the
	// packable mark (pool tensors are short-lived op outputs, never weights)
	// and bump the version so any cache entry keyed to a previous life of
	// this pointer can no longer match.
	if t.packable {
		t.packable = false
		t.version++
	}
	t.Data = t.Data[:n]
	for i := range t.Data {
		t.Data[i] = 0
	}
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
	} else {
		t.shape = make([]int, len(shape), minRankCap)
	}
	copy(t.shape, shape)
	if cap(t.strides) >= len(shape) {
		t.strides = t.strides[:len(shape)]
	} else {
		t.strides = make([]int, len(shape), minRankCap)
	}
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= shape[i]
	}
}

// Put returns a tensor's memory to the pool. The caller must be the sole
// owner: the tensor, and any view sharing its backing array, must not be used
// afterwards. Putting the same tensor twice is a fatal aliasing bug, which is
// why only the autodiff graph (which tracks ownership explicitly) calls Put
// in this repository.
func (a *Arena) Put(t *Tensor) {
	if t == nil {
		return
	}
	if !a.enabled.Load() {
		a.discards.Add(1)
		return
	}
	c := floorClass(cap(t.Data))
	if c < 0 || c >= numClasses {
		a.discards.Add(1)
		return
	}
	a.puts.Add(1)
	b := &a.buckets[c]
	b.mu.Lock()
	b.free = append(b.free, t)
	b.mu.Unlock()
}

// Stats returns a snapshot of the arena's hit/miss counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		Hits:     a.hits.Load(),
		Misses:   a.misses.Load(),
		Puts:     a.puts.Load(),
		Discards: a.discards.Load(),
	}
}

// SetEnabled switches pooling on or off. Disabling drains the free lists, so
// a disabled arena holds no memory and Get/Put degrade to plain allocation.
func (a *Arena) SetEnabled(on bool) {
	a.enabled.Store(on)
	if !on {
		a.Drain()
	}
}

// Enabled reports whether pooling is active.
func (a *Arena) Enabled() bool { return a.enabled.Load() }

// Drain empties every free list, releasing pooled memory to the garbage
// collector. Counters are preserved.
func (a *Arena) Drain() {
	for i := range a.buckets {
		b := &a.buckets[i]
		b.mu.Lock()
		for j := range b.free {
			b.free[j] = nil
		}
		b.free = b.free[:0]
		b.mu.Unlock()
	}
}

// Default is the process-wide arena used by the autodiff graph allocator.
// Pooling is on by default; SetPooling(false) reverts every hot loop to
// fresh allocations (the benchmarks compare both modes).
var Default = NewArena()

// Get returns a zeroed tensor of the given shape from the default arena.
func Get(shape ...int) *Tensor { return Default.get(shape) }

// GetLike returns a zeroed tensor shaped like t from the default arena.
func GetLike(t *Tensor) *Tensor { return Default.get(t.shape) }

// Put returns a tensor to the default arena. See Arena.Put for the ownership
// contract.
func Put(t *Tensor) { Default.Put(t) }

// SetPooling toggles the default arena.
func SetPooling(on bool) { Default.SetEnabled(on) }

// PoolingEnabled reports whether the default arena is pooling.
func PoolingEnabled() bool { return Default.Enabled() }
