// Package tensor implements dense row-major float64 tensors and the linear
// algebra needed by the autodiff engine, the neural-network stack, and the
// statistical baselines. It is deliberately small, allocation-conscious, and
// free of external dependencies.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major float64 tensor. The zero value is not usable;
// construct tensors with New, Zeros, FromSlice, or the random constructors.
type Tensor struct {
	shape   []int
	strides []int
	Data    []float64

	// packable marks a long-lived weight matrix whose packed GEMM panels may
	// be cached across calls (see packcache.go). It is opt-in via
	// MarkPackable; op outputs, gradients, and pooled tensors are never
	// packable.
	packable bool
	// version counts in-place mutations of a packable tensor. The pack cache
	// keys entries by (tensor pointer, version), so any bump invalidates every
	// cached panel. Mutating kernels call NoteMutation; the counter follows
	// the same synchronization rules as Data (external synchronization between
	// writers and readers).
	version uint64
}

// MarkPackable declares t a long-lived weight matrix eligible for packed-panel
// caching in the GEMM core. The caller promises that every subsequent in-place
// mutation of t goes through a tensor method or kernel that calls NoteMutation
// (all kernels in this package do); raw writes to Data on a packable tensor
// would leave stale panels in the cache.
func (t *Tensor) MarkPackable() { t.packable = true }

// Packable reports whether t was marked packable.
func (t *Tensor) Packable() bool { return t.packable }

// Version returns t's mutation counter (always 0 for non-packable tensors).
func (t *Tensor) Version() uint64 { return t.version }

// NoteMutation records an in-place mutation of t's data, invalidating any
// cached packed panels. It is a no-op for non-packable tensors, so mutating
// kernels call it unconditionally.
func (t *Tensor) NoteMutation() {
	if t.packable {
		t.version++
	}
}

// CopyDataFrom copies src's elements into t (shapes must match) and records
// the mutation. It is the sanctioned way to overwrite a tensor wholesale —
// parameter restores and state snapshots use it so packed-panel caches never
// serve stale weights.
func (t *Tensor) CopyDataFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyDataFrom length %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
	t.NoteMutation()
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is non-positive, because a malformed shape is always a
// programming error in this codebase.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		Data:    make([]float64, n),
	}
}

// Zeros is an alias of New, provided for readability at call sites that
// emphasize the initial value rather than allocation.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = 1
	}
	return t
}

// Full returns a tensor of the given shape filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data into a tensor of the given shape. The slice is used
// directly (not copied); it panics if the length does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		Data:    data,
	}
}

// Randn returns a tensor with entries drawn i.i.d. from N(0, stddev^2).
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// RandUniform returns a tensor with entries drawn i.i.d. from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Xavier returns a tensor initialized with Glorot-uniform values for a layer
// with the given fan-in and fan-out, the initialization used throughout the
// paper's architecture (sigmoid activations).
func Xavier(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, shape...)
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			// Format a copy: handing shape itself to fmt would make the
			// parameter escape, forcing every variadic Get/New call site to
			// heap-allocate its shape literal just to cover this panic path.
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank-%d tensor", idx, len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
	t.NoteMutation()
}

// Add2 adds v to the element at the given multi-index.
func (t *Tensor) Add2(v float64, idx ...int) {
	t.Data[t.offset(idx)] += v
	t.NoteMutation()
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data. It
// panics when the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		Data:    t.Data,
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
	t.NoteMutation()
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces each element x with f(x), in place, and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	t.NoteMutation()
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	c := t.Clone()
	return c.Apply(f)
}

// String renders small tensors fully and large tensors by shape summary.
func (t *Tensor) String() string {
	if t.Size() > 64 {
		return fmt.Sprintf("Tensor(shape=%v, size=%d)", t.shape, t.Size())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	b.WriteString("[")
	for i, v := range t.Data {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteString("]")
	return b.String()
}
