package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// TestArenaReuseHitAndZero checks the arena's core contract: a Put buffer is
// served to the next covering Get, fully zeroed, with the requested shape.
func TestArenaReuseHitAndZero(t *testing.T) {
	a := NewArena()
	x := a.Get(3, 5)
	for i := range x.Data {
		x.Data[i] = float64(i) + 1 // dirty it
	}
	data := &x.Data[0]
	a.Put(x)

	y := a.Get(15) // same size class, different rank
	if &y.Data[0] != data {
		t.Fatal("Get after Put did not reuse the pooled buffer")
	}
	if y.Rank() != 1 || y.Dim(0) != 15 {
		t.Fatalf("reused tensor has shape %v, want [15]", y.Shape())
	}
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	st := a.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 put", st)
	}
}

// TestArenaClassCoverage checks the bucketing invariant: a buffer returned to
// the pool is only handed to requests its capacity can satisfy.
func TestArenaClassCoverage(t *testing.T) {
	a := NewArena()
	small := a.Get(3) // class 2, cap 4
	a.Put(small)
	big := a.Get(100) // class 7: must miss, not reuse the small buffer
	if len(big.Data) != 100 {
		t.Fatalf("len = %d, want 100", len(big.Data))
	}
	st := a.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits, 2 misses", st)
	}
	// A smaller request within the same class is served by the big buffer.
	a.Put(big)
	again := a.Get(70)
	if st := a.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want a hit for the covered request", st)
	}
	if len(again.Data) != 70 {
		t.Fatalf("len = %d, want 70", len(again.Data))
	}
}

// TestArenaDisabled checks that a disabled arena degrades to plain
// allocation: Gets allocate, Puts discard, and the free lists drain.
func TestArenaDisabled(t *testing.T) {
	a := NewArena()
	a.Put(a.Get(8))
	a.SetEnabled(false)
	x := a.Get(8)
	if st := a.Stats(); st.Hits != 0 {
		t.Fatalf("disabled arena served a pooled buffer: %+v", st)
	}
	a.Put(x)
	if st := a.Stats(); st.Discards != 1 {
		t.Fatalf("disabled arena accepted a Put: %+v", st)
	}
	a.SetEnabled(true)
	a.Get(8)
	// The pre-disable buffer was drained, so this Get must miss.
	if st := a.Stats(); st.Hits != 0 {
		t.Fatalf("drained arena served a stale buffer: %+v", st)
	}
}

// TestArenaConcurrentStress hammers one arena from many goroutines with
// mixed shapes, verifying under the race detector that the free lists are
// safe and that no two live tensors ever share a backing array. Each worker
// writes a unique tag into its tensors and checks the tag is intact before
// Put — aliasing between concurrent owners would trip it.
func TestArenaConcurrentStress(t *testing.T) {
	a := NewArena()
	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//ovslint:ignore nakedgo the stress test needs unsynchronized goroutines; parallel's deterministic chunking would serialize the contention under test
		go func(tag float64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tag)))
			live := make([]*Tensor, 0, 8)
			for i := 0; i < iters; i++ {
				switch {
				case len(live) > 4 || (len(live) > 0 && rng.Intn(2) == 0):
					k := rng.Intn(len(live))
					x := live[k]
					for j := range x.Data {
						if x.Data[j] != tag {
							t.Errorf("tensor corrupted: got %v, want tag %v", x.Data[j], tag)
							return
						}
					}
					live = append(live[:k], live[k+1:]...)
					a.Put(x)
				default:
					var x *Tensor
					if rng.Intn(2) == 0 {
						x = a.Get(1 + rng.Intn(64))
					} else {
						x = a.Get(1+rng.Intn(8), 1+rng.Intn(8))
					}
					for j, v := range x.Data {
						if v != 0 {
							t.Errorf("Get returned dirty buffer at %d: %v", j, v)
							return
						}
						x.Data[j] = tag
					}
					live = append(live, x)
				}
			}
			for _, x := range live {
				a.Put(x)
			}
		}(float64(w + 1))
	}
	wg.Wait()
	st := a.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("stress test recorded no arena traffic")
	}
}
