package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZeroFill(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape: %v", x.Shape())
	}
	if x.Size() != 24 {
		t.Fatalf("size = %d, want 24", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}, {3, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 1, 2)
	if got := x.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	// Row-major layout: element (1,2) is at offset 1*4+2.
	if x.Data[6] != 7.5 {
		t.Fatalf("row-major layout violated: %v", x.Data)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	_ = x.At(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy the slice")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	c := x.Clone()
	c.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatal("Reshape must share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong element count did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestMatMulHandComputed(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !AllClose(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if !AllClose(MatMul(a, id), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !AllClose(MatMul(id, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatVecAgainstMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 5, 3)
	v := Randn(rng, 1, 3)
	got := MatVec(a, v)
	want := MatMul(a, v.Reshape(3, 1)).Reshape(5)
	if !AllClose(got, want, 1e-12) {
		t.Fatalf("MatVec = %v, want %v", got, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 4, 7)
	if !AllClose(Transpose(Transpose(a)), a, 0) {
		t.Fatal("transpose is not an involution")
	}
	if got := Transpose(a).At(2, 3); got != a.At(3, 2) {
		t.Fatal("transpose element mismatch")
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if !AllClose(Add(a, b), FromSlice([]float64{5, 7, 9}, 3), 0) {
		t.Fatal("Add wrong")
	}
	if !AllClose(Sub(b, a), FromSlice([]float64{3, 3, 3}, 3), 0) {
		t.Fatal("Sub wrong")
	}
	if !AllClose(Mul(a, b), FromSlice([]float64{4, 10, 18}, 3), 0) {
		t.Fatal("Mul wrong")
	}
	if !AllClose(Scale(a, 2), FromSlice([]float64{2, 4, 6}, 3), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	got := AddRowVector(a, v)
	want := FromSlice([]float64{11, 22, 13, 24}, 2, 2)
	if !AllClose(got, want, 0) {
		t.Fatalf("AddRowVector = %v", got)
	}
}

func TestSumRowsSumCols(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if !AllClose(SumRows(a), FromSlice([]float64{5, 7, 9}, 3), 0) {
		t.Fatal("SumRows wrong")
	}
	if !AllClose(SumCols(a), FromSlice([]float64{6, 15}, 2), 0) {
		t.Fatal("SumCols wrong")
	}
}

func TestRowSetRow(t *testing.T) {
	a := New(3, 2)
	a.SetRow(1, FromSlice([]float64{5, 6}, 2))
	if !AllClose(a.Row(1), FromSlice([]float64{5, 6}, 2), 0) {
		t.Fatal("Row/SetRow round trip failed")
	}
	if a.At(0, 0) != 0 || a.At(2, 1) != 0 {
		t.Fatal("SetRow touched other rows")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	v := FromSlice([]float64{1, 2, 3, 4}, 4)
	s := Softmax(v)
	if math.Abs(s.Sum()-1) > 1e-12 {
		t.Fatalf("softmax sum = %v, want 1", s.Sum())
	}
	for i := 1; i < 4; i++ {
		if s.Data[i] <= s.Data[i-1] {
			t.Fatal("softmax not monotone in inputs")
		}
	}
	// Shift invariance.
	s2 := Softmax(FromSlice([]float64{101, 102, 103, 104}, 4))
	if !AllClose(s, s2, 1e-12) {
		t.Fatal("softmax not shift invariant")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	s := Softmax(FromSlice([]float64{1000, 1001, 999}, 3))
	if math.IsNaN(s.Sum()) || math.Abs(s.Sum()-1) > 1e-9 {
		t.Fatalf("softmax unstable for large inputs: %v", s)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{-1, 4, 2, 3}, 4)
	if a.Sum() != 8 || a.Mean() != 2 || a.Max() != 4 || a.Min() != -1 {
		t.Fatalf("reductions wrong: sum=%v mean=%v max=%v min=%v", a.Sum(), a.Mean(), a.Max(), a.Min())
	}
}

func TestMSEAndNorm(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	if got := MSE(a, b); got != 4 {
		t.Fatalf("MSE = %v, want 4", got)
	}
	if got := FromSlice([]float64{3, 4}, 2).Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestXavierRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := Xavier(rng, 10, 20, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	if w.Max() > limit || w.Min() < -limit {
		t.Fatalf("Xavier out of range [%v, %v]: max=%v min=%v", -limit, limit, w.Min(), w.Max())
	}
	if w.Max() < limit*0.5 {
		t.Fatal("Xavier suspiciously narrow; init likely wrong")
	}
}

func TestSolveHandComputed(t *testing.T) {
	a := FromSlice([]float64{2, 1, 1, 3}, 2, 2)
	b := FromSlice([]float64{3, 5}, 2)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromSlice([]float64{0.8, 1.4}, 2)
	if !AllClose(x, want, 1e-10) {
		t.Fatalf("Solve = %v, want %v", x, want)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromSlice([]float64{1, 2, 2, 4}, 2, 2)
	if _, err := Solve(a, FromSlice([]float64{1, 2}, 2)); err == nil {
		t.Fatal("Solve on singular matrix returned no error")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a pivot swap.
	a := FromSlice([]float64{0, 1, 1, 0}, 2, 2)
	x, err := Solve(a, FromSlice([]float64{2, 3}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(x, FromSlice([]float64{3, 2}, 2), 1e-12) {
		t.Fatalf("Solve with pivoting = %v", x)
	}
}

func TestRidgeRecoversLinearMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	wTrue := Randn(rng, 1, 3, 2)
	x := Randn(rng, 1, 50, 3)
	y := MatMul(x, wTrue)
	w, err := Ridge(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(w, wTrue, 1e-6) {
		t.Fatalf("Ridge failed to recover exact linear map:\n got %v\nwant %v", w, wTrue)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 1, 20, 4)
	y := Randn(rng, 1, 20, 1)
	wSmall, err := Ridge(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	wBig, err := Ridge(x, y, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if wBig.Norm2() >= wSmall.Norm2() {
		t.Fatalf("large lambda did not shrink weights: %v >= %v", wBig.Norm2(), wSmall.Norm2())
	}
}

// Property-based tests.

func TestQuickAddCommutative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), raw...), len(raw))
		b := FromSlice(reversed(raw), len(raw))
		return AllClose(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleDistributesOverAdd(t *testing.T) {
	f := func(raw []float64, s float64) bool {
		if len(raw) == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		if math.Abs(s) > 1e100 {
			return true
		}
		a := FromSlice(append([]float64(nil), raw...), len(raw))
		b := FromSlice(reversed(raw), len(raw))
		lhs := Scale(Add(a, b), s)
		rhs := Add(Scale(a, s), Scale(b, s))
		tol := 1e-9 * (1 + math.Abs(s)) * (1 + a.Norm2() + b.Norm2())
		return AllClose(lhs, rhs, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSoftmaxAlwaysDistribution(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		clean := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			clean[i] = math.Mod(v, 500) // keep exp() in range
		}
		s := Softmax(FromSlice(clean, len(clean)))
		sum := 0.0
		for _, v := range s.Data {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposePreservesMatMul(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		if !AllClose(lhs, rhs, 1e-10) {
			t.Fatalf("(AB)ᵀ != BᵀAᵀ for %dx%dx%d", m, k, n)
		}
	}
}

func reversed(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[len(v)-1-i] = x
	}
	return out
}
