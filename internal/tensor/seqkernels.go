package tensor

import "math"

// This file exports the three slice-level linear-algebra primitives the fused
// LSTM cell (autodiff.LSTMCell) is built from. Each one reproduces, exactly,
// the per-element FMA sequence the corresponding small MatMul entry point
// performs through gemmNaive — same kernels (the assembly row/dot helpers
// when available, math.FMA otherwise), same ascending-k order, same
// sum-then-one-add accumulate association — so a fused cell is
// bitwise-identical to the unfused graph it replaces.

// VecMatTo computes dst = x · B for a vector x of length k and a row-major
// k×n matrix b, overwriting dst[0:n]. It is the hidden-state projection
// h·Wh of one LSTM step: the same row kernel MatMulTo's naive path runs for a
// (1×k)·(k×n) product.
func VecMatTo(dst, x, b []float64, k, n int) {
	_ = dst[n-1]
	if gemmHasAsm {
		gemmRowFMAAsm(&dst[0], &x[0], 1, &b[0], n, k, n)
		return
	}
	// Portable mirror of gemmNaiveNN for a single row: zero the output row,
	// then one FMA per cell per ascending k step.
	for j := range dst[:n] {
		dst[j] = 0
	}
	for p, av := range x[:k] {
		brow := b[p*n : p*n+n]
		for j, bv := range brow {
			dst[j] = math.FMA(av, bv, dst[j])
		}
	}
}

// MatVecNTAcc accumulates dst[j] += Σ_p g[p]·b[j,p] for a vector g of length
// k and a row-major n×k matrix b. It is the dh(t-1) = dgates·Whᵀ backward
// rule of one LSTM step: the same strided-dot kernel MatMulNTAcc's naive path
// runs for a (1×k)·(k×n) product against a transposed B view, with the bare
// k-sum folded into dst by a single add per element.
func MatVecNTAcc(dst, g, b []float64, n, k int) {
	_ = dst[n-1]
	j := 0
	if gemmHasAsm {
		// Four rows of b at a time: each output element keeps its own scalar
		// ascending-k chain (bitwise-identical to the one-at-a-time kernel);
		// the interleave exists only to fill the FMA pipeline, which a single
		// serially-dependent chain leaves mostly idle.
		var s4 [4]float64
		for ; j+4 <= n; j += 4 {
			gemmDot4FMAAsm(&s4[0], &g[0], 1, &b[j*k], 1, k, k)
			dst[j] += s4[0]
			dst[j+1] += s4[1]
			dst[j+2] += s4[2]
			dst[j+3] += s4[3]
		}
		for ; j < n; j++ {
			s := gemmDotFMAAsm(&g[0], 1, &b[j*k], 1, k)
			dst[j] += s
		}
		return
	}
	for ; j < n; j++ {
		brow := b[j*k : j*k+k]
		var s float64
		for p, gv := range g[:k] {
			s = math.FMA(gv, brow[p], s)
		}
		dst[j] += s
	}
}

// OuterAccFMA accumulates the outer product dst += x ⊗ y for vectors x (m)
// and y (n) into a row-major m×n matrix. It is the dWh += h(t-1)ᵀ·dgates
// backward rule of one LSTM step: MatMulTNAcc's naive path with k=1 computes
// each element as a single-step FMA chain from zero (the row kernel's bare
// sum) followed by one add into dst — reproduced here without the scratch
// row.
func OuterAccFMA(dst, x, y []float64, m, n int) {
	_ = dst[m*n-1]
	if gemmHasAsm {
		// One k=1 row-kernel call per output row: the asm zero-initializes
		// the scratch row to the bare FMA(x_i, y_j, 0) products, and the add
		// folds them in — the same scratch-then-one-add sequence
		// gemmNaiveAsm's accumulate path performs.
		scratch := Get(n)
		row := scratch.Data
		for i := 0; i < m; i++ {
			gemmRowFMAAsm(&row[0], &x[i], 1, &y[0], n, 1, n)
			drow := dst[i*n : i*n+n]
			for j, s := range row[:n] {
				drow[j] += s
			}
		}
		Put(scratch)
		return
	}
	for i := 0; i < m; i++ {
		drow := dst[i*n : i*n+n]
		xv := x[i]
		for j, yv := range y[:n] {
			s := math.FMA(xv, yv, 0)
			drow[j] += s
		}
	}
}
