package tensor

import (
	"fmt"
	"math"
)

// Solve solves the linear system A x = b for x, where A is a square rank-2
// tensor (n×n) and b is rank-1 of length n, using Gaussian elimination with
// partial pivoting. It returns an error for singular (or numerically
// singular) systems. A and b are not modified.
func Solve(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || a.shape[0] != a.shape[1] {
		return nil, fmt.Errorf("tensor: Solve requires a square matrix, got %v", a.shape)
	}
	n := a.shape[0]
	if b.Rank() != 1 || b.shape[0] != n {
		return nil, fmt.Errorf("tensor: Solve rhs shape %v does not match matrix %v", b.shape, a.shape)
	}
	// Work on copies; augment implicitly.
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.Data[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("tensor: Solve matrix is singular at column %d", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x.Data[col], x.Data[pivot] = x.Data[pivot], x.Data[col]
		}
		pv := m.Data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m.Data[r*n+col] / pv
			//ovslint:ignore floateq exact-zero factor makes the elimination row a no-op; any nonzero factor must be applied
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x.Data[r] -= f * x.Data[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x.Data[r]
		for j := r + 1; j < n; j++ {
			s -= m.Data[r*n+j] * x.Data[j]
		}
		x.Data[r] = s / m.Data[r*n+r]
	}
	return x, nil
}

// Ridge solves the regularized least-squares problem
//
//	min_W || X W - Y ||^2 + lambda ||W||^2
//
// where X is (s×p), Y is (s×q), returning W of shape (p×q). It forms the
// normal equations (XᵀX + λI) W = XᵀY and solves them column by column.
// This is the estimator used by the GLS baseline of §V-F to fit the linear
// TOD→volume assignment matrix.
func Ridge(x, y *Tensor, lambda float64) (*Tensor, error) {
	if x.Rank() != 2 || y.Rank() != 2 {
		return nil, fmt.Errorf("tensor: Ridge requires rank-2 operands, got %v, %v", x.shape, y.shape)
	}
	if x.shape[0] != y.shape[0] {
		return nil, fmt.Errorf("tensor: Ridge sample counts differ: %v vs %v", x.shape, y.shape)
	}
	p, q := x.shape[1], y.shape[1]
	xt := Transpose(x)
	xtx := MatMul(xt, x)
	for i := 0; i < p; i++ {
		xtx.Data[i*p+i] += lambda
	}
	xty := MatMul(xt, y)
	w := New(p, q)
	col := New(p)
	for j := 0; j < q; j++ {
		for i := 0; i < p; i++ {
			col.Data[i] = xty.Data[i*q+j]
		}
		sol, err := Solve(xtx, col)
		if err != nil {
			return nil, fmt.Errorf("tensor: Ridge column %d: %w", j, err)
		}
		for i := 0; i < p; i++ {
			w.Data[i*q+j] = sol.Data[i]
		}
	}
	return w, nil
}
