//go:build !amd64

package tensor

// gemmHasAsm is false on platforms without a vector micro-kernel; the packed
// path runs the portable gemmMicroGo kernel, which computes the identical
// per-element FMA sequence (math.FMA is correctly rounded on every platform).
const gemmHasAsm = false

// gemmMicroAsm is never called when gemmHasAsm is false; this stub keeps the
// dispatch in gemmMacro compiling on all platforms.
func gemmMicroAsm(c *float64, ldc int, ap, bp *float64, kc int, load bool) {
	panic("tensor: gemmMicroAsm called without assembly support")
}

// gemmRowFMAAsm and gemmDotFMAAsm are likewise unreachable without assembly
// support; the naive dispatch takes the portable math.FMA kernels instead.
func gemmRowFMAAsm(dst, a *float64, as int, b *float64, bs int, k, n int) {
	panic("tensor: gemmRowFMAAsm called without assembly support")
}

func gemmDotFMAAsm(a *float64, as int, b *float64, bs int, k int) float64 {
	panic("tensor: gemmDotFMAAsm called without assembly support")
}

func gemmDot4FMAAsm(dst, a *float64, as int, b *float64, bs, brs int, k int) {
	panic("tensor: gemmDot4FMAAsm called without assembly support")
}
