package tensor

import "sync"

// This file implements the persistent packed-panel cache of the GEMM core.
//
// The blocked GEMM path (gemm.go) packs its B operand into micro-panels on
// every call. For activations that is unavoidable — the data changes every
// forward pass — but the B operand of the training hot loop's large products
// is very often a weight matrix (Dense.W, LSTM Wx/Wh) that changes exactly
// once per optimizer step. The cache stores the fully packed B layout of such
// matrices keyed by (tensor pointer, orientation) and validated by the
// tensor's mutation version (see Tensor.MarkPackable/NoteMutation), so a
// weight repacks once per update instead of once per product.
//
// Scope and invariants:
//
//   - Only B-side operands are cached. A-side packing is keyed by the output
//     row block and interleaved with the parallel consumption loop; caching it
//     would buy little (the A operand of every hot product is an activation)
//     and cost a second keying scheme.
//   - The cached bytes are exactly the packB output for every (jc, pc) block
//     in the blocked loop order, so a cache hit feeds the micro-kernel the
//     identical panel bytes a fresh pack would — results are bitwise-identical
//     with the cache on, off, hit, or missed.
//   - Entries pin while a GEMM is reading them: eviction and invalidation
//     never return a buffer to the arena while any goroutine consumes it. The
//     releasing reader returns the buffer of an entry that died while pinned.
//   - The cache is byte-capped with least-recently-used eviction; evicted and
//     invalidated buffers go back to the tensor arena (they were drawn from
//     it), so cache churn recycles instead of allocating.
//
// Concurrency: one mutex guards the map, the byte budget, and every entry's
// pin count. Lookups are a map probe under the lock; packing happens at most
// once per (tensor, orientation, version) and also runs under the lock — the
// matrices involved are weights (a few hundred KiB at most), and serializing
// the rare repack is far simpler than per-entry publication protocols. The
// blocked path is only entered for products of ≥ gemmBlockedMin scalar ops,
// so the lock is never in a per-timestep hot loop.

// PackCacheStats is a snapshot of the pack cache's traffic counters.
type PackCacheStats struct {
	// Hits counts acquisitions served by a valid cached pack.
	Hits uint64
	// Misses counts acquisitions that had to pack (no entry, or capacity
	// admitted a new one).
	Misses uint64
	// Invalidations counts entries dropped because the source tensor's
	// version moved past them.
	Invalidations uint64
	// Evictions counts entries dropped by the LRU byte cap.
	Evictions uint64
	// Bytes is the current cached payload size in bytes.
	Bytes int64
	// Entries is the current live entry count.
	Entries int
}

type packKey struct {
	t *Tensor
	// trans distinguishes the two B orientations the entry points produce:
	// false for row-major B (MatMulTo, MatMulTNAcc), true for the transposed
	// view of MatMulNTAcc. A weight used in forward and backward products is
	// cached once per orientation.
	trans bool
}

type packEntry struct {
	version uint64
	k, n    int
	buf     *Tensor
	pins    int
	dead    bool
	lastUse uint64
}

type packCacheState struct {
	mu      sync.Mutex
	enabled bool
	entries map[packKey]*packEntry
	bytes   int64
	max     int64
	clock   uint64

	hits, misses, invalidations, evictions uint64
}

// packCacheDefaultCap bounds the cache payload. The largest weight in the
// repository's configurations is a few MiB packed; 32 MiB leaves room for
// every layer of a large model in both orientations before LRU pressure.
const packCacheDefaultCap = 32 << 20

var packs = packCacheState{
	enabled: true,
	entries: map[packKey]*packEntry{},
	max:     packCacheDefaultCap,
}

// packedCols returns the padded column count of a fully packed B matrix with
// n logical columns: every full gemmNC block is gemmNC wide, and a trailing
// partial block rounds up to the micro-panel width gemmNR.
func packedCols(n int) int {
	full := n / gemmNC * gemmNC
	rem := n - full
	if rem == 0 {
		return full
	}
	return full + (rem+gemmNR-1)/gemmNR*gemmNR
}

// packWholeB lays the entire k×n logical B view into dst as the concatenation
// of packB outputs for every (jc, pc) block in the blocked loop order. Block
// (jc, pc) starts at offset jc*k + pc*ncPad(jc): every column block before jc
// is a full gemmNC wide, and within a column block the pc panels are kc rows
// of ncPad floats each.
func packWholeB(dst []float64, b gemmView, k, n int) {
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		ncPad := (nc + gemmNR - 1) / gemmNR * gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(dst[jc*k+pc*ncPad:], b, pc, jc, kc, nc)
		}
	}
}

// acquirePack returns a pinned entry holding the packed form of t viewed as b
// (a k×n logical matrix), packing on first use or after invalidation. It
// returns nil when caching is off or the pack alone would exceed the byte
// cap; the caller then packs per-block as before. Callers must balance every
// non-nil return with releasePack.
func acquirePack(t *Tensor, b gemmView, k, n int) *packEntry {
	size := packedCols(n) * k
	bytes := int64(size) * 8
	c := &packs
	c.mu.Lock()
	if !c.enabled || bytes > c.max {
		c.mu.Unlock()
		return nil
	}
	key := packKey{t: t, trans: b.cs != 1}
	if e := c.entries[key]; e != nil {
		if e.version == t.version && e.k == k && e.n == n {
			e.pins++
			c.clock++
			e.lastUse = c.clock
			c.hits++
			c.mu.Unlock()
			return e
		}
		c.invalidations++
		c.dropLocked(key, e)
	}
	c.misses++
	e := &packEntry{version: t.version, k: k, n: n, buf: Get(size), pins: 1}
	c.clock++
	e.lastUse = c.clock
	c.entries[key] = e
	c.bytes += bytes
	c.evictLocked()
	packWholeB(e.buf.Data, b, k, n)
	c.mu.Unlock()
	return e
}

// releasePack unpins an entry acquired by acquirePack, returning its buffer
// to the arena if the entry died (was evicted or invalidated) while pinned.
func releasePack(e *packEntry) {
	c := &packs
	c.mu.Lock()
	e.pins--
	if e.dead && e.pins == 0 {
		Put(e.buf)
		e.buf = nil
	}
	c.mu.Unlock()
}

// dropLocked removes an entry from the map and byte budget. The buffer
// returns to the arena immediately when unpinned; a pinned entry is marked
// dead and the last releasePack returns it.
func (c *packCacheState) dropLocked(key packKey, e *packEntry) {
	delete(c.entries, key)
	c.bytes -= int64(packedCols(e.n)*e.k) * 8
	if e.pins == 0 {
		Put(e.buf)
		e.buf = nil
	} else {
		e.dead = true
	}
}

// evictLocked enforces the byte cap by dropping least-recently-used unpinned
// entries. Selection is the minimum of the strictly increasing lastUse ticks,
// so the outcome is independent of map iteration order.
func (c *packCacheState) evictLocked() {
	for c.bytes > c.max {
		var victimKey packKey
		var victim *packEntry
		for key, e := range c.entries {
			if e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimKey = e, key
			}
		}
		if victim == nil {
			return // everything pinned; readers drain before the next acquire
		}
		c.evictions++
		c.dropLocked(victimKey, victim)
	}
}

// SetPackCaching switches the pack cache on or off. Disabling drops every
// entry (pinned ones drain through their readers), so a disabled cache holds
// no arena memory. Results are identical either way; only repack work changes.
func SetPackCaching(on bool) {
	c := &packs
	c.mu.Lock()
	c.enabled = on
	if !on {
		c.flushLocked()
	}
	c.mu.Unlock()
}

// PackCachingEnabled reports whether the pack cache is active.
func PackCachingEnabled() bool {
	c := &packs
	c.mu.Lock()
	on := c.enabled
	c.mu.Unlock()
	return on
}

// SetPackCacheCapacity sets the cache's payload byte cap and evicts down to
// it. Packs larger than the cap bypass the cache entirely.
func SetPackCacheCapacity(bytes int64) {
	c := &packs
	c.mu.Lock()
	c.max = bytes
	c.evictLocked()
	c.mu.Unlock()
}

// FlushPackCache drops every cached pack (tests use it to reset state; a
// long-lived process never needs to).
func FlushPackCache() {
	c := &packs
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

func (c *packCacheState) flushLocked() {
	for key, e := range c.entries {
		c.dropLocked(key, e)
	}
}

// PackCacheStatsSnapshot returns the cache's current counters.
func PackCacheStatsSnapshot() PackCacheStats {
	c := &packs
	c.mu.Lock()
	st := PackCacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Bytes:         c.bytes,
		Entries:       len(c.entries),
	}
	c.mu.Unlock()
	return st
}
