package tensor

import (
	"math"
	"math/rand"
	"testing"

	"ovs/internal/parallel"
)

// gemmShapes are the (m, n, k) triples the equivalence tests sweep: tiny and
// degenerate shapes, shapes straddling the gemmMR/gemmNR/gemmKC tile
// boundaries by ±1, ragged non-multiples, and a few square sizes.
func gemmShapes() [][3]int {
	return [][3]int{
		{1, 1, 1},
		{1, 5, 3},
		{3, 1, 7},
		{3, 5, 7},
		{gemmMR, gemmNR, 4},
		{gemmMR - 1, gemmNR + 1, 5},
		{gemmMR + 1, gemmNR - 1, gemmKC + 1},
		{17, 19, 23},
		{gemmMC, gemmNC, gemmKC},
		{gemmMC + 1, gemmNC - 1, gemmKC - 1},
		{33, 129, 65},
		{65, 67, 3},
		{100, 100, 100},
		{256, 64, 32},
	}
}

// forceBlocked routes every product through the packed blocked path for the
// duration of fn, regardless of size.
func forceBlocked(t *testing.T, fn func()) {
	t.Helper()
	old := gemmBlockedMin
	gemmBlockedMin = 1
	defer func() { gemmBlockedMin = old }()
	fn()
}

// bitwiseEqual distinguishes -0.0 from +0.0 and compares NaN payloads, which
// AllClose(·, ·, 0) would conflate; the determinism contract is exact bits.
func bitwiseEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// refProduct is the test-local oracle, written independently of the
// production kernels: per element, the ascending-k FMA chain from zero,
// followed by one add for the accumulate forms. aT / bT select transposed
// reads (A is kxm when aT, B is nxk when bT).
func refProduct(dst, a, b *Tensor, m, n, k int, aT, bT, acc bool) {
	at := func(i, p int) float64 {
		if aT {
			return a.Data[p*m+i]
		}
		return a.Data[i*k+p]
	}
	bt := func(p, j int) float64 {
		if bT {
			return b.Data[j*k+p]
		}
		return b.Data[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s = math.FMA(at(i, p), bt(p, j), s)
			}
			if acc {
				dst.Data[i*n+j] += s
			} else {
				dst.Data[i*n+j] = s
			}
		}
	}
}

// TestGEMMBlockedMatchesReference checks all four entry points, on both the
// blocked and naive paths, against the independent oracle — bitwise — for
// every ragged shape, at Workers∈{1,2,GOMAXPROCS}, with the arena on and
// off.
func TestGEMMBlockedMatchesReference(t *testing.T) {
	oldWorkers := parallel.Workers()
	defer parallel.SetWorkers(oldWorkers)
	defer SetPooling(true)

	rng := rand.New(rand.NewSource(42))
	for _, pooling := range []bool{true, false} {
		SetPooling(pooling)
		for _, shape := range gemmShapes() {
			m, n, k := shape[0], shape[1], shape[2]
			a := RandUniform(rng, -1, 1, m, k)
			b := RandUniform(rng, -1, 1, k, n)
			aT := RandUniform(rng, -1, 1, k, m) // A operand of TNAcc, stored kxm
			bT := RandUniform(rng, -1, 1, n, k) // B operand of NTAcc, stored nxk
			seed := RandUniform(rng, -1, 1, m, n)

			wantTo := New(m, n)
			refProduct(wantTo, a, b, m, n, k, false, false, false)
			wantNT := seed.Clone()
			refProduct(wantNT, a, bT, m, n, k, false, true, true)
			wantTN := seed.Clone()
			refProduct(wantTN, aT, b, m, n, k, true, false, true)

			check := func(label string, want, got *Tensor) {
				t.Helper()
				if !bitwiseEqual(got, want) {
					t.Fatalf("pooling=%v shape=%dx%dx%d workers=%d: %s differs bitwise from reference",
						pooling, m, n, k, parallel.Workers(), label)
				}
			}
			for _, w := range workerCounts() {
				parallel.SetWorkers(w)
				// Default dispatch (small shapes take the naive path).
				check("MatMul", wantTo, MatMul(a, b))
				check("MatMulTo", wantTo, MatMulTo(New(m, n), a, b))
				check("MatMulNTAcc", wantNT, MatMulNTAcc(seed.Clone(), a, bT))
				check("MatMulTNAcc", wantTN, MatMulTNAcc(seed.Clone(), aT, b))
				// Forced blocked path.
				forceBlocked(t, func() {
					check("blocked MatMul", wantTo, MatMul(a, b))
					check("blocked MatMulTo", wantTo, MatMulTo(New(m, n), a, b))
					check("blocked MatMulNTAcc", wantNT, MatMulNTAcc(seed.Clone(), a, bT))
					check("blocked MatMulTNAcc", wantTN, MatMulTNAcc(seed.Clone(), aT, b))
				})
			}
		}
	}
}

// TestGEMMBlockedMatchesNaiveSpecialValues pushes signed zeros, infinities
// and NaNs through both paths: the blocked kernel must reproduce the naive
// reference's bits even where the old zero-skip style shortcuts would have
// diverged.
func TestGEMMBlockedMatchesNaiveSpecialValues(t *testing.T) {
	m, n, k := 9, 11, gemmKC+3 // two K panels on the blocked path
	a := New(m, k)
	b := New(k, n)
	rng := rand.New(rand.NewSource(7))
	specials := []float64{0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1), math.NaN()}
	for i := range a.Data {
		a.Data[i] = specials[rng.Intn(len(specials))]
	}
	for i := range b.Data {
		b.Data[i] = specials[rng.Intn(len(specials))]
	}
	want := MatMul(a, b) // small path: naive reference
	forceBlocked(t, func() {
		got := MatMul(a, b)
		if !bitwiseEqual(got, want) {
			t.Fatal("blocked path differs bitwise from naive reference on special values")
		}
	})
}

// TestGEMMAccSumThenAdd pins the accumulate association: the k-sum must be
// computed from zero and folded into dst with exactly one add, so that
// accumulating into an existing buffer equals computing the bare product and
// adding it — the invariant the autodiff Fork/Ref/Join gradient path relies
// on for worker-count invariance.
func TestGEMMAccSumThenAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][3]int{{5, 7, 3}, {33, 29, gemmKC + 5}} {
		m, n, k := shape[0], shape[1], shape[2]
		a := RandUniform(rng, -1, 1, m, k)
		bT := RandUniform(rng, -1, 1, n, k)
		seed := RandUniform(rng, -1, 1, m, n)
		run := func() {
			direct := MatMulNTAcc(seed.Clone(), a, bT)
			bare := MatMulNTAcc(New(m, n), a, bT)
			indirect := AddInPlace(seed.Clone(), bare)
			if !bitwiseEqual(direct, indirect) {
				t.Fatalf("shape=%dx%dx%d: acc into seed differs from bare product + add", m, n, k)
			}
		}
		run()
		forceBlocked(t, run)
	}
}

// The GEMM shape-sweep benchmark lives in the repository root bench file
// (BenchmarkGEMM in bench_test.go), where cmd/ovsbench picks it up for
// BENCH_4.json.
