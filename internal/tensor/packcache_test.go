package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// withCleanPackCache runs fn against a flushed, enabled, default-capacity
// pack cache and restores that state afterwards, so cache tests neither see
// nor leave residue.
func withCleanPackCache(t *testing.T, fn func()) {
	t.Helper()
	FlushPackCache()
	SetPackCaching(true)
	SetPackCacheCapacity(packCacheDefaultCap)
	defer func() {
		FlushPackCache()
		SetPackCaching(true)
		SetPackCacheCapacity(packCacheDefaultCap)
	}()
	fn()
}

// statsDelta returns counter movement since before.
func statsDelta(before PackCacheStats) PackCacheStats {
	now := PackCacheStatsSnapshot()
	return PackCacheStats{
		Hits:          now.Hits - before.Hits,
		Misses:        now.Misses - before.Misses,
		Invalidations: now.Invalidations - before.Invalidations,
		Evictions:     now.Evictions - before.Evictions,
		Bytes:         now.Bytes,
		Entries:       now.Entries,
	}
}

// TestPackCacheBitwiseAllOrientations drives every GEMM entry point through
// the blocked path with a packable B, twice (miss then hit), and demands the
// results match the uncached run bit for bit.
func TestPackCacheBitwiseAllOrientations(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	withCleanPackCache(t, func() {
		forceBlocked(t, func() {
			for _, shape := range [][3]int{{9, 20, 13}, {33, 129, 65}, {gemmMC + 1, gemmNC + 3, gemmKC + 1}} {
				m, n, k := shape[0], shape[1], shape[2]
				a := Randn(rng, 1, m, k)
				aT := Randn(rng, 1, k, m)
				b := Randn(rng, 1, k, n)
				bT := Randn(rng, 1, n, k)
				seed := Randn(rng, 1, m, n)

				wantTo := MatMulTo(New(m, n), a, b)
				wantNT := MatMulNTAcc(seed.Clone(), a, bT)
				wantTN := MatMulTNAcc(seed.Clone(), aT, b)

				b.MarkPackable()
				bT.MarkPackable()
				for pass, expectHit := range []bool{false, true} {
					before := PackCacheStatsSnapshot()
					gotTo := MatMulTo(New(m, n), a, b)
					gotNT := MatMulNTAcc(seed.Clone(), a, bT)
					gotTN := MatMulTNAcc(seed.Clone(), aT, b)
					d := statsDelta(before)
					if expectHit && (d.Hits != 3 || d.Misses != 0) {
						t.Fatalf("(%d,%d,%d) pass %d: hits %d misses %d, want 3 hits", m, n, k, pass, d.Hits, d.Misses)
					}
					// First pass: MatMulTo misses on (b, normal), MatMulNTAcc
					// on (bT, trans); MatMulTNAcc reuses (b, normal) — 2
					// misses, 1 hit.
					if !expectHit && (d.Misses != 2 || d.Hits != 1) {
						t.Fatalf("(%d,%d,%d) pass %d: misses %d hits %d, want 2 and 1", m, n, k, pass, d.Misses, d.Hits)
					}
					if !bitwiseEqual(gotTo, wantTo) {
						t.Fatalf("(%d,%d,%d) pass %d: cached MatMulTo differs from uncached", m, n, k, pass)
					}
					if !bitwiseEqual(gotNT, wantNT) {
						t.Fatalf("(%d,%d,%d) pass %d: cached MatMulNTAcc differs from uncached", m, n, k, pass)
					}
					if !bitwiseEqual(gotTN, wantTN) {
						t.Fatalf("(%d,%d,%d) pass %d: cached MatMulTNAcc differs from uncached", m, n, k, pass)
					}
				}
				FlushPackCache()
			}
		})
	})
}

// TestPackCacheInvalidation mutates the packable weight through each
// sanctioned in-place path and checks the next product repacks and computes
// with the new bytes.
func TestPackCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const m, n, k = 17, 24, 11
	mutations := []struct {
		name string
		do   func(b *Tensor)
	}{
		{"Set", func(b *Tensor) { b.Set(0.5, 3, 4) }},
		{"Fill", func(b *Tensor) { b.Fill(0.25) }},
		{"Apply", func(b *Tensor) { b.Apply(func(x float64) float64 { return x + 1 }) }},
		{"AddInPlace", func(b *Tensor) { AddInPlace(b, New(k, n)) }},
		{"AxpyInPlace", func(b *Tensor) { AxpyInPlace(b, 0.1, b.Clone()) }},
		{"ScaleInPlace", func(b *Tensor) { ScaleInPlace(b, 1.5) }},
		{"AdamStepInPlace", func(b *Tensor) {
			AdamStepInPlace(b, b.Clone(), New(k, n), New(k, n), 0.01, 0.9, 0.999, 1e-8, 1, 1)
		}},
		{"SGDMomentumStepInPlace", func(b *Tensor) {
			SGDMomentumStepInPlace(b, b.Clone(), New(k, n), 0.01, 0.9)
		}},
		{"CopyDataFrom", func(b *Tensor) { b.CopyDataFrom(b.Clone()) }},
	}
	withCleanPackCache(t, func() {
		forceBlocked(t, func() {
			for _, mu := range mutations {
				a := Randn(rng, 1, m, k)
				b := Randn(rng, 1, k, n)
				b.MarkPackable()
				MatMulTo(New(m, n), a, b) // warm
				mu.do(b)
				before := PackCacheStatsSnapshot()
				got := MatMulTo(New(m, n), a, b)
				d := statsDelta(before)
				// Uncached reference after the probe: disabling flushes the
				// cache, so it must not run between warm and probe.
				want := func() *Tensor {
					SetPackCaching(false)
					defer SetPackCaching(true)
					return MatMulTo(New(m, n), a, b)
				}()
				if d.Invalidations != 1 || d.Misses != 1 {
					t.Fatalf("%s: invalidations %d misses %d, want 1 and 1", mu.name, d.Invalidations, d.Misses)
				}
				if !bitwiseEqual(got, want) {
					t.Fatalf("%s: product after mutation used stale pack", mu.name)
				}
				FlushPackCache()
			}
		})
	})
}

// TestPackCacheEviction caps the cache below the combined size of two packs
// and alternates between them: every access must still be correct, the byte
// budget must hold, and the LRU counter must move.
func TestPackCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const m, n, k = 9, 40, 21
	withCleanPackCache(t, func() {
		forceBlocked(t, func() {
			a := Randn(rng, 1, m, k)
			b1 := Randn(rng, 1, k, n)
			b2 := Randn(rng, 1, k, n)
			want1 := MatMulTo(New(m, n), a, b1)
			want2 := MatMulTo(New(m, n), a, b2)
			b1.MarkPackable()
			b2.MarkPackable()

			packBytes := int64(packedCols(n)*k) * 8
			SetPackCacheCapacity(packBytes + packBytes/2) // room for one, not two
			before := PackCacheStatsSnapshot()
			for i := 0; i < 4; i++ {
				if got := MatMulTo(New(m, n), a, b1); !bitwiseEqual(got, want1) {
					t.Fatalf("round %d: b1 product wrong under eviction pressure", i)
				}
				if got := MatMulTo(New(m, n), a, b2); !bitwiseEqual(got, want2) {
					t.Fatalf("round %d: b2 product wrong under eviction pressure", i)
				}
				if st := PackCacheStatsSnapshot(); st.Bytes > packBytes+packBytes/2 {
					t.Fatalf("round %d: cache holds %d bytes over cap", i, st.Bytes)
				}
			}
			d := statsDelta(before)
			if d.Evictions == 0 {
				t.Fatalf("no evictions under a cap that fits one of two packs")
			}
			if d.Entries > 1 {
				t.Fatalf("cache retains %d entries, cap allows 1", d.Entries)
			}
		})
	})
}

// TestPackCacheOversizeBypass: a pack bigger than the whole cache must bypass
// caching (nil acquire), not thrash it.
func TestPackCacheOversizeBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	const m, n, k = 9, 40, 21
	withCleanPackCache(t, func() {
		forceBlocked(t, func() {
			a := Randn(rng, 1, m, k)
			b := Randn(rng, 1, k, n)
			want := MatMulTo(New(m, n), a, b)
			b.MarkPackable()
			SetPackCacheCapacity(64) // smaller than any pack
			before := PackCacheStatsSnapshot()
			got := MatMulTo(New(m, n), a, b)
			d := statsDelta(before)
			if d.Hits+d.Misses != 0 || d.Entries != 0 {
				t.Fatalf("oversize pack touched the cache: %+v", d)
			}
			if !bitwiseEqual(got, want) {
				t.Fatalf("bypassed product differs")
			}
		})
	})
}

// TestPackCachePoolRecycleClearsPackable: returning a marked tensor to the
// arena must strip its packable status and move its version, so a recycled
// buffer can never satisfy a stale cache probe by pointer coincidence.
func TestPackCachePoolRecycleClearsPackable(t *testing.T) {
	old := PoolingEnabled()
	SetPooling(true)
	defer SetPooling(old)
	tt := Get(16, 16)
	tt.MarkPackable()
	v := tt.Version()
	Put(tt)
	got := Get(16, 16)
	// Whether or not the arena hands back the same allocation, any tensor
	// that went through reinit must be unmarked.
	if got.Packable() {
		t.Fatalf("recycled tensor still packable")
	}
	if got == tt && got.Version() == v {
		t.Fatalf("recycled tensor kept its version")
	}
	Put(got)
}

// TestPackCacheParallelStress hammers a shared packable weight from many
// goroutines — concurrent products, cache flushes, capacity changes — and
// checks every product against the uncached result. Run under -race this
// doubles as the locking proof.
func TestPackCacheParallelStress(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	const m, n, k = 12, 36, 17
	withCleanPackCache(t, func() {
		forceBlocked(t, func() {
			a := Randn(rng, 1, m, k)
			b := Randn(rng, 1, k, n)
			b.MarkPackable()
			want := func() *Tensor {
				SetPackCaching(false)
				defer SetPackCaching(true)
				return MatMulTo(New(m, n), a, b)
			}()

			var wg sync.WaitGroup
			const workers = 8
			for w := 0; w < workers; w++ {
				wg.Add(1)
				//ovslint:ignore nakedgo the stress test needs unsynchronized goroutines; parallel's deterministic chunking would serialize the contention under test
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						switch {
						case w == 0 && i%10 == 5:
							FlushPackCache()
						case w == 1 && i%10 == 7:
							SetPackCacheCapacity(packCacheDefaultCap)
						default:
							if got := MatMulTo(New(m, n), a, b); !bitwiseEqual(got, want) {
								t.Errorf("worker %d iter %d: concurrent cached product differs", w, i)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	})
}
