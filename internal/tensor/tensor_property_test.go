package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatMulAssociativity: (AB)C == A(BC) for random conformable shapes.
func TestMatMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m, k, n, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, n, p)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		if !AllClose(lhs, rhs, 1e-9) {
			t.Fatalf("associativity violated at %dx%dx%dx%d", m, k, n, p)
		}
	}
}

// TestMatMulDistributesOverAdd: A(B+C) == AB + AC.
func TestMatMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		if !AllClose(lhs, rhs, 1e-9) {
			t.Fatalf("distributivity violated at %dx%dx%d", m, k, n)
		}
	}
}

// TestSolveIsMatMulInverse: Solve(A, A·x) recovers x for well-conditioned A.
func TestSolveIsMatMulInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		a := Randn(rng, 1, n, n)
		// Diagonal dominance for conditioning.
		for i := 0; i < n; i++ {
			a.Set(a.At(i, i)+float64(n), i, i)
		}
		x := Randn(rng, 1, n)
		b := MatVec(a, x)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !AllClose(got, x, 1e-8) {
			t.Fatalf("Solve(A, Ax) != x at n=%d", n)
		}
	}
}

// TestNormTriangleInequality: ‖a+b‖ ≤ ‖a‖ + ‖b‖.
func TestNormTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		a := Randn(rng, 2, n)
		b := Randn(rng, 2, n)
		if Add(a, b).Norm2() > a.Norm2()+b.Norm2()+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

// TestDotCauchySchwarz: |⟨a,b⟩| ≤ ‖a‖·‖b‖.
func TestDotCauchySchwarz(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		a := Randn(rng, 1, n)
		b := Randn(rng, 1, n)
		if math.Abs(Dot(a, b)) > a.Norm2()*b.Norm2()+1e-9 {
			t.Fatal("Cauchy-Schwarz violated")
		}
	}
}

// TestTransposeRowColConsistency: SumRows(A) == SumCols(Aᵀ).
func TestTransposeRowColConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := Randn(rng, 1, 5, 7)
	if !AllClose(SumRows(a), SumCols(Transpose(a)), 1e-12) {
		t.Fatal("SumRows(A) != SumCols(Aᵀ)")
	}
}

// TestRidgeShrinkageMonotone: weight norm decreases monotonically in λ.
func TestRidgeShrinkageMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := Randn(rng, 1, 30, 5)
	y := Randn(rng, 1, 30, 2)
	prev := math.Inf(1)
	for _, lambda := range []float64{1e-6, 1e-3, 1, 1e3} {
		w, err := Ridge(x, y, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if n := w.Norm2(); n > prev+1e-9 {
			t.Fatalf("ridge norm increased at λ=%v: %v > %v", lambda, n, prev)
		} else {
			prev = n
		}
	}
}
