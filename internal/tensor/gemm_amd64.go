//go:build amd64

package tensor

// gemmMicroAsm is the AVX2+FMA3 8×4 micro-kernel in gemm_amd64.s. It computes
// the same per-element ascending-k FMA sequence as gemmMicroGo, with the four
// column chains of each row carried in the lanes of one ymm accumulator.
//
//go:noescape
func gemmMicroAsm(c *float64, ldc int, ap, bp *float64, kc int, load bool)

// gemmRowFMAAsm computes one output row from zero: dst[j] = ascending-p FMA
// chain of a[p*as]*b[p*bs+j] for j in [0, n). Vector lanes run across output
// columns, so each element keeps its own scalar chain.
//
//go:noescape
func gemmRowFMAAsm(dst, a *float64, as int, b *float64, bs int, k, n int)

// gemmDotFMAAsm is the strided scalar FMA-chain dot product.
//
//go:noescape
func gemmDotFMAAsm(a *float64, as int, b *float64, bs int, k int) float64

// gemmDot4FMAAsm runs four gemmDotFMAAsm chains at once against b vectors
// spaced brs apart, writing the four sums to dst[0:4]. Each chain's FMA
// sequence is identical to the one-at-a-time kernel; the interleave only
// hides FMA latency across independent output elements.
//
//go:noescape
func gemmDot4FMAAsm(dst, a *float64, as int, b *float64, bs, brs int, k int)

func gemmCPUID(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func gemmXGETBV() (eax, edx uint32)

// gemmHasAsm reports whether the vector micro-kernel may run: the CPU must
// implement FMA3 and AVX, and the OS must have enabled saving the xmm/ymm
// register state (OSXSAVE + XCR0 bits 1 and 2). Determined once at init; the
// dispatch never changes mid-run, and both kernels are bitwise-identical, so
// the choice affects speed only.
var gemmHasAsm = func() bool {
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
		xcr0SSEAVX   = 0x6 // xmm and ymm state enabled
	)
	maxID, _, _, _ := gemmCPUID(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := gemmCPUID(1, 0)
	if ecx&cpuidFMA == 0 || ecx&cpuidOSXSAVE == 0 || ecx&cpuidAVX == 0 {
		return false
	}
	lo, _ := gemmXGETBV()
	return lo&xcr0SSEAVX == xcr0SSEAVX
}()
