package roadnet

import (
	"math"
	"math/rand"
	"testing"
)

func mustGrid(t *testing.T, rows, cols int) *Network {
	t.Helper()
	net := Grid(GridConfig{Rows: rows, Cols: cols})
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGridCounts(t *testing.T) {
	net := mustGrid(t, 3, 3)
	if net.NumNodes() != 9 {
		t.Fatalf("nodes = %d, want 9", net.NumNodes())
	}
	// 3x3 grid has 12 roads = 24 directed links.
	if net.NumLinks() != 24 {
		t.Fatalf("links = %d, want 24", net.NumLinks())
	}
	if !net.StronglyConnected() {
		t.Fatal("grid not strongly connected")
	}
}

func TestGridAdjacencyConsistency(t *testing.T) {
	net := mustGrid(t, 4, 5)
	for v := 0; v < net.NumNodes(); v++ {
		for _, id := range net.Out(v) {
			if net.Links[id].From != v {
				t.Fatalf("out adjacency wrong at node %d link %d", v, id)
			}
		}
		for _, id := range net.In(v) {
			if net.Links[id].To != v {
				t.Fatalf("in adjacency wrong at node %d link %d", v, id)
			}
		}
	}
}

func TestAddLinkValidation(t *testing.T) {
	net := New()
	a := net.AddNode(0, 0)
	b := net.AddNode(100, 0)
	for _, fn := range []func(){
		func() { net.AddLink(a, a, 100, 1, 10, 0) },  // self loop
		func() { net.AddLink(a, 99, 100, 1, 10, 0) }, // bad endpoint
		func() { net.AddLink(a, b, -5, 1, 10, 0) },   // bad length
		func() { net.AddLink(a, b, 100, 0, 10, 0) },  // bad lanes
		func() { net.AddLink(a, b, 100, 1, 0, 0) },   // bad speed
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid AddLink did not panic")
				}
			}()
			fn()
		}()
	}
	id := net.AddLink(a, b, 100, 2, 10, 0)
	if got := net.Links[id].Capacity; got != 1.0 {
		t.Fatalf("default capacity = %v, want 1.0 (0.5/lane)", got)
	}
	if got := net.Links[id].FreeFlowTime(); got != 10 {
		t.Fatalf("FreeFlowTime = %v, want 10", got)
	}
}

func TestShortestPathOnGrid(t *testing.T) {
	net := mustGrid(t, 3, 3)
	// Corner to corner: manhattan distance 4 blocks of 300m at 13.9 m/s.
	route, cost, err := net.ShortestPath(0, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !route.Valid(net, 0, 8) {
		t.Fatalf("invalid route %v", route)
	}
	if len(route) != 4 {
		t.Fatalf("route length = %d links, want 4", len(route))
	}
	wantCost := 4 * 300 / 13.9
	if math.Abs(cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", cost, wantCost)
	}
}

func TestShortestPathSameNode(t *testing.T) {
	net := mustGrid(t, 2, 2)
	route, cost, err := net.ShortestPath(1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 0 || cost != 0 {
		t.Fatalf("self path = %v cost %v", route, cost)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	net := New()
	a := net.AddNode(0, 0)
	b := net.AddNode(100, 0)
	net.AddLink(a, b, 100, 1, 10, 0) // one-way only
	if _, _, err := net.ShortestPath(b, a, nil, nil); err == nil {
		t.Fatal("expected no-path error")
	}
}

func TestShortestPathRespectsWeights(t *testing.T) {
	// Two routes 0->2: direct slow link vs detour via 1.
	net := New()
	n0 := net.AddNode(0, 0)
	n1 := net.AddNode(1, 1)
	n2 := net.AddNode(2, 0)
	direct := net.AddLink(n0, n2, 200, 1, 10, 0)
	via1 := net.AddLink(n0, n1, 100, 1, 10, 0)
	via2 := net.AddLink(n1, n2, 100, 1, 10, 0)
	// Free flow: direct = 20s, detour = 20s; bias weights to prefer detour.
	weight := func(id int) float64 {
		if id == direct {
			return 100
		}
		return 5
	}
	route, cost, err := net.ShortestPath(n0, n2, weight, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != via1 || route[1] != via2 {
		t.Fatalf("route = %v, want detour", route)
	}
	if cost != 10 {
		t.Fatalf("cost = %v, want 10", cost)
	}
	// Banned detour forces the direct link.
	route, _, err = net.ShortestPath(n0, n2, weight, map[int]bool{via1: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 || route[0] != direct {
		t.Fatalf("banned route = %v, want direct", route)
	}
}

func TestKShortestPathsDistinctAndOrdered(t *testing.T) {
	net := mustGrid(t, 3, 3)
	paths, err := net.KShortestPaths(0, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want >= 2", len(paths))
	}
	seen := map[string]bool{}
	prevCost := -1.0
	for _, p := range paths {
		if !p.Valid(net, 0, 8) {
			t.Fatalf("invalid path %v", p)
		}
		key := routeKey(p)
		if seen[key] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[key] = true
		cost := p.TravelTime(func(id int) float64 { return net.Links[id].FreeFlowTime() })
		if cost < prevCost-1e-9 {
			t.Fatalf("paths not ordered by cost: %v after %v", cost, prevCost)
		}
		prevCost = cost
	}
	// In a 3x3 grid all corner-to-corner shortest routes have 4 links; the
	// first several k-shortest should all cost the same.
	first := paths[0].TravelTime(func(id int) float64 { return net.Links[id].FreeFlowTime() })
	second := paths[1].TravelTime(func(id int) float64 { return net.Links[id].FreeFlowTime() })
	if math.Abs(first-second) > 1e-9 {
		t.Fatalf("expected tied shortest costs, got %v vs %v", first, second)
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	net := mustGrid(t, 3, 3)
	paths, err := net.KShortestPaths(0, 4, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		visited := map[int]bool{0: true}
		for _, id := range p {
			to := net.Links[id].To
			if visited[to] {
				t.Fatalf("path %v revisits node %d", p, to)
			}
			visited[to] = true
		}
	}
}

func TestRouteHelpers(t *testing.T) {
	net := mustGrid(t, 2, 2)
	route, _, err := net.ShortestPath(0, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !route.Contains(route[0]) {
		t.Fatal("Contains failed for member link")
	}
	if route.Contains(-1) {
		t.Fatal("Contains true for absent link")
	}
	if math.Abs(route.Length(net)-600) > 1e-9 {
		t.Fatalf("Length = %v, want 600", route.Length(net))
	}
}

func TestGridForIntersections(t *testing.T) {
	for _, n := range []int{10, 50, 100, 500, 1000} {
		net := GridForIntersections(n)
		if net.NumNodes() < n {
			t.Fatalf("GridForIntersections(%d) has only %d nodes", n, net.NumNodes())
		}
		if float64(net.NumNodes()) > 1.4*float64(n)+2 {
			t.Fatalf("GridForIntersections(%d) overshoots with %d nodes", n, net.NumNodes())
		}
		if !net.StronglyConnected() {
			t.Fatalf("GridForIntersections(%d) not strongly connected", n)
		}
	}
}

func TestCityGeneratorScaleAndConnectivity(t *testing.T) {
	net := City(CityConfig{TargetIntersections: 46, TargetRoads: 63, Seed: 7})
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !net.StronglyConnected() {
		t.Fatal("city not strongly connected")
	}
	roads := net.NumLinks() / 2
	if roads < 50 || roads > 90 {
		t.Fatalf("city roads = %d, want near 63", roads)
	}
}

func TestCityGeneratorDeterministic(t *testing.T) {
	a := City(CityConfig{TargetIntersections: 30, TargetRoads: 40, Seed: 3})
	b := City(CityConfig{TargetIntersections: 30, TargetRoads: 40, Seed: 3})
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatal("city generation not deterministic")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between runs", i)
		}
	}
}

func TestCityHighwayGates(t *testing.T) {
	base := City(CityConfig{TargetIntersections: 16, Seed: 1})
	gated := City(CityConfig{TargetIntersections: 16, HighwayGates: 3, Seed: 1})
	if gated.NumNodes() != base.NumNodes()+3 {
		t.Fatalf("gates: %d nodes vs base %d", gated.NumNodes(), base.NumNodes())
	}
	if !gated.StronglyConnected() {
		t.Fatal("gated city not strongly connected")
	}
	// Gate links must be fast feeders.
	fast := 0
	for _, l := range gated.Links {
		if l.SpeedLimit == 25.0 {
			fast++
		}
	}
	if fast != 6 { // 3 roads x 2 directions
		t.Fatalf("fast feeder links = %d, want 6", fast)
	}
}

func TestPartitionCoversAllNodes(t *testing.T) {
	net := mustGrid(t, 4, 4)
	regions := Partition(net, 2, 2, rand.New(rand.NewSource(1)))
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4", len(regions))
	}
	seen := map[int]bool{}
	for _, r := range regions {
		for _, nd := range r.Nodes {
			if seen[nd] {
				t.Fatalf("node %d in two regions", nd)
			}
			seen[nd] = true
		}
		anchorInRegion := false
		for _, nd := range r.Nodes {
			if nd == r.Anchor {
				anchorInRegion = true
			}
		}
		if !anchorInRegion {
			t.Fatalf("region %d anchor %d not a member", r.ID, r.Anchor)
		}
		if r.Population <= 0 {
			t.Fatalf("region %d has non-positive population", r.ID)
		}
	}
	if len(seen) != net.NumNodes() {
		t.Fatalf("partition covers %d of %d nodes", len(seen), net.NumNodes())
	}
}

func TestPerNodeRegions(t *testing.T) {
	net := mustGrid(t, 3, 3)
	regions := PerNodeRegions(net, rand.New(rand.NewSource(2)))
	if len(regions) != 9 {
		t.Fatalf("regions = %d, want 9", len(regions))
	}
	for i, r := range regions {
		if r.Anchor != i || len(r.Nodes) != 1 {
			t.Fatalf("region %d malformed: %+v", i, r)
		}
	}
}

func TestSelectODPairs(t *testing.T) {
	net := mustGrid(t, 3, 3)
	regions := PerNodeRegions(net, nil)
	rng := rand.New(rand.NewSource(3))
	all := SelectODPairs(regions, 0, rng)
	if len(all) != 72 { // 9*8 ordered pairs
		t.Fatalf("all pairs = %d, want 72", len(all))
	}
	some := SelectODPairs(regions, 10, rand.New(rand.NewSource(3)))
	if len(some) != 10 {
		t.Fatalf("selected = %d, want 10", len(some))
	}
	seen := map[ODPair]bool{}
	for _, p := range some {
		if p.Origin == p.Dest {
			t.Fatalf("OD pair with origin == dest: %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate OD pair %+v", p)
		}
		seen[p] = true
	}
	// Deterministic for the same seed.
	again := SelectODPairs(regions, 10, rand.New(rand.NewSource(3)))
	for i := range some {
		if some[i] != again[i] {
			t.Fatal("SelectODPairs not deterministic")
		}
	}
}

func TestRegionDistance(t *testing.T) {
	a := Region{CX: 0, CY: 0}
	b := Region{CX: 3, CY: 4}
	if RegionDistance(a, b) != 5 {
		t.Fatalf("RegionDistance = %v, want 5", RegionDistance(a, b))
	}
}

func TestShortestPathTriangleInequalityProperty(t *testing.T) {
	// dist(a,c) <= dist(a,b) + dist(b,c) for shortest-path costs.
	net := City(CityConfig{TargetIntersections: 25, Seed: 11})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		a := rng.Intn(net.NumNodes())
		b := rng.Intn(net.NumNodes())
		c := rng.Intn(net.NumNodes())
		_, dac, err1 := net.ShortestPath(a, c, nil, nil)
		_, dab, err2 := net.ShortestPath(a, b, nil, nil)
		_, dbc, err3 := net.ShortestPath(b, c, nil, nil)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatal("unexpected routing failure in connected city")
		}
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v+%v", a, c, dac, dab, dbc)
		}
	}
}
