package roadnet

import (
	"fmt"
	"math"
	"testing"
)

// TestShortestPathPooledAllocs guards the scratch pooling: after warmup, a
// ShortestPath call should allocate only the returned route (plus the
// default-weight closure), not the per-call heap/dist/visited structures the
// interface-based implementation used to build (hundreds of allocations per
// call on a 20×20 grid).
func TestShortestPathPooledAllocs(t *testing.T) {
	net := Grid(GridConfig{Rows: 20, Cols: 20})
	from, to := 0, net.NumNodes()-1
	run := func() {
		if _, _, err := net.ShortestPath(from, to, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	avg := testing.AllocsPerRun(50, run)
	// Route result + reversal copy + weight closure, with slack for an
	// occasional pool miss after a GC cycle.
	if avg > 6 {
		t.Fatalf("ShortestPath allocates %.1f objects/call after warmup, want ≤ 6", avg)
	}
}

// TestShortestPathPooledEquivalence re-runs the same query many times
// (forcing scratch reuse) and checks every answer is identical — pooled
// state must be fully reinitialized between calls.
func TestShortestPathPooledEquivalence(t *testing.T) {
	net := Grid(GridConfig{Rows: 8, Cols: 8})
	type query struct{ from, to int }
	queries := []query{{0, 63}, {7, 56}, {63, 0}, {12, 50}}
	first := make(map[query]string)
	for round := 0; round < 5; round++ {
		for _, q := range queries {
			r, d, err := net.ShortestPath(q.from, q.to, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("%s|%x", routeKey(r), math.Float64bits(d))
			if round == 0 {
				first[q] = key
			} else if first[q] != key {
				t.Fatalf("query %v: round %d result differs from round 0", q, round)
			}
		}
	}
}
