package roadnet

import (
	"fmt"
	"math"
	"math/rand"
)

// Region is a partition cell of the city (Section III: "a region can be as
// small as one block"). TOD is defined between regions; each region has an
// anchor node where trips enter and leave the road network, and a synthetic
// population used by the Gravity baseline and the census auxiliary loss.
type Region struct {
	ID         int
	Nodes      []int // member intersections
	Anchor     int   // representative intersection for trip loading
	CX, CY     float64
	Population float64
}

// ODPair is an ordered (origin region, destination region) pair, the unit
// the TOD tensor is indexed by.
type ODPair struct {
	Origin, Dest int // region IDs
}

// Partition divides the network's nodes into a rows×cols lattice of regions
// over its bounding box. Empty cells are dropped; region IDs are compacted.
// Populations are drawn log-normally from rng (deterministic per seed),
// representing the census data the paper's auxiliary losses consume.
func Partition(net *Network, rows, cols int, rng *rand.Rand) []Region {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("roadnet: Partition requires positive dims, got %dx%d", rows, cols))
	}
	if net.NumNodes() == 0 {
		return nil
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, nd := range net.Nodes {
		minX, maxX = math.Min(minX, nd.X), math.Max(maxX, nd.X)
		minY, maxY = math.Min(minY, nd.Y), math.Max(maxY, nd.Y)
	}
	// Expand slightly so max-coordinate nodes land inside the last cell.
	w := (maxX - minX) + 1e-9
	h := (maxY - minY) + 1e-9
	cells := make([][]int, rows*cols)
	for _, nd := range net.Nodes {
		c := int(float64(cols) * (nd.X - minX) / w)
		r := int(float64(rows) * (nd.Y - minY) / h)
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		cells[r*cols+c] = append(cells[r*cols+c], nd.ID)
	}
	var regions []Region
	for _, members := range cells {
		if len(members) == 0 {
			continue
		}
		cx, cy := 0.0, 0.0
		for _, id := range members {
			cx += net.Nodes[id].X
			cy += net.Nodes[id].Y
		}
		cx /= float64(len(members))
		cy /= float64(len(members))
		// Anchor: member closest to centroid.
		anchor, bestD := members[0], math.Inf(1)
		for _, id := range members {
			dx, dy := net.Nodes[id].X-cx, net.Nodes[id].Y-cy
			if d := dx*dx + dy*dy; d < bestD {
				anchor, bestD = id, d
			}
		}
		pop := 1000.0
		if rng != nil {
			pop = math.Exp(rng.NormFloat64()*0.5) * 1000 * float64(len(members))
		}
		regions = append(regions, Region{
			ID:     len(regions),
			Nodes:  members,
			Anchor: anchor,
			CX:     cx, CY: cy,
			Population: pop,
		})
	}
	return regions
}

// PerNodeRegions makes every intersection its own region — the finest
// partition, used by the small synthetic grids where a region is one block.
func PerNodeRegions(net *Network, rng *rand.Rand) []Region {
	regions := make([]Region, net.NumNodes())
	for i, nd := range net.Nodes {
		pop := 1000.0
		if rng != nil {
			pop = math.Exp(rng.NormFloat64()*0.5) * 1000
		}
		regions[i] = Region{
			ID:     i,
			Nodes:  []int{nd.ID},
			Anchor: nd.ID,
			CX:     nd.X, CY: nd.Y,
			Population: pop,
		}
	}
	return regions
}

// RegionDistance returns the centroid distance between two regions, the d_ij
// of the Gravity baseline.
func RegionDistance(a, b Region) float64 {
	return math.Hypot(a.CX-b.CX, a.CY-b.CY)
}

// SelectODPairs chooses n distinct ordered region pairs, deterministically
// for a given rng. When n is at least the number of ordered pairs, all pairs
// are returned. Origins and destinations are never equal.
func SelectODPairs(regions []Region, n int, rng *rand.Rand) []ODPair {
	k := len(regions)
	all := make([]ODPair, 0, k*(k-1))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				all = append(all, ODPair{Origin: regions[i].ID, Dest: regions[j].ID})
			}
		}
	}
	if n >= len(all) || n <= 0 {
		return all
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	out := all[:n]
	return out
}
