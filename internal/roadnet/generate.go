package roadnet

import (
	"fmt"
	"math/rand"
)

// GridConfig parameterizes a rectangular grid network, the synthetic-data
// substrate of Table VIII (3×3 intersections) and the scalability sweep of
// Figure 9 (10 to 1000 intersections).
type GridConfig struct {
	Rows, Cols int
	// BlockLength is the road length between adjacent intersections (m).
	BlockLength float64
	// Lanes per direction.
	Lanes int
	// SpeedLimit in m/s (default 13.9 ≈ 50 km/h when zero).
	SpeedLimit float64
	// Jitter displaces intersections by up to Jitter meters so generated
	// cities are not perfectly regular; requires Rng.
	Jitter float64
	Rng    *rand.Rand
}

// Grid builds a Rows×Cols grid of intersections with bidirectional roads
// between orthogonal neighbors.
func Grid(cfg GridConfig) *Network {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		panic(fmt.Sprintf("roadnet: Grid requires positive dims, got %dx%d", cfg.Rows, cfg.Cols))
	}
	if cfg.BlockLength <= 0 {
		cfg.BlockLength = 300
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 2
	}
	if cfg.SpeedLimit <= 0 {
		cfg.SpeedLimit = 13.9
	}
	net := New()
	idx := func(r, c int) int { return r*cfg.Cols + c }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			x := float64(c) * cfg.BlockLength
			y := float64(r) * cfg.BlockLength
			if cfg.Jitter > 0 && cfg.Rng != nil {
				x += (cfg.Rng.Float64()*2 - 1) * cfg.Jitter
				y += (cfg.Rng.Float64()*2 - 1) * cfg.Jitter
			}
			net.AddNode(x, y)
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				a, b := idx(r, c), idx(r, c+1)
				net.AddRoad(a, b, net.Distance(a, b), cfg.Lanes, cfg.SpeedLimit, 0)
			}
			if r+1 < cfg.Rows {
				a, b := idx(r, c), idx(r+1, c)
				net.AddRoad(a, b, net.Distance(a, b), cfg.Lanes, cfg.SpeedLimit, 0)
			}
		}
	}
	return net
}

// GridForIntersections builds a near-square grid with approximately n
// intersections (used by the Figure 9 scalability sweep, which asks for 10,
// 50, 100, 500 and 1000 intersections).
func GridForIntersections(n int) *Network {
	if n <= 0 {
		panic("roadnet: GridForIntersections requires n > 0")
	}
	rows := 1
	for rows*rows < n {
		rows++
	}
	cols := (n + rows - 1) / rows
	return Grid(GridConfig{Rows: rows, Cols: cols})
}

// CityConfig parameterizes an irregular synthetic city: a jittered grid core
// with some roads removed, a few diagonal shortcuts, and optional highway
// "gate" nodes feeding the periphery (used by the football case study, where
// origins O1/O3 sit at highway exits).
type CityConfig struct {
	// TargetIntersections and TargetRoads approximate the Table III scale.
	TargetIntersections int
	TargetRoads         int
	// HighwayGates adds this many peripheral high-speed feeder nodes.
	HighwayGates int
	BlockLength  float64
	Seed         int64
}

// City generates an irregular strongly connected network at roughly the
// requested scale. Roads are removed from a jittered grid until the road
// count is met, never breaking strong connectivity.
func City(cfg CityConfig) *Network {
	if cfg.TargetIntersections <= 1 {
		panic("roadnet: City requires at least 2 intersections")
	}
	if cfg.BlockLength <= 0 {
		cfg.BlockLength = 400
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := 1
	for rows*rows < cfg.TargetIntersections {
		rows++
	}
	cols := (cfg.TargetIntersections + rows - 1) / rows
	net := Grid(GridConfig{
		Rows: rows, Cols: cols,
		BlockLength: cfg.BlockLength,
		Jitter:      cfg.BlockLength * 0.15,
		Rng:         rng,
		Lanes:       2,
	})

	// Promote a few arterial roads: raise lanes/speed on one horizontal and
	// one vertical corridor.
	midRow, midCol := rows/2, cols/2
	for i := range net.Links {
		l := &net.Links[i]
		fr, to := net.Nodes[l.From], net.Nodes[l.To]
		onRowCorridor := nearLine(fr.Y, to.Y, float64(midRow)*cfg.BlockLength, cfg.BlockLength*0.3)
		onColCorridor := nearLine(fr.X, to.X, float64(midCol)*cfg.BlockLength, cfg.BlockLength*0.3)
		if onRowCorridor || onColCorridor {
			l.Lanes = 3
			l.SpeedLimit = 16.7 // 60 km/h
			l.Capacity = 0.5 * float64(l.Lanes)
		}
	}

	// Remove random non-arterial roads (both directions) until the target
	// road count is reached, preserving strong connectivity. Removal works on
	// a candidate copy; roads whose removal disconnects the graph stay.
	currentRoads := net.NumLinks() / 2
	if cfg.TargetRoads > 0 && cfg.TargetRoads < currentRoads {
		toRemove := currentRoads - cfg.TargetRoads
		order := rng.Perm(net.NumLinks() / 2)
		removed := make(map[int]bool)
		for _, roadIdx := range order {
			if toRemove == 0 {
				break
			}
			// Road roadIdx corresponds to link pair (2*roadIdx, 2*roadIdx+1)
			// by the AddRoad construction order of Grid.
			a, b := 2*roadIdx, 2*roadIdx+1
			if net.Links[a].Lanes >= 3 {
				continue // keep arterials
			}
			candidate := rebuildWithout(net, withKeys(removed, a, b))
			if candidate.StronglyConnected() {
				removed[a], removed[b] = true, true
				toRemove--
			}
		}
		net = rebuildWithout(net, removed)
	}

	// Attach highway gates: peripheral nodes connected by long fast roads.
	for gate := 0; gate < cfg.HighwayGates; gate++ {
		side := gate % 4
		var x, y float64
		span := float64(cols) * cfg.BlockLength
		switch side {
		case 0:
			x, y = rng.Float64()*span, -2*cfg.BlockLength
		case 1:
			x, y = rng.Float64()*span, float64(rows)*cfg.BlockLength+cfg.BlockLength
		case 2:
			x, y = -2*cfg.BlockLength, rng.Float64()*float64(rows)*cfg.BlockLength
		default:
			x, y = span+cfg.BlockLength, rng.Float64()*float64(rows)*cfg.BlockLength
		}
		g := net.AddNode(x, y)
		nearest := nearestNode(net, x, y, g)
		net.AddRoad(g, nearest, net.Distance(g, nearest), 3, 25.0, 0) // 90 km/h feeder
	}
	return net
}

func nearLine(a, b, line, tol float64) bool {
	return abs(a-line) < tol && abs(b-line) < tol
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func withKeys(m map[int]bool, keys ...int) map[int]bool {
	out := make(map[int]bool, len(m)+len(keys))
	for k, v := range m {
		out[k] = v
	}
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// rebuildWithout builds a copy of net excluding the given link IDs. Node IDs
// are preserved; link IDs are renumbered.
func rebuildWithout(net *Network, excluded map[int]bool) *Network {
	out := New()
	for _, nd := range net.Nodes {
		out.AddNode(nd.X, nd.Y)
	}
	for _, l := range net.Links {
		if excluded[l.ID] {
			continue
		}
		out.AddLink(l.From, l.To, l.Length, l.Lanes, l.SpeedLimit, l.Capacity)
	}
	return out
}

func nearestNode(net *Network, x, y float64, exclude int) int {
	best, bestD := -1, 0.0
	for _, nd := range net.Nodes {
		if nd.ID == exclude {
			continue
		}
		dx, dy := nd.X-x, nd.Y-y
		d := dx*dx + dy*dy
		if best == -1 || d < bestD {
			best, bestD = nd.ID, d
		}
	}
	return best
}
