package roadnet

import (
	"math"
	"math/rand"
	"testing"
)

// TestKShortestOnIrregularCityProperty validates Yen's algorithm on the
// irregular city generator: all paths valid, loopless, unique, and ordered.
func TestKShortestOnIrregularCityProperty(t *testing.T) {
	net := City(CityConfig{TargetIntersections: 30, TargetRoads: 42, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	weight := func(id int) float64 { return net.Links[id].FreeFlowTime() }
	for trial := 0; trial < 15; trial++ {
		from := rng.Intn(net.NumNodes())
		to := rng.Intn(net.NumNodes())
		if from == to {
			continue
		}
		paths, err := net.KShortestPaths(from, to, 4, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seen := map[string]bool{}
		prev := -1.0
		for _, p := range paths {
			if !p.Valid(net, from, to) {
				t.Fatalf("invalid path %v", p)
			}
			if !loopless(net, from, p) {
				t.Fatalf("loopy path %v", p)
			}
			key := routeKey(p)
			if seen[key] {
				t.Fatalf("duplicate path %v", p)
			}
			seen[key] = true
			c := p.TravelTime(weight)
			if c < prev-1e-9 {
				t.Fatalf("costs out of order: %v after %v", c, prev)
			}
			prev = c
		}
		// The first path must equal Dijkstra's optimum.
		best, bestCost, err := net.ShortestPath(from, to, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = best
		if math.Abs(paths[0].TravelTime(weight)-bestCost) > 1e-9 {
			t.Fatalf("k-shortest[0] cost %v != Dijkstra %v", paths[0].TravelTime(weight), bestCost)
		}
	}
}

// TestDijkstraMatchesBruteForceOnSmallGraph compares Dijkstra against
// exhaustive path enumeration on a 2×3 grid.
func TestDijkstraMatchesBruteForceOnSmallGraph(t *testing.T) {
	net := Grid(GridConfig{Rows: 2, Cols: 3})
	weight := func(id int) float64 { return net.Links[id].FreeFlowTime() }

	// Brute force: DFS over simple paths.
	var bruteCost func(from, to int, visited map[int]bool) float64
	bruteCost = func(from, to int, visited map[int]bool) float64 {
		if from == to {
			return 0
		}
		best := math.Inf(1)
		visited[from] = true
		for _, id := range net.Out(from) {
			next := net.Links[id].To
			if visited[next] {
				continue
			}
			if c := weight(id) + bruteCost(next, to, visited); c < best {
				best = c
			}
		}
		delete(visited, from)
		return best
	}
	for from := 0; from < net.NumNodes(); from++ {
		for to := 0; to < net.NumNodes(); to++ {
			if from == to {
				continue
			}
			_, got, err := net.ShortestPath(from, to, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteCost(from, to, map[int]bool{})
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("dijkstra(%d,%d) = %v, brute force %v", from, to, got, want)
			}
		}
	}
}

// TestTimeDependentWeightsRerouting verifies that congestion-aware weights
// reroute around a slowed link.
func TestTimeDependentWeightsRerouting(t *testing.T) {
	net := Grid(GridConfig{Rows: 3, Cols: 3})
	free, _, err := net.ShortestPath(0, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Slow the first link of the free-flow route drastically.
	slowed := free[0]
	congested := func(id int) float64 {
		w := net.Links[id].FreeFlowTime()
		if id == slowed {
			return w * 100
		}
		return w
	}
	alt, _, err := net.ShortestPath(0, 2, congested, nil)
	if err != nil {
		t.Fatal(err)
	}
	if alt.Contains(slowed) {
		t.Fatal("congestion-aware routing kept the slowed link")
	}
}

// TestRouteTravelTimeAdditive checks TravelTime sums per-link weights.
func TestRouteTravelTimeAdditive(t *testing.T) {
	net := Grid(GridConfig{Rows: 2, Cols: 2})
	r, cost, err := net.ShortestPath(0, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, id := range r {
		sum += net.Links[id].FreeFlowTime()
	}
	if math.Abs(sum-cost) > 1e-9 {
		t.Fatalf("cost %v != link sum %v", cost, sum)
	}
	if got := r.TravelTime(func(int) float64 { return 1 }); got != float64(len(r)) {
		t.Fatalf("unit TravelTime = %v, want %v", got, len(r))
	}
}
