package roadnet

import (
	"fmt"
	"math"
	"sync"
)

// Route is a path through the network represented as an ordered sequence of
// link IDs. Consecutive links share an intersection.
type Route []int

// Valid reports whether the route is a connected path in net starting at
// from and ending at to.
func (r Route) Valid(net *Network, from, to int) bool {
	if len(r) == 0 {
		return from == to
	}
	if net.Links[r[0]].From != from || net.Links[r[len(r)-1]].To != to {
		return false
	}
	for i := 1; i < len(r); i++ {
		if net.Links[r[i-1]].To != net.Links[r[i]].From {
			return false
		}
	}
	return true
}

// Contains reports whether the route traverses the given link.
func (r Route) Contains(linkID int) bool {
	for _, id := range r {
		if id == linkID {
			return true
		}
	}
	return false
}

// TravelTime sums per-link travel times along the route. weight maps a link
// ID to its current traversal time in seconds.
func (r Route) TravelTime(weight func(linkID int) float64) float64 {
	t := 0.0
	for _, id := range r {
		t += weight(id)
	}
	return t
}

// Length sums the route's physical length in meters.
func (r Route) Length(net *Network) float64 {
	s := 0.0
	for _, id := range r {
		s += net.Links[id].Length
	}
	return s
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

// pqUp and pqDown implement the binary min-heap on a bare []pqItem with the
// exact sift semantics of container/heap (strict-less comparisons, left child
// preferred on ties), so replacing the interface-based heap changed no pop
// order — only the per-operation interface boxing, which previously accounted
// for most of ShortestPath's allocations.
func pqUp(q []pqItem, j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func pqDown(q []pqItem, i0 int) {
	n := len(q)
	i := i0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && q[j2].dist < q[j].dist {
			j = j2
		}
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// spScratch holds the per-call working state of ShortestPath. Instances are
// recycled through spPool so route precompute and per-interval dynamic
// routing stop allocating per call; every field is reinitialized by reset, so
// reuse cannot leak state between calls (or between goroutines — each Get
// hands out a scratch owned exclusively by the caller).
type spScratch struct {
	dist     []float64
	prevLink []int
	done     []bool
	heap     []pqItem
	rev      []int
}

var spPool = sync.Pool{New: func() interface{} { return new(spScratch) }}

// reset sizes the node-indexed arrays and restores their initial values.
func (sc *spScratch) reset(nNodes int) {
	if cap(sc.dist) < nNodes {
		sc.dist = make([]float64, nNodes)
	}
	if cap(sc.prevLink) < nNodes {
		sc.prevLink = make([]int, nNodes)
	}
	if cap(sc.done) < nNodes {
		sc.done = make([]bool, nNodes)
	}
	sc.dist = sc.dist[:nNodes]
	sc.prevLink = sc.prevLink[:nNodes]
	sc.done = sc.done[:nNodes]
	for i := range sc.dist {
		sc.dist[i] = math.Inf(1)
		sc.prevLink[i] = -1
		sc.done[i] = false
	}
}

// ShortestPath runs Dijkstra from `from` to `to` using the supplied per-link
// weight (seconds; must be non-negative). A nil weight uses free-flow times,
// i.e., the "fastest route under no congestion" the paper's simplified
// routing policy assumes. banned, when non-nil, marks links that must not be
// used (needed by Yen's algorithm and by road-work scenarios).
func (net *Network) ShortestPath(from, to int, weight func(linkID int) float64, banned map[int]bool) (Route, float64, error) {
	if weight == nil {
		weight = func(id int) float64 { return net.Links[id].FreeFlowTime() }
	}
	nNodes := net.NumNodes()
	sc := spPool.Get().(*spScratch)
	defer spPool.Put(sc)
	sc.reset(nNodes)
	dist, prevLink, done := sc.dist, sc.prevLink, sc.done
	dist[from] = 0
	q := append(sc.heap[:0], pqItem{node: from, dist: 0})
	for len(q) > 0 {
		it := q[0]
		n := len(q) - 1
		q[0] = q[n]
		q = q[:n]
		pqDown(q, 0)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == to {
			break
		}
		for _, id := range net.Out(it.node) {
			if banned != nil && banned[id] {
				continue
			}
			w := weight(id)
			if w < 0 {
				panic(fmt.Sprintf("roadnet: negative link weight %v on link %d", w, id))
			}
			u := net.Links[id].To
			if nd := it.dist + w; nd < dist[u] {
				dist[u] = nd
				prevLink[u] = id
				q = append(q, pqItem{node: u, dist: nd})
				pqUp(q, len(q)-1)
			}
		}
	}
	sc.heap = q[:0] // keep any growth for the next pooled call
	if math.IsInf(dist[to], 1) {
		return nil, 0, fmt.Errorf("roadnet: no path from %d to %d", from, to)
	}
	// Reconstruct into the pooled reversal buffer, then copy out.
	rev := sc.rev[:0]
	for v := to; v != from; {
		id := prevLink[v]
		rev = append(rev, id)
		v = net.Links[id].From
	}
	sc.rev = rev[:0]
	route := make(Route, len(rev))
	for i, id := range rev {
		route[len(rev)-1-i] = id
	}
	return route, dist[to], nil
}

// KShortestPaths returns up to k loopless shortest paths from `from` to `to`
// (Yen's algorithm), ordered by increasing travel time. It always returns at
// least one path when one exists. This backs the OD→route module when the
// single-route simplification is lifted (Eq. 3).
func (net *Network) KShortestPaths(from, to, k int, weight func(linkID int) float64) ([]Route, error) {
	if weight == nil {
		weight = func(id int) float64 { return net.Links[id].FreeFlowTime() }
	}
	best, _, err := net.ShortestPath(from, to, weight, nil)
	if err != nil {
		return nil, err
	}
	paths := []Route{best}
	type candidate struct {
		route Route
		cost  float64
	}
	var candidates []candidate

	seen := map[string]bool{routeKey(best): true}

	// Spur-ban maps are reused across iterations (cleared, never ranged
	// over), so the Yen loop allocates no map per spur node.
	banned := make(map[int]bool)
	rootNodes := make(map[int]bool)

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path.
		for i := 0; i <= len(prev)-1; i++ {
			spurNode := from
			if i > 0 {
				spurNode = net.Links[prev[i-1]].To
			}
			rootPath := prev[:i]

			clear(banned)
			// Ban the next edge of every accepted path sharing this root.
			for _, p := range paths {
				if len(p) > i && sameRoute(p[:i], rootPath) {
					banned[p[i]] = true
				}
			}
			// Ban root-path links to keep the result loopless.
			clear(rootNodes)
			rootNodes[from] = true
			for _, id := range rootPath {
				rootNodes[net.Links[id].To] = true
			}
			spur, _, err := net.ShortestPath(spurNode, to, func(id int) float64 {
				// The spur must stay loopless: never re-enter any node of the
				// root path (including the spur node itself).
				if rootNodes[net.Links[id].To] {
					return 1e18 // effectively banned, keeps Dijkstra total finite-checkable
				}
				return weight(id)
			}, banned)
			if err != nil {
				continue
			}
			total := append(append(Route{}, rootPath...), spur...)
			if !total.Valid(net, from, to) || !loopless(net, from, total) {
				continue
			}
			cost := total.TravelTime(weight)
			key := routeKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, candidate{route: total, cost: cost})
		}
		if len(candidates) == 0 {
			break
		}
		// Pick cheapest candidate.
		bestIdx := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].cost < candidates[bestIdx].cost {
				bestIdx = i
			}
		}
		paths = append(paths, candidates[bestIdx].route)
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
	}
	return paths, nil
}

// loopless reports whether the route visits no node twice.
func loopless(net *Network, from int, r Route) bool {
	visited := map[int]bool{from: true}
	for _, id := range r {
		to := net.Links[id].To
		if visited[to] {
			return false
		}
		visited[to] = true
	}
	return true
}

func sameRoute(a, b Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func routeKey(r Route) string {
	key := make([]byte, 0, len(r)*3)
	for _, id := range r {
		key = append(key, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(key)
}
