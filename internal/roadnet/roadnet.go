// Package roadnet models city road networks: intersections (nodes), directed
// road segments (links), region partitions, and the routing algorithms the
// OVS pipeline needs (Dijkstra shortest/fastest paths and Yen's k-shortest
// paths). It plays the role OpenStreetMap extracts play in the paper.
package roadnet

import (
	"fmt"
	"math"
)

// Node is an intersection with planar coordinates in meters.
type Node struct {
	ID   int
	X, Y float64
}

// Link is one direction of a road segment between two intersections, the
// unit at which volume and speed are observed (Section III of the paper).
type Link struct {
	ID   int
	From int // origin node
	To   int // destination node

	Length     float64 // meters
	Lanes      int
	SpeedLimit float64 // meters/second (free-flow speed)
	Capacity   float64 // discharge capacity, vehicles/second
}

// FreeFlowTime returns the uncongested traversal time in seconds.
func (l *Link) FreeFlowTime() float64 { return l.Length / l.SpeedLimit }

// Network is an immutable-after-construction directed road graph.
type Network struct {
	Nodes []Node
	Links []Link

	out [][]int // node -> outgoing link IDs
	in  [][]int // node -> incoming link IDs
}

// New returns an empty network.
func New() *Network { return &Network{} }

// AddNode appends an intersection and returns its ID.
func (n *Network) AddNode(x, y float64) int {
	id := len(n.Nodes)
	n.Nodes = append(n.Nodes, Node{ID: id, X: x, Y: y})
	n.out = append(n.out, nil)
	n.in = append(n.in, nil)
	return id
}

// AddLink appends a directed link and returns its ID. Capacity defaults to
// 0.5 vehicles/second/lane (an 1800 veh/h/lane saturation flow) when cap is
// zero or negative.
func (n *Network) AddLink(from, to int, length float64, lanes int, speedLimit, cap float64) int {
	if from < 0 || from >= len(n.Nodes) || to < 0 || to >= len(n.Nodes) {
		panic(fmt.Sprintf("roadnet: AddLink endpoints (%d,%d) out of range (%d nodes)", from, to, len(n.Nodes)))
	}
	if from == to {
		panic(fmt.Sprintf("roadnet: AddLink self-loop at node %d", from))
	}
	if length <= 0 || lanes <= 0 || speedLimit <= 0 {
		panic(fmt.Sprintf("roadnet: AddLink invalid attributes length=%v lanes=%d speed=%v", length, lanes, speedLimit))
	}
	if cap <= 0 {
		cap = 0.5 * float64(lanes)
	}
	id := len(n.Links)
	n.Links = append(n.Links, Link{
		ID: id, From: from, To: to,
		Length: length, Lanes: lanes, SpeedLimit: speedLimit, Capacity: cap,
	})
	n.out[from] = append(n.out[from], id)
	n.in[to] = append(n.in[to], id)
	return id
}

// AddRoad adds a bidirectional road as two opposite links and returns both
// link IDs. Table III counts "roads"; each road contributes two links.
func (n *Network) AddRoad(a, b int, length float64, lanes int, speedLimit, cap float64) (int, int) {
	return n.AddLink(a, b, length, lanes, speedLimit, cap),
		n.AddLink(b, a, length, lanes, speedLimit, cap)
}

// NumNodes returns the number of intersections.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// NumLinks returns the number of directed links.
func (n *Network) NumLinks() int { return len(n.Links) }

// Out returns the IDs of links leaving node v.
func (n *Network) Out(v int) []int { return n.out[v] }

// In returns the IDs of links entering node v.
func (n *Network) In(v int) []int { return n.in[v] }

// Distance returns the Euclidean distance between two nodes.
func (n *Network) Distance(a, b int) float64 {
	dx := n.Nodes[a].X - n.Nodes[b].X
	dy := n.Nodes[a].Y - n.Nodes[b].Y
	return math.Hypot(dx, dy)
}

// Validate checks structural invariants: endpoint ranges, adjacency
// consistency, and positive attributes. It returns the first violation.
func (n *Network) Validate() error {
	for _, l := range n.Links {
		if l.From < 0 || l.From >= len(n.Nodes) || l.To < 0 || l.To >= len(n.Nodes) {
			return fmt.Errorf("roadnet: link %d endpoints (%d,%d) out of range", l.ID, l.From, l.To)
		}
		if l.Length <= 0 || l.Lanes <= 0 || l.SpeedLimit <= 0 || l.Capacity <= 0 {
			return fmt.Errorf("roadnet: link %d has non-positive attributes", l.ID)
		}
	}
	for v, outs := range n.out {
		for _, id := range outs {
			if n.Links[id].From != v {
				return fmt.Errorf("roadnet: adjacency out[%d] contains link %d with From=%d", v, id, n.Links[id].From)
			}
		}
	}
	for v, ins := range n.in {
		for _, id := range ins {
			if n.Links[id].To != v {
				return fmt.Errorf("roadnet: adjacency in[%d] contains link %d with To=%d", v, id, n.Links[id].To)
			}
		}
	}
	return nil
}

// StronglyConnected reports whether every node can reach every other node —
// a requirement for OD routing to be well-defined on generated networks.
func (n *Network) StronglyConnected() bool {
	if len(n.Nodes) == 0 {
		return true
	}
	reach := func(start int, adj func(int) []int, endpoint func(Link) int) int {
		seen := make([]bool, len(n.Nodes))
		stack := []int{start}
		seen[start] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, id := range adj(v) {
				u := endpoint(n.Links[id])
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
		return count
	}
	fwd := reach(0, n.Out, func(l Link) int { return l.To })
	bwd := reach(0, n.In, func(l Link) int { return l.From })
	return fwd == len(n.Nodes) && bwd == len(n.Nodes)
}
