package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ArenaEscape enforces the arena ownership rule (DESIGN.md §11): a tensor
// drawn from the arena — tensor.Get/GetLike, an Arena's Get/GetLike, or a
// Graph's Alloc/AllocLike — is reclaimed by Graph.Reset (or an explicit
// Put), and any reference that survives past that point dangles: the buffer
// is zeroed and handed to an unrelated computation, which corrupts results
// silently at exactly the worker count and epoch where the pool recycles it.
//
// The analysis is an intraprocedural taint pass over the CFG. A source call
// taints the assigned local; taint propagates through ident copies, Reshape
// views (they share the backing array), slicing, and composite literals that
// embed a tainted value. Taint dies when ownership is settled:
//
//   - tensor.Put / Arena.Put returns the buffer to the pool;
//   - appending to an `owned` field registers the tensor with the graph's
//     ownership ledger (the Graph.Alloc pattern), which reclaims it on Reset;
//   - Clone copies the data out of the arena entirely.
//
// Still-tainted values must not outlive the frame in a way the graph cannot
// see: a store into a struct field, package-level variable, map or slice
// element of either, a channel send, or a return hands the arena buffer to
// an owner with an unknown lifetime and is a diagnostic. Passing a tainted
// value as a call argument is fine — the callee is subject to the same
// analysis. Storing into fields of an autodiff Node is also fine: nodes die
// with the tape, at the same Reset that reclaims the tensor.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "flags arena-allocated tensors escaping through fields, globals, channels, or returns",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, fb := range FuncBodies(f) {
				checkArenaEscape(p, fb)
			}
		}
	},
}

// escFact is the set of tainted (arena-owned) locals.
type escFact map[types.Object]bool

func (f escFact) clone() escFact {
	c := make(escFact, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func escJoin(a, b escFact) escFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	c := a.clone()
	for k := range b {
		c[k] = true
	}
	return c
}

func escEqual(a, b escFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

type arenaEscScope struct {
	pass   *Pass
	report func(n ast.Node, what string)
}

func checkArenaEscape(p *Pass, fb FuncBody) {
	// Pre-scan: no arena source call, nothing to track.
	found := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isArenaSource(p, call) {
			found = true
		}
		return true
	})
	if !found {
		return
	}

	sc := &arenaEscScope{pass: p}
	cfg := BuildCFG(fb.Body)
	spec := FlowSpec[escFact]{
		Entry: escFact{},
		Join:  escJoin,
		Equal: escEqual,
		Transfer: func(fact escFact, n ast.Node) escFact {
			return sc.transfer(fact, n)
		},
	}
	in, _ := SolveForward(cfg, spec)

	sc.report = func(n ast.Node, what string) {
		p.Reportf(n.Pos(), "arena-allocated tensor %s; the arena reclaims it on Graph.Reset — Clone it, Put it back, or register ownership before it leaves this frame", what)
	}
	for _, b := range cfg.Blocks {
		fact, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			fact = sc.transfer(fact, n)
		}
	}
}

func (sc *arenaEscScope) transfer(fact escFact, n ast.Node) escFact {
	out := fact
	mutated := false
	mutable := func() escFact {
		if !mutated {
			out = fact.clone()
			mutated = true
		}
		return out
	}

	switch s := n.(type) {
	case *ast.AssignStmt:
		// Ownership transfers on the RHS first: append(g.owned, t) settles t.
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isOwnedAppend(sc.pass, call) {
				for _, arg := range call.Args[1:] {
					if obj := usedIdentObj(sc.pass, arg); obj != nil && out[obj] {
						delete(mutable(), obj)
					}
				}
			}
		}
		ownedTransfer := len(s.Rhs) == 1 && isOwnedAppendExpr(sc.pass, s.Rhs[0])
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			obj, direct := directTarget(sc.pass, lhs)
			switch {
			case direct && obj != nil:
				// Only values whose type can carry the tensor propagate
				// taint: `v := t.Data[0]` extracts a scalar, not the buffer.
				tainted := rhs != nil && typeCarriesTensor(sc.pass.TypeOf(lhs)) && sc.taintedExpr(out, rhs)
				if tainted && isPackageLevel(obj) {
					if sc.report != nil {
						sc.report(lhs, "stored into a package-level variable")
					}
					break
				}
				switch {
				case tainted && !out[obj]:
					mutable()[obj] = true
				case !tainted && out[obj]:
					delete(mutable(), obj)
				}
			default:
				// Non-ident target: field store, global, or element write.
				if rhs != nil && typeCarriesTensor(sc.pass.TypeOf(rhs)) && sc.taintedExpr(out, rhs) && !ownedTransfer {
					if what, bad := escapingTarget(sc.pass, lhs); bad {
						if sc.report != nil {
							sc.report(lhs, "stored into "+what)
						}
					}
				}
			}
		}
	case *ast.SendStmt:
		if typeCarriesTensor(sc.pass.TypeOf(s.Value)) && sc.taintedExpr(out, s.Value) {
			if sc.report != nil {
				sc.report(s, "sent on a channel")
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if typeCarriesTensor(sc.pass.TypeOf(res)) && sc.taintedExpr(out, res) {
				if sc.report != nil {
					sc.report(res, "returned to the caller")
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isArenaPut(sc.pass, call) {
				for _, arg := range call.Args {
					if obj := usedIdentObj(sc.pass, arg); obj != nil && out[obj] {
						delete(mutable(), obj)
					}
				}
			}
		}
	}
	return out
}

// taintedExpr reports whether e evaluates to (or embeds) an arena-owned
// value under the current fact.
func (sc *arenaEscScope) taintedExpr(fact escFact, e ast.Expr) bool {
	tainted := false
	inspectNoFuncLit(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := sc.pass.Info.Uses[n]; obj != nil && fact[obj] {
				tainted = true
			}
		case *ast.CallExpr:
			if isArenaSource(sc.pass, n) {
				tainted = true
				return false
			}
			if isOwnedAppend(sc.pass, n) {
				// The append both consumes the taint and yields the ledger
				// slice, which is not itself an escaping value.
				return false
			}
			// Calls otherwise launder taint (Clone, kernels): do not descend
			// into arguments, their use is the callee's concern. Except
			// Reshape/slicing, which share the backing array.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Reshape" {
				if sc.taintedExpr(fact, sel.X) {
					tainted = true
				}
			}
			return false
		}
		return true
	})
	return tainted
}

// escapingTarget classifies a non-ident assignment target that hands the
// value to a longer-lived owner. Node fields are exempt: the tape dies at
// the same Reset that reclaims the tensor.
func escapingTarget(p *Pass, lhs ast.Expr) (string, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if isNodeType(p.TypeOf(lhs.X)) {
			return "", false
		}
		return "a struct field", true
	case *ast.IndexExpr:
		// Element of what? A local slice is fine; a field or global is not.
		switch base := ast.Unparen(lhs.X).(type) {
		case *ast.SelectorExpr:
			if isNodeType(p.TypeOf(base.X)) {
				return "", false
			}
			return "an element of a struct field", true
		case *ast.Ident:
			if obj := p.Info.Uses[base]; obj != nil && isPackageLevel(obj) {
				return "an element of a package-level variable", true
			}
			return "", false
		}
		return "", false
	case *ast.StarExpr:
		return "a dereferenced pointer", true
	case *ast.Ident:
		if obj := p.Info.Uses[lhs]; obj != nil && isPackageLevel(obj) {
			return "a package-level variable", true
		}
	}
	return "", false
}

// typeCarriesTensor reports whether a value of type t can hold (a reference
// to) a tensor: the tensor itself, or a pointer/slice/array/map/channel
// whose element reaches one. Struct types are excluded — field stores are
// classified as sinks, not carriers.
func typeCarriesTensor(t types.Type) bool {
	for i := 0; i < 8 && t != nil; i++ {
		if isTensorType(t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// isArenaSource classifies calls that hand out arena-owned tensors:
// tensor.Get/GetLike, Arena.Get/GetLike, Graph.Alloc/AllocLike.
func isArenaSource(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Get", "GetLike":
		if isTensorPkgIdent(p, sel.X) || isArenaType(p.TypeOf(sel.X)) {
			return true
		}
	case "Alloc", "AllocLike":
		return isGraphType(p.TypeOf(sel.X))
	}
	return false
}

// isArenaPut matches tensor.Put and Arena.Put.
func isArenaPut(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	return isTensorPkgIdent(p, sel.X) || isArenaType(p.TypeOf(sel.X))
}

// isOwnedAppend matches `append(x.owned, ...)`: registration with a graph's
// ownership ledger.
func isOwnedAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "owned"
}

func isOwnedAppendExpr(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isOwnedAppend(p, call)
}

// usedIdentObj returns the object of a plain identifier expression.
func usedIdentObj(p *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.Uses[id]
}

// isNodeType reports whether t is (a pointer to) autodiff.Node.
func isNodeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Node" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/autodiff")
}
