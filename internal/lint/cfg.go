package lint

import (
	"go/ast"
	"go/token"
)

// This file implements the intraprocedural control-flow graph the dataflow
// analyzers (datamut, arenaescape, lockbalance, errflow) run over. It builds
// basic blocks from one function body using only go/ast — no x/tools — and
// covers the full statement grammar: if/else chains, all three for forms,
// range, expression and type switches (including fallthrough), select,
// labeled break/continue, goto, and defer.
//
// Design notes:
//
//   - Blocks hold the statements (and nothing else) executed straight-line in
//     program order. Control conditions (if/for/switch tag expressions) are
//     recorded as the block's Cond node so transfer functions can see reads
//     inside conditions without the builder having to split expressions out
//     of their statements.
//   - A terminating statement (return, goto, break, continue, panic,
//     os.Exit/log.Fatal-style calls) ends its block. Return edges go to the
//     synthetic Exit block; panic-like calls end the block with NO exit edge,
//     so a path that dies never reaches exit-point checks — a mutex held at a
//     panic, or an error dropped on a path that Fatals, is not a finding.
//   - Defer is a plain block node. Deferred calls run at function exit in
//     reverse order, conditional on the defer statement having executed;
//     analyzers that care (lockbalance) interpret DeferStmt nodes in their
//     transfer functions rather than the builder modelling the unwind edges,
//     which would multiply blocks for no analysis benefit.
//   - Function literals are opaque: the builder records the Go/defer/assign
//     statement that mentions them but never descends into their bodies. Each
//     FuncLit gets its own CFG from FuncCFGs.
//
// The graph is deterministic: block indices follow construction order, which
// follows source order, so any analyzer iterating Blocks is stable.

// A Block is one basic block: statements executed without branching, then a
// transfer of control to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks (construction order).
	Index int
	// Nodes are the statements of the block in execution order.
	Nodes []ast.Node
	// Cond is the control expression evaluated at the end of the block to
	// choose a successor (if/for condition, switch tag, type-switch assign,
	// range expression), or nil for unconditional transfer.
	Cond ast.Expr
	// Succs are the possible successor blocks in deterministic order
	// (then-branch before else, case order, loop body before loop exit).
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; Exit is the synthetic exit reached by falling off the end of
// the function and by every return.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// addEdge appends succ to b.Succs unless the edge already exists.
func addEdge(b, succ *Block) {
	for _, s := range b.Succs {
		if s == succ {
			return
		}
	}
	b.Succs = append(b.Succs, succ)
}

// cfgBuilder carries the construction state. cur == nil means the current
// point is unreachable (just after a terminator) — statements still get
// blocks (they may be labeled goto targets) but no fall-in edge.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breakTargets / continueTargets are stacks of enclosing targets. An
	// entry's label is "" for the bare statement form.
	breakTargets    []branchTarget
	continueTargets []branchTarget

	// labelBlocks maps a label name to the block its labeled statement
	// starts, for goto resolution (both directions).
	labelBlocks map[string]*Block
	// pendingGotos are forward gotos awaiting their label's block.
	pendingGotos []pendingGoto
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:         &CFG{},
		labelBlocks: make(map[string]*Block),
	}
	entry := b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	if b.cur != nil {
		addEdge(b.cur, b.cfg.Exit)
	}
	for _, g := range b.pendingGotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			addEdge(g.from, target)
		}
		// A goto to a label the builder never saw (malformed source) is
		// dropped; the type checker already rejects it.
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock opens a fresh block with a fall-in edge from the current one
// (when reachable) and makes it current.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		addEdge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// emit appends a straight-line statement to the current block, opening a new
// one if the current point is unreachable (dead code still gets blocks so the
// structure stays inspectable, it just has no predecessors).
func (b *cfgBuilder) emit(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the name of the wrapping LabeledStmt
// ("" when unlabeled) so loops and switches can register labeled
// break/continue targets.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts a new block so goto (from either
		// direction) has a target.
		blk := b.startBlock()
		b.labelBlocks[s.Label.Name] = blk
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.switchBody(s.Body, s.Tag, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		// The assign statement (x := y.(type) or the bare y.(type)) is
		// evaluated once; record it in the dispatch block.
		b.emit(s.Assign)
		b.switchBody(s.Body, nil, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			addEdge(b.cur, b.cfg.Exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			// panic/os.Exit-style: the path dies here, with no edge to Exit.
			b.cur = nil
		}

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty: plain
		// block nodes.
		b.emit(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	condBlock := b.cur
	condBlock.Cond = s.Cond

	thenBlock := b.newBlock()
	addEdge(condBlock, thenBlock)
	b.cur = thenBlock
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		elseBlock := b.newBlock()
		addEdge(condBlock, elseBlock)
		b.cur = elseBlock
		b.stmt(s.Else, "")
		elseEnd = b.cur
	}

	// Join point. Only create it if some branch can reach it.
	if !hasElse {
		after := b.newBlock()
		addEdge(condBlock, after)
		if thenEnd != nil {
			addEdge(thenEnd, after)
		}
		b.cur = after
		return
	}
	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	after := b.newBlock()
	if thenEnd != nil {
		addEdge(thenEnd, after)
	}
	if elseEnd != nil {
		addEdge(elseEnd, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	header := b.startBlock()
	header.Cond = s.Cond

	after := b.newBlock()
	// The post block exists even when s.Post is nil so continue always has a
	// distinct target before the header (keeps edge shape uniform).
	post := b.newBlock()
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	addEdge(post, header)

	body := b.newBlock()
	addEdge(header, body)
	if s.Cond != nil {
		addEdge(header, after)
	}

	b.pushTargets(label, after, post)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		addEdge(b.cur, post)
	}
	b.popTargets()

	// An infinite loop (no cond, no break reaching after) leaves after
	// unreachable; that is correct — code following `for {}` is dead.
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	header := b.startBlock()
	// The RangeStmt itself is the header node: analyzers see the range
	// expression and the key/value bind there once per iteration.
	header.Nodes = append(header.Nodes, s)
	header.Cond = s.X

	after := b.newBlock()
	body := b.newBlock()
	addEdge(header, body)
	addEdge(header, after)

	b.pushTargets(label, after, header)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		addEdge(b.cur, header)
	}
	b.popTargets()
	b.cur = after
}

// switchBody lowers the clause list shared by switch and type switch. tag is
// the dispatch expression (nil for type switches and tagless switches).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, tag ast.Expr, label string) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	dispatch := b.cur
	dispatch.Cond = tag

	after := b.newBlock()

	// break (and labeled break naming this switch) exits the switch; continue
	// passes through to the enclosing loop, so only a break target is pushed.
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: after})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label: "", block: after})
	}

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		addEdge(dispatch, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(dispatch, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		// Record only the case expressions — not the clause itself. The body
		// statements are lowered individually below; recording the whole
		// CaseClause would put the body's reads at the top of the block a
		// second time, out of execution order, and mask flow bugs inside it.
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		b.stmtListFallthrough(cc.Body, blocks, i)
		if b.cur != nil {
			addEdge(b.cur, after)
		}
	}

	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	}
	b.cur = after
}

// stmtListFallthrough lowers a case body, wiring a trailing fallthrough to
// the next clause's block.
func (b *cfgBuilder) stmtListFallthrough(list []ast.Stmt, blocks []*Block, i int) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if b.cur != nil && i+1 < len(blocks) {
				addEdge(b.cur, blocks[i+1])
			}
			b.cur = nil
			return
		}
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	dispatch := b.cur

	after := b.newBlock()
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: after})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label: "", block: after})
	}

	anyClause := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		anyClause = true
		blk := b.newBlock()
		addEdge(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.cur.Nodes = append(b.cur.Nodes, cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			addEdge(b.cur, after)
		}
	}

	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	}
	if !anyClause {
		// select{} blocks forever: after is unreachable, like `for {}`.
		b.cur = after
		return
	}
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	if b.cur == nil {
		// break/continue in dead code: nothing to wire.
		return
	}
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breakTargets, label); t != nil {
			addEdge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := findTarget(b.continueTargets, label); t != nil {
			addEdge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		if target, ok := b.labelBlocks[label]; ok {
			addEdge(b.cur, target)
		} else {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: label})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by stmtListFallthrough; one appearing anywhere else is
		// malformed source. Treat as a terminator.
		b.cur = nil
	}
}

func (b *cfgBuilder) pushTargets(label string, breakTo, continueTo *Block) {
	b.breakTargets = append(b.breakTargets, branchTarget{label: "", block: breakTo})
	b.continueTargets = append(b.continueTargets, branchTarget{label: "", block: continueTo})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: breakTo})
		b.continueTargets = append(b.continueTargets, branchTarget{label: label, block: continueTo})
	}
}

func (b *cfgBuilder) popTargets() {
	// pushTargets pushed one or two entries per stack; pop until the bare
	// entry for this loop is gone. Labeled entries sit above their bare one.
	pop := func(stack []branchTarget) []branchTarget {
		n := len(stack) - 1
		if n >= 0 && stack[n].label != "" {
			n--
		}
		return stack[:n]
	}
	b.breakTargets = pop(b.breakTargets)
	b.continueTargets = pop(b.continueTargets)
}

// findTarget resolves a break/continue label against a target stack: the
// innermost matching entry wins; "" matches the innermost bare entry.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isTerminalCall reports whether a call statement never returns: the builtin
// panic, os.Exit, runtime.Goexit, and the log.Fatal / testing Fatal/Skip
// families. Syntactic matching is deliberate — the builder has no type
// information, and a false negative only adds a conservative exit edge.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit":
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" {
				return true
			}
		case "Goexit":
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "runtime" {
				return true
			}
		case "Fatal", "Fatalf", "Fatalln", "Skip", "Skipf", "SkipNow", "FailNow":
			return true
		}
	}
	return false
}

// FuncBodies returns every function body in the file in source order: named
// declarations first-level, plus each function literal anywhere inside. The
// name is the declaration's name; literals get the enclosing declaration's
// name with a ".func" suffix.
func FuncBodies(f *ast.File) []FuncBody {
	var out []FuncBody
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncBody{Name: fd.Name.Name, Type: fd.Type, Body: fd.Body})
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncBody{Name: name + ".func", Type: lit.Type, Body: lit.Body, Lit: true})
				// Descend further: nested literals get their own entries.
			}
			return true
		})
	}
	return out
}

// FuncBody is one analyzable function: a declaration or a literal.
type FuncBody struct {
	Name string
	Type *ast.FuncType
	Body *ast.BlockStmt
	// Lit marks a function literal.
	Lit bool
}
