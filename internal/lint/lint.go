// Package lint implements ovslint, a stdlib-only static-analysis suite that
// enforces the repository's determinism, pooling, and concurrency invariants.
//
// The OVS training loop (DESIGN.md §10–11) is deterministic and
// allocation-free only by convention: arena tensors must not escape their
// graph, all concurrency must flow through internal/parallel, and
// deterministic paths must never consume map-iteration order or global
// randomness. No compiler checks those conventions; ovslint does. Each
// invariant is guarded by one Analyzer, run over every non-test package of
// the module by cmd/ovslint.
//
// Diagnostics can be suppressed — one site at a time, with a written
// reason — by a comment of the form
//
//	//ovslint:ignore <analyzer> <reason>
//
// placed either at the end of the flagged line or on the line immediately
// above it. A directive with a missing analyzer name, an unknown analyzer
// name, or no reason is itself reported as a diagnostic, so suppressions
// stay auditable.
//
// Only the standard library (go/parser, go/ast, go/token, go/types) is
// used; there is no dependency on golang.org/x/tools.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ovslint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces.
	Doc string
	// Run inspects the package held by the Pass and reports diagnostics
	// through Pass.Reportf.
	Run func(*Pass)
	// Tests marks analyzers whose invariants also hold inside _test.go
	// files; cmd/ovslint -tests runs only these over test sources.
	Tests bool
}

// All returns the full ovslint suite in deterministic order: the five
// syntactic analyzers first, then the four CFG/dataflow analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter, GlobalRand, NakedGo, FloatEq, IgnoredErr,
		DataMut, ArenaEscape, LockBalance, ErrFlow,
	}
}

// knownAnalyzerNames holds every valid //ovslint:ignore target, used to
// reject directives that name an analyzer that does not exist (a typo there
// would otherwise silently suppress nothing).
func knownAnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// PkgPath is the package's import path (e.g. "ovs/internal/tensor").
	// Analyzers that only apply to deterministic packages consult it.
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	diags *[]rawDiag
}

type rawDiag struct {
	pos      token.Pos
	analyzer string
	message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, rawDiag{pos: pos, analyzer: p.Analyzer.Name, message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil when type information is missing
// (e.g. in a package that failed to fully type-check). Analyzers must treat
// nil as "unknown" and stay silent rather than crash.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// A Diagnostic is one resolved finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// IgnorePrefix is the comment prefix that suppresses a diagnostic.
const IgnorePrefix = "//ovslint:ignore"

// ignoreDirective is one parsed //ovslint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
}

// collectIgnores parses every //ovslint:ignore directive in the files,
// returning the well-formed directives plus a diagnostic for each malformed
// one (missing or unknown analyzer name, or missing reason).
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []rawDiag) {
	known := knownAnalyzerNames()
	var dirs []ignoreDirective
	var malformed []rawDiag
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					malformed = append(malformed, rawDiag{pos: c.Pos(), analyzer: "ovslint",
						message: "malformed ignore directive: want //ovslint:ignore <analyzer> <reason>"})
				case !known[fields[0]]:
					malformed = append(malformed, rawDiag{pos: c.Pos(), analyzer: "ovslint",
						message: fmt.Sprintf("ignore directive names unknown analyzer %q", fields[0])})
				case len(fields) < 2:
					malformed = append(malformed, rawDiag{pos: c.Pos(), analyzer: "ovslint",
						message: fmt.Sprintf("ignore directive for %q has no reason; every suppression must say why", fields[0])})
				default:
					dirs = append(dirs, ignoreDirective{
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
						file:     pos.Filename,
						line:     pos.Line,
					})
				}
			}
		}
	}
	return dirs, malformed
}

// suppressionIndex answers "is the diagnostic at (file, line) suppressed for
// this analyzer?". A directive covers its own line and the next line that is
// not itself a directive, so directives can either trail the flagged line or
// stack on the lines immediately above it.
type suppressionIndex struct {
	// covered maps analyzer -> "file:line" -> true.
	covered map[string]map[string]bool
}

func buildSuppressionIndex(dirs []ignoreDirective) *suppressionIndex {
	directiveLines := make(map[string]bool) // "file:line" occupied by any directive
	for _, d := range dirs {
		directiveLines[fmt.Sprintf("%s:%d", d.file, d.line)] = true
	}
	idx := &suppressionIndex{covered: make(map[string]map[string]bool)}
	add := func(analyzer, file string, line int) {
		m := idx.covered[analyzer]
		if m == nil {
			m = make(map[string]bool)
			idx.covered[analyzer] = m
		}
		m[fmt.Sprintf("%s:%d", file, line)] = true
	}
	for _, d := range dirs {
		add(d.analyzer, d.file, d.line)
		// Walk past any stacked directives to the first real line below.
		target := d.line + 1
		for directiveLines[fmt.Sprintf("%s:%d", d.file, target)] {
			target++
		}
		add(d.analyzer, d.file, target)
	}
	return idx
}

func (s *suppressionIndex) suppressed(analyzer, file string, line int) bool {
	return s.covered[analyzer][fmt.Sprintf("%s:%d", file, line)]
}

// RunPackage runs the analyzers over one loaded package and returns the
// unsuppressed diagnostics sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []rawDiag
	for _, a := range analyzers {
		raw = append(raw, runAnalyzer(pkg, a)...)
	}
	return finishPackage(pkg, raw)
}

// runAnalyzer runs one analyzer over one package and returns its raw
// diagnostics. It touches only the analyzer's own output slice, so distinct
// (package, analyzer) units may run concurrently: analyzers read the shared
// AST and type info but never write them.
func runAnalyzer(pkg *Package, a *Analyzer) []rawDiag {
	var raw []rawDiag
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		PkgPath:  pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &raw,
	}
	a.Run(pass)
	return raw
}

// finishPackage applies the package's suppression directives to the raw
// diagnostics and returns the survivors sorted by position.
func finishPackage(pkg *Package, raw []rawDiag) []Diagnostic {
	dirs, malformed := collectIgnores(pkg.Fset, pkg.Files)
	idx := buildSuppressionIndex(dirs)

	var out []Diagnostic
	for _, d := range raw {
		pos := pkg.Fset.Position(d.pos)
		if idx.suppressed(d.analyzer, pos.Filename, pos.Line) {
			continue
		}
		out = append(out, Diagnostic{Pos: pos, Analyzer: d.analyzer, Message: d.message})
	}
	// Malformed directives are never suppressible; a broken suppression
	// must not be able to hide itself.
	for _, d := range malformed {
		out = append(out, Diagnostic{Pos: pkg.Fset.Position(d.pos), Analyzer: d.analyzer, Message: d.message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// deterministicPkgs lists the packages whose outputs must be bitwise
// reproducible across runs and worker counts (DESIGN.md §7, §10). mapiter
// and globalrand only fire inside these.
var deterministicPkgs = map[string]bool{
	"tensor":     true,
	"autodiff":   true,
	"nn":         true,
	"core":       true,
	"sim":        true,
	"experiment": true,
}

// isDeterministicPkg reports whether the import path names one of the
// module's deterministic packages.
func isDeterministicPkg(path string) bool {
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	return deterministicPkgs[base] && strings.Contains(path, "internal/")
}

// isFloat reports whether t is (or has underlying) float32/float64 or an
// untyped float constant type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// errorType is the predeclared error interface type.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the predeclared error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// approvedCompareHelper matches names of functions inside which exact
// floating-point comparison is considered intentional: tolerance helpers
// and NaN/sentinel predicates.
var approvedCompareHelper = regexp.MustCompile(`(?i)(almost|approx|close|within|tol|isnan)`)

// enclosingFuncName returns the name of the innermost named function or
// method declaration whose body contains pos, or "" when pos is at package
// level. Function literals inherit the name of the declaration they appear
// in.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			name = fd.Name.Name
			break
		}
	}
	return name
}
