package lint

import (
	"go/ast"
	"strings"
)

// NakedGo flags `go` statements outside internal/parallel. Raw goroutines
// bypass the deterministic worker pool (DESIGN.md §10): they are unbounded,
// their interleaving is scheduler-dependent, and nothing joins them before
// results are read. All fan-out must flow through parallel.For / the pool so
// chunking — and therefore floating-point reduction order — is fixed.
var NakedGo = &Analyzer{
	Name:  "nakedgo",
	Doc:   "flags go statements outside internal/parallel; raw goroutines bypass the deterministic worker pool",
	Tests: true,
	Run: func(p *Pass) {
		if strings.HasSuffix(p.PkgPath, "internal/parallel") {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "naked go statement: route concurrency through internal/parallel so scheduling stays deterministic and bounded")
				}
				return true
			})
		}
	},
}
