package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildTestCFG parses one function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc mark(string) {}\n\nfunc f(c chan int, x int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("function f not found")
	return nil
}

// exitMarkers solves a reaching-markers dataflow over the CFG: the returned
// set holds every mark("...") literal that lies on some path from entry to
// the exit block. It exercises BuildCFG and SolveForward together — a wrong
// edge shows up as a marker wrongly present or absent.
func exitMarkers(cfg *CFG) []string {
	type fact = map[string]bool
	spec := FlowSpec[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact {
			if len(a) == 0 {
				return b
			}
			if len(b) == 0 {
				return a
			}
			c := make(fact, len(a)+len(b))
			for k := range a {
				c[k] = true
			}
			for k := range b {
				c[k] = true
			}
			return c
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(f fact, n ast.Node) fact {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return f
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return f
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "mark" || len(call.Args) != 1 {
				return f
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return f
			}
			out := make(fact, len(f)+1)
			for k := range f {
				out[k] = true
			}
			out[strings.Trim(lit.Value, `"`)] = true
			return out
		},
	}
	_, out := SolveForward(cfg, spec)
	var names []string
	for k := range out[cfg.Exit] {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func wantMarkers(t *testing.T, body string, want ...string) {
	t.Helper()
	cfg := buildTestCFG(t, body)
	got := exitMarkers(cfg)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("markers reaching exit = %v, want %v", got, want)
	}
}

func TestCFGIfElse(t *testing.T) {
	wantMarkers(t, `
	if x > 0 {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")`, "after", "else", "then")
}

func TestCFGIfWithoutElseSkips(t *testing.T) {
	wantMarkers(t, `
	if x > 0 {
		mark("then")
		return
	}
	mark("after")`, "after", "then")
}

func TestCFGForZeroIterationPath(t *testing.T) {
	// The loop body is optional: "after" must be reachable without "body".
	cfg := buildTestCFG(t, `
	for i := 0; i < x; i++ {
		mark("body")
	}
	mark("after")`)
	got := exitMarkers(cfg)
	if strings.Join(got, ",") != "after,body" {
		t.Fatalf("markers = %v", got)
	}
}

func TestCFGLabeledContinueAndBreak(t *testing.T) {
	wantMarkers(t, `
outer:
	for i := 0; i < x; i++ {
		for {
			mark("inner")
			if x == 1 {
				continue outer
			}
			if x == 2 {
				break outer
			}
			mark("tail")
		}
	}
	mark("after")`, "after", "inner", "tail")
}

func TestCFGLabeledContinueSkipsDeadTail(t *testing.T) {
	// Code after an unconditional labeled continue is unreachable.
	wantMarkers(t, `
outer:
	for i := 0; i < x; i++ {
		for {
			mark("inner")
			continue outer
			mark("dead")
		}
	}
	mark("after")`, "after", "inner")
}

func TestCFGGoto(t *testing.T) {
	wantMarkers(t, `
	mark("start")
	goto end
	mark("dead")
end:
	mark("end")`, "end", "start")
}

func TestCFGGotoBackward(t *testing.T) {
	wantMarkers(t, `
	i := 0
again:
	mark("loop")
	i++
	if i < x {
		goto again
	}
	mark("done")`, "done", "loop")
}

func TestCFGSelect(t *testing.T) {
	wantMarkers(t, `
	select {
	case <-c:
		mark("recv")
	case c <- 1:
		mark("send")
	default:
		mark("def")
	}
	mark("after")`, "after", "def", "recv", "send")
}

func TestCFGEmptySelectNeverExits(t *testing.T) {
	wantMarkers(t, `
	mark("before")
	select {}
	mark("dead")`)
	// No markers reach exit: the empty select blocks forever, so even
	// "before" lies on no path to the exit block.
}

func TestCFGSwitchFallthrough(t *testing.T) {
	wantMarkers(t, `
	switch x {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	default:
		mark("def")
	}
	mark("after")`, "after", "def", "one", "two")
}

func TestCFGSwitchWithoutDefaultHasSkipEdge(t *testing.T) {
	wantMarkers(t, `
	switch x {
	case 1:
		mark("one")
	}
	mark("after")`, "after", "one")
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	wantMarkers(t, `
	if x == 0 {
		mark("doomed")
		panic("boom")
	}
	mark("after")`, "after")
}

func TestCFGDeferInLoop(t *testing.T) {
	// Defer statements are ordinary block nodes; the builder must not choke
	// on one inside a loop, and the after-path stays reachable.
	wantMarkers(t, `
	for i := 0; i < x; i++ {
		defer mark("deferred")
		mark("body")
	}
	mark("after")`, "after", "body")
}

func TestCFGStructure(t *testing.T) {
	cfg := buildTestCFG(t, `
	if x > 0 {
		return
	}
	mark("after")`)
	if len(cfg.Exit.Succs) != 0 {
		t.Errorf("exit block has %d successors, want 0", len(cfg.Exit.Succs))
	}
	for i, b := range cfg.Blocks {
		if b.Index != i {
			t.Errorf("block %d has Index %d", i, b.Index)
		}
	}
	// The return must produce an edge into Exit from a non-final block.
	intoExit := 0
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == cfg.Exit {
				intoExit++
			}
		}
	}
	if intoExit < 2 {
		t.Errorf("exit block has %d incoming edges, want at least 2 (return + fall-through)", intoExit)
	}
}

func TestFuncBodiesFindsLiterals(t *testing.T) {
	src := `package p

func a() {
	f := func() {
		g := func() {}
		g()
	}
	f()
}

func b() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fb := range FuncBodies(file) {
		names = append(names, fb.Name)
	}
	if len(names) != 4 {
		t.Fatalf("FuncBodies found %d bodies (%v), want 4 (a, b, and two literals)", len(names), names)
	}
}
