package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package of the module. Only non-test
// files are loaded: the invariants ovslint guards protect production paths,
// and test files legitimately compare floats, range maps, and measure time.
type Package struct {
	// Path is the import path, e.g. "ovs/internal/tensor".
	Path string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks every non-test package under a module
// root using only the standard library. Module-internal imports are resolved
// by the loader itself (each directory is checked exactly once and cached);
// standard-library imports fall back to go/importer's source importer.
type Loader struct {
	Fset *token.FileSet

	// Tests additionally loads each package's in-package _test.go files
	// (external foo_test packages are skipped: they cannot join the package
	// they test in a single type-check unit). Set it before the first load.
	Tests bool

	root   string // absolute module root (directory containing go.mod)
	module string // module path from go.mod
	cache  map[string]*Package
	std    types.ImporterFrom
	// TypeErrors collects type-checker errors without aborting the load,
	// so a partially broken package still gets best-effort linting.
	TypeErrors []error
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader builds a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root %s: %w", abs, err)
	}
	m := moduleDirective.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:   fset,
		root:   abs,
		module: string(m[1]),
		cache:  make(map[string]*Package),
		std:    std,
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadAll parses and type-checks every non-test package in the module, in
// deterministic (sorted import path) order.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := l.PackageDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path := l.importPathFor(dir)
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// PackageDirs returns every package directory of the module in sorted order,
// without parsing or type-checking anything. The incremental driver uses it
// to hash packages before deciding which ones to load.
func (l *Loader) PackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// PathFor returns the import path of the package in dir.
func (l *Loader) PathFor(dir string) string { return l.importPathFor(dir) }

// Load loads (or returns the cached) package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	return l.load(l.importPathFor(dir), dir)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && includeFile(dir, e.Name()) {
			return true
		}
	}
	return false
}

// includeFile reports whether name belongs to the package as built on the
// host: non-test Go files whose filename suffix and //go:build constraints
// match the current GOOS/GOARCH. Without this filter, mutually exclusive
// files (foo_amd64.go vs foo_noasm.go) would both load and their stub
// declarations would collide, flooding TypeErrors and degrading the
// type-sensitive analyzers.
func includeFile(dir, name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
		return false
	}
	match, err := build.Default.MatchFile(dir, name)
	return err == nil && match
}

// includeTestFile reports whether name is a _test.go file that builds on the
// host.
func includeTestFile(dir, name string) bool {
	if !strings.HasSuffix(name, "_test.go") {
		return false
	}
	match, err := build.Default.MatchFile(dir, name)
	return err == nil && match
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// load parses and type-checks the package in dir, caching by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !includeFile(dir, e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	if l.Tests {
		pkgName := files[0].Name.Name
		for _, e := range ents {
			if e.IsDir() || !includeTestFile(dir, e.Name()) {
				continue
			}
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", e.Name(), err)
			}
			// External test packages (package foo_test) cannot join foo in
			// one type-check unit; only in-package test files are linted.
			if f.Name.Name == pkgName {
				files = append(files, f)
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { l.TypeErrors = append(l.TypeErrors, err) },
	}
	//ovslint:ignore ignorederr type errors are collected through conf.Error so linting stays best-effort
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are loaded
// from source by the loader, everything else is delegated to the standard
// library's source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module)))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: package %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
