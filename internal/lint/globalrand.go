package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRand flags uses of the process-global math/rand generator and of
// time.Now inside the deterministic packages. Every random draw there must
// come from an explicitly seeded *rand.Rand threaded through the call chain
// (DESIGN.md §7); the global generator and the wall clock are hidden inputs
// that change between runs. Constructors (rand.New, rand.NewSource, ...) are
// exempt — building a seeded generator is exactly the approved pattern.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flags math/rand package-level functions and time.Now in deterministic packages",
	Run: func(p *Pass) {
		if !isDeterministicPkg(p.PkgPath) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || p.Info == nil {
					return true
				}
				pn, ok := p.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "math/rand", "math/rand/v2":
					if _, isFn := p.Info.Uses[sel.Sel].(*types.Func); isFn && !strings.HasPrefix(sel.Sel.Name, "New") {
						p.Reportf(sel.Pos(), "call to %s.%s draws from the process-global generator; thread a seeded *rand.Rand instead", pn.Imported().Path(), sel.Sel.Name)
					}
				case "time":
					if sel.Sel.Name == "Now" {
						p.Reportf(sel.Pos(), "time.Now in a deterministic package: the wall clock is a hidden input; pass timestamps in, or annotate if the value never reaches a result")
					}
				}
				return true
			})
		}
	},
}
