// Package errflow exercises the errflow analyzer: an error assigned to a
// variable must be read (condition, return, argument, explicit discard) on
// every path before it is overwritten or the function exits.
package errflow

import (
	"context"
	"errors"
)

func fallible() error { return errors.New("boom") }

func use(err error) {}

// checkedOnOnePath reads err only inside the debug branch; the other path
// drops it.
func checkedOnOnePath(debug bool) error {
	err := fallible() // want "error assigned here is never read on some path"
	if debug {
		return err
	}
	return nil
}

// checkedEverywhere reads the error in the condition: both branches cover
// the assignment.
func checkedEverywhere() int {
	err := fallible()
	if err != nil {
		return 1
	}
	return 0
}

// overwrittenUnread loses the first assignment before anything reads it.
func overwrittenUnread() error {
	err := fallible() // want "error assigned here is never read on some path"
	err = fallible()
	return err
}

// explicitDiscard counts as a read: `_ = err` is the documented way to say
// "I mean to drop this".
func explicitDiscard() {
	err := fallible()
	_ = err
}

// passedAsArgument is a read like any other.
func passedAsArgument() {
	err := fallible()
	use(err)
}

// nakedReturnReads covers a named result via the naked return.
func nakedReturnReads() (err error) {
	err = fallible()
	return
}

// nilResetIsIntentional swallows the error by explicit nil reset; resets
// are deliberate and out of scope.
func nilResetIsIntentional(swallow bool) (err error) {
	err = fallible()
	if swallow {
		err = nil
	}
	return
}

// rangeValueIsFine is the collector pattern: per-iteration bindings read in
// the body, with a legitimate zero-iteration path.
func rangeValueIsFine(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// capturedByClosure is out of scope: reads inside the literal are invisible
// to an intraprocedural pass, so the variable is not tracked.
func capturedByClosure() func() error {
	err := fallible()
	return func() error { return err }
}

// ctxErrCheckedOnOnePath polls cancellation but only acts on it in the
// verbose branch — the quiet path drops the cancellation on the floor, which
// is exactly the bug class the cancellable runtime must not reintroduce.
func ctxErrCheckedOnOnePath(ctx context.Context, verbose bool) error {
	err := ctx.Err() // want "error assigned here is never read on some path"
	if verbose {
		return err
	}
	return nil
}

// ctxErrOverwrittenUnread polls twice and loses the first result before
// anything reads it.
func ctxErrOverwrittenUnread(ctx context.Context) error {
	err := ctx.Err() // want "error assigned here is never read on some path"
	err = ctx.Err()
	return err
}

// ctxErrGate is the canonical cancellation safe-point: the poll is read in
// the condition on every path.
func ctxErrGate(ctx context.Context) error {
	err := ctx.Err()
	if err != nil {
		return context.Cause(ctx)
	}
	return nil
}
