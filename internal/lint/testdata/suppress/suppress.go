// Package suppress verifies that an //ovslint:ignore directive silences
// exactly the analyzer it names: a line that trips two analyzers with a
// directive for one must still report the other. It also checks that
// directives stack on consecutive lines above the flagged line.
package suppress

import "errors"

func mightFail() error { return errors.New("boom") }

func onlyNamedAnalyzerSilenced(a, b float64) bool {
	//ovslint:ignore floateq only the float comparison is audited in this fixture
	_, ok := mightFail(), a == b // want "error discarded with blank identifier"
	return ok
}

func bothSuppressedByStackedDirectives(a, b float64) bool {
	//ovslint:ignore floateq fixture demonstrating stacked suppressions
	//ovslint:ignore ignorederr fixture demonstrating stacked suppressions
	_, ok := mightFail(), a == b
	return ok
}

func trailingDirective(a, b float64) bool {
	return a == b //ovslint:ignore floateq trailing directives cover their own line
}

func unsuppressedControl(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}
