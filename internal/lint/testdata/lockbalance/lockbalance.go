// Package lockbalance exercises the lockbalance analyzer: every mutex Lock
// must be matched by an Unlock (direct or deferred) on every control-flow
// path that reaches the function exit.
package lockbalance

import "sync"

type cache struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// leakOnEarlyReturn misses the unlock on the not-found path.
func (c *cache) leakOnEarlyReturn(key string) int {
	c.mu.Lock() // want "c.mu.Lock\(\) is not released on every path"
	v, ok := c.data[key]
	if !ok {
		return -1
	}
	c.mu.Unlock()
	return v
}

// deferredUnlock covers every path from the moment it is registered.
func (c *cache) deferredUnlock(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.data[key]; ok {
		return v
	}
	return -1
}

// multiSiteUnlock is the acquirePack shape: one lock, several explicit
// unlock sites, each path covered.
func (c *cache) multiSiteUnlock(key string, insert bool) int {
	c.mu.Lock()
	if v, ok := c.data[key]; ok {
		c.mu.Unlock()
		return v
	}
	if insert {
		c.data[key] = 0
		c.mu.Unlock()
		return 0
	}
	c.mu.Unlock()
	return -1
}

// readLockLeak misses the RUnlock on one branch; read and write locks are
// tracked separately.
func (c *cache) readLockLeak(key string) int {
	c.rw.RLock() // want "c.rw.RLock\(\) is not released on every path"
	if v, ok := c.data[key]; ok {
		c.rw.RUnlock()
		return v
	}
	return -1
}

// heldAcrossPanic never reaches the exit block on the failing path, so the
// deliberate hold is not a finding.
func (c *cache) heldAcrossPanic(key string) int {
	c.mu.Lock()
	v, ok := c.data[key]
	if !ok {
		panic("missing key: " + key)
	}
	c.mu.Unlock()
	return v
}

// deferredClosureUnlock releases inside a deferred literal; the analyzer
// honors unlocks in deferred closures.
func (c *cache) deferredClosureUnlock(key string) int {
	c.mu.Lock()
	defer func() {
		c.data[key]++
		c.mu.Unlock()
	}()
	return c.data[key]
}
