// Package mapiter exercises the mapiter analyzer: iterating a map in a
// deterministic package while accumulating floats or appending to a
// returned slice. The test harness loads this fixture under the package
// path of a deterministic package.
package mapiter

func sumValues(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want "accumulates into a float"
		total += v
	}
	return total
}

func sumValuesPlainAssign(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want "accumulates into a float"
		total = total + v
	}
	return total
}

func collectKeys(w map[string]float64) []string {
	var keys []string
	for k := range w { // want "appends to a returned slice"
		keys = append(keys, k)
	}
	return keys
}

func countEntries(w map[string]float64) int {
	n := 0
	for range w { // integer count is order-insensitive: not flagged
		n++
	}
	return n
}

func appendScratch(w map[string]float64) int {
	var scratch []string
	for k := range w { // scratch is never returned: not flagged
		scratch = append(scratch, k)
	}
	return len(scratch)
}

func sumSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs { // slice iteration is ordered: not flagged
		total += v
	}
	return total
}

func sumSuppressed(w map[string]float64) float64 {
	total := 0.0
	//ovslint:ignore mapiter fixture demonstrating an audited suppression
	for _, v := range w {
		total += v
	}
	return total
}

// The shapes below mirror the pack-cache code (internal/tensor/packcache.go)
// so the analyzer's verdict on each is pinned by a fixture: an LRU eviction
// scan compares integer clocks and a byte-budget check sums integers — both
// order-insensitive and legal — while averaging float hit rates across the
// entry map is exactly the last-ulp lottery the analyzer exists to catch.

func evictVictim(clock map[int]int64) int {
	victim, oldest := -1, int64(1<<62)
	for key, tick := range clock { // strict integer min is order-insensitive: not flagged
		if tick < oldest {
			victim, oldest = key, tick
		}
	}
	return victim
}

func packedBytes(sizes map[int]int) int {
	total := 0
	for _, n := range sizes { // integer byte accounting: not flagged
		total += n
	}
	return total
}

func meanHitRate(rates map[int]float64) float64 {
	sum := 0.0
	for _, r := range rates { // want "accumulates into a float"
		sum += r
	}
	return sum / float64(len(rates))
}
