// Package mapiter exercises the mapiter analyzer: iterating a map in a
// deterministic package while accumulating floats or appending to a
// returned slice. The test harness loads this fixture under the package
// path of a deterministic package.
package mapiter

func sumValues(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want "accumulates into a float"
		total += v
	}
	return total
}

func sumValuesPlainAssign(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want "accumulates into a float"
		total = total + v
	}
	return total
}

func collectKeys(w map[string]float64) []string {
	var keys []string
	for k := range w { // want "appends to a returned slice"
		keys = append(keys, k)
	}
	return keys
}

func countEntries(w map[string]float64) int {
	n := 0
	for range w { // integer count is order-insensitive: not flagged
		n++
	}
	return n
}

func appendScratch(w map[string]float64) int {
	var scratch []string
	for k := range w { // scratch is never returned: not flagged
		scratch = append(scratch, k)
	}
	return len(scratch)
}

func sumSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs { // slice iteration is ordered: not flagged
		total += v
	}
	return total
}

func sumSuppressed(w map[string]float64) float64 {
	total := 0.0
	//ovslint:ignore mapiter fixture demonstrating an audited suppression
	for _, v := range w {
		total += v
	}
	return total
}
