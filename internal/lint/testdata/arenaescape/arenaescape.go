// Package arenaescape exercises the arenaescape analyzer: tensors drawn
// from the arena (tensor.Get/GetLike, Arena.Get, Graph.Alloc) are reclaimed
// on Graph.Reset and must not outlive the frame through fields, globals,
// channels, or returns.
package arenaescape

import (
	"ovs/internal/autodiff"
	"ovs/internal/tensor"
)

type holder struct {
	buf *tensor.Tensor
}

type graphLike struct {
	owned []*tensor.Tensor
}

var global *tensor.Tensor

// fieldEscape parks an arena buffer in a struct field that outlives Reset.
func fieldEscape(h *holder) {
	t := tensor.Get(4)
	h.buf = t // want "arena-allocated tensor stored into a struct field"
}

// globalEscape parks an arena buffer in a package-level variable.
func globalEscape() {
	global = tensor.Get(4) // want "arena-allocated tensor stored into a package-level variable"
}

// returnEscape hands an arena buffer to a caller that cannot see the arena.
func returnEscape() *tensor.Tensor {
	t := tensor.Get(4)
	return t // want "arena-allocated tensor returned to the caller"
}

// channelEscape sends an arena buffer to an unknown receiver.
func channelEscape(ch chan *tensor.Tensor) {
	t := tensor.Get(4)
	ch <- t // want "arena-allocated tensor sent on a channel"
}

// reshapeEscape returns a view: views share the arena-owned backing array.
func reshapeEscape() *tensor.Tensor {
	t := tensor.Get(4)
	return t.Reshape(2, 2) // want "arena-allocated tensor returned to the caller"
}

// putSettles returns the buffer to the pool before the frame ends.
func putSettles() {
	t := tensor.Get(4)
	t.Fill(1)
	tensor.Put(t)
}

// arenaPutSettles does the same through an explicit arena.
func arenaPutSettles(a *tensor.Arena) float64 {
	t := a.Get(4)
	v := t.Data[0]
	a.Put(t)
	return v
}

// ownedAppendSettles registers the tensor with a graph-style ownership
// ledger (the Graph.Alloc pattern); Reset reclaims it from there.
func ownedAppendSettles(g *graphLike) *tensor.Tensor {
	t := tensor.Get(4)
	g.owned = append(g.owned, t)
	return t
}

// cloneLaunders copies the data out of the arena entirely.
func cloneLaunders() *tensor.Tensor {
	t := tensor.Get(4)
	defer tensor.Put(t)
	return t.Clone()
}

// nodeFieldAllowed stores a Graph.Alloc tensor into an autodiff node: nodes
// die with the tape at the same Reset that reclaims the tensor.
func nodeFieldAllowed(g *autodiff.Graph, n *autodiff.Node) {
	n.Grad = g.Alloc(4)
}

// branchEscape leaks on only one path; the dataflow still sees it.
func branchEscape(h *holder, cond bool) {
	t := tensor.Get(4)
	if cond {
		tensor.Put(t)
		return
	}
	h.buf = t // want "arena-allocated tensor stored into a struct field"
}
