// Package nakedgo exercises the nakedgo analyzer: raw go statements outside
// internal/parallel. The test harness also reloads this fixture under the
// internal/parallel package path to check the exemption.
package nakedgo

import "sync"

func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want "naked go statement"
		defer wg.Done()
	}()
}

func spawnNamed(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go run(wg, work) // want "naked go statement"
}

func run(wg *sync.WaitGroup, work func()) {
	defer wg.Done()
	work()
}

func spawnSuppressed(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	//ovslint:ignore nakedgo fixture demonstrating an audited suppression
	go run(wg, work)
}

// Mirrors a tempting pack-cache "optimization": warming packed panels on a
// raw goroutine. Any such fan-out must go through internal/parallel so
// worker count and splice order stay deterministic.
func warmPacks(wg *sync.WaitGroup, panels []func()) {
	for _, pack := range panels {
		wg.Add(1)
		go func(p func()) { // want "naked go statement"
			defer wg.Done()
			p()
		}(pack)
	}
}
