// Package datamut exercises the datamut analyzer: raw writes through a
// tensor's Data slice are flagged unless the tensor is provably fresh (never
// packable) or the enclosing declaration calls NoteMutation on it.
package datamut

import (
	"ovs/internal/tensor"
)

// gradHolder mimics an autodiff node: Grad-selector provenance is safe.
type gradHolder struct {
	Grad *tensor.Tensor
}

// rawParamWrite writes through a parameter whose packability is unknown.
func rawParamWrite(w *tensor.Tensor) {
	w.Data[0] = 1 // want "raw write to w.Data bypasses the pack-cache mutation version"
}

// notedParamWrite is the sanctioned mutator pattern: the version bump makes
// the write visible to the pack cache.
func notedParamWrite(w *tensor.Tensor) {
	w.NoteMutation()
	w.Data[0] = 1
}

// freshLocalWrite stores into a constructor result: no packed panels can
// exist for a tensor that has never left this frame.
func freshLocalWrite() *tensor.Tensor {
	t := tensor.Zeros(2, 2)
	t.Data[0] = 1
	return t
}

// freshKernelResultWrite stores into a freshly allocated kernel output.
func freshKernelResultWrite(a, b *tensor.Tensor) *tensor.Tensor {
	s := tensor.Add(a, b)
	s.Data[0] += 1
	return s
}

// aliasWrite reaches the parameter's data through a local alias; the
// dataflow follows the binding.
func aliasWrite(w *tensor.Tensor) {
	d := w.Data
	d[0] = 2 // want "raw write to w.Data bypasses the pack-cache mutation version"
}

// copyIntoParam clobbers the parameter wholesale without a version bump.
func copyIntoParam(w *tensor.Tensor, src []float64) {
	copy(w.Data, src) // want "raw write to w.Data bypasses the pack-cache mutation version"
}

// copyIntoFresh is fine: the destination was born here.
func copyIntoFresh(src []float64) *tensor.Tensor {
	t := tensor.New(len(src))
	copy(t.Data, src)
	return t
}

// inPlaceKernelAlias writes through the pass-through result of an in-place
// kernel; the provenance (and the diagnostic) belongs to the underlying dst.
func inPlaceKernelAlias(w *tensor.Tensor) {
	v := tensor.ScaleInPlace(w, 2)
	v.Data[0] = 1 // want "raw write to w.Data bypasses the pack-cache mutation version"
}

// notedInPlaceKernelAlias: noting the dst sanctions writes through the view.
func notedInPlaceKernelAlias(w *tensor.Tensor) {
	w.NoteMutation()
	v := tensor.ScaleInPlace(w, 2)
	v.Data[0] = 1
}

// gradWrite stores into a gradient, which is never marked packable.
func gradWrite(n *gradHolder) {
	n.Grad.Data[0] = 1
}

// mergeUnsafe joins a fresh path with a parameter path: the merged value is
// only as safe as its least safe origin.
func mergeUnsafe(w *tensor.Tensor, cond bool) {
	t := tensor.Zeros(2)
	if cond {
		t = w
	}
	t.Data[0] = 3 // want "bypasses the pack-cache mutation version"
}

// closureNoted writes inside a worker closure; the single bump in the
// enclosing declaration covers it (bumping per worker would race).
func closureNoted(w *tensor.Tensor) {
	w.NoteMutation()
	run := func(i int) {
		w.Data[i] = 0
	}
	run(0)
}

// closureUnnoted is the same shape without the bump.
func closureUnnoted(w *tensor.Tensor) {
	run := func(i int) {
		w.Data[i] = 0 // want "raw write to w.Data bypasses the pack-cache mutation version"
	}
	run(0)
}
