// Package ignorederr exercises the ignorederr analyzer: bare calls and
// blank-identifier assignments that discard an error.
package ignorederr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mightFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func bareCall() {
	mightFail() // want "discards its error result"
}

func deferredCall() {
	defer mightFail() // want "discards its error result"
}

func blankAssign() {
	_ = mightFail() // want "error discarded with blank identifier"
}

func blankInTuple() int {
	v, _ := pair() // want "error discarded with blank identifier"
	return v
}

func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	_, err := pair() // discarding the int is fine; the error is kept
	return err
}

func exemptWriters(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("fmt printers are exempt")
	fmt.Fprintf(buf, "%d", 1)
	buf.WriteString("bytes.Buffer writes never fail")
	sb.WriteString("strings.Builder writes never fail")
}

func suppressedCall() {
	mightFail() //ovslint:ignore ignorederr fixture demonstrating an audited suppression
}

// Durability syscalls are the error paths that matter most for crash-safe
// writes: a dropped Sync or Rename error means a checkpoint that looks
// written but may not survive power loss. The analyzer must flag them like
// any other error-returning call.
func durabilityPaths(f *os.File) {
	f.Sync()                      // want "discards its error result"
	os.Rename("ckpt.tmp", "ckpt") // want "discards its error result"
	_ = f.Sync()                  // want "error discarded with blank identifier"
	_ = os.Rename("a.tmp", "a")   // want "error discarded with blank identifier"
}

func durabilityHandled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename("ckpt.tmp", "ckpt")
}

// ctx.Err() is a special temptation to drop: it reads like a status query,
// but it IS the error — a bare poll silently discards the cancellation the
// caller was supposed to act on.
func ctxDiscards(ctx context.Context) {
	ctx.Err()     // want "discards its error result"
	_ = ctx.Err() // want "error discarded with blank identifier"
}

func ctxHandled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Cause(ctx)
}
