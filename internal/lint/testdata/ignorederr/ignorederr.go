// Package ignorederr exercises the ignorederr analyzer: bare calls and
// blank-identifier assignments that discard an error.
package ignorederr

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func mightFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func bareCall() {
	mightFail() // want "discards its error result"
}

func deferredCall() {
	defer mightFail() // want "discards its error result"
}

func blankAssign() {
	_ = mightFail() // want "error discarded with blank identifier"
}

func blankInTuple() int {
	v, _ := pair() // want "error discarded with blank identifier"
	return v
}

func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	_, err := pair() // discarding the int is fine; the error is kept
	return err
}

func exemptWriters(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("fmt printers are exempt")
	fmt.Fprintf(buf, "%d", 1)
	buf.WriteString("bytes.Buffer writes never fail")
	sb.WriteString("strings.Builder writes never fail")
}

func suppressedCall() {
	mightFail() //ovslint:ignore ignorederr fixture demonstrating an audited suppression
}
