// Package floateq exercises the floateq analyzer: exact ==/!= between
// floating-point operands outside approved comparison helpers.
package floateq

func exactEqual(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func exactNotEqual(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func nanIdiom(x float64) bool {
	return x != x // the portable NaN test: not flagged
}

func almostEqual(a, b float64) bool {
	if a == b { // approved helper name: not flagged
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func intEqual(a, b int) bool {
	return a == b // integers are exact: not flagged
}

const eps = 1e-9

func constantsOnly() bool {
	return eps == 1e-9 // both operands constant: not flagged
}

func suppressedSentinel(x float64) bool {
	return x == 0 //ovslint:ignore floateq fixture demonstrating an audited suppression
}
