// Package globalrand exercises the globalrand analyzer: process-global
// math/rand functions and time.Now inside a deterministic package. The test
// harness loads this fixture under a deterministic package path.
package globalrand

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want "process-global generator"
}

func globalFloat() float64 {
	return rand.Float64() // want "process-global generator"
}

func seededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors build the approved seeded generator: not flagged
	return rng.Float64()
}

func wallClock() time.Time {
	return time.Now() // want "wall clock is a hidden input"
}

func suppressedClock() int64 {
	//ovslint:ignore globalrand fixture demonstrating an audited suppression
	return time.Now().UnixNano()
}
