// Package malformed exercises directive validation: an ignore comment with
// a missing analyzer, an unknown analyzer, or no reason is itself a
// diagnostic, and can never suppress anything (including itself). The
// expected diagnostics are asserted explicitly by the test rather than via
// want comments, since the flagged line IS the directive comment.
package malformed

//ovslint:ignore
var a = 1

//ovslint:ignore floateq
var b = 2

//ovslint:ignore nosuchanalyzer because the name is wrong
var c = 3
