package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IgnoredErr flags discarded error returns in non-test code: bare call
// statements (including deferred calls) whose callee returns an error, and
// blank-identifier assignments of an error value. A swallowed error turns an
// I/O or shape failure into silently wrong tables. Always-nil writers are
// exempt — the fmt print family, bytes.Buffer, and strings.Builder — since
// checking those is pure noise. Anything else must handle the error or carry
// an //ovslint:ignore explaining why the failure is unreportable.
var IgnoredErr = &Analyzer{
	Name:  "ignorederr",
	Doc:   "flags discarded error returns (_ = and bare calls) in non-test code",
	Tests: true,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						checkBareCall(p, call, "")
					}
				case *ast.DeferStmt:
					checkBareCall(p, s.Call, "deferred ")
				case *ast.AssignStmt:
					checkBlankErrAssign(p, s)
				}
				return true
			})
		}
	},
}

func checkBareCall(p *Pass, call *ast.CallExpr, kind string) {
	if !callReturnsError(p, call) || exemptErrCall(p, call) {
		return
	}
	p.Reportf(call.Pos(), "%scall to %s discards its error result; handle it or annotate why the failure is unreportable", kind, calleeName(call))
}

func checkBlankErrAssign(p *Pass, as *ast.AssignStmt) {
	blankAt := func(i int) (*ast.Ident, bool) {
		if i >= len(as.Lhs) {
			return nil, false
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		return id, ok && id.Name == "_"
	}
	switch {
	case len(as.Rhs) == len(as.Lhs):
		for i, rhs := range as.Rhs {
			if id, blank := blankAt(i); blank && isErrorType(p.TypeOf(rhs)) {
				if call, ok := rhs.(*ast.CallExpr); !ok || !exemptErrCall(p, call) {
					p.Reportf(id.Pos(), "error discarded with blank identifier; handle it or annotate why the failure is unreportable")
				}
			}
		}
	case len(as.Rhs) == 1:
		tuple, ok := p.TypeOf(as.Rhs[0]).(*types.Tuple)
		if !ok {
			return
		}
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		if isCall && exemptErrCall(p, call) {
			return
		}
		for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
			if id, blank := blankAt(i); blank && isErrorType(tuple.At(i).Type()) {
				p.Reportf(id.Pos(), "error discarded with blank identifier; handle it or annotate why the failure is unreportable")
			}
		}
	}
}

// callReturnsError reports whether any result of the call is the error type.
func callReturnsError(p *Pass, call *ast.CallExpr) bool {
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // builtin, conversion, or unknown
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// exemptErrCall reports whether the callee is on the always-nil allowlist:
// fmt's print family, and methods of bytes.Buffer / strings.Builder.
func exemptErrCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return receiverIsAlwaysNilWriter(recv.Type())
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	return false
}

func receiverIsAlwaysNilWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}
