package lint

import "go/ast"

// This file implements the forward worklist solver the dataflow analyzers
// share. An analysis plugs in a lattice (join + equality) and a transfer
// function over block nodes; the solver iterates to a fixed point.
//
// The solver is generic over the fact type F. Facts must be treated as
// immutable by Transfer (return a fresh or shared value, never mutate the
// input in place) so that block-entry facts stay valid across worklist
// revisits. All analyzers in this package use small persistent-ish maps
// copied on write, which is plenty fast: function bodies here are a few
// hundred statements at most.
//
// Determinism: the worklist is an ordered queue seeded with blocks in index
// (source) order and deduplicated, so the iteration order — and therefore
// any diagnostic emitted from inside a transfer function — is a pure
// function of the CFG.

// A FlowSpec defines one forward dataflow analysis over a CFG.
type FlowSpec[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges the facts of two predecessors.
	Join func(a, b F) F
	// Equal reports whether two facts are equal (fixed-point test).
	Equal func(a, b F) bool
	// Transfer applies one block node (a statement) to the fact.
	Transfer func(fact F, node ast.Node) F
	// TransferCond, when non-nil, applies the block's control expression
	// (if/for condition, switch tag, range expression) after the block's
	// nodes. Reads inside conditions matter to liveness-style analyses.
	TransferCond func(fact F, cond ast.Expr) F
}

// SolveForward runs the analysis to a fixed point and returns the fact at
// entry and exit of every block. The exit fact of cfg.Exit is the
// whole-function exit fact.
func SolveForward[F any](cfg *CFG, spec FlowSpec[F]) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(cfg.Blocks))
	out = make(map[*Block]F, len(cfg.Blocks))
	seeded := make(map[*Block]bool, len(cfg.Blocks))

	preds := make(map[*Block][]*Block, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	apply := func(b *Block, fact F) F {
		for _, n := range b.Nodes {
			fact = spec.Transfer(fact, n)
		}
		if spec.TransferCond != nil && b.Cond != nil {
			fact = spec.TransferCond(fact, b.Cond)
		}
		return fact
	}

	// Ordered worklist with membership dedup.
	queue := make([]*Block, 0, len(cfg.Blocks))
	inQueue := make(map[*Block]bool, len(cfg.Blocks))
	push := func(b *Block) {
		if !inQueue[b] {
			inQueue[b] = true
			queue = append(queue, b)
		}
	}
	for _, b := range cfg.Blocks {
		push(b)
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false

		var fact F
		have := false
		if b.Index == 0 {
			fact = spec.Entry
			have = true
		}
		for _, p := range preds[b] {
			if !seeded[p] {
				continue
			}
			if !have {
				fact = out[p]
				have = true
			} else {
				fact = spec.Join(fact, out[p])
			}
		}
		if !have {
			// Unreachable block (dead code, or a goto target never taken):
			// skip until a predecessor produces a fact. Entry always has one.
			continue
		}
		in[b] = fact
		newOut := apply(b, fact)
		if seeded[b] && spec.Equal(out[b], newOut) {
			continue
		}
		out[b] = newOut
		seeded[b] = true
		for _, s := range b.Succs {
			push(s)
		}
	}
	return in, out
}

// inspectNoFuncLit walks the AST under root, calling visit for every node
// except those inside nested function literals — a literal's body belongs to
// its own CFG, not the enclosing function's. The root itself is visited even
// if it is a literal-bearing statement.
func inspectNoFuncLit(root ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}
