package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureImporter resolves a fixture's imports: module-internal paths go
// through a real Loader (so datamut/arenaescape fixtures can import the
// actual tensor and autodiff packages), everything else through the
// standard source importer. The module loader is built lazily — fixtures
// without module imports never pay for it.
type fixtureImporter struct {
	std types.Importer
	mod *Loader
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "ovs" || strings.HasPrefix(path, "ovs/") {
		if fi.mod == nil {
			root, err := FindModuleRoot(".")
			if err != nil {
				return nil, err
			}
			fi.mod, err = NewLoader(root)
			if err != nil {
				return nil, err
			}
		}
		return fi.mod.Import(path)
	}
	return fi.std.Import(path)
}

// sharedFixtureImporter is reused across fixture loads so the module's
// packages type-check once per `go test` process, not once per fixture.
var sharedFixtureImporter = &fixtureImporter{}

// loadFixture parses and type-checks one testdata package, registering it
// under pkgPath so package-scoped analyzers (mapiter, globalrand, nakedgo)
// can be exercised both inside and outside their target packages.
func loadFixture(t *testing.T, fixture, pkgPath string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	if sharedFixtureImporter.std == nil {
		sharedFixtureImporter.std = importer.ForCompiler(fset, "source", nil)
	}
	conf := types.Config{Importer: sharedFixtureImporter}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", fixture, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
}

// collectWants scans the fixture sources for `// want "regex"` comments.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(src)
		line := 0
		for sc.Scan() {
			line++
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				wants = append(wants, &expectation{file: name, line: line, pattern: regexp.MustCompile(m[1])})
			}
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture and requires an exact
// match between unsuppressed diagnostics and want comments.
func checkFixture(t *testing.T, analyzers []*Analyzer, fixture, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, fixture, pkgPath)
	diags := RunPackage(pkg, analyzers)
	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestMapIterFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{MapIter}, "mapiter", "ovs/internal/tensor")
}

func TestMapIterSilentOutsideDeterministicPackages(t *testing.T) {
	pkg := loadFixture(t, "mapiter", "ovs/internal/trafficio")
	if diags := RunPackage(pkg, []*Analyzer{MapIter}); len(diags) != 0 {
		t.Fatalf("mapiter fired outside deterministic packages: %v", diags)
	}
}

func TestGlobalRandFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{GlobalRand}, "globalrand", "ovs/internal/sim")
}

func TestGlobalRandSilentOutsideDeterministicPackages(t *testing.T) {
	pkg := loadFixture(t, "globalrand", "ovs/cmd/ovsrun")
	if diags := RunPackage(pkg, []*Analyzer{GlobalRand}); len(diags) != 0 {
		t.Fatalf("globalrand fired outside deterministic packages: %v", diags)
	}
}

func TestNakedGoFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{NakedGo}, "nakedgo", "ovs/internal/core")
}

func TestNakedGoAllowedInParallel(t *testing.T) {
	pkg := loadFixture(t, "nakedgo", "ovs/internal/parallel")
	if diags := RunPackage(pkg, []*Analyzer{NakedGo}); len(diags) != 0 {
		t.Fatalf("nakedgo fired inside internal/parallel: %v", diags)
	}
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{FloatEq}, "floateq", "ovs/internal/roadnet")
}

func TestIgnoredErrFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{IgnoredErr}, "ignorederr", "ovs/internal/roadnet")
}

func TestDataMutFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{DataMut}, "datamut", "ovs/internal/nn")
}

func TestArenaEscapeFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{ArenaEscape}, "arenaescape", "ovs/internal/nn")
}

func TestLockBalanceFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{LockBalance}, "lockbalance", "ovs/internal/tensor")
}

func TestErrFlowFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{ErrFlow}, "errflow", "ovs/internal/trafficio")
}

// TestSuppressionSilencesOnlyNamedAnalyzer runs two analyzers over a line
// that trips both with a directive naming just one: the named analyzer must
// be silenced, the other must still fire. Stacked directives silence both.
func TestSuppressionSilencesOnlyNamedAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{FloatEq, IgnoredErr}, "suppress", "ovs/internal/roadnet")
}

func TestMalformedDirectivesAreDiagnosed(t *testing.T) {
	pkg := loadFixture(t, "malformed", "ovs/internal/roadnet")
	diags := RunPackage(pkg, All())
	wantMsgs := []string{"malformed ignore directive", "has no reason", "unknown analyzer"}
	if len(diags) != len(wantMsgs) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(wantMsgs), diags)
	}
	for i, d := range diags {
		if d.Analyzer != "ovslint" {
			t.Errorf("diagnostic %d: analyzer = %q, want ovslint", i, d.Analyzer)
		}
		if !strings.Contains(d.Message, wantMsgs[i]) {
			t.Errorf("diagnostic %d: message %q does not contain %q", i, d.Message, wantMsgs[i])
		}
	}
}

func TestEveryAnalyzerHasNameAndDoc(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 9 {
		t.Errorf("suite has %d analyzers, want at least 9", len(seen))
	}
}

// TestSelfLint loads the whole module the same way cmd/ovslint does and
// requires zero unsuppressed diagnostics — the repository must stay clean
// under its own analyzers. Skipped under -short: type-checking the module
// plus its stdlib imports from source takes a few seconds.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint loads the whole module; skipped under -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loader.TypeErrors) != 0 {
		t.Fatalf("module does not type-check: %v", loader.TypeErrors)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the walk is missing directories", len(pkgs))
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range RunPackage(pkg, All()) {
			t.Errorf("%s", d)
			total++
		}
	}
	if total > 0 {
		t.Logf("%d unsuppressed diagnostics; fix them or add //ovslint:ignore with a reason", total)
	}
}

// TestDriverCacheRoundTrip runs the incremental driver twice over the real
// module: the second run must serve every package from the cache and report
// identical diagnostics. Skipped under -short with the other whole-module
// loads.
func TestDriverCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("driver round-trip loads the whole module; skipped under -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cacheFile := filepath.Join(t.TempDir(), "cache.json")
	run := func(workers int) []PackageResult {
		loader, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		d := &Driver{Loader: loader, Analyzers: All(), Workers: workers, CacheFile: cacheFile}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(1)
	second := run(4)
	if len(first) != len(second) {
		t.Fatalf("package count changed between runs: %d vs %d", len(first), len(second))
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("%s: not served from cache on the second run", second[i].Path)
		}
		if got, want := len(second[i].Diags), len(first[i].Diags); got != want {
			t.Errorf("%s: cached run has %d diagnostics, fresh run had %d", second[i].Path, got, want)
		}
		for j := range second[i].Diags {
			if second[i].Diags[j].String() != first[i].Diags[j].String() {
				t.Errorf("%s: diagnostic %d differs: %s vs %s", second[i].Path, j, second[i].Diags[j], first[i].Diags[j])
			}
		}
	}
}

// TestDiagnosticFormat pins the file:line:col: [analyzer] message rendering
// CI greps for.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "floateq",
		Message:  "msg",
	}
	if got, want := d.String(), "x.go:3:7: [floateq] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func ExampleAll() {
	for _, a := range All() {
		fmt.Println(a.Name)
	}
	// Output:
	// mapiter
	// globalrand
	// nakedgo
	// floateq
	// ignorederr
	// datamut
	// arenaescape
	// lockbalance
	// errflow
}
