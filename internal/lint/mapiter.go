package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map, inside a deterministic package, whose
// body either accumulates into a float or appends to a slice the enclosing
// function returns. Go randomizes map iteration order, so a float reduction
// over a map changes in the last ulp between runs and an appended slice
// changes element order — both break the bitwise-reproducibility contract
// (DESIGN.md §7). Iterate sorted keys or keep a parallel slice instead; if
// the order provably cannot reach a result, annotate with the reason.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration in deterministic packages that accumulates floats or appends to returned slices",
	Run: func(p *Pass) {
		if !isDeterministicPkg(p.PkgPath) {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncMapRanges(p, fd.Type, fd.Body)
				// Function literals get their own returned-object scope.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkFuncMapRanges(p, lit.Type, lit.Body)
					}
					return true
				})
			}
		}
	},
}

// checkFuncMapRanges inspects one function's body (excluding nested function
// literals, which are checked separately) for offending map ranges.
func checkFuncMapRanges(p *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	returned := returnedObjects(p, ftype, body)
	walkSkippingFuncLits(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		if t := p.TypeOf(rng.X); t == nil {
			return
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if reason := nondeterministicBodyUse(p, rng.Body, returned); reason != "" {
			p.Reportf(rng.Pos(), "map iteration order is randomized, and this loop %s; iterate sorted keys or a slice instead", reason)
		}
	})
}

// returnedObjects collects the objects a function can return: its named
// results plus every identifier appearing directly in a return statement.
func returnedObjects(p *Pass, ftype *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	if p.Info == nil {
		return objs
	}
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	walkSkippingFuncLits(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					objs[obj] = true
				}
			}
		}
	})
	return objs
}

// nondeterministicBodyUse reports why a map-range body is order-sensitive:
// it accumulates into a float (compound assignment or x = x op e) or appends
// to a returned slice. Empty string means the body looks order-insensitive.
func nondeterministicBodyUse(p *Pass, body *ast.BlockStmt, returned map[types.Object]bool) string {
	reason := ""
	walkSkippingFuncLits(body, func(n ast.Node) {
		if reason != "" {
			return
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloat(p.TypeOf(lhs)) {
					reason = "accumulates into a float"
					return
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) {
					if obj := identObj(p, as.Lhs[i]); obj != nil && returned[obj] {
						reason = "appends to a returned slice"
						return
					}
				}
				// x = x op e float accumulation written without a
				// compound operator.
				if as.Tok == token.ASSIGN && isFloat(p.TypeOf(as.Lhs[i])) && selfReferential(p, as.Lhs[i], rhs) {
					reason = "accumulates into a float"
					return
				}
			}
		}
	})
	return reason
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || p.Info == nil {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func identObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// selfReferential reports whether rhs is a binary arithmetic expression that
// mentions the object lhs refers to (the `total = total + v` shape).
func selfReferential(p *Pass, lhs, rhs ast.Expr) bool {
	target := identObj(p, lhs)
	if target == nil {
		return false
	}
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info != nil && p.Info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// walkSkippingFuncLits visits every node under root except those inside
// nested function literals, which form their own scope for mapiter.
func walkSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
