package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func runSrc(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "repro.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("repro", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "repro", Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	return RunPackage(pkg, analyzers)
}

func TestReproLockBalanceSwitchCase(t *testing.T) {
	src := `package repro

import "sync"

var mu sync.Mutex
var data map[string]int

func leakInSwitch(x int, c bool) int {
	mu.Lock() // should be flagged: !c path in case 1 returns while held
	switch x {
	case 1:
		if c {
			mu.Unlock()
		}
		return 0
	}
	mu.Unlock()
	return 1
}
`
	diags := runSrc(t, src, []*Analyzer{LockBalance})
	t.Logf("lockbalance diags: %v", diags)
	if len(diags) == 0 {
		t.Error("FALSE NEGATIVE confirmed: no diagnostic for lock held on !c path inside switch case")
	}
}

func TestReproErrFlowSwitchCase(t *testing.T) {
	src := `package repro

import "errors"

func f() error { return errors.New("x") }

func dropInSwitch(x int) error {
	switch x {
	case 1:
		err := f() // should be flagged: overwritten without a read
		err = f()
		return err
	}
	return nil
}
`
	diags := runSrc(t, src, []*Analyzer{ErrFlow})
	t.Logf("errflow diags: %v", diags)
	if len(diags) == 0 {
		t.Error("FALSE NEGATIVE confirmed: no diagnostic for err overwritten unread inside switch case")
	}
}

func TestReproLockBalanceControl(t *testing.T) {
	// Same shape without the switch: must be flagged (control).
	src := `package repro

import "sync"

var mu sync.Mutex

func leakPlain(c bool) int {
	mu.Lock()
	if c {
		mu.Unlock()
	}
	return 0
}
`
	diags := runSrc(t, src, []*Analyzer{LockBalance})
	t.Logf("control diags: %v", diags)
	if len(diags) != 1 {
		t.Errorf("control case: got %d diags, want 1", len(diags))
	}
}

func TestReproErrFlowPendingBeforeSwitch(t *testing.T) {
	src := `package repro2

import "errors"

func g() error { return errors.New("x") }

func dropBeforeSwitch(x int) error {
	err := g() // pending; overwritten in case 1 without any read
	switch x {
	case 1:
		err = g()
		return err
	}
	return err
}
`
	diags := runSrc(t, src, []*Analyzer{ErrFlow})
	t.Logf("errflow diags: %v", diags)
	if len(diags) == 0 {
		t.Error("FALSE NEGATIVE confirmed: pending err before switch, overwritten unread in case body, not flagged")
	}
}
