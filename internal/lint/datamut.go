package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DataMut enforces the pack-cache version invariant (DESIGN.md §15): outside
// internal/tensor, every in-place mutation of a tensor that could be a
// packable weight must be visible to the pack cache. The cache keys packed
// GEMM panels by (tensor pointer, mutation version); a raw store into a
// weight's data slice that does not bump the version leaves stale panels
// live, and the next blocked product silently multiplies by old weights.
//
// A write is any store through a tensor's data slice: an index or slice
// store rooted at `x.Data`, a `copy` whose destination is rooted at it, or
// the same through a local alias (`d := x.Data; d[i] = v`). A write is
// sanctioned when the dataflow can prove the cache can never hold panels for
// the tensor, or sees the bump:
//
//   - the tensor is function-local and never packable: it flows from a
//     tensor constructor (New/Zeros/Ones/Full/FromSlice/Randn/RandUniform/
//     Xavier), Clone or Map, an arena Get/GetLike (recycled buffers drop the
//     packable mark), or a Graph.Alloc/AllocLike;
//   - the tensor is a gradient: it flows from a `.Grad` field or an
//     `ensureGrad` call — gradients are never marked packable;
//   - the enclosing function calls NoteMutation on the same tensor (the
//     pattern of every sanctioned mutator in internal/tensor).
//
// Everything else — writes through parameters, struct fields, captured
// state — is a diagnostic: route the store through a tensor method or call
// NoteMutation alongside it. internal/tensor itself is exempt: it IS the
// sanctioned mutator set, and its kernels pair raw stores with NoteMutation
// under review (enforced by its tests, not by syntax).
var DataMut = &Analyzer{
	Name: "datamut",
	Doc:  "flags raw tensor data writes that could bypass the pack-cache mutation version",
	Run: func(p *Pass) {
		if strings.HasSuffix(p.PkgPath, "internal/tensor") {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// The NoteMutation sanction is scoped to the whole top-level
				// declaration: a bump before or after a parallel.ForWorkers
				// closure covers the writes inside it (bumping inside the
				// closure would race across workers).
				noted := collectNoted(p, fd.Body)
				checkDataMut(p, fd.Body, noted)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkDataMut(p, lit.Body, noted)
					}
					return true
				})
			}
		}
	},
}

// collectNoted gathers the rendered receiver expression of every
// NoteMutation call under root, nested function literals included.
func collectNoted(p *Pass, root ast.Node) map[string]bool {
	noted := map[string]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NoteMutation" && isTensorExpr(p, sel.X) {
				noted[types.ExprString(sel.X)] = true
			}
		}
		return true
	})
	return noted
}

// tensorProv is the provenance of one tracked local: a tensor variable or a
// []float64 alias of a tensor's data slice.
type tensorProv struct {
	// safe means the value provably cannot be packable (fresh local, arena
	// tensor, or gradient).
	safe bool
	// origin is the rendered expression of the tensor the value aliases
	// ("t" for both `t` and `d := t.Data`), used to match NoteMutation
	// calls. Empty when paths disagree.
	origin string
}

// mutFact maps tracked objects to their provenance. Absence means the object
// is not a tensor value the analysis has seen defined (writes through
// untracked tensor-typed expressions are unsafe by default; untracked plain
// slices are not tensor data at all).
type mutFact map[types.Object]tensorProv

func (f mutFact) clone() mutFact {
	c := make(mutFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func mutJoin(a, b mutFact) mutFact {
	if len(a) == 0 || len(b) == 0 {
		// A path with no binding contributes "unsafe unknown" for every
		// object; the join keeps the object tracked but demotes safety.
		src, other := a, b
		if len(src) == 0 {
			src = b
			other = a
		}
		_ = other
		c := make(mutFact, len(src))
		for k, v := range src {
			c[k] = tensorProv{safe: false, origin: v.origin}
		}
		return c
	}
	c := make(mutFact, len(a))
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			c[k] = tensorProv{safe: false, origin: va.origin}
			continue
		}
		merged := tensorProv{safe: va.safe && vb.safe, origin: va.origin}
		if va.origin != vb.origin {
			merged.origin = ""
		}
		c[k] = merged
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			c[k] = tensorProv{safe: false, origin: vb.origin}
		}
	}
	return c
}

func mutEqual(a, b mutFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

type dataMutScope struct {
	pass *Pass
	// noted holds the rendered receiver expressions of every NoteMutation
	// call in the function: writes to a tensor whose origin appears here are
	// sanctioned.
	noted map[string]bool
	// report is nil during solving; set for the replay pass.
	report func(n ast.Node, root string)
}

func checkDataMut(p *Pass, body *ast.BlockStmt, noted map[string]bool) {
	// Cheap pre-scan: anything that looks like a data write at all?
	touches := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" && isTensorExpr(p, sel.X) {
			touches = true
		}
		return true
	})
	if !touches {
		return
	}

	sc := &dataMutScope{pass: p, noted: noted}
	cfg := BuildCFG(body)
	spec := FlowSpec[mutFact]{
		Entry: mutFact{},
		Join:  mutJoin,
		Equal: mutEqual,
		Transfer: func(fact mutFact, n ast.Node) mutFact {
			return sc.transfer(fact, n)
		},
	}
	in, _ := SolveForward(cfg, spec)

	sc.report = func(n ast.Node, root string) {
		p.Reportf(n.Pos(), "raw write to %s.Data bypasses the pack-cache mutation version; use a tensor mutator or call %s.NoteMutation() in this function", root, root)
	}
	for _, b := range cfg.Blocks {
		fact, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			fact = sc.transfer(fact, n)
		}
	}
}

func (sc *dataMutScope) transfer(fact mutFact, n ast.Node) mutFact {
	out := fact
	mutated := false
	set := func(obj types.Object, prov tensorProv) {
		if !mutated {
			out = fact.clone()
			mutated = true
		}
		out[obj] = prov
	}

	// Detect writes first (they read the pre-assignment state of aliases).
	sc.checkWrites(out, n)

	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return out
	}
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value call assignments: every tensor-typed target becomes
		// unsafe-unknown (a call result is not provably fresh).
		for _, lhs := range as.Lhs {
			if obj, _ := directTarget(sc.pass, lhs); obj != nil && isTensorType(sc.pass.TypeOf(lhs)) {
				set(obj, tensorProv{safe: false, origin: types.ExprString(lhs)})
			}
		}
		return out
	}
	for i, lhs := range as.Lhs {
		obj, direct := directTarget(sc.pass, lhs)
		if !direct || obj == nil {
			continue
		}
		rhs := as.Rhs[i]
		switch {
		case isTensorType(sc.pass.TypeOf(lhs)):
			set(obj, sc.tensorRHSProv(out, rhs))
		case isFloatSlice(sc.pass.TypeOf(lhs)):
			if prov, ok := sc.dataAliasProv(out, rhs); ok {
				set(obj, prov)
			} else if _, tracked := out[obj]; tracked {
				// Rebound to something that is not tensor data.
				if !mutated {
					out = fact.clone()
					mutated = true
				}
				delete(out, obj)
			}
		}
	}
	return out
}

// tensorRHSProv classifies the provenance of a tensor-valued expression.
func (sc *dataMutScope) tensorRHSProv(fact mutFact, e ast.Expr) tensorProv {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := sc.pass.Info.Uses[e]; obj != nil {
			if prov, ok := fact[obj]; ok {
				return prov
			}
		}
		return tensorProv{safe: false, origin: e.Name}
	case *ast.SelectorExpr:
		if e.Sel.Name == "Grad" {
			return tensorProv{safe: true, origin: types.ExprString(e)}
		}
		return tensorProv{safe: false, origin: types.ExprString(e)}
	case *ast.CallExpr:
		return sc.tensorCallProv(fact, e)
	case *ast.UnaryExpr, *ast.CompositeLit:
		// &tensor.Tensor{...}: a literal is fresh but its Data slice came
		// from somewhere else; treat as unsafe-unknown.
		return tensorProv{safe: false, origin: types.ExprString(e)}
	}
	return tensorProv{safe: false, origin: types.ExprString(e)}
}

// tensorCallProv classifies tensor-returning calls: constructors, arena and
// graph allocators, Clone/Map, ensureGrad, and data-sharing views.
func (sc *dataMutScope) tensorCallProv(fact mutFact, call *ast.CallExpr) tensorProv {
	origin := types.ExprString(call)
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Package-local helper; unknown.
		return tensorProv{safe: false, origin: origin}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// tensor.New / tensor.Get / arena.Get etc.
		if isTensorPkgIdent(sc.pass, fun.X) {
			// The dst-returning kernels (AddTo, ScaleInPlace, MatMulNTAcc,
			// ...) pass their first argument through: inherit its
			// provenance. Inheriting keeps the dst's origin so a
			// NoteMutation on the underlying tensor still sanctions writes
			// through the result.
			if (strings.HasSuffix(name, "To") || strings.HasSuffix(name, "InPlace") || strings.HasSuffix(name, "Acc")) &&
				len(call.Args) > 0 && isTensorExpr(sc.pass, call.Args[0]) {
				return sc.tensorRHSProv(fact, call.Args[0])
			}
			// Every other exported tensor-package function that yields a
			// tensor allocates it fresh (constructors, Add/Mul/MatMul/
			// Transpose/..., arena Get): fresh results carry no packed
			// panels, so raw writes to them are harmless.
			return tensorProv{safe: true, origin: origin}
		}
		switch name {
		case "Clone", "Map":
			// Fresh copy, never packable at birth.
			return tensorProv{safe: true, origin: origin}
		case "ensureGrad":
			return tensorProv{safe: true, origin: origin}
		case "Get", "GetLike":
			// Arena methods: recycled buffers drop the packable mark.
			if isArenaType(sc.pass.TypeOf(fun.X)) {
				return tensorProv{safe: true, origin: origin}
			}
		case "Alloc", "AllocLike":
			// Graph allocators draw from the arena.
			if isGraphType(sc.pass.TypeOf(fun.X)) {
				return tensorProv{safe: true, origin: origin}
			}
		case "Reshape":
			// A view shares its receiver's backing data: inherit, keeping
			// the receiver's origin (noting the receiver sanctions the view).
			return sc.tensorRHSProv(fact, fun.X)
		}
		return tensorProv{safe: false, origin: origin}
	}
	return tensorProv{safe: false, origin: origin}
}

// dataAliasProv reports whether e evaluates to a tensor's data slice (or a
// reslice of one / a tracked alias) and with what provenance.
func (sc *dataMutScope) dataAliasProv(fact mutFact, e ast.Expr) (tensorProv, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := sc.pass.Info.Uses[e]; obj != nil {
			if prov, ok := fact[obj]; ok {
				return prov, true
			}
		}
		return tensorProv{}, false
	case *ast.SelectorExpr:
		if e.Sel.Name == "Data" && isTensorExpr(sc.pass, e.X) {
			return sc.tensorRHSProv(fact, e.X), true
		}
		return tensorProv{}, false
	case *ast.SliceExpr:
		return sc.dataAliasProv(fact, e.X)
	}
	return tensorProv{}, false
}

// checkWrites reports unsanctioned stores in n: index/slice assignments,
// IncDec, and copy destinations rooted at tensor data.
func (sc *dataMutScope) checkWrites(fact mutFact, n ast.Node) {
	flag := func(node ast.Node, prov tensorProv, ok bool) {
		if !ok || prov.safe {
			return
		}
		if prov.origin != "" && sc.noted[prov.origin] {
			return
		}
		if sc.report != nil {
			root := prov.origin
			if root == "" {
				root = "tensor"
			}
			sc.report(node, root)
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				prov, isData := sc.dataAliasProv(fact, idx.X)
				flag(lhs, prov, isData)
			}
		}
	case *ast.IncDecStmt:
		if idx, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok {
			prov, isData := sc.dataAliasProv(fact, idx.X)
			flag(s.X, prov, isData)
		}
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := sc.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
				prov, isData := sc.dataAliasProv(fact, call.Args[0])
				flag(call.Args[0], prov, isData)
			}
		}
	}
}

// isTensorType reports whether t is *tensor.Tensor (or tensor.Tensor) from a
// package whose import path ends in "internal/tensor".
func isTensorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tensor" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/tensor")
}

func isArenaType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Arena" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/tensor")
}

func isGraphType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Graph" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/autodiff")
}

func isTensorExpr(p *Pass, e ast.Expr) bool {
	return isTensorType(p.TypeOf(e))
}

// isTensorPkgIdent reports whether e names the tensor package itself.
func isTensorPkgIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || p.Info == nil {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && strings.HasSuffix(pn.Imported().Path(), "internal/tensor")
}

// isFloatSlice reports whether t is []float64.
func isFloatSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
