package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockBalance checks that every sync.Mutex / sync.RWMutex Lock (and RLock)
// acquired inside a function is released on every control-flow path that
// reaches the function's exit: by a matching Unlock/RUnlock on the path, or
// by a deferred unlock registered before the path ends. The pack cache and
// the arena free lists are mutex-guarded with early-unlock-and-return shapes
// (packcache.go acquirePack has three unlock sites for one lock), which is
// exactly the shape a refactor silently breaks — a missed path deadlocks the
// next GEMM call rather than failing loudly.
//
// The analysis is a forward dataflow over the function's CFG: the fact is
// the set of mutexes acquired on some path and not yet covered by an unlock
// (direct or deferred). Paths that terminate in panic or os.Exit never reach
// the exit block, so a lock deliberately held at a panic is not a finding.
// Deferred unlocks inside `defer func() { ... }()` literals are honored; a
// lock handed to another goroutine or released by a callee needs an
// //ovslint:ignore with the reason.
var LockBalance = &Analyzer{
	Name:  "lockbalance",
	Doc:   "flags mutex Lock calls not matched by an Unlock on every path to function exit (defer-aware)",
	Tests: true,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, fb := range FuncBodies(f) {
				checkLockBalance(p, fb)
			}
		}
	},
}

// lockFact maps "mutexExpr/kind" (kind "W" for Lock, "R" for RLock) to the
// position of the earliest Lock call that is still uncovered on some path.
type lockFact map[string]token.Pos

func (f lockFact) clone() lockFact {
	c := make(lockFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func lockJoin(a, b lockFact) lockFact {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	c := a.clone()
	for k, v := range b {
		if old, ok := c[k]; !ok || v < old {
			c[k] = v
		}
	}
	return c
}

func lockEqual(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lockOp is one Lock/Unlock-family call found inside a statement.
type lockOp struct {
	key     string // canonical mutex expression + lock kind
	acquire bool
	pos     token.Pos
}

// mutexOps extracts the lock operations a single CFG node performs, in
// source order. Deferred unlocks (both `defer mu.Unlock()` and closures
// deferring unlocks) count as releases at the point the defer statement
// executes: once registered, every path to exit is covered.
func mutexOps(p *Pass, n ast.Node) []lockOp {
	var ops []lockOp
	collect := func(root ast.Node, deferred bool) {
		inspectNoFuncLit(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := mutexCallOp(p, call); ok {
				if deferred && op.acquire {
					// `defer mu.Lock()` is almost certainly a bug, but it is
					// not this analyzer's bug to name; skip it.
					return true
				}
				ops = append(ops, op)
			}
			return true
		})
	}
	switch s := n.(type) {
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure: any unlock in its body runs at exit.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := mutexCallOp(p, call); ok && !op.acquire {
						ops = append(ops, op)
					}
				}
				return true
			})
			return ops
		}
		collect(s.Call, true)
	case *ast.GoStmt:
		// A goroutine's locks belong to its own function body (FuncBodies
		// yields the literal separately); nothing happens on this path.
	default:
		collect(n, false)
	}
	return ops
}

// mutexCallOp classifies a call as a sync.(RW)Mutex lock operation.
func mutexCallOp(p *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return lockOp{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return lockOp{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return lockOp{}, false
	}
	var kind string
	var acquire bool
	switch sel.Sel.Name {
	case "Lock":
		kind, acquire = "W", true
	case "Unlock":
		kind, acquire = "W", false
	case "RLock":
		kind, acquire = "R", true
	case "RUnlock":
		kind, acquire = "R", false
	case "TryLock":
		kind, acquire = "W", true
	case "TryRLock":
		kind, acquire = "R", true
	default:
		return lockOp{}, false
	}
	return lockOp{key: types.ExprString(sel.X) + "/" + kind, acquire: acquire, pos: call.Pos()}, true
}

func checkLockBalance(p *Pass, fb FuncBody) {
	// Cheap pre-scan: skip bodies with no lock traffic at all.
	found := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := mutexCallOp(p, call); ok {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}

	cfg := BuildCFG(fb.Body)
	spec := FlowSpec[lockFact]{
		Entry: lockFact{},
		Join:  lockJoin,
		Equal: lockEqual,
		Transfer: func(fact lockFact, n ast.Node) lockFact {
			ops := mutexOps(p, n)
			if len(ops) == 0 {
				return fact
			}
			out := fact.clone()
			for _, op := range ops {
				if op.acquire {
					if _, held := out[op.key]; !held {
						out[op.key] = op.pos
					}
				} else {
					delete(out, op.key)
				}
			}
			return out
		},
	}
	_, out := SolveForward(cfg, spec)
	exitFact := out[cfg.Exit]
	if len(exitFact) == 0 {
		return
	}
	keys := make([]string, 0, len(exitFact))
	for k := range exitFact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		expr := k[:len(k)-2]
		verb := "Lock"
		if k[len(k)-1] == 'R' {
			verb = "RLock"
		}
		p.Reportf(exitFact[k], "%s.%s() is not released on every path to function exit; add an Unlock (or defer it) on the missing path", expr, verb)
	}
}
