package lint

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ovs/internal/parallel"
)

// This file implements the analyzer driver: per-(package × analyzer) fan-out
// over internal/parallel with deterministic output ordering, and an optional
// content-hash incremental cache that skips type-checking and analysis for
// packages whose transitive sources are byte-identical to the previous run.
//
// Determinism contract: diagnostics are ordered by (package path, position,
// analyzer) regardless of worker count. Each (package, analyzer) unit writes
// only its own slot of the results slice, and the merge walks slots in index
// order, so the output is a pure function of the sources.

// cacheVersion invalidates every cache entry when the diagnostic format or
// analysis semantics change. Bump it whenever an analyzer's behavior changes
// in a way that is not visible in the analyzed package's own sources.
const cacheVersion = 1

// A Driver runs a set of analyzers over the module's packages.
type Driver struct {
	Loader    *Loader
	Analyzers []*Analyzer
	// Workers bounds the analysis fan-out; 0 means the process default.
	Workers int
	// CacheFile, when non-empty, enables the incremental cache: packages
	// whose transitive content hash matches the stored entry reuse its
	// diagnostics without being parsed or type-checked.
	CacheFile string
}

// A PackageResult is the outcome for one package.
type PackageResult struct {
	Path  string
	Diags []Diagnostic
	// Cached reports whether the diagnostics came from the incremental
	// cache rather than a fresh analysis.
	Cached bool
}

// cacheEntry is the persisted per-package record. Positions are stored
// root-relative so the cache survives a checkout moving directories.
type cacheEntry struct {
	Hash  string      `json:"hash"`
	Diags []cacheDiag `json:"diags,omitempty"`
}

type cacheDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Run analyzes every package of the module and returns per-package results
// in sorted import-path order.
func (d *Driver) Run() ([]PackageResult, error) {
	return d.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: the serial load loop checks
// ctx between packages and the analysis fan-out stops claiming units once
// ctx is done. A cancelled run returns context.Cause(ctx) and writes no
// cache file, so a later full run cannot see partial results.
func (d *Driver) RunCtx(ctx context.Context) ([]PackageResult, error) {
	dirs, err := d.Loader.PackageDirs()
	if err != nil {
		return nil, err
	}

	var hashes map[string]string
	cache := map[string]cacheEntry{}
	if d.CacheFile != "" {
		hashes, err = d.packageHashes(dirs)
		if err != nil {
			return nil, err
		}
		if data, err := os.ReadFile(d.CacheFile); err == nil {
			if err := json.Unmarshal(data, &cache); err != nil {
				// A corrupt cache file is a cold cache, not an error.
				cache = map[string]cacheEntry{}
			}
		}
	}

	results := make([]PackageResult, len(dirs))
	var toRun []*Package
	var runIdx []int
	for i, dir := range dirs {
		path := d.Loader.PathFor(dir)
		results[i].Path = path
		if hashes != nil {
			if ent, ok := cache[path]; ok && ent.Hash == hashes[path] {
				results[i].Cached = true
				results[i].Diags = d.inflate(ent.Diags)
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		// Loading is serial: the loader's file set and package cache are
		// shared mutable state. Analysis below is the parallel part.
		pkg, err := d.Loader.Load(dir)
		if err != nil {
			return nil, err
		}
		toRun = append(toRun, pkg)
		runIdx = append(runIdx, i)
	}

	// Fan out one unit per (package, analyzer). Units only read the shared
	// AST/type info and write their own slot.
	type unit struct{ pkg, an int }
	var units []unit
	for p := range toRun {
		for a := range d.Analyzers {
			units = append(units, unit{p, a})
		}
	}
	raws := make([][]rawDiag, len(units))
	err = parallel.ForWorkersCtx(ctx, d.Workers, len(units), 1, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			raws[u] = runAnalyzer(toRun[units[u].pkg], d.Analyzers[units[u].an])
		}
	})
	if err != nil {
		return nil, err
	}
	for p, pkg := range toRun {
		var raw []rawDiag
		for u, un := range units {
			if un.pkg == p {
				raw = append(raw, raws[u]...)
			}
		}
		diags := finishPackage(pkg, raw)
		results[runIdx[p]].Diags = diags
		if hashes != nil {
			cache[pkg.Path] = cacheEntry{Hash: hashes[pkg.Path], Diags: d.deflate(diags)}
		}
	}

	if d.CacheFile != "" {
		if err := d.writeCache(cache, hashes); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// inflate converts cached root-relative diagnostics back to absolute ones.
func (d *Driver) inflate(cds []cacheDiag) []Diagnostic {
	var out []Diagnostic
	for _, cd := range cds {
		out = append(out, Diagnostic{
			Pos: token.Position{
				Filename: filepath.Join(d.Loader.Root(), filepath.FromSlash(cd.File)),
				Line:     cd.Line,
				Column:   cd.Col,
			},
			Analyzer: cd.Analyzer,
			Message:  cd.Message,
		})
	}
	return out
}

func (d *Driver) deflate(diags []Diagnostic) []cacheDiag {
	var out []cacheDiag
	for _, dg := range diags {
		file := dg.Pos.Filename
		if rel, err := filepath.Rel(d.Loader.Root(), file); err == nil {
			file = filepath.ToSlash(rel)
		}
		out = append(out, cacheDiag{File: file, Line: dg.Pos.Line, Col: dg.Pos.Column, Analyzer: dg.Analyzer, Message: dg.Message})
	}
	return out
}

// writeCache persists the cache, dropping entries for packages that no
// longer exist so the file cannot grow without bound.
func (d *Driver) writeCache(cache map[string]cacheEntry, hashes map[string]string) error {
	for path := range cache {
		if _, ok := hashes[path]; !ok {
			delete(cache, path)
		}
	}
	data, err := json.MarshalIndent(cache, "", "\t")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(d.CacheFile); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(d.CacheFile, append(data, '\n'), 0o644)
}

// configHash captures everything outside the analyzed sources that affects
// diagnostics: the cache format version, the analyzer set, and whether test
// files are loaded.
func (d *Driver) configHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d/tests=%v", cacheVersion, d.Loader.Tests)
	for _, a := range d.Analyzers {
		fmt.Fprintf(h, "/%s", a.Name)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// packageHashes computes, for every package directory, a hash over the
// package's own included sources plus the hashes of its module-internal
// imports, transitively. Only a cheap imports-only parse is needed; no
// type-checking happens here.
func (d *Driver) packageHashes(dirs []string) (map[string]string, error) {
	type node struct {
		own     string
		imports []string
	}
	nodes := make(map[string]*node, len(dirs))
	cfg := d.configHash()
	for _, dir := range dirs {
		path := d.Loader.PathFor(dir)
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		h := sha256.New()
		fmt.Fprintf(h, "%s\n%s\n", cfg, path)
		imports := map[string]bool{}
		fset := token.NewFileSet()
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			if !includeFile(dir, name) && !(d.Loader.Tests && includeTestFile(dir, name)) {
				continue
			}
			full := filepath.Join(dir, name)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s\n%d\n", name, len(data))
			h.Write(data) //ovslint:ignore ignorederr hash.Hash.Write is documented to never return an error
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				continue // unparseable files still hash; the load will report
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == d.Loader.Module() || strings.HasPrefix(ip, d.Loader.Module()+"/") {
					imports[ip] = true
				}
			}
		}
		n := &node{own: hex.EncodeToString(h.Sum(nil))}
		for ip := range imports {
			n.imports = append(n.imports, ip)
		}
		sort.Strings(n.imports)
		nodes[path] = n
	}

	// Transitive hash by memoized DFS; import cycles are impossible in
	// well-formed Go, but a defensive marker keeps a broken tree terminating.
	hashes := make(map[string]string, len(nodes))
	var visit func(path string, stack map[string]bool) string
	visit = func(path string, stack map[string]bool) string {
		if h, ok := hashes[path]; ok {
			return h
		}
		n, ok := nodes[path]
		if !ok || stack[path] {
			return "external"
		}
		stack[path] = true
		h := sha256.New()
		fmt.Fprintf(h, "%s\n", n.own)
		for _, ip := range n.imports {
			fmt.Fprintf(h, "%s=%s\n", ip, visit(ip, stack))
		}
		delete(stack, path)
		sum := hex.EncodeToString(h.Sum(nil))
		hashes[path] = sum
		return sum
	}
	for path := range nodes {
		visit(path, map[string]bool{})
	}
	return hashes, nil
}
