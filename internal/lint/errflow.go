package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ErrFlow generalizes ignorederr from call-statement syntax to dataflow: it
// flags an error-typed local that is assigned a value and then, on some
// control-flow path, neither read nor returned before being overwritten or
// falling out of the function. ignorederr sees `_ = f()` and bare calls;
// errflow sees
//
//	err := f()
//	if debug {
//	    return err
//	}
//	return nil // err checked on one path only
//
// The fact is the set of (variable, assignment position) pairs for which
// some path reaches the current point with the assignment still unread. A
// read anywhere (conditions included — `if err != nil` reads err) clears the
// variable's pending assignments; a re-assignment or function exit with
// pending entries reports them.
//
// Out of scope, to stay precise: blank assignments (ignorederr's job),
// variables captured by any function literal or having their address taken
// (reads there are invisible to an intraprocedural pass), `err = nil` resets
// (an intentional discard), and named results covered by a naked return.
var ErrFlow = &Analyzer{
	Name:  "errflow",
	Doc:   "flags error values assigned but never read on some path to reassignment or function exit",
	Tests: true,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, fb := range FuncBodies(f) {
				checkErrFlow(p, fb)
			}
		}
	},
}

// errFact maps a tracked error variable to the positions of assignments that
// are still unread along at least one path reaching the current point.
type errFact map[types.Object][]token.Pos

func (f errFact) clone() errFact {
	c := make(errFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func insertPos(ps []token.Pos, p token.Pos) []token.Pos {
	i := sort.Search(len(ps), func(i int) bool { return ps[i] >= p })
	if i < len(ps) && ps[i] == p {
		return ps
	}
	out := make([]token.Pos, 0, len(ps)+1)
	out = append(out, ps[:i]...)
	out = append(out, p)
	return append(out, ps[i:]...)
}

func errJoin(a, b errFact) errFact {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	c := a.clone()
	for k, ps := range b {
		merged := c[k]
		for _, p := range ps {
			merged = insertPos(merged, p)
		}
		c[k] = merged
	}
	return c
}

func errEqual(a, b errFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ps := range a {
		qs, ok := b[k]
		if !ok || len(ps) != len(qs) {
			return false
		}
		for i := range ps {
			if ps[i] != qs[i] {
				return false
			}
		}
	}
	return true
}

// errFlowScope is the per-function context: which objects are tracked and
// which are the named results (read by a naked return).
type errFlowScope struct {
	pass    *Pass
	tracked map[types.Object]bool
	results map[types.Object]bool
	// report receives a pending assignment position once the fixed point is
	// known; nil during solving.
	report func(token.Pos)
}

func checkErrFlow(p *Pass, fb FuncBody) {
	sc := &errFlowScope{pass: p, tracked: map[types.Object]bool{}, results: map[types.Object]bool{}}

	// Named results are tracked too: `err = f(); return nil` drops the value
	// just as surely as a local would.
	if fb.Type.Results != nil {
		for _, field := range fb.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil && isErrorType(obj.Type()) {
					sc.tracked[obj] = true
					sc.results[obj] = true
				}
			}
		}
	}
	// Locals defined in this body (excluding nested literals, which track
	// their own variables).
	inspectNoFuncLit(fb.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj, ok := p.Info.Defs[id].(*types.Var); ok && isErrorType(obj.Type()) {
			sc.tracked[obj] = true
		}
		return true
	})
	if len(sc.tracked) == 0 {
		return
	}
	// Exclude variables an intraprocedural pass cannot follow: captured by a
	// function literal, or address-taken.
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						delete(sc.tracked, obj)
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						delete(sc.tracked, obj)
					}
				}
			}
		}
		return true
	})
	if len(sc.tracked) == 0 {
		return
	}

	cfg := BuildCFG(fb.Body)
	spec := FlowSpec[errFact]{
		Entry:        errFact{},
		Join:         errJoin,
		Equal:        errEqual,
		Transfer:     sc.transfer,
		TransferCond: sc.transferCond,
	}
	in, out := SolveForward(cfg, spec)

	// Reporting pass: replay each block once on its fixed-point entry fact,
	// now with the report sink attached, so every diagnostic is emitted
	// exactly once in block order. Exit-pending assignments come last.
	reported := map[token.Pos]bool{}
	sc.report = func(pos token.Pos) {
		if !reported[pos] {
			reported[pos] = true
			p.Reportf(pos, "error assigned here is never read on some path to reassignment or function exit; check it on every path (or discard it explicitly)")
		}
	}
	for _, b := range cfg.Blocks {
		fact, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			fact = sc.transfer(fact, n)
		}
	}
	exit := out[cfg.Exit]
	var leftovers []token.Pos
	for _, ps := range exit {
		leftovers = append(leftovers, ps...)
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i] < leftovers[j] })
	for _, pos := range leftovers {
		sc.report(pos)
	}
}

// transfer applies one statement: reads clear pending assignments,
// assignments report-and-replace pending ones.
func (sc *errFlowScope) transfer(fact errFact, n ast.Node) errFact {
	out := fact
	mutated := false
	mutable := func() errFact {
		if !mutated {
			out = fact.clone()
			mutated = true
		}
		return out
	}

	clearRead := func(obj types.Object) {
		if _, ok := out[obj]; ok {
			delete(mutable(), obj)
		}
	}

	switch s := n.(type) {
	case *ast.AssignStmt:
		// RHS (and any non-direct-target LHS subexpressions) are reads.
		for _, rhs := range s.Rhs {
			sc.scanReads(rhs, clearRead)
		}
		for _, lhs := range s.Lhs {
			if _, direct := directTarget(sc.pass, lhs); !direct {
				sc.scanReads(lhs, clearRead)
			}
		}
		for i, lhs := range s.Lhs {
			obj, direct := directTarget(sc.pass, lhs)
			if !direct || obj == nil || !sc.tracked[obj] {
				continue
			}
			if len(s.Rhs) == len(s.Lhs) && isNilLiteral(sc.pass, s.Rhs[i]) {
				// `err = nil` is an intentional reset: it neither reports the
				// pending value (the writer chose to drop it) nor becomes a
				// trackable value itself.
				clearRead(obj)
				continue
			}
			if pending, ok := out[obj]; ok && len(pending) > 0 {
				if sc.report != nil {
					for _, p := range pending {
						sc.report(p)
					}
				}
			}
			mutable()[obj] = []token.Pos{lhs.Pos()}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			sc.scanReads(res, clearRead)
		}
		if len(s.Results) == 0 {
			// Naked return reads every named result.
			for obj := range sc.results {
				clearRead(obj)
			}
		}
	case *ast.RangeStmt:
		sc.scanReads(s.X, clearRead)
		// Key/value rebind on the edge into the body, which this CFG cannot
		// distinguish from the zero-iteration edge past the loop — so range
		// bindings are not tracked as pending values (doing so would flag
		// every `for _, err := range errs` on its zero-iteration path). A
		// range reassignment of a tracked variable still reports and then
		// retires whatever was pending before the loop.
		for _, lhs := range []ast.Expr{s.Key, s.Value} {
			if lhs == nil {
				continue
			}
			obj, direct := directTarget(sc.pass, lhs)
			if !direct || obj == nil || !sc.tracked[obj] {
				continue
			}
			if pending, ok := out[obj]; ok && sc.report != nil {
				for _, p := range pending {
					sc.report(p)
				}
			}
			clearRead(obj)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					sc.scanReads(v, clearRead)
				}
				if len(vs.Values) == 0 {
					continue // `var err error` holds no trackable value yet
				}
				for i, name := range vs.Names {
					obj := sc.pass.Info.Defs[name]
					if obj == nil || !sc.tracked[obj] {
						continue
					}
					if len(vs.Values) == len(vs.Names) && isNilLiteral(sc.pass, vs.Values[i]) {
						continue
					}
					mutable()[obj] = []token.Pos{name.Pos()}
				}
			}
		}
	default:
		sc.scanReads(n, clearRead)
	}
	return out
}

func (sc *errFlowScope) transferCond(fact errFact, cond ast.Expr) errFact {
	out := fact
	mutated := false
	sc.scanReads(cond, func(obj types.Object) {
		if _, ok := out[obj]; ok {
			if !mutated {
				out = fact.clone()
				mutated = true
			}
			delete(out, obj)
		}
	})
	return out
}

// scanReads calls read for every tracked object whose identifier is used
// (not defined) under root, skipping nested function literals.
func (sc *errFlowScope) scanReads(root ast.Node, read func(types.Object)) {
	inspectNoFuncLit(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := sc.pass.Info.Uses[id]; obj != nil && sc.tracked[obj] {
				read(obj)
			}
		}
		return true
	})
}

// directTarget reports whether lhs is a plain identifier assignment target
// and returns its object (nil for blank).
func directTarget(p *Pass, lhs ast.Expr) (types.Object, bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if id.Name == "_" {
		return nil, true
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj, true
	}
	return p.Info.Uses[id], true
}

// isNilLiteral reports whether e is the predeclared nil.
func isNilLiteral(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}
