package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Exact equality on
// computed floats is how pooled-vs-fresh and worker-count equivalence bugs
// hide: two mathematically equal paths differ in the last ulp and a naive
// comparison silently takes the wrong branch. Comparisons are allowed inside
// approved tolerance/sentinel helpers (names matching almost/approx/close/
// within/tol/isnan), in the `x != x` NaN idiom, and between constants;
// everything else must use a helper or carry an //ovslint:ignore with the
// reason exact equality is intended (e.g. a skip-if-exactly-zero fast path).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= between floating-point operands outside approved comparison helpers",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			file := f
			ast.Inspect(file, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.TypeOf(bin.X)) && !isFloat(p.TypeOf(bin.Y)) {
					return true
				}
				if isConstExpr(p, bin.X) && isConstExpr(p, bin.Y) {
					return true
				}
				// x != x is the portable NaN test; x == x its negation.
				if types.ExprString(bin.X) == types.ExprString(bin.Y) {
					return true
				}
				if approvedCompareHelper.MatchString(enclosingFuncName(file, bin.Pos())) {
					return true
				}
				p.Reportf(bin.Pos(), "floating-point %s comparison: use a tolerance helper, or annotate why exact equality is intended", bin.Op)
				return true
			})
		}
	},
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
