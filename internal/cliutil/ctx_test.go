package cliutil

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"
)

func TestRootContextNoTimeoutHasNoDeadline(t *testing.T) {
	ctx, cancel := RootContext(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("RootContext(0) set a deadline")
	}
	if ctx.Err() != nil {
		t.Fatalf("fresh context already cancelled: %v", ctx.Err())
	}
}

func TestRootContextTimeoutExpires(t *testing.T) {
	ctx, cancel := RootContext(20 * time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("RootContext timeout never fired")
	}
	if !errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want DeadlineExceeded", context.Cause(ctx))
	}
}

func TestRootContextCancelReleases(t *testing.T) {
	ctx, cancel := RootContext(time.Hour)
	cancel()
	if ctx.Err() == nil {
		t.Fatal("context still live after cancel")
	}
}

func TestInterruptContextParentCancellation(t *testing.T) {
	parent, pcancel := context.WithCancel(context.Background())
	ctx, stop := InterruptContext(parent)
	defer stop()
	pcancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("child did not observe parent cancellation")
	}
}

func TestInterruptContextCancelledBySIGINT(t *testing.T) {
	ctx, stop := InterruptContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the interrupt context")
	}
}

// TestDoubleInterruptHardKills is the regression test for the two-stage ^C
// contract: the first SIGINT cancels the context (graceful path), and —
// because InterruptContext unregisters the handler the moment the context is
// cancelled — the second SIGINT gets the default disposition and kills the
// process outright even though the program is stuck past cancellation.
//
// The child is this test binary re-executed with CLIUTIL_INTERRUPT_CHILD=1
// (see TestMain below); it prints "ready", waits for the first signal, prints
// "cancelled", then simulates a hung shutdown.
func TestDoubleInterruptHardKills(t *testing.T) {
	if os.Getenv("CLIUTIL_INTERRUPT_CHILD") != "" {
		t.Skip("child mode runs in TestMain")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "TestDoubleInterruptHardKills")
	cmd.Env = append(os.Environ(), "CLIUTIL_INTERRUPT_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //ovslint:ignore ignorederr hang-guard kill on an already-dead process is expected to fail

	lines := bufio.NewScanner(stdout)
	waitLine := func(want string) {
		deadline := time.AfterFunc(10*time.Second, func() { cmd.Process.Kill() }) //ovslint:ignore ignorederr hang-guard kill; failure only means the child already died
		defer deadline.Stop()
		for lines.Scan() {
			if lines.Text() == want {
				return
			}
		}
		t.Fatalf("child exited before printing %q", want)
	}

	waitLine("ready")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitLine("cancelled")

	// The AfterFunc's unregistration runs concurrently with the "cancelled"
	// print, so a single second signal could race it and be swallowed by the
	// still-registered handler. Keep nudging: once the registration is gone,
	// the next SIGINT takes the default disposition and kills the child.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }() //ovslint:ignore nakedgo single reaper joined via the done channel on every path; the pool cannot wrap a blocking Wait
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	giveUp := time.After(8 * time.Second)
	var werr error
collect:
	for {
		// Signalling a child that just died fails harmlessly; the wait
		// status below is what the test judges.
		cmd.Process.Signal(os.Interrupt) //ovslint:ignore ignorederr racing the child's death is the point of the loop
		select {
		case werr = <-done:
			break collect
		case <-ticker.C:
		case <-giveUp:
			cmd.Process.Kill() //ovslint:ignore ignorederr best-effort cleanup before failing the test
			<-done
			t.Fatal("child survived repeated SIGINTs after cancellation")
		}
	}
	err = werr
	if err == nil {
		t.Fatal("child exited cleanly; the second SIGINT should have killed it")
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("wait: %v", err)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok {
		t.Fatalf("no wait status in %v", exitErr)
	}
	if !ws.Signaled() || ws.Signal() != syscall.SIGINT {
		t.Fatalf("child died with status %v, want death by SIGINT", exitErr)
	}
}

// TestMain intercepts the re-exec of the double-interrupt child before the
// test harness takes over, so the child's SIGINT disposition is exactly what
// InterruptContext set up — not the harness's.
func TestMain(m *testing.M) {
	if os.Getenv("CLIUTIL_INTERRUPT_CHILD") == "" {
		os.Exit(m.Run())
	}
	ctx, stop := InterruptContext(context.Background())
	defer stop()
	fmt.Println("ready")
	<-ctx.Done()
	fmt.Println("cancelled")
	// Simulate a shutdown that hangs after the graceful cancellation: only
	// the second ^C's hard kill can end the process before this guard exit.
	time.Sleep(10 * time.Second)
	os.Exit(42)
}
