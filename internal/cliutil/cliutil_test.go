package cliutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicWritesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "payload")
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("content = %q, want %q", got, "payload")
	}
}

func TestWriteFileAtomicPreservesOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write failure")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "half of the new conte"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected write failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous" {
		t.Fatalf("old contents destroyed: %q", got)
	}
	// The abandoned temp file must not linger.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicOverwritesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	for _, content := range []string{"first", "second, longer than first"} {
		content := content
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, werr := io.WriteString(w, content)
			return werr
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second, longer than first" {
		t.Fatalf("content = %q after overwrite", got)
	}
}

func TestWriteFileAtomicMissingDirErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	err := WriteFileAtomic(path, func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory did not error")
	}
}
