// Package cliutil holds small helpers shared by the cmd/ front-ends.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CloseWith closes c and, when closing fails while *errp is still nil,
// records the close error there. Deferred on files opened for writing so a
// failed flush-on-close surfaces instead of being silently dropped:
//
//	func write(path string) (err error) {
//		f, err := os.Create(path)
//		if err != nil {
//			return err
//		}
//		defer cliutil.CloseWith(&err, f)
//		...
//	}
//
// An earlier error wins — the close error is usually a consequence of it.
func CloseWith(errp *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *errp == nil {
		*errp = cerr
	}
}

// WriteFile creates path, hands it to write, and closes it, returning the
// first failure — including a failed close, which on a written file usually
// means lost buffered data.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer CloseWith(&err, f)
	return write(f)
}

// ReadFile opens path, hands it to read, and closes it, returning the first
// failure.
func ReadFile(path string, read func(io.Reader) error) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer CloseWith(&err, f)
	return read(f)
}

// StartProfiles begins CPU profiling and arranges for a heap profile, per
// the given paths (either may be empty). The returned stop function is
// idempotent so error paths can flush profiles before os.Exit.
func StartProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close() //ovslint:ignore ignorederr StartCPUProfile failure is already returned; close is best-effort cleanup of an empty file
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if memPath != "" {
			err := WriteFile(memPath, func(w io.Writer) error {
				runtime.GC() // settle the heap so the profile reflects retained memory
				return pprof.WriteHeapProfile(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}, nil
}
