// Package cliutil holds small helpers shared by the cmd/ front-ends.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
)

// CloseWith closes c and, when closing fails while *errp is still nil,
// records the close error there. Deferred on files opened for writing so a
// failed flush-on-close surfaces instead of being silently dropped:
//
//	func write(path string) (err error) {
//		f, err := os.Create(path)
//		if err != nil {
//			return err
//		}
//		defer cliutil.CloseWith(&err, f)
//		...
//	}
//
// An earlier error wins — the close error is usually a consequence of it.
func CloseWith(errp *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *errp == nil {
		*errp = cerr
	}
}

// WriteFile creates path, hands it to write, and closes it, returning the
// first failure — including a failed close, which on a written file usually
// means lost buffered data.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer CloseWith(&err, f)
	return write(f)
}

// WriteFileAtomic writes path so that a crash at any moment leaves either
// the old contents or the complete new contents, never a truncated mix: the
// data goes to a temporary file in the target directory, is fsynced, and the
// temporary file is renamed over path, followed by a directory fsync so the
// rename itself is durable. Use it for anything another process (or a resumed
// run) will read back: model files, checkpoints, report JSON.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()           //ovslint:ignore ignorederr best-effort cleanup; the earlier failure is already being returned (double close on some paths)
			os.Remove(tmp.Name()) //ovslint:ignore ignorederr best-effort cleanup of the abandoned temp file
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives power loss.
func syncDir(dir string) (err error) {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer CloseWith(&err, d)
	return d.Sync()
}

// NotifyInterrupt installs a SIGINT handler and returns a poll function that
// reports (sticky, without blocking) whether an interrupt has arrived. Long
// training loops poll it between epochs to write a final checkpoint and exit
// cleanly instead of dying mid-write; the poll is safe to call from multiple
// goroutines (concurrent fit restarts poll it too). After the first interrupt
// is observed the handler is removed, so a second Ctrl-C kills the process
// immediately — the escape hatch when the final checkpoint itself hangs.
func NotifyInterrupt() func() bool {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	var mu sync.Mutex
	seen := false
	return func() bool {
		mu.Lock()
		defer mu.Unlock()
		if seen {
			return true
		}
		select {
		case <-ch:
			seen = true
			signal.Stop(ch)
		default:
		}
		return seen
	}
}

// ReadFile opens path, hands it to read, and closes it, returning the first
// failure.
func ReadFile(path string, read func(io.Reader) error) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer CloseWith(&err, f)
	return read(f)
}

// StartProfiles begins CPU profiling and arranges for a heap profile, per
// the given paths (either may be empty). The returned stop function is
// idempotent so error paths can flush profiles before os.Exit.
func StartProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close() //ovslint:ignore ignorederr StartCPUProfile failure is already returned; close is best-effort cleanup of an empty file
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if memPath != "" {
			err := WriteFile(memPath, func(w io.Writer) error {
				runtime.GC() // settle the heap so the profile reflects retained memory
				return pprof.WriteHeapProfile(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}, nil
}
