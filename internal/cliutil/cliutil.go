// Package cliutil holds small helpers shared by the cmd/ front-ends.
package cliutil

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// CloseWith closes c and, when closing fails while *errp is still nil,
// records the close error there. Deferred on files opened for writing so a
// failed flush-on-close surfaces instead of being silently dropped:
//
//	func write(path string) (err error) {
//		f, err := os.Create(path)
//		if err != nil {
//			return err
//		}
//		defer cliutil.CloseWith(&err, f)
//		...
//	}
//
// An earlier error wins — the close error is usually a consequence of it.
func CloseWith(errp *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *errp == nil {
		*errp = cerr
	}
}

// WriteFile creates path, hands it to write, and closes it, returning the
// first failure — including a failed close, which on a written file usually
// means lost buffered data.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer CloseWith(&err, f)
	return write(f)
}

// WriteFileAtomic writes path so that a crash at any moment leaves either
// the old contents or the complete new contents, never a truncated mix: the
// data goes to a temporary file in the target directory, is fsynced, and the
// temporary file is renamed over path, followed by a directory fsync so the
// rename itself is durable. Use it for anything another process (or a resumed
// run) will read back: model files, checkpoints, report JSON.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()           //ovslint:ignore ignorederr best-effort cleanup; the earlier failure is already being returned (double close on some paths)
			os.Remove(tmp.Name()) //ovslint:ignore ignorederr best-effort cleanup of the abandoned temp file
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives power loss.
func syncDir(dir string) (err error) {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer CloseWith(&err, d)
	return d.Sync()
}

// InterruptContext returns a child of parent that is cancelled by the first
// SIGINT. Long-running loops observe the cancellation at their next safe
// point (epoch / restart / simulator-interval boundary), write a final
// checkpoint, and exit cleanly instead of dying mid-write. The moment the
// context is cancelled — by the signal or by the parent — the handler is
// unregistered via context.AfterFunc, restoring the default disposition so a
// second Ctrl-C kills the process immediately: the escape hatch when the
// final checkpoint itself hangs. One signal wiring covers both behaviors.
//
// The returned stop function releases the signal registration early; defer
// it from main.
func InterruptContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}

// RootContext builds the root context every CLI runs under: cancelled by the
// first SIGINT (InterruptContext semantics, second ^C hard-kills) and, when
// timeout > 0, by the deadline of a -timeout flag. The returned cancel
// releases both registrations.
func RootContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	ictx, stop := InterruptContext(ctx)
	return ictx, func() {
		stop()
		cancel()
	}
}

// ReadFile opens path, hands it to read, and closes it, returning the first
// failure.
func ReadFile(path string, read func(io.Reader) error) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer CloseWith(&err, f)
	return read(f)
}

// StartProfiles begins CPU profiling and arranges for a heap profile, per
// the given paths (either may be empty). The returned stop function is
// idempotent so error paths can flush profiles before os.Exit.
func StartProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close() //ovslint:ignore ignorederr StartCPUProfile failure is already returned; close is best-effort cleanup of an empty file
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if memPath != "" {
			err := WriteFile(memPath, func(w io.Writer) error {
				runtime.GC() // settle the heap so the profile reflects retained memory
				return pprof.WriteHeapProfile(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}, nil
}
