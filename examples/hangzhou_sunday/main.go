// Hangzhou Sunday (Case study 1, Fig. 12 of the paper): on a big-city
// network, weekend shoppers travel from residential region A to commercial
// region B with peaks around 10 am and 6 pm, and return late in the evening
// (8 pm - 1 am). OVS sees only road speeds over 24 hourly intervals and
// should recover those peaks.
//
//	go run ./examples/hangzhou_sunday
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"ovs"
)

func main() {
	const seed = 5
	cs, err := ovs.CaseStudy1(2.0, seed)
	if err != nil {
		log.Fatal(err)
	}
	city := cs.City
	fmt.Printf("%s: %d intersections, %d links, %d OD pairs, %d hourly intervals\n",
		cs.Name, city.Net.NumNodes(), city.Net.NumLinks(), city.NumPairs(), cs.Intervals)

	simulator := ovs.NewSimulator(city.Net, ovs.SimConfig{
		Intervals: cs.Intervals, IntervalSec: 300, Seed: seed,
	})
	obs, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: cs.G})
	if err != nil {
		log.Fatal(err)
	}

	// Training data sweeping demand scales.
	rng := rand.New(rand.NewSource(seed))
	var samples []ovs.Sample
	maxTrips := cs.G.Max()
	for i := 0; i < 10; i++ {
		g := ovs.GenerateTOD(ovs.Pattern(i%5), ovs.TODConfig{
			Pairs: city.NumPairs(), Intervals: cs.Intervals,
			IntervalMinutes: 5, Scale: 0.2 + 0.2*float64(i),
		}, rng)
		res, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: g})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, ovs.Sample{G: g, Volume: res.Volume, Speed: res.Speed})
		if g.Max() > maxTrips {
			maxTrips = g.Max()
		}
	}

	pairs := make([][2]int, len(city.ODs))
	for i, od := range city.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := ovs.NewTopology(city.Net, pairs, cs.Intervals, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ovs.DefaultModelConfig()
	cfg.MaxTrips = maxTrips * 1.2
	cfg.Seed = seed
	meanG, maxVol := 0.0, 0.0
	for _, s := range samples {
		meanG += s.G.Mean()
		if s.Volume.Max() > maxVol {
			maxVol = s.Volume.Max()
		}
	}
	cfg.InitTripLevel = meanG / float64(len(samples)) / cfg.MaxTrips
	cfg.VolumeNorm = maxVol / 4
	cfg.VolumeLossWeight = 3
	model := ovs.NewModel(topo, cfg)

	// Over a 24-hour horizon, speed alone cannot disambiguate which of two
	// opposite-direction ODs causes the evening congestion — the paper's
	// multiple-solutions issue (§I, RQ2). Hangzhou is exactly where the
	// paper has taxi-GPS auxiliary data, so we add the §IV-E trajectory
	// loss: a noisy 12%-penetration taxi view of a few ODs (including the
	// focus pair), fleet-scaled.
	trajIdx := []int{cs.Focus["A->B"], cs.Focus["B->A"], 0, 1, 2}
	trajG := ovs.NewTensor(len(trajIdx), cs.Intervals)
	for r, i := range trajIdx {
		for t := 0; t < cs.Intervals; t++ {
			trajG.Set(cs.G.At(i, t)*(1+0.25*rng.NormFloat64()), r, t)
		}
	}
	aux := &ovs.AuxData{TrajODIdx: trajIdx, TrajG: trajG, TrajWeight: 8}

	recovered, err := model.TrainFull(samples, obs.Speed, 25, 20, 400, aux)
	if err != nil {
		log.Fatal(err)
	}

	// Print the recovered series for the two focus ODs as hourly bars.
	for _, label := range []string{"A->B", "B->A"} {
		idx := cs.Focus[label]
		rec := recovered.Row(idx)
		truth := cs.G.Row(idx)
		fmt.Printf("\n%s (residential A %s commercial B)\n", label, arrow(label))
		fmt.Println("hour        " + hourAxis(cs.Intervals))
		fmt.Println("truth       " + bars(truth.Data))
		fmt.Println("recovered   " + bars(rec.Data))
	}
	fmt.Println("\nexpected story: A->B peaks ~10:00 and ~18:00 (shopping);")
	fmt.Println("B->A peaks 20:00-01:00 (late return home).")
}

func arrow(label string) string {
	if strings.HasPrefix(label, "A") {
		return "to"
	}
	return "from"
}

func hourAxis(t int) string {
	var b strings.Builder
	for h := 0; h < t; h++ {
		fmt.Fprintf(&b, "%d", h%10)
	}
	return b.String()
}

func bars(values []float64) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
