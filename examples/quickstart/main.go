// Quickstart: recover a hidden TOD tensor from speed observations on a 3×3
// grid — the full OVS pipeline (Fig. 8 of the paper) in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ovs"
)

func main() {
	const (
		intervals   = 6   // T: observation intervals
		intervalSec = 300 // 5-minute intervals
		nSamples    = 8   // generated training triples
		seed        = 7
	)

	// 1. Build the city: a 3×3 grid where every intersection is a region,
	// with 6 OD pairs chosen between regions.
	city := ovs.SyntheticGrid(6, seed)
	simulator := ovs.NewSimulator(city.Net, ovs.SimConfig{
		Intervals: intervals, IntervalSec: intervalSec, Seed: seed,
	})
	fmt.Printf("city: %d intersections, %d links, %d OD pairs\n",
		city.Net.NumNodes(), city.Net.NumLinks(), city.NumPairs())

	// 2. Generate training data (Fig. 7): random TOD tensors simulated into
	// (volume, speed) observations.
	rng := rand.New(rand.NewSource(seed))
	var samples []ovs.Sample
	maxTrips := 0.0
	for i := 0; i < nSamples; i++ {
		g := ovs.GenerateTOD(ovs.Pattern(i%5), ovs.TODConfig{
			Pairs: city.NumPairs(), Intervals: intervals,
			IntervalMinutes: intervalSec / 60, Scale: 0.8,
		}, rng)
		res, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: g})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, ovs.Sample{G: g, Volume: res.Volume, Speed: res.Speed})
		if g.Max() > maxTrips {
			maxTrips = g.Max()
		}
	}

	// 3. Hide a ground-truth TOD: the model will see only its speeds.
	hidden := ovs.GenerateTOD(ovs.PatternGaussian, ovs.TODConfig{
		Pairs: city.NumPairs(), Intervals: intervals,
		IntervalMinutes: intervalSec / 60, Scale: 0.6,
	}, rng)
	obs, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: hidden})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden TOD: %.0f total trips; observed speeds %.1f-%.1f m/s\n",
		hidden.Sum(), obs.Speed.Min(), obs.Speed.Max())

	// 4. Build and train OVS: stage 1 (volume→speed), stage 2 (TOD→volume),
	// then fit the TOD generator to the observed speeds.
	pairs := make([][2]int, len(city.ODs))
	for i, od := range city.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := ovs.NewTopology(city.Net, pairs, intervals, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ovs.DefaultModelConfig()
	cfg.MaxTrips = maxTrips * 1.2
	cfg.Seed = seed
	// Start the TOD generator at the mean training demand level — a better
	// prior than the sigmoid midpoint.
	meanG := 0.0
	for _, s := range samples {
		meanG += s.G.Mean()
	}
	cfg.InitTripLevel = meanG / float64(len(samples)) / cfg.MaxTrips
	model := ovs.NewModel(topo, cfg)

	recovered, err := model.TrainFull(samples, obs.Speed, 15, 12, 80, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Score the recovery with the paper's metric and verify it by pushing
	// the recovered TOD back through the simulator.
	fmt.Printf("RMSE(recovered TOD, hidden TOD) = %.2f trips\n", ovs.TensorRMSE(recovered, hidden))
	check, err := simulator.Run(ovs.Demand{ODs: city.ODs, G: recovered})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RMSE(simulated speed of recovery, observed speed) = %.2f m/s\n",
		ovs.TensorRMSE(check.Speed, obs.Speed))
}
