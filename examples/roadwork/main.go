// Road work robustness (RQ3, Fig. 11 of the paper): the same travel demand
// is observed through two "worlds" — a regular one and one where a third of
// the links are slowed by road work. A method that models the generation
// chain (OVS) should recover nearly the same TOD from both observations,
// while a pattern-matching inverse regression (the LSTM baseline's style)
// shifts with the changed speed field.
//
//	go run ./examples/roadwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ovs"
)

func main() {
	const (
		seed      = 11
		intervals = 6
	)
	city := ovs.SyntheticGrid(6, seed)

	// World 1: regular. World 2: road work slows ~1/3 of links to 45%.
	regular := ovs.NewSimulator(city.Net, ovs.SimConfig{
		Intervals: intervals, IntervalSec: 300, Seed: seed,
	})
	work := map[int]float64{}
	rng := rand.New(rand.NewSource(seed))
	for j := 0; j < city.Net.NumLinks(); j++ {
		if rng.Float64() < 0.33 {
			work[j] = 0.45
		}
	}
	roadwork := ovs.NewSimulator(city.Net, ovs.SimConfig{
		Intervals: intervals, IntervalSec: 300, Seed: seed, RoadWork: work,
	})
	fmt.Printf("road work on %d of %d links (speed ×0.45)\n", len(work), city.Net.NumLinks())

	// One hidden demand, two observations.
	hidden := ovs.GenerateTOD(ovs.PatternGaussian, ovs.TODConfig{
		Pairs: city.NumPairs(), Intervals: intervals, IntervalMinutes: 5, Scale: 0.7,
	}, rng)
	obs1, err := regular.Run(ovs.Demand{ODs: city.ODs, G: hidden})
	if err != nil {
		log.Fatal(err)
	}
	obs2, err := roadwork.Run(ovs.Demand{ODs: city.ODs, G: hidden})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean observed speed: regular %.2f m/s, road work %.2f m/s\n",
		obs1.Speed.Mean(), obs2.Speed.Mean())

	// Train OVS once on regular-world data.
	var samples []ovs.Sample
	maxTrips := hidden.Max()
	for i := 0; i < 10; i++ {
		g := ovs.GenerateTOD(ovs.Pattern(i%5), ovs.TODConfig{
			Pairs: city.NumPairs(), Intervals: intervals,
			IntervalMinutes: 5, Scale: 0.2 + 0.15*float64(i),
		}, rng)
		res, err := regular.Run(ovs.Demand{ODs: city.ODs, G: g})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, ovs.Sample{G: g, Volume: res.Volume, Speed: res.Speed})
		if g.Max() > maxTrips {
			maxTrips = g.Max()
		}
	}
	pairs := make([][2]int, len(city.ODs))
	for i, od := range city.ODs {
		pairs[i] = [2]int{od.Origin, od.Dest}
	}
	topo, err := ovs.NewTopology(city.Net, pairs, intervals, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ovs.DefaultModelConfig()
	cfg.MaxTrips = maxTrips * 1.2
	cfg.Seed = seed
	meanG, maxVol := 0.0, 0.0
	for _, s := range samples {
		meanG += s.G.Mean()
		if s.Volume.Max() > maxVol {
			maxVol = s.Volume.Max()
		}
	}
	cfg.InitTripLevel = meanG / float64(len(samples)) / cfg.MaxTrips
	cfg.VolumeNorm = maxVol / 4
	model := ovs.NewModel(topo, cfg)
	if _, err := model.TrainV2S(samples, 15); err != nil {
		log.Fatal(err)
	}
	if _, err := model.TrainT2V(samples, 12); err != nil {
		log.Fatal(err)
	}

	// Fit the same trained mappings to each observation.
	rec1, _, err := model.Fit(obs1.Speed, 100, nil)
	if err != nil {
		log.Fatal(err)
	}
	rec2, _, err := model.Fit(obs2.Speed, 100, nil)
	if err != nil {
		log.Fatal(err)
	}

	div := ovs.TensorRMSE(rec1, rec2)
	err1 := ovs.TensorRMSE(rec1, hidden)
	err2 := ovs.TensorRMSE(rec2, hidden)
	fmt.Printf("\nOVS recovered-TOD divergence between worlds: %.2f trips\n", div)
	fmt.Printf("OVS recovery error: regular %.2f, road work %.2f\n", err1, err2)
	if div < err1 && div < err2 {
		fmt.Println("✓ the two recoveries agree more with each other than either errs —")
		fmt.Println("  the road-work factor did not masquerade as a demand change (Fig. 11)")
	} else {
		fmt.Println("✗ recoveries diverged more than expected; try more training epochs")
	}
}
